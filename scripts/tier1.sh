#!/usr/bin/env bash
#===-- scripts/tier1.sh - tier-1 gate: build, tests, TSan concurrency ----===//
#
# The tier-1 gate for this repo:
#   1. Release build + full ctest suite   (the historical tier-1 contract)
#   2. Bench smoke: every benchmark binary runs one quick iteration, so a
#      bench that only compiles but crashes at runtime (bad flag plumbing,
#      tier-up in a fresh engine, ...) fails the gate instead of rotting.
#   3. ASan fault matrix: the ExecGuard and FaultInjection suites under
#      AddressSanitizer — every injected fault and guard trip must unwind
#      without leaking or corrupting the engine, which only ASan can
#      actually prove.
#   4. TSan build + the concurrency tests (ParallelProfile, ShardedCounterStore,
#      ProfileSnapshot, Heap) — the sharded counter runtime and the
#      per-engine arena heaps must be provably race-free, not just
#      pass-by-luck.
#   5. Skew-flip convergence: `pgmpi serve` replays a trace whose hot
#      class flips mid-stream; the gate asserts the continuous profiler
#      re-tiers online (epochs published, closures promoted AND demoted,
#      exit 0) — the end-to-end contract of the ProfileBus service.
#   6. VM codegen: BenchTieredExec runs with fusion forced on, and a hot
#      workload under `pgmpi --tier always --stats` must report at least
#      one superinstruction fused and at least one call inlined — the
#      tier-up codegen paths must actually fire, not just compile.
#
# Usage: scripts/tier1.sh [--skip-tsan] [--skip-asan]
#
#===----------------------------------------------------------------------===//

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
for ARG in "$@"; do
  [[ "$ARG" == "--skip-tsan" ]] && SKIP_TSAN=1
  [[ "$ARG" == "--skip-asan" ]] && SKIP_ASAN=1
done

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: release build + full test suite =="
cmake --preset default
cmake --build --preset default -j "$JOBS"
ctest --preset default

echo "== tier-1: bench smoke (one quick iteration per binary) =="
# Note: the bundled google-benchmark wants a plain double here ("0.01"),
# not the newer "0.01s" form.
for BENCH in build/bench/bench*; do
  [[ -x "$BENCH" ]] || continue
  echo "-- $BENCH"
  "$BENCH" --benchmark_min_time=0.01 --benchmark_repetitions=1 > /dev/null
done

echo "== tier-1: skew-flip convergence (pgmpi serve, online re-tiering) =="
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "$SERVE_DIR"' EXIT
cat > "$SERVE_DIR/workload.scm" <<'EOF'
(define (work-a n)
  (if (= n 0) 0 (+ 1 (work-a (- n 1)))))
(define (work-b n)
  (if (= n 0) 0 (+ 2 (work-b (- n 1)))))
(define (req-a) (work-a 300))
(define (req-b) (work-b 300))
EOF
{
  for _ in $(seq 1 200); do echo "(req-a)"; done
  echo "; hot class flips here"
  for _ in $(seq 1 200); do echo "(req-b)"; done
} > "$SERVE_DIR/trace.txt"
SERVE_LOG="$SERVE_DIR/serve.log"
build/tools/pgmpi serve --replay "$SERVE_DIR/trace.txt" --jobs 2 \
  --interval-charges 256 --profile-out "$SERVE_DIR/out.profile" \
  "$SERVE_DIR/workload.scm" 2> "$SERVE_LOG"
cat "$SERVE_LOG"
# The summary must show the flip was noticed and acted on mid-run:
# at least one epoch, at least one promotion, at least one demotion.
grep -Eq ' [1-9][0-9]* epoch\(s\)' "$SERVE_LOG" \
  || { echo "FAIL: serve published no epochs"; exit 1; }
grep -Eq ' [1-9][0-9]* promotion\(s\)' "$SERVE_LOG" \
  || { echo "FAIL: serve promoted no closures"; exit 1; }
grep -Eq ' [1-9][0-9]* demotion\(s\)' "$SERVE_LOG" \
  || { echo "FAIL: serve demoted no stale-hot closures"; exit 1; }
[[ -s "$SERVE_DIR/out.profile" ]] \
  || { echo "FAIL: serve stored no merged profile"; exit 1; }

echo "== tier-1: VM codegen (superinstruction fusion + tier-up inlining) =="
# The tiered-exec benchmark with fusion forced on: the fused dispatch
# paths must survive a real workload, not just unit tests.
build/bench/benchtieredexec --benchmark_min_time=0.01 \
  --benchmark_repetitions=1 --benchmark_filter='Fused' > /dev/null
CODEGEN_LOG="$SERVE_DIR/codegen.log"
cat > "$SERVE_DIR/codegen.scm" <<'EOF'
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(define (bump x) (+ x 1))
(define (drive n acc) (if (= n 0) acc (drive (- n 1) (bump acc))))
(fib 18)
(drive 20000 0)
EOF
build/tools/pgmpi --tier always --tier-fusion on --tier-inline on --stats \
  "$SERVE_DIR/codegen.scm" 2> "$CODEGEN_LOG" > /dev/null
grep -Eq 'superinstructions-fused +[1-9]' "$CODEGEN_LOG" \
  || { echo "FAIL: tier-up fused no superinstructions"; cat "$CODEGEN_LOG"; exit 1; }
grep -Eq 'tier-inlines +[1-9]' "$CODEGEN_LOG" \
  || { echo "FAIL: tier-up inlined no calls"; cat "$CODEGEN_LOG"; exit 1; }

if [[ "$SKIP_ASAN" == 1 ]]; then
  echo "== tier-1: ASan fault matrix skipped (--skip-asan) =="
else
  echo "== tier-1: ASan build + fault-matrix suites =="
  cmake --preset asan
  cmake --build --preset asan -j "$JOBS"
  # Guard trips and injected faults exercise every error-unwind path in
  # the engine; ASan turns a leaked or clobbered unwind into a failure.
  ASAN_OPTIONS="halt_on_error=1" ctest --preset asan -R 'ExecGuard|FaultInjection'
fi

if [[ "$SKIP_TSAN" == 1 ]]; then
  echo "== tier-1: TSan pass skipped (--skip-tsan) =="
  exit 0
fi

echo "== tier-1: TSan build + concurrency tests =="
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"
# TSAN_OPTIONS makes any report a hard failure even if the process would
# otherwise exit 0.
TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan

echo "== tier-1: all gates passed =="
