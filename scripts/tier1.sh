#!/usr/bin/env bash
#===-- scripts/tier1.sh - tier-1 gate: build, tests, TSan concurrency ----===//
#
# The tier-1 gate for this repo:
#   1. Release build + full ctest suite   (the historical tier-1 contract)
#   2. Bench smoke: every benchmark binary runs one quick iteration, so a
#      bench that only compiles but crashes at runtime (bad flag plumbing,
#      tier-up in a fresh engine, ...) fails the gate instead of rotting.
#   3. ASan fault matrix: the ExecGuard and FaultInjection suites under
#      AddressSanitizer — every injected fault and guard trip must unwind
#      without leaking or corrupting the engine, which only ASan can
#      actually prove.
#   4. TSan build + the concurrency tests (ParallelProfile, ShardedCounterStore,
#      ProfileSnapshot, Heap) — the sharded counter runtime and the
#      per-engine arena heaps must be provably race-free, not just
#      pass-by-luck.
#   5. Skew-flip convergence: `pgmpi serve` replays a trace whose hot
#      class flips mid-stream; the gate asserts the continuous profiler
#      re-tiers online (epochs published, closures promoted AND demoted,
#      exit 0) — the end-to-end contract of the ProfileBus service.
#   6. VM codegen: BenchTieredExec runs with fusion forced on, and a hot
#      workload under `pgmpi --tier always --stats` must report at least
#      one superinstruction fused and at least one call inlined — the
#      tier-up codegen paths must actually fire, not just compile.
#   7. Bounded-memory soak: `pgmpi serve` (boundary reclamation on by
#      default) replays the same trace once and 64x-repeated; peak RSS
#      of the long run must plateau instead of scaling with the request
#      count.
#
# Usage: scripts/tier1.sh [--skip-tsan] [--skip-asan]
#
#===----------------------------------------------------------------------===//

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
for ARG in "$@"; do
  [[ "$ARG" == "--skip-tsan" ]] && SKIP_TSAN=1
  [[ "$ARG" == "--skip-asan" ]] && SKIP_ASAN=1
done

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: release build + full test suite =="
cmake --preset default
cmake --build --preset default -j "$JOBS"
ctest --preset default

echo "== tier-1: bench smoke (one quick iteration per binary) =="
# Note: the bundled google-benchmark wants a plain double here ("0.01"),
# not the newer "0.01s" form.
for BENCH in build/bench/bench*; do
  [[ -x "$BENCH" ]] || continue
  echo "-- $BENCH"
  "$BENCH" --benchmark_min_time=0.01 --benchmark_repetitions=1 > /dev/null
done

echo "== tier-1: skew-flip convergence (pgmpi serve, online re-tiering) =="
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "$SERVE_DIR"' EXIT
cat > "$SERVE_DIR/workload.scm" <<'EOF'
(define (work-a n)
  (if (= n 0) 0 (+ 1 (work-a (- n 1)))))
(define (work-b n)
  (if (= n 0) 0 (+ 2 (work-b (- n 1)))))
(define (req-a) (work-a 300))
(define (req-b) (work-b 300))
EOF
{
  for _ in $(seq 1 200); do echo "(req-a)"; done
  echo "; hot class flips here"
  for _ in $(seq 1 200); do echo "(req-b)"; done
} > "$SERVE_DIR/trace.txt"
SERVE_LOG="$SERVE_DIR/serve.log"
build/tools/pgmpi serve --replay "$SERVE_DIR/trace.txt" --jobs 2 \
  --interval-charges 256 --profile-out "$SERVE_DIR/out.profile" \
  "$SERVE_DIR/workload.scm" 2> "$SERVE_LOG"
cat "$SERVE_LOG"
# The summary must show the flip was noticed and acted on mid-run:
# at least one epoch, at least one promotion, at least one demotion.
grep -Eq ' [1-9][0-9]* epoch\(s\)' "$SERVE_LOG" \
  || { echo "FAIL: serve published no epochs"; exit 1; }
grep -Eq ' [1-9][0-9]* promotion\(s\)' "$SERVE_LOG" \
  || { echo "FAIL: serve promoted no closures"; exit 1; }
grep -Eq ' [1-9][0-9]* demotion\(s\)' "$SERVE_LOG" \
  || { echo "FAIL: serve demoted no stale-hot closures"; exit 1; }
[[ -s "$SERVE_DIR/out.profile" ]] \
  || { echo "FAIL: serve stored no merged profile"; exit 1; }

echo "== tier-1: bounded-memory soak (pgmpi serve, boundary reclamation) =="
# A long replay under boundary reclamation must run in bounded memory:
# both runs replay the SAME trace file (so the resident trace costs the
# same), the long run just repeats it 64x; peak RSS must stay within a
# slack factor of the short run's peak. Without reclamation (or with
# per-request code units adopted forever) memory grows linearly in the
# request count and the check fails by an order of magnitude.
cat > "$SERVE_DIR/soak.scm" <<'EOF'
(define (build n acc)
  (if (= n 0) acc (build (- n 1) (cons n acc))))
(define (req) (length (build 2000 '())))
EOF
for _ in $(seq 1 500); do echo "(req)"; done > "$SERVE_DIR/soak.txt"
soak_rss() { # peak RSS (KiB) of one serve replay
  local REPEAT="$1"
  local STATUS
  build/tools/pgmpi serve --replay "$SERVE_DIR/soak.txt" --repeat "$REPEAT" \
    --jobs 1 "$SERVE_DIR/soak.scm" 2> /dev/null &
  local PID=$!
  local PEAK=0
  while kill -0 "$PID" 2>/dev/null; do
    STATUS="$(grep -s VmHWM "/proc/$PID/status" | awk '{print $2}')" || true
    [[ -n "${STATUS:-}" && "$STATUS" -gt "$PEAK" ]] && PEAK="$STATUS"
    sleep 0.05
  done
  wait "$PID" || { echo "FAIL: soak replay exited non-zero" >&2; return 1; }
  echo "$PEAK"
}
RSS_SHORT="$(soak_rss 1)"
RSS_LONG="$(soak_rss 64)"
echo "-- soak peak RSS: ${RSS_SHORT} KiB (500 req) vs ${RSS_LONG} KiB (32000 req)"
# Plateau check: 64x the requests must cost well under 2x the memory.
[[ "$RSS_LONG" -lt $((RSS_SHORT * 2)) ]] \
  || { echo "FAIL: serve RSS grows with request count (reclamation broken)"; exit 1; }

echo "== tier-1: VM codegen (superinstruction fusion + tier-up inlining) =="
# The tiered-exec benchmark with fusion forced on: the fused dispatch
# paths must survive a real workload, not just unit tests.
build/bench/benchtieredexec --benchmark_min_time=0.01 \
  --benchmark_repetitions=1 --benchmark_filter='Fused' > /dev/null
CODEGEN_LOG="$SERVE_DIR/codegen.log"
cat > "$SERVE_DIR/codegen.scm" <<'EOF'
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(define (bump x) (+ x 1))
(define (drive n acc) (if (= n 0) acc (drive (- n 1) (bump acc))))
(fib 18)
(drive 20000 0)
EOF
build/tools/pgmpi --tier always --tier-fusion on --tier-inline on --stats \
  "$SERVE_DIR/codegen.scm" 2> "$CODEGEN_LOG" > /dev/null
grep -Eq 'superinstructions-fused +[1-9]' "$CODEGEN_LOG" \
  || { echo "FAIL: tier-up fused no superinstructions"; cat "$CODEGEN_LOG"; exit 1; }
grep -Eq 'tier-inlines +[1-9]' "$CODEGEN_LOG" \
  || { echo "FAIL: tier-up inlined no calls"; cat "$CODEGEN_LOG"; exit 1; }

if [[ "$SKIP_ASAN" == 1 ]]; then
  echo "== tier-1: ASan fault matrix skipped (--skip-asan) =="
else
  echo "== tier-1: ASan build + fault-matrix suites =="
  cmake --preset asan
  cmake --build --preset asan -j "$JOBS"
  # Guard trips and injected faults exercise every error-unwind path in
  # the engine; ASan turns a leaked or clobbered unwind into a failure.
  # Heap and Reclaim join the matrix: evacuation move-construction and
  # the exactly-once destructor discipline are precisely the contracts
  # ASan can falsify (double destruction, use-after-evacuation, leaks).
  ASAN_OPTIONS="halt_on_error=1" \
    ctest --preset asan -R 'ExecGuard|FaultInjection|Heap|Reclaim'
  # The bounded-memory soak path again, this time under ASan: thousands
  # of boundary collections (evacuation move-construction, DtorNode
  # transfer, chunk recycling) with leak detection on. RSS itself is
  # asserted by the release-build soak stage — ASan's shadow memory
  # makes absolute RSS meaningless here, so this run is about proving
  # the reclamation path leak- and corruption-free at soak length.
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
    build-asan/tools/pgmpi serve --replay "$SERVE_DIR/soak.txt" \
    --repeat 8 --jobs 1 "$SERVE_DIR/soak.scm" 2> /dev/null \
    || { echo "FAIL: ASan soak replay failed"; exit 1; }
fi

if [[ "$SKIP_TSAN" == 1 ]]; then
  echo "== tier-1: TSan pass skipped (--skip-tsan) =="
  exit 0
fi

echo "== tier-1: TSan build + concurrency tests =="
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"
# TSAN_OPTIONS makes any report a hard failure even if the process would
# otherwise exit 0.
TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan

echo "== tier-1: all gates passed =="
