#!/usr/bin/env bash
#===-- scripts/bench_snapshot.sh - record the perf trajectory ------------===//
#
# Runs every benchmark binary in build/bench/ and folds the per-benchmark
# real times into one committed JSON summary, so the repo's performance
# trajectory is a recorded series instead of folklore. Usage:
#
#   scripts/bench_snapshot.sh [OUT.json]     (default: BENCH_SNAPSHOT.json)
#
# Build the release preset first (scripts/tier1.sh does). Times are
# milliseconds of benchmark real time; treat cross-machine comparisons
# with suspicion and same-machine before/after pairs as the signal.
#
#===----------------------------------------------------------------------===//

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_SNAPSHOT.json}"
MIN_TIME="${BENCH_MIN_TIME:-0.25}"
TMPDIR_SNAP="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SNAP"' EXIT

FOUND=0
for BENCH in build/bench/bench*; do
  [[ -x "$BENCH" ]] || continue
  FOUND=1
  NAME="$(basename "$BENCH")"
  echo "-- $NAME"
  # Note: the bundled google-benchmark wants a plain double ("0.25"),
  # not the newer "0.25s" form.
  "$BENCH" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
    > "$TMPDIR_SNAP/$NAME.json"
done

if [[ "$FOUND" == 0 ]]; then
  echo "error: no benchmark binaries in build/bench/ (build first)" >&2
  exit 1
fi

jq -s '{
  schema: 1,
  generated: (.[0].context.date // "unknown"),
  host: {
    num_cpus: (.[0].context.num_cpus // 0),
    mhz_per_cpu: (.[0].context.mhz_per_cpu // 0)
  },
  benchmarks: (
    [ .[] as $file
      | $file.context.executable as $exe
      | $file.benchmarks[]
      | select(.run_type != "aggregate")
      | { binary: ($exe | split("/") | last),
          name: .name,
          real_ms: ((.real_time
                     * (if .time_unit == "ns" then 1e-6
                        elif .time_unit == "us" then 1e-3
                        elif .time_unit == "ms" then 1
                        else 1e3 end) * 1000 | round) / 1000),
          items_per_second: (.items_per_second // null) }
    ]
  )
}' "$TMPDIR_SNAP"/*.json > "$OUT"

echo "wrote $OUT ($(jq '.benchmarks | length' "$OUT") benchmark entries)"
