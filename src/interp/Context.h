//===- interp/Context.h - Shared evaluation context -----------*- C++ -*-===//
///
/// \file
/// The spine shared by the reader, expander, compiler, evaluator, and the
/// PGMP API: heap, symbols, source objects, globals, the profiler state,
/// and the binding table. One Context corresponds to one embedded Scheme
/// "session"; the public entry point is core/Engine.h.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_INTERP_CONTEXT_H
#define PGMP_INTERP_CONTEXT_H

#include "expander/Binding.h"
#include "interp/TierPolicy.h"
#include "profile/ProfileBus.h"
#include "profile/ProfileDatabase.h"
#include "profile/ShardedCounterStore.h"
#include "profile/SourceObject.h"
#include "support/Diagnostics.h"
#include "support/ExecGuard.h"
#include "support/SourceManager.h"
#include "support/Stats.h"
#include "support/Trace.h"
#include "syntax/Heap.h"
#include "syntax/SymbolTable.h"
#include "syntax/Syntax.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace pgmp {

class CodeUnit;
class LambdaExpr;
class TierBackend;
class VmFunction;

/// How annotate-expr instruments (paper Sections 4.1 vs 4.2):
/// Inline — attach the profile point directly to the expression (Chez
/// style, counter bump only). Wrap — wrap the expression in a generated
/// nullary procedure call carrying the point (Racket errortrace style;
/// same counters, different run-time constants).
enum class AnnotateMode : uint8_t { Inline, Wrap };

/// Shared mutable state of one embedded Scheme session.
class Context {
public:
  Context();
  ~Context();
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  Heap TheHeap;
  SymbolTable Symbols;
  SourceObjectTable Sources;
  SourceManager SrcMgr;
  DiagnosticSink Diags;

  //===--------------------------------------------------------------------===//
  // Profiler state
  //===--------------------------------------------------------------------===//

  /// Live counters of the current instrumented run. Sharded per thread:
  /// instrumented code compiled and run on any thread bumps its own page,
  /// and fold/store aggregate at quiescent points (see
  /// ShardedCounterStore for the threading contract).
  ShardedCounterStore Counters;
  /// (current-profile-information): weights merged over data sets.
  ProfileDatabase ProfileDb;
  /// When true, the compiler instruments every source expression.
  bool InstrumentCompiles = false;
  AnnotateMode AnnotMode = AnnotateMode::Inline;
  /// Profile integrity policy: by default corrupt/stale/malformed profile
  /// files degrade gracefully — load-profile warns through Diags and the
  /// session continues unoptimized (profile-data-available? stays #f).
  /// When strict (pgmpi --strict-profile), they are hard errors instead.
  bool StrictProfile = false;

  //===--------------------------------------------------------------------===//
  // Execution governance
  //===--------------------------------------------------------------------===//

  /// Per-run resource guards (fuel, depth, deadline; see
  /// support/ExecGuard.h). Inactive by default; Engine configures the
  /// limits from EngineOptions and re-arms at every run boundary. The
  /// interpreter's and VM's application paths charge it behind a single
  /// Guard.Active branch; the heap byte cap lives on TheHeap.
  ExecGuard Guard;

  //===--------------------------------------------------------------------===//
  // Region reclamation (syntax/Heap.h, DESIGN.md §6)
  //===--------------------------------------------------------------------===//

  /// Whether Engine run boundaries reclaim nursery memory. Set from
  /// EngineOptions::Reclaim after the prelude loads (the prelude itself
  /// is retained through globals, so collecting under it would only cost
  /// an evacuation pass).
  ReclaimMode Reclaim = ReclaimMode::Off;

  /// The value the last run produced, kept as a root so callers can
  /// still read an EvalResult after the boundary collection that follows
  /// it. Engine sets it right before reclaimAtBoundary() and reads back
  /// the forwarded Value.
  Value LastResult;

  /// Runs a region reclamation if Reclaim is Boundary: collects the heap
  /// with traceGcRoots as the root set, under Phase::Reclaim timing and
  /// the Reclaims/ReclaimAborts counters. Must only be called at a
  /// quiescent point (no Scheme Value/Obj* on the C++ stack outside the
  /// traced roots). Returns true when a collection ran.
  bool reclaimAtBoundary(bool ForceMajor = false);

  /// Enumerates every root the session retains across runs: global
  /// cells, LastResult, macro transformers (Meanings), Values embedded
  /// in adopted CodeUnits, and the tier backend's bytecode constant
  /// pools.
  void traceGcRoots(GcVisitor &V);

  /// Re-derives the heap's reclamation policy from the current
  /// allocation-site profile (Heap::selectReclaimPolicy); bumps
  /// Stat::ReclaimPolicyEpochs when the policy actually changed. Called
  /// per ProfileBus epoch, like fusion-table re-selection.
  void reselectReclaimPolicy();

  //===--------------------------------------------------------------------===//
  // Tiered execution (interp -> VM promotion of hot closures)
  //===--------------------------------------------------------------------===//

  /// Tier policy for closure applies (interp/TierPolicy.h). The dispatch
  /// itself lives in the interpreter's apply path (interp/Eval.cpp);
  /// compilation and execution go through Backend below so interp/ stays
  /// free of vm/ headers, mirroring VmApplyHook.
  TierPolicy Tier;
  /// Nonzero while a macro transformer is running (expander phase 1).
  /// Phase-1 code never tiers: it is expansion-time-only, typically
  /// contains syntax-case/template nodes the VM rejects, and tiering it
  /// would buy nothing the three-pass protocol could keep stable.
  uint32_t PhaseOneDepth = 0;

  /// The tier-up backend (interp/TierBackend.h): compiles hot lambdas,
  /// runs their bytecode, selects superinstruction fusions, invalidates
  /// stale code at profile epochs — and owns every module it compiled.
  /// Registered by vm/Vm.cpp (installVm) at engine construction; null
  /// when tiering is off, so a null check is the only coupling the
  /// interpreter has to the VM's existence.
  std::shared_ptr<TierBackend> Backend;

  //===--------------------------------------------------------------------===//
  // Continuous profiling (profile/ProfileBus.h, core/ProfileSession.h)
  //===--------------------------------------------------------------------===//

  /// The bus this engine publishes its counters to (and re-tiers from);
  /// null when continuous profiling is off. Points at OwnedBus for a
  /// self-hosted engine, or at the pool-owned aggregator (worker 0 hosts
  /// it) for EnginePool workers.
  ProfileBus *Bus = nullptr;
  std::unique_ptr<ProfileBus> OwnedBus;
  uint64_t BusPublisher = 0;   ///< this engine's publisher id on Bus
  uint64_t BusSeenVersion = 0; ///< last epoch version applied (re-tier)
  /// Counter slot -> bus key, in counter registration order. Grown lazily
  /// at publish time so steady-state publishes rebuild no strings.
  std::vector<BusPointKey> BusKeyCache;
  /// Every lambda of every adopted CodeUnit, for the epoch re-tier walk.
  /// Only *adopted* units register, so a unit discarded by a failed eval
  /// never leaves dangling pointers here.
  std::vector<const LambdaExpr *> TierLambdas;

  //===--------------------------------------------------------------------===//
  // Pipeline observability
  //===--------------------------------------------------------------------===//

  /// Per-phase timers and profiler self-metrics (support/Stats.h). Off by
  /// default; Engine::setStatsEnabled / (set-pgmp-stats! #t) turn it on.
  StatsRegistry Stats;
  /// Chrome trace_event sink (support/Trace.h). Off by default;
  /// Engine::setTracePath / pgmpi --trace turn it on.
  TraceSink Trace;

  //===--------------------------------------------------------------------===//
  // Globals
  //===--------------------------------------------------------------------===//

  /// Returns the (stable) cell for global \p Sym, creating an unbound
  /// cell on first use. unordered_map guarantees reference stability.
  Value *globalCell(Symbol *Sym);

  /// Defines (or redefines) a global.
  void defineGlobal(Symbol *Sym, Value V) { *globalCell(Sym) = V; }
  void defineGlobal(const std::string &Name, Value V) {
    defineGlobal(Symbols.intern(Name), V);
  }

  /// Registers a primitive procedure under \p Name.
  void definePrimitive(const std::string &Name, int MinArgs, int MaxArgs,
                       PrimFn Fn);

  //===--------------------------------------------------------------------===//
  // Expansion state
  //===--------------------------------------------------------------------===//

  BindingTable Bindings;
  std::unordered_map<BindingLabel, ExpBinding> Meanings;
  ScopeId NextScope = 1;

  ScopeId freshScope() { return NextScope++; }

  /// Binds \p Id (symbol+scopes) to a fresh label with \p Meaning;
  /// returns the label.
  BindingLabel bind(Symbol *Sym, const ScopeSet &Scopes, ExpBinding Meaning);

  /// Meaning of \p Label, or null if unknown.
  const ExpBinding *meaningOf(BindingLabel Label) const;

  //===--------------------------------------------------------------------===//
  // Code ownership and application
  //===--------------------------------------------------------------------===//

  /// Keeps compiled code alive for the session (closures point into it).
  void adoptCode(std::unique_ptr<CodeUnit> Unit);

  /// Number of code units retained for the session. Under boundary
  /// reclamation this must stay flat across request-shaped runs (the
  /// engine drops self-contained units), which is what makes a serve
  /// loop's host-side footprint bounded, not just its arena.
  size_t numCodeUnits() const { return Code.size(); }

  /// Calls a Scheme procedure from C++ (defined in Eval.cpp).
  Value apply(Value Fn, Value *Args, size_t NumArgs);
  Value apply(Value Fn, const std::vector<Value> &Args);

  /// Installed by the vm/ layer so the interpreter (and primitives like
  /// map) can apply VM closures without depending on vm/ headers.
  using ApplyHook = Value (*)(Context &, Value Fn, Value *Args, size_t N);
  ApplyHook VmApplyHook = nullptr;

  //===--------------------------------------------------------------------===//
  // Output
  //===--------------------------------------------------------------------===//

  /// display/write land here; tests read it back.
  std::string Output;
  bool EchoStdout = false;

  void writeOutput(const std::string &S);

  /// Deterministic RNG state for the Scheme-level rng primitives.
  uint64_t RngState = 0x2545F4914F6CDD1Dull;

private:
  std::unordered_map<Symbol *, Value> Globals;
  std::vector<std::unique_ptr<CodeUnit>> Code;
};

} // namespace pgmp

#endif // PGMP_INTERP_CONTEXT_H
