//===- interp/Eval.h - Core-form evaluator --------------------*- C++ -*-===//
///
/// \file
/// Tree-walking evaluator over the compiled Expr IR. Tail calls are
/// executed as loop iterations, so Scheme loops (named let etc.) run in
/// constant C++ stack. Instrumented nodes bump their counter on every
/// evaluation, which implements precise counter-based source profiling.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_INTERP_EVAL_H
#define PGMP_INTERP_EVAL_H

#include "interp/Context.h"
#include "interp/Expr.h"

namespace pgmp {

/// Evaluates \p E in environment \p Env (null for top level).
/// Raises SchemeError on runtime errors.
Value evalExpr(Context &Ctx, const Expr *E, EnvObj *Env);

/// Calls a procedure value with the given arguments.
Value applyProcedure(Context &Ctx, Value Fn, Value *Args, size_t NumArgs);

} // namespace pgmp

#endif // PGMP_INTERP_EVAL_H
