//===- interp/Eval.h - Core-form evaluator --------------------*- C++ -*-===//
///
/// \file
/// Tree-walking evaluator over the compiled Expr IR. Tail calls are
/// executed as loop iterations, so Scheme loops (named let etc.) run in
/// constant C++ stack. Instrumented nodes bump their counter on every
/// evaluation, which implements precise counter-based source profiling.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_INTERP_EVAL_H
#define PGMP_INTERP_EVAL_H

#include "interp/Context.h"
#include "interp/Expr.h"

namespace pgmp {

/// Evaluates \p E in environment \p Env (null for top level).
/// Raises SchemeError on runtime errors.
Value evalExpr(Context &Ctx, const Expr *E, EnvObj *Env);

/// Calls a procedure value with the given arguments.
Value applyProcedure(Context &Ctx, Value Fn, Value *Args, size_t NumArgs);

/// The tier-up decision for one closure template: returns the cached
/// bytecode body if \p L has already tiered, triggers compilation through
/// Context::Backend when the policy says it is time (Always, a
/// profile-premarked hot closure, or the Auto invocation threshold), and
/// returns null while \p L should stay interpreted. Phase-1 (macro
/// transformer) code never tiers. Shared by the interpreter's apply paths
/// and the VM's call instruction, so closures heat up no matter which
/// tier is driving them.
const VmFunction *tieredFunctionFor(Context &Ctx, const LambdaExpr *L);

} // namespace pgmp

#endif // PGMP_INTERP_EVAL_H
