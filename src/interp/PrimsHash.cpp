//===- interp/PrimsHash.cpp - Hashtables ----------------------------------===//

#include "interp/Eval.h"
#include "interp/Prims.h"
#include "interp/PrimsCommon.h"

using namespace pgmp;
using namespace pgmp::prims;

namespace {

Value primMakeEqHashtable(Context &Ctx, Value *, size_t) {
  return Ctx.TheHeap.hashtable(HashKind::Eq, AllocSite::PrimHash);
}
Value primMakeEqvHashtable(Context &Ctx, Value *, size_t) {
  return Ctx.TheHeap.hashtable(HashKind::Eqv, AllocSite::PrimHash);
}
Value primMakeEqualHashtable(Context &Ctx, Value *, size_t) {
  return Ctx.TheHeap.hashtable(HashKind::Equal, AllocSite::PrimHash);
}
Value primHashtableP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isHash());
}
Value primHashtableSet(Context &, Value *A, size_t) {
  wantHash("hashtable-set!", A[0])->set(A[1], A[2]);
  return Value::undefined();
}
Value primHashtableRef(Context &, Value *A, size_t N) {
  HashTable *H = wantHash("hashtable-ref", A[0]);
  Value Default = N == 3 ? A[2] : Value::boolean(false);
  return H->get(A[1], Default);
}
Value primHashtableContainsP(Context &, Value *A, size_t) {
  return Value::boolean(wantHash("hashtable-contains?", A[0])->contains(A[1]));
}
Value primHashtableDelete(Context &, Value *A, size_t) {
  wantHash("hashtable-delete!", A[0])->erase(A[1]);
  return Value::undefined();
}
Value primHashtableSize(Context &, Value *A, size_t) {
  return Value::fixnum(
      static_cast<int64_t>(wantHash("hashtable-size", A[0])->size()));
}
Value primHashtableKeys(Context &Ctx, Value *A, size_t) {
  return Ctx.TheHeap.list(
      wantHash("hashtable-keys", A[0])->keysInInsertionOrder(),
      AllocSite::PrimList);
}
Value primHashtableUpdate(Context &Ctx, Value *A, size_t) {
  // (hashtable-update! ht key proc default)
  HashTable *H = wantHash("hashtable-update!", A[0]);
  Value Fn = wantProcedure("hashtable-update!", A[2]);
  Value Cur = H->get(A[1], A[3]);
  Value Args[1] = {Cur};
  H->set(A[1], applyProcedure(Ctx, Fn, Args, 1));
  return Value::undefined();
}

} // namespace

void pgmp::installHashPrims(Context &Ctx) {
  Ctx.definePrimitive("make-eq-hashtable", 0, 1, primMakeEqHashtable);
  Ctx.definePrimitive("make-eqv-hashtable", 0, 1, primMakeEqvHashtable);
  Ctx.definePrimitive("make-equal-hashtable", 0, 1, primMakeEqualHashtable);
  Ctx.definePrimitive("make-hashtable", 0, 2, primMakeEqualHashtable);
  Ctx.definePrimitive("hashtable?", 1, 1, primHashtableP);
  Ctx.definePrimitive("hashtable-set!", 3, 3, primHashtableSet);
  Ctx.definePrimitive("hashtable-ref", 2, 3, primHashtableRef);
  Ctx.definePrimitive("hashtable-contains?", 2, 2, primHashtableContainsP);
  Ctx.definePrimitive("hashtable-delete!", 2, 2, primHashtableDelete);
  Ctx.definePrimitive("hashtable-size", 1, 1, primHashtableSize);
  Ctx.definePrimitive("hashtable-keys", 1, 1, primHashtableKeys);
  Ctx.definePrimitive("hashtable-update!", 4, 4, primHashtableUpdate);
}
