//===- interp/Expr.cpp ----------------------------------------------------===//

#include "interp/Expr.h"

#include "expander/Matcher.h"
#include "expander/Template.h"
#include "syntax/Heap.h"

using namespace pgmp;

CodeUnit::CodeUnit() = default;
CodeUnit::~CodeUnit() = default;

Pattern *CodeUnit::adoptPattern(std::unique_ptr<Pattern> P) {
  Pattern *Raw = P.get();
  Patterns.push_back(std::move(P));
  return Raw;
}

Template *CodeUnit::adoptTemplate(std::unique_ptr<Template> T) {
  Template *Raw = T.get();
  Templates.push_back(std::move(T));
  return Raw;
}

void CodeUnit::forEachGcRoot(GcVisitor &V) {
  for (Value &C : ConstantPool)
    V.value(C);
  for (auto &E : Exprs)
    if (E->K == ExprKind::Const)
      V.value(static_cast<ConstExpr *>(E.get())->V);
  for (auto &P : Patterns) {
    if (P->K == PatternKind::Literal)
      V.value(static_cast<LiteralPattern *>(P.get())->IdSyntax);
    else if (P->K == PatternKind::Datum)
      V.value(static_cast<DatumPattern *>(P.get())->Datum);
  }
  for (auto &T : Templates) {
    if (T->K == TemplateKind::Const)
      V.value(static_cast<ConstTemplate *>(T.get())->Stx);
    else if (T->K == TemplateKind::List)
      V.value(static_cast<ListTemplate *>(T.get())->OriginalStx);
    else if (T->K == TemplateKind::Vector)
      V.value(static_cast<VectorTemplate *>(T.get())->OriginalStx);
  }
}
