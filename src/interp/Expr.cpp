//===- interp/Expr.cpp ----------------------------------------------------===//

#include "interp/Expr.h"

#include "expander/Matcher.h"
#include "expander/Template.h"

using namespace pgmp;

CodeUnit::CodeUnit() = default;
CodeUnit::~CodeUnit() = default;

Pattern *CodeUnit::adoptPattern(std::unique_ptr<Pattern> P) {
  Pattern *Raw = P.get();
  Patterns.push_back(std::move(P));
  return Raw;
}

Template *CodeUnit::adoptTemplate(std::unique_ptr<Template> T) {
  Template *Raw = T.get();
  Templates.push_back(std::move(T));
  return Raw;
}
