//===- interp/Context.cpp -------------------------------------------------===//

#include "interp/Context.h"

#include "interp/Expr.h"
#include "interp/TierBackend.h"

#include <cstdio>

using namespace pgmp;

Context::Context() {
  // Shard lifecycle self-metrics land in this context's registry (no-ops
  // until stats are enabled).
  Counters.setStats(&Stats);
  // The heap's allocation counters are always on (a few adds per
  // allocation); the registry reads them on demand so (pgmp-stats) and
  // --stats report heap rows without a per-allocation stats branch.
  Stats.setExtraSource(
      [](const void *Source, std::vector<std::pair<std::string, uint64_t>> &Out) {
        static_cast<const Heap *>(Source)->appendStats(Out);
      },
      &TheHeap);
}
Context::~Context() = default;

Value *Context::globalCell(Symbol *Sym) {
  auto It = Globals.find(Sym);
  if (It != Globals.end())
    return &It->second;
  auto [NewIt, Inserted] = Globals.emplace(Sym, Value::unbound());
  (void)Inserted;
  return &NewIt->second;
}

/// Known fixnum-specializable primitives, recognized by name at
/// registration so the individual Prims*.cpp files stay unchanged.
static PrimIntrinsic intrinsicFor(const std::string &Name) {
  if (Name == "+")
    return PrimIntrinsic::Add;
  if (Name == "-")
    return PrimIntrinsic::Sub;
  if (Name == "*")
    return PrimIntrinsic::Mul;
  if (Name == "=")
    return PrimIntrinsic::NumEq;
  if (Name == "<")
    return PrimIntrinsic::Lt;
  if (Name == ">")
    return PrimIntrinsic::Gt;
  if (Name == "<=")
    return PrimIntrinsic::Le;
  if (Name == ">=")
    return PrimIntrinsic::Ge;
  if (Name == "zero?")
    return PrimIntrinsic::ZeroP;
  return PrimIntrinsic::None;
}

void Context::definePrimitive(const std::string &Name, int MinArgs,
                              int MaxArgs, PrimFn Fn) {
  Primitive *P = TheHeap.make<Primitive>(Name, MinArgs, MaxArgs, Fn);
  P->Intr = intrinsicFor(Name);
  defineGlobal(Name, Value::object(ValueKind::Primitive, P));
}

BindingLabel Context::bind(Symbol *Sym, const ScopeSet &Scopes,
                           ExpBinding Meaning) {
  BindingLabel Label = Bindings.freshLabel();
  Bindings.add(Sym, Scopes, Label);
  Meanings.emplace(Label, std::move(Meaning));
  return Label;
}

const ExpBinding *Context::meaningOf(BindingLabel Label) const {
  auto It = Meanings.find(Label);
  return It == Meanings.end() ? nullptr : &It->second;
}

void Context::adoptCode(std::unique_ptr<CodeUnit> Unit) {
  TierLambdas.insert(TierLambdas.end(), Unit->Lambdas.begin(),
                     Unit->Lambdas.end());
  Code.push_back(std::move(Unit));
}

void Context::traceGcRoots(GcVisitor &V) {
  for (auto &[Sym, Cell] : Globals)
    V.value(Cell);
  V.value(LastResult);
  for (auto &[Label, Meaning] : Meanings)
    V.value(Meaning.Transformer);
  for (auto &Unit : Code)
    Unit->forEachGcRoot(V);
  if (Backend)
    Backend->traceGcRoots(V);
}

bool Context::reclaimAtBoundary(bool ForceMajor) {
  if (Reclaim == ReclaimMode::Off)
    return false;
  ScopedPhase Timer(Stats, &Trace, Phase::Reclaim);
  Heap::ReclaimResult R = TheHeap.collect(
      [this](GcVisitor &V) { traceGcRoots(V); }, ForceMajor);
  Stats.bump(Stat::Reclaims);
  if (R.Aborted)
    Stats.bump(Stat::ReclaimAborts);
  return true;
}

void Context::reselectReclaimPolicy() {
  if (TheHeap.selectReclaimPolicy())
    Stats.bump(Stat::ReclaimPolicyEpochs);
}

void Context::writeOutput(const std::string &S) {
  Output += S;
  if (EchoStdout)
    std::fwrite(S.data(), 1, S.size(), stdout);
}
