//===- interp/Prims.h - Built-in procedure registry -----------*- C++ -*-===//
///
/// \file
/// Installs the built-in (primitive) procedures into a Context's global
/// environment. Split across several translation units by topic.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_INTERP_PRIMS_H
#define PGMP_INTERP_PRIMS_H

namespace pgmp {

class Context;

void installCorePrims(Context &Ctx);
void installListPrims(Context &Ctx);
void installNumPrims(Context &Ctx);
void installStringPrims(Context &Ctx);
void installHashPrims(Context &Ctx);
void installSyntaxPrims(Context &Ctx);

/// Installs every group above.
inline void installAllPrims(Context &Ctx) {
  installCorePrims(Ctx);
  installListPrims(Ctx);
  installNumPrims(Ctx);
  installStringPrims(Ctx);
  installHashPrims(Ctx);
  installSyntaxPrims(Ctx);
}

} // namespace pgmp

#endif // PGMP_INTERP_PRIMS_H
