//===- interp/PrimsSyntax.cpp - Syntax object operations ------------------===//

#include "interp/Prims.h"
#include "interp/PrimsCommon.h"
#include "profile/SourceObject.h"
#include "syntax/Syntax.h"

using namespace pgmp;
using namespace pgmp::prims;

namespace {

Value primSyntaxP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isSyntax());
}

Value primIdentifierP(Context &, Value *A, size_t) {
  return Value::boolean(asIdentifier(A[0]) != nullptr);
}

Value primSyntaxToDatum(Context &Ctx, Value *A, size_t) {
  return syntaxToDatum(Ctx.TheHeap, A[0]);
}

Value primDatumToSyntax(Context &Ctx, Value *A, size_t) {
  Syntax *CtxId = wantSyntax("datum->syntax", A[0]);
  return datumToSyntax(Ctx.TheHeap, *CtxId, A[1]);
}

Value primSyntaxE(Context &, Value *A, size_t) {
  return wantSyntax("syntax-e", A[0])->Inner;
}

Value primFreeIdentifierEq(Context &Ctx, Value *A, size_t) {
  Syntax *X = asIdentifier(A[0]);
  Syntax *Y = asIdentifier(A[1]);
  if (!X || !Y)
    wrongType("free-identifier=?", "identifiers", X ? A[1] : A[0]);
  return Value::boolean(freeIdentifierEqual(Ctx.Bindings, X, Y));
}

Value primBoundIdentifierEq(Context &, Value *A, size_t) {
  Syntax *X = asIdentifier(A[0]);
  Syntax *Y = asIdentifier(A[1]);
  if (!X || !Y)
    wrongType("bound-identifier=?", "identifiers", X ? A[1] : A[0]);
  return Value::boolean(boundIdentifierEqual(X, Y));
}

Value primGenerateTemporaries(Context &Ctx, Value *A, size_t) {
  std::vector<Value> Out;
  for (const Value &E : listToVector(syntaxE(A[0]).isPair()
                                         ? syntaxE(A[0])
                                         : A[0])) {
    (void)E;
    Symbol *S = Ctx.Symbols.gensym("t");
    Out.push_back(makeSyntax(Ctx.TheHeap,
                             Value::object(ValueKind::Symbol, S), ScopeSet(),
                             nullptr));
  }
  return Ctx.TheHeap.list(Out, AllocSite::PrimList);
}

/// (syntax->list e) -> proper list of element syntaxes, or #f when the
/// syntax object is not a proper list.
Value primSyntaxToList(Context &Ctx, Value *A, size_t) {
  Value Cur = syntaxE(A[0]);
  std::vector<Value> Out;
  while (true) {
    if (Cur.isPair()) {
      Out.push_back(Cur.asPair()->Car);
      Cur = Cur.asPair()->Cdr;
      continue;
    }
    if (Cur.isSyntax() && syntaxE(Cur).isPair()) {
      Cur = syntaxE(Cur);
      continue;
    }
    break;
  }
  if (Cur.isSyntax() && syntaxE(Cur).isNil())
    Cur = Value::nil();
  if (!Cur.isNil())
    return Value::boolean(false);
  return Ctx.TheHeap.list(Out, AllocSite::PrimList);
}

/// (syntax-source e) -> "file:line:col" string, or #f when absent.
Value primSyntaxSource(Context &Ctx, Value *A, size_t) {
  const SourceObject *Src = syntaxSource(A[0]);
  if (!Src)
    return Value::boolean(false);
  return Ctx.TheHeap.string(Src->describe(), AllocSite::PrimString);
}

/// (syntax-source-file e) -> file name string, or #f.
Value primSyntaxSourceFile(Context &Ctx, Value *A, size_t) {
  const SourceObject *Src = syntaxSource(A[0]);
  if (!Src)
    return Value::boolean(false);
  return Ctx.TheHeap.string(Src->File, AllocSite::PrimString);
}

} // namespace

void pgmp::installSyntaxPrims(Context &Ctx) {
  Ctx.definePrimitive("syntax?", 1, 1, primSyntaxP);
  Ctx.definePrimitive("identifier?", 1, 1, primIdentifierP);
  Ctx.definePrimitive("syntax->datum", 1, 1, primSyntaxToDatum);
  Ctx.definePrimitive("datum->syntax", 2, 2, primDatumToSyntax);
  Ctx.definePrimitive("syntax-e", 1, 1, primSyntaxE);
  Ctx.definePrimitive("syntax->list", 1, 1, primSyntaxToList);
  Ctx.definePrimitive("free-identifier=?", 2, 2, primFreeIdentifierEq);
  Ctx.definePrimitive("bound-identifier=?", 2, 2, primBoundIdentifierEq);
  Ctx.definePrimitive("generate-temporaries", 1, 1, primGenerateTemporaries);
  Ctx.definePrimitive("syntax-source", 1, 1, primSyntaxSource);
  Ctx.definePrimitive("syntax-source-file", 1, 1, primSyntaxSourceFile);
}
