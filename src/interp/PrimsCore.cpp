//===- interp/PrimsCore.cpp - Pairs, predicates, I/O ----------------------===//

#include "interp/Eval.h"
#include "interp/Prims.h"
#include "interp/PrimsCommon.h"

using namespace pgmp;
using namespace pgmp::prims;

namespace {

Value primCons(Context &Ctx, Value *A, size_t) {
  return Ctx.TheHeap.cons(A[0], A[1], AllocSite::PrimList);
}
Value primCar(Context &, Value *A, size_t) {
  return wantPair("car", A[0])->Car;
}
Value primCdr(Context &, Value *A, size_t) {
  return wantPair("cdr", A[0])->Cdr;
}
Value primSetCar(Context &, Value *A, size_t) {
  wantPair("set-car!", A[0])->Car = A[1];
  return Value::undefined();
}
Value primSetCdr(Context &, Value *A, size_t) {
  wantPair("set-cdr!", A[0])->Cdr = A[1];
  return Value::undefined();
}
Value primCaar(Context &, Value *A, size_t) {
  return wantPair("caar", wantPair("caar", A[0])->Car)->Car;
}
Value primCadr(Context &, Value *A, size_t) {
  return wantPair("cadr", wantPair("cadr", A[0])->Cdr)->Car;
}
Value primCdar(Context &, Value *A, size_t) {
  return wantPair("cdar", wantPair("cdar", A[0])->Car)->Cdr;
}
Value primCddr(Context &, Value *A, size_t) {
  return wantPair("cddr", wantPair("cddr", A[0])->Cdr)->Cdr;
}
Value primCaddr(Context &, Value *A, size_t) {
  return wantPair("caddr",
                  wantPair("caddr", wantPair("caddr", A[0])->Cdr)->Cdr)
      ->Car;
}

Value primPairP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isPair());
}
Value primNullP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isNil());
}
Value primEqP(Context &, Value *A, size_t) {
  return Value::boolean(eqValues(A[0], A[1]));
}
Value primEqvP(Context &, Value *A, size_t) {
  return Value::boolean(eqvValues(A[0], A[1]));
}
Value primEqualP(Context &, Value *A, size_t) {
  return Value::boolean(equalValues(A[0], A[1]));
}
Value primNot(Context &, Value *A, size_t) {
  return Value::boolean(!A[0].isTruthy());
}
Value primBooleanP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isBool());
}
Value primProcedureP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isProcedure());
}
Value primSymbolP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isSymbol());
}
Value primVoidP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isVoid());
}
Value primEofP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isEof());
}
Value primEofObject(Context &, Value *, size_t) { return Value::eof(); }

Value primSymbolToString(Context &Ctx, Value *A, size_t) {
  return Ctx.TheHeap.string(wantSymbol("symbol->string", A[0])->Name,
                            AllocSite::PrimString);
}
Value primStringToSymbol(Context &Ctx, Value *A, size_t) {
  return Ctx.Symbols.internValue(wantString("string->symbol", A[0])->Text);
}
Value primGensym(Context &Ctx, Value *A, size_t N) {
  std::string Prefix = "g";
  if (N == 1) {
    if (A[0].isString())
      Prefix = A[0].asString()->Text;
    else if (A[0].isSymbol())
      Prefix = A[0].asSymbol()->Name;
    else
      wrongType("gensym", "a string or symbol prefix", A[0]);
  }
  return Value::object(ValueKind::Symbol, Ctx.Symbols.gensym(Prefix));
}

Value primVoid(Context &, Value *, size_t) { return Value::undefined(); }

Value primDisplay(Context &Ctx, Value *A, size_t) {
  Ctx.writeOutput(displayToString(A[0]));
  return Value::undefined();
}
Value primWrite(Context &Ctx, Value *A, size_t) {
  Ctx.writeOutput(writeToString(A[0]));
  return Value::undefined();
}
Value primNewline(Context &Ctx, Value *, size_t) {
  Ctx.writeOutput("\n");
  return Value::undefined();
}

Value primError(Context &, Value *A, size_t N) {
  std::string Msg;
  for (size_t I = 0; I < N; ++I) {
    if (I)
      Msg += " ";
    Msg += A[I].isString() ? A[I].asString()->Text : writeToString(A[I]);
  }
  raiseError(Msg);
}

Value primApply(Context &Ctx, Value *A, size_t N) {
  // (apply f a b ... rest-list)
  Value Fn = wantProcedure("apply", A[0]);
  std::vector<Value> Args;
  for (size_t I = 1; I + 1 < N; ++I)
    Args.push_back(A[I]);
  Value Rest = A[N - 1];
  while (Rest.isPair()) {
    Args.push_back(Rest.asPair()->Car);
    Rest = Rest.asPair()->Cdr;
  }
  if (!Rest.isNil())
    raiseError("apply: last argument is not a proper list");
  return applyProcedure(Ctx, Fn, Args.data(), Args.size());
}

Value primBox(Context &Ctx, Value *A, size_t) { return Ctx.TheHeap.box(A[0], AllocSite::PrimBox); }
Value primUnbox(Context &, Value *A, size_t) {
  if (!A[0].isBox())
    wrongType("unbox", "a box", A[0]);
  return A[0].asBox()->Boxed;
}
Value primSetBox(Context &, Value *A, size_t) {
  if (!A[0].isBox())
    wrongType("set-box!", "a box", A[0]);
  A[0].asBox()->Boxed = A[1];
  return Value::undefined();
}
Value primBoxP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isBox());
}

} // namespace

void pgmp::installCorePrims(Context &Ctx) {
  Ctx.definePrimitive("cons", 2, 2, primCons);
  Ctx.definePrimitive("car", 1, 1, primCar);
  Ctx.definePrimitive("cdr", 1, 1, primCdr);
  Ctx.definePrimitive("set-car!", 2, 2, primSetCar);
  Ctx.definePrimitive("set-cdr!", 2, 2, primSetCdr);
  Ctx.definePrimitive("caar", 1, 1, primCaar);
  Ctx.definePrimitive("cadr", 1, 1, primCadr);
  Ctx.definePrimitive("cdar", 1, 1, primCdar);
  Ctx.definePrimitive("cddr", 1, 1, primCddr);
  Ctx.definePrimitive("caddr", 1, 1, primCaddr);
  Ctx.definePrimitive("pair?", 1, 1, primPairP);
  Ctx.definePrimitive("null?", 1, 1, primNullP);
  Ctx.definePrimitive("eq?", 2, 2, primEqP);
  Ctx.definePrimitive("eqv?", 2, 2, primEqvP);
  Ctx.definePrimitive("equal?", 2, 2, primEqualP);
  Ctx.definePrimitive("not", 1, 1, primNot);
  Ctx.definePrimitive("boolean?", 1, 1, primBooleanP);
  Ctx.definePrimitive("procedure?", 1, 1, primProcedureP);
  Ctx.definePrimitive("symbol?", 1, 1, primSymbolP);
  Ctx.definePrimitive("void?", 1, 1, primVoidP);
  Ctx.definePrimitive("eof-object?", 1, 1, primEofP);
  Ctx.definePrimitive("eof-object", 0, 0, primEofObject);
  Ctx.definePrimitive("symbol->string", 1, 1, primSymbolToString);
  Ctx.definePrimitive("string->symbol", 1, 1, primStringToSymbol);
  Ctx.definePrimitive("gensym", 0, 1, primGensym);
  Ctx.definePrimitive("void", 0, 0, primVoid);
  Ctx.definePrimitive("display", 1, 1, primDisplay);
  Ctx.definePrimitive("write", 1, 1, primWrite);
  Ctx.definePrimitive("newline", 0, 0, primNewline);
  Ctx.definePrimitive("error", 1, -1, primError);
  Ctx.definePrimitive("apply", 2, -1, primApply);
  Ctx.definePrimitive("box", 1, 1, primBox);
  Ctx.definePrimitive("unbox", 1, 1, primUnbox);
  Ctx.definePrimitive("set-box!", 2, 2, primSetBox);
  Ctx.definePrimitive("box?", 1, 1, primBoxP);
}
