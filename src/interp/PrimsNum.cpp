//===- interp/PrimsNum.cpp - Arithmetic -----------------------------------===//

#include "interp/Prims.h"
#include "interp/PrimsCommon.h"
#include "support/Text.h"

#include <cmath>

using namespace pgmp;
using namespace pgmp::prims;

namespace {

bool bothFixnum(const Value &A, const Value &B) {
  return A.isFixnum() && B.isFixnum();
}

Value primAdd(Context &, Value *A, size_t N) {
  int64_t IAcc = 0;
  bool Exact = true;
  double DAcc = 0;
  for (size_t I = 0; I < N; ++I) {
    double D = wantNumber("+", A[I]);
    if (Exact && A[I].isFixnum())
      IAcc += A[I].asFixnum();
    else if (Exact) {
      Exact = false;
      DAcc = static_cast<double>(IAcc) + D;
    } else
      DAcc += D;
  }
  return Exact ? Value::fixnum(IAcc) : Value::flonum(DAcc);
}

Value primSub(Context &, Value *A, size_t N) {
  if (N == 1) {
    if (A[0].isFixnum())
      return Value::fixnum(-A[0].asFixnum());
    return Value::flonum(-wantNumber("-", A[0]));
  }
  bool Exact = A[0].isFixnum();
  int64_t IAcc = Exact ? A[0].asFixnum() : 0;
  double DAcc = Exact ? 0 : wantNumber("-", A[0]);
  for (size_t I = 1; I < N; ++I) {
    double D = wantNumber("-", A[I]);
    if (Exact && A[I].isFixnum())
      IAcc -= A[I].asFixnum();
    else if (Exact) {
      Exact = false;
      DAcc = static_cast<double>(IAcc) - D;
    } else
      DAcc -= D;
  }
  return Exact ? Value::fixnum(IAcc) : Value::flonum(DAcc);
}

Value primMul(Context &, Value *A, size_t N) {
  int64_t IAcc = 1;
  bool Exact = true;
  double DAcc = 1;
  for (size_t I = 0; I < N; ++I) {
    double D = wantNumber("*", A[I]);
    if (Exact && A[I].isFixnum())
      IAcc *= A[I].asFixnum();
    else if (Exact) {
      Exact = false;
      DAcc = static_cast<double>(IAcc) * D;
    } else
      DAcc *= D;
  }
  return Exact ? Value::fixnum(IAcc) : Value::flonum(DAcc);
}

Value primDiv(Context &, Value *A, size_t N) {
  if (N == 1) {
    double D = wantNumber("/", A[0]);
    if (D == 0)
      raiseError("/: division by zero");
    if (A[0].isFixnum() && (A[0].asFixnum() == 1 || A[0].asFixnum() == -1))
      return A[0];
    return Value::flonum(1.0 / D);
  }
  // Stay exact as long as every step divides evenly.
  bool Exact = A[0].isFixnum();
  int64_t IAcc = Exact ? A[0].asFixnum() : 0;
  double DAcc = wantNumber("/", A[0]);
  for (size_t I = 1; I < N; ++I) {
    double D = wantNumber("/", A[I]);
    if (D == 0)
      raiseError("/: division by zero");
    if (Exact && A[I].isFixnum() && IAcc % A[I].asFixnum() == 0) {
      IAcc /= A[I].asFixnum();
      DAcc = static_cast<double>(IAcc);
      continue;
    }
    if (Exact) {
      Exact = false;
      DAcc = static_cast<double>(IAcc);
    }
    DAcc /= D;
  }
  return Exact ? Value::fixnum(IAcc) : Value::flonum(DAcc);
}

template <typename Cmp> Value compareChain(const char *Name, Value *A,
                                           size_t N, Cmp Pred) {
  for (size_t I = 0; I + 1 < N; ++I)
    if (!Pred(wantNumber(Name, A[I]), wantNumber(Name, A[I + 1])))
      return Value::boolean(false);
  return Value::boolean(true);
}

Value primNumEq(Context &, Value *A, size_t N) {
  return compareChain("=", A, N, [](double X, double Y) { return X == Y; });
}
Value primLt(Context &, Value *A, size_t N) {
  return compareChain("<", A, N, [](double X, double Y) { return X < Y; });
}
Value primGt(Context &, Value *A, size_t N) {
  return compareChain(">", A, N, [](double X, double Y) { return X > Y; });
}
Value primLe(Context &, Value *A, size_t N) {
  return compareChain("<=", A, N, [](double X, double Y) { return X <= Y; });
}
Value primGe(Context &, Value *A, size_t N) {
  return compareChain(">=", A, N, [](double X, double Y) { return X >= Y; });
}

Value primQuotient(Context &, Value *A, size_t) {
  int64_t X = wantFixnum("quotient", A[0]);
  int64_t Y = wantFixnum("quotient", A[1]);
  if (Y == 0)
    raiseError("quotient: division by zero");
  return Value::fixnum(X / Y);
}
Value primRemainder(Context &, Value *A, size_t) {
  int64_t X = wantFixnum("remainder", A[0]);
  int64_t Y = wantFixnum("remainder", A[1]);
  if (Y == 0)
    raiseError("remainder: division by zero");
  return Value::fixnum(X % Y);
}
Value primModulo(Context &, Value *A, size_t) {
  int64_t X = wantFixnum("modulo", A[0]);
  int64_t Y = wantFixnum("modulo", A[1]);
  if (Y == 0)
    raiseError("modulo: division by zero");
  int64_t R = X % Y;
  if (R != 0 && ((R < 0) != (Y < 0)))
    R += Y;
  return Value::fixnum(R);
}

Value primAbs(Context &, Value *A, size_t) {
  if (A[0].isFixnum())
    return Value::fixnum(std::abs(A[0].asFixnum()));
  return Value::flonum(std::fabs(wantNumber("abs", A[0])));
}

Value primMin(Context &, Value *A, size_t N) {
  Value Best = A[0];
  double BestD = wantNumber("min", A[0]);
  for (size_t I = 1; I < N; ++I) {
    double D = wantNumber("min", A[I]);
    if (D < BestD) {
      Best = A[I];
      BestD = D;
    }
  }
  return Best;
}
Value primMax(Context &, Value *A, size_t N) {
  Value Best = A[0];
  double BestD = wantNumber("max", A[0]);
  for (size_t I = 1; I < N; ++I) {
    double D = wantNumber("max", A[I]);
    if (D > BestD) {
      Best = A[I];
      BestD = D;
    }
  }
  return Best;
}

Value primZeroP(Context &, Value *A, size_t) {
  return Value::boolean(wantNumber("zero?", A[0]) == 0);
}
Value primPositiveP(Context &, Value *A, size_t) {
  return Value::boolean(wantNumber("positive?", A[0]) > 0);
}
Value primNegativeP(Context &, Value *A, size_t) {
  return Value::boolean(wantNumber("negative?", A[0]) < 0);
}
Value primNumberP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isNumber());
}
Value primIntegerP(Context &, Value *A, size_t) {
  if (A[0].isFixnum())
    return Value::boolean(true);
  if (A[0].isFlonum())
    return Value::boolean(std::floor(A[0].asFlonum()) == A[0].asFlonum());
  return Value::boolean(false);
}
Value primRealP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isNumber());
}
Value primFixnumP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isFixnum());
}
Value primFlonumP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isFlonum());
}
Value primEvenP(Context &, Value *A, size_t) {
  return Value::boolean(wantFixnum("even?", A[0]) % 2 == 0);
}
Value primOddP(Context &, Value *A, size_t) {
  return Value::boolean(wantFixnum("odd?", A[0]) % 2 != 0);
}

Value primExactToInexact(Context &, Value *A, size_t) {
  return Value::flonum(wantNumber("exact->inexact", A[0]));
}
Value primInexactToExact(Context &, Value *A, size_t) {
  double D = wantNumber("inexact->exact", A[0]);
  return Value::fixnum(static_cast<int64_t>(D));
}

template <double (*F)(double)> Value round1(const char *Name, Value *A) {
  if (A[0].isFixnum())
    return A[0];
  return Value::flonum(F(wantNumber(Name, A[0])));
}
Value primFloor(Context &, Value *A, size_t) {
  return round1<std::floor>("floor", A);
}
Value primCeiling(Context &, Value *A, size_t) {
  return round1<std::ceil>("ceiling", A);
}
Value primRound(Context &, Value *A, size_t) {
  return round1<std::nearbyint>("round", A);
}
Value primTruncate(Context &, Value *A, size_t) {
  return round1<std::trunc>("truncate", A);
}

Value primSqrt(Context &, Value *A, size_t) {
  double D = wantNumber("sqrt", A[0]);
  if (D < 0)
    raiseError("sqrt: negative argument");
  double R = std::sqrt(D);
  if (A[0].isFixnum() && R == std::floor(R))
    return Value::fixnum(static_cast<int64_t>(R));
  return Value::flonum(R);
}

Value primExpt(Context &, Value *A, size_t) {
  if (bothFixnum(A[0], A[1]) && A[1].asFixnum() >= 0 &&
      A[1].asFixnum() < 63) {
    int64_t Base = A[0].asFixnum();
    int64_t Out = 1;
    for (int64_t I = 0; I < A[1].asFixnum(); ++I)
      Out *= Base;
    return Value::fixnum(Out);
  }
  return Value::flonum(
      std::pow(wantNumber("expt", A[0]), wantNumber("expt", A[1])));
}

Value primExp(Context &, Value *A, size_t) {
  return Value::flonum(std::exp(wantNumber("exp", A[0])));
}
Value primLog(Context &, Value *A, size_t) {
  return Value::flonum(std::log(wantNumber("log", A[0])));
}

Value primAdd1(Context &, Value *A, size_t) {
  if (A[0].isFixnum())
    return Value::fixnum(A[0].asFixnum() + 1);
  return Value::flonum(wantNumber("add1", A[0]) + 1);
}
Value primSub1(Context &, Value *A, size_t) {
  if (A[0].isFixnum())
    return Value::fixnum(A[0].asFixnum() - 1);
  return Value::flonum(wantNumber("sub1", A[0]) - 1);
}

Value primNumberToString(Context &Ctx, Value *A, size_t) {
  if (A[0].isFixnum())
    return Ctx.TheHeap.string(std::to_string(A[0].asFixnum()),
                              AllocSite::PrimString);
  return Ctx.TheHeap.string(formatFlonum(wantNumber("number->string", A[0])),
                            AllocSite::PrimString);
}

Value primStringToNumber(Context &Ctx, Value *A, size_t) {
  const std::string &S = wantString("string->number", A[0])->Text;
  int64_t I;
  if (parseInt64(S, I))
    return Value::fixnum(I);
  double D;
  if (parseDouble(S, D))
    return Value::flonum(D);
  (void)Ctx;
  return Value::boolean(false);
}

/// Deterministic RNG for Scheme-level workload generators (xorshift64*).
Value primRngSeed(Context &Ctx, Value *A, size_t) {
  int64_t S = wantFixnum("rng-seed!", A[0]);
  Ctx.RngState = static_cast<uint64_t>(S) | 1;
  return Value::undefined();
}
Value primRngNext(Context &Ctx, Value *A, size_t) {
  int64_t Bound = wantFixnum("rng-next", A[0]);
  if (Bound <= 0)
    raiseError("rng-next: bound must be positive");
  uint64_t X = Ctx.RngState;
  X ^= X >> 12;
  X ^= X << 25;
  X ^= X >> 27;
  Ctx.RngState = X;
  return Value::fixnum(
      static_cast<int64_t>((X * 0x2545F4914F6CDD1Dull) >> 1) % Bound);
}

} // namespace

void pgmp::installNumPrims(Context &Ctx) {
  Ctx.definePrimitive("+", 0, -1, primAdd);
  Ctx.definePrimitive("-", 1, -1, primSub);
  Ctx.definePrimitive("*", 0, -1, primMul);
  Ctx.definePrimitive("/", 1, -1, primDiv);
  Ctx.definePrimitive("=", 2, -1, primNumEq);
  Ctx.definePrimitive("<", 2, -1, primLt);
  Ctx.definePrimitive(">", 2, -1, primGt);
  Ctx.definePrimitive("<=", 2, -1, primLe);
  Ctx.definePrimitive(">=", 2, -1, primGe);
  Ctx.definePrimitive("quotient", 2, 2, primQuotient);
  Ctx.definePrimitive("remainder", 2, 2, primRemainder);
  Ctx.definePrimitive("modulo", 2, 2, primModulo);
  Ctx.definePrimitive("abs", 1, 1, primAbs);
  Ctx.definePrimitive("min", 1, -1, primMin);
  Ctx.definePrimitive("max", 1, -1, primMax);
  Ctx.definePrimitive("zero?", 1, 1, primZeroP);
  Ctx.definePrimitive("positive?", 1, 1, primPositiveP);
  Ctx.definePrimitive("negative?", 1, 1, primNegativeP);
  Ctx.definePrimitive("number?", 1, 1, primNumberP);
  Ctx.definePrimitive("integer?", 1, 1, primIntegerP);
  Ctx.definePrimitive("real?", 1, 1, primRealP);
  Ctx.definePrimitive("fixnum?", 1, 1, primFixnumP);
  Ctx.definePrimitive("flonum?", 1, 1, primFlonumP);
  Ctx.definePrimitive("even?", 1, 1, primEvenP);
  Ctx.definePrimitive("odd?", 1, 1, primOddP);
  Ctx.definePrimitive("exact->inexact", 1, 1, primExactToInexact);
  Ctx.definePrimitive("inexact->exact", 1, 1, primInexactToExact);
  Ctx.definePrimitive("floor", 1, 1, primFloor);
  Ctx.definePrimitive("ceiling", 1, 1, primCeiling);
  Ctx.definePrimitive("round", 1, 1, primRound);
  Ctx.definePrimitive("truncate", 1, 1, primTruncate);
  Ctx.definePrimitive("sqrt", 1, 1, primSqrt);
  Ctx.definePrimitive("expt", 2, 2, primExpt);
  Ctx.definePrimitive("exp", 1, 1, primExp);
  Ctx.definePrimitive("log", 1, 1, primLog);
  Ctx.definePrimitive("add1", 1, 1, primAdd1);
  Ctx.definePrimitive("sub1", 1, 1, primSub1);
  Ctx.definePrimitive("1+", 1, 1, primAdd1);
  Ctx.definePrimitive("1-", 1, 1, primSub1);
  Ctx.definePrimitive("number->string", 1, 1, primNumberToString);
  Ctx.definePrimitive("string->number", 1, 1, primStringToNumber);
  Ctx.definePrimitive("rng-seed!", 1, 1, primRngSeed);
  Ctx.definePrimitive("rng-next", 1, 1, primRngNext);
  Ctx.definePrimitive("sqr", 1, 1, [](Context &, Value *A, size_t) {
    if (A[0].isFixnum())
      return Value::fixnum(A[0].asFixnum() * A[0].asFixnum());
    double D = wantNumber("sqr", A[0]);
    return Value::flonum(D * D);
  });
}
