//===- interp/PrimsList.cpp - Lists, vectors, higher-order ops ------------===//

#include "interp/Eval.h"
#include "interp/Prims.h"
#include "interp/PrimsCommon.h"

#include <algorithm>

using namespace pgmp;
using namespace pgmp::prims;

namespace {

Value primList(Context &Ctx, Value *A, size_t N) {
  Value Out = Value::nil();
  for (size_t I = N; I > 0; --I)
    Out = Ctx.TheHeap.cons(A[I - 1], Out, AllocSite::PrimList);
  return Out;
}

Value primListP(Context &, Value *A, size_t) {
  return Value::boolean(listLength(A[0]) >= 0);
}

Value primLength(Context &, Value *A, size_t) {
  int64_t N = listLength(A[0]);
  if (N < 0)
    raiseError("length: not a proper list");
  return Value::fixnum(N);
}

Value primAppend(Context &Ctx, Value *A, size_t N) {
  if (N == 0)
    return Value::nil();
  Value Out = A[N - 1];
  for (size_t I = N - 1; I > 0; --I) {
    std::vector<Value> Elems = listToVector(A[I - 1]);
    for (size_t J = Elems.size(); J > 0; --J)
      Out = Ctx.TheHeap.cons(Elems[J - 1], Out, AllocSite::PrimList);
  }
  return Out;
}

Value primReverse(Context &Ctx, Value *A, size_t) {
  Value Out = Value::nil();
  Value Cur = A[0];
  while (Cur.isPair()) {
    Out = Ctx.TheHeap.cons(Cur.asPair()->Car, Out, AllocSite::PrimList);
    Cur = Cur.asPair()->Cdr;
  }
  if (!Cur.isNil())
    raiseError("reverse: not a proper list");
  return Out;
}

Value primListRef(Context &, Value *A, size_t) {
  int64_t K = wantFixnum("list-ref", A[1]);
  Value Cur = A[0];
  while (K > 0 && Cur.isPair()) {
    Cur = Cur.asPair()->Cdr;
    --K;
  }
  if (!Cur.isPair())
    raiseError("list-ref: index out of range");
  return Cur.asPair()->Car;
}

Value primListTail(Context &, Value *A, size_t) {
  int64_t K = wantFixnum("list-tail", A[1]);
  Value Cur = A[0];
  while (K > 0) {
    if (!Cur.isPair())
      raiseError("list-tail: index out of range");
    Cur = Cur.asPair()->Cdr;
    --K;
  }
  return Cur;
}

template <bool (*Same)(const Value &, const Value &)>
Value memGeneric(const char *Name, Value *A) {
  Value Cur = A[1];
  while (Cur.isPair()) {
    if (Same(Cur.asPair()->Car, A[0]))
      return Cur;
    Cur = Cur.asPair()->Cdr;
  }
  if (!Cur.isNil())
    raiseError(std::string(Name) + ": not a proper list");
  return Value::boolean(false);
}

Value primMemq(Context &, Value *A, size_t) {
  return memGeneric<eqValues>("memq", A);
}
Value primMemv(Context &, Value *A, size_t) {
  return memGeneric<eqvValues>("memv", A);
}
Value primMember(Context &, Value *A, size_t) {
  return memGeneric<equalValues>("member", A);
}

template <bool (*Same)(const Value &, const Value &)>
Value assGeneric(const char *Name, Value *A) {
  Value Cur = A[1];
  while (Cur.isPair()) {
    Value Entry = Cur.asPair()->Car;
    if (Entry.isPair() && Same(Entry.asPair()->Car, A[0]))
      return Entry;
    Cur = Cur.asPair()->Cdr;
  }
  if (!Cur.isNil())
    raiseError(std::string(Name) + ": not a proper list");
  return Value::boolean(false);
}

Value primAssq(Context &, Value *A, size_t) {
  return assGeneric<eqValues>("assq", A);
}
Value primAssv(Context &, Value *A, size_t) {
  return assGeneric<eqvValues>("assv", A);
}
Value primAssoc(Context &, Value *A, size_t) {
  return assGeneric<equalValues>("assoc", A);
}

Value primMap(Context &Ctx, Value *A, size_t N) {
  Value Fn = wantProcedure("map", A[0]);
  std::vector<std::vector<Value>> Lists;
  size_t Len = SIZE_MAX;
  for (size_t I = 1; I < N; ++I) {
    Lists.push_back(listToVector(A[I]));
    Len = std::min(Len, Lists.back().size());
  }
  std::vector<Value> Out;
  std::vector<Value> Args(N - 1);
  for (size_t I = 0; I < Len; ++I) {
    for (size_t L = 0; L < Lists.size(); ++L)
      Args[L] = Lists[L][I];
    Out.push_back(applyProcedure(Ctx, Fn, Args.data(), Args.size()));
  }
  return Ctx.TheHeap.list(Out, AllocSite::PrimList);
}

Value primForEach(Context &Ctx, Value *A, size_t N) {
  Value Fn = wantProcedure("for-each", A[0]);
  std::vector<std::vector<Value>> Lists;
  size_t Len = SIZE_MAX;
  for (size_t I = 1; I < N; ++I) {
    Lists.push_back(listToVector(A[I]));
    Len = std::min(Len, Lists.back().size());
  }
  std::vector<Value> Args(N - 1);
  for (size_t I = 0; I < Len; ++I) {
    for (size_t L = 0; L < Lists.size(); ++L)
      Args[L] = Lists[L][I];
    applyProcedure(Ctx, Fn, Args.data(), Args.size());
  }
  return Value::undefined();
}

Value primFilter(Context &Ctx, Value *A, size_t) {
  Value Fn = wantProcedure("filter", A[0]);
  std::vector<Value> Out;
  for (Value E : listToVector(A[1])) {
    Value Args[1] = {E};
    if (applyProcedure(Ctx, Fn, Args, 1).isTruthy())
      Out.push_back(E);
  }
  return Ctx.TheHeap.list(Out, AllocSite::PrimList);
}

Value primFoldLeft(Context &Ctx, Value *A, size_t) {
  Value Fn = wantProcedure("fold-left", A[0]);
  Value Acc = A[1];
  for (Value E : listToVector(A[2])) {
    Value Args[2] = {Acc, E};
    Acc = applyProcedure(Ctx, Fn, Args, 2);
  }
  return Acc;
}

Value primFoldRight(Context &Ctx, Value *A, size_t) {
  Value Fn = wantProcedure("fold-right", A[0]);
  Value Acc = A[1];
  std::vector<Value> Elems = listToVector(A[2]);
  for (size_t I = Elems.size(); I > 0; --I) {
    Value Args[2] = {Elems[I - 1], Acc};
    Acc = applyProcedure(Ctx, Fn, Args, 2);
  }
  return Acc;
}

Value primIota(Context &Ctx, Value *A, size_t N) {
  int64_t Count = wantFixnum("iota", A[0]);
  int64_t Start = N >= 2 ? wantFixnum("iota", A[1]) : 0;
  int64_t Step = N >= 3 ? wantFixnum("iota", A[2]) : 1;
  std::vector<Value> Out;
  Out.reserve(static_cast<size_t>(Count > 0 ? Count : 0));
  for (int64_t I = 0; I < Count; ++I)
    Out.push_back(Value::fixnum(Start + I * Step));
  return Ctx.TheHeap.list(Out, AllocSite::PrimList);
}

/// Stable sort with a caller-supplied less? procedure. Stability matters:
/// exclusive-cond must keep the original order of equal-weight clauses so
/// expansion is deterministic (paper Section 6.1).
Value sortImpl(Context &Ctx, Value Less, Value List, const char *Name) {
  wantProcedure(Name, Less);
  std::vector<Value> Elems = listToVector(List);
  std::stable_sort(Elems.begin(), Elems.end(),
                   [&](const Value &X, const Value &Y) {
                     Value Args[2] = {X, Y};
                     return applyProcedure(Ctx, Less, Args, 2).isTruthy();
                   });
  return Ctx.TheHeap.list(Elems, AllocSite::PrimList);
}

Value primSort(Context &Ctx, Value *A, size_t) {
  // Racket argument order: (sort lst less?)
  return sortImpl(Ctx, A[1], A[0], "sort");
}
Value primListSort(Context &Ctx, Value *A, size_t) {
  // Chez argument order: (list-sort less? lst)
  return sortImpl(Ctx, A[0], A[1], "list-sort");
}

/// Gathers the per-list argument vectors shared by andmap/ormap; the
/// iteration length is the shortest list.
static size_t gatherLists(const char *Name, Value *A, size_t N,
                          std::vector<std::vector<Value>> &Lists) {
  (void)Name;
  size_t Len = SIZE_MAX;
  for (size_t I = 1; I < N; ++I) {
    Lists.push_back(listToVector(A[I]));
    Len = std::min(Len, Lists.back().size());
  }
  return Len == SIZE_MAX ? 0 : Len;
}

Value primAndmap(Context &Ctx, Value *A, size_t N) {
  Value Fn = wantProcedure("andmap", A[0]);
  std::vector<std::vector<Value>> Lists;
  size_t Len = gatherLists("andmap", A, N, Lists);
  Value Last = Value::boolean(true);
  std::vector<Value> Args(Lists.size());
  for (size_t I = 0; I < Len; ++I) {
    for (size_t L = 0; L < Lists.size(); ++L)
      Args[L] = Lists[L][I];
    Last = applyProcedure(Ctx, Fn, Args.data(), Args.size());
    if (!Last.isTruthy())
      return Value::boolean(false);
  }
  return Last;
}

Value primOrmap(Context &Ctx, Value *A, size_t N) {
  Value Fn = wantProcedure("ormap", A[0]);
  std::vector<std::vector<Value>> Lists;
  size_t Len = gatherLists("ormap", A, N, Lists);
  std::vector<Value> Args(Lists.size());
  for (size_t I = 0; I < Len; ++I) {
    for (size_t L = 0; L < Lists.size(); ++L)
      Args[L] = Lists[L][I];
    Value R = applyProcedure(Ctx, Fn, Args.data(), Args.size());
    if (R.isTruthy())
      return R;
  }
  return Value::boolean(false);
}

Value primListCopy(Context &Ctx, Value *A, size_t) {
  return Ctx.TheHeap.list(listToVector(A[0]), AllocSite::PrimList);
}

//===----------------------------------------------------------------------===//
// Vectors
//===----------------------------------------------------------------------===//

Value primVector(Context &Ctx, Value *A, size_t N) {
  return Ctx.TheHeap.vector(std::vector<Value>(A, A + N),
                            AllocSite::PrimVector);
}

Value primMakeVector(Context &Ctx, Value *A, size_t N) {
  int64_t Len = wantFixnum("make-vector", A[0]);
  if (Len < 0)
    raiseError("make-vector: negative length");
  Value Fill = N == 2 ? A[1] : Value::fixnum(0);
  return Ctx.TheHeap.vector(
      std::vector<Value>(static_cast<size_t>(Len), Fill));
}

Value primVectorP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isVector());
}

Value primVectorLength(Context &, Value *A, size_t) {
  return Value::fixnum(
      static_cast<int64_t>(wantVector("vector-length", A[0])->Elems.size()));
}

Value primVectorRef(Context &, Value *A, size_t) {
  VectorObj *V = wantVector("vector-ref", A[0]);
  int64_t I = wantFixnum("vector-ref", A[1]);
  if (I < 0 || static_cast<size_t>(I) >= V->Elems.size())
    raiseError("vector-ref: index " + std::to_string(I) + " out of range");
  return V->Elems[static_cast<size_t>(I)];
}

Value primVectorSet(Context &, Value *A, size_t) {
  VectorObj *V = wantVector("vector-set!", A[0]);
  int64_t I = wantFixnum("vector-set!", A[1]);
  if (I < 0 || static_cast<size_t>(I) >= V->Elems.size())
    raiseError("vector-set!: index " + std::to_string(I) + " out of range");
  V->Elems[static_cast<size_t>(I)] = A[2];
  return Value::undefined();
}

Value primVectorToList(Context &Ctx, Value *A, size_t) {
  return Ctx.TheHeap.list(wantVector("vector->list", A[0])->Elems,
                          AllocSite::PrimList);
}

Value primListToVector(Context &Ctx, Value *A, size_t) {
  return Ctx.TheHeap.vector(listToVector(A[0]), AllocSite::PrimVector);
}

Value primVectorFill(Context &, Value *A, size_t) {
  VectorObj *V = wantVector("vector-fill!", A[0]);
  std::fill(V->Elems.begin(), V->Elems.end(), A[1]);
  return Value::undefined();
}

Value primVectorMap(Context &Ctx, Value *A, size_t) {
  Value Fn = wantProcedure("vector-map", A[0]);
  VectorObj *V = wantVector("vector-map", A[1]);
  std::vector<Value> Out;
  Out.reserve(V->Elems.size());
  for (const Value &E : V->Elems) {
    Value Args[1] = {E};
    Out.push_back(applyProcedure(Ctx, Fn, Args, 1));
  }
  return Ctx.TheHeap.vector(std::move(Out), AllocSite::PrimVector);
}

Value primVectorCopy(Context &Ctx, Value *A, size_t) {
  return Ctx.TheHeap.vector(wantVector("vector-copy", A[0])->Elems,
                            AllocSite::PrimVector);
}

} // namespace

void pgmp::installListPrims(Context &Ctx) {
  Ctx.definePrimitive("list", 0, -1, primList);
  Ctx.definePrimitive("list?", 1, 1, primListP);
  Ctx.definePrimitive("length", 1, 1, primLength);
  Ctx.definePrimitive("append", 0, -1, primAppend);
  Ctx.definePrimitive("reverse", 1, 1, primReverse);
  Ctx.definePrimitive("list-ref", 2, 2, primListRef);
  Ctx.definePrimitive("list-tail", 2, 2, primListTail);
  Ctx.definePrimitive("memq", 2, 2, primMemq);
  Ctx.definePrimitive("memv", 2, 2, primMemv);
  Ctx.definePrimitive("member", 2, 2, primMember);
  Ctx.definePrimitive("assq", 2, 2, primAssq);
  Ctx.definePrimitive("assv", 2, 2, primAssv);
  Ctx.definePrimitive("assoc", 2, 2, primAssoc);
  Ctx.definePrimitive("map", 2, -1, primMap);
  Ctx.definePrimitive("for-each", 2, -1, primForEach);
  Ctx.definePrimitive("filter", 2, 2, primFilter);
  Ctx.definePrimitive("fold-left", 3, 3, primFoldLeft);
  Ctx.definePrimitive("fold-right", 3, 3, primFoldRight);
  Ctx.definePrimitive("iota", 1, 3, primIota);
  Ctx.definePrimitive("sort", 2, 2, primSort);
  Ctx.definePrimitive("list-sort", 2, 2, primListSort);
  Ctx.definePrimitive("andmap", 2, -1, primAndmap);
  Ctx.definePrimitive("ormap", 2, -1, primOrmap);
  Ctx.definePrimitive("for-all", 2, -1, primAndmap);
  Ctx.definePrimitive("exists", 2, -1, primOrmap);
  Ctx.definePrimitive("list-copy", 1, 1, primListCopy);

  Ctx.definePrimitive("vector", 0, -1, primVector);
  Ctx.definePrimitive("make-vector", 1, 2, primMakeVector);
  Ctx.definePrimitive("vector?", 1, 1, primVectorP);
  Ctx.definePrimitive("vector-length", 1, 1, primVectorLength);
  Ctx.definePrimitive("vector-ref", 2, 2, primVectorRef);
  Ctx.definePrimitive("vector-set!", 3, 3, primVectorSet);
  Ctx.definePrimitive("vector->list", 1, 1, primVectorToList);
  Ctx.definePrimitive("list->vector", 1, 1, primListToVector);
  Ctx.definePrimitive("vector-fill!", 2, 2, primVectorFill);
  Ctx.definePrimitive("vector-map", 2, 2, primVectorMap);
  Ctx.definePrimitive("vector-copy", 1, 1, primVectorCopy);
}
