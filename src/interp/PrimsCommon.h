//===- interp/PrimsCommon.h - Helpers for primitives ----------*- C++ -*-===//
///
/// \file
/// Private helpers shared by the Prims*.cpp translation units: typed
/// argument accessors that raise well-formed Scheme errors on mismatch.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_INTERP_PRIMSCOMMON_H
#define PGMP_INTERP_PRIMSCOMMON_H

#include "interp/Context.h"
#include "support/Diagnostics.h"
#include "syntax/Writer.h"

namespace pgmp {
namespace prims {

[[noreturn]] inline void wrongType(const char *Prim, const char *Expected,
                                   const Value &Got) {
  raiseError(std::string(Prim) + ": expected " + Expected + ", got " +
             writeToString(Got));
}

inline int64_t wantFixnum(const char *Prim, const Value &V) {
  if (!V.isFixnum())
    wrongType(Prim, "a fixnum", V);
  return V.asFixnum();
}

inline double wantNumber(const char *Prim, const Value &V) {
  if (!V.isNumber())
    wrongType(Prim, "a number", V);
  return V.numberAsDouble();
}

inline StringObj *wantString(const char *Prim, const Value &V) {
  if (!V.isString())
    wrongType(Prim, "a string", V);
  return V.asString();
}

inline Symbol *wantSymbol(const char *Prim, const Value &V) {
  if (!V.isSymbol())
    wrongType(Prim, "a symbol", V);
  return V.asSymbol();
}

inline Pair *wantPair(const char *Prim, const Value &V) {
  if (!V.isPair())
    wrongType(Prim, "a pair", V);
  return V.asPair();
}

inline VectorObj *wantVector(const char *Prim, const Value &V) {
  if (!V.isVector())
    wrongType(Prim, "a vector", V);
  return V.asVector();
}

inline HashTable *wantHash(const char *Prim, const Value &V) {
  if (!V.isHash())
    wrongType(Prim, "a hashtable", V);
  return V.asHash();
}

inline uint32_t wantChar(const char *Prim, const Value &V) {
  if (!V.isChar())
    wrongType(Prim, "a character", V);
  return V.asChar();
}

inline Value wantProcedure(const char *Prim, const Value &V) {
  if (!V.isProcedure())
    wrongType(Prim, "a procedure", V);
  return V;
}

inline Syntax *wantSyntax(const char *Prim, const Value &V) {
  if (!V.isSyntax())
    wrongType(Prim, "a syntax object", V);
  return V.asSyntax();
}

} // namespace prims
} // namespace pgmp

#endif // PGMP_INTERP_PRIMSCOMMON_H
