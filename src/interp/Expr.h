//===- interp/Expr.h - Core-form IR ---------------------------*- C++ -*-===//
///
/// \file
/// The compiled representation of expanded core forms. Each node may
/// carry a profile point (its source object) and, when the unit was
/// compiled with instrumentation, a live counter pointer — incremented on
/// every evaluation of the node. Uninstrumented compiles leave Counter
/// null and the evaluator skips the bump entirely, which is how "profile
/// points need not introduce any overhead" (paper Section 3.1) holds.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_INTERP_EXPR_H
#define PGMP_INTERP_EXPR_H

#include "syntax/SymbolTable.h"
#include "syntax/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace pgmp {

class GcVisitor;
struct SourceObject;
struct Pattern;
struct Template;
class VmFunction;

/// Node kinds of the core IR.
enum class ExprKind : uint8_t {
  Const,
  LocalRef,
  GlobalRef,
  If,
  Lambda,
  Begin,
  SetLocal,
  SetGlobal,
  DefineGlobal,
  Call,
  SyntaxCase,
  Template,
};

/// Base class; concrete nodes below. Allocation and ownership are handled
/// by CodeUnit; nodes are immutable after compilation.
class Expr {
public:
  virtual ~Expr() = default;

  ExprKind K;
  const SourceObject *Src = nullptr;
  uint64_t *Counter = nullptr; ///< non-null only in instrumented units

protected:
  explicit Expr(ExprKind K) : K(K) {}
};

class ConstExpr : public Expr {
public:
  explicit ConstExpr(Value V) : Expr(ExprKind::Const), V(V) {}
  Value V;
};

class LocalRefExpr : public Expr {
public:
  LocalRefExpr(uint32_t Depth, uint32_t Index, Symbol *Name)
      : Expr(ExprKind::LocalRef), Depth(Depth), Index(Index), Name(Name) {}
  uint32_t Depth;
  uint32_t Index;
  Symbol *Name; ///< for diagnostics only
};

class GlobalRefExpr : public Expr {
public:
  GlobalRefExpr(Value *Cell, Symbol *Name)
      : Expr(ExprKind::GlobalRef), Cell(Cell), Name(Name) {}
  Value *Cell;
  Symbol *Name;
};

class IfExpr : public Expr {
public:
  IfExpr(Expr *Test, Expr *Then, Expr *Else)
      : Expr(ExprKind::If), Test(Test), Then(Then), Else(Else) {}
  Expr *Test;
  Expr *Then;
  Expr *Else; ///< never null (void constant when absent)
};

class LambdaExpr : public Expr {
public:
  LambdaExpr() : Expr(ExprKind::Lambda) {}
  std::vector<Symbol *> Params; ///< fixed parameters (renamed symbols)
  bool HasRest = false;         ///< extra slot collecting rest args
  Expr *Body = nullptr;
  std::string Name; ///< procedure name for diagnostics

  /// Tiered execution state, shared by every closure over this template.
  /// Mutable because tier-up is runtime bookkeeping on otherwise-immutable
  /// IR; an Engine is single-threaded, so plain fields suffice.
  mutable const VmFunction *Tiered = nullptr; ///< bytecode body once hot
  mutable uint32_t TierInvokes = 0; ///< applies observed pre-tier (Auto)
  mutable bool TierHot = false;     ///< pre-marked hot by a loaded profile
  mutable bool TierBlocked = false; ///< VM compile failed (phase-1 nodes)
  /// Compiled body parked by a continuous-profiling demotion. A demoted
  /// closure interprets again (Tiered null) but keeps its bytecode here,
  /// so a later re-promotion is a pointer swap, not a recompile — and is
  /// never confused with TierBlocked.
  mutable const VmFunction *TierCache = nullptr;

  size_t numSlots() const { return Params.size() + (HasRest ? 1 : 0); }
};

class BeginExpr : public Expr {
public:
  explicit BeginExpr(std::vector<Expr *> Body)
      : Expr(ExprKind::Begin), Body(std::move(Body)) {}
  std::vector<Expr *> Body; ///< nonempty
};

class SetLocalExpr : public Expr {
public:
  SetLocalExpr(uint32_t Depth, uint32_t Index, Expr *Val, Symbol *Name)
      : Expr(ExprKind::SetLocal), Depth(Depth), Index(Index), Val(Val),
        Name(Name) {}
  uint32_t Depth;
  uint32_t Index;
  Expr *Val;
  Symbol *Name;
};

class SetGlobalExpr : public Expr {
public:
  SetGlobalExpr(Value *Cell, Expr *Val, Symbol *Name)
      : Expr(ExprKind::SetGlobal), Cell(Cell), Val(Val), Name(Name) {}
  Value *Cell;
  Expr *Val;
  Symbol *Name;
};

class DefineGlobalExpr : public Expr {
public:
  DefineGlobalExpr(Value *Cell, Expr *Val, Symbol *Name)
      : Expr(ExprKind::DefineGlobal), Cell(Cell), Val(Val), Name(Name) {}
  Value *Cell;
  Expr *Val;
  Symbol *Name;
};

class CallExpr : public Expr {
public:
  CallExpr(Expr *Fn, std::vector<Expr *> Args, bool Tail)
      : Expr(ExprKind::Call), Fn(Fn), Args(std::move(Args)), Tail(Tail) {}
  Expr *Fn;
  std::vector<Expr *> Args;
  bool Tail; ///< in tail position of the enclosing lambda body
};

/// One syntax-case clause: pattern, optional fender, body. Matched
/// pattern variables are bound in a fresh frame of NumVars slots.
struct SyntaxCaseClause {
  Pattern *Pat = nullptr;
  uint32_t NumVars = 0;
  Expr *Fender = nullptr; ///< may be null
  Expr *Body = nullptr;
};

class SyntaxCaseExpr : public Expr {
public:
  SyntaxCaseExpr(Expr *Scrutinee, std::vector<SyntaxCaseClause> Clauses)
      : Expr(ExprKind::SyntaxCase), Scrutinee(Scrutinee),
        Clauses(std::move(Clauses)) {}
  Expr *Scrutinee;
  std::vector<SyntaxCaseClause> Clauses;
};

class TemplateExpr : public Expr {
public:
  explicit TemplateExpr(Template *Tpl) : Expr(ExprKind::Template), Tpl(Tpl) {}
  Template *Tpl;
};

/// Owns the nodes (and patterns/templates) of one compiled top-level
/// form. Kept alive for the whole session because closures point into it;
/// the exception is a selfContained() unit under boundary reclamation,
/// which the engine drops once its run finishes.
class CodeUnit {
public:
  CodeUnit();
  ~CodeUnit();
  CodeUnit(const CodeUnit &) = delete;
  CodeUnit &operator=(const CodeUnit &) = delete;

  template <typename T, typename... Args> T *make(Args &&...ArgList) {
    auto Owned = std::make_unique<T>(std::forward<Args>(ArgList)...);
    T *Raw = Owned.get();
    Exprs.push_back(std::move(Owned));
    return Raw;
  }

  Pattern *adoptPattern(std::unique_ptr<Pattern> P);
  Template *adoptTemplate(std::unique_ptr<Template> T);

  /// Heap values embedded as constants stay reachable via this pool,
  /// which the collector treats as a root set (forEachGcRoot).
  std::vector<Value> ConstantPool;

  /// Visits every heap Value this unit retains — the constant pool plus
  /// the Values embedded directly in nodes (ConstExpr), patterns
  /// (literal/datum), and templates (const/original syntax) — so a region
  /// reclamation can forward them. Flat walks over the ownership vectors;
  /// no recursion.
  void forEachGcRoot(GcVisitor &V);

  /// True when nothing can point into this unit after its run finishes:
  /// no lambdas (closures hold LambdaExpr pointers) and no syntax-rules
  /// patterns or templates (transformer meanings hold those). Such units
  /// are request-shaped, and a run-boundary reclamation may drop them
  /// instead of keeping them for the session.
  bool selfContained() const {
    return Lambdas.empty() && Patterns.empty() && Templates.empty();
  }

  /// Every lambda compiled into this unit, in compile order. The
  /// continuous-profiling re-tier walk (ProfileSession) iterates these to
  /// promote/demote against a fresh epoch; the unit outlives its closures,
  /// so the pointers stay valid for the session.
  std::vector<const LambdaExpr *> Lambdas;

  Expr *Root = nullptr;

private:
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Pattern>> Patterns;
  std::vector<std::unique_ptr<Template>> Templates;
};

} // namespace pgmp

#endif // PGMP_INTERP_EXPR_H
