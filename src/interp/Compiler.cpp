//===- interp/Compiler.cpp ------------------------------------------------===//

#include "interp/Compiler.h"

#include "expander/Matcher.h"
#include "expander/Template.h"
#include "support/Diagnostics.h"
#include "syntax/Writer.h"

#include <unordered_map>

using namespace pgmp;

namespace {

/// Compile-time knowledge about one local slot.
struct VarInfo {
  uint32_t Index = 0;
  bool IsPatternVar = false;
  int EllipsisDepth = 0;
};

/// One compile-time frame; mirrors a runtime EnvObj frame exactly
/// (lambda frames and syntax-case clause frames).
struct CompileFrame {
  std::unordered_map<Symbol *, VarInfo> Vars;
  CompileFrame *Parent = nullptr;
};

struct FoundVar {
  uint32_t Depth;
  VarInfo Info;
};

class CompilerImpl {
public:
  CompilerImpl(Context &Ctx, CodeUnit &Unit) : Ctx(Ctx), Unit(Unit) {
    Quote = Ctx.Symbols.intern("quote");
    If = Ctx.Symbols.intern("if");
    Lambda = Ctx.Symbols.intern("lambda");
    Begin = Ctx.Symbols.intern("begin");
    SetBang = Ctx.Symbols.intern("set!");
    Define = Ctx.Symbols.intern("define");
    SyntaxCaseStar = Ctx.Symbols.intern("syntax-case*");
    SyntaxTemplate = Ctx.Symbols.intern("syntax-template");
    QuasiTemplate = Ctx.Symbols.intern("quasisyntax-template");
    Ellipsis = Ctx.Symbols.intern("...");
    Underscore = Ctx.Symbols.intern("_");
    NoFender = Ctx.Symbols.intern("#%no-fender");
    UnsyntaxMark = Ctx.Symbols.intern("#%unsyntax");
    UnsyntaxSplicingMark = Ctx.Symbols.intern("#%unsyntax-splicing");
  }

  Expr *compile(Value Stx, CompileFrame *Frame, bool Tail);

private:
  [[noreturn]] void fail(const std::string &Msg, const Value &Stx) {
    const SourceObject *Src = syntaxSource(Stx);
    raiseError("compile: " + Msg + " in " + writeToString(Stx),
               Src ? Src->describe() : "");
  }

  /// Attaches source/profile info to a freshly built node.
  Expr *finish(Expr *E, const Value &Stx) {
    const SourceObject *Src = syntaxSource(Stx);
    E->Src = Src;
    Ctx.Stats.bump(Stat::CompiledNodes);
    if (Src && Ctx.InstrumentCompiles) {
      E->Counter = Ctx.Counters.counterFor(Src);
      Ctx.Stats.bump(Stat::InstrumentedNodes);
    }
    return E;
  }

  Expr *constant(Value V, const Value &Stx) {
    if (static_cast<uint8_t>(V.kind()) >=
        static_cast<uint8_t>(ValueKind::Symbol))
      Unit.ConstantPool.push_back(V);
    return finish(Unit.make<ConstExpr>(V), Stx);
  }

  std::optional<FoundVar> lookup(Symbol *S, CompileFrame *Frame) {
    uint32_t Depth = 0;
    for (CompileFrame *F = Frame; F; F = F->Parent, ++Depth) {
      auto It = F->Vars.find(S);
      if (It != F->Vars.end())
        return FoundVar{Depth, It->second};
    }
    return std::nullopt;
  }

  Expr *compileIdentifier(Value Stx, Symbol *S, CompileFrame *Frame) {
    if (!S->Interned) {
      auto Found = lookup(S, Frame);
      if (!Found)
        fail("reference to unknown renamed variable " + S->Name, Stx);
      if (Found->Info.IsPatternVar)
        fail("pattern variable " + S->Name + " used outside template", Stx);
      return finish(
          Unit.make<LocalRefExpr>(Found->Depth, Found->Info.Index, S), Stx);
    }
    return finish(Unit.make<GlobalRefExpr>(Ctx.globalCell(S), S), Stx);
  }

  /// Splits a core form list into elements + improper tail. The tail
  /// keeps its syntax wrapper; a wrapped () is normalized to plain nil.
  static void spine(Value Stx, std::vector<Value> &Elems, Value &TailOut) {
    Value Cur = syntaxE(Stx);
    while (true) {
      if (Cur.isPair()) {
        Elems.push_back(Cur.asPair()->Car);
        Cur = Cur.asPair()->Cdr;
        continue;
      }
      if (Cur.isSyntax() && syntaxE(Cur).isPair()) {
        Cur = syntaxE(Cur);
        continue;
      }
      break;
    }
    if (Cur.isSyntax() && syntaxE(Cur).isNil())
      Cur = Value::nil();
    TailOut = Cur;
  }

  Symbol *headSymbol(const std::vector<Value> &Elems) {
    if (Elems.empty())
      return nullptr;
    Syntax *Id = asIdentifier(Elems[0]);
    if (!Id)
      return nullptr;
    Symbol *S = Id->identifierSymbol();
    return S->Interned ? S : nullptr;
  }

  Expr *compileLambda(const std::vector<Value> &Elems, Value Stx,
                      CompileFrame *Frame);
  Expr *compileSyntaxCase(const std::vector<Value> &Elems, Value Stx,
                          CompileFrame *Frame, bool Tail);

  //===------------------------------------------------------------------===//
  // Patterns
  //===------------------------------------------------------------------===//

  struct PatternCtx {
    std::unordered_map<Symbol *, VarInfo> Vars;
    uint32_t NextSlot = 0;
    int Depth = 0;
    std::vector<std::vector<uint32_t> *> AccStack;
  };

  Pattern *compilePattern(Value PatStx, PatternCtx &PC) {
    Value In = syntaxE(PatStx);
    switch (In.kind()) {
    case ValueKind::Symbol: {
      Symbol *S = In.asSymbol();
      if (S == Underscore)
        return adopt(std::make_unique<WildcardPattern>());
      if (S == Ellipsis)
        fail("misplaced ellipsis in pattern", PatStx);
      if (S->Interned) {
        if (!PatStx.isSyntax())
          fail("literal pattern lost its identifier syntax", PatStx);
        return adopt(std::make_unique<LiteralPattern>(PatStx));
      }
      // Renamed pattern variable.
      if (PC.Vars.count(S))
        fail("duplicate pattern variable " + S->Name, PatStx);
      uint32_t Slot = PC.NextSlot++;
      PC.Vars.emplace(S, VarInfo{Slot, /*IsPatternVar=*/true, PC.Depth});
      for (auto *Acc : PC.AccStack)
        Acc->push_back(Slot);
      return adopt(std::make_unique<VarPattern>(Slot, S));
    }
    case ValueKind::Nil:
      return adopt(std::make_unique<NullPattern>());
    case ValueKind::Pair:
      return compileListPattern(PatStx, PC);
    case ValueKind::Vector: {
      std::vector<Pattern *> Elems;
      for (const Value &E : In.asVector()->Elems) {
        if (isEllipsisId(E))
          fail("ellipsis in vector pattern is not supported", PatStx);
        Elems.push_back(compilePattern(E, PC));
      }
      return adopt(std::make_unique<VectorPattern>(std::move(Elems)));
    }
    default:
      Unit.ConstantPool.push_back(In);
      return adopt(std::make_unique<DatumPattern>(In));
    }
  }

  bool isEllipsisId(const Value &V) {
    Syntax *Id = asIdentifier(V);
    return Id && Id->identifierSymbol() == Ellipsis;
  }

  Pattern *compileListPattern(Value PatStx, PatternCtx &PC) {
    std::vector<Value> Elems;
    Value TailEnd;
    spine(PatStx, Elems, TailEnd);

    // Find the (single, per level) ellipsis position.
    size_t EllipsisPos = Elems.size();
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (isEllipsisId(Elems[I])) {
        if (I == 0)
          fail("ellipsis with no preceding pattern", PatStx);
        if (EllipsisPos != Elems.size())
          fail("multiple ellipses at one list level", PatStx);
        EllipsisPos = I;
      }
    }

    if (EllipsisPos == Elems.size()) {
      // Plain (possibly dotted) list pattern.
      Pattern *End = TailEnd.isNil()
                         ? adopt(std::make_unique<NullPattern>())
                         : compilePattern(TailEnd, PC);
      Pattern *P = End;
      for (size_t I = Elems.size(); I > 0; --I)
        P = adopt(std::make_unique<ConsPattern>(compilePattern(Elems[I - 1], PC), P));
      // Note: builds Cons nodes right-to-left but compiles sub-patterns
      // right-to-left as well; slot order is still deterministic (it is
      // assigned by NextSlot at var sites), though not left-to-right.
      return P;
    }

    // Elements before the repeated one.
    auto EPOwned = std::make_unique<EllipsisPattern>();
    EllipsisPattern *EP = EPOwned.get();
    Pattern *EPAdopted = adopt(std::move(EPOwned));

    PC.AccStack.push_back(&EP->SubSlots);
    ++PC.Depth;
    EP->Sub = compilePattern(Elems[EllipsisPos - 1], PC);
    --PC.Depth;
    PC.AccStack.pop_back();

    for (size_t I = EllipsisPos + 1; I < Elems.size(); ++I) {
      if (isEllipsisId(Elems[I]))
        fail("multiple ellipses at one list level", PatStx);
      EP->TailElems.push_back(compilePattern(Elems[I], PC));
    }
    EP->End = TailEnd.isNil() ? adopt(std::make_unique<NullPattern>())
                              : compilePattern(TailEnd, PC);

    Pattern *P = EPAdopted;
    for (size_t I = EllipsisPos - 1; I > 0; --I)
      P = adopt(std::make_unique<ConsPattern>(compilePattern(Elems[I - 1], PC), P));
    return P;
  }

  Pattern *adopt(std::unique_ptr<Pattern> P) {
    return Unit.adoptPattern(std::move(P));
  }
  Template *adopt(std::unique_ptr<Template> T) {
    return Unit.adoptTemplate(std::move(T));
  }

  //===------------------------------------------------------------------===//
  // Templates
  //===------------------------------------------------------------------===//

  struct TemplateCtx {
    CompileFrame *Frame = nullptr;
    bool Quasi = false;
    bool Dynamic = false; ///< set when the current subtree needs rebuilding
    std::vector<std::vector<const VarRefTemplate *> *> DriverStack;
  };

  Template *compileTemplate(Value TplStx, TemplateCtx &TC) {
    Value In = syntaxE(TplStx);
    switch (In.kind()) {
    case ValueKind::Symbol: {
      Symbol *S = In.asSymbol();
      if (!S->Interned) {
        auto Found = lookup(S, TC.Frame);
        if (Found && Found->Info.IsPatternVar) {
          TC.Dynamic = true;
          auto VR = std::make_unique<VarRefTemplate>(
              Found->Depth, Found->Info.Index, S, Found->Info.EllipsisDepth);
          const VarRefTemplate *Raw = VR.get();
          if (Raw->EllipsisDepth >= 1)
            for (auto *Acc : TC.DriverStack)
              Acc->push_back(Raw);
          return adopt(std::move(VR));
        }
      }
      return adopt(std::make_unique<ConstTemplate>(TplStx));
    }
    case ValueKind::Pair: {
      // Quasisyntax escapes.
      if (TC.Quasi) {
        if (Symbol *Mark = listMarker(In)) {
          if (Mark == UnsyntaxMark) {
            TC.Dynamic = true;
            Expr *E = compile(secondOf(In), TC.Frame, /*Tail=*/false);
            return adopt(std::make_unique<UnsyntaxTemplate>(E));
          }
          if (Mark == UnsyntaxSplicingMark)
            fail("unsyntax-splicing outside list context", TplStx);
        }
      }
      return compileListTemplate(TplStx, TC);
    }
    case ValueKind::Vector: {
      bool Dyn = false;
      auto VTOwned = std::make_unique<VectorTemplate>();
      VectorTemplate *VT = VTOwned.get();
      VT->OriginalStx = TplStx;
      Template *Adopted = adopt(std::move(VTOwned));
      compileElems(In.asVector()->Elems, Value::nil(), VT->Elems, nullptr, TC,
                   Dyn, TplStx);
      if (!Dyn)
        return adopt(std::make_unique<ConstTemplate>(TplStx));
      TC.Dynamic = true;
      return Adopted;
    }
    default:
      return adopt(std::make_unique<ConstTemplate>(TplStx));
    }
  }

  /// If \p In is a two-element list whose head is an interned marker
  /// symbol, returns it.
  Symbol *listMarker(const Value &In) {
    if (!In.isPair())
      return nullptr;
    Syntax *Id = asIdentifier(In.asPair()->Car);
    if (!Id)
      return nullptr;
    Symbol *S = Id->identifierSymbol();
    if (S == UnsyntaxMark || S == UnsyntaxSplicingMark)
      return S;
    return nullptr;
  }

  Value secondOf(const Value &In) {
    Value Rest = syntaxE(In.asPair()->Cdr);
    if (!Rest.isPair())
      raiseError("malformed unsyntax marker");
    return Rest.asPair()->Car;
  }

  void compileElems(const std::vector<Value> &Elems, Value,
                    std::vector<TemplateElem> &Out, Template **TailOut,
                    TemplateCtx &TC, bool &Dyn, const Value &Whole) {
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (isEllipsisId(Elems[I]))
        fail("misplaced ellipsis in template", Whole);
      TemplateElem Elem;
      // Splicing escape as an element.
      Value ElemIn = syntaxE(Elems[I]);
      if (TC.Quasi && listMarker(ElemIn) == UnsyntaxSplicingMark) {
        Expr *E = compile(secondOf(ElemIn), TC.Frame, /*Tail=*/false);
        Elem.T = adopt(std::make_unique<UnsyntaxTemplate>(E));
        Elem.Splice = true;
        Dyn = true;
        Out.push_back(Elem);
        continue;
      }
      // Ellipsis-repeated element?
      bool Repeated = I + 1 < Elems.size() && isEllipsisId(Elems[I + 1]);
      if (Repeated) {
        TC.DriverStack.push_back(&Elem.Drivers);
        bool SubDyn = false;
        std::swap(TC.Dynamic, SubDyn);
        Elem.T = compileTemplate(Elems[I], TC);
        std::swap(TC.Dynamic, SubDyn);
        Dyn |= SubDyn;
        TC.DriverStack.pop_back();
        Elem.Ellipsis = true;
        if (Elem.Drivers.empty())
          fail("no pattern variable under ellipsis in template", Whole);
        if (I + 2 < Elems.size() && isEllipsisId(Elems[I + 2]))
          fail("multiple consecutive ellipses are not supported", Whole);
        ++I; // skip the ellipsis token
        Dyn = true;
      } else {
        bool SubDyn = false;
        std::swap(TC.Dynamic, SubDyn);
        Elem.T = compileTemplate(Elems[I], TC);
        std::swap(TC.Dynamic, SubDyn);
        Dyn |= SubDyn;
      }
      Out.push_back(Elem);
    }
    (void)TailOut;
  }

  Template *compileListTemplate(Value TplStx, TemplateCtx &TC) {
    std::vector<Value> Elems;
    Value TailEnd;
    spine(TplStx, Elems, TailEnd);

    bool Dyn = false;
    auto LTOwned = std::make_unique<ListTemplate>();
    ListTemplate *LT = LTOwned.get();
    LT->OriginalStx = TplStx;
    Template *Adopted = adopt(std::move(LTOwned));

    compileElems(Elems, Value::nil(), LT->Elems, nullptr, TC, Dyn, TplStx);

    if (!TailEnd.isNil()) {
      bool SubDyn = false;
      std::swap(TC.Dynamic, SubDyn);
      LT->Tail = compileTemplate(TailEnd, TC);
      std::swap(TC.Dynamic, SubDyn);
      Dyn |= SubDyn;
    }
    if (!Dyn)
      return adopt(std::make_unique<ConstTemplate>(TplStx));
    TC.Dynamic = true;
    return Adopted;
  }

  Context &Ctx;
  CodeUnit &Unit;

  Symbol *Quote, *If, *Lambda, *Begin, *SetBang, *Define, *SyntaxCaseStar,
      *SyntaxTemplate, *QuasiTemplate, *Ellipsis, *Underscore, *NoFender,
      *UnsyntaxMark, *UnsyntaxSplicingMark;
};

Expr *CompilerImpl::compileLambda(const std::vector<Value> &Elems, Value Stx,
                                  CompileFrame *Frame) {
  if (Elems.size() < 3)
    fail("lambda needs parameters and a body", Stx);

  auto L = Unit.make<LambdaExpr>();
  CompileFrame LambdaFrame;
  LambdaFrame.Parent = Frame;

  // Parameter list: proper, dotted, or a single rest identifier.
  std::vector<Value> ParamIds;
  Value RestId = Value::nil();
  Value ParamsStx = Elems[1];
  Value ParamsIn = syntaxE(ParamsStx);
  if (ParamsIn.isSymbol()) {
    RestId = ParamsStx;
  } else {
    Value Tail;
    spine(ParamsStx, ParamIds, Tail);
    if (!Tail.isNil()) {
      if (!syntaxE(Tail).isSymbol())
        fail("bad rest parameter", Stx);
      RestId = Tail;
    }
  }

  uint32_t Index = 0;
  auto addParam = [&](Value IdStx) {
    Value In = syntaxE(IdStx);
    if (!In.isSymbol() || In.asSymbol()->Interned)
      fail("lambda parameter is not a renamed identifier", Stx);
    Symbol *S = In.asSymbol();
    if (LambdaFrame.Vars.count(S))
      fail("duplicate parameter " + S->Name, Stx);
    LambdaFrame.Vars.emplace(S, VarInfo{Index++, false, 0});
    return S;
  };
  for (const Value &P : ParamIds)
    L->Params.push_back(addParam(P));
  if (!RestId.isNil()) {
    addParam(RestId);
    L->HasRest = true;
  }

  // Body: implicit begin.
  std::vector<Expr *> Body;
  for (size_t I = 2; I < Elems.size(); ++I)
    Body.push_back(
        compile(Elems[I], &LambdaFrame, /*Tail=*/I + 1 == Elems.size()));
  L->Body = Body.size() == 1 ? Body[0]
                             : finish(Unit.make<BeginExpr>(std::move(Body)),
                                      Elems.back());
  finish(L, Stx);

  // Profile-guided pre-tiering: a lambda whose body was hot in a loaded
  // profile skips the Auto warm-up and compiles to bytecode on its first
  // invocation. Consulted once at compile time — the snapshot is O(1)
  // when the database hasn't changed.
  if (Ctx.Tier.Mode == TierMode::Auto && L->Body->Src) {
    ProfileSnapshot Snap = Ctx.ProfileDb.snapshot();
    if (Snap.hasData() &&
        Snap.weightOpt(L->Body->Src).value_or(0.0) >= Ctx.Tier.HotWeight) {
      L->TierHot = true;
      Ctx.Stats.bump(Stat::TierPremarkedHot);
    }
  }
  // Registered on the unit (and, via adoptCode, on Context::TierLambdas)
  // so the continuous-profiling epoch walk can revisit this decision.
  Unit.Lambdas.push_back(L);
  return L;
}

Expr *CompilerImpl::compileSyntaxCase(const std::vector<Value> &Elems,
                                      Value Stx, CompileFrame *Frame,
                                      bool Tail) {
  if (Elems.size() < 2)
    fail("syntax-case* needs a scrutinee", Stx);
  Expr *Scrut = compile(Elems[1], Frame, /*Tail=*/false);

  std::vector<SyntaxCaseClause> Clauses;
  for (size_t I = 2; I < Elems.size(); ++I) {
    std::vector<Value> Parts;
    Value TailEnd;
    spine(Elems[I], Parts, TailEnd);
    if (Parts.size() != 3 || !TailEnd.isNil())
      fail("malformed syntax-case* clause", Elems[I]);

    SyntaxCaseClause Clause;
    PatternCtx PC;
    Clause.Pat = compilePattern(Parts[0], PC);
    Clause.NumVars = PC.NextSlot;

    CompileFrame ClauseFrame;
    ClauseFrame.Parent = Frame;
    ClauseFrame.Vars = std::move(PC.Vars);

    Syntax *FenderId = asIdentifier(Parts[1]);
    if (!(FenderId && FenderId->identifierSymbol() == NoFender))
      Clause.Fender = compile(Parts[1], &ClauseFrame, /*Tail=*/false);
    Clause.Body = compile(Parts[2], &ClauseFrame, Tail);
    Clauses.push_back(Clause);
  }
  return finish(Unit.make<SyntaxCaseExpr>(Scrut, std::move(Clauses)), Stx);
}

Expr *CompilerImpl::compile(Value Stx, CompileFrame *Frame, bool Tail) {
  Value In = syntaxE(Stx);
  switch (In.kind()) {
  case ValueKind::Symbol:
    return compileIdentifier(Stx, In.asSymbol(), Frame);
  case ValueKind::Pair:
    break; // handled below
  case ValueKind::Nil:
    fail("empty application ()", Stx);
  default:
    // Self-evaluating atom; vector literals still carry wrapped elements,
    // so strip recursively.
    return constant(In.isVector() ? syntaxToDatum(Ctx.TheHeap, In) : In,
                    Stx);
  }

  std::vector<Value> Elems;
  Value TailEnd;
  spine(Stx, Elems, TailEnd);
  if (!TailEnd.isNil())
    fail("dotted list in expression position", Stx);

  Symbol *Head = headSymbol(Elems);
  if (Head == Quote) {
    if (Elems.size() != 2)
      fail("quote needs exactly one datum", Stx);
    return constant(syntaxToDatum(Ctx.TheHeap, Elems[1]), Stx);
  }
  if (Head == If) {
    if (Elems.size() != 3 && Elems.size() != 4)
      fail("if needs 2 or 3 parts", Stx);
    Expr *Test = compile(Elems[1], Frame, false);
    Expr *Then = compile(Elems[2], Frame, Tail);
    Expr *Else = Elems.size() == 4
                     ? compile(Elems[3], Frame, Tail)
                     : finish(Unit.make<ConstExpr>(Value::undefined()), Stx);
    return finish(Unit.make<IfExpr>(Test, Then, Else), Stx);
  }
  if (Head == Lambda)
    return compileLambda(Elems, Stx, Frame);
  if (Head == Begin) {
    if (Elems.size() == 1)
      return constant(Value::undefined(), Stx);
    std::vector<Expr *> Body;
    for (size_t I = 1; I < Elems.size(); ++I)
      Body.push_back(compile(Elems[I], Frame, Tail && I + 1 == Elems.size()));
    if (Body.size() == 1)
      return Body[0];
    return finish(Unit.make<BeginExpr>(std::move(Body)), Stx);
  }
  if (Head == SetBang) {
    if (Elems.size() != 3)
      fail("set! needs a variable and a value", Stx);
    Value IdIn = syntaxE(Elems[1]);
    if (!IdIn.isSymbol())
      fail("set! target is not an identifier", Stx);
    Symbol *S = IdIn.asSymbol();
    Expr *Val = compile(Elems[2], Frame, false);
    if (!S->Interned) {
      auto Found = lookup(S, Frame);
      if (!Found || Found->Info.IsPatternVar)
        fail("set! of unknown variable " + S->Name, Stx);
      return finish(
          Unit.make<SetLocalExpr>(Found->Depth, Found->Info.Index, Val, S),
          Stx);
    }
    return finish(Unit.make<SetGlobalExpr>(Ctx.globalCell(S), Val, S), Stx);
  }
  if (Head == Define) {
    if (Elems.size() != 3)
      fail("define needs a name and a value", Stx);
    Value IdIn = syntaxE(Elems[1]);
    if (!IdIn.isSymbol() || !IdIn.asSymbol()->Interned)
      fail("core define expects a global name", Stx);
    Symbol *S = IdIn.asSymbol();
    Expr *Val = compile(Elems[2], Frame, false);
    if (Val->K == ExprKind::Lambda)
      static_cast<LambdaExpr *>(Val)->Name = S->Name;
    return finish(Unit.make<DefineGlobalExpr>(Ctx.globalCell(S), Val, S),
                  Stx);
  }
  if (Head == SyntaxCaseStar)
    return compileSyntaxCase(Elems, Stx, Frame, Tail);
  if (Head == SyntaxTemplate || Head == QuasiTemplate) {
    if (Elems.size() != 2)
      fail("syntax template form needs one template", Stx);
    TemplateCtx TC;
    TC.Frame = Frame;
    TC.Quasi = Head == QuasiTemplate;
    Template *Tpl = compileTemplate(Elems[1], TC);
    return finish(Unit.make<TemplateExpr>(Tpl), Stx);
  }

  // Application.
  Expr *Fn = compile(Elems[0], Frame, false);
  std::vector<Expr *> Args;
  for (size_t I = 1; I < Elems.size(); ++I)
    Args.push_back(compile(Elems[I], Frame, false));
  return finish(Unit.make<CallExpr>(Fn, std::move(Args), Tail), Stx);
}

} // namespace

std::unique_ptr<CodeUnit> pgmp::compileCore(Context &Ctx, Value CoreStx) {
  Ctx.Stats.bump(Stat::CompiledUnits);
  // Constants materialized at compile time (quoted data stripped of its
  // syntax wrappers) are attributed to the compiler's site.
  AllocSiteScope Site(Ctx.TheHeap, AllocSite::CompilerConst);
  auto Unit = std::make_unique<CodeUnit>();
  CompilerImpl C(Ctx, *Unit);
  Unit->Root = C.compile(CoreStx, /*Frame=*/nullptr, /*Tail=*/false);
  return Unit;
}
