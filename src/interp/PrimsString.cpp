//===- interp/PrimsString.cpp - Strings and characters --------------------===//

#include "interp/Prims.h"
#include "interp/PrimsCommon.h"

#include <cctype>

using namespace pgmp;
using namespace pgmp::prims;

namespace {

Value primStringP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isString());
}

Value primStringLength(Context &, Value *A, size_t) {
  return Value::fixnum(
      static_cast<int64_t>(wantString("string-length", A[0])->Text.size()));
}

Value primStringRef(Context &, Value *A, size_t) {
  const std::string &S = wantString("string-ref", A[0])->Text;
  int64_t I = wantFixnum("string-ref", A[1]);
  if (I < 0 || static_cast<size_t>(I) >= S.size())
    raiseError("string-ref: index out of range");
  return Value::charval(static_cast<unsigned char>(S[static_cast<size_t>(I)]));
}

Value primSubstring(Context &Ctx, Value *A, size_t N) {
  const std::string &S = wantString("substring", A[0])->Text;
  int64_t Start = wantFixnum("substring", A[1]);
  int64_t End = N == 3 ? wantFixnum("substring", A[2])
                       : static_cast<int64_t>(S.size());
  if (Start < 0 || End < Start || static_cast<size_t>(End) > S.size())
    raiseError("substring: bad range");
  return Ctx.TheHeap.string(S.substr(static_cast<size_t>(Start),
                                     static_cast<size_t>(End - Start)),
                            AllocSite::PrimString);
}

Value primStringAppend(Context &Ctx, Value *A, size_t N) {
  std::string Out;
  for (size_t I = 0; I < N; ++I)
    Out += wantString("string-append", A[I])->Text;
  return Ctx.TheHeap.string(std::move(Out), AllocSite::PrimString);
}

Value primStringEq(Context &, Value *A, size_t N) {
  for (size_t I = 0; I + 1 < N; ++I)
    if (wantString("string=?", A[I])->Text !=
        wantString("string=?", A[I + 1])->Text)
      return Value::boolean(false);
  return Value::boolean(true);
}

Value primStringLt(Context &, Value *A, size_t) {
  return Value::boolean(wantString("string<?", A[0])->Text <
                        wantString("string<?", A[1])->Text);
}

/// (string-contains? haystack needle) -> boolean. This backs the paper's
/// running example predicate subject-contains (Figure 1).
Value primStringContainsP(Context &, Value *A, size_t) {
  const std::string &H = wantString("string-contains?", A[0])->Text;
  const std::string &Needle = wantString("string-contains?", A[1])->Text;
  return Value::boolean(H.find(Needle) != std::string::npos);
}

Value primStringToList(Context &Ctx, Value *A, size_t) {
  const std::string &S = wantString("string->list", A[0])->Text;
  std::vector<Value> Out;
  Out.reserve(S.size());
  for (char C : S)
    Out.push_back(Value::charval(static_cast<unsigned char>(C)));
  return Ctx.TheHeap.list(Out, AllocSite::PrimList);
}

Value primListToString(Context &Ctx, Value *A, size_t) {
  std::string Out;
  for (const Value &C : listToVector(A[0]))
    Out += static_cast<char>(wantChar("list->string", C));
  return Ctx.TheHeap.string(std::move(Out), AllocSite::PrimString);
}

Value primMakeString(Context &Ctx, Value *A, size_t N) {
  int64_t Len = wantFixnum("make-string", A[0]);
  char Fill = N == 2 ? static_cast<char>(wantChar("make-string", A[1])) : ' ';
  if (Len < 0)
    raiseError("make-string: negative length");
  return Ctx.TheHeap.string(std::string(static_cast<size_t>(Len), Fill),
                            AllocSite::PrimString);
}

Value primStringCopy(Context &Ctx, Value *A, size_t) {
  return Ctx.TheHeap.string(wantString("string-copy", A[0])->Text,
                            AllocSite::PrimString);
}

Value primStringUpcase(Context &Ctx, Value *A, size_t) {
  std::string S = wantString("string-upcase", A[0])->Text;
  for (char &C : S)
    C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  return Ctx.TheHeap.string(std::move(S), AllocSite::PrimString);
}

Value primStringDowncase(Context &Ctx, Value *A, size_t) {
  std::string S = wantString("string-downcase", A[0])->Text;
  for (char &C : S)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Ctx.TheHeap.string(std::move(S), AllocSite::PrimString);
}

//===----------------------------------------------------------------------===//
// Characters
//===----------------------------------------------------------------------===//

Value primCharP(Context &, Value *A, size_t) {
  return Value::boolean(A[0].isChar());
}
Value primCharEq(Context &, Value *A, size_t N) {
  for (size_t I = 0; I + 1 < N; ++I)
    if (wantChar("char=?", A[I]) != wantChar("char=?", A[I + 1]))
      return Value::boolean(false);
  return Value::boolean(true);
}
Value primCharLt(Context &, Value *A, size_t) {
  return Value::boolean(wantChar("char<?", A[0]) < wantChar("char<?", A[1]));
}
Value primCharLe(Context &, Value *A, size_t) {
  return Value::boolean(wantChar("char<=?", A[0]) <=
                        wantChar("char<=?", A[1]));
}
Value primCharToInteger(Context &, Value *A, size_t) {
  return Value::fixnum(wantChar("char->integer", A[0]));
}
Value primIntegerToChar(Context &, Value *A, size_t) {
  int64_t I = wantFixnum("integer->char", A[0]);
  if (I < 0 || I > 0x10FFFF)
    raiseError("integer->char: out of range");
  return Value::charval(static_cast<uint32_t>(I));
}
Value primCharAlphabeticP(Context &, Value *A, size_t) {
  uint32_t C = wantChar("char-alphabetic?", A[0]);
  return Value::boolean(C < 128 && std::isalpha(static_cast<int>(C)));
}
Value primCharNumericP(Context &, Value *A, size_t) {
  uint32_t C = wantChar("char-numeric?", A[0]);
  return Value::boolean(C < 128 && std::isdigit(static_cast<int>(C)));
}
Value primCharWhitespaceP(Context &, Value *A, size_t) {
  uint32_t C = wantChar("char-whitespace?", A[0]);
  return Value::boolean(C < 128 && std::isspace(static_cast<int>(C)));
}
Value primCharUpcase(Context &, Value *A, size_t) {
  uint32_t C = wantChar("char-upcase", A[0]);
  return Value::charval(
      C < 128 ? static_cast<uint32_t>(std::toupper(static_cast<int>(C))) : C);
}
Value primCharDowncase(Context &, Value *A, size_t) {
  uint32_t C = wantChar("char-downcase", A[0]);
  return Value::charval(
      C < 128 ? static_cast<uint32_t>(std::tolower(static_cast<int>(C))) : C);
}

} // namespace

void pgmp::installStringPrims(Context &Ctx) {
  Ctx.definePrimitive("string?", 1, 1, primStringP);
  Ctx.definePrimitive("string-length", 1, 1, primStringLength);
  Ctx.definePrimitive("string-ref", 2, 2, primStringRef);
  Ctx.definePrimitive("substring", 2, 3, primSubstring);
  Ctx.definePrimitive("string-append", 0, -1, primStringAppend);
  Ctx.definePrimitive("string=?", 2, -1, primStringEq);
  Ctx.definePrimitive("string<?", 2, 2, primStringLt);
  Ctx.definePrimitive("string-contains?", 2, 2, primStringContainsP);
  Ctx.definePrimitive("string->list", 1, 1, primStringToList);
  Ctx.definePrimitive("list->string", 1, 1, primListToString);
  Ctx.definePrimitive("make-string", 1, 2, primMakeString);
  Ctx.definePrimitive("string-copy", 1, 1, primStringCopy);
  Ctx.definePrimitive("string-upcase", 1, 1, primStringUpcase);
  Ctx.definePrimitive("string-downcase", 1, 1, primStringDowncase);

  Ctx.definePrimitive("char?", 1, 1, primCharP);
  Ctx.definePrimitive("char=?", 2, -1, primCharEq);
  Ctx.definePrimitive("char<?", 2, 2, primCharLt);
  Ctx.definePrimitive("char<=?", 2, 2, primCharLe);
  Ctx.definePrimitive("char->integer", 1, 1, primCharToInteger);
  Ctx.definePrimitive("integer->char", 1, 1, primIntegerToChar);
  Ctx.definePrimitive("char-alphabetic?", 1, 1, primCharAlphabeticP);
  Ctx.definePrimitive("char-numeric?", 1, 1, primCharNumericP);
  Ctx.definePrimitive("char-whitespace?", 1, 1, primCharWhitespaceP);
  Ctx.definePrimitive("char-upcase", 1, 1, primCharUpcase);
  Ctx.definePrimitive("char-downcase", 1, 1, primCharDowncase);
}
