//===- interp/TierPolicy.h - Tiered-execution policy knobs ----*- C++ -*-===//
///
/// \file
/// One struct holding every knob of the tiered-execution pipeline: when
/// closures promote from the tree-walking interpreter to the bytecode VM
/// (mode, threshold, profile pre-marking) and what the VM's profile-guided
/// codegen may do at tier-up (superinstruction fusion, call-site
/// inlining). It is shared verbatim by EngineOptions (construction-time
/// configuration), Context (the live policy), and ThreePassConfig, so a
/// knob added here is automatically configurable everywhere — the old
/// scheme of mirroring Tier/TierThreshold/TierHotWeight field-by-field
/// across three structs is gone.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_INTERP_TIERPOLICY_H
#define PGMP_INTERP_TIERPOLICY_H

#include <cstdint>

namespace pgmp {

/// Tiered execution policy (see DESIGN.md "Tiered execution"): closures
/// start in the tree-walking interpreter and may be compiled to bytecode
/// ("tiered up") once hot. Off — interpreter only. Auto — tier up when a
/// closure's invocation count crosses TierPolicy::Threshold (or
/// immediately when a loaded profile already marks it hot). Always — tier
/// up on first invocation (useful for tests and worst-case validation).
enum class TierMode : uint8_t { Off, Auto, Always };

/// Everything that governs tier-up decisions and tier-up codegen.
/// Defaults reproduce a useful production setting: fusion and inlining on
/// (they preserve counter fidelity by construction, so there is no
/// profile-accuracy reason to disable them), caps sized so inlining can
/// never blow up code size.
struct TierPolicy {
  /// When closures promote to the bytecode VM. Off by default.
  TierMode Mode{};

  /// Auto mode: invocations before a closure tiers up.
  uint32_t Threshold = 64;

  /// Loaded-profile (or bus-epoch) weight at or above which a closure
  /// body is considered known-hot: it pre-marks at compile time and
  /// re-tiers at epoch boundaries (profile-guided pre-tiering).
  double HotWeight = 0.05;

  /// Superinstruction fusion: at tier-up, adjacent hot opcode pairs are
  /// fused into single dispatches against the backend's per-epoch fusion
  /// table. Fused ops bump the exact same source counters as their
  /// unfused expansion, so instrumented profiles are byte-identical
  /// fusion on or off.
  bool Fusion = true;

  /// Epoch fusion-table selection: a candidate pair must carry at least
  /// this fraction of the total observed pair weight to stay enabled.
  /// With no block-profile data yet, the default dominant set applies.
  double FusionMinWeight = 0.01;

  /// Profile-guided inlining: at tier-up, calls to hot mono-caller
  /// closures bound to globals are inlined into the call site behind a
  /// cheap identity guard (rebinding the global falls back to a plain
  /// call at runtime; tripping a cap below falls back at compile time).
  bool Inline = true;

  /// Callee body size cap (Expr nodes) for inlining.
  uint32_t InlineMaxOps = 40;

  /// Nesting cap for inlining (an inlined body may inline further calls,
  /// including bounded unrolling of self-recursion).
  uint32_t InlineMaxDepth = 2;
};

} // namespace pgmp

#endif // PGMP_INTERP_TIERPOLICY_H
