//===- interp/Eval.cpp ----------------------------------------------------===//

#include "interp/Eval.h"

#include "interp/TierBackend.h"

#include "expander/Matcher.h"
#include "expander/Template.h"
#include "support/Diagnostics.h"
#include "syntax/Writer.h"

using namespace pgmp;

static std::string describeCallee(const Value &Fn) {
  if (Fn.isPrimitive())
    return Fn.asPrimitive()->Name;
  if (Fn.isClosure() && !Fn.asClosure()->Template->Name.empty())
    return Fn.asClosure()->Template->Name;
  return writeToString(Fn);
}

[[noreturn]] static void arityError(const LambdaExpr *L, size_t NumArgs) {
  raiseError("procedure " +
             (L->Name.empty() ? std::string("#<anonymous>") : L->Name) +
             " expects " + std::to_string(L->Params.size()) +
             (L->HasRest ? "+" : "") + " arguments, got " +
             std::to_string(NumArgs));
}

/// Checks closure arity and builds its frame. Non-rest lambdas (the
/// overwhelmingly common case) take a branch-free copy loop; rest lambdas
/// cons only when surplus arguments actually exist.
static EnvObj *buildFrame(Context &Ctx, Closure *C, Value *Args,
                          size_t NumArgs) {
  const LambdaExpr *L = C->Template;
  size_t Fixed = L->Params.size();
  if (!L->HasRest) {
    if (NumArgs != Fixed)
      arityError(L, NumArgs);
    return Ctx.TheHeap.makeEnvFrom(C->Captured, Fixed, Args, Fixed,
                                   AllocSite::InterpFrame);
  }
  if (NumArgs < Fixed)
    arityError(L, NumArgs);
  EnvObj *Frame = Ctx.TheHeap.makeEnvFrom(C->Captured, Fixed + 1, Args,
                                          Fixed, AllocSite::InterpFrame);
  Value Rest = Value::nil();
  if (NumArgs > Fixed)
    for (size_t I = NumArgs; I > Fixed; --I)
      Rest = Ctx.TheHeap.cons(Args[I - 1], Rest, AllocSite::InterpRestArgs);
  Frame->slots()[Fixed] = Rest;
  return Frame;
}

const VmFunction *pgmp::tieredFunctionFor(Context &Ctx, const LambdaExpr *L) {
  if (L->Tiered)
    return L->Tiered;
  if (Ctx.Tier.Mode == TierMode::Off || L->TierBlocked || !Ctx.Backend ||
      Ctx.PhaseOneDepth != 0)
    return nullptr;
  if (Ctx.Tier.Mode == TierMode::Auto && !L->TierHot &&
      ++L->TierInvokes < Ctx.Tier.Threshold)
    return nullptr;
  return Ctx.Backend->compile(Ctx, L);
}

template <bool GuardOn>
static Value evalExprImpl(Context &Ctx, const Expr *E, EnvObj *Env);

Value pgmp::applyProcedure(Context &Ctx, Value Fn, Value *Args,
                           size_t NumArgs) {
  if (Fn.isPrimitive()) {
    Primitive *P = Fn.asPrimitive();
    if (static_cast<int>(NumArgs) < P->MinArgs ||
        (P->MaxArgs >= 0 && static_cast<int>(NumArgs) > P->MaxArgs))
      raiseError("primitive " + P->Name + " got " + std::to_string(NumArgs) +
                 " arguments");
    return P->Fn(Ctx, Args, NumArgs);
  }
  if (Fn.isClosure()) {
    Closure *C = Fn.asClosure();
    // The tiered route is not charged here: runVmFunction charges on
    // entry, so every application costs exactly one fuel unit no matter
    // which tier executes it (counter-fidelity for guards too).
    if (const VmFunction *VF = tieredFunctionFor(Ctx, C->Template))
      return Ctx.Backend->run(Ctx, VF, C->Captured, Args, NumArgs);
    EnvObj *Frame = buildFrame(Ctx, C, Args, NumArgs);
    ExecGuard &G = Ctx.Guard;
    if (G.Active) {
      G.enterCall();
      Value Result = evalExprImpl<true>(Ctx, C->Template->Body, Frame);
      G.leaveCall();
      return Result;
    }
    return evalExprImpl<false>(Ctx, C->Template->Body, Frame);
  }
  if (Fn.isVmClosure()) {
    if (!Ctx.VmApplyHook)
      raiseError("vm closure applied but no VM is installed");
    return Ctx.VmApplyHook(Ctx, Fn, Args, NumArgs);
  }
  raiseError("attempt to apply non-procedure " + describeCallee(Fn));
}

Value Context::apply(Value Fn, Value *Args, size_t NumArgs) {
  return applyProcedure(*this, Fn, Args, NumArgs);
}

Value Context::apply(Value Fn, const std::vector<Value> &Args) {
  return applyProcedure(*this, Fn,
                        const_cast<Value *>(Args.data()), Args.size());
}

/// The expression walker, specialized on whether guards are armed (same
/// scheme as the VM's runVmLoop): the unguarded instantiation carries no
/// per-application guard checks, so disabled guards cost one dispatch
/// branch per outermost evalExpr call and nothing per iteration.
template <bool GuardOn>
static Value evalExprImpl(Context &Ctx, const Expr *E, EnvObj *Env) {
tail:
  if (E->Counter)
    ++*E->Counter;
  switch (E->K) {
  case ExprKind::Const:
    return static_cast<const ConstExpr *>(E)->V;

  case ExprKind::LocalRef: {
    const auto *R = static_cast<const LocalRefExpr *>(E);
    EnvObj *Frame = Env;
    for (uint32_t D = 0; D < R->Depth; ++D) {
      assert(Frame && "local ref depth exceeds env chain");
      Frame = Frame->Parent;
    }
    assert(Frame && R->Index < Frame->NumSlots && "bad local ref");
    return Frame->slots()[R->Index];
  }

  case ExprKind::GlobalRef: {
    const auto *R = static_cast<const GlobalRefExpr *>(E);
    if (R->Cell->isUnbound())
      raiseError("unbound variable " + R->Name->Name);
    return *R->Cell;
  }

  case ExprKind::If: {
    const auto *I = static_cast<const IfExpr *>(E);
    E = evalExprImpl<GuardOn>(Ctx, I->Test, Env).isTruthy() ? I->Then : I->Else;
    goto tail;
  }

  case ExprKind::Lambda: {
    const auto *L = static_cast<const LambdaExpr *>(E);
    return Value::object(ValueKind::Closure,
                         Ctx.TheHeap.makeAt<Closure>(
                             AllocSite::InterpClosure, L, Env));
  }

  case ExprKind::Begin: {
    const auto *B = static_cast<const BeginExpr *>(E);
    for (size_t I = 0; I + 1 < B->Body.size(); ++I)
      evalExprImpl<GuardOn>(Ctx, B->Body[I], Env);
    E = B->Body.back();
    goto tail;
  }

  case ExprKind::SetLocal: {
    const auto *S = static_cast<const SetLocalExpr *>(E);
    Value V = evalExprImpl<GuardOn>(Ctx, S->Val, Env);
    EnvObj *Frame = Env;
    for (uint32_t D = 0; D < S->Depth; ++D) {
      assert(Frame && "set! depth exceeds env chain");
      Frame = Frame->Parent;
    }
    Frame->slots()[S->Index] = V;
    return Value::undefined();
  }

  case ExprKind::SetGlobal: {
    const auto *S = static_cast<const SetGlobalExpr *>(E);
    if (S->Cell->isUnbound())
      raiseError("set! of unbound variable " + S->Name->Name);
    *S->Cell = evalExprImpl<GuardOn>(Ctx, S->Val, Env);
    return Value::undefined();
  }

  case ExprKind::DefineGlobal: {
    const auto *D = static_cast<const DefineGlobalExpr *>(E);
    *D->Cell = evalExprImpl<GuardOn>(Ctx, D->Val, Env);
    return Value::undefined();
  }

  case ExprKind::Call: {
    const auto *C = static_cast<const CallExpr *>(E);
    Value Fn = evalExprImpl<GuardOn>(Ctx, C->Fn, Env);
    // Fast path storage for the common small-arity case; the slow path
    // reserves once and appends, so no Value is default-constructed only
    // to be overwritten.
    Value ArgBuf[8];
    std::vector<Value> ArgVec;
    Value *Args;
    size_t N = C->Args.size();
    if (N <= 8) {
      Args = ArgBuf;
      for (size_t I = 0; I < N; ++I)
        Args[I] = evalExprImpl<GuardOn>(Ctx, C->Args[I], Env);
    } else {
      ArgVec.reserve(N);
      for (size_t I = 0; I < N; ++I)
        ArgVec.push_back(evalExprImpl<GuardOn>(Ctx, C->Args[I], Env));
      Args = ArgVec.data();
    }

    if (Fn.isPrimitive()) {
      Primitive *P = Fn.asPrimitive();
      if (static_cast<int>(N) < P->MinArgs ||
          (P->MaxArgs >= 0 && static_cast<int>(N) > P->MaxArgs))
        raiseError("primitive " + P->Name + " got " + std::to_string(N) +
                   " arguments");
      return P->Fn(Ctx, Args, N);
    }
    if (!Fn.isClosure()) {
      if (Fn.isVmClosure() && Ctx.VmApplyHook)
        return Ctx.VmApplyHook(Ctx, Fn, Args, N);
      raiseError("attempt to apply non-procedure " + describeCallee(Fn));
    }

    Closure *Cl = Fn.asClosure();
    // Tiered dispatch: the VM entry charges fuel/depth itself.
    if (const VmFunction *VF = tieredFunctionFor(Ctx, Cl->Template))
      return Ctx.Backend->run(Ctx, VF, Cl->Captured, Args, N);
    EnvObj *Frame = buildFrame(Ctx, Cl, Args, N);
    if (C->Tail) {
      // Tail applications are iterative (this goto): they consume fuel
      // but not depth, so (loop) with --max-depth never false-trips.
      if constexpr (GuardOn)
        Ctx.Guard.chargeFuel();
      E = Cl->Template->Body;
      Env = Frame;
      goto tail;
    }
    ExecGuard &G = Ctx.Guard;
    if constexpr (GuardOn)
      G.enterCall();
    Value Result = evalExprImpl<GuardOn>(Ctx, Cl->Template->Body, Frame);
    if constexpr (GuardOn)
      G.leaveCall();
    return Result;
  }

  case ExprKind::SyntaxCase: {
    const auto *SC = static_cast<const SyntaxCaseExpr *>(E);
    Value Scrut = evalExprImpl<GuardOn>(Ctx, SC->Scrutinee, Env);
    for (const SyntaxCaseClause &Clause : SC->Clauses) {
      EnvObj *Frame =
          Ctx.TheHeap.makeEnv(Env, Clause.NumVars, AllocSite::SyntaxCaseFrame);
      if (!matchPattern(Ctx, Clause.Pat, Scrut,
                        Clause.NumVars ? Frame->slots() : nullptr))
        continue;
      if (Clause.Fender &&
          !evalExprImpl<GuardOn>(Ctx, Clause.Fender, Frame).isTruthy())
        continue;
      E = Clause.Body;
      Env = Frame;
      goto tail;
    }
    raiseError("no matching syntax-case clause for " +
               writeToString(Scrut));
  }

  case ExprKind::Template:
    return instantiateTemplate(Ctx, static_cast<const TemplateExpr *>(E)->Tpl,
                               Env);
  }
  raiseError("corrupt expression node");
}

Value pgmp::evalExpr(Context &Ctx, const Expr *E, EnvObj *Env) {
  // Guard activation only changes at run boundaries, so one branch here
  // pins the instantiation for the whole (recursive) evaluation.
  if (Ctx.Guard.Active)
    return evalExprImpl<true>(Ctx, E, Env);
  return evalExprImpl<false>(Ctx, E, Env);
}
