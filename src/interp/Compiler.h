//===- interp/Compiler.h - Core syntax -> Expr IR -------------*- C++ -*-===//
///
/// \file
/// Compiles *expanded* core syntax (the expander's output, where every
/// lexical variable has been renamed to a unique uninterned symbol) into
/// the Expr IR. When Context::InstrumentCompiles is set, every node whose
/// originating syntax carries a source object gets a live profile counter
/// — recompiling the same syntax without the flag produces counter-free
/// code, which is how instrumentation stays zero-cost when disabled.
///
/// Core grammar accepted here (heads are interned symbols; variables are
/// uninterned, so there is no ambiguity):
///
///   (quote d) (if t c a) (lambda (g... [. grest]) body)
///   (begin e...) (set! g e) (define g e)
///   (syntax-case* scrut (pat fender body)...)    fender may be #%no-fender
///   (syntax-template t) (quasisyntax-template t)
///   atom | identifier | application
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_INTERP_COMPILER_H
#define PGMP_INTERP_COMPILER_H

#include "interp/Context.h"
#include "interp/Expr.h"

#include <memory>

namespace pgmp {

/// Compiles one expanded top-level form. The returned unit owns all IR.
std::unique_ptr<CodeUnit> compileCore(Context &Ctx, Value CoreStx);

} // namespace pgmp

#endif // PGMP_INTERP_COMPILER_H
