//===- interp/TierBackend.h - Tier-up execution backend -------*- C++ -*-===//
///
/// \file
/// The interface between the interpreter and whatever executes tiered
/// code. The interpreter decides *when* a closure tiers (TierPolicy, the
/// apply path in Eval.cpp); a TierBackend decides *what that means*:
/// compiling the body, running it, selecting superinstruction fusions
/// from fresh profiles, and invalidating code a new profile epoch has
/// made stale.
///
/// This replaces the former trio of raw hooks on Context
/// (TierCompileHook / TierRunHook function pointers plus the type-erased
/// TierModules blob): one object now carries the behavior *and* owns the
/// compiled modules, registered at engine construction by vm/Vm.cpp
/// (installVm). interp/ still never includes a vm/ header — VmFunction
/// stays an opaque forward declaration here, exactly as it was for the
/// hooks.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_INTERP_TIERBACKEND_H
#define PGMP_INTERP_TIERBACKEND_H

#include "syntax/Value.h"

#include <cstddef>
#include <cstdint>

namespace pgmp {

class Context;
class EnvObj;
class GcVisitor;
class LambdaExpr;
class VmFunction;

/// Abstract tier-up backend. The VM registers one on
/// Context::Backend at engine construction; a null Backend means tiering
/// is structurally impossible (TierMode::Off engines never install one).
/// The backend outlives every piece of code it compiled — Context holds
/// it by shared_ptr and closures keep running its modules' code for the
/// whole session.
class TierBackend {
public:
  virtual ~TierBackend() = default;

  /// Compiles \p L's body to a bytecode function, caching it on the
  /// lambda (L->Tiered) — or marks it TierBlocked and returns null when
  /// the body cannot run on the VM (phase-1-only nodes). Applies the
  /// current fusion table and inlining policy.
  virtual const VmFunction *compile(Context &Ctx, const LambdaExpr *L) = 0;

  /// Runs a tier-compiled function over a closure's captured frame.
  virtual Value run(Context &Ctx, const VmFunction *Fn, EnvObj *Captured,
                    Value *Args, size_t NumArgs) = 0;

  /// Re-selects the superinstruction fusion table from the block
  /// profiles observed so far (continuous-profiling epochs call this).
  /// Returns the table's epoch, which bumps only when the selection
  /// actually changed.
  virtual uint64_t fuse(Context &Ctx) = 0;

  /// Drops tier-compiled bodies that were fused against a table older
  /// than \p FusionEpoch: the lambdas re-tier lazily against the fresh
  /// table on their next hot invocation. Returns how many bodies were
  /// invalidated.
  virtual size_t invalidateEpoch(Context &Ctx, uint64_t FusionEpoch) = 0;

  /// Visits every heap Value the backend's compiled modules retain
  /// (bytecode constant pools), so a region reclamation can forward them.
  /// Default: the backend retains nothing.
  virtual void traceGcRoots(GcVisitor &V) { (void)V; }
};

} // namespace pgmp

#endif // PGMP_INTERP_TIERBACKEND_H
