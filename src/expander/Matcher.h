//===- expander/Matcher.h - syntax-case patterns --------------*- C++ -*-===//
///
/// \file
/// Compiled syntax-case patterns and the matcher. Patterns are compiled
/// once (by interp/Compiler) and matched many times; matching unwraps
/// syntax objects transparently, so it works uniformly on syntax trees
/// and on plain lists of syntax (as produced by templates).
///
/// Pattern variables write into a flat frame of slots; the enclosing
/// SyntaxCaseExpr binds that frame as ordinary local variables of the
/// clause body, so templates address matches exactly like locals.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_EXPANDER_MATCHER_H
#define PGMP_EXPANDER_MATCHER_H

#include "syntax/Syntax.h"
#include "syntax/Value.h"

#include <memory>
#include <vector>

namespace pgmp {

class Context;

/// Pattern node kinds.
enum class PatternKind : uint8_t {
  Var,      ///< binds one slot
  Wildcard, ///< _
  Literal,  ///< listed literal identifier, matched by free-identifier=?
  Datum,    ///< self-evaluating constant, matched by equal? on datums
  Null,     ///< ()
  Cons,     ///< (car . cdr)
  Ellipsis, ///< (sub ... tail-elems . tail-end)
  Vector,   ///< #(elem ...) — fixed length only
};

struct Pattern {
  virtual ~Pattern() = default;
  PatternKind K;

protected:
  explicit Pattern(PatternKind K) : K(K) {}
};

struct VarPattern : Pattern {
  VarPattern(uint32_t Slot, Symbol *Name)
      : Pattern(PatternKind::Var), Slot(Slot), Name(Name) {}
  uint32_t Slot;
  Symbol *Name;
};

struct WildcardPattern : Pattern {
  WildcardPattern() : Pattern(PatternKind::Wildcard) {}
};

struct LiteralPattern : Pattern {
  explicit LiteralPattern(Value IdSyntax)
      : Pattern(PatternKind::Literal), IdSyntax(IdSyntax) {}
  Value IdSyntax; ///< the literal identifier, scopes intact
};

struct DatumPattern : Pattern {
  explicit DatumPattern(Value Datum)
      : Pattern(PatternKind::Datum), Datum(Datum) {}
  Value Datum;
};

struct NullPattern : Pattern {
  NullPattern() : Pattern(PatternKind::Null) {}
};

struct ConsPattern : Pattern {
  ConsPattern(Pattern *Car, Pattern *Cdr)
      : Pattern(PatternKind::Cons), Car(Car), Cdr(Cdr) {}
  Pattern *Car;
  Pattern *Cdr;
};

/// (Sub ... T1 T2 . End): Sub repeated any number of times, then exactly
/// TailElems.size() fixed elements, then End (Null for proper lists).
struct EllipsisPattern : Pattern {
  EllipsisPattern() : Pattern(PatternKind::Ellipsis) {}
  Pattern *Sub = nullptr;
  std::vector<uint32_t> SubSlots; ///< slots bound inside Sub
  std::vector<Pattern *> TailElems;
  Pattern *End = nullptr;
};

struct VectorPattern : Pattern {
  explicit VectorPattern(std::vector<Pattern *> Elems)
      : Pattern(PatternKind::Vector), Elems(std::move(Elems)) {}
  std::vector<Pattern *> Elems;
};

/// Matches \p Input against \p Pat, writing matched slots into \p Frame
/// (which must have room for every slot in the pattern). Returns false on
/// mismatch; Frame contents are then unspecified.
bool matchPattern(Context &Ctx, const Pattern *Pat, Value Input,
                  Value *Frame);

} // namespace pgmp

#endif // PGMP_EXPANDER_MATCHER_H
