//===- expander/Binding.h - Compile-time meanings -------------*- C++ -*-===//
///
/// \file
/// What a binding label means to the expander: a lexical variable (with
/// its unique runtime rename), a macro (with its transformer closure), a
/// syntax-case pattern variable, or a core form.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_EXPANDER_BINDING_H
#define PGMP_EXPANDER_BINDING_H

#include "syntax/SymbolTable.h"
#include "syntax/Value.h"

namespace pgmp {

/// Compile-time meaning of one binding label.
struct ExpBinding {
  enum class Kind : uint8_t { Variable, Macro, PatternVar };
  Kind K = Kind::Variable;

  /// Variable / PatternVar: the unique (gensym) runtime name.
  Symbol *Renamed = nullptr;

  /// Macro: the transformer procedure (a closure or primitive).
  Value Transformer;

  /// PatternVar: number of ellipses the variable is under.
  int EllipsisDepth = 0;
};

} // namespace pgmp

#endif // PGMP_EXPANDER_BINDING_H
