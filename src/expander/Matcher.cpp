//===- expander/Matcher.cpp -----------------------------------------------===//

#include "expander/Matcher.h"

#include "interp/Context.h"

using namespace pgmp;

/// Structural equality between a constant pattern datum and an input that
/// may still be wrapped in syntax.
static bool datumMatches(const Value &Pat, const Value &Input) {
  Value In = syntaxE(Input);
  Value P = syntaxE(Pat);
  if (P.isPair()) {
    return In.isPair() && datumMatches(P.asPair()->Car, In.asPair()->Car) &&
           datumMatches(P.asPair()->Cdr, In.asPair()->Cdr);
  }
  if (P.isVector()) {
    if (!In.isVector())
      return false;
    const auto &PE = P.asVector()->Elems;
    const auto &IE = In.asVector()->Elems;
    if (PE.size() != IE.size())
      return false;
    for (size_t I = 0; I < PE.size(); ++I)
      if (!datumMatches(PE[I], IE[I]))
        return false;
    return true;
  }
  if (P.isString())
    return In.isString() && P.asString()->Text == In.asString()->Text;
  return P == In;
}

bool pgmp::matchPattern(Context &Ctx, const Pattern *Pat, Value Input,
                        Value *Frame) {
  switch (Pat->K) {
  case PatternKind::Var:
    Frame[static_cast<const VarPattern *>(Pat)->Slot] = Input;
    return true;
  case PatternKind::Wildcard:
    return true;
  case PatternKind::Literal: {
    Syntax *InId = asIdentifier(Input);
    if (!InId)
      return false;
    const auto *LP = static_cast<const LiteralPattern *>(Pat);
    Syntax *LitId = LP->IdSyntax.asSyntax();
    return freeIdentifierEqual(Ctx.Bindings, LitId, InId);
  }
  case PatternKind::Datum:
    return datumMatches(static_cast<const DatumPattern *>(Pat)->Datum, Input);
  case PatternKind::Null:
    return syntaxE(Input).isNil();
  case PatternKind::Cons: {
    Value In = syntaxE(Input);
    if (!In.isPair())
      return false;
    const auto *CP = static_cast<const ConsPattern *>(Pat);
    return matchPattern(Ctx, CP->Car, In.asPair()->Car, Frame) &&
           matchPattern(Ctx, CP->Cdr, In.asPair()->Cdr, Frame);
  }
  case PatternKind::Ellipsis: {
    const auto *EP = static_cast<const EllipsisPattern *>(Pat);
    // Collect the input spine.
    std::vector<Value> Items;
    Value Cur = syntaxE(Input);
    while (Cur.isPair()) {
      Items.push_back(Cur.asPair()->Car);
      Cur = syntaxE(Cur.asPair()->Cdr);
      // syntaxE above unwraps a wrapped tail so the spine walk continues.
    }
    // Cur is now the improper/nil end.
    size_t NumTail = EP->TailElems.size();
    if (Items.size() < NumTail)
      return false;
    size_t NumRepeat = Items.size() - NumTail;

    // Match the repeated sub-pattern, accumulating each slot's matches.
    std::vector<std::vector<Value>> Collected(EP->SubSlots.size());
    for (size_t I = 0; I < NumRepeat; ++I) {
      if (!matchPattern(Ctx, EP->Sub, Items[I], Frame))
        return false;
      for (size_t S = 0; S < EP->SubSlots.size(); ++S)
        Collected[S].push_back(Frame[EP->SubSlots[S]]);
    }
    for (size_t S = 0; S < EP->SubSlots.size(); ++S)
      Frame[EP->SubSlots[S]] = Ctx.TheHeap.list(Collected[S]);

    // Fixed tail elements, then the end pattern.
    for (size_t I = 0; I < NumTail; ++I)
      if (!matchPattern(Ctx, EP->TailElems[I], Items[NumRepeat + I], Frame))
        return false;
    return matchPattern(Ctx, EP->End, Cur, Frame);
  }
  case PatternKind::Vector: {
    Value In = syntaxE(Input);
    if (!In.isVector())
      return false;
    const auto *VP = static_cast<const VectorPattern *>(Pat);
    const auto &Elems = In.asVector()->Elems;
    if (Elems.size() != VP->Elems.size())
      return false;
    for (size_t I = 0; I < Elems.size(); ++I)
      if (!matchPattern(Ctx, VP->Elems[I], Elems[I], Frame))
        return false;
    return true;
  }
  }
  return false;
}
