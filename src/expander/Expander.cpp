//===- expander/Expander.cpp ----------------------------------------------===//

#include "expander/Expander.h"

#include "interp/Compiler.h"
#include "interp/Eval.h"
#include "support/Diagnostics.h"
#include "support/ExecGuard.h"
#include "syntax/Writer.h"

#include <unordered_map>
#include <unordered_set>

using namespace pgmp;

namespace {

/// Core and derived forms the expander knows natively.
enum class Form : uint8_t {
  None,
  Quote,
  If,
  Lambda,
  Begin,
  SetBang,
  Define,
  DefineSyntax,
  Let,
  LetStar,
  Letrec,
  LetrecStar,
  Cond,
  When,
  Unless,
  And,
  Or,
  Quasiquote,
  SyntaxCase,
  SyntaxForm,
  Quasisyntax,
  WithSyntax,
  SyntaxRules,
  Do,
  LetSyntax,
};

struct ResolveResult {
  enum class Kind : uint8_t { Unbound, Ambiguous, Bound } K;
  BindingLabel Label = 0;
  const ExpBinding *B = nullptr;
};

} // namespace

class Expander::Impl {
public:
  explicit Impl(Context &Ctx) : Ctx(Ctx) {
    auto AddForm = [&](const char *Name, Form F) {
      Forms.emplace(Ctx.Symbols.intern(Name), F);
    };
    AddForm("quote", Form::Quote);
    AddForm("if", Form::If);
    AddForm("lambda", Form::Lambda);
    AddForm("begin", Form::Begin);
    AddForm("set!", Form::SetBang);
    AddForm("define", Form::Define);
    AddForm("define-syntax", Form::DefineSyntax);
    AddForm("let", Form::Let);
    AddForm("let*", Form::LetStar);
    AddForm("letrec", Form::Letrec);
    AddForm("letrec*", Form::LetrecStar);
    AddForm("cond", Form::Cond);
    AddForm("when", Form::When);
    AddForm("unless", Form::Unless);
    AddForm("and", Form::And);
    AddForm("or", Form::Or);
    AddForm("quasiquote", Form::Quasiquote);
    AddForm("syntax-case", Form::SyntaxCase);
    AddForm("syntax", Form::SyntaxForm);
    AddForm("quasisyntax", Form::Quasisyntax);
    AddForm("with-syntax", Form::WithSyntax);
    AddForm("syntax-rules", Form::SyntaxRules);
    AddForm("do", Form::Do);
    AddForm("let-syntax", Form::LetSyntax);
    AddForm("letrec-syntax", Form::LetSyntax);

    SymQuote = Ctx.Symbols.intern("quote");
    SymIf = Ctx.Symbols.intern("if");
    SymLambda = Ctx.Symbols.intern("lambda");
    SymBegin = Ctx.Symbols.intern("begin");
    SymSet = Ctx.Symbols.intern("set!");
    SymDefine = Ctx.Symbols.intern("define");
    SymSyntaxCaseStar = Ctx.Symbols.intern("syntax-case*");
    SymSyntaxTemplate = Ctx.Symbols.intern("syntax-template");
    SymQuasiTemplate = Ctx.Symbols.intern("quasisyntax-template");
    SymNoFender = Ctx.Symbols.intern("#%no-fender");
    SymUnsyntaxMark = Ctx.Symbols.intern("#%unsyntax");
    SymUnsyntaxSplicingMark = Ctx.Symbols.intern("#%unsyntax-splicing");
    SymEllipsis = Ctx.Symbols.intern("...");
    SymUnderscore = Ctx.Symbols.intern("_");
    SymElse = Ctx.Symbols.intern("else");
    SymArrow = Ctx.Symbols.intern("=>");
    SymUnquote = Ctx.Symbols.intern("unquote");
    SymUnquoteSplicing = Ctx.Symbols.intern("unquote-splicing");
    SymUnsyntax = Ctx.Symbols.intern("unsyntax");
    SymUnsyntaxSplicing = Ctx.Symbols.intern("unsyntax-splicing");
    SymVoid = Ctx.Symbols.intern("void");
    SymLetrecStar = Ctx.Symbols.intern("letrec*");
    SymLet = Ctx.Symbols.intern("let");
    SymCons = Ctx.Symbols.intern("cons");
    SymAppend = Ctx.Symbols.intern("append");
    SymList = Ctx.Symbols.intern("list");
  }

  Context &Ctx;
  std::unordered_map<Symbol *, Form> Forms;
  Symbol *SymQuote, *SymIf, *SymLambda, *SymBegin, *SymSet, *SymDefine,
      *SymSyntaxCaseStar, *SymSyntaxTemplate, *SymQuasiTemplate, *SymNoFender,
      *SymUnsyntaxMark, *SymUnsyntaxSplicingMark, *SymEllipsis, *SymUnderscore,
      *SymElse, *SymArrow, *SymUnquote, *SymUnquoteSplicing, *SymUnsyntax,
      *SymUnsyntaxSplicing, *SymVoid, *SymLetrecStar, *SymLet, *SymCons,
      *SymAppend, *SymList;

  //===------------------------------------------------------------------===//
  // Small syntax constructors
  //===------------------------------------------------------------------===//

  [[noreturn]] void fail(const std::string &Msg, const Value &Stx) {
    const SourceObject *Src = syntaxSource(Stx);
    raiseError("expand: " + Msg + " in " +
                   writeValue(Stx, [] {
                     WriteOptions O;
                     O.SyntaxAsDatum = true;
                     return O;
                   }()),
               Src ? Src->describe() : "");
  }

  /// Synthetic identifier with empty scopes: resolves to a core form or a
  /// global, and can never be captured by user bindings.
  Value makeId(Symbol *S, const SourceObject *Src) {
    return makeSyntax(Ctx.TheHeap, Value::object(ValueKind::Symbol, S),
                      ScopeSet(), Src);
  }

  /// Wraps a plain element spine as a syntax list.
  Value listStx(const std::vector<Value> &Elems, const SourceObject *Src,
                Value Tail = Value::nil()) {
    Value Spine = Tail;
    for (size_t I = Elems.size(); I > 0; --I)
      Spine = Ctx.TheHeap.cons(Elems[I - 1], Spine);
    return makeSyntax(Ctx.TheHeap, Spine, ScopeSet(), Src);
  }

  /// Splits a (possibly syntax-wrapped) list into elements + tail. The
  /// tail keeps its syntax wrapper (scopes matter for dotted patterns);
  /// a wrapped () is normalized to plain nil.
  static void spine(Value Stx, std::vector<Value> &Elems, Value &TailOut) {
    Value Cur = syntaxE(Stx);
    while (true) {
      if (Cur.isPair()) {
        Elems.push_back(Cur.asPair()->Car);
        Cur = Cur.asPair()->Cdr;
        continue;
      }
      if (Cur.isSyntax() && syntaxE(Cur).isPair()) {
        Cur = syntaxE(Cur);
        continue;
      }
      break;
    }
    if (Cur.isSyntax() && syntaxE(Cur).isNil())
      Cur = Value::nil();
    TailOut = Cur;
  }

  ResolveResult resolve(Syntax *Id) {
    ResolveResult R{ResolveResult::Kind::Unbound, 0, nullptr};
    auto Res = Ctx.Bindings.resolve(Id->identifierSymbol(), Id->Scopes);
    if (Res.Ambiguous) {
      R.K = ResolveResult::Kind::Ambiguous;
      return R;
    }
    if (Res.Label == 0)
      return R;
    const ExpBinding *B = Ctx.meaningOf(Res.Label);
    if (!B)
      return R;
    R.K = ResolveResult::Kind::Bound;
    R.Label = Res.Label;
    R.B = B;
    return R;
  }

  /// Is \p V an identifier spelled like \p S that does not resolve to a
  /// user binding? (Used for auxiliary keywords: else, =>, unquote, ...)
  bool isAuxKeyword(const Value &V, Symbol *S) {
    Syntax *Id = asIdentifier(V);
    if (!Id || Id->identifierSymbol() != S)
      return false;
    return resolve(Id).K != ResolveResult::Kind::Bound;
  }

  //===------------------------------------------------------------------===//
  // Expansion driver
  //===------------------------------------------------------------------===//

  /// Maximum syntax nesting expand() will recurse into. Expansion depth
  /// tracks input nesting (each compound form recurses once per layer),
  /// so deeply nested generated code — or a reader-limit bypass via
  /// macro-generated nesting — would overflow the C++ stack. Lower than
  /// the reader's cap because expansion frames are much fatter.
  static constexpr uint32_t MaxExpandDepth = 1000;
  uint32_t ExpandDepth = 0;

  /// Cold outlined raise for the nesting cap (never returns).
  Value tripExpandDepth(Value Stx) {
    --ExpandDepth;
    const SourceObject *Src = syntaxSource(Stx);
    raiseGuardTrip(GuardKind::Depth,
                   "syntax nesting exceeds expander limit of " +
                       std::to_string(MaxExpandDepth),
                   Src ? Src->describe() : "");
  }

  Value expand(Value Stx) {
    if (++ExpandDepth > MaxExpandDepth)
      return tripExpandDepth(Stx);
    struct DepthGuard {
      uint32_t &D;
      ~DepthGuard() { --D; }
    } Guard{ExpandDepth};
    return expandNoDepthCheck(Stx);
  }

  Value expandNoDepthCheck(Value Stx) {
    for (unsigned Fuel = 0; Fuel < 10000; ++Fuel) {
      Value In = syntaxE(Stx);

      if (In.isSymbol()) {
        Syntax *Id = Stx.isSyntax() ? Stx.asSyntax() : nullptr;
        if (!Id)
          fail("bare symbol outside syntax", Stx);
        return expandIdentifier(Id, Stx);
      }
      if (!In.isPair())
        return Stx; // self-evaluating atom (or vector literal)

      Syntax *HeadId = asIdentifier(In.asPair()->Car);
      if (HeadId) {
        ResolveResult R = resolve(HeadId);
        if (R.K == ResolveResult::Kind::Ambiguous)
          fail("ambiguous identifier " + HeadId->identifierSymbol()->Name,
               Stx);
        if (R.K == ResolveResult::Kind::Bound) {
          if (R.B->K == ExpBinding::Kind::Macro) {
            Stx = invokeMacro(Stx, R.B->Transformer);
            continue;
          }
          if (R.B->K == ExpBinding::Kind::PatternVar)
            fail("pattern variable used as expression head", Stx);
          return expandApplication(Stx);
        }
        // Unbound: core/derived form or global call.
        auto FIt = Forms.find(HeadId->identifierSymbol());
        if (FIt != Forms.end())
          return expandForm(FIt->second, Stx);
      }
      return expandApplication(Stx);
    }
    fail("macro expansion did not terminate", Stx);
  }

  Value expandIdentifier(Syntax *Id, const Value &Stx) {
    ResolveResult R = resolve(Id);
    switch (R.K) {
    case ResolveResult::Kind::Ambiguous:
      fail("ambiguous identifier " + Id->identifierSymbol()->Name, Stx);
    case ResolveResult::Kind::Unbound:
      return Stx; // global reference by name
    case ResolveResult::Kind::Bound:
      break;
    }
    switch (R.B->K) {
    case ExpBinding::Kind::Variable:
      return makeId(R.B->Renamed, syntaxSource(Stx));
    case ExpBinding::Kind::Macro:
      fail("macro " + Id->identifierSymbol()->Name +
               " used as an expression",
           Stx);
    case ExpBinding::Kind::PatternVar:
      fail("pattern variable " + Id->identifierSymbol()->Name +
               " used outside a syntax template",
           Stx);
    }
    fail("corrupt binding", Stx);
  }

  Value expandApplication(const Value &Stx) {
    std::vector<Value> Elems;
    Value Tail;
    spine(Stx, Elems, Tail);
    if (!Tail.isNil())
      fail("dotted list in application", Stx);
    if (Elems.empty())
      fail("empty application", Stx);
    std::vector<Value> Out;
    Out.reserve(Elems.size());
    for (const Value &E : Elems)
      Out.push_back(expand(E));
    return listStx(Out, syntaxSource(Stx));
  }

  Value invokeMacro(Value UseStx, Value Transformer) {
    Ctx.Stats.bump(Stat::MacroExpansions);
    ScopeId Intro = Ctx.freshScope();
    Value Input = adjustScope(Ctx.TheHeap, UseStx, Intro, ScopeOp::Flip);
    Value Args[1] = {Input};
    // Transformers are phase-1 code: they must never tier up to the VM
    // (their bodies may contain syntax-case/template nodes, and tiering
    // them would waste compile time on code that runs a handful of
    // times). The depth guard covers closures the transformer calls too.
    struct PhaseOneGuard {
      Context &Ctx;
      explicit PhaseOneGuard(Context &Ctx) : Ctx(Ctx) { ++Ctx.PhaseOneDepth; }
      ~PhaseOneGuard() { --Ctx.PhaseOneDepth; }
    } Guard(Ctx);
    Value Out = Ctx.apply(Transformer, Args, 1);
    if (!Out.isSyntax() && !Out.isPair())
      raiseError("macro transformer returned a non-syntax value: " +
                 writeToString(Out));
    Value Result = adjustScope(Ctx.TheHeap, Out, Intro, ScopeOp::Flip);
    // Attribute generated code to the use site when it has no source of
    // its own, so profile points keep pointing at user code.
    if (Result.isSyntax() && !Result.asSyntax()->Src)
      if (const SourceObject *UseSrc = syntaxSource(UseStx))
        Result = makeSyntax(Ctx.TheHeap, Result.asSyntax()->Inner,
                            Result.asSyntax()->Scopes, UseSrc);
    return Result;
  }

  //===------------------------------------------------------------------===//
  // Core and derived forms
  //===------------------------------------------------------------------===//

  Value expandForm(Form F, const Value &Stx) {
    std::vector<Value> Elems;
    Value Tail;
    spine(Stx, Elems, Tail);
    if (!Tail.isNil())
      fail("dotted special form", Stx);
    const SourceObject *Src = syntaxSource(Stx);

    switch (F) {
    case Form::Quote:
      if (Elems.size() != 2)
        fail("quote expects one datum", Stx);
      return listStx({makeId(SymQuote, Src), Elems[1]}, Src);

    case Form::If: {
      if (Elems.size() != 3 && Elems.size() != 4)
        fail("if expects 2 or 3 subforms", Stx);
      std::vector<Value> Out = {makeId(SymIf, Src), expand(Elems[1]),
                                expand(Elems[2])};
      if (Elems.size() == 4)
        Out.push_back(expand(Elems[3]));
      return listStx(Out, Src);
    }

    case Form::Lambda:
      return expandLambda(Elems, Stx);

    case Form::Begin: {
      if (Elems.size() == 1)
        fail("empty begin", Stx);
      std::vector<Value> Out = {makeId(SymBegin, Src)};
      for (size_t I = 1; I < Elems.size(); ++I)
        Out.push_back(expand(Elems[I]));
      return listStx(Out, Src);
    }

    case Form::SetBang: {
      if (Elems.size() != 3)
        fail("set! expects a variable and a value", Stx);
      Syntax *Id = asIdentifier(Elems[1]);
      if (!Id)
        fail("set! target must be an identifier", Stx);
      ResolveResult R = resolve(Id);
      Value Target;
      if (R.K == ResolveResult::Kind::Bound) {
        if (R.B->K != ExpBinding::Kind::Variable)
          fail("set! of a non-variable binding", Stx);
        Target = makeId(R.B->Renamed, Id->Src);
      } else if (R.K == ResolveResult::Kind::Unbound) {
        Target = Elems[1];
      } else {
        fail("ambiguous identifier in set!", Stx);
      }
      return listStx({makeId(SymSet, Src), Target, expand(Elems[2])}, Src);
    }

    case Form::Define:
      return expandDefine(Elems, Stx, /*TopLevel=*/false);

    case Form::DefineSyntax:
      fail("define-syntax is only allowed at top level", Stx);

    case Form::Let:
      return expandLet(Elems, Stx);
    case Form::LetStar:
      return expandLetStar(Elems, Stx);
    case Form::Letrec:
    case Form::LetrecStar:
      return expandLetrec(Elems, Stx);
    case Form::Cond:
      return expandCond(Elems, Stx);
    case Form::When:
    case Form::Unless: {
      if (Elems.size() < 3)
        fail("when/unless expect a test and a body", Stx);
      std::vector<Value> Body(Elems.begin() + 2, Elems.end());
      Value BodyStx = Body.size() == 1
                          ? Body[0]
                          : prependId(SymBegin, Body, Src);
      Value Test = Elems[1];
      if (F == Form::Unless) {
        // (if test (void) body)
        return expand(listStx({makeId(SymIf, Src), Test,
                               listStx({makeId(SymVoid, Src)}, Src), BodyStx},
                              Src));
      }
      return expand(listStx({makeId(SymIf, Src), Test, BodyStx,
                             listStx({makeId(SymVoid, Src)}, Src)},
                            Src));
    }
    case Form::And: {
      if (Elems.size() == 1)
        return listStx({makeId(SymQuote, Src),
                        makeSyntax(Ctx.TheHeap, Value::boolean(true),
                                   ScopeSet(), Src)},
                       Src);
      if (Elems.size() == 2)
        return expand(Elems[1]);
      std::vector<Value> Rest(Elems.begin() + 2, Elems.end());
      Value RestAnd = prependId(Ctx.Symbols.intern("and"), Rest, Src);
      return expand(listStx({makeId(SymIf, Src), Elems[1], RestAnd,
                             makeSyntax(Ctx.TheHeap, Value::boolean(false),
                                        ScopeSet(), Src)},
                            Src));
    }
    case Form::Or: {
      if (Elems.size() == 1)
        return listStx({makeId(SymQuote, Src),
                        makeSyntax(Ctx.TheHeap, Value::boolean(false),
                                   ScopeSet(), Src)},
                       Src);
      if (Elems.size() == 2)
        return expand(Elems[1]);
      // (let ([t e1]) (if t t (or rest...)))
      Value T = makeId(Ctx.Symbols.gensym("or-tmp"), Src);
      std::vector<Value> Rest(Elems.begin() + 2, Elems.end());
      Value RestOr = prependId(Ctx.Symbols.intern("or"), Rest, Src);
      Value Binding = listStx({T, Elems[1]}, Src);
      Value Bindings = listStx({Binding}, Src);
      Value IfStx = listStx({makeId(SymIf, Src), T, T, RestOr}, Src);
      return expand(listStx({makeId(SymLet, Src), Bindings, IfStx}, Src));
    }
    case Form::Quasiquote: {
      if (Elems.size() != 2)
        fail("quasiquote expects one template", Stx);
      return expand(quasiData(Elems[1], Src));
    }
    case Form::SyntaxCase:
      return expandSyntaxCase(Elems, Stx);
    case Form::SyntaxForm: {
      if (Elems.size() != 2)
        fail("syntax expects one template", Stx);
      Value T = substPatternVars(Elems[1], /*Quasi=*/false);
      return listStx({makeId(SymSyntaxTemplate, Src), T}, Src);
    }
    case Form::Quasisyntax: {
      if (Elems.size() != 2)
        fail("quasisyntax expects one template", Stx);
      Value T = substPatternVars(Elems[1], /*Quasi=*/true);
      return listStx({makeId(SymQuasiTemplate, Src), T}, Src);
    }
    case Form::WithSyntax:
      return expandWithSyntax(Elems, Stx);
    case Form::SyntaxRules:
      return expandSyntaxRules(Elems, Stx);
    case Form::Do:
      return expandDo(Elems, Stx);
    case Form::LetSyntax:
      return expandLetSyntax(Elems, Stx);
    case Form::None:
      break;
    }
    fail("unhandled form", Stx);
  }

  Value prependId(Symbol *S, const std::vector<Value> &Rest,
                  const SourceObject *Src) {
    std::vector<Value> Out = {makeId(S, Src)};
    Out.insert(Out.end(), Rest.begin(), Rest.end());
    return listStx(Out, Src);
  }

  //===------------------------------------------------------------------===//
  // lambda / bodies / define
  //===------------------------------------------------------------------===//

  /// Rewrites leading internal defines into a letrec* around the rest.
  Value rewriteBody(const std::vector<Value> &BodyForms, const Value &Stx) {
    const SourceObject *Src = syntaxSource(Stx);
    if (BodyForms.empty())
      fail("empty body", Stx);

    std::vector<Value> Defines;
    size_t FirstExpr = 0;
    for (; FirstExpr < BodyForms.size(); ++FirstExpr) {
      Value In = syntaxE(BodyForms[FirstExpr]);
      if (!In.isPair())
        break;
      Syntax *HeadId = asIdentifier(In.asPair()->Car);
      if (!HeadId || HeadId->identifierSymbol() != SymDefine ||
          resolve(HeadId).K == ResolveResult::Kind::Bound)
        break;
      Defines.push_back(BodyForms[FirstExpr]);
    }
    if (Defines.empty()) {
      if (BodyForms.size() == 1)
        return BodyForms[0];
      return prependId(SymBegin, BodyForms, Src);
    }
    if (FirstExpr == BodyForms.size())
      fail("body consists only of definitions", Stx);

    // (letrec* ([name expr]...) rest...)
    std::vector<Value> Bindings;
    for (const Value &D : Defines) {
      auto [Name, Expr] = splitDefine(D);
      Bindings.push_back(listStx({Name, Expr}, syntaxSource(D)));
    }
    std::vector<Value> Out = {makeId(SymLetrecStar, Src),
                              listStx(Bindings, Src)};
    for (size_t I = FirstExpr; I < BodyForms.size(); ++I)
      Out.push_back(BodyForms[I]);
    return listStx(Out, Src);
  }

  /// (define x e) / (define (f . args) body...) -> {name, expr}.
  std::pair<Value, Value> splitDefine(const Value &Stx) {
    std::vector<Value> Elems;
    Value Tail;
    spine(Stx, Elems, Tail);
    if (!Tail.isNil() || Elems.size() < 2)
      fail("malformed define", Stx);
    const SourceObject *Src = syntaxSource(Stx);

    Value Target = Elems[1];
    Value TargetIn = syntaxE(Target);
    if (TargetIn.isSymbol()) {
      if (Elems.size() == 2)
        return {Target, listStx({makeId(SymVoid, Src)}, Src)};
      if (Elems.size() != 3)
        fail("define expects one value expression", Stx);
      return {Target, Elems[2]};
    }
    if (!TargetIn.isPair())
      fail("bad define target", Stx);

    // Procedure shorthand: (define (f . params) body...)
    Value Name = TargetIn.asPair()->Car;
    if (!asIdentifier(Name))
      fail("bad procedure name in define", Stx);
    Value Params = makeSyntax(Ctx.TheHeap, TargetIn.asPair()->Cdr, ScopeSet(),
                              Src);
    std::vector<Value> LambdaParts = {makeId(SymLambda, Src), Params};
    for (size_t I = 2; I < Elems.size(); ++I)
      LambdaParts.push_back(Elems[I]);
    return {Name, listStx(LambdaParts, Src)};
  }

  Value expandLambda(const std::vector<Value> &Elems, const Value &Stx) {
    if (Elems.size() < 3)
      fail("lambda expects parameters and a body", Stx);
    const SourceObject *Src = syntaxSource(Stx);
    ScopeId S = Ctx.freshScope();

    Value Params = adjustScope(Ctx.TheHeap, Elems[1], S, ScopeOp::Add);
    std::vector<Value> Body;
    for (size_t I = 2; I < Elems.size(); ++I)
      Body.push_back(adjustScope(Ctx.TheHeap, Elems[I], S, ScopeOp::Add));

    // Bind parameters.
    std::vector<Value> RenamedParams;
    Value RestRenamed = Value::nil();
    auto bindParam = [&](Value IdStx) -> Value {
      Syntax *Id = asIdentifier(IdStx);
      if (!Id)
        fail("lambda parameter is not an identifier", Stx);
      Symbol *Orig = Id->identifierSymbol();
      Symbol *Renamed = Ctx.Symbols.gensym(Orig->Name);
      ExpBinding B;
      B.K = ExpBinding::Kind::Variable;
      B.Renamed = Renamed;
      Ctx.bind(Orig, Id->Scopes, B);
      return makeId(Renamed, Id->Src);
    };

    Value ParamsIn = syntaxE(Params);
    if (ParamsIn.isSymbol()) {
      RestRenamed = bindParam(Params);
    } else {
      std::vector<Value> ParamIds;
      Value RestTail;
      spine(Params, ParamIds, RestTail);
      for (const Value &P : ParamIds)
        RenamedParams.push_back(bindParam(P));
      if (!RestTail.isNil()) {
        Value RestId =
            RestTail.isSyntax()
                ? RestTail
                : makeSyntax(Ctx.TheHeap, RestTail,
                             Params.isSyntax() ? Params.asSyntax()->Scopes
                                               : ScopeSet(),
                             Src);
        RestRenamed = bindParam(RestId);
      }
    }

    Value BodyStx = rewriteBody(Body, Stx);
    Value ExpandedBody = expand(BodyStx);

    Value ParamList =
        RenamedParams.empty() && !RestRenamed.isNil()
            ? RestRenamed // (lambda args ...) — bare rest identifier
            : listStx(RenamedParams, Src,
                      RestRenamed.isNil() ? Value::nil() : RestRenamed);
    return listStx({makeId(SymLambda, Src), ParamList, ExpandedBody}, Src);
  }

  Value expandDefine(const std::vector<Value> &Elems, const Value &Stx,
                     bool TopLevel) {
    if (!TopLevel)
      fail("define is only allowed at top level or at the start of a body",
           Stx);
    auto [Name, ValueExpr] = splitDefineFromElems(Elems, Stx);
    const SourceObject *Src = syntaxSource(Stx);
    Syntax *NameId = asIdentifier(Name);
    if (!NameId)
      fail("define target must be an identifier", Stx);
    // Top-level definitions live in the global namespace under their
    // original (interned) symbol.
    return listStx({makeId(SymDefine, Src),
                    makeId(NameId->identifierSymbol(), NameId->Src),
                    expand(ValueExpr)},
                   Src);
  }

  std::pair<Value, Value> splitDefineFromElems(const std::vector<Value> &,
                                               const Value &Stx) {
    return splitDefine(Stx);
  }

  //===------------------------------------------------------------------===//
  // let forms / cond
  //===------------------------------------------------------------------===//

  struct LetParts {
    std::vector<Value> Names;
    std::vector<Value> Inits;
  };

  LetParts parseBindings(const Value &BindingsStx, const Value &Stx) {
    LetParts P;
    std::vector<Value> Bindings;
    Value Tail;
    spine(BindingsStx, Bindings, Tail);
    if (!Tail.isNil())
      fail("dotted binding list", Stx);
    for (const Value &B : Bindings) {
      std::vector<Value> Parts;
      Value BTail;
      spine(B, Parts, BTail);
      if (Parts.size() != 2 || !BTail.isNil())
        fail("malformed binding", Stx);
      if (!asIdentifier(Parts[0]))
        fail("binding name must be an identifier", Stx);
      P.Names.push_back(Parts[0]);
      P.Inits.push_back(Parts[1]);
    }
    return P;
  }

  Value expandLet(const std::vector<Value> &Elems, const Value &Stx) {
    if (Elems.size() < 3)
      fail("let expects bindings and a body", Stx);
    const SourceObject *Src = syntaxSource(Stx);

    // Named let: (let loop ([x e]...) body...)
    if (asIdentifier(Elems[1])) {
      if (Elems.size() < 4)
        fail("named let expects bindings and a body", Stx);
      Value Name = Elems[1];
      LetParts P = parseBindings(Elems[2], Stx);
      std::vector<Value> LambdaParts = {makeId(SymLambda, Src),
                                        listStx(P.Names, Src)};
      for (size_t I = 3; I < Elems.size(); ++I)
        LambdaParts.push_back(Elems[I]);
      Value Fn = listStx(LambdaParts, Src);
      Value Binding = listStx({Name, Fn}, Src);
      std::vector<Value> CallParts = {Name};
      CallParts.insert(CallParts.end(), P.Inits.begin(), P.Inits.end());
      Value Call = listStx(CallParts, Src);
      return expand(listStx({makeId(SymLetrecStar, Src),
                             listStx({Binding}, Src), Call},
                            Src));
    }

    LetParts P = parseBindings(Elems[1], Stx);
    std::vector<Value> LambdaParts = {makeId(SymLambda, Src),
                                      listStx(P.Names, Src)};
    for (size_t I = 2; I < Elems.size(); ++I)
      LambdaParts.push_back(Elems[I]);
    Value Fn = listStx(LambdaParts, Src);
    std::vector<Value> CallParts = {Fn};
    CallParts.insert(CallParts.end(), P.Inits.begin(), P.Inits.end());
    return expand(listStx(CallParts, Src));
  }

  Value expandLetStar(const std::vector<Value> &Elems, const Value &Stx) {
    if (Elems.size() < 3)
      fail("let* expects bindings and a body", Stx);
    const SourceObject *Src = syntaxSource(Stx);
    LetParts P = parseBindings(Elems[1], Stx);
    std::vector<Value> Body(Elems.begin() + 2, Elems.end());
    if (P.Names.empty()) {
      std::vector<Value> LetParts2 = {makeId(SymLet, Src),
                                      listStx({}, Src)};
      LetParts2.insert(LetParts2.end(), Body.begin(), Body.end());
      return expand(listStx(LetParts2, Src));
    }
    // Fold right: (let ([n1 i1]) (let* (rest...) body...))
    Value Out = prependId(SymLet, {listStx({}, Src)}, Src);
    std::vector<Value> Inner = Body;
    for (size_t I = P.Names.size(); I > 0; --I) {
      Value Binding = listStx({P.Names[I - 1], P.Inits[I - 1]}, Src);
      std::vector<Value> LetForm = {makeId(SymLet, Src),
                                    listStx({Binding}, Src)};
      LetForm.insert(LetForm.end(), Inner.begin(), Inner.end());
      Out = listStx(LetForm, Src);
      Inner = {Out};
    }
    return expand(Out);
  }

  Value expandLetrec(const std::vector<Value> &Elems, const Value &Stx) {
    if (Elems.size() < 3)
      fail("letrec expects bindings and a body", Stx);
    const SourceObject *Src = syntaxSource(Stx);
    LetParts P = parseBindings(Elems[1], Stx);

    // ((lambda (names...) (set! n i)... body...) (void)...)
    std::vector<Value> LambdaParts = {makeId(SymLambda, Src),
                                      listStx(P.Names, Src)};
    for (size_t I = 0; I < P.Names.size(); ++I)
      LambdaParts.push_back(
          listStx({makeId(SymSet, Src), P.Names[I], P.Inits[I]}, Src));
    for (size_t I = 2; I < Elems.size(); ++I)
      LambdaParts.push_back(Elems[I]);
    Value Fn = listStx(LambdaParts, Src);

    std::vector<Value> CallParts = {Fn};
    for (size_t I = 0; I < P.Names.size(); ++I)
      CallParts.push_back(listStx({makeId(SymVoid, Src)}, Src));
    return expand(listStx(CallParts, Src));
  }

  Value expandCond(const std::vector<Value> &Elems, const Value &Stx) {
    const SourceObject *Src = syntaxSource(Stx);
    if (Elems.size() == 1)
      return expand(listStx({makeId(SymVoid, Src)}, Src));

    // Build nested ifs from the last clause backwards.
    Value Rest = listStx({makeId(SymVoid, Src)}, Src);
    for (size_t I = Elems.size(); I > 1; --I) {
      const Value &ClauseStx = Elems[I - 1];
      std::vector<Value> Parts;
      Value Tail;
      spine(ClauseStx, Parts, Tail);
      if (Parts.empty() || !Tail.isNil())
        fail("malformed cond clause", ClauseStx);
      const SourceObject *CSrc = syntaxSource(ClauseStx);

      if (isAuxKeyword(Parts[0], SymElse)) {
        if (I != Elems.size())
          fail("else clause must be last", ClauseStx);
        if (Parts.size() < 2)
          fail("empty else clause", ClauseStx);
        std::vector<Value> Body(Parts.begin() + 1, Parts.end());
        Rest = Body.size() == 1 ? Body[0] : prependId(SymBegin, Body, CSrc);
        continue;
      }
      if (Parts.size() == 1) {
        // (test) — value of test if truthy.
        Value T = makeId(Ctx.Symbols.gensym("cond-tmp"), CSrc);
        Value Binding = listStx({T, Parts[0]}, CSrc);
        Value IfStx =
            listStx({makeId(SymIf, CSrc), T, T, Rest}, CSrc);
        Rest = listStx({makeId(SymLet, CSrc), listStx({Binding}, CSrc),
                        IfStx},
                       CSrc);
        continue;
      }
      if (Parts.size() == 3 && isAuxKeyword(Parts[1], SymArrow)) {
        Value T = makeId(Ctx.Symbols.gensym("cond-tmp"), CSrc);
        Value Binding = listStx({T, Parts[0]}, CSrc);
        Value Call = listStx({Parts[2], T}, CSrc);
        Value IfStx = listStx({makeId(SymIf, CSrc), T, Call, Rest}, CSrc);
        Rest = listStx({makeId(SymLet, CSrc), listStx({Binding}, CSrc),
                        IfStx},
                       CSrc);
        continue;
      }
      std::vector<Value> Body(Parts.begin() + 1, Parts.end());
      Value BodyStx =
          Body.size() == 1 ? Body[0] : prependId(SymBegin, Body, CSrc);
      Rest = listStx({makeId(SymIf, CSrc), Parts[0], BodyStx, Rest}, CSrc);
    }
    return expand(Rest);
  }

  //===------------------------------------------------------------------===//
  // quasiquote on data
  //===------------------------------------------------------------------===//

  /// Desugars `T with , and ,@ (one level) into cons/append/quote calls.
  Value quasiData(const Value &T, const SourceObject *Src) {
    Value In = syntaxE(T);
    if (In.isPair()) {
      // (unquote e)
      if (isAuxKeyword(In.asPair()->Car, SymUnquote)) {
        Value Rest = syntaxE(In.asPair()->Cdr);
        if (!Rest.isPair() || !syntaxE(Rest.asPair()->Cdr).isNil())
          fail("malformed unquote", T);
        return Rest.asPair()->Car;
      }
      // Element-wise: (append chunk...) where unquote-splicing elements
      // pass through and runs of ordinary elements become (cons ...).
      std::vector<Value> Elems;
      Value Tail;
      spine(T, Elems, Tail);

      // A dotted unquote `(a . ,e) reads as (a unquote e): the spine walk
      // flattens it, so recover the tail expression here.
      if (Elems.size() >= 2 &&
          isAuxKeyword(Elems[Elems.size() - 2], SymUnquote) &&
          Tail.isNil()) {
        Value TailE = Elems.back();
        Elems.pop_back();
        Elems.pop_back();
        Value Out = TailE;
        for (size_t I = Elems.size(); I > 0; --I)
          Out = listStx({makeId(SymCons, Src), quasiData(Elems[I - 1], Src),
                         Out},
                        Src);
        return Out;
      }

      Value TailExpr;
      if (Tail.isNil())
        TailExpr = listStx({makeId(SymQuote, Src),
                            makeSyntax(Ctx.TheHeap, Value::nil(), ScopeSet(),
                                       Src)},
                           Src);
      else
        TailExpr = quasiData(Tail, Src);

      Value Out = TailExpr;
      for (size_t I = Elems.size(); I > 0; --I) {
        Value E = Elems[I - 1];
        Value EIn = syntaxE(E);
        if (EIn.isPair() &&
            isAuxKeyword(EIn.asPair()->Car, SymUnquoteSplicing)) {
          Value Rest = syntaxE(EIn.asPair()->Cdr);
          if (!Rest.isPair() || !syntaxE(Rest.asPair()->Cdr).isNil())
            fail("malformed unquote-splicing", E);
          Out = listStx({makeId(SymAppend, Src), Rest.asPair()->Car, Out},
                        Src);
        } else {
          Out = listStx({makeId(SymCons, Src), quasiData(E, Src), Out}, Src);
        }
      }
      return Out;
    }
    if (In.isVector())
      fail("quasiquote vectors are not supported", T);
    return listStx({makeId(SymQuote, Src), T}, Src);
  }

  //===------------------------------------------------------------------===//
  // syntax-case / templates
  //===------------------------------------------------------------------===//

  /// Walks a pattern collecting variables (ids that are not listed
  /// literals, _, or ...), renaming them, and binding them as PatternVar.
  /// Returns the rewritten pattern.
  Value processPattern(const Value &Pat,
                       const std::unordered_set<Symbol *> &Literals,
                       int Depth,
                       std::unordered_map<Symbol *, int> &Seen) {
    Value In = syntaxE(Pat);
    switch (In.kind()) {
    case ValueKind::Symbol: {
      Symbol *S = In.asSymbol();
      if (S == SymUnderscore || S == SymEllipsis || Literals.count(S))
        return Pat;
      Syntax *Id = asIdentifier(Pat);
      if (!Id)
        fail("pattern variable lost its syntax", Pat);
      if (Seen.count(S))
        fail("duplicate pattern variable " + S->Name, Pat);
      Seen.emplace(S, Depth);
      Symbol *Renamed = Ctx.Symbols.gensym(S->Name);
      ExpBinding B;
      B.K = ExpBinding::Kind::PatternVar;
      B.Renamed = Renamed;
      B.EllipsisDepth = Depth;
      Ctx.bind(S, Id->Scopes, B);
      return makeId(Renamed, Id->Src);
    }
    case ValueKind::Pair: {
      std::vector<Value> Elems;
      Value Tail;
      spine(Pat, Elems, Tail);
      std::vector<Value> Out;
      for (size_t I = 0; I < Elems.size(); ++I) {
        bool Repeated = I + 1 < Elems.size() && isEllipsisId(Elems[I + 1]);
        Out.push_back(processPattern(Elems[I], Literals,
                                     Depth + (Repeated ? 1 : 0), Seen));
      }
      Value NewTail =
          Tail.isNil() ? Value::nil()
                       : processPattern(Tail, Literals, Depth, Seen);
      // Rebuild with original syntax identity.
      Value Spine = NewTail;
      for (size_t I = Out.size(); I > 0; --I)
        Spine = Ctx.TheHeap.cons(Out[I - 1], Spine);
      if (Pat.isSyntax())
        return makeSyntax(Ctx.TheHeap, Spine, Pat.asSyntax()->Scopes,
                          Pat.asSyntax()->Src);
      return Spine;
    }
    case ValueKind::Vector: {
      std::vector<Value> Out;
      for (const Value &E : In.asVector()->Elems)
        Out.push_back(processPattern(E, Literals, Depth, Seen));
      Value Vec = Ctx.TheHeap.vector(std::move(Out));
      if (Pat.isSyntax())
        return makeSyntax(Ctx.TheHeap, Vec, Pat.asSyntax()->Scopes,
                          Pat.asSyntax()->Src);
      return Vec;
    }
    default:
      return Pat;
    }
  }

  bool isEllipsisId(const Value &V) {
    Syntax *Id = asIdentifier(V);
    return Id && Id->identifierSymbol() == SymEllipsis;
  }

  /// Hmm: the improper-tail case above re-wraps a bare symbol; patterns
  /// with dotted tails keep working because processPattern on the wrapped
  /// id resolves scopes from the enclosing pattern node.
  Value expandSyntaxCase(const std::vector<Value> &Elems, const Value &Stx) {
    if (Elems.size() < 3)
      fail("syntax-case expects a scrutinee and literals", Stx);
    const SourceObject *Src = syntaxSource(Stx);
    Value Scrut = expand(Elems[1]);

    std::unordered_set<Symbol *> Literals;
    {
      std::vector<Value> Lits;
      Value Tail;
      spine(Elems[2], Lits, Tail);
      if (!Tail.isNil())
        fail("dotted literals list", Stx);
      for (const Value &L : Lits) {
        Syntax *Id = asIdentifier(L);
        if (!Id)
          fail("literal is not an identifier", Stx);
        Literals.insert(Id->identifierSymbol());
      }
    }

    std::vector<Value> OutClauses = {makeId(SymSyntaxCaseStar, Src), Scrut};
    for (size_t I = 3; I < Elems.size(); ++I) {
      std::vector<Value> Parts;
      Value Tail;
      spine(Elems[I], Parts, Tail);
      if (!Tail.isNil() || (Parts.size() != 2 && Parts.size() != 3))
        fail("malformed syntax-case clause", Elems[I]);
      const SourceObject *CSrc = syntaxSource(Elems[I]);

      ScopeId SC = Ctx.freshScope();
      Value Pat = adjustScope(Ctx.TheHeap, Parts[0], SC, ScopeOp::Add);
      Value Fender = Parts.size() == 3
                         ? adjustScope(Ctx.TheHeap, Parts[1], SC, ScopeOp::Add)
                         : Value::nil();
      Value Body = adjustScope(Ctx.TheHeap, Parts.back(), SC, ScopeOp::Add);

      std::unordered_map<Symbol *, int> Seen;
      Value NewPat = processPattern(Pat, Literals, 0, Seen);

      Value NewFender = Parts.size() == 3 ? expand(Fender)
                                          : makeId(SymNoFender, CSrc);
      Value NewBody = expand(Body);
      OutClauses.push_back(listStx({NewPat, NewFender, NewBody}, CSrc));
    }
    return listStx(OutClauses, Src);
  }

  /// Rewrites template \p T: identifiers that resolve to pattern variables
  /// become their renamed symbols; in quasi mode, unsyntax forms become
  /// #%unsyntax markers around fully expanded expressions.
  Value substPatternVars(const Value &T, bool Quasi) {
    Value In = syntaxE(T);
    switch (In.kind()) {
    case ValueKind::Symbol: {
      Syntax *Id = asIdentifier(T);
      if (!Id)
        return T;
      ResolveResult R = resolve(Id);
      if (R.K == ResolveResult::Kind::Bound &&
          R.B->K == ExpBinding::Kind::PatternVar)
        return makeId(R.B->Renamed, Id->Src);
      return T;
    }
    case ValueKind::Pair: {
      if (Quasi) {
        // (unsyntax e) / (unsyntax-splicing e)
        if (isAuxKeyword(In.asPair()->Car, SymUnsyntax) ||
            isAuxKeyword(In.asPair()->Car, SymUnsyntaxSplicing)) {
          bool Splice = isAuxKeyword(In.asPair()->Car, SymUnsyntaxSplicing);
          Value Rest = syntaxE(In.asPair()->Cdr);
          if (!Rest.isPair() || !syntaxE(Rest.asPair()->Cdr).isNil())
            fail("malformed unsyntax", T);
          Value Marker = makeId(
              Splice ? SymUnsyntaxSplicingMark : SymUnsyntaxMark,
              syntaxSource(T));
          return listStx({Marker, expand(Rest.asPair()->Car)},
                         syntaxSource(T));
        }
      }
      std::vector<Value> Elems;
      Value Tail;
      spine(T, Elems, Tail);
      std::vector<Value> Out;
      for (const Value &E : Elems)
        Out.push_back(substPatternVars(E, Quasi));
      Value NewTail =
          Tail.isNil() ? Value::nil() : substPatternVars(Tail, Quasi);
      Value Spine = NewTail;
      for (size_t I = Out.size(); I > 0; --I)
        Spine = Ctx.TheHeap.cons(Out[I - 1], Spine);
      if (T.isSyntax())
        return makeSyntax(Ctx.TheHeap, Spine, T.asSyntax()->Scopes,
                          T.asSyntax()->Src);
      return Spine;
    }
    case ValueKind::Vector: {
      std::vector<Value> Out;
      for (const Value &E : In.asVector()->Elems)
        Out.push_back(substPatternVars(E, Quasi));
      Value Vec = Ctx.TheHeap.vector(std::move(Out));
      if (T.isSyntax())
        return makeSyntax(Ctx.TheHeap, Vec, T.asSyntax()->Scopes,
                          T.asSyntax()->Src);
      return Vec;
    }
    default:
      return T;
    }
  }

  /// Evaluates a transformer expression at phase 1 and binds \p NameId
  /// to the resulting macro.
  void bindMacro(Syntax *NameId, Value TransformerExpr, const Value &Stx) {
    Value Core = expand(TransformerExpr);
    auto Unit = compileCore(Ctx, Core);
    Value Transformer = evalExpr(Ctx, Unit->Root, nullptr);
    Ctx.adoptCode(std::move(Unit));
    if (!Transformer.isProcedure())
      fail("transformer is not a procedure", Stx);
    ExpBinding B;
    B.K = ExpBinding::Kind::Macro;
    B.Transformer = Transformer;
    Ctx.bind(NameId->identifierSymbol(), NameId->Scopes, B);
  }

  /// (let-syntax ([name transformer] ...) body ...): locally scoped
  /// macros. Implemented with letrec-syntax semantics (the transformer
  /// expressions see the new bindings' scope), which subsumes let-syntax
  /// for all paper use cases.
  Value expandLetSyntax(const std::vector<Value> &Elems, const Value &Stx) {
    if (Elems.size() < 3)
      fail("let-syntax expects bindings and a body", Stx);
    const SourceObject *Src = syntaxSource(Stx);
    ScopeId S = Ctx.freshScope();

    std::vector<Value> Bindings;
    Value BTail;
    spine(Elems[1], Bindings, BTail);
    if (!BTail.isNil())
      fail("dotted let-syntax bindings", Stx);

    for (const Value &B : Bindings) {
      std::vector<Value> Parts;
      Value Tail;
      spine(B, Parts, Tail);
      if (Parts.size() != 2 || !Tail.isNil())
        fail("malformed let-syntax binding", B);
      Value Name = adjustScope(Ctx.TheHeap, Parts[0], S, ScopeOp::Add);
      Syntax *NameId = asIdentifier(Name);
      if (!NameId)
        fail("let-syntax name must be an identifier", B);
      Value TransformerExpr =
          adjustScope(Ctx.TheHeap, Parts[1], S, ScopeOp::Add);
      bindMacro(NameId, TransformerExpr, Stx);
    }

    std::vector<Value> Body;
    for (size_t I = 2; I < Elems.size(); ++I)
      Body.push_back(adjustScope(Ctx.TheHeap, Elems[I], S, ScopeOp::Add));
    return expand(rewriteBody(Body, Stx.isSyntax()
                                        ? makeSyntax(Ctx.TheHeap,
                                                     syntaxE(Stx),
                                                     Stx.asSyntax()->Scopes,
                                                     Src)
                                        : Stx));
  }

  /// (syntax-rules (lit ...) [pattern template] ...) desugars to the
  /// equivalent procedural transformer:
  ///   (lambda (stx) (syntax-case stx (lit ...) [pattern #'template] ...))
  Value expandSyntaxRules(const std::vector<Value> &Elems, const Value &Stx) {
    if (Elems.size() < 2)
      fail("syntax-rules expects a literals list", Stx);
    const SourceObject *Src = syntaxSource(Stx);

    // A fresh uninterned parameter name cannot collide with anything in
    // the user's templates.
    Value StxParam = makeId(Ctx.Symbols.gensym("stx"), Src);

    std::vector<Value> CaseParts = {
        makeId(Ctx.Symbols.intern("syntax-case"), Src), StxParam, Elems[1]};
    for (size_t I = 2; I < Elems.size(); ++I) {
      std::vector<Value> Rule;
      Value Tail;
      spine(Elems[I], Rule, Tail);
      if (Rule.size() != 2 || !Tail.isNil())
        fail("malformed syntax-rules rule", Elems[I]);
      const SourceObject *RSrc = syntaxSource(Elems[I]);
      Value Tpl = listStx({makeId(Ctx.Symbols.intern("syntax"), RSrc),
                           Rule[1]},
                          RSrc);
      CaseParts.push_back(listStx({Rule[0], Tpl}, RSrc));
    }
    Value Body = listStx(CaseParts, Src);
    Value Params = listStx({StxParam}, Src);
    return expand(listStx({makeId(SymLambda, Src), Params, Body}, Src));
  }

  /// (do ([var init step]...) (test result...) body...) — R5RS iteration.
  Value expandDo(const std::vector<Value> &Elems, const Value &Stx) {
    if (Elems.size() < 3)
      fail("do expects bindings and a termination clause", Stx);
    const SourceObject *Src = syntaxSource(Stx);

    std::vector<Value> Bindings;
    Value BTail;
    spine(Elems[1], Bindings, BTail);
    if (!BTail.isNil())
      fail("dotted do bindings", Stx);

    std::vector<Value> Names, Inits, Steps;
    for (const Value &B : Bindings) {
      std::vector<Value> Parts;
      Value Tail;
      spine(B, Parts, Tail);
      if (!Tail.isNil() || Parts.size() < 2 || Parts.size() > 3 ||
          !asIdentifier(Parts[0]))
        fail("malformed do binding", B);
      Names.push_back(Parts[0]);
      Inits.push_back(Parts[1]);
      Steps.push_back(Parts.size() == 3 ? Parts[2] : Parts[0]);
    }

    std::vector<Value> TermParts;
    Value TTail;
    spine(Elems[2], TermParts, TTail);
    if (!TTail.isNil() || TermParts.empty())
      fail("malformed do termination clause", Stx);
    Value Test = TermParts[0];
    std::vector<Value> Results(TermParts.begin() + 1, TermParts.end());
    Value ResultStx = Results.empty()
                          ? listStx({makeId(SymVoid, Src)}, Src)
                          : (Results.size() == 1
                                 ? Results[0]
                                 : prependId(SymBegin, Results, Src));

    // (letrec* ([loop (lambda (names...)
    //                   (if test result (begin body... (loop steps...))))])
    //   (loop inits...))
    Value Loop = makeId(Ctx.Symbols.gensym("do-loop"), Src);
    std::vector<Value> Recur = {Loop};
    Recur.insert(Recur.end(), Steps.begin(), Steps.end());
    std::vector<Value> Iter(Elems.begin() + 3, Elems.end());
    Iter.push_back(listStx(Recur, Src));
    Value IterStx = prependId(SymBegin, Iter, Src);
    Value IfStx =
        listStx({makeId(SymIf, Src), Test, ResultStx, IterStx}, Src);
    std::vector<Value> LambdaParts = {makeId(SymLambda, Src),
                                      listStx(Names, Src), IfStx};
    Value Fn = listStx(LambdaParts, Src);
    Value Binding = listStx({Loop, Fn}, Src);
    std::vector<Value> CallParts = {Loop};
    CallParts.insert(CallParts.end(), Inits.begin(), Inits.end());
    return expand(listStx({makeId(SymLetrecStar, Src),
                           listStx({Binding}, Src),
                           listStx(CallParts, Src)},
                          Src));
  }

  Value expandWithSyntax(const std::vector<Value> &Elems, const Value &Stx) {
    if (Elems.size() < 3)
      fail("with-syntax expects bindings and a body", Stx);
    const SourceObject *Src = syntaxSource(Stx);
    std::vector<Value> Bindings;
    Value Tail;
    spine(Elems[1], Bindings, Tail);
    if (!Tail.isNil())
      fail("dotted with-syntax bindings", Stx);

    std::vector<Value> Pats, Exprs;
    for (const Value &B : Bindings) {
      std::vector<Value> Parts;
      Value BTail;
      spine(B, Parts, BTail);
      if (Parts.size() != 2 || !BTail.isNil())
        fail("malformed with-syntax binding", B);
      Pats.push_back(Parts[0]);
      Exprs.push_back(Parts[1]);
    }

    // (syntax-case (list e...) () [(pat...) body...])
    std::vector<Value> ListCall = {makeId(SymList, Src)};
    ListCall.insert(ListCall.end(), Exprs.begin(), Exprs.end());
    std::vector<Value> Body(Elems.begin() + 2, Elems.end());
    Value BodyStx = Body.size() == 1 ? Body[0] : prependId(SymBegin, Body,
                                                           Src);
    Value Clause = listStx({listStx(Pats, Src), BodyStx}, Src);
    return expand(listStx({makeId(Ctx.Symbols.intern("syntax-case"), Src),
                           listStx(ListCall, Src), listStx({}, Src), Clause},
                          Src));
  }

  //===------------------------------------------------------------------===//
  // Top level
  //===------------------------------------------------------------------===//

  std::vector<Value> expandTopLevel(Value Stx) {
    Value In = syntaxE(Stx);
    if (In.isPair()) {
      Syntax *HeadId = asIdentifier(In.asPair()->Car);
      if (HeadId && resolve(HeadId).K == ResolveResult::Kind::Unbound) {
        Symbol *S = HeadId->identifierSymbol();
        if (S == SymBegin) {
          std::vector<Value> Elems;
          Value Tail;
          spine(Stx, Elems, Tail);
          if (!Tail.isNil())
            fail("dotted begin", Stx);
          std::vector<Value> Out;
          for (size_t I = 1; I < Elems.size(); ++I) {
            auto Sub = expandTopLevel(Elems[I]);
            Out.insert(Out.end(), Sub.begin(), Sub.end());
          }
          return Out;
        }
        if (S == SymDefine) {
          std::vector<Value> Elems;
          Value Tail;
          spine(Stx, Elems, Tail);
          return {expandDefine(Elems, Stx, /*TopLevel=*/true)};
        }
        if (S == Ctx.Symbols.intern("define-syntax"))
          return expandDefineSyntax(Stx);
      }
      // A macro use at top level may expand into define/begin forms:
      // expand one step and retry.
      if (HeadId) {
        ResolveResult R = resolve(HeadId);
        if (R.K == ResolveResult::Kind::Bound &&
            R.B->K == ExpBinding::Kind::Macro) {
          Value Once = invokeMacro(Stx, R.B->Transformer);
          return expandTopLevel(Once);
        }
      }
    }
    return {expand(Stx)};
  }

  std::vector<Value> expandDefineSyntax(const Value &Stx) {
    std::vector<Value> Elems;
    Value Tail;
    spine(Stx, Elems, Tail);
    if (!Tail.isNil() || Elems.size() < 3)
      fail("malformed define-syntax", Stx);

    Value Name, TransformerExpr;
    Value TargetIn = syntaxE(Elems[1]);
    if (TargetIn.isSymbol()) {
      if (Elems.size() != 3)
        fail("define-syntax expects one transformer", Stx);
      Name = Elems[1];
      TransformerExpr = Elems[2];
    } else if (TargetIn.isPair()) {
      // (define-syntax (name stx) body...)
      const SourceObject *Src = syntaxSource(Stx);
      Name = TargetIn.asPair()->Car;
      Value Params = makeSyntax(Ctx.TheHeap, TargetIn.asPair()->Cdr,
                                ScopeSet(), Src);
      std::vector<Value> LambdaParts = {makeId(SymLambda, Src), Params};
      for (size_t I = 2; I < Elems.size(); ++I)
        LambdaParts.push_back(Elems[I]);
      TransformerExpr = listStx(LambdaParts, Src);
    } else {
      fail("bad define-syntax target", Stx);
    }

    Syntax *NameId = asIdentifier(Name);
    if (!NameId)
      fail("define-syntax name must be an identifier", Stx);

    // Evaluate the transformer now (phase 1 shares the global env).
    bindMacro(NameId, TransformerExpr, Stx);
    return {};
  }
};

Expander::Expander(Context &Ctx) : P(std::make_unique<Impl>(Ctx)) {}
Expander::~Expander() = default;

std::vector<Value> Expander::expandTopLevel(Value Stx) {
  // Expansion-time allocation (hygiene re-wrapping, synthesized forms)
  // is attributed to the expander site; transformer bodies that allocate
  // through primitives or templates override it with their own sites.
  AllocSiteScope Site(P->Ctx.TheHeap, AllocSite::Expander);
  return P->expandTopLevel(Stx);
}

Value Expander::expandExpression(Value Stx) {
  AllocSiteScope Site(P->Ctx.TheHeap, AllocSite::Expander);
  return P->expand(Stx);
}
