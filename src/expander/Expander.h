//===- expander/Expander.h - Hygienic macro expander ----------*- C++ -*-===//
///
/// \file
/// The macro expander: turns read syntax into core-form syntax, invoking
/// user transformers (define-syntax + syntax-case) along the way. Hygiene
/// is sets-of-scopes: binding forms add a fresh scope to binder and body;
/// each macro invocation flips a fresh scope across transformer input and
/// output, so introduced identifiers are distinguishable from use-site
/// ones. Every lexical variable in the output is renamed to a unique
/// uninterned symbol, which is what makes the core grammar unambiguous
/// for the compiler.
///
/// Transformers run in the same global environment as the program (the
/// phase tower is collapsed, as in a Chez-style REPL), which is what lets
/// meta-programs call the PGMP API directly — the point of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_EXPANDER_EXPANDER_H
#define PGMP_EXPANDER_EXPANDER_H

#include "interp/Context.h"
#include "syntax/Value.h"

#include <vector>

namespace pgmp {

class Expander {
public:
  explicit Expander(Context &Ctx);
  ~Expander();
  Expander(const Expander &) = delete;
  Expander &operator=(const Expander &) = delete;

  /// Expands one top-level form. define-syntax evaluates its transformer
  /// immediately and yields no core forms; top-level begin splices.
  std::vector<Value> expandTopLevel(Value Stx);

  /// Expands \p Stx in expression context (used by tests and by eval).
  Value expandExpression(Value Stx);

private:
  class Impl;
  std::unique_ptr<Impl> P;
};

} // namespace pgmp

#endif // PGMP_EXPANDER_EXPANDER_H
