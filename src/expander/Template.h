//===- expander/Template.h - syntax templates -----------------*- C++ -*-===//
///
/// \file
/// Compiled #'(...) and #`(...) templates. A template is instantiated at
/// transformer run time against the current environment: pattern
/// variables (compiled to frame coordinates, exactly like locals) are
/// substituted, `...` repeats sub-templates over matched sequences, and
/// quasisyntax escapes (#, and #,@) evaluate embedded core expressions.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_EXPANDER_TEMPLATE_H
#define PGMP_EXPANDER_TEMPLATE_H

#include "syntax/Syntax.h"
#include "syntax/Value.h"

#include <memory>
#include <vector>

namespace pgmp {

class Context;
class EnvObj;
class Expr;

enum class TemplateKind : uint8_t {
  Const,    ///< literal syntax subtree, emitted as-is (shared)
  VarRef,   ///< pattern variable at (Depth, Index)
  List,     ///< rebuilt list with possible ellipsis / splicing elements
  Vector,   ///< rebuilt vector
  Unsyntax, ///< #,expr — evaluate and insert
};

struct Template {
  virtual ~Template() = default;
  TemplateKind K;

protected:
  explicit Template(TemplateKind K) : K(K) {}
};

struct ConstTemplate : Template {
  explicit ConstTemplate(Value Stx) : Template(TemplateKind::Const), Stx(Stx) {}
  Value Stx;
};

struct VarRefTemplate : Template {
  VarRefTemplate(uint32_t Depth, uint32_t Index, Symbol *Name,
                 int EllipsisDepth)
      : Template(TemplateKind::VarRef), Depth(Depth), Index(Index), Name(Name),
        EllipsisDepth(EllipsisDepth) {}
  uint32_t Depth;
  uint32_t Index;
  Symbol *Name;
  int EllipsisDepth; ///< declared depth at the pattern binding
};

/// One element of a list/vector template.
struct TemplateElem {
  Template *T = nullptr;
  bool Ellipsis = false; ///< followed by ... in the source template
  bool Splice = false;   ///< #,@ — result list is spliced in place
  /// VarRef nodes under T that drive the ellipsis iteration.
  std::vector<const VarRefTemplate *> Drivers;
};

struct ListTemplate : Template {
  ListTemplate() : Template(TemplateKind::List) {}
  std::vector<TemplateElem> Elems;
  Template *Tail = nullptr; ///< null for proper lists
  /// The original syntax node, so the rebuilt list keeps its scopes and
  /// source object.
  Value OriginalStx;
};

struct VectorTemplate : Template {
  VectorTemplate() : Template(TemplateKind::Vector) {}
  std::vector<TemplateElem> Elems;
  Value OriginalStx;
};

struct UnsyntaxTemplate : Template {
  explicit UnsyntaxTemplate(Expr *E)
      : Template(TemplateKind::Unsyntax), E(E) {}
  Expr *E;
};

/// Instantiates \p Tpl in environment \p Env (the clause/lambda frame
/// chain active at the enclosing TemplateExpr). Raises SchemeError on
/// ragged ellipsis lengths or misuse.
Value instantiateTemplate(Context &Ctx, const Template *Tpl, EnvObj *Env);

} // namespace pgmp

#endif // PGMP_EXPANDER_TEMPLATE_H
