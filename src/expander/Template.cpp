//===- expander/Template.cpp ----------------------------------------------===//

#include "expander/Template.h"

#include "interp/Context.h"
#include "interp/Eval.h"
#include "support/Diagnostics.h"
#include "syntax/Writer.h"

#include <unordered_map>

using namespace pgmp;

namespace {

/// Per-instantiation state: the runtime env plus ellipsis overrides
/// mapping VarRef nodes to their current slice.
struct InstantiateState {
  Context &Ctx;
  EnvObj *Env;
  std::unordered_map<const Template *, Value> Overrides;
};

Value lookupVar(InstantiateState &St, const VarRefTemplate *V) {
  auto It = St.Overrides.find(V);
  if (It != St.Overrides.end())
    return It->second;
  EnvObj *E = St.Env;
  for (uint32_t D = 0; D < V->Depth; ++D) {
    assert(E && "template var depth exceeds env chain");
    E = E->Parent;
  }
  assert(E && V->Index < E->NumSlots && "bad template var coordinates");
  return E->slots()[V->Index];
}

Value instantiate(InstantiateState &St, const Template *Tpl);

/// Expands one possibly-ellipsis element into \p Out.
void instantiateElem(InstantiateState &St, const TemplateElem &Elem,
                     std::vector<Value> &Out) {
  if (!Elem.Ellipsis) {
    Value V = instantiate(St, Elem.T);
    if (!Elem.Splice) {
      Out.push_back(V);
      return;
    }
    // #,@ — splice a list result.
    Value Cur = syntaxE(V);
    while (Cur.isPair()) {
      Out.push_back(Cur.asPair()->Car);
      Cur = syntaxE(Cur.asPair()->Cdr);
    }
    if (!Cur.isNil())
      raiseError("unsyntax-splicing result is not a proper list");
    return;
  }

  // Ellipsis: iterate the drivers in lockstep.
  assert(!Elem.Drivers.empty() && "ellipsis template without drivers");
  std::vector<std::vector<Value>> Slices;
  Slices.reserve(Elem.Drivers.size());
  size_t Len = SIZE_MAX;
  for (const VarRefTemplate *D : Elem.Drivers) {
    Value Seq = lookupVar(St, D);
    std::vector<Value> Items;
    Value Cur = Seq;
    while (Cur.isPair()) {
      Items.push_back(Cur.asPair()->Car);
      Cur = Cur.asPair()->Cdr;
    }
    if (!Cur.isNil())
      raiseError("pattern variable '" + D->Name->Name +
                 "' used under too many ellipses");
    if (Len == SIZE_MAX)
      Len = Items.size();
    else if (Len != Items.size())
      raiseError("ragged ellipsis match lengths in template");
    Slices.push_back(std::move(Items));
  }
  for (size_t I = 0; I < Len; ++I) {
    for (size_t D = 0; D < Elem.Drivers.size(); ++D)
      St.Overrides[Elem.Drivers[D]] = Slices[D][I];
    Out.push_back(instantiate(St, Elem.T));
  }
  for (const VarRefTemplate *D : Elem.Drivers)
    St.Overrides.erase(D);
}

Value instantiate(InstantiateState &St, const Template *Tpl) {
  switch (Tpl->K) {
  case TemplateKind::Const:
    return static_cast<const ConstTemplate *>(Tpl)->Stx;
  case TemplateKind::VarRef:
    return lookupVar(St, static_cast<const VarRefTemplate *>(Tpl));
  case TemplateKind::Unsyntax:
    return evalExpr(St.Ctx, static_cast<const UnsyntaxTemplate *>(Tpl)->E,
                    St.Env);
  case TemplateKind::List: {
    const auto *LT = static_cast<const ListTemplate *>(Tpl);
    std::vector<Value> Elems;
    for (const TemplateElem &E : LT->Elems)
      instantiateElem(St, E, Elems);
    Value Tail = LT->Tail ? instantiate(St, LT->Tail) : Value::nil();
    Value Spine = Tail;
    for (size_t I = Elems.size(); I > 0; --I)
      Spine = St.Ctx.TheHeap.cons(Elems[I - 1], Spine);
    // Preserve the template's scopes/source on the rebuilt node.
    if (LT->OriginalStx.isSyntax()) {
      Syntax *Orig = LT->OriginalStx.asSyntax();
      return makeSyntax(St.Ctx.TheHeap, Spine, Orig->Scopes, Orig->Src);
    }
    return Spine;
  }
  case TemplateKind::Vector: {
    const auto *VT = static_cast<const VectorTemplate *>(Tpl);
    std::vector<Value> Elems;
    for (const TemplateElem &E : VT->Elems)
      instantiateElem(St, E, Elems);
    Value Vec = St.Ctx.TheHeap.vector(std::move(Elems));
    if (VT->OriginalStx.isSyntax()) {
      Syntax *Orig = VT->OriginalStx.asSyntax();
      return makeSyntax(St.Ctx.TheHeap, Vec, Orig->Scopes, Orig->Src);
    }
    return Vec;
  }
  }
  raiseError("corrupt template node");
}

} // namespace

Value pgmp::instantiateTemplate(Context &Ctx, const Template *Tpl,
                                EnvObj *Env) {
  AllocSiteScope Site(Ctx.TheHeap, AllocSite::TemplateInstantiate);
  InstantiateState St{Ctx, Env, {}};
  return instantiate(St, Tpl);
}
