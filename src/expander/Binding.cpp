//===- expander/Binding.cpp -----------------------------------------------===//
// Intentionally small: ExpBinding is a plain aggregate; this file anchors
// the translation unit for the header.

#include "expander/Binding.h"
