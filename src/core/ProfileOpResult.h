//===- core/ProfileOpResult.h - Structured profile-op results -*- C++ -*-===//
///
/// \file
/// The structured result type of the profile persistence API
/// (Engine::storeProfile / loadProfile and their pgmpapi equivalents),
/// replacing the old `bool f(Path, std::string &ErrorOut)` pattern. One
/// value carries everything a caller previously had to reassemble from
/// the bool, the out-parameter, and the diagnostic sink:
///
///   - Status: Ok, Degraded (the operation was tolerated under the
///     degrade-with-warning policy and the session continues without the
///     data), or Failed.
///   - Error: the rendered failure (Failed) or degradation reason
///     (Degraded); empty on Ok.
///   - Warnings: non-fatal findings (e.g. "legacy v1 format"). They are
///     also reported through the Context's DiagnosticSink with the file
///     path attached, so callers need not copy them anywhere.
///   - DatasetsMerged / PointsLoaded: what actually changed in the
///     profile database.
///
/// Migration from the bool/ErrorOut forms:
///
///   std::string Err;                       auto R = E.loadProfile(P);
///   if (!E.loadProfile(P, &Err))     =>    if (!R)
///     use(Err);                              use(R.Error);
///
/// Boolean tests keep their old meaning: operator bool is true for both
/// Ok and Degraded, exactly as the old API returned true when a load
/// degraded gracefully.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_CORE_PROFILEOPRESULT_H
#define PGMP_CORE_PROFILEOPRESULT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pgmp {

/// Outcome of one profile store/load (or trace export) operation.
enum class ProfileOpStatus : uint8_t {
  Ok,       ///< operation fully succeeded
  Degraded, ///< input ignored under the degrade-with-warning policy
  Failed,   ///< operation failed; Error describes why
};

/// Structured result of one profile-subsystem operation.
struct ProfileOpResult {
  ProfileOpStatus Status = ProfileOpStatus::Ok;
  /// Rendered failure (Failed) or degradation reason (Degraded).
  std::string Error;
  /// Non-fatal findings; already reported through Diagnostics.
  std::vector<std::string> Warnings;
  /// Data sets merged into (store: folded + persisted from) the database.
  uint64_t DatasetsMerged = 0;
  /// Point records loaded (load) or serialized (store).
  size_t PointsLoaded = 0;

  bool ok() const { return Status != ProfileOpStatus::Failed; }
  bool degraded() const { return Status == ProfileOpStatus::Degraded; }
  explicit operator bool() const { return ok(); }

  static ProfileOpResult failure(std::string Err) {
    ProfileOpResult R;
    R.Status = ProfileOpStatus::Failed;
    R.Error = std::move(Err);
    return R;
  }
};

} // namespace pgmp

#endif // PGMP_CORE_PROFILEOPRESULT_H
