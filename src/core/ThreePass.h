//===- core/ThreePass.h - Section 4.3: source + block PGO -----*- C++ -*-===//
///
/// \file
/// The paper's three-pass compilation protocol, which keeps source-level
/// PGMP and block-level PGO consistent:
///
///   Pass 1  compile instrumenting *source expressions*; run the
///           representative workload; store the source profile.
///   Pass 2  recompile using the source profile (meta-programs optimize)
///           while instrumenting *basic blocks*; run; store the block
///           profile. The block profile stays valid as long as
///           optimization keeps using this same source profile, because
///           the meta-programs then regenerate identical code.
///   Pass 3  recompile using both profiles: meta-programs use the source
///           weights, the block layout uses the block counts.
///
/// Loading the pass-2 block profile in pass 3 *validates* that the block
/// structure is unchanged; feeding a different source profile breaks the
/// validation, which is exactly the invalidation hazard Section 4.3
/// describes.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_CORE_THREEPASS_H
#define PGMP_CORE_THREEPASS_H

#include "core/Engine.h"
#include "vm/Vm.h"

#include <memory>
#include <string>
#include <vector>

namespace pgmp {

/// Per-stage observability: one entry per pass that ran, carrying the
/// engine's stats so instrumentation overhead is a measured number for
/// each stage of the protocol (pass 1 pays source counters, pass 2 block
/// counters, pass 3 neither).
struct ThreePassStageStats {
  std::string Pass;     ///< "pass1" | "pass2" | "pass3"
  std::string Rendered; ///< StatsRegistry::render() at end of the pass
  uint64_t CounterIncrements = 0;
  uint64_t InstrumentedNodes = 0;
  uint64_t CompiledNodes = 0;
  uint64_t EvalNanos = 0;
};

/// What to build and how to exercise it.
struct ThreePassConfig {
  /// scheme/ libraries to load first (meta-program definitions).
  std::vector<std::string> Libraries;
  /// The program being optimized.
  std::string ProgramSource;
  std::string ProgramName = "program.scm";
  /// Representative workload (evaluated after the program).
  std::string WorkloadSource;
  /// Where the two profiles live between passes.
  std::string SourceProfilePath;
  std::string BlockProfilePath;
  /// Integrity policy: by default a corrupt/stale source profile degrades
  /// to an unoptimized build (with a DiagKind::Warning) and an invalid
  /// block profile just skips layout; in strict mode both abort the pass.
  bool StrictProfile = false;
  /// Tiered execution policy for every pass. Safe in pass 1 because
  /// tiered code (fused or not) bumps the same source counters as the
  /// interpreter — the stored source profile is byte-identical either way.
  TierPolicy Tier;
  /// When set, each pass enables engine stats and appends its stage
  /// report here (observability of the protocol itself).
  std::vector<ThreePassStageStats> *StageStatsOut = nullptr;
};

/// The final, fully optimized build produced by pass 3.
struct OptimizedProgram {
  std::unique_ptr<Engine> E;
  std::unique_ptr<VmRunner> Runner;
  VmModule *Program = nullptr;
  /// True when the pass-2 block profile still matched pass 3's code.
  bool BlockProfileValid = false;
};

/// Pass 1: source-instrumented run; writes the source profile.
bool runPassOne(const ThreePassConfig &Config, std::string &ErrorOut);

/// Pass 2: source-optimized, block-instrumented run; writes the block
/// profile. \p BlocksOut (optional) receives the block structure
/// signature for tests.
bool runPassTwo(const ThreePassConfig &Config, std::string &ErrorOut,
                std::string *BlocksOut = nullptr);

/// Pass 3: both profiles applied; returns a live optimized program.
bool runPassThree(const ThreePassConfig &Config, OptimizedProgram &Out,
                  std::string &ErrorOut);

/// Convenience: all three passes in sequence.
bool runThreePasses(const ThreePassConfig &Config, OptimizedProgram &Out,
                    std::string &ErrorOut);

} // namespace pgmp

#endif // PGMP_CORE_THREEPASS_H
