//===- core/EnginePool.h - Parallel workload driver -----------*- C++ -*-===//
///
/// \file
/// Runs one instrumented Scheme workload across N worker engines, one OS
/// thread each, and merges their counters into a single profile that is
/// *bit-identical* to running the same data sets sequentially.
///
/// ## Model
///
/// An Engine (heap, symbol table, expander state) is one thread's
/// session; sharing one across threads is not safe and never will be
/// cheap. The pool therefore scales the paper's workflow the way a
/// production profiler farm does: N isolated workers each run the
/// workload (one data set per worker), and the coordinator folds the
/// resulting counter pages into one ProfileDatabase.
///
/// ## Determinism
///
/// Figure 3's merge (weight = count / max-count per data set; data sets
/// combine by summed weights / dataset count) uses floating-point
/// addition, which is not associative — so the fold order is the
/// contract. The pool always folds worker data sets in worker-index
/// order, on the coordinating thread, after joining every worker. The
/// result is bit-identical to a sequential engine producing the same data
/// sets in the same order; `pgmpi run --jobs 8` and a loop of eight
/// sequential runs write byte-identical profile files.
///
/// Worker counters reference worker-local interned profile points; the
/// merge re-interns each point into the coordinator's table, so the
/// merged database speaks the coordinator's point identities.
///
/// ## Fault isolation
///
/// A worker failure (Scheme error, guard trip, or foreign exception) is
/// contained to that worker: the pool replaces the dead engine with a
/// fresh one — replaying pre-registered files and any loaded profile —
/// and retries the task up to FaultPolicy::MaxRetries times with
/// exponential backoff. A task that still fails is reported per-task in
/// PoolResult::Outcomes; its partial counters are discarded (default) or
/// kept (MergePartialCounters) before the merge, so the merged profile of
/// the surviving tasks is byte-identical to a sequential run of the same
/// surviving set.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_CORE_ENGINEPOOL_H
#define PGMP_CORE_ENGINEPOOL_H

#include "core/Engine.h"
#include "core/EngineOptions.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pgmp {

class EnginePool {
public:
  /// How the pool responds to a worker failing its task.
  struct FaultPolicy {
    /// Re-runs of a failed task on a fresh worker before giving up
    /// (0 = fail fast, the pre-isolation behavior).
    unsigned MaxRetries = 2;
    /// Backoff before retry attempt k sleeps BackoffBaseMs << min(k, 6)
    /// milliseconds (0 = no backoff; useful in tests).
    unsigned BackoffBaseMs = 1;
    /// Keep a finally-failed task's partial counters in the merge instead
    /// of discarding them. Off by default: a half-run workload would skew
    /// weights, and discarding keeps the merged profile byte-identical to
    /// a sequential run of the surviving tasks.
    bool MergePartialCounters = false;
  };

  /// Per-task outcome across all attempts of one pool run.
  struct TaskOutcome {
    bool Ok = false;
    unsigned Attempts = 0;            ///< total runs, including retries
    GuardKind Tripped = GuardKind::None; ///< set when a guard aborted it
    std::string Error;                ///< final error (when !Ok)
  };

  /// Builds \p Jobs workers (at least one), each configured with \p Opts.
  /// Workers are constructed sequentially on the calling thread; worker 0
  /// doubles as the coordinator whose point table, source manager, and
  /// profile database receive the merged results.
  explicit EnginePool(size_t Jobs, const EngineOptions &Opts = {});
  EnginePool(size_t Jobs, const EngineOptions &Opts,
             const FaultPolicy &Policy);
  ~EnginePool();
  EnginePool(const EnginePool &) = delete;
  EnginePool &operator=(const EnginePool &) = delete;

  size_t size() const { return Workers.size(); }
  Engine &engine(size_t I) { return *Workers[I]; }

  /// One worker's task: evaluate whatever constitutes the workload on
  /// \p E (worker index \p I), returning the last EvalResult.
  using WorkerTask = std::function<EvalResult(Engine &E, size_t I)>;

  struct PoolResult {
    bool Ok = true;                    ///< every task eventually succeeded
    std::vector<EvalResult> PerWorker; ///< final attempt's result, in order
    std::vector<TaskOutcome> Outcomes; ///< per-task verdicts, in order
    std::string Error;  ///< first failure, labeled with its worker index
    unsigned TotalRetries = 0; ///< fresh-worker re-runs across all tasks
    size_t NumFailed = 0;      ///< tasks still failed after all retries
    explicit operator bool() const { return Ok; }
  };

  /// Runs \p Task on every worker concurrently (one thread per worker)
  /// and joins them all before returning — the quiescent point the
  /// counter-aggregation contract requires. Failed tasks are retried on
  /// fresh workers per the FaultPolicy; see "Fault isolation" above.
  PoolResult run(const WorkerTask &Task);

  /// Convenience: every worker evaluates \p Files in order (the same
  /// workload per worker — N workers produce N data sets).
  PoolResult runFiles(const std::vector<std::string> &Files);

  /// Loads a stored profile into every worker (sequentially — profile
  /// loads are I/O-bound and order must be deterministic), so parallel
  /// optimizing builds all see the same weights. Returns the first
  /// non-ok result, or the last result when all succeed.
  ProfileOpResult loadProfileAll(const std::string &Path);

  /// Folds every worker's live counters into \p Db — one data set per
  /// worker holding any counts, in worker-index order — re-interning the
  /// points into \p Sources. Does not reset the counters; call only at a
  /// quiescent point (run() returning is one).
  void mergeCountersInto(ProfileDatabase &Db, SourceObjectTable &Sources);

  /// Index-wise sum of every worker's allocation-site profile, folded in
  /// worker order. Sites are a closed enum, so the merge is deterministic
  /// by construction — the same guarantee the counter merge gives — and a
  /// quiescent point (run() returned) is required, like
  /// mergeCountersInto.
  std::array<AllocSiteStats, NumAllocSites> mergedSiteStats() const;

  /// The pool equivalent of Engine::storeProfile: merges all workers'
  /// counters on top of the coordinator's database, stores atomically,
  /// and on success commits the merge and resets every worker's counters
  /// (on failure counters are preserved, like storeProfile). DatasetsMerged
  /// reports how many workers contributed a non-empty data set.
  ProfileOpResult storeMergedProfile(const std::string &Path);

  /// Registers \p Path's contents in every worker's source manager, so a
  /// subsequent loadProfileAll checks staleness against the code about to
  /// be compiled (mirrors pgmpi's pre-registration).
  void preRegisterFile(const std::string &Path);

  /// The shared continuous-profiling aggregator every worker publishes
  /// to, or null when continuous profiling is off. Hosted by the
  /// coordinator (worker 0's thread) and owned by the pool itself, so
  /// fault-isolation replacement of any worker never dangles it.
  ProfileBus *bus() { return PoolBus ? PoolBus.get() : Opts.Bus; }

private:
  /// Builds a replacement engine with the pool's options, replaying
  /// pre-registered files and any profile loaded through loadProfileAll,
  /// so a retried task sees the same session state the original did.
  std::unique_ptr<Engine> freshWorker();

  std::vector<std::unique_ptr<Engine>> Workers;
  EngineOptions Opts;
  FaultPolicy Policy;
  std::unique_ptr<ProfileBus> PoolBus; ///< pool-hosted aggregator, if any
  std::vector<std::string> PreRegistered; ///< replayed into fresh workers
  std::string LoadedProfilePath;          ///< ditto, when non-empty
};

} // namespace pgmp

#endif // PGMP_CORE_ENGINEPOOL_H
