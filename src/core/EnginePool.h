//===- core/EnginePool.h - Parallel workload driver -----------*- C++ -*-===//
///
/// \file
/// Runs one instrumented Scheme workload across N worker engines, one OS
/// thread each, and merges their counters into a single profile that is
/// *bit-identical* to running the same data sets sequentially.
///
/// ## Model
///
/// An Engine (heap, symbol table, expander state) is one thread's
/// session; sharing one across threads is not safe and never will be
/// cheap. The pool therefore scales the paper's workflow the way a
/// production profiler farm does: N isolated workers each run the
/// workload (one data set per worker), and the coordinator folds the
/// resulting counter pages into one ProfileDatabase.
///
/// ## Determinism
///
/// Figure 3's merge (weight = count / max-count per data set; data sets
/// combine by summed weights / dataset count) uses floating-point
/// addition, which is not associative — so the fold order is the
/// contract. The pool always folds worker data sets in worker-index
/// order, on the coordinating thread, after joining every worker. The
/// result is bit-identical to a sequential engine producing the same data
/// sets in the same order; `pgmpi run --jobs 8` and a loop of eight
/// sequential runs write byte-identical profile files.
///
/// Worker counters reference worker-local interned profile points; the
/// merge re-interns each point into the coordinator's table, so the
/// merged database speaks the coordinator's point identities.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_CORE_ENGINEPOOL_H
#define PGMP_CORE_ENGINEPOOL_H

#include "core/Engine.h"
#include "core/EngineOptions.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pgmp {

class EnginePool {
public:
  /// Builds \p Jobs workers (at least one), each configured with \p Opts.
  /// Workers are constructed sequentially on the calling thread; worker 0
  /// doubles as the coordinator whose point table, source manager, and
  /// profile database receive the merged results.
  explicit EnginePool(size_t Jobs, const EngineOptions &Opts = {});
  ~EnginePool();
  EnginePool(const EnginePool &) = delete;
  EnginePool &operator=(const EnginePool &) = delete;

  size_t size() const { return Workers.size(); }
  Engine &engine(size_t I) { return *Workers[I]; }

  /// One worker's task: evaluate whatever constitutes the workload on
  /// \p E (worker index \p I), returning the last EvalResult.
  using WorkerTask = std::function<EvalResult(Engine &E, size_t I)>;

  struct PoolResult {
    bool Ok = true;
    std::vector<EvalResult> PerWorker; ///< one entry per worker, in order
    std::string Error; ///< first failure, labeled with its worker index
    explicit operator bool() const { return Ok; }
  };

  /// Runs \p Task on every worker concurrently (one thread per worker)
  /// and joins them all before returning — the quiescent point the
  /// counter-aggregation contract requires.
  PoolResult run(const WorkerTask &Task);

  /// Convenience: every worker evaluates \p Files in order (the same
  /// workload per worker — N workers produce N data sets).
  PoolResult runFiles(const std::vector<std::string> &Files);

  /// Loads a stored profile into every worker (sequentially — profile
  /// loads are I/O-bound and order must be deterministic), so parallel
  /// optimizing builds all see the same weights. Returns the first
  /// non-ok result, or the last result when all succeed.
  ProfileOpResult loadProfileAll(const std::string &Path);

  /// Folds every worker's live counters into \p Db — one data set per
  /// worker holding any counts, in worker-index order — re-interning the
  /// points into \p Sources. Does not reset the counters; call only at a
  /// quiescent point (run() returning is one).
  void mergeCountersInto(ProfileDatabase &Db, SourceObjectTable &Sources);

  /// The pool equivalent of Engine::storeProfile: merges all workers'
  /// counters on top of the coordinator's database, stores atomically,
  /// and on success commits the merge and resets every worker's counters
  /// (on failure counters are preserved, like storeProfile). DatasetsMerged
  /// reports how many workers contributed a non-empty data set.
  ProfileOpResult storeMergedProfile(const std::string &Path);

  /// Registers \p Path's contents in every worker's source manager, so a
  /// subsequent loadProfileAll checks staleness against the code about to
  /// be compiled (mirrors pgmpi's pre-registration).
  void preRegisterFile(const std::string &Path);

private:
  std::vector<std::unique_ptr<Engine>> Workers;
};

} // namespace pgmp

#endif // PGMP_CORE_ENGINEPOOL_H
