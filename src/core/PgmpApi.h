//===- core/PgmpApi.h - The paper's PGMP API ------------------*- C++ -*-===//
///
/// \file
/// The profile-guided meta-programming API of the paper (Figure 4),
/// exposed to meta-programs as Scheme primitives and to embedders as C++
/// functions:
///
///   (make-profile-point [base])      -> profile point
///   (annotate-expr e pp)             -> syntax
///   (profile-query e)                -> weight in [0,1] (0 when unknown)
///   (store-profile filename)         -> void
///   (load-profile filename)          -> void
///
/// plus introspection helpers used by the case studies and tests:
///
///   (profile-data-available?)        -> boolean
///   (profile-query-count e)          -> raw total count
///   (current-profile-datasets)       -> fixnum
///   (clear-profile!)                 -> void
///
/// A profile point is represented as a syntax object whose source object
/// is the point — uniformly with "an object with an associated profile
/// point" (paper Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_CORE_PGMPAPI_H
#define PGMP_CORE_PGMPAPI_H

#include "interp/Context.h"

namespace pgmp {

/// Installs the PGMP primitives into \p Ctx.
void installPgmpApi(Context &Ctx);

/// C++ equivalents of the Scheme-level API.
namespace pgmpapi {

/// make-profile-point: deterministic fresh point derived from \p BaseFile.
Value makeProfilePoint(Context &Ctx, const std::string &BaseFile);

/// annotate-expr: associates \p Expr with \p Point (replacing any prior
/// point). Honors Context::AnnotMode: Inline re-sources the expression,
/// Wrap wraps it in a generated nullary call (errortrace-style).
Value annotateExpr(Context &Ctx, Value Expr, const SourceObject *Point);

/// profile-query: weight of the expression's point; 0 when unknown, and
/// also 0 when no data sets are loaded (see profile-data-available?).
double profileQuery(Context &Ctx, const Value &ExprOrPoint);

/// store-profile: folds the live counters into the database as one data
/// set, resets the counters, then serializes the database.
bool storeProfile(Context &Ctx, const std::string &Path,
                  std::string &ErrorOut);

/// load-profile: merges a stored database into the current one.
bool loadProfile(Context &Ctx, const std::string &Path,
                 std::string &ErrorOut);

} // namespace pgmpapi

} // namespace pgmp

#endif // PGMP_CORE_PGMPAPI_H
