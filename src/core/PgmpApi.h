//===- core/PgmpApi.h - The paper's PGMP API ------------------*- C++ -*-===//
///
/// \file
/// The profile-guided meta-programming API of the paper (Figure 4),
/// exposed to meta-programs as Scheme primitives and to embedders as C++
/// functions:
///
///   (make-profile-point [base])      -> profile point
///   (annotate-expr e pp)             -> syntax
///   (profile-query e)                -> weight in [0,1] (0 when unknown)
///   (store-profile filename)         -> void
///   (load-profile filename)          -> void
///
/// plus introspection helpers used by the case studies and tests:
///
///   (profile-query* e)               -> weight, or #f when no profile
///                                       data is loaded / e has no point
///   (profile-data-available?)        -> boolean
///   (profile-query-count e)          -> raw total count
///   (current-profile-datasets)       -> fixnum
///   (clear-profile!)                 -> void
///   (pgmp-stats)                     -> alist of pipeline self-metrics
///   (set-pgmp-stats! b)              -> void (toggle stats collection)
///
/// `profile-query` collapses two distinct situations to 0.0 — "no profile
/// data is loaded at all" and "data is loaded but this point was never
/// hit" — mirroring the paper's API, where meta-programs treat unknown as
/// cold. When the distinction matters (e.g. to fall back to heuristics
/// when no training data exists), use `profile-query*`, which returns #f
/// in the no-data / no-point cases, or check (profile-data-available?)
/// first. The C++ equivalents are profileQuery (collapsing) and
/// profileQueryOpt / Engine::weightOf (distinguishing, via optional).
///
/// A profile point is represented as a syntax object whose source object
/// is the point — uniformly with "an object with an associated profile
/// point" (paper Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_CORE_PGMPAPI_H
#define PGMP_CORE_PGMPAPI_H

#include "core/ProfileOpResult.h"
#include "interp/Context.h"

#include <optional>

namespace pgmp {

/// Installs the PGMP primitives into \p Ctx.
void installPgmpApi(Context &Ctx);

/// C++ equivalents of the Scheme-level API.
namespace pgmpapi {

/// make-profile-point: deterministic fresh point derived from \p BaseFile.
Value makeProfilePoint(Context &Ctx, const std::string &BaseFile);

/// annotate-expr: associates \p Expr with \p Point (replacing any prior
/// point). Honors Context::AnnotMode: Inline re-sources the expression,
/// Wrap wraps it in a generated nullary call (errortrace-style).
Value annotateExpr(Context &Ctx, Value Expr, const SourceObject *Point);

/// profile-query: weight of the expression's point; 0 when unknown, and
/// also 0 when no data sets are loaded (see profile-data-available?).
double profileQuery(Context &Ctx, const Value &ExprOrPoint);

/// profile-query*: like profileQuery, but keeps the distinction the
/// collapsed form loses — nullopt when no profile data is loaded or the
/// value carries no profile point; a weight (possibly 0.0 for a cold
/// point) otherwise.
std::optional<double> profileQueryOpt(Context &Ctx, const Value &ExprOrPoint);

/// store-profile: folds the live counters into the database as one data
/// set, resets the counters, then serializes the database. On failure
/// the live counters are preserved.
ProfileOpResult storeProfile(Context &Ctx, const std::string &Path);

/// load-profile: merges a stored database into the current one. Under the
/// default degradation policy a corrupt/stale/malformed file yields
/// Status Degraded (nothing merged, warning through Diagnostics); in
/// strict mode, and for missing/unreadable files, Status Failed.
ProfileOpResult loadProfile(Context &Ctx, const std::string &Path);

/// Deprecated bool/ErrorOut shims; use the ProfileOpResult overloads.
[[deprecated("use storeProfile(Ctx, Path) returning ProfileOpResult")]]
bool storeProfile(Context &Ctx, const std::string &Path,
                  std::string &ErrorOut);
[[deprecated("use loadProfile(Ctx, Path) returning ProfileOpResult")]]
bool loadProfile(Context &Ctx, const std::string &Path,
                 std::string &ErrorOut);

} // namespace pgmpapi

} // namespace pgmp

#endif // PGMP_CORE_PGMPAPI_H
