//===- core/PgmpApi.h - The paper's PGMP API ------------------*- C++ -*-===//
///
/// \file
/// The profile-guided meta-programming API of the paper (Figure 4),
/// exposed to meta-programs as Scheme primitives and to embedders as C++
/// functions:
///
///   (make-profile-point [base])      -> profile point
///   (annotate-expr e pp)             -> syntax
///   (profile-query e)                -> weight in [0,1] (0 when unknown)
///   (store-profile filename)         -> void
///   (load-profile filename)          -> void
///
/// plus introspection helpers used by the case studies and tests:
///
///   (profile-query* e)               -> weight, or #f when no profile
///                                       data is loaded / e has no point
///   (profile-data-available?)        -> boolean
///   (profile-query-count e)          -> raw total count
///   (current-profile-datasets)       -> fixnum
///   (clear-profile!)                 -> void
///   (pgmp-stats)                     -> alist of pipeline self-metrics
///   (set-pgmp-stats! b)              -> void (toggle stats collection)
///
/// `profile-query` collapses two distinct situations to 0.0 — "no profile
/// data is loaded at all" and "data is loaded but this point was never
/// hit" — mirroring the paper's API, where meta-programs treat unknown as
/// cold. When the distinction matters (e.g. to fall back to heuristics
/// when no training data exists), use `profile-query*`, which returns #f
/// in the no-data / no-point cases, or check (profile-data-available?)
/// first. The C++ side reads through one surface: ProfileSnapshot
/// (Engine::snapshot() / pgmpapi::snapshot), whose weight() collapses and
/// whose weightOpt() distinguishes. The store/load functions below are
/// conveniences over core/ProfileSession.h, the unified profile-lifecycle
/// API (open → observe epochs → commit).
///
/// A profile point is represented as a syntax object whose source object
/// is the point — uniformly with "an object with an associated profile
/// point" (paper Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_CORE_PGMPAPI_H
#define PGMP_CORE_PGMPAPI_H

#include "core/ProfileOpResult.h"
#include "interp/Context.h"

namespace pgmp {

/// Installs the PGMP primitives into \p Ctx.
void installPgmpApi(Context &Ctx);

/// C++ equivalents of the Scheme-level API.
namespace pgmpapi {

/// make-profile-point: deterministic fresh point derived from \p BaseFile.
Value makeProfilePoint(Context &Ctx, const std::string &BaseFile);

/// annotate-expr: associates \p Expr with \p Point (replacing any prior
/// point). Honors Context::AnnotMode: Inline re-sources the expression,
/// Wrap wraps it in a generated nullary call (errortrace-style).
Value annotateExpr(Context &Ctx, Value Expr, const SourceObject *Point);

/// The unified read path: an immutable snapshot of \p Ctx's profile data
/// (counts the query against the profiler self-metrics). Query with
/// snapshot.weight(point(Ctx, v)) / .weightOpt(...) / .count(...).
ProfileSnapshot snapshot(Context &Ctx);

/// The profile point carried by \p ExprOrPoint (its syntax source), or
/// null when the value carries none — the key for ProfileSnapshot
/// queries.
const SourceObject *point(const Value &ExprOrPoint);

/// store-profile: folds the live counters into the database as one data
/// set, resets the counters, then serializes the database. On failure
/// the live counters are preserved. Equivalent to committing a
/// ProfileSession over a FileProfileTransport.
ProfileOpResult storeProfile(Context &Ctx, const std::string &Path);

/// load-profile: merges a stored database into the current one. Under the
/// default degradation policy a corrupt/stale/malformed file yields
/// Status Degraded (nothing merged, warning through Diagnostics); in
/// strict mode, and for missing/unreadable files, Status Failed.
/// Equivalent to restoring a ProfileSession over a FileProfileTransport.
ProfileOpResult loadProfile(Context &Ctx, const std::string &Path);

} // namespace pgmpapi

} // namespace pgmp

#endif // PGMP_CORE_PGMPAPI_H
