//===- core/Engine.h - Public embedding API -------------------*- C++ -*-===//
///
/// \file
/// The public entry point: an Engine is one embedded Scheme session with
/// the PGMP machinery installed — reader, hygienic expander, compiler,
/// evaluator, counter-based profiler, and the Figure 4 API. A typical
/// profile-guided build is:
///
///   Engine E1;                      // pass 1: profile
///   E1.setInstrumentation(true);
///   E1.evalFile("app.scm");         // runs instrumented
///   E1.storeProfile("app.profile");
///
///   Engine E2;                      // pass 2: optimize
///   E2.loadProfile("app.profile");  // meta-programs now see weights
///   E2.evalFile("app.scm");         // expands optimized
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_CORE_ENGINE_H
#define PGMP_CORE_ENGINE_H

#include "core/ProfileOpResult.h"
#include "expander/Expander.h"
#include "interp/Context.h"

#include <memory>
#include <optional>
#include <string>

namespace pgmp {

/// Result of evaluating source text.
struct EvalResult {
  bool Ok = false;
  Value V;            ///< value of the last form (when Ok)
  std::string Error;  ///< rendered error (when !Ok)

  explicit operator bool() const { return Ok; }
};

class Engine {
public:
  Engine();
  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  Context &context() { return Ctx; }
  Expander &expander() { return Exp; }

  //===--------------------------------------------------------------------===//
  // Evaluation
  //===--------------------------------------------------------------------===//

  /// Reads, expands, compiles, and evaluates every form in \p Source.
  /// \p Name is the buffer's file name (profile points key off it, so use
  /// stable names).
  EvalResult evalString(const std::string &Source,
                        const std::string &Name = "<eval>");

  /// Like evalString, from a file on disk.
  EvalResult evalFile(const std::string &Path);

  /// Loads scheme/<name>.scm from the library directory baked in at build
  /// time (the case-study meta-programs live there).
  EvalResult loadLibrary(const std::string &Name);

  /// Calls a global procedure by name.
  EvalResult callGlobal(const std::string &Name,
                        const std::vector<Value> &Args);

  /// Expands (but does not run) every form; returns the printed core
  /// forms, one per line — used to inspect what a meta-program generated.
  EvalResult expandToString(const std::string &Source,
                            const std::string &Name = "<expand>");

  //===--------------------------------------------------------------------===//
  // Profiling workflow (paper Sections 3-4)
  //===--------------------------------------------------------------------===//

  /// Instrument code compiled from now on (source-expression counters).
  void setInstrumentation(bool On) { Ctx.InstrumentCompiles = On; }
  bool instrumentation() const { return Ctx.InstrumentCompiles; }

  /// Chez-style inline counters vs Racket errortrace-style call wrapping
  /// for annotate-expr (Section 4.2).
  void setAnnotateMode(AnnotateMode M) { Ctx.AnnotMode = M; }

  /// Profile integrity policy: strict mode turns corrupt/stale/malformed
  /// profile inputs into errors instead of degrade-with-warning.
  void setStrictProfile(bool On) { Ctx.StrictProfile = On; }
  bool strictProfile() const { return Ctx.StrictProfile; }

  /// Folds live counters into the profile database as one data set and
  /// resets them (also performed by storeProfile).
  void foldCountersIntoProfile();

  /// Stores / loads a profile; see ProfileOpResult.h for the structured
  /// result (operator bool keeps `if (!E.loadProfile(p))` working, and is
  /// true for degraded loads, matching the old degradation policy).
  ProfileOpResult storeProfile(const std::string &Path);
  ProfileOpResult loadProfile(const std::string &Path);

  /// Deprecated bool/ErrorOut shims; use the ProfileOpResult overloads.
  [[deprecated("use storeProfile(Path) returning ProfileOpResult")]]
  bool storeProfile(const std::string &Path, std::string *ErrorOut);
  [[deprecated("use loadProfile(Path) returning ProfileOpResult")]]
  bool loadProfile(const std::string &Path, std::string *ErrorOut);

  void clearProfile();

  /// Weight of the point covering [Begin, End) of buffer \p File.
  /// nullopt means "no profile data loaded" — distinct from 0.0, which
  /// means "data is loaded and this point was never hit" (profile-query
  /// collapses both to 0; profile-query* preserves the distinction).
  std::optional<double> weightOf(const std::string &File, uint32_t Begin,
                                 uint32_t End);

  //===--------------------------------------------------------------------===//
  // Observability (phase timers, self-metrics, trace export)
  //===--------------------------------------------------------------------===//

  /// Toggles pipeline stats: per-phase wall-clock timers and profiler
  /// self-metrics. Near-zero cost when off (the default).
  void setStatsEnabled(bool On) { Ctx.Stats.enable(On); }
  bool statsEnabled() const { return Ctx.Stats.enabled(); }

  /// The accumulated stats; see StatsRegistry::snapshot()/render().
  const StatsRegistry &stats() const { return Ctx.Stats; }
  void resetStats() { Ctx.Stats.reset(); }

  /// Enables trace-event collection and sets where writeTrace() (and the
  /// destructor, best-effort) will write Chrome trace_event JSON.
  void setTracePath(const std::string &Path);

  /// Writes the collected trace to the setTracePath() target (or \p Path)
  /// and marks it flushed so the destructor does not rewrite it.
  ProfileOpResult writeTrace();
  ProfileOpResult writeTrace(const std::string &Path);

  //===--------------------------------------------------------------------===//
  // Output capture
  //===--------------------------------------------------------------------===//

  /// Returns and clears everything display/write produced.
  std::string takeOutput();

private:
  Context Ctx;
  Expander Exp;
  std::string TracePath;
};

} // namespace pgmp

#endif // PGMP_CORE_ENGINE_H
