//===- core/Engine.h - Public embedding API -------------------*- C++ -*-===//
///
/// \file
/// The public entry point: an Engine is one embedded Scheme session with
/// the PGMP machinery installed — reader, hygienic expander, compiler,
/// evaluator, counter-based profiler, and the Figure 4 API. A typical
/// profile-guided build is:
///
///   EngineOptions Prof;
///   Prof.Instrument = true;
///   Engine E1(Prof);                // pass 1: profile
///   E1.evalFile("app.scm");         // runs instrumented
///   E1.storeProfile("app.profile");
///
///   Engine E2;                      // pass 2: optimize
///   E2.loadProfile("app.profile");  // meta-programs now see weights
///   E2.evalFile("app.scm");         // expands optimized
///
/// Profile data is read through one surface: `snapshot()` returns an
/// immutable ProfileSnapshot whose weight/weightOpt/count methods carry
/// the semantics the three historical read paths (profileQuery,
/// profileQueryOpt, weightOf) used to split between them.
///
/// One Engine is one thread's session: evaluate on the thread that owns
/// it. To profile a workload across N threads, use EnginePool, which runs
/// one Engine per worker and merges their counters deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_CORE_ENGINE_H
#define PGMP_CORE_ENGINE_H

#include "core/EngineOptions.h"
#include "core/ProfileOpResult.h"
#include "expander/Expander.h"
#include "interp/Context.h"
#include "profile/ProfileSnapshot.h"

#include <memory>
#include <string>

namespace pgmp {

/// Result of evaluating source text.
struct EvalResult {
  bool Ok = false;
  Value V;            ///< value of the last form (when Ok)
  std::string Error;  ///< rendered error (when !Ok)
  /// Which resource guard aborted the run (GuardKind::None for ordinary
  /// errors and successes). Lets callers distinguish "program is wrong"
  /// from "program exceeded its budget" without parsing Error.
  GuardKind Tripped = GuardKind::None;

  explicit operator bool() const { return Ok; }
};

class Engine {
public:
  Engine();
  /// Constructs with \p Opts applied after the prelude loads (so the
  /// prelude itself is never instrumented or counted, matching the old
  /// construct-then-set protocol).
  explicit Engine(const EngineOptions &Opts);
  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  Context &context() { return Ctx; }
  Expander &expander() { return Exp; }

  //===--------------------------------------------------------------------===//
  // Evaluation
  //===--------------------------------------------------------------------===//

  /// Reads, expands, compiles, and evaluates every form in \p Source.
  /// \p Name is the buffer's file name (profile points key off it, so use
  /// stable names).
  EvalResult evalString(const std::string &Source,
                        const std::string &Name = "<eval>");

  /// Like evalString, from a file on disk.
  EvalResult evalFile(const std::string &Path);

  /// Loads scheme/<name>.scm from the library directory baked in at build
  /// time (the case-study meta-programs live there).
  EvalResult loadLibrary(const std::string &Name);

  /// Calls a global procedure by name.
  EvalResult callGlobal(const std::string &Name,
                        const std::vector<Value> &Args);

  /// Expands (but does not run) every form; returns the printed core
  /// forms, one per line — used to inspect what a meta-program generated.
  EvalResult expandToString(const std::string &Source,
                            const std::string &Name = "<expand>");

  //===--------------------------------------------------------------------===//
  // Profiling workflow (paper Sections 3-4)
  //===--------------------------------------------------------------------===//

  /// Instrument code compiled from now on (source-expression counters).
  /// The one intentionally-runtime toggle: a session can run its own
  /// profile/optimize cycle. Everything else is EngineOptions.
  void setInstrumentation(bool On) { Ctx.InstrumentCompiles = On; }
  bool instrumentation() const { return Ctx.InstrumentCompiles; }

  bool strictProfile() const { return Ctx.StrictProfile; }

  /// Folds live counters into the profile database as one data set and
  /// resets them (also performed by storeProfile).
  void foldCountersIntoProfile();

  /// Stores / loads a profile; see ProfileOpResult.h for the structured
  /// result (operator bool keeps `if (!E.loadProfile(p))` working, and is
  /// true for degraded loads, matching the old degradation policy).
  ProfileOpResult storeProfile(const std::string &Path);
  ProfileOpResult loadProfile(const std::string &Path);

  void clearProfile();

  //===--------------------------------------------------------------------===//
  // Profile queries — the one read path
  //===--------------------------------------------------------------------===//

  /// An immutable view of the current profile data; see ProfileSnapshot.
  /// Cheap (O(1) between profile mutations) and safe to query from any
  /// thread or to keep across further loads.
  ProfileSnapshot snapshot() const { return Ctx.ProfileDb.snapshot(); }

  /// The interned profile point covering [Begin, End) of buffer \p File —
  /// the key for snapshot().weight()/weightOpt()/count().
  const SourceObject *profilePoint(const std::string &File, uint32_t Begin,
                                   uint32_t End);

  //===--------------------------------------------------------------------===//
  // Continuous profiling (EngineOptions::ContinuousProfile)
  //===--------------------------------------------------------------------===//

  /// The bus this engine publishes to, or null when continuous profiling
  /// is off. Engine-hosted unless EngineOptions::Bus supplied one.
  ProfileBus *bus() { return Ctx.Bus; }

  /// Forces one publish + epoch check outside the ExecGuard poll cadence
  /// (the same routine the poll hook runs). Returns true when a new epoch
  /// was observed and tier decisions were re-evaluated. No-op (false)
  /// when continuous profiling is off.
  bool observeProfileEpoch();

  //===--------------------------------------------------------------------===//
  // Observability (phase timers, self-metrics, trace export)
  //===--------------------------------------------------------------------===//

  bool statsEnabled() const { return Ctx.Stats.enabled(); }

  /// The accumulated stats; see StatsRegistry::snapshot()/render().
  const StatsRegistry &stats() const { return Ctx.Stats; }
  void resetStats() { Ctx.Stats.reset(); }

  /// Writes the collected trace to the EngineOptions::TracePath target
  /// (or \p Path) and marks it flushed so the destructor does not rewrite
  /// it. Final heap allocation gauges ("ph":"C" counter samples:
  /// bytes allocated/reserved, chunks, objects) are recorded just before
  /// the write so every exported trace carries the memory picture.
  ProfileOpResult writeTrace();
  ProfileOpResult writeTrace(const std::string &Path);

  //===--------------------------------------------------------------------===//
  // Output capture
  //===--------------------------------------------------------------------===//

  /// Returns and clears everything display/write produced.
  std::string takeOutput();

private:
  void configureTracePath(const std::string &Path);
  /// Samples the heap allocation counters into the trace (no-op when
  /// tracing is off).
  void recordHeapTraceCounters();

  Context Ctx;
  Expander Exp;
  std::string TracePath;
};

} // namespace pgmp

#endif // PGMP_CORE_ENGINE_H
