//===- core/PgmpApi.cpp ---------------------------------------------------===//

#include "core/PgmpApi.h"

#include "core/ProfileSession.h"
#include "interp/PrimsCommon.h"
#include "profile/ProfileReport.h"
#include "syntax/Syntax.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>

using namespace pgmp;
using namespace pgmp::prims;

//===----------------------------------------------------------------------===//
// C++ API
//===----------------------------------------------------------------------===//

Value pgmp::pgmpapi::makeProfilePoint(Context &Ctx,
                                      const std::string &BaseFile) {
  Ctx.Stats.bump(Stat::PointsCreated);
  const SourceObject *Src = Ctx.Sources.makeGeneratedPoint(BaseFile);
  // A profile point is a syntax object carrying the source object.
  return makeSyntax(Ctx.TheHeap, Value::boolean(false), ScopeSet(), Src);
}

Value pgmp::pgmpapi::annotateExpr(Context &Ctx, Value Expr,
                                  const SourceObject *Point) {
  if (!Expr.isSyntax())
    raiseError("annotate-expr: expression must be a syntax object");
  Ctx.Stats.bump(Stat::AnnotateExprCalls);
  Syntax *E = Expr.asSyntax();

  if (Ctx.AnnotMode == AnnotateMode::Inline) {
    // Chez style: replace the expression's source object.
    return makeSyntax(Ctx.TheHeap, E->Inner, E->Scopes, Point);
  }

  // Racket errortrace style: the profiler sees only calls, so wrap the
  // expression in a fresh nullary procedure and annotate the call:
  //   ((lambda () e))   with the application carrying the point.
  Symbol *LambdaSym = Ctx.Symbols.intern("lambda");
  Value LambdaId = makeSyntax(
      Ctx.TheHeap, Value::object(ValueKind::Symbol, LambdaSym), ScopeSet(),
      nullptr);
  Value EmptyParams = makeSyntax(Ctx.TheHeap, Value::nil(), ScopeSet(),
                                 nullptr);
  Value LambdaForm = makeSyntax(
      Ctx.TheHeap,
      Ctx.TheHeap.cons(LambdaId,
                       Ctx.TheHeap.cons(EmptyParams,
                                        Ctx.TheHeap.cons(Expr, Value::nil()))),
      ScopeSet(), nullptr);
  return makeSyntax(Ctx.TheHeap, Ctx.TheHeap.cons(LambdaForm, Value::nil()),
                    ScopeSet(), Point);
}

ProfileSnapshot pgmp::pgmpapi::snapshot(Context &Ctx) {
  Ctx.Stats.bump(Stat::ProfileQueries);
  return Ctx.ProfileDb.snapshot();
}

const SourceObject *pgmp::pgmpapi::point(const Value &ExprOrPoint) {
  return syntaxSource(ExprOrPoint);
}

// The store/load entry points are one-shot ProfileSessions over the file
// transport: the session owns the fold/commit protocol and fault-injection
// points, the transport owns the file I/O — see core/ProfileSession.h.

ProfileOpResult pgmp::pgmpapi::storeProfile(Context &Ctx,
                                            const std::string &Path) {
  ProfileSession S(Ctx, std::make_unique<FileProfileTransport>(Path));
  return S.commit();
}

ProfileOpResult pgmp::pgmpapi::loadProfile(Context &Ctx,
                                           const std::string &Path) {
  ProfileSession S(Ctx, std::make_unique<FileProfileTransport>(Path));
  return S.restore();
}

//===----------------------------------------------------------------------===//
// Scheme primitives
//===----------------------------------------------------------------------===//

namespace {

Value primMakeProfilePoint(Context &Ctx, Value *A, size_t N) {
  std::string Base = "pgmp-generated";
  if (N == 1) {
    if (A[0].isString())
      Base = A[0].asString()->Text;
    else if (const SourceObject *Src = syntaxSource(A[0]))
      Base = Src->File;
    else
      wrongType("make-profile-point", "a base string or sourced syntax",
                A[0]);
  }
  return pgmpapi::makeProfilePoint(Ctx, Base);
}

Value primAnnotateExpr(Context &Ctx, Value *A, size_t) {
  const SourceObject *Point = syntaxSource(A[1]);
  if (!Point)
    raiseError("annotate-expr: second argument carries no profile point");
  return pgmpapi::annotateExpr(Ctx, A[0], Point);
}

Value primProfileQuery(Context &Ctx, Value *A, size_t) {
  return Value::flonum(pgmpapi::snapshot(Ctx).weight(pgmpapi::point(A[0])));
}

/// (profile-query* e) — weight, or #f when no data is loaded / the value
/// carries no profile point. The non-collapsing sibling of profile-query.
Value primProfileQueryStar(Context &Ctx, Value *A, size_t) {
  std::optional<double> W =
      pgmpapi::snapshot(Ctx).weightOpt(pgmpapi::point(A[0]));
  return W ? Value::flonum(*W) : Value::boolean(false);
}

Value primProfileQueryCount(Context &Ctx, Value *A, size_t) {
  uint64_t Count = pgmpapi::snapshot(Ctx).count(pgmpapi::point(A[0]));
  return Value::fixnum(static_cast<int64_t>(Count));
}

Value primStoreProfile(Context &Ctx, Value *A, size_t) {
  ProfileOpResult R =
      pgmpapi::storeProfile(Ctx, wantString("store-profile", A[0])->Text);
  if (!R)
    raiseError("store-profile: " + R.Error);
  return Value::undefined();
}

Value primLoadProfile(Context &Ctx, Value *A, size_t) {
  ProfileOpResult R =
      pgmpapi::loadProfile(Ctx, wantString("load-profile", A[0])->Text);
  if (!R)
    raiseError("load-profile: " + R.Error);
  return Value::undefined();
}

Value primProfileDataAvailableP(Context &Ctx, Value *, size_t) {
  return Value::boolean(Ctx.ProfileDb.hasData());
}

Value primCurrentProfileDatasets(Context &Ctx, Value *, size_t) {
  return Value::fixnum(static_cast<int64_t>(Ctx.ProfileDb.numDatasets()));
}

Value primClearProfile(Context &Ctx, Value *, size_t) {
  Ctx.ProfileDb.clear();
  Ctx.Counters.reset();
  return Value::undefined();
}

/// (profile-dump [n]) — the hottest profile points as a list of
/// (location weight count) triples, weightiest first. Shares the
/// canonical report ordering with `pgmpi report` (profileHotRows), so the
/// REPL and the CLI never disagree about what is hot.
Value primProfileDump(Context &Ctx, Value *A, size_t N) {
  int64_t Limit = N == 1 ? wantFixnum("profile-dump", A[0]) : 20;
  std::vector<ProfileHotRow> Rows = profileHotRows(Ctx.ProfileDb.snapshot());
  if (Limit >= 0 && Rows.size() > static_cast<size_t>(Limit))
    Rows.resize(static_cast<size_t>(Limit));

  std::vector<Value> Out;
  for (const ProfileHotRow &R : Rows)
    Out.push_back(Ctx.TheHeap.list(
        {Ctx.TheHeap.string(R.Src->describe()), Value::flonum(R.Weight),
         Value::fixnum(static_cast<int64_t>(R.Count))}));
  return Ctx.TheHeap.list(Out);
}

/// (set-instrumentation! b) — toggles source-expression instrumentation
/// for forms compiled from here on; a Scheme program can run its own
/// profile/optimize cycle without leaving the language.
Value primSetInstrumentation(Context &Ctx, Value *A, size_t) {
  Ctx.InstrumentCompiles = A[0].isTruthy();
  return Value::undefined();
}

Value primInstrumentationP(Context &Ctx, Value *, size_t) {
  return Value::boolean(Ctx.InstrumentCompiles);
}

/// (pgmp-stats) — pipeline self-metrics as an alist of (name . value)
/// pairs: every counter, then per-phase entry counts and nanoseconds.
/// All zero until (set-pgmp-stats! #t) or EngineOptions::StatsEnabled.
Value primPgmpStats(Context &Ctx, Value *, size_t) {
  std::vector<Value> Rows;
  for (const auto &[Name, Count] : Ctx.Stats.snapshot())
    Rows.push_back(Ctx.TheHeap.cons(
        Value::object(ValueKind::Symbol, Ctx.Symbols.intern(Name)),
        Value::fixnum(
            static_cast<int64_t>(std::min<uint64_t>(Count, INT64_MAX)))));
  return Ctx.TheHeap.list(Rows);
}

/// (set-pgmp-stats! b) — toggles pipeline stats collection, so a Scheme
/// meta-program can measure its own expansion/instrumentation cost.
Value primSetPgmpStats(Context &Ctx, Value *A, size_t) {
  Ctx.Stats.enable(A[0].isTruthy());
  return Value::undefined();
}

/// (compile-warning msg...) — lets meta-programs emit the Perflint-style
/// compile-time recommendations of Section 6.3 through the diagnostic
/// sink, where tests can observe them.
Value primCompileWarning(Context &Ctx, Value *A, size_t N) {
  std::string Msg;
  for (size_t I = 0; I < N; ++I) {
    if (I)
      Msg += " ";
    Msg += A[I].isString() ? A[I].asString()->Text : writeToString(A[I]);
  }
  Ctx.Diags.report(DiagKind::Warning, "", Msg);
  return Value::undefined();
}

} // namespace

void pgmp::installPgmpApi(Context &Ctx) {
  Ctx.definePrimitive("make-profile-point", 0, 1, primMakeProfilePoint);
  Ctx.definePrimitive("annotate-expr", 2, 2, primAnnotateExpr);
  Ctx.definePrimitive("profile-query", 1, 1, primProfileQuery);
  Ctx.definePrimitive("profile-query*", 1, 1, primProfileQueryStar);
  Ctx.definePrimitive("profile-query-count", 1, 1, primProfileQueryCount);
  Ctx.definePrimitive("store-profile", 1, 1, primStoreProfile);
  Ctx.definePrimitive("load-profile", 1, 1, primLoadProfile);
  Ctx.definePrimitive("profile-data-available?", 0, 0,
                      primProfileDataAvailableP);
  Ctx.definePrimitive("current-profile-datasets", 0, 0,
                      primCurrentProfileDatasets);
  Ctx.definePrimitive("clear-profile!", 0, 0, primClearProfile);
  Ctx.definePrimitive("profile-dump", 0, 1, primProfileDump);
  Ctx.definePrimitive("set-instrumentation!", 1, 1, primSetInstrumentation);
  Ctx.definePrimitive("instrumentation?", 0, 0, primInstrumentationP);
  Ctx.definePrimitive("pgmp-stats", 0, 0, primPgmpStats);
  Ctx.definePrimitive("set-pgmp-stats!", 1, 1, primSetPgmpStats);
  Ctx.definePrimitive("compile-warning", 1, -1, primCompileWarning);
}
