//===- core/ThreePass.cpp -------------------------------------------------===//

#include "core/ThreePass.h"

#include "support/AtomicFile.h"
#include "support/Checksum.h"
#include "vm/BlockProfile.h"
#include "vm/BlockReorder.h"

using namespace pgmp;

static bool loadLibraries(Engine &E, const ThreePassConfig &Config,
                          std::string &ErrorOut) {
  for (const std::string &Lib : Config.Libraries) {
    EvalResult R = E.loadLibrary(Lib);
    if (!R.Ok) {
      ErrorOut = "loading library " + Lib + ": " + R.Error;
      return false;
    }
  }
  return true;
}

/// Fingerprint of the source profile file's bytes, used to tie pass 2's
/// block profile to the exact source profile that drove expansion
/// (Section 4.3). 0 when the file cannot be read ("unknown").
static uint64_t sourceProfileFingerprint(const std::string &Path) {
  std::string Bytes, Err;
  if (readFileAll(Path, Bytes, Err) != FileReadStatus::Ok)
    return 0;
  return fnv1a64(Bytes);
}

/// Registers the program text under its buffer name before the profile
/// loads, so the profile's source fingerprints are checked against the
/// code this pass will actually compile (staleness detection).
static void preRegisterProgram(Engine &E, const ThreePassConfig &Config) {
  E.context().SrcMgr.addBuffer(Config.ProgramName, Config.ProgramSource);
}

/// Engine configuration for one pass of the protocol: the config's
/// integrity policy, plus stats collection when stage reports were asked
/// for. Pass 1 additionally turns on source instrumentation.
static EngineOptions stageOptions(const ThreePassConfig &Config,
                                  bool Instrument = false) {
  EngineOptions Opts;
  Opts.Instrument = Instrument;
  Opts.StrictProfile = Config.StrictProfile;
  Opts.StatsEnabled = Config.StageStatsOut != nullptr;
  Opts.Tier = Config.Tier;
  return Opts;
}

/// Captures the pass's stats into Config.StageStatsOut.
static void endStage(Engine &E, const ThreePassConfig &Config,
                     const char *Pass) {
  if (!Config.StageStatsOut)
    return;
  const StatsRegistry &S = E.stats();
  ThreePassStageStats Row;
  Row.Pass = Pass;
  Row.Rendered = S.render();
  Row.CounterIncrements = S.count(Stat::CounterIncrements);
  Row.InstrumentedNodes = S.count(Stat::InstrumentedNodes);
  Row.CompiledNodes = S.count(Stat::CompiledNodes);
  Row.EvalNanos = S.phaseNanos(Phase::Eval);
  Config.StageStatsOut->push_back(std::move(Row));
}

bool pgmp::runPassOne(const ThreePassConfig &Config, std::string &ErrorOut) {
  Engine E(stageOptions(Config, /*Instrument=*/true));
  if (!loadLibraries(E, Config, ErrorOut))
    return false;
  EvalResult R = E.evalString(Config.ProgramSource, Config.ProgramName);
  if (!R.Ok) {
    ErrorOut = "pass 1 program: " + R.Error;
    return false;
  }
  R = E.evalString(Config.WorkloadSource, "workload.scm");
  if (!R.Ok) {
    ErrorOut = "pass 1 workload: " + R.Error;
    return false;
  }
  if (ProfileOpResult PR = E.storeProfile(Config.SourceProfilePath); !PR) {
    ErrorOut = PR.Error;
    return false;
  }
  endStage(E, Config, "pass1");
  return true;
}

bool pgmp::runPassTwo(const ThreePassConfig &Config, std::string &ErrorOut,
                      std::string *BlocksOut) {
  Engine E(stageOptions(Config));
  preRegisterProgram(E, Config);
  if (ProfileOpResult PR = E.loadProfile(Config.SourceProfilePath); !PR) {
    ErrorOut = PR.Error;
    return false;
  }
  if (!loadLibraries(E, Config, ErrorOut))
    return false;

  VmRunner Runner(E);
  VmCompileOptions Opts;
  Opts.ProfileBlocks = true;
  EvalResult R =
      Runner.evalString(Config.ProgramSource, Config.ProgramName, Opts);
  if (!R.Ok) {
    ErrorOut = "pass 2 program: " + R.Error;
    return false;
  }
  VmModule *Program = Runner.lastModule();

  // Run the workload: the interpreter drives it, calling into the
  // block-instrumented VM code through the apply hook.
  R = E.evalString(Config.WorkloadSource, "workload.scm");
  if (!R.Ok) {
    ErrorOut = "pass 2 workload: " + R.Error;
    return false;
  }

  std::string StoreErr;
  if (!storeBlockProfileFile(
          *Program, Config.BlockProfilePath,
          sourceProfileFingerprint(Config.SourceProfilePath), &StoreErr)) {
    ErrorOut = "cannot write block profile: " + Config.BlockProfilePath +
               " (" + StoreErr + ")";
    return false;
  }
  if (BlocksOut) {
    BlocksOut->clear();
    for (const auto &Fn : Program->Functions)
      *BlocksOut += Fn->Name + ":" + std::to_string(Fn->Blocks.size()) + ";";
  }
  endStage(E, Config, "pass2");
  return true;
}

bool pgmp::runPassThree(const ThreePassConfig &Config, OptimizedProgram &Out,
                        std::string &ErrorOut) {
  Out.E = std::make_unique<Engine>(stageOptions(Config));
  Engine &E = *Out.E;
  preRegisterProgram(E, Config);
  if (ProfileOpResult PR = E.loadProfile(Config.SourceProfilePath); !PR) {
    ErrorOut = PR.Error;
    return false;
  }
  if (!loadLibraries(E, Config, ErrorOut))
    return false;

  Out.Runner = std::make_unique<VmRunner>(E);
  // Final build: no instrumentation of any kind.
  EvalResult R = Out.Runner->evalString(Config.ProgramSource,
                                        Config.ProgramName, {});
  if (!R.Ok) {
    ErrorOut = "pass 3 program: " + R.Error;
    return false;
  }
  Out.Program = Out.Runner->lastModule();

  // Apply the block-level profile. Because the same source profile drove
  // expansion, the block structure matches and the profile is valid —
  // and the embedded source-profile fingerprint now checks exactly that,
  // before any structural comparison.
  std::string BlockErr;
  BlockProfileLoadReport BlockReport;
  Out.BlockProfileValid = loadBlockProfileFile(
      Config.BlockProfilePath, *Out.Program, BlockErr,
      sourceProfileFingerprint(Config.SourceProfilePath), &BlockReport);
  // Non-fatal block-profile findings flow through the same diagnostic
  // funnel as source-profile load warnings, path attached once.
  E.context().Diags.reportAll(DiagKind::Warning, Config.BlockProfilePath,
                              BlockReport.Warnings);
  if (Out.BlockProfileValid) {
    applyProfileGuidedLayout(*Out.Program);
  } else {
    if (Config.StrictProfile) {
      ErrorOut = BlockErr;
      return false;
    }
    E.context().Diags.report(DiagKind::Warning, Config.BlockProfilePath,
                             BlockErr);
    ErrorOut = BlockErr; // surfaced, but pass 3 still yields a program
  }
  endStage(E, Config, "pass3");
  return true;
}

bool pgmp::runThreePasses(const ThreePassConfig &Config,
                          OptimizedProgram &Out, std::string &ErrorOut) {
  if (!runPassOne(Config, ErrorOut))
    return false;
  if (!runPassTwo(Config, ErrorOut))
    return false;
  return runPassThree(Config, Out, ErrorOut);
}
