//===- core/ThreePass.cpp -------------------------------------------------===//

#include "core/ThreePass.h"

#include "vm/BlockProfile.h"
#include "vm/BlockReorder.h"

using namespace pgmp;

static bool loadLibraries(Engine &E, const ThreePassConfig &Config,
                          std::string &ErrorOut) {
  for (const std::string &Lib : Config.Libraries) {
    EvalResult R = E.loadLibrary(Lib);
    if (!R.Ok) {
      ErrorOut = "loading library " + Lib + ": " + R.Error;
      return false;
    }
  }
  return true;
}

bool pgmp::runPassOne(const ThreePassConfig &Config, std::string &ErrorOut) {
  Engine E;
  E.setInstrumentation(true);
  if (!loadLibraries(E, Config, ErrorOut))
    return false;
  EvalResult R = E.evalString(Config.ProgramSource, Config.ProgramName);
  if (!R.Ok) {
    ErrorOut = "pass 1 program: " + R.Error;
    return false;
  }
  R = E.evalString(Config.WorkloadSource, "workload.scm");
  if (!R.Ok) {
    ErrorOut = "pass 1 workload: " + R.Error;
    return false;
  }
  if (!E.storeProfile(Config.SourceProfilePath, &ErrorOut))
    return false;
  return true;
}

bool pgmp::runPassTwo(const ThreePassConfig &Config, std::string &ErrorOut,
                      std::string *BlocksOut) {
  Engine E;
  if (!E.loadProfile(Config.SourceProfilePath, &ErrorOut))
    return false;
  if (!loadLibraries(E, Config, ErrorOut))
    return false;

  VmRunner Runner(E);
  VmCompileOptions Opts;
  Opts.ProfileBlocks = true;
  EvalResult R =
      Runner.evalString(Config.ProgramSource, Config.ProgramName, Opts);
  if (!R.Ok) {
    ErrorOut = "pass 2 program: " + R.Error;
    return false;
  }
  VmModule *Program = Runner.lastModule();

  // Run the workload: the interpreter drives it, calling into the
  // block-instrumented VM code through the apply hook.
  R = E.evalString(Config.WorkloadSource, "workload.scm");
  if (!R.Ok) {
    ErrorOut = "pass 2 workload: " + R.Error;
    return false;
  }

  if (!storeBlockProfileFile(*Program, Config.BlockProfilePath)) {
    ErrorOut = "cannot write block profile: " + Config.BlockProfilePath;
    return false;
  }
  if (BlocksOut) {
    BlocksOut->clear();
    for (const auto &Fn : Program->Functions)
      *BlocksOut += Fn->Name + ":" + std::to_string(Fn->Blocks.size()) + ";";
  }
  return true;
}

bool pgmp::runPassThree(const ThreePassConfig &Config, OptimizedProgram &Out,
                        std::string &ErrorOut) {
  Out.E = std::make_unique<Engine>();
  Engine &E = *Out.E;
  if (!E.loadProfile(Config.SourceProfilePath, &ErrorOut))
    return false;
  if (!loadLibraries(E, Config, ErrorOut))
    return false;

  Out.Runner = std::make_unique<VmRunner>(E);
  // Final build: no instrumentation of any kind.
  EvalResult R = Out.Runner->evalString(Config.ProgramSource,
                                        Config.ProgramName, {});
  if (!R.Ok) {
    ErrorOut = "pass 3 program: " + R.Error;
    return false;
  }
  Out.Program = Out.Runner->lastModule();

  // Apply the block-level profile. Because the same source profile drove
  // expansion, the block structure matches and the profile is valid.
  std::string BlockErr;
  Out.BlockProfileValid =
      loadBlockProfileFile(Config.BlockProfilePath, *Out.Program, BlockErr);
  if (Out.BlockProfileValid)
    applyProfileGuidedLayout(*Out.Program);
  else
    ErrorOut = BlockErr; // surfaced, but pass 3 still yields a program
  return true;
}

bool pgmp::runThreePasses(const ThreePassConfig &Config,
                          OptimizedProgram &Out, std::string &ErrorOut) {
  if (!runPassOne(Config, ErrorOut))
    return false;
  if (!runPassTwo(Config, ErrorOut))
    return false;
  return runPassThree(Config, Out, ErrorOut);
}
