//===- core/ProfileSession.h - Unified profile lifecycle ------*- C++ -*-===//
///
/// \file
/// The one profile-lifecycle API: a ProfileSession ties a Context to a
/// ProfileTransport and exposes the whole open → observe epochs → commit
/// cycle through three verbs:
///
///   ProfileSession S(E.context(),
///                    std::make_unique<FileProfileTransport>("app.profile"));
///   S.restore();                  // open:   transport -> database
///   ... run workload ...          // observe: epochs re-tier automatically
///   S.commit();                   // commit: counters -> database -> transport
///
/// This replaces the historical ad-hoc entry points (storeProfile /
/// loadProfile free functions, EnginePool::storeMergedProfile's bespoke
/// serialize-then-commit) with one protocol under which the existing file
/// store is just one transport. pgmpapi::storeProfile/loadProfile and
/// Engine::storeProfile/loadProfile are now thin wrappers over a
/// file-transport session, preserving their exact fault-injection,
/// degradation-policy, and stats behavior.
///
/// ## Continuous profiling
///
/// The same translation unit owns the continuous-profiling glue: engines
/// configured with EngineOptions::ContinuousProfile publish their counter
/// totals to a ProfileBus from the ExecGuard poll point and, when the bus
/// publishes a new epoch, re-evaluate every compiled lambda's tier:
///
///  - weight >= TierPolicy::HotWeight: pre-mark hot (TierHot), restoring
///    a previously parked bytecode body (LambdaExpr::TierCache) if one
///    exists — promotion without recompilation.
///  - a *profile-marked* hot lambda whose weight fell below the
///    threshold: demote — park the bytecode in TierCache, clear Tiered,
///    zero TierInvokes. The lambda interprets again but is NOT
///    TierBlocked: it re-promotes the moment an epoch (or the invocation
///    threshold) says so. Threshold-earned tiers (TierHot false) are
///    never demoted, which keeps the policy from thrashing closures that
///    proved themselves hot by running.
///
/// Publishing reads cumulative totals and never resets a counter, so the
/// final fold/commit remains byte-identical to a run with the bus off —
/// the epoch boundary is invisible to merge fidelity.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_CORE_PROFILESESSION_H
#define PGMP_CORE_PROFILESESSION_H

#include "core/EngineOptions.h"
#include "core/ProfileOpResult.h"
#include "interp/Context.h"

#include <memory>
#include <string>

namespace pgmp {

/// Where a profile lives between sessions. restore() merges the stored
/// profile into the context's database; persist() writes a database out.
/// Transports own their I/O phase timers; the session owns the
/// fold/commit protocol and its fault-injection points.
class ProfileTransport {
public:
  virtual ~ProfileTransport() = default;

  /// Human-readable target ("file:app.profile") for diagnostics.
  virtual std::string describe() const = 0;

  /// Merges the stored profile into \p Ctx's database, honoring the
  /// degradation policy (Context::StrictProfile).
  virtual ProfileOpResult restore(Context &Ctx) = 0;

  /// Persists \p Db. Must not touch \p Ctx's live counters or database —
  /// the session commits them only after persist succeeds.
  virtual ProfileOpResult persist(Context &Ctx, const ProfileDatabase &Db) = 0;
};

/// The classic on-disk profile format as a transport (ProfileIO.h:
/// versioned text format, atomic rename on store, staleness validation
/// on load).
class FileProfileTransport : public ProfileTransport {
public:
  explicit FileProfileTransport(std::string Path) : Path(std::move(Path)) {}

  std::string describe() const override { return "file:" + Path; }
  ProfileOpResult restore(Context &Ctx) override;
  ProfileOpResult persist(Context &Ctx, const ProfileDatabase &Db) override;

private:
  std::string Path;
};

/// One profile lifecycle over one Context. Transportless sessions (null
/// transport) still fold and observe; commit() then only folds counters
/// into the in-memory database.
class ProfileSession {
public:
  explicit ProfileSession(Context &Ctx,
                          std::unique_ptr<ProfileTransport> Transport = nullptr)
      : Ctx(Ctx), Transport(std::move(Transport)) {}

  /// Open: merges the transport's stored profile into the database.
  /// Ok with zero datasets for a transportless session.
  ProfileOpResult restore();

  /// The unified read path over whatever this session has accumulated.
  ProfileSnapshot current() const { return Ctx.ProfileDb.snapshot(); }

  /// The latest continuous-profiling epoch, or null (no bus / none yet).
  std::shared_ptr<const ProfileEpoch> epoch() const;

  /// Forces one publish + epoch check (the same routine the ExecGuard
  /// poll hook runs). Returns true when a new epoch was applied. No-op
  /// without a bus.
  bool observe();

  /// Commit: folds live counters into the database as one data set and
  /// persists through the transport. On persist failure the counters and
  /// database are left untouched (serialize-then-commit).
  ProfileOpResult commit();

private:
  Context &Ctx;
  std::unique_ptr<ProfileTransport> Transport;
};

//===----------------------------------------------------------------------===//
// Continuous-profiling attachment (used by Engine and EnginePool)
//===----------------------------------------------------------------------===//

/// Wires \p Ctx into continuous profiling per \p CP: binds it to
/// \p SharedBus (or a private bus parked on the context when null),
/// registers it as a publisher, and installs the ExecGuard poll hook at
/// CP.IntervalCharges. No-op when CP is disabled.
void attachContinuousProfile(Context &Ctx, const ContinuousProfileOptions &CP,
                             ProfileBus *SharedBus = nullptr);

/// One continuous-profiling beat for \p Ctx: publish cumulative counter
/// totals to its bus, then apply any new epoch to the tier state (see the
/// file comment). Returns true when a new epoch was applied. This is the
/// ExecGuard poll hook's body; callable directly for deterministic tests.
bool pollContinuousProfile(Context &Ctx);

} // namespace pgmp

#endif // PGMP_CORE_PROFILESESSION_H
