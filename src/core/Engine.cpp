//===- core/Engine.cpp ----------------------------------------------------===//

#include "core/Engine.h"

#include "core/PgmpApi.h"
#include "core/ProfileSession.h"
#include "interp/Compiler.h"
#include "interp/Eval.h"
#include "interp/Prims.h"
#include "reader/Reader.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"
#include "syntax/Writer.h"
#include "vm/Vm.h"

using namespace pgmp;

#ifndef PGMP_SCHEME_DIR
#define PGMP_SCHEME_DIR "scheme"
#endif

Engine::Engine() : Engine(EngineOptions{}) {}

Engine::Engine(const EngineOptions &Opts) : Ctx(), Exp(Ctx) {
  installAllPrims(Ctx);
  installPgmpApi(Ctx);
  EvalResult R = loadLibrary("prelude");
  if (!R.Ok)
    Ctx.Diags.report(DiagKind::Warning, "",
                     "prelude not loaded: " + R.Error);
  // Applied after the prelude so the options govern user code only — the
  // prelude is never instrumented, counted, or traced, matching the old
  // construct-then-set protocol byte for byte.
  Ctx.InstrumentCompiles = Opts.Instrument;
  Ctx.AnnotMode = Opts.Annotate;
  Ctx.StrictProfile = Opts.StrictProfile;
  Ctx.Stats.enable(Opts.StatsEnabled);
  Ctx.EchoStdout = Opts.EchoStdout;
  Ctx.Diags.EchoToStderr = Opts.EchoDiagnostics;
  Ctx.Tier = Opts.Tier;
  // Guards also apply only after the prelude: a tight fuel budget should
  // constrain the user's program, not the library bootstrap.
  Ctx.Guard.configure(Opts.Fuel, Opts.MaxDepth, Opts.DeadlineMs);
  Ctx.TheHeap.setLimitBytes(Opts.MaxHeapBytes);
  // Reclamation also arms after the prelude: the bootstrap allocates into
  // a virgin nursery and is fully retained through globals anyway.
  Ctx.Reclaim = Opts.Reclaim;
  if (Opts.Tier.Mode != TierMode::Off)
    installVm(Ctx);
  // Continuous profiling arms the ExecGuard poll point after the guards:
  // configurePoll recomputes Active, so a poll interval alone is enough
  // to route execution through the guarded instantiations.
  attachContinuousProfile(Ctx, Opts.ContinuousProfile, Opts.Bus);
  if (!Opts.TracePath.empty())
    configureTracePath(Opts.TracePath);
}

Engine::~Engine() {
  // Best-effort flush of an unwritten trace; explicit writeTrace() is the
  // error-reporting path.
  if (!TracePath.empty()) {
    recordHeapTraceCounters();
    std::string Err;
    (void)Ctx.Trace.write(TracePath, Err);
  }
}

void Engine::recordHeapTraceCounters() {
  if (!Ctx.Trace.enabled())
    return;
  uint64_t Now = statsNowNanos();
  const Heap::AllocStats &A = Ctx.TheHeap.allocStats();
  // Cumulative and live figures are separate counters: allocated only
  // grows, while reserved/live shrink when a collection frees nursery
  // chunks (the peak keeps the high-water mark).
  Ctx.Trace.counter("heap-bytes-allocated", "heap", Now, A.BytesAllocated);
  Ctx.Trace.counter("heap-bytes-reserved", "heap", Now, A.BytesReserved);
  Ctx.Trace.counter("heap-bytes-reserved-peak", "heap", Now,
                    A.PeakBytesReserved);
  Ctx.Trace.counter("heap-bytes-live", "heap", Now, Ctx.TheHeap.bytesLive());
  Ctx.Trace.counter("heap-bytes-reclaimed", "heap", Now, A.BytesReclaimed);
  Ctx.Trace.counter("heap-chunks", "heap", Now, A.ChunksAcquired);
  Ctx.Trace.counter("heap-objects", "heap", Now, Ctx.TheHeap.numObjects());
}

/// Reads the next form under the Read phase timer; the read/expand/
/// compile/eval split is what makes "where does expansion time go?"
/// answerable per top-level form without touching any hot loop.
static std::optional<Value> readOneTimed(Context &Ctx, Reader &Rd) {
  ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Read);
  if (faultinject::shouldFail(faultinject::Point::Read))
    raiseError("injected fault at phase boundary: read");
  return Rd.readOne();
}

EvalResult Engine::evalString(const std::string &Source,
                              const std::string &Name) {
  EvalResult R;
  // Fresh budgets per API call: an earlier trip (or a long-running prior
  // request) never poisons this one, so a guarded Engine is reusable as a
  // request-per-call sandbox.
  Ctx.Guard.beginRun();
  try {
    Ctx.SrcMgr.addBuffer(Name, Source);
    Reader Rd(Ctx.TheHeap, Ctx.Symbols, Ctx.Sources, Source, Name);
    Value Last = Value::undefined();
    while (auto Form = readOneTimed(Ctx, Rd)) {
      std::vector<Value> Cores;
      {
        ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Expand);
        if (faultinject::shouldFail(faultinject::Point::Expand))
          raiseError("injected fault at phase boundary: expand");
        Cores = Exp.expandTopLevel(*Form);
      }
      for (Value Core : Cores) {
        std::unique_ptr<CodeUnit> Unit;
        {
          ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Compile);
          if (faultinject::shouldFail(faultinject::Point::Compile))
            raiseError("injected fault at phase boundary: compile");
          Unit = compileCore(Ctx, Core);
        }
        // Units that compiled lambdas (or syntax-rules patterns and
        // templates) are adopted for the session, and adopted *before*
        // evaluation so a closure published to a global stays valid even
        // if a later subexpression of the same form throws. A
        // self-contained unit, by contrast, cannot be referenced once its
        // run finishes; under boundary reclamation it is dropped at the
        // end of this iteration, which keeps a long-lived serve session's
        // code table bounded instead of growing with every request. (Its
        // constants are arena values: any that escape into globals or the
        // result survive via the root walk, independent of the unit.)
        Expr *Root = Unit->Root;
        if (Ctx.Reclaim != ReclaimMode::Boundary || !Unit->selfContained())
          Ctx.adoptCode(std::move(Unit));
        {
          ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Eval);
          Last = evalExpr(Ctx, Root, nullptr);
        }
      }
    }
    R.Ok = true;
    // Run-boundary reclamation (no-op under ReclaimMode::Off). The result
    // is parked on the Context as a root and read back forwarded, so the
    // caller's EvalResult stays valid across the collection.
    Ctx.LastResult = Last;
    Ctx.reclaimAtBoundary();
    R.V = Ctx.LastResult;
  } catch (const GuardTrip &T) {
    R.Ok = false;
    R.Error = T.render();
    R.Tripped = T.kind();
    Ctx.Stats.bump(Stat::GuardTrips);
    Ctx.LastResult = Value::undefined();
    Ctx.reclaimAtBoundary();
  } catch (const SchemeError &E) {
    R.Ok = false;
    R.Error = E.render();
    Ctx.LastResult = Value::undefined();
    Ctx.reclaimAtBoundary();
  }
  return R;
}

EvalResult Engine::evalFile(const std::string &Path) {
  FileId Id;
  if (!Ctx.SrcMgr.addFile(Path, Id)) {
    EvalResult R;
    R.Error = "cannot open file: " + Path;
    return R;
  }
  return evalString(std::string(Ctx.SrcMgr.bufferText(Id)), Path);
}

EvalResult Engine::loadLibrary(const std::string &Name) {
  return evalFile(std::string(PGMP_SCHEME_DIR) + "/" + Name + ".scm");
}

EvalResult Engine::callGlobal(const std::string &Name,
                              const std::vector<Value> &Args) {
  EvalResult R;
  Ctx.Guard.beginRun();
  try {
    Value *Cell = Ctx.globalCell(Ctx.Symbols.intern(Name));
    if (Cell->isUnbound())
      raiseError("unbound global " + Name);
    Ctx.LastResult = Ctx.apply(*Cell, Args);
    Ctx.reclaimAtBoundary();
    R.V = Ctx.LastResult;
    R.Ok = true;
  } catch (const GuardTrip &T) {
    R.Error = T.render();
    R.Tripped = T.kind();
    Ctx.Stats.bump(Stat::GuardTrips);
    Ctx.LastResult = Value::undefined();
    Ctx.reclaimAtBoundary();
  } catch (const SchemeError &E) {
    R.Error = E.render();
    Ctx.LastResult = Value::undefined();
    Ctx.reclaimAtBoundary();
  }
  return R;
}

EvalResult Engine::expandToString(const std::string &Source,
                                  const std::string &Name) {
  EvalResult R;
  Ctx.Guard.beginRun();
  try {
    Ctx.SrcMgr.addBuffer(Name, Source);
    Reader Rd(Ctx.TheHeap, Ctx.Symbols, Ctx.Sources, Source, Name);
    std::string Out;
    WriteOptions Opts;
    Opts.SyntaxAsDatum = true;
    while (auto Form = readOneTimed(Ctx, Rd)) {
      std::vector<Value> Cores;
      {
        ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Expand);
        if (faultinject::shouldFail(faultinject::Point::Expand))
          raiseError("injected fault at phase boundary: expand");
        Cores = Exp.expandTopLevel(*Form);
      }
      for (Value Core : Cores) {
        Out += writeValue(Core, Opts);
        Out += "\n";
      }
    }
    R.Ok = true;
    Ctx.LastResult = Ctx.TheHeap.string(std::move(Out));
    Ctx.reclaimAtBoundary();
    R.V = Ctx.LastResult;
  } catch (const GuardTrip &T) {
    R.Error = T.render();
    R.Tripped = T.kind();
    Ctx.Stats.bump(Stat::GuardTrips);
    Ctx.LastResult = Value::undefined();
    Ctx.reclaimAtBoundary();
  } catch (const SchemeError &E) {
    R.Error = E.render();
    Ctx.LastResult = Value::undefined();
    Ctx.reclaimAtBoundary();
  }
  return R;
}

void Engine::foldCountersIntoProfile() {
  ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::CounterFold);
  uint64_t Before = Ctx.ProfileDb.numDatasets();
  Ctx.Stats.bump(Stat::CounterIncrements, Ctx.Counters.totalIncrements());
  Ctx.ProfileDb.addDataset(Ctx.Counters);
  if (Ctx.ProfileDb.numDatasets() > Before)
    Ctx.Stats.bump(Stat::DatasetMerges);
  Ctx.Counters.reset();
}

ProfileOpResult Engine::storeProfile(const std::string &Path) {
  return pgmpapi::storeProfile(Ctx, Path);
}

ProfileOpResult Engine::loadProfile(const std::string &Path) {
  return pgmpapi::loadProfile(Ctx, Path);
}

bool Engine::observeProfileEpoch() { return pollContinuousProfile(Ctx); }

void Engine::configureTracePath(const std::string &Path) {
  TracePath = Path;
  Ctx.Trace.enable(!Path.empty());
}

ProfileOpResult Engine::writeTrace() {
  if (TracePath.empty())
    return ProfileOpResult::failure(
        "no trace path configured (set EngineOptions::TracePath)");
  ProfileOpResult R = writeTrace(TracePath);
  if (R.ok())
    TracePath.clear(); // flushed: the destructor must not rewrite it
  return R;
}

ProfileOpResult Engine::writeTrace(const std::string &Path) {
  recordHeapTraceCounters();
  std::string Err;
  if (!Ctx.Trace.write(Path, Err))
    return ProfileOpResult::failure("cannot write trace file: " + Path +
                                    " (" + Err + ")");
  return ProfileOpResult{};
}

void Engine::clearProfile() {
  Ctx.ProfileDb.clear();
  Ctx.Counters.reset();
}

const SourceObject *Engine::profilePoint(const std::string &File,
                                         uint32_t Begin, uint32_t End) {
  return Ctx.Sources.intern(File, Begin, End, 1, 1);
}

std::string Engine::takeOutput() {
  std::string Out = std::move(Ctx.Output);
  Ctx.Output.clear();
  return Out;
}
