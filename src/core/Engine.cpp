//===- core/Engine.cpp ----------------------------------------------------===//

#include "core/Engine.h"

#include "core/PgmpApi.h"
#include "interp/Compiler.h"
#include "interp/Eval.h"
#include "interp/Prims.h"
#include "reader/Reader.h"
#include "support/Diagnostics.h"
#include "syntax/Writer.h"

using namespace pgmp;

#ifndef PGMP_SCHEME_DIR
#define PGMP_SCHEME_DIR "scheme"
#endif

Engine::Engine() : Ctx(), Exp(Ctx) {
  installAllPrims(Ctx);
  installPgmpApi(Ctx);
  EvalResult R = loadLibrary("prelude");
  if (!R.Ok)
    Ctx.Diags.report(DiagKind::Warning, "",
                     "prelude not loaded: " + R.Error);
}

Engine::~Engine() = default;

EvalResult Engine::evalString(const std::string &Source,
                              const std::string &Name) {
  EvalResult R;
  try {
    Ctx.SrcMgr.addBuffer(Name, Source);
    Reader Rd(Ctx.TheHeap, Ctx.Symbols, Ctx.Sources, Source, Name);
    Value Last = Value::undefined();
    while (auto Form = Rd.readOne()) {
      for (Value Core : Exp.expandTopLevel(*Form)) {
        auto Unit = compileCore(Ctx, Core);
        Last = evalExpr(Ctx, Unit->Root, nullptr);
        Ctx.adoptCode(std::move(Unit));
      }
    }
    R.Ok = true;
    R.V = Last;
  } catch (const SchemeError &E) {
    R.Ok = false;
    R.Error = E.render();
  }
  return R;
}

EvalResult Engine::evalFile(const std::string &Path) {
  FileId Id;
  if (!Ctx.SrcMgr.addFile(Path, Id)) {
    EvalResult R;
    R.Error = "cannot open file: " + Path;
    return R;
  }
  return evalString(std::string(Ctx.SrcMgr.bufferText(Id)), Path);
}

EvalResult Engine::loadLibrary(const std::string &Name) {
  return evalFile(std::string(PGMP_SCHEME_DIR) + "/" + Name + ".scm");
}

EvalResult Engine::callGlobal(const std::string &Name,
                              const std::vector<Value> &Args) {
  EvalResult R;
  try {
    Value *Cell = Ctx.globalCell(Ctx.Symbols.intern(Name));
    if (Cell->isUnbound())
      raiseError("unbound global " + Name);
    R.V = Ctx.apply(*Cell, Args);
    R.Ok = true;
  } catch (const SchemeError &E) {
    R.Error = E.render();
  }
  return R;
}

EvalResult Engine::expandToString(const std::string &Source,
                                  const std::string &Name) {
  EvalResult R;
  try {
    Ctx.SrcMgr.addBuffer(Name, Source);
    Reader Rd(Ctx.TheHeap, Ctx.Symbols, Ctx.Sources, Source, Name);
    std::string Out;
    WriteOptions Opts;
    Opts.SyntaxAsDatum = true;
    while (auto Form = Rd.readOne()) {
      for (Value Core : Exp.expandTopLevel(*Form)) {
        Out += writeValue(Core, Opts);
        Out += "\n";
      }
    }
    R.Ok = true;
    R.V = Ctx.TheHeap.string(std::move(Out));
  } catch (const SchemeError &E) {
    R.Error = E.render();
  }
  return R;
}

void Engine::foldCountersIntoProfile() {
  Ctx.ProfileDb.addDataset(Ctx.Counters);
  Ctx.Counters.reset();
}

bool Engine::storeProfile(const std::string &Path, std::string *ErrorOut) {
  std::string Err;
  bool Ok = pgmpapi::storeProfile(Ctx, Path, Err);
  if (!Ok && ErrorOut)
    *ErrorOut = Err;
  return Ok;
}

bool Engine::loadProfile(const std::string &Path, std::string *ErrorOut) {
  std::string Err;
  bool Ok = pgmpapi::loadProfile(Ctx, Path, Err);
  if (!Ok && ErrorOut)
    *ErrorOut = Err;
  return Ok;
}

void Engine::clearProfile() {
  Ctx.ProfileDb.clear();
  Ctx.Counters.reset();
}

std::optional<double> Engine::weightOf(const std::string &File,
                                       uint32_t Begin, uint32_t End) {
  const SourceObject *Src = Ctx.Sources.intern(File, Begin, End, 1, 1);
  return Ctx.ProfileDb.weight(Src);
}

std::string Engine::takeOutput() {
  std::string Out = std::move(Ctx.Output);
  Ctx.Output.clear();
  return Out;
}
