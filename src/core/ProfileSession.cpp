//===- core/ProfileSession.cpp --------------------------------------------===//

#include "core/ProfileSession.h"

#include "interp/Expr.h"
#include "interp/TierBackend.h"
#include "profile/ProfileIO.h"
#include "support/FaultInjector.h"

#include <unordered_map>

using namespace pgmp;

//===----------------------------------------------------------------------===//
// FileProfileTransport
//===----------------------------------------------------------------------===//

ProfileOpResult FileProfileTransport::restore(Context &Ctx) {
  ProfileOpResult R;
  std::string Err;
  ProfileLoadReport Report;
  bool Ok;
  {
    ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::ProfileLoad);
    Ok = loadProfileFile(Path, Ctx.Sources, Ctx.ProfileDb, Err, &Ctx.SrcMgr,
                         &Report);
  }
  if (Ok) {
    // Single funnel for load warnings: attach the path once and forward
    // to the diagnostic sink; the result carries a copy for the caller.
    Ctx.Diags.reportAll(DiagKind::Warning, Path, Report.Warnings);
    R.Warnings = Report.Warnings;
    R.DatasetsMerged = Report.NumDatasets;
    R.PointsLoaded = Report.NumPoints;
    Ctx.Stats.bump(Stat::DatasetMerges, Report.NumDatasets);
    Ctx.Stats.bump(Stat::ProfilePointsLoaded, Report.NumPoints);
    return R;
  }
  // Degradation policy: corrupt, stale, or malformed profiles are data
  // problems, not program errors — warn and continue unoptimized
  // (profile-data-available? stays #f because nothing was merged). A
  // missing or unreadable file, and any failure in strict mode, stays an
  // error.
  bool Degradable = Report.Status == ProfileLoadStatus::Malformed ||
                    Report.Status == ProfileLoadStatus::Corrupt ||
                    Report.Status == ProfileLoadStatus::Stale;
  if (!Degradable || Ctx.StrictProfile)
    return ProfileOpResult::failure(std::move(Err));
  R.Status = ProfileOpStatus::Degraded;
  R.Error = Err;
  R.Warnings.push_back("ignoring profile: " + Err +
                       "; continuing without profile data");
  Ctx.Diags.reportAll(DiagKind::Warning, Path, R.Warnings);
  return R;
}

ProfileOpResult FileProfileTransport::persist(Context &Ctx,
                                              const ProfileDatabase &Db) {
  std::string Err;
  ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::ProfileStore);
  if (!storeProfileFile(Db, Path, &Ctx.SrcMgr, &Err))
    return ProfileOpResult::failure("cannot write profile file: " + Path +
                                    " (" + Err + ")");
  return ProfileOpResult{};
}

//===----------------------------------------------------------------------===//
// ProfileSession
//===----------------------------------------------------------------------===//

ProfileOpResult ProfileSession::restore() {
  ProfileOpResult R;
  if (!Transport)
    return R;
  Ctx.Stats.bump(Stat::ProfileLoads);
  // Injected before the transport is touched, so nothing merges: the same
  // no-partial-effects contract a real I/O failure provides.
  if (faultinject::shouldFail(faultinject::Point::ProfileLoad))
    return ProfileOpResult::failure(
        "injected fault at phase boundary: profile-load");
  return Transport->restore(Ctx);
}

std::shared_ptr<const ProfileEpoch> ProfileSession::epoch() const {
  return Ctx.Bus ? Ctx.Bus->epoch() : nullptr;
}

bool ProfileSession::observe() { return pollContinuousProfile(Ctx); }

ProfileOpResult ProfileSession::commit() {
  ProfileOpResult R;
  Ctx.Stats.bump(Stat::ProfileStores);
  // Injected before anything is copied or folded: a failed commit must
  // leave the live counters and the database exactly as they were.
  if (faultinject::shouldFail(faultinject::Point::ProfileStore))
    return ProfileOpResult::failure(
        "injected fault at phase boundary: profile-store (counters preserved)");
  // Serialize a snapshot that already includes the live counters, but
  // fold-and-reset only after the transport has the data safely: a failed
  // commit must not destroy the counter data it failed to persist.
  ProfileDatabase Snapshot = Ctx.ProfileDb;
  {
    ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::CounterFold);
    Snapshot.addDataset(Ctx.Counters);
  }
  if (Transport) {
    ProfileOpResult P = Transport->persist(Ctx, Snapshot);
    if (!P)
      return P;
  }
  uint64_t Increments = Ctx.Counters.totalIncrements();
  bool CountersFolded = Snapshot.numDatasets() > Ctx.ProfileDb.numDatasets();
  Ctx.Stats.bump(Stat::CounterIncrements, Increments);
  Ctx.ProfileDb.addDataset(Ctx.Counters);
  Ctx.Counters.reset();
  if (CountersFolded)
    Ctx.Stats.bump(Stat::DatasetMerges);
  R.DatasetsMerged = CountersFolded ? 1 : 0;
  R.PointsLoaded = Snapshot.numPoints();
  return R;
}

//===----------------------------------------------------------------------===//
// Continuous profiling
//===----------------------------------------------------------------------===//

static void busPollTrampoline(void *Arg) {
  pollContinuousProfile(*static_cast<Context *>(Arg));
}

void pgmp::attachContinuousProfile(Context &Ctx,
                                   const ContinuousProfileOptions &CP,
                                   ProfileBus *SharedBus) {
  if (!CP.enabled())
    return;
  if (SharedBus) {
    Ctx.Bus = SharedBus;
  } else {
    ProfileBusOptions BO;
    BO.DecayHalfLife = CP.DecayHalfLife;
    BO.RetierThreshold = CP.RetierThreshold;
    Ctx.OwnedBus = std::make_unique<ProfileBus>(BO);
    Ctx.Bus = Ctx.OwnedBus.get();
  }
  Ctx.BusPublisher = Ctx.Bus->addPublisher();
  Ctx.BusSeenVersion = 0;
  Ctx.Guard.configurePoll(CP.IntervalCharges, busPollTrampoline, &Ctx);
}

/// Publishes the context's cumulative counter totals. The polling thread
/// is the only thread incrementing this context's counters (one Engine is
/// one thread's session), so reading them here needs no quiescence
/// protocol beyond the TLS-sharded registry itself — the "quiesce-free
/// snapshot". Keys are cached per counter slot so steady-state publishes
/// rebuild no strings.
static void publishCounters(Context &Ctx) {
  auto Rows = Ctx.Counters.snapshot();
  while (Ctx.BusKeyCache.size() < Rows.size()) {
    const SourceObject *Src = Rows[Ctx.BusKeyCache.size()].first;
    Ctx.BusKeyCache.push_back(BusPointKey{Src->File, Src->BeginOffset,
                                          Src->EndOffset, Src->Line,
                                          Src->Column, Src->Generated});
  }
  ProfileBus::TotalsRows Totals;
  Totals.reserve(Rows.size());
  for (size_t I = 0; I < Rows.size(); ++I)
    Totals.emplace_back(Ctx.BusKeyCache[I], Rows[I].second);
  Ctx.Bus->publish(Ctx.BusPublisher, Totals);
  Ctx.Stats.bump(Stat::BusPublishes);
}

/// Re-evaluates every adopted lambda's tier against \p Epoch's weights.
static void applyEpoch(Context &Ctx, const ProfileEpoch &Epoch) {
  std::unordered_map<const SourceObject *, double> Weights;
  Weights.reserve(Epoch.Rows.size());
  for (const ProfileEpochRow &Row : Epoch.Rows)
    Weights[Ctx.Sources.intern(Row.Key.File, Row.Key.Begin, Row.Key.End,
                               Row.Key.Line, Row.Key.Column,
                               Row.Key.Generated)] = Row.Weight;

  for (const LambdaExpr *L : Ctx.TierLambdas) {
    if (!L->Body || !L->Body->Src || L->TierBlocked)
      continue;
    auto It = Weights.find(L->Body->Src);
    double W = It == Weights.end() ? 0.0 : It->second;
    if (W >= Ctx.Tier.HotWeight) {
      // Hot per this epoch: pre-mark (skips the Auto warm-up) and restore
      // a parked bytecode body, if a demotion left one, without
      // recompiling.
      bool Was = L->TierHot;
      L->TierHot = true;
      if (!L->Tiered && L->TierCache)
        L->Tiered = L->TierCache;
      if (!Was)
        Ctx.Stats.bump(Stat::RetierPromotions);
    } else if (L->TierHot) {
      // Stale hot mark: the epoch no longer supports it. Demote to
      // interpretation — park the bytecode (not TierBlocked: the next
      // epoch or the invocation threshold can bring it straight back)
      // and restart the warm-up count.
      L->TierHot = false;
      if (L->Tiered) {
        L->TierCache = L->Tiered;
        L->Tiered = nullptr;
      }
      L->TierInvokes = 0;
      Ctx.Stats.bump(Stat::RetierDemotions);
    }
    // Threshold-earned tiers (TierHot false, Tiered set) are left alone:
    // they proved themselves hot by running, and the epoch's silence is
    // not evidence of coldness strong enough to un-compile them.
  }

  // A fresh epoch can also shift the hot *opcode* mix, not just the hot
  // closure set: re-select the superinstruction fusion table from the
  // block profiles observed so far and drop bodies compiled against an
  // older table — they re-tier lazily against the fresh one on their next
  // hot invocation.
  if (Ctx.Backend)
    Ctx.Backend->invalidateEpoch(Ctx, Ctx.Backend->fuse(Ctx));

  // The memory-management analog of the fusion re-selection above: a new
  // profile epoch re-derives the reclamation policy (pre-tenured sites,
  // hot-site co-location, nursery sizing) from the allocation-site
  // profile observed so far. Deterministic in the profile; cheap when
  // nothing changed.
  Ctx.reselectReclaimPolicy();
}

bool pgmp::pollContinuousProfile(Context &Ctx) {
  if (!Ctx.Bus)
    return false;
  publishCounters(Ctx);
  // One atomic load answers "anything new?" — the fast path when the
  // aggregated profile is stable.
  uint64_t V = Ctx.Bus->version();
  if (V == Ctx.BusSeenVersion)
    return false;
  std::shared_ptr<const ProfileEpoch> E = Ctx.Bus->epoch();
  if (!E)
    return false;
  applyEpoch(Ctx, *E);
  // Record the version actually applied: if a newer epoch landed between
  // the version load and the fetch, the next poll re-applies it — the
  // subscriber's view is strictly monotonic either way.
  Ctx.BusSeenVersion = E->Version;
  Ctx.Stats.bump(Stat::BusEpochs);
  return true;
}
