//===- core/EngineOptions.h - Construction-time engine config -*- C++ -*-===//
///
/// \file
/// One struct holding everything an embedder used to configure through a
/// growing pile of Engine::set* calls (setStrictProfile, setTracePath,
/// setStatsEnabled, setAnnotateMode, ...). Pass it to the Engine
/// constructor — or to EnginePool, which applies the same options to
/// every worker:
///
///   EngineOptions Opts;
///   Opts.Instrument = true;
///   Opts.StatsEnabled = true;
///   Engine E(Opts);
///
/// Options take effect for code evaluated *after* construction; the
/// prelude library loaded by the constructor is never instrumented or
/// counted, exactly as under the old post-construction setter protocol.
/// The deprecated setter shims have been removed; the only runtime toggle
/// is setInstrumentation, which the paper's profile/optimize cycle
/// genuinely flips mid-session.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_CORE_ENGINEOPTIONS_H
#define PGMP_CORE_ENGINEOPTIONS_H

#include "interp/TierPolicy.h"

#include <cstdint>
#include <string>

namespace pgmp {

enum class AnnotateMode : uint8_t; // interp/Context.h
enum class ReclaimMode : uint8_t;  // syntax/Heap.h
class ProfileBus;                  // profile/ProfileBus.h

/// Continuous profiling configuration (the long-lived serving mode; see
/// DESIGN.md "Continuous profiling & re-tiering"). Off by default —
/// IntervalCharges == 0 leaves the classic one-shot profile lifecycle
/// untouched and costs nothing at runtime.
struct ContinuousProfileOptions {
  /// Fuel charges between counter publishes to the ProfileBus (the
  /// ExecGuard poll point). 0 disables continuous profiling.
  uint64_t IntervalCharges = 0;

  /// Publishes after which a point's decayed bus contribution halves
  /// (the aggregation window, measured in publishes).
  double DecayHalfLife = 8.0;

  /// Hot-set churn fraction at or above which the bus publishes a new
  /// epoch and engines re-evaluate tier decisions.
  double RetierThreshold = 0.25;

  bool enabled() const { return IntervalCharges != 0; }
};

/// Construction-time configuration for one Engine (or every worker of an
/// EnginePool). Default-constructed options reproduce a plain `Engine E;`.
struct EngineOptions {
  /// Compile with source-expression counters (pass-1 profiling runs).
  bool Instrument = false;

  /// annotate-expr style: Inline (Chez, counter bump) or Wrap (Racket
  /// errortrace, nullary-call wrapping). Zero-initialized to
  /// AnnotateMode::Inline; the enum is defined in interp/Context.h, which
  /// every Engine user already sees through core/Engine.h.
  AnnotateMode Annotate{};

  /// Profile integrity policy: strict turns corrupt/stale/malformed
  /// profile inputs into errors instead of degrade-with-warning.
  bool StrictProfile = false;

  /// Pipeline stats: per-phase wall-clock timers and profiler
  /// self-metrics. Near-zero cost when off (the default).
  bool StatsEnabled = false;

  /// Non-empty enables trace-event collection; Engine::writeTrace() (and
  /// the destructor, best-effort) write Chrome trace_event JSON here.
  std::string TracePath;

  /// Tiered execution policy (interp/TierPolicy.h): when closures promote
  /// from the tree-walking interpreter to the bytecode VM, plus the
  /// profile-guided codegen knobs (superinstruction fusion, call-site
  /// inlining) the VM applies at tier-up. Defaults to TierMode::Off.
  /// Tiered code — fused or not — bumps the exact same source-expression
  /// counters as the interpreter, so instrumented profiles are
  /// byte-identical across tier modes and fusion settings.
  TierPolicy Tier;

  //===--------------------------------------------------------------------===//
  // Execution guards (support/ExecGuard.h; 0 = unlimited). Limits govern
  // code evaluated after construction, per run: a trip raises a
  // structured, catchable GuardTrip and the Engine stays reusable.
  //===--------------------------------------------------------------------===//

  /// Per-run step budget: one unit per procedure application and per VM
  /// back edge (pgmpi --fuel).
  uint64_t Fuel = 0;

  /// Non-tail application nesting limit — bounds C++ stack growth from
  /// deep Scheme recursion (pgmpi --max-depth).
  uint32_t MaxDepth = 0;

  /// Cap on the arena heap's reserved bytes, checked on chunk acquisition
  /// so the bump fast path is untouched (pgmpi --max-heap).
  uint64_t MaxHeapBytes = 0;

  /// Per-run wall-clock budget in milliseconds (pgmpi --deadline-ms).
  uint64_t DeadlineMs = 0;

  /// Region reclamation at run boundaries (syntax/Heap.h, DESIGN.md §6).
  /// Zero-initialized to ReclaimMode::Off — the historical contract:
  /// stable object addresses for the whole session, memory freed at
  /// teardown only. ReclaimMode::Boundary collects the nursery after
  /// every evalString/callGlobal, which is what long-lived serving loops
  /// (pgmpi serve) use to stay in bounded memory. Under Boundary, Values
  /// held by the embedder across run boundaries are invalidated by the
  /// collection — retain results through Scheme globals (or re-read
  /// EvalResult::V, which is forwarded) instead.
  ReclaimMode Reclaim{};

  /// Mirror display/write output to stdout (pgmpi-style drivers).
  bool EchoStdout = false;

  /// Mirror diagnostics to stderr as they are reported.
  bool EchoDiagnostics = false;

  //===--------------------------------------------------------------------===//
  // Continuous profiling (profile/ProfileBus.h)
  //===--------------------------------------------------------------------===//

  /// Enables the continuous profiling service when
  /// ContinuousProfile.IntervalCharges is nonzero: the engine publishes
  /// its counters to a ProfileBus at the ExecGuard poll point and
  /// re-evaluates tier decisions whenever the bus publishes a new epoch.
  ContinuousProfileOptions ContinuousProfile;

  /// The bus to publish to. Null (the default) makes the engine host its
  /// own private bus; EnginePool passes every worker the aggregator it
  /// hosts on worker 0 so the pool shares one decayed profile. The bus
  /// must outlive the Engine.
  ProfileBus *Bus = nullptr;
};

} // namespace pgmp

#endif // PGMP_CORE_ENGINEOPTIONS_H
