//===- core/EnginePool.cpp ------------------------------------------------===//

#include "core/EnginePool.h"

#include "core/ProfileSession.h"
#include "profile/ProfileBus.h"

#include <chrono>
#include <thread>

using namespace pgmp;

EnginePool::EnginePool(size_t Jobs, const EngineOptions &Opts)
    : EnginePool(Jobs, Opts, FaultPolicy()) {}

EnginePool::EnginePool(size_t Jobs, const EngineOptions &Opts,
                       const FaultPolicy &Policy)
    : Opts(Opts), Policy(Policy) {
  if (Jobs == 0)
    Jobs = 1;
  // Continuous profiling across a pool shares ONE aggregator, hosted by
  // the coordinator (worker 0's thread): the pool owns it — never a
  // worker, so fault-isolation replacement of any worker (including 0)
  // cannot dangle the other publishers — and hands every worker the same
  // bus through its options.
  if (this->Opts.ContinuousProfile.enabled() && !this->Opts.Bus) {
    ProfileBusOptions BO;
    BO.DecayHalfLife = this->Opts.ContinuousProfile.DecayHalfLife;
    BO.RetierThreshold = this->Opts.ContinuousProfile.RetierThreshold;
    PoolBus = std::make_unique<ProfileBus>(BO);
    this->Opts.Bus = PoolBus.get();
  }
  Workers.reserve(Jobs);
  for (size_t I = 0; I < Jobs; ++I)
    Workers.push_back(std::make_unique<Engine>(this->Opts));
}

EnginePool::~EnginePool() = default;

std::unique_ptr<Engine> EnginePool::freshWorker() {
  auto W = std::make_unique<Engine>(Opts);
  for (const std::string &Path : PreRegistered) {
    FileId Id;
    (void)W->context().SrcMgr.addFile(Path, Id);
  }
  if (!LoadedProfilePath.empty())
    (void)W->loadProfile(LoadedProfilePath);
  return W;
}

EnginePool::PoolResult EnginePool::run(const WorkerTask &Task) {
  PoolResult R;
  size_t N = Workers.size();
  R.PerWorker.resize(N);
  R.Outcomes.resize(N);

  std::vector<size_t> Pending(N);
  for (size_t I = 0; I < N; ++I)
    Pending[I] = I;

  for (unsigned Attempt = 0;; ++Attempt) {
    std::vector<std::thread> Threads;
    Threads.reserve(Pending.size());
    for (size_t I : Pending)
      Threads.emplace_back([this, &Task, &R, I] {
        // Each thread touches only its own worker and its own result
        // slot; evalString already converts SchemeErrors (including
        // GuardTrips, recording EvalResult::Tripped), so the catches here
        // contain trips and errors escaping the task body itself — a
        // worker failure must never take down the pool.
        EvalResult &Res = R.PerWorker[I];
        try {
          Res = Task(*Workers[I], I);
        } catch (const GuardTrip &T) {
          Res = EvalResult{};
          Res.Error = T.render();
          Res.Tripped = T.kind();
        } catch (const SchemeError &E) {
          Res = EvalResult{};
          Res.Error = E.render();
        } catch (const std::exception &E) {
          Res = EvalResult{};
          Res.Error = E.what();
        } catch (...) {
          Res = EvalResult{};
          Res.Error = "unknown exception";
        }
      });
    // The join is load-bearing: it is the happens-before edge that makes
    // aggregating the workers' counter pages race-free (and that makes
    // replacing failed engines below safe).
    for (std::thread &T : Threads)
      T.join();

    std::vector<size_t> Failed;
    for (size_t I : Pending) {
      TaskOutcome &O = R.Outcomes[I];
      ++O.Attempts;
      O.Ok = R.PerWorker[I].Ok;
      O.Tripped = R.PerWorker[I].Tripped;
      O.Error = R.PerWorker[I].Error;
      if (!O.Ok)
        Failed.push_back(I);
    }
    if (Failed.empty())
      break;

    if (Attempt >= Policy.MaxRetries) {
      // Out of retries. Unless the policy opts in to partial data, zero
      // the failed workers' counters now: an all-zero data set is skipped
      // by addDataset, so the subsequent merge sees exactly the surviving
      // tasks' data sets in worker-index order — byte-identical to a
      // sequential run of the same surviving set.
      if (!Policy.MergePartialCounters)
        for (size_t I : Failed)
          Workers[I]->context().Counters.reset();
      break;
    }

    // Retry on fresh workers: the failed engine's heap, globals, and
    // partial counters are discarded wholesale — fault isolation by
    // replacement, not by attempted in-place repair.
    for (size_t I : Failed)
      Workers[I] = freshWorker();
    R.TotalRetries += static_cast<unsigned>(Failed.size());
    Workers[0]->context().Stats.bump(Stat::TaskRetries, Failed.size());
    if (Policy.BackoffBaseMs)
      std::this_thread::sleep_for(std::chrono::milliseconds(
          Policy.BackoffBaseMs << (Attempt < 6 ? Attempt : 6)));
    Pending = std::move(Failed);
  }

  for (size_t I = 0; I < N; ++I)
    if (!R.Outcomes[I].Ok) {
      ++R.NumFailed;
      if (R.Ok) {
        R.Ok = false;
        R.Error = "worker " + std::to_string(I) + ": " + R.Outcomes[I].Error;
      }
    }
  return R;
}

EnginePool::PoolResult
EnginePool::runFiles(const std::vector<std::string> &Files) {
  return run([&Files](Engine &E, size_t) {
    EvalResult Last;
    Last.Ok = true; // an empty workload is vacuously fine
    for (const std::string &F : Files) {
      Last = E.evalFile(F);
      if (!Last)
        break;
    }
    return Last;
  });
}

ProfileOpResult EnginePool::loadProfileAll(const std::string &Path) {
  ProfileOpResult R;
  for (std::unique_ptr<Engine> &W : Workers) {
    R = W->loadProfile(Path);
    if (!R)
      return R;
  }
  LoadedProfilePath = Path; // replay into fresh replacement workers
  return R;
}

void EnginePool::preRegisterFile(const std::string &Path) {
  for (std::unique_ptr<Engine> &W : Workers) {
    FileId Id;
    (void)W->context().SrcMgr.addFile(Path, Id); // missing files error later
  }
  PreRegistered.push_back(Path); // replay into fresh replacement workers
}

void EnginePool::mergeCountersInto(ProfileDatabase &Db,
                                   SourceObjectTable &Sources) {
  for (std::unique_ptr<Engine> &W : Workers) {
    ProfileDatabase::CounterRows Rows = W->context().Counters.snapshot();
    // Worker points live in the worker's own interning table; translate
    // to the target table so the merged database speaks its identities.
    for (auto &[Src, Count] : Rows)
      Src = Sources.intern(Src->File, Src->BeginOffset, Src->EndOffset,
                           Src->Line, Src->Column, Src->Generated);
    Db.addDataset(Rows); // all-zero data sets are ignored, as always
  }
}

std::array<AllocSiteStats, NumAllocSites> EnginePool::mergedSiteStats() const {
  std::array<AllocSiteStats, NumAllocSites> Merged{};
  for (const std::unique_ptr<Engine> &W : Workers) {
    const auto &Sites =
        const_cast<Engine &>(*W).context().TheHeap.siteStats();
    for (size_t I = 0; I < NumAllocSites; ++I)
      Merged[I].merge(Sites[I]);
  }
  return Merged;
}

ProfileOpResult EnginePool::storeMergedProfile(const std::string &Path) {
  Context &C0 = Workers[0]->context();
  C0.Stats.bump(Stat::ProfileStores);
  // Same protocol as Engine::storeProfile: serialize a merged snapshot
  // first, commit the merge and reset counters only once the file is
  // safely on disk — a failed store must not destroy the counter data it
  // failed to persist.
  ProfileDatabase Merged = C0.ProfileDb;
  uint64_t Before = Merged.numDatasets();
  {
    ScopedPhase Timer(C0.Stats, &C0.Trace, Phase::CounterFold);
    mergeCountersInto(Merged, C0.Sources);
  }
  // The file store is just one transport under the unified lifecycle:
  // persist through it, then commit (the transport owns the I/O phase).
  FileProfileTransport Transport(Path);
  if (ProfileOpResult P = Transport.persist(C0, Merged); !P)
    return P;
  uint64_t DatasetsFolded = Merged.numDatasets() - Before;
  for (std::unique_ptr<Engine> &W : Workers) {
    Context &C = W->context();
    C.Stats.bump(Stat::CounterIncrements, C.Counters.totalIncrements());
    C.Counters.reset();
  }
  C0.Stats.bump(Stat::DatasetMerges, DatasetsFolded);
  C0.ProfileDb = Merged;
  ProfileOpResult R;
  R.DatasetsMerged = DatasetsFolded;
  R.PointsLoaded = Merged.numPoints();
  return R;
}
