//===- core/EnginePool.cpp ------------------------------------------------===//

#include "core/EnginePool.h"

#include "profile/ProfileIO.h"

#include <thread>

using namespace pgmp;

EnginePool::EnginePool(size_t Jobs, const EngineOptions &Opts) {
  if (Jobs == 0)
    Jobs = 1;
  Workers.reserve(Jobs);
  for (size_t I = 0; I < Jobs; ++I)
    Workers.push_back(std::make_unique<Engine>(Opts));
}

EnginePool::~EnginePool() = default;

EnginePool::PoolResult EnginePool::run(const WorkerTask &Task) {
  PoolResult R;
  R.PerWorker.resize(Workers.size());
  std::vector<std::thread> Threads;
  Threads.reserve(Workers.size());
  for (size_t I = 0; I < Workers.size(); ++I)
    Threads.emplace_back([this, &Task, &R, I] {
      // Each thread touches only its own worker and its own result slot;
      // evalString already converts SchemeErrors, so only foreign
      // exceptions need catching here.
      try {
        R.PerWorker[I] = Task(*Workers[I], I);
      } catch (const std::exception &E) {
        R.PerWorker[I].Ok = false;
        R.PerWorker[I].Error = E.what();
      } catch (...) {
        R.PerWorker[I].Ok = false;
        R.PerWorker[I].Error = "unknown exception";
      }
    });
  // The join is load-bearing: it is the happens-before edge that makes
  // aggregating the workers' counter pages race-free.
  for (std::thread &T : Threads)
    T.join();
  for (size_t I = 0; I < Workers.size(); ++I)
    if (!R.PerWorker[I].Ok) {
      R.Ok = false;
      R.Error = "worker " + std::to_string(I) + ": " + R.PerWorker[I].Error;
      break;
    }
  return R;
}

EnginePool::PoolResult
EnginePool::runFiles(const std::vector<std::string> &Files) {
  return run([&Files](Engine &E, size_t) {
    EvalResult Last;
    Last.Ok = true; // an empty workload is vacuously fine
    for (const std::string &F : Files) {
      Last = E.evalFile(F);
      if (!Last)
        break;
    }
    return Last;
  });
}

ProfileOpResult EnginePool::loadProfileAll(const std::string &Path) {
  ProfileOpResult R;
  for (std::unique_ptr<Engine> &W : Workers) {
    R = W->loadProfile(Path);
    if (!R)
      return R;
  }
  return R;
}

void EnginePool::preRegisterFile(const std::string &Path) {
  for (std::unique_ptr<Engine> &W : Workers) {
    FileId Id;
    (void)W->context().SrcMgr.addFile(Path, Id); // missing files error later
  }
}

void EnginePool::mergeCountersInto(ProfileDatabase &Db,
                                   SourceObjectTable &Sources) {
  for (std::unique_ptr<Engine> &W : Workers) {
    ProfileDatabase::CounterRows Rows = W->context().Counters.snapshot();
    // Worker points live in the worker's own interning table; translate
    // to the target table so the merged database speaks its identities.
    for (auto &[Src, Count] : Rows)
      Src = Sources.intern(Src->File, Src->BeginOffset, Src->EndOffset,
                           Src->Line, Src->Column, Src->Generated);
    Db.addDataset(Rows); // all-zero data sets are ignored, as always
  }
}

ProfileOpResult EnginePool::storeMergedProfile(const std::string &Path) {
  Context &C0 = Workers[0]->context();
  C0.Stats.bump(Stat::ProfileStores);
  // Same protocol as Engine::storeProfile: serialize a merged snapshot
  // first, commit the merge and reset counters only once the file is
  // safely on disk — a failed store must not destroy the counter data it
  // failed to persist.
  ProfileDatabase Merged = C0.ProfileDb;
  uint64_t Before = Merged.numDatasets();
  {
    ScopedPhase Timer(C0.Stats, &C0.Trace, Phase::CounterFold);
    mergeCountersInto(Merged, C0.Sources);
  }
  std::string Err;
  {
    ScopedPhase Timer(C0.Stats, &C0.Trace, Phase::ProfileStore);
    if (!storeProfileFile(Merged, Path, &C0.SrcMgr, &Err))
      return ProfileOpResult::failure("cannot write profile file: " + Path +
                                      " (" + Err + ")");
  }
  uint64_t DatasetsFolded = Merged.numDatasets() - Before;
  for (std::unique_ptr<Engine> &W : Workers) {
    Context &C = W->context();
    C.Stats.bump(Stat::CounterIncrements, C.Counters.totalIncrements());
    C.Counters.reset();
  }
  C0.Stats.bump(Stat::DatasetMerges, DatasetsFolded);
  C0.ProfileDb = Merged;
  ProfileOpResult R;
  R.DatasetsMerged = DatasetsFolded;
  R.PointsLoaded = Merged.numPoints();
  return R;
}
