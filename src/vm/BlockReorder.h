//===- vm/BlockReorder.h - Profile-guided block layout --------*- C++ -*-===//
///
/// \file
/// The block-level PGO itself: given block execution counts, lay out each
/// function's blocks hottest-first (entry pinned first). The linearizer
/// then turns hot fallthroughs into straight-line code and flips branch
/// polarity so the frequent successor falls through — the classic code
/// positioning optimization the paper cites from GCC/.NET/LLVM.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_VM_BLOCKREORDER_H
#define PGMP_VM_BLOCKREORDER_H

#include "vm/Bytecode.h"

namespace pgmp {

/// Reorders one function by its block counts and re-linearizes.
void reorderBlocksByProfile(VmFunction &Fn);

/// Applies reorderBlocksByProfile to every function of \p Module.
void applyProfileGuidedLayout(VmModule &Module);

/// Restores the original (source) block order.
void restoreOriginalLayout(VmModule &Module);

} // namespace pgmp

#endif // PGMP_VM_BLOCKREORDER_H
