//===- vm/Fusion.h - Profile-selected superinstruction fusion -*- C++ -*-===//
///
/// \file
/// Superinstruction fusion for the tier-up compiler: adjacent hot opcode
/// pairs are rewritten into single fused dispatches against a per-epoch
/// FusionTable. The candidate set is static (the dominant pairs measured
/// on BenchTieredExec and the case-study kernels); *which* candidates are
/// enabled is profile-selected — TierBackend::fuse() re-weighs every
/// candidate from the block profiles observed so far and re-tiers stale
/// code when the selection changes.
///
/// The hard invariant is counter fidelity: fusion only pairs literally
/// adjacent non-profile instructions, so ProfileSrc/ProfileBlock bumps are
/// never moved, merged, or skipped — an instrumented run produces
/// byte-identical profiles with fusion on or off. structuralHash() hashes
/// fused ops as their expansion (expandInstr) for the same reason: fusion
/// must be invisible to block-profile validation.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_VM_FUSION_H
#define PGMP_VM_FUSION_H

#include "vm/Bytecode.h"

#include <cstddef>
#include <cstdint>

namespace pgmp {

/// One fusable pair: (First, Second) adjacent in a block rewrite to Fused.
/// Wide (round-2) entries have a fused op as First (or a Peek, which only
/// inlined code emits) and name the base candidates they compose via
/// Dep1/Dep2 — their enablement derives from the bases' mask bits instead
/// of carrying bits of their own.
struct FusionCandidate {
  Op First;
  Op Second;
  Op Fused;
  const char *Name;  ///< stable label for reports and stats
  int8_t Dep1 = -1;  ///< base candidate this wide op composes (or -1)
  int8_t Dep2 = -1;  ///< second base candidate (or -1)
};

/// Number of profile-selected candidate pairs (indexes the weights array
/// and the table mask). The census and the pgmpi report speak in these.
constexpr size_t NumFusionCandidates = 7;

/// Total candidate table size: the 7 selected pairs plus the wide
/// round-2 entries derived from them.
constexpr size_t NumFusionOps = 13;

/// The static candidate table, indexed 0..NumFusionOps-1.
const FusionCandidate &fusionCandidate(size_t I);

/// Mask with every candidate enabled (the default selection used until
/// block profiles say otherwise).
constexpr uint32_t AllFusionsMask = (1u << NumFusionCandidates) - 1;

/// The per-epoch fusion selection. One lives on the VM's TierBackend;
/// Epoch bumps only when the enabled set actually changes, which is what
/// lets invalidation skip work on quiet epochs. Wide candidates
/// (NumFusionCandidates <= C < NumFusionOps) are enabled exactly when
/// every base candidate they compose is.
struct FusionTable {
  uint64_t Epoch = 1;
  uint32_t Mask = AllFusionsMask;
  bool enabled(size_t Candidate) const;
};

/// Candidate index fused by the adjacent pair (I then J), or -1 when the
/// pair is not fusable (profile ops never are; LocalRef only at depth 0).
int matchFusedPair(const Instr &I, const Instr &J);

/// Builds the fused instruction for candidate \p Candidate over the
/// matched pair (I, J).
Instr buildFusedInstr(size_t Candidate, const Instr &I, const Instr &J);

/// Writes the one-level unfused expansion of \p I into \p Out (1 or 2
/// entries); returns the count. A wide op expands into its two fused
/// components. Non-fused instructions expand to themselves.
size_t expandInstr(const Instr &I, Instr Out[2]);

/// Appends the fully raw expansion of \p I to \p Out: expandInstr
/// applied to fixpoint, so wide ops flatten through their fused
/// components. structuralHash and the pair census use this — fusion at
/// any depth must be invisible to both.
void flattenInstr(const Instr &I, std::vector<Instr> &Out);

/// Rewrites every block of \p Fn against \p Table: greedy left-to-right,
/// non-overlapping, enabled candidates only. Call before linearize().
/// Returns the number of pairs fused.
size_t fuseFunction(VmFunction &Fn, const FusionTable &Table);

/// Accumulates the pair census of \p Fn into \p Weights (size
/// NumFusionCandidates) and \p Total: every fusable adjacency — counting
/// already-fused ops as their expansion, so fused code still votes for
/// its pairs — weighted by the containing block's ProfileCount when
/// \p UseBlockCounts, else by \p FlatWeight. TierBackend::fuse() uses
/// block counts; the pgmpi report table weighs a whole function by its
/// source-profile weight.
void accumulatePairCensus(const VmFunction &Fn, bool UseBlockCounts,
                          double FlatWeight, double Weights[], double &Total);

} // namespace pgmp

#endif // PGMP_VM_FUSION_H
