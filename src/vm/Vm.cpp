//===- vm/Vm.cpp ----------------------------------------------------------===//

#include "vm/Vm.h"

#include "interp/Compiler.h"
#include "interp/Eval.h"
#include "reader/Reader.h"
#include "support/Diagnostics.h"

using namespace pgmp;

namespace {

/// Builds the frame for a VM function call, checking arity.
EnvObj *buildVmFrame(Context &Ctx, const VmFunction *Fn, EnvObj *Captured,
                     Value *Args, size_t NumArgs) {
  size_t Fixed = Fn->NumParams;
  if (NumArgs < Fixed || (!Fn->HasRest && NumArgs > Fixed))
    raiseError("vm procedure " +
               (Fn->Name.empty() ? std::string("<anonymous>") : Fn->Name) +
               " expects " + std::to_string(Fixed) + (Fn->HasRest ? "+" : "") +
               " arguments, got " + std::to_string(NumArgs));
  EnvObj *Frame = Ctx.TheHeap.make<EnvObj>(Captured, Fn->FrameSlots);
  for (size_t I = 0; I < Fixed; ++I)
    Frame->Slots[I] = Args[I];
  if (Fn->HasRest) {
    Value Rest = Value::nil();
    for (size_t I = NumArgs; I > Fixed; --I)
      Rest = Ctx.TheHeap.cons(Args[I - 1], Rest);
    Frame->Slots[Fixed] = Rest;
  }
  return Frame;
}

} // namespace

Value pgmp::runVmFunction(Context &Ctx, VmFunction *Fn, EnvObj *Captured,
                          Value *Args, size_t NumArgs) {
  EnvObj *Frame = buildVmFrame(Ctx, Fn, Captured, Args, NumArgs);
  std::vector<Value> Stack;
  size_t Pc = 0;

  auto Pop = [&Stack]() {
    assert(!Stack.empty() && "vm stack underflow");
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  };

  VmModule::Stats *Stats = &Fn->Owner->RunStats;
  while (true) {
    assert(Pc < Fn->Linear.size() && "vm pc out of range");
    const Instr &I = Fn->Linear[Pc];
    ++Stats->InstructionsExecuted;
    switch (I.K) {
    case Op::Const:
      Stack.push_back(Fn->Pool[static_cast<size_t>(I.A)]);
      ++Pc;
      break;
    case Op::LocalRef: {
      EnvObj *F = Frame;
      for (int32_t D = 0; D < I.A; ++D)
        F = F->Parent;
      Stack.push_back(F->Slots[static_cast<size_t>(I.B)]);
      ++Pc;
      break;
    }
    case Op::GlobalRef: {
      Value *Cell = Fn->Cells[static_cast<size_t>(I.A)];
      if (Cell->isUnbound())
        raiseError("unbound variable " +
                   Fn->CellNames[static_cast<size_t>(I.A)]->Name);
      Stack.push_back(*Cell);
      ++Pc;
      break;
    }
    case Op::SetLocal: {
      Value V = Pop();
      EnvObj *F = Frame;
      for (int32_t D = 0; D < I.A; ++D)
        F = F->Parent;
      F->Slots[static_cast<size_t>(I.B)] = V;
      Stack.push_back(Value::undefined());
      ++Pc;
      break;
    }
    case Op::SetGlobal: {
      Value *Cell = Fn->Cells[static_cast<size_t>(I.A)];
      if (Cell->isUnbound())
        raiseError("set! of unbound variable " +
                   Fn->CellNames[static_cast<size_t>(I.A)]->Name);
      *Cell = Pop();
      Stack.push_back(Value::undefined());
      ++Pc;
      break;
    }
    case Op::DefineGlobal:
      *Fn->Cells[static_cast<size_t>(I.A)] = Pop();
      Stack.push_back(Value::undefined());
      ++Pc;
      break;
    case Op::MakeClosure: {
      const VmFunction *Sub = Fn->SubFunctions[static_cast<size_t>(I.A)];
      Stack.push_back(Value::object(
          ValueKind::VmClosure, Ctx.TheHeap.make<VmClosure>(Sub, Frame)));
      ++Pc;
      break;
    }
    case Op::Call:
    case Op::TailCall: {
      size_t N = static_cast<size_t>(I.A);
      assert(Stack.size() >= N + 1 && "vm call stack underflow");
      Value *CallArgs = Stack.data() + (Stack.size() - N);
      Value Callee = Stack[Stack.size() - N - 1];

      if (I.K == Op::TailCall && Callee.isVmClosure()) {
        // Reuse this invocation: rebind and restart.
        VmClosure *C = asVmClosure(Callee);
        Frame = buildVmFrame(Ctx, C->Fn, C->Captured, CallArgs, N);
        Fn = const_cast<VmFunction *>(C->Fn);
        Stats = &Fn->Owner->RunStats;
        Stack.clear();
        Pc = 0;
        break;
      }

      Value Result;
      if (Callee.isVmClosure()) {
        VmClosure *C = asVmClosure(Callee);
        Result = runVmFunction(Ctx, const_cast<VmFunction *>(C->Fn),
                               C->Captured, CallArgs, N);
      } else {
        Result = applyProcedure(Ctx, Callee, CallArgs, N);
      }
      if (I.K == Op::TailCall)
        return Result;
      Stack.resize(Stack.size() - N - 1);
      Stack.push_back(Result);
      ++Pc;
      break;
    }
    case Op::Jump:
      ++Stats->JumpsTaken;
      Pc = static_cast<size_t>(Fn->BlockStart[static_cast<size_t>(I.A)]);
      break;
    case Op::BranchFalse:
      if (!Pop().isTruthy()) {
        ++Stats->JumpsTaken;
        Pc = static_cast<size_t>(Fn->BlockStart[static_cast<size_t>(I.A)]);
      } else {
        ++Pc;
      }
      break;
    case Op::BranchTrue:
      if (Pop().isTruthy()) {
        ++Stats->JumpsTaken;
        Pc = static_cast<size_t>(Fn->BlockStart[static_cast<size_t>(I.A)]);
      } else {
        ++Pc;
      }
      break;
    case Op::Return:
      return Pop();
    case Op::Pop:
      Pop();
      ++Pc;
      break;
    case Op::ProfileBlock:
      ++Fn->Blocks[static_cast<size_t>(I.A)].ProfileCount;
      ++Pc;
      break;
    }
  }
}

static Value vmApplyHook(Context &Ctx, Value Fn, Value *Args, size_t N) {
  VmClosure *C = asVmClosure(Fn);
  return runVmFunction(Ctx, const_cast<VmFunction *>(C->Fn), C->Captured,
                       Args, N);
}

void pgmp::installVm(Context &Ctx) { Ctx.VmApplyHook = vmApplyHook; }

//===----------------------------------------------------------------------===//
// VmRunner
//===----------------------------------------------------------------------===//

VmRunner::VmRunner(Engine &E) : E(E) { installVm(E.context()); }

EvalResult VmRunner::evalString(const std::string &Source,
                                const std::string &Name,
                                const VmCompileOptions &Opts) {
  EvalResult R;
  Context &Ctx = E.context();
  try {
    auto Module = std::make_unique<VmModule>();
    Ctx.SrcMgr.addBuffer(Name, Source);
    Reader Rd(Ctx.TheHeap, Ctx.Symbols, Ctx.Sources, Source, Name);
    Value Last = Value::undefined();
    auto ReadOne = [&] {
      ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Read);
      return Rd.readOne();
    };
    while (auto Form = ReadOne()) {
      std::vector<Value> Cores;
      {
        ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Expand);
        Cores = E.expander().expandTopLevel(*Form);
      }
      for (Value Core : Cores) {
        std::unique_ptr<CodeUnit> Unit;
        {
          ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Compile);
          Unit = compileCore(Ctx, Core);
        }
        VmFunction *Top;
        {
          ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::VmCompile);
          Top = compileExprToVm(Ctx, Unit->Root, *Module, Opts);
        }
        Ctx.adoptCode(std::move(Unit));
        {
          ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Eval);
          Last = runVmFunction(Ctx, Top, nullptr, nullptr, 0);
        }
      }
    }
    Modules.push_back(std::move(Module));
    R.Ok = true;
    R.V = Last;
  } catch (const SchemeError &Err) {
    R.Ok = false;
    R.Error = Err.render();
  }
  return R;
}
