//===- vm/Vm.cpp ----------------------------------------------------------===//

#include "vm/Vm.h"

#include "interp/Compiler.h"
#include "interp/Eval.h"
#include "interp/TierBackend.h"
#include "reader/Reader.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"
#include "vm/Fusion.h"

#include <unordered_map>

using namespace pgmp;

// Token-threaded dispatch needs the GNU labels-as-values extension.
// Define PGMP_VM_SWITCH_DISPATCH to force the portable switch loop
// (useful for A/B-ing dispatch strategies on the same compiler).
#if (defined(__GNUC__) || defined(__clang__)) && !defined(PGMP_VM_SWITCH_DISPATCH)
#define PGMP_VM_THREADED 1
#else
#define PGMP_VM_THREADED 0
#endif

// The VM's operand stack lives in uninitialized raw storage.
static_assert(std::is_trivially_copyable_v<Value> &&
                  std::is_trivially_destructible_v<Value>,
              "vm stack buffers assume Value needs no construction");

namespace {

[[noreturn]] void vmArityError(const VmFunction *Fn, size_t NumArgs) {
  raiseError("vm procedure " +
             (Fn->Name.empty() ? std::string("<anonymous>") : Fn->Name) +
             " expects " + std::to_string(Fn->NumParams) +
             (Fn->HasRest ? "+" : "") + " arguments, got " +
             std::to_string(NumArgs));
}

/// Builds the frame for a VM function call, checking arity. Mirrors the
/// interpreter's buildFrame: non-rest functions take a branch-free copy
/// loop; rest functions cons only when surplus arguments exist.
EnvObj *buildVmFrame(Context &Ctx, const VmFunction *Fn, EnvObj *Captured,
                     Value *Args, size_t NumArgs) {
  size_t Fixed = Fn->NumParams;
  if (!Fn->HasRest) {
    if (NumArgs != Fixed)
      vmArityError(Fn, NumArgs);
    return Ctx.TheHeap.makeEnvFrom(Captured, Fn->FrameSlots, Args, Fixed,
                                   AllocSite::VmFrame);
  }
  if (NumArgs < Fixed)
    vmArityError(Fn, NumArgs);
  EnvObj *Frame = Ctx.TheHeap.makeEnvFrom(Captured, Fn->FrameSlots, Args,
                                          Fixed, AllocSite::VmFrame);
  Value Rest = Value::nil();
  if (NumArgs > Fixed)
    for (size_t I = NumArgs; I > Fixed; --I)
      Rest = Ctx.TheHeap.cons(Args[I - 1], Rest, AllocSite::VmRestArgs);
  Frame->slots()[Fixed] = Rest;
  return Frame;
}

/// Fixnum fast paths for the intrinsic-tagged primitives (Heap.h). Wrap
/// semantics and compare-as-double match the registered handlers exactly
/// (primAdd accumulates in int64, compareChain compares doubles), so a
/// hit produces the same Value the handler would; any non-fixnum operand
/// misses and takes the ordinary handler call.
inline bool tryPrimIntrinsic(const Primitive *P, Value *A, size_t N,
                             Value &Out) {
  if (P->Intr == PrimIntrinsic::None)
    return false;
  if (N == 1) {
    if (P->Intr == PrimIntrinsic::ZeroP && A[0].isFixnum()) {
      Out = Value::boolean(A[0].asFixnum() == 0);
      return true;
    }
    return false;
  }
  if (N == 3 && A[0].isFixnum() && A[1].isFixnum() && A[2].isFixnum()) {
    // Ternary chains ((+ a b c), (* k x x)) are as common as binary ones
    // in arithmetic-heavy kernels; same int64 wrap as the handlers.
    if (P->Intr == PrimIntrinsic::Add) {
      Out = Value::fixnum(A[0].asFixnum() + A[1].asFixnum() +
                          A[2].asFixnum());
      return true;
    }
    if (P->Intr == PrimIntrinsic::Mul) {
      Out = Value::fixnum(A[0].asFixnum() * A[1].asFixnum() *
                          A[2].asFixnum());
      return true;
    }
    return false;
  }
  if (N != 2 || !A[0].isFixnum() || !A[1].isFixnum())
    return false;
  int64_t X = A[0].asFixnum(), Y = A[1].asFixnum();
  switch (P->Intr) {
  case PrimIntrinsic::Add:
    Out = Value::fixnum(X + Y);
    return true;
  case PrimIntrinsic::Sub:
    Out = Value::fixnum(X - Y);
    return true;
  case PrimIntrinsic::Mul:
    Out = Value::fixnum(X * Y);
    return true;
  case PrimIntrinsic::NumEq:
    Out = Value::boolean(static_cast<double>(X) == static_cast<double>(Y));
    return true;
  case PrimIntrinsic::Lt:
    Out = Value::boolean(static_cast<double>(X) < static_cast<double>(Y));
    return true;
  case PrimIntrinsic::Gt:
    Out = Value::boolean(static_cast<double>(X) > static_cast<double>(Y));
    return true;
  case PrimIntrinsic::Le:
    Out = Value::boolean(static_cast<double>(X) <= static_cast<double>(Y));
    return true;
  case PrimIntrinsic::Ge:
    Out = Value::boolean(static_cast<double>(X) >= static_cast<double>(Y));
    return true;
  default:
    return false;
  }
}

} // namespace

/// The dispatch loop, specialized on whether guards are armed. Guard
/// charging mirrors the interpreter exactly: one fuel unit (and one
/// depth level) per entry here, one fuel unit per taken back edge or
/// tail-call restart — so an application costs the same budget no
/// matter which tier runs it. The flag is a template parameter rather
/// than a runtime bool so the unguarded instantiation — the common case
/// and the one benchmarks run — carries no guard checks in the loop at
/// all (a per-step branch was measurable on tiered kernels).
template <bool GuardOn>
static Value runVmLoop(Context &Ctx, VmFunction *Fn, EnvObj *Captured,
                       Value *Args, size_t NumArgs) {
  ExecGuard &Guard = Ctx.Guard;
  if constexpr (GuardOn)
    Guard.enterCall();
  // Frameless functions (leaf-style: nothing captures the frame) keep
  // their locals in LocalBuf — no EnvObj, no slot vector, no allocation
  // per call. Framed functions bind a heap frame as before. Either way,
  // depth-0 local refs go through Slots0 and deeper refs walk Chain.
  Value LocalBuf[8];
  EnvObj *Frame = nullptr; ///< non-null only in framed mode
  Value *Slots0 = nullptr;
  EnvObj *Chain = nullptr;
  auto BindFrame = [&](const VmFunction *F, EnvObj *Env, Value *A, size_t N) {
    if (F->Frameless) {
      if (N != F->NumParams)
        vmArityError(F, N);
      for (size_t J = 0; J < N; ++J)
        LocalBuf[J] = A[J];
      Frame = nullptr;
      Slots0 = LocalBuf;
    } else {
      Frame = buildVmFrame(Ctx, F, Env, A, N);
      Slots0 = Frame->slots();
    }
    Chain = Env;
  };
  BindFrame(Fn, Captured, Args, NumArgs);

  // Operand stack: a fixed inline buffer covers almost every function
  // (MaxStack is the analyzed worst case); deeper functions fall back to
  // a heap buffer. Growth only ever happens at Sp == 0 (entry or a tail
  // restart), so no live values need copying. Raw storage on purpose:
  // Value is trivially copyable and zeroing 48 of them per invocation is
  // measurable on leaf-heavy workloads.
  constexpr size_t InlineCap = 48;
  alignas(Value) unsigned char InlineRaw[InlineCap * sizeof(Value)];
  std::vector<Value> HeapBuf;
  Value *Stack = reinterpret_cast<Value *>(InlineRaw);
  size_t Cap = InlineCap;
  size_t Sp = 0;
  auto EnsureCap = [&](size_t Need) {
    if (Need <= Cap)
      return;
    assert(Sp == 0 && "vm stack growth with live operands");
    HeapBuf.resize(Need < Cap * 2 ? Cap * 2 : Need);
    Stack = HeapBuf.data();
    Cap = HeapBuf.size();
  };
  EnsureCap(Fn->MaxStack);

  size_t Pc = 0;
  // The instruction pointer base: one register instead of re-chasing
  // Fn->Linear's data pointer on every dispatch. Rebound only where Fn
  // itself rebinds (tail-call restarts).
  const Instr *Code = Fn->Linear.data();

  auto Pop = [&]() {
    assert(Sp > 0 && "vm stack underflow");
    return Stack[--Sp];
  };
  auto Push = [&](Value V) {
    assert(Sp < Cap && "vm stack overflow past MaxStack analysis");
    Stack[Sp++] = V;
  };

  // Dispatch-loop counters live in locals and flush to the owning
  // module's RunStats at returns and function switches; a per-instruction
  // memory increment costs more than the bookkeeping is worth.
  VmModule::Stats *Stats = &Fn->Owner->RunStats;
  uint64_t Instrs = 0, Jumps = 0;
  auto FlushStats = [&] {
    Stats->InstructionsExecuted += Instrs;
    Stats->JumpsTaken += Jumps;
    Instrs = 0;
    Jumps = 0;
  };


  // Non-tail call path shared by the fused call ops: callee sits below
  // the N arguments; result replaces callee + args. Mirrors the Op::Call
  // case below (which keeps its own copy because TailCall shares its
  // callee resolution).
  auto RunCall = [&](size_t N) {
    Value *CallArgs = Stack + (Sp - N);
    Value Callee = Stack[Sp - N - 1];
    const VmFunction *Target = nullptr;
    EnvObj *TargetEnv = nullptr;
    if (Callee.isVmClosure()) {
      VmClosure *C = asVmClosure(Callee);
      Target = C->Fn;
      TargetEnv = C->Captured;
    } else if (Callee.isClosure()) {
      Closure *C = Callee.asClosure();
      if (const VmFunction *VF = tieredFunctionFor(Ctx, C->Template)) {
        Target = VF;
        TargetEnv = C->Captured;
      }
    }
    Value Result;
    if (Target) {
      Result = runVmLoop<GuardOn>(Ctx, const_cast<VmFunction *>(Target),
                                  TargetEnv, CallArgs, N);
    } else if (Callee.isPrimitive()) {
      Primitive *P = Callee.asPrimitive();
      if (!tryPrimIntrinsic(P, CallArgs, N, Result)) {
        if (static_cast<int>(N) < P->MinArgs ||
            (P->MaxArgs >= 0 && static_cast<int>(N) > P->MaxArgs))
          raiseError("primitive " + P->Name + " got " + std::to_string(N) +
                     " arguments");
        Result = P->Fn(Ctx, CallArgs, N);
      }
    } else {
      Result = applyProcedure(Ctx, Callee, CallArgs, N);
    }
    Sp -= N + 1;
    Push(Result);
  };

  // Dispatch. On GCC/Clang the loop is token-threaded (labels as
  // values): every handler ends by jumping straight to the next
  // handler, so the branch predictor sees one indirect branch per
  // opcode site instead of a single shared dispatch branch, and learns
  // per-opcode successor patterns. The switch build is kept as the
  // portable fallback and as the reference semantics: both forms run
  // the same handler bodies via VM_CASE/VM_NEXT.
  Instr I;
#if PGMP_VM_THREADED
  static const void *const JumpTable[] = {
      &&Lb_Const,       &&Lb_LocalRef,    &&Lb_GlobalRef,
      &&Lb_SetLocal,    &&Lb_SetGlobal,   &&Lb_DefineGlobal,
      &&Lb_MakeClosure, &&Lb_Call,        &&Lb_TailCall,
      &&Lb_Jump,        &&Lb_BranchFalse, &&Lb_BranchTrue,
      &&Lb_Return,      &&Lb_Pop,         &&Lb_ProfileBlock,
      &&Lb_ProfileSrc,  &&Lb_LocalLocal,  &&Lb_LocalConst,
      &&Lb_GlobalLocal, &&Lb_GlobalConst, &&Lb_LocalCall,
      &&Lb_ConstCall,   &&Lb_CallBranchFalse,
      &&Lb_Peek,        &&Lb_Squash,      &&Lb_GlobalIs,
      &&Lb_GuardEnter,  &&Lb_GuardLeave,
      &&Lb_GlobalLocalConstCall,          &&Lb_GlobalLocalLocalCall,
      &&Lb_GlobalConstPeek,               &&Lb_PeekCall,
      &&Lb_GuardEnterGlobal,              &&Lb_GuardLeaveSquash,
  };
  static_assert(sizeof(JumpTable) / sizeof(JumpTable[0]) == NumOps,
                "jump table must cover every opcode in enum order");
#define VM_CASE(op) Lb_##op
#define VM_NEXT()                                                              \
  do {                                                                         \
    assert(Pc < Fn->Linear.size() && "vm pc out of range");                    \
    I = Code[Pc];                                                              \
    ++Instrs;                                                                  \
    goto *JumpTable[static_cast<size_t>(I.K)];                                 \
  } while (0)
  VM_NEXT();
#else
#define VM_CASE(op) case Op::op
#define VM_NEXT() break
  while (true) {
    assert(Pc < Fn->Linear.size() && "vm pc out of range");
    I = Code[Pc];
    ++Instrs;
    switch (I.K) {
#endif
    VM_CASE(Const):
      Push(Fn->Pool[static_cast<size_t>(I.A)]);
      ++Pc;
      VM_NEXT();
    VM_CASE(LocalRef): {
      if (I.A == 0) {
        Push(Slots0[static_cast<size_t>(I.B)]);
        ++Pc;
        VM_NEXT();
      }
      EnvObj *F = Chain;
      for (int32_t D = 1; D < I.A; ++D)
        F = F->Parent;
      Push(F->slots()[static_cast<size_t>(I.B)]);
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(GlobalRef): {
      Value *Cell = Fn->Cells[static_cast<size_t>(I.A)];
      if (Cell->isUnbound())
        raiseError("unbound variable " +
                   Fn->CellNames[static_cast<size_t>(I.A)]->Name);
      Push(*Cell);
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(SetLocal): {
      Value V = Pop();
      if (I.A == 0) {
        Slots0[static_cast<size_t>(I.B)] = V;
      } else {
        EnvObj *F = Chain;
        for (int32_t D = 1; D < I.A; ++D)
          F = F->Parent;
        F->slots()[static_cast<size_t>(I.B)] = V;
      }
      Push(Value::undefined());
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(SetGlobal): {
      Value *Cell = Fn->Cells[static_cast<size_t>(I.A)];
      if (Cell->isUnbound())
        raiseError("set! of unbound variable " +
                   Fn->CellNames[static_cast<size_t>(I.A)]->Name);
      *Cell = Pop();
      Push(Value::undefined());
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(DefineGlobal):
      *Fn->Cells[static_cast<size_t>(I.A)] = Pop();
      Push(Value::undefined());
      ++Pc;
      VM_NEXT();
    VM_CASE(MakeClosure): {
      // Frameless analysis guarantees a real frame exists here.
      assert(Frame && "MakeClosure in a frameless function");
      const VmFunction *Sub = Fn->SubFunctions[static_cast<size_t>(I.A)];
      Push(Value::object(
          ValueKind::VmClosure,
          Ctx.TheHeap.makeAt<VmClosure>(AllocSite::VmClosure, Sub, Frame)));
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(Call):
    VM_CASE(TailCall): {
      size_t N = static_cast<size_t>(I.A);
      assert(Sp >= N + 1 && "vm call stack underflow");
      Value *CallArgs = Stack + (Sp - N);
      Value Callee = Stack[Sp - N - 1];

      // Resolve callees with a bytecode body up front: VM closures, and
      // interpreter closures whose template has tiered (or tiers right
      // now — heat-up counts VM-driven applies too).
      const VmFunction *Target = nullptr;
      EnvObj *TargetEnv = nullptr;
      if (Callee.isVmClosure()) {
        VmClosure *C = asVmClosure(Callee);
        Target = C->Fn;
        TargetEnv = C->Captured;
      } else if (Callee.isClosure()) {
        Closure *C = Callee.asClosure();
        if (const VmFunction *VF = tieredFunctionFor(Ctx, C->Template)) {
          Target = VF;
          TargetEnv = C->Captured;
        }
      }

      if (I.K == Op::TailCall && Target) {
        // Reuse this invocation: rebind and restart. This keeps hot tail
        // loops in the dispatch loop instead of growing the C++ stack
        // through applyProcedure.
        if constexpr (GuardOn)
          Guard.chargeFuel(); // a tail application: fuel, never depth
        BindFrame(Target, TargetEnv, CallArgs, N);
        FlushStats();
        Fn = const_cast<VmFunction *>(Target);
        Stats = &Fn->Owner->RunStats;
        Sp = 0;
        EnsureCap(Fn->MaxStack);
        Code = Fn->Linear.data();
        Pc = 0;
        VM_NEXT();
      }

      Value Result;
      if (Target) {
        Result = runVmLoop<GuardOn>(Ctx, const_cast<VmFunction *>(Target),
                                    TargetEnv, CallArgs, N);
      } else if (Callee.isPrimitive()) {
        // Inlined primitive dispatch: arithmetic dominates call counts in
        // numeric kernels, and applyProcedure would re-branch on kind.
        Primitive *P = Callee.asPrimitive();
        if (!tryPrimIntrinsic(P, CallArgs, N, Result)) {
          if (static_cast<int>(N) < P->MinArgs ||
              (P->MaxArgs >= 0 && static_cast<int>(N) > P->MaxArgs))
            raiseError("primitive " + P->Name + " got " + std::to_string(N) +
                       " arguments");
          Result = P->Fn(Ctx, CallArgs, N);
        }
      } else {
        Result = applyProcedure(Ctx, Callee, CallArgs, N);
      }
      if (I.K == Op::TailCall) {
        FlushStats();
        if constexpr (GuardOn)
          Guard.leaveCall();
        return Result;
      }
      Sp -= N + 1;
      Push(Result);
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(Jump): {
      ++Jumps;
      size_t NewPc =
          static_cast<size_t>(Fn->BlockStart[static_cast<size_t>(I.A)]);
      // Only back edges consume fuel: forward jumps are bounded by code
      // size per application, loops are what a budget must interrupt.
      if constexpr (GuardOn)
        if (NewPc <= Pc)
          Guard.chargeFuel();
      Pc = NewPc;
      VM_NEXT();
    }
    VM_CASE(BranchFalse):
      if (!Pop().isTruthy()) {
        ++Jumps;
        size_t NewPc =
            static_cast<size_t>(Fn->BlockStart[static_cast<size_t>(I.A)]);
        if constexpr (GuardOn)
          if (NewPc <= Pc)
            Guard.chargeFuel();
        Pc = NewPc;
      } else {
        ++Pc;
      }
      VM_NEXT();
    VM_CASE(BranchTrue):
      if (Pop().isTruthy()) {
        ++Jumps;
        size_t NewPc =
            static_cast<size_t>(Fn->BlockStart[static_cast<size_t>(I.A)]);
        if constexpr (GuardOn)
          if (NewPc <= Pc)
            Guard.chargeFuel();
        Pc = NewPc;
      } else {
        ++Pc;
      }
      VM_NEXT();
    VM_CASE(Return):
      FlushStats();
      if constexpr (GuardOn)
        Guard.leaveCall();
      return Pop();
    VM_CASE(Pop):
      Pop();
      ++Pc;
      VM_NEXT();
    VM_CASE(ProfileBlock):
      ++Fn->Blocks[static_cast<size_t>(I.A)].ProfileCount;
      ++Pc;
      VM_NEXT();
    VM_CASE(ProfileSrc):
      ++*Fn->SrcCounters[static_cast<size_t>(I.A)];
      ++Pc;
      VM_NEXT();

    // Superinstructions: each is exactly its two-op expansion in one
    // dispatch (fuel/stat accounting matches a single instruction — the
    // saved dispatch is the point).
    VM_CASE(LocalLocal):
      Push(Slots0[static_cast<size_t>(I.A)]);
      Push(Slots0[static_cast<size_t>(I.B)]);
      ++Pc;
      VM_NEXT();
    VM_CASE(LocalConst):
      Push(Slots0[static_cast<size_t>(I.A)]);
      Push(Fn->Pool[static_cast<size_t>(I.B)]);
      ++Pc;
      VM_NEXT();
    VM_CASE(GlobalLocal): {
      Value *Cell = Fn->Cells[static_cast<size_t>(I.A)];
      if (Cell->isUnbound())
        raiseError("unbound variable " +
                   Fn->CellNames[static_cast<size_t>(I.A)]->Name);
      Push(*Cell);
      Push(Slots0[static_cast<size_t>(I.B)]);
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(GlobalConst): {
      Value *Cell = Fn->Cells[static_cast<size_t>(I.A)];
      if (Cell->isUnbound())
        raiseError("unbound variable " +
                   Fn->CellNames[static_cast<size_t>(I.A)]->Name);
      Push(*Cell);
      Push(Fn->Pool[static_cast<size_t>(I.B)]);
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(LocalCall):
      Push(Slots0[static_cast<size_t>(I.A)]);
      RunCall(static_cast<size_t>(I.B));
      ++Pc;
      VM_NEXT();
    VM_CASE(ConstCall):
      Push(Fn->Pool[static_cast<size_t>(I.A)]);
      RunCall(static_cast<size_t>(I.B));
      ++Pc;
      VM_NEXT();
    VM_CASE(CallBranchFalse): {
      RunCall(static_cast<size_t>(I.A));
      if (!Pop().isTruthy()) {
        ++Jumps;
        size_t NewPc =
            static_cast<size_t>(Fn->BlockStart[static_cast<size_t>(I.B)]);
        if constexpr (GuardOn)
          if (NewPc <= Pc)
            Guard.chargeFuel();
        Pc = NewPc;
      } else {
        ++Pc;
      }
      VM_NEXT();
    }

    // Inlining support.
    VM_CASE(Peek):
      Push(Stack[Sp - 1 - static_cast<size_t>(I.A)]);
      ++Pc;
      VM_NEXT();
    VM_CASE(Squash): {
      Value V = Pop();
      assert(Sp >= static_cast<size_t>(I.A) && "squash below stack base");
      Sp -= static_cast<size_t>(I.A);
      Push(V);
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(GlobalIs):
      Push(Value::boolean(*Fn->Cells[static_cast<size_t>(I.A)] ==
                          Fn->Pool[static_cast<size_t>(I.B)]));
      ++Pc;
      VM_NEXT();
    VM_CASE(GuardEnter):
      if constexpr (GuardOn)
        Guard.enterCall();
      ++Pc;
      VM_NEXT();
    VM_CASE(GuardLeave):
      if constexpr (GuardOn)
        Guard.leaveCall();
      ++Pc;
      VM_NEXT();

    // Wide superinstructions: each is its two fused components back to
    // back, components' payloads packed 16 bits apiece (Fusion.h). Same
    // fuel/stat accounting as any single instruction.
    VM_CASE(GlobalLocalConstCall): {
      Value *Cell = Fn->Cells[static_cast<size_t>(I.A) >> 16];
      if (Cell->isUnbound())
        raiseError("unbound variable " +
                   Fn->CellNames[static_cast<size_t>(I.A) >> 16]->Name);
      Push(*Cell);
      Push(Slots0[static_cast<size_t>(I.A) & 0xFFFF]);
      Push(Fn->Pool[static_cast<size_t>(I.B) >> 16]);
      RunCall(static_cast<size_t>(I.B) & 0xFFFF);
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(GlobalLocalLocalCall): {
      Value *Cell = Fn->Cells[static_cast<size_t>(I.A) >> 16];
      if (Cell->isUnbound())
        raiseError("unbound variable " +
                   Fn->CellNames[static_cast<size_t>(I.A) >> 16]->Name);
      Push(*Cell);
      Push(Slots0[static_cast<size_t>(I.A) & 0xFFFF]);
      Push(Slots0[static_cast<size_t>(I.B) >> 16]);
      RunCall(static_cast<size_t>(I.B) & 0xFFFF);
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(GlobalConstPeek): {
      Value *Cell = Fn->Cells[static_cast<size_t>(I.A) >> 16];
      if (Cell->isUnbound())
        raiseError("unbound variable " +
                   Fn->CellNames[static_cast<size_t>(I.A) >> 16]->Name);
      Push(*Cell);
      Push(Fn->Pool[static_cast<size_t>(I.A) & 0xFFFF]);
      Push(Stack[Sp - 1 - (static_cast<size_t>(I.B) >> 16)]);
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(PeekCall): {
      Push(Stack[Sp - 1 - (static_cast<size_t>(I.A) >> 16)]);
      RunCall(static_cast<size_t>(I.B) >> 16);
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(GuardEnterGlobal): {
      if constexpr (GuardOn)
        Guard.enterCall();
      Value *Cell = Fn->Cells[static_cast<size_t>(I.B) >> 16];
      if (Cell->isUnbound())
        raiseError("unbound variable " +
                   Fn->CellNames[static_cast<size_t>(I.B) >> 16]->Name);
      Push(*Cell);
      ++Pc;
      VM_NEXT();
    }
    VM_CASE(GuardLeaveSquash): {
      if constexpr (GuardOn)
        Guard.leaveCall();
      Value V = Pop();
      assert(Sp >= (static_cast<size_t>(I.B) >> 16) &&
             "squash below stack base");
      Sp -= static_cast<size_t>(I.B) >> 16;
      Push(V);
      ++Pc;
      VM_NEXT();
    }
#if !PGMP_VM_THREADED
    }
  }
#endif
#undef VM_CASE
#undef VM_NEXT
}

Value pgmp::runVmFunction(Context &Ctx, VmFunction *Fn, EnvObj *Captured,
                          Value *Args, size_t NumArgs) {
  // One branch per outermost entry picks the instantiation; guard
  // activation only changes at run boundaries, so the choice is stable
  // for the whole invocation (including nested non-tail calls, which
  // stay inside the chosen instantiation).
  if (Ctx.Guard.Active)
    return runVmLoop<true>(Ctx, Fn, Captured, Args, NumArgs);
  return runVmLoop<false>(Ctx, Fn, Captured, Args, NumArgs);
}

static Value vmApplyHook(Context &Ctx, Value Fn, Value *Args, size_t N) {
  VmClosure *C = asVmClosure(Fn);
  return runVmFunction(Ctx, const_cast<VmFunction *>(C->Fn), C->Captured,
                       Args, N);
}

namespace {

/// The VM's TierBackend (interp/TierBackend.h): tier-up compilation with
/// profile-selected superinstruction fusion and call-site inlining,
/// bytecode execution, per-epoch fusion-table re-selection, and stale-code
/// invalidation. Each tiered lambda gets its own little module, owned
/// here; modules live as long as the backend (i.e. the Context, which
/// holds it by shared_ptr) because closures keep running their code —
/// including code invalidated later, which stays valid for frames already
/// executing it.
class VmTierBackend : public TierBackend {
public:
  const VmFunction *compile(Context &Ctx, const LambdaExpr *L) override {
    ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::TierCompile);
    auto Module = std::make_shared<VmModule>();
    VmCompileOptions Opts;
    // Source-counter bumps are gated per node on Expr::Counter, so this
    // is free for uninstrumented units and mandatory for instrumented
    // ones — profiles must not depend on the tier that executed the code.
    Opts.ProfileSources = true;
    // Block counters feed the epoch pair census; only pay for them when a
    // bus exists to re-select the table from them.
    Opts.ProfileBlocks = Ctx.Bus != nullptr;
    if (Ctx.Tier.Fusion)
      Opts.Fusion = &Table;
    if (Ctx.Tier.Inline) {
      if (Census.lambdasSeen() != Ctx.TierLambdas.size())
        Census.build(Ctx.TierLambdas);
      Opts.Inlining = &Ctx.Tier;
      Opts.Census = &Census;
    }
    try {
      if (faultinject::shouldFail(faultinject::Point::TierCompile))
        raiseError("injected fault at phase boundary: tier-compile");
      VmFunction *Fn = compileLambdaToVm(Ctx, L, *Module, Opts);
      Modules.push_back(std::move(Module));
      L->Tiered = Fn;
      CompiledEpoch[L] = Table.Epoch;
      Ctx.Stats.bump(Stat::TierUps);
      return Fn;
    } catch (const GuardTrip &) {
      // A resource trip (fuel/deadline) mid-tier-compile must abort the
      // run, not brand the lambda TierBlocked: it can tier fine next run.
      throw;
    } catch (const SchemeError &) {
      // Phase-1-only nodes (syntax-case, templates) in the body: this
      // lambda stays interpreted forever. An injected tier-compile fault
      // takes this path too — degrading to the interpreter IS the clean
      // recovery, and profiles stay identical by counter fidelity.
      L->TierBlocked = true;
      Ctx.Stats.bump(Stat::TierCompileFails);
      return nullptr;
    }
  }

  Value run(Context &Ctx, const VmFunction *Fn, EnvObj *Captured, Value *Args,
            size_t NumArgs) override {
    return runVmFunction(Ctx, const_cast<VmFunction *>(Fn), Captured, Args,
                         NumArgs);
  }

  uint64_t fuse(Context &Ctx) override {
    double Weights[NumFusionCandidates] = {};
    double Total = 0;
    for (const auto &M : Modules)
      for (const auto &Fn : M->Functions)
        accumulatePairCensus(*Fn, /*UseBlockCounts=*/true, 0, Weights, Total);
    // No block-profile evidence yet: keep the default dominant set (the
    // statically measured hot pairs) rather than disabling everything.
    uint32_t Mask = AllFusionsMask;
    if (Total > 0) {
      Mask = 0;
      for (size_t I = 0; I < NumFusionCandidates; ++I)
        if (Weights[I] >= Total * Ctx.Tier.FusionMinWeight)
          Mask |= 1u << I;
    }
    if (!Ctx.Tier.Fusion)
      Mask = 0;
    if (Mask != Table.Mask) {
      Table.Mask = Mask;
      ++Table.Epoch;
      Ctx.Stats.bump(Stat::FusionEpochs);
    }
    return Table.Epoch;
  }

  size_t invalidateEpoch(Context &Ctx, uint64_t FusionEpoch) override {
    size_t N = 0;
    for (const LambdaExpr *L : Ctx.TierLambdas) {
      auto It = CompiledEpoch.find(L);
      if (It == CompiledEpoch.end() || It->second >= FusionEpoch)
        continue;
      // Drop both the live body and any demotion-parked one: each was
      // fused against the stale table. The lambda re-tiers lazily (its
      // heat marks are untouched), and in-flight frames keep running the
      // old code safely because this backend still owns its module.
      L->Tiered = nullptr;
      L->TierCache = nullptr;
      CompiledEpoch.erase(It);
      ++N;
    }
    if (N)
      Ctx.Stats.bump(Stat::TierInvalidations, N);
    return N;
  }

  void traceGcRoots(GcVisitor &V) override {
    // Bytecode constant pools embed heap Values (quoted data, strings);
    // Cells point at Context::Globals entries, which the Context traces
    // itself and whose addresses are stable, so only pools need visiting.
    for (const auto &M : Modules)
      for (const auto &Fn : M->Functions)
        for (Value &C : Fn->Pool)
          V.value(C);
  }

private:
  std::vector<std::shared_ptr<VmModule>> Modules;
  FusionTable Table;
  CallSiteCensus Census;
  /// Fusion-table epoch each lambda's live body was compiled against.
  std::unordered_map<const LambdaExpr *, uint64_t> CompiledEpoch;
};

} // namespace

void pgmp::installVm(Context &Ctx) {
  Ctx.VmApplyHook = vmApplyHook;
  if (!Ctx.Backend)
    Ctx.Backend = std::make_shared<VmTierBackend>();
  // Teach the collector to move/trace VmClosure, whose layout syntax/
  // never sees. Registered unconditionally with the hook so any engine
  // that can mint VM closures can also reclaim across them.
  Heap::ExternalKindOps Ops;
  Ops.Size = sizeof(VmClosure);
  Ops.Relocate = [](void *Mem, Obj *O) -> Obj * {
    auto *C = static_cast<VmClosure *>(O);
    auto *Copy = new (Mem) VmClosure(C->Fn, C->Captured);
    Copy->Site = C->Site;
    return Copy;
  };
  Ops.Trace = [](Obj *O, GcVisitor &V) {
    V.ptr(static_cast<VmClosure *>(O)->Captured);
  };
  Ctx.TheHeap.registerExternalKind(ValueKind::VmClosure, Ops);
}

//===----------------------------------------------------------------------===//
// VmRunner
//===----------------------------------------------------------------------===//

VmRunner::VmRunner(Engine &E) : E(E) { installVm(E.context()); }

EvalResult VmRunner::evalString(const std::string &Source,
                                const std::string &Name,
                                const VmCompileOptions &Opts) {
  EvalResult R;
  Context &Ctx = E.context();
  Ctx.Guard.beginRun();
  try {
    auto Module = std::make_unique<VmModule>();
    Ctx.SrcMgr.addBuffer(Name, Source);
    Reader Rd(Ctx.TheHeap, Ctx.Symbols, Ctx.Sources, Source, Name);
    Value Last = Value::undefined();
    auto ReadOne = [&] {
      ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Read);
      return Rd.readOne();
    };
    while (auto Form = ReadOne()) {
      std::vector<Value> Cores;
      {
        ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Expand);
        Cores = E.expander().expandTopLevel(*Form);
      }
      for (Value Core : Cores) {
        std::unique_ptr<CodeUnit> Unit;
        {
          ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Compile);
          Unit = compileCore(Ctx, Core);
        }
        VmFunction *Top;
        {
          ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::VmCompile);
          Top = compileExprToVm(Ctx, Unit->Root, *Module, Opts);
        }
        Ctx.adoptCode(std::move(Unit));
        {
          ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Eval);
          Last = runVmFunction(Ctx, Top, nullptr, nullptr, 0);
        }
      }
    }
    Modules.push_back(std::move(Module));
    R.Ok = true;
    R.V = Last;
  } catch (const GuardTrip &T) {
    R.Ok = false;
    R.Error = T.render();
    R.Tripped = T.kind();
    Ctx.Stats.bump(Stat::GuardTrips);
  } catch (const SchemeError &Err) {
    R.Ok = false;
    R.Error = Err.render();
  }
  return R;
}
