//===- vm/Vm.cpp ----------------------------------------------------------===//

#include "vm/Vm.h"

#include "interp/Compiler.h"
#include "interp/Eval.h"
#include "reader/Reader.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"

using namespace pgmp;

// The VM's operand stack lives in uninitialized raw storage.
static_assert(std::is_trivially_copyable_v<Value> &&
                  std::is_trivially_destructible_v<Value>,
              "vm stack buffers assume Value needs no construction");

namespace {

[[noreturn]] void vmArityError(const VmFunction *Fn, size_t NumArgs) {
  raiseError("vm procedure " +
             (Fn->Name.empty() ? std::string("<anonymous>") : Fn->Name) +
             " expects " + std::to_string(Fn->NumParams) +
             (Fn->HasRest ? "+" : "") + " arguments, got " +
             std::to_string(NumArgs));
}

/// Builds the frame for a VM function call, checking arity. Mirrors the
/// interpreter's buildFrame: non-rest functions take a branch-free copy
/// loop; rest functions cons only when surplus arguments exist.
EnvObj *buildVmFrame(Context &Ctx, const VmFunction *Fn, EnvObj *Captured,
                     Value *Args, size_t NumArgs) {
  size_t Fixed = Fn->NumParams;
  if (!Fn->HasRest) {
    if (NumArgs != Fixed)
      vmArityError(Fn, NumArgs);
    return Ctx.TheHeap.makeEnvFrom(Captured, Fn->FrameSlots, Args, Fixed);
  }
  if (NumArgs < Fixed)
    vmArityError(Fn, NumArgs);
  EnvObj *Frame =
      Ctx.TheHeap.makeEnvFrom(Captured, Fn->FrameSlots, Args, Fixed);
  Value Rest = Value::nil();
  if (NumArgs > Fixed)
    for (size_t I = NumArgs; I > Fixed; --I)
      Rest = Ctx.TheHeap.cons(Args[I - 1], Rest);
  Frame->slots()[Fixed] = Rest;
  return Frame;
}

} // namespace

/// The dispatch loop, specialized on whether guards are armed. Guard
/// charging mirrors the interpreter exactly: one fuel unit (and one
/// depth level) per entry here, one fuel unit per taken back edge or
/// tail-call restart — so an application costs the same budget no
/// matter which tier runs it. The flag is a template parameter rather
/// than a runtime bool so the unguarded instantiation — the common case
/// and the one benchmarks run — carries no guard checks in the loop at
/// all (a per-step branch was measurable on tiered kernels).
template <bool GuardOn>
static Value runVmLoop(Context &Ctx, VmFunction *Fn, EnvObj *Captured,
                       Value *Args, size_t NumArgs) {
  ExecGuard &Guard = Ctx.Guard;
  if constexpr (GuardOn)
    Guard.enterCall();
  // Frameless functions (leaf-style: nothing captures the frame) keep
  // their locals in LocalBuf — no EnvObj, no slot vector, no allocation
  // per call. Framed functions bind a heap frame as before. Either way,
  // depth-0 local refs go through Slots0 and deeper refs walk Chain.
  Value LocalBuf[8];
  EnvObj *Frame = nullptr; ///< non-null only in framed mode
  Value *Slots0 = nullptr;
  EnvObj *Chain = nullptr;
  auto BindFrame = [&](const VmFunction *F, EnvObj *Env, Value *A, size_t N) {
    if (F->Frameless) {
      if (N != F->NumParams)
        vmArityError(F, N);
      for (size_t J = 0; J < N; ++J)
        LocalBuf[J] = A[J];
      Frame = nullptr;
      Slots0 = LocalBuf;
    } else {
      Frame = buildVmFrame(Ctx, F, Env, A, N);
      Slots0 = Frame->slots();
    }
    Chain = Env;
  };
  BindFrame(Fn, Captured, Args, NumArgs);

  // Operand stack: a fixed inline buffer covers almost every function
  // (MaxStack is the analyzed worst case); deeper functions fall back to
  // a heap buffer. Growth only ever happens at Sp == 0 (entry or a tail
  // restart), so no live values need copying. Raw storage on purpose:
  // Value is trivially copyable and zeroing 48 of them per invocation is
  // measurable on leaf-heavy workloads.
  constexpr size_t InlineCap = 48;
  alignas(Value) unsigned char InlineRaw[InlineCap * sizeof(Value)];
  std::vector<Value> HeapBuf;
  Value *Stack = reinterpret_cast<Value *>(InlineRaw);
  size_t Cap = InlineCap;
  size_t Sp = 0;
  auto EnsureCap = [&](size_t Need) {
    if (Need <= Cap)
      return;
    assert(Sp == 0 && "vm stack growth with live operands");
    HeapBuf.resize(Need < Cap * 2 ? Cap * 2 : Need);
    Stack = HeapBuf.data();
    Cap = HeapBuf.size();
  };
  EnsureCap(Fn->MaxStack);

  size_t Pc = 0;

  auto Pop = [&]() {
    assert(Sp > 0 && "vm stack underflow");
    return Stack[--Sp];
  };
  auto Push = [&](Value V) {
    assert(Sp < Cap && "vm stack overflow past MaxStack analysis");
    Stack[Sp++] = V;
  };

  // Dispatch-loop counters live in locals and flush to the owning
  // module's RunStats at returns and function switches; a per-instruction
  // memory increment costs more than the bookkeeping is worth.
  VmModule::Stats *Stats = &Fn->Owner->RunStats;
  uint64_t Instrs = 0, Jumps = 0;
  auto FlushStats = [&] {
    Stats->InstructionsExecuted += Instrs;
    Stats->JumpsTaken += Jumps;
    Instrs = 0;
    Jumps = 0;
  };

  while (true) {
    assert(Pc < Fn->Linear.size() && "vm pc out of range");
    const Instr &I = Fn->Linear[Pc];
    ++Instrs;
    switch (I.K) {
    case Op::Const:
      Push(Fn->Pool[static_cast<size_t>(I.A)]);
      ++Pc;
      break;
    case Op::LocalRef: {
      if (I.A == 0) {
        Push(Slots0[static_cast<size_t>(I.B)]);
        ++Pc;
        break;
      }
      EnvObj *F = Chain;
      for (int32_t D = 1; D < I.A; ++D)
        F = F->Parent;
      Push(F->slots()[static_cast<size_t>(I.B)]);
      ++Pc;
      break;
    }
    case Op::GlobalRef: {
      Value *Cell = Fn->Cells[static_cast<size_t>(I.A)];
      if (Cell->isUnbound())
        raiseError("unbound variable " +
                   Fn->CellNames[static_cast<size_t>(I.A)]->Name);
      Push(*Cell);
      ++Pc;
      break;
    }
    case Op::SetLocal: {
      Value V = Pop();
      if (I.A == 0) {
        Slots0[static_cast<size_t>(I.B)] = V;
      } else {
        EnvObj *F = Chain;
        for (int32_t D = 1; D < I.A; ++D)
          F = F->Parent;
        F->slots()[static_cast<size_t>(I.B)] = V;
      }
      Push(Value::undefined());
      ++Pc;
      break;
    }
    case Op::SetGlobal: {
      Value *Cell = Fn->Cells[static_cast<size_t>(I.A)];
      if (Cell->isUnbound())
        raiseError("set! of unbound variable " +
                   Fn->CellNames[static_cast<size_t>(I.A)]->Name);
      *Cell = Pop();
      Push(Value::undefined());
      ++Pc;
      break;
    }
    case Op::DefineGlobal:
      *Fn->Cells[static_cast<size_t>(I.A)] = Pop();
      Push(Value::undefined());
      ++Pc;
      break;
    case Op::MakeClosure: {
      // Frameless analysis guarantees a real frame exists here.
      assert(Frame && "MakeClosure in a frameless function");
      const VmFunction *Sub = Fn->SubFunctions[static_cast<size_t>(I.A)];
      Push(Value::object(ValueKind::VmClosure,
                         Ctx.TheHeap.make<VmClosure>(Sub, Frame)));
      ++Pc;
      break;
    }
    case Op::Call:
    case Op::TailCall: {
      size_t N = static_cast<size_t>(I.A);
      assert(Sp >= N + 1 && "vm call stack underflow");
      Value *CallArgs = Stack + (Sp - N);
      Value Callee = Stack[Sp - N - 1];

      // Resolve callees with a bytecode body up front: VM closures, and
      // interpreter closures whose template has tiered (or tiers right
      // now — heat-up counts VM-driven applies too).
      const VmFunction *Target = nullptr;
      EnvObj *TargetEnv = nullptr;
      if (Callee.isVmClosure()) {
        VmClosure *C = asVmClosure(Callee);
        Target = C->Fn;
        TargetEnv = C->Captured;
      } else if (Callee.isClosure()) {
        Closure *C = Callee.asClosure();
        if (const VmFunction *VF = tieredFunctionFor(Ctx, C->Template)) {
          Target = VF;
          TargetEnv = C->Captured;
        }
      }

      if (I.K == Op::TailCall && Target) {
        // Reuse this invocation: rebind and restart. This keeps hot tail
        // loops in the dispatch loop instead of growing the C++ stack
        // through applyProcedure.
        if constexpr (GuardOn)
          Guard.chargeFuel(); // a tail application: fuel, never depth
        BindFrame(Target, TargetEnv, CallArgs, N);
        FlushStats();
        Fn = const_cast<VmFunction *>(Target);
        Stats = &Fn->Owner->RunStats;
        Sp = 0;
        EnsureCap(Fn->MaxStack);
        Pc = 0;
        break;
      }

      Value Result;
      if (Target) {
        Result = runVmLoop<GuardOn>(Ctx, const_cast<VmFunction *>(Target),
                                    TargetEnv, CallArgs, N);
      } else if (Callee.isPrimitive()) {
        // Inlined primitive dispatch: arithmetic dominates call counts in
        // numeric kernels, and applyProcedure would re-branch on kind.
        Primitive *P = Callee.asPrimitive();
        if (static_cast<int>(N) < P->MinArgs ||
            (P->MaxArgs >= 0 && static_cast<int>(N) > P->MaxArgs))
          raiseError("primitive " + P->Name + " got " + std::to_string(N) +
                     " arguments");
        Result = P->Fn(Ctx, CallArgs, N);
      } else {
        Result = applyProcedure(Ctx, Callee, CallArgs, N);
      }
      if (I.K == Op::TailCall) {
        FlushStats();
        if constexpr (GuardOn)
          Guard.leaveCall();
        return Result;
      }
      Sp -= N + 1;
      Push(Result);
      ++Pc;
      break;
    }
    case Op::Jump: {
      ++Jumps;
      size_t NewPc =
          static_cast<size_t>(Fn->BlockStart[static_cast<size_t>(I.A)]);
      // Only back edges consume fuel: forward jumps are bounded by code
      // size per application, loops are what a budget must interrupt.
      if constexpr (GuardOn)
        if (NewPc <= Pc)
          Guard.chargeFuel();
      Pc = NewPc;
      break;
    }
    case Op::BranchFalse:
      if (!Pop().isTruthy()) {
        ++Jumps;
        size_t NewPc =
            static_cast<size_t>(Fn->BlockStart[static_cast<size_t>(I.A)]);
        if constexpr (GuardOn)
          if (NewPc <= Pc)
            Guard.chargeFuel();
        Pc = NewPc;
      } else {
        ++Pc;
      }
      break;
    case Op::BranchTrue:
      if (Pop().isTruthy()) {
        ++Jumps;
        size_t NewPc =
            static_cast<size_t>(Fn->BlockStart[static_cast<size_t>(I.A)]);
        if constexpr (GuardOn)
          if (NewPc <= Pc)
            Guard.chargeFuel();
        Pc = NewPc;
      } else {
        ++Pc;
      }
      break;
    case Op::Return:
      FlushStats();
      if constexpr (GuardOn)
        Guard.leaveCall();
      return Pop();
    case Op::Pop:
      Pop();
      ++Pc;
      break;
    case Op::ProfileBlock:
      ++Fn->Blocks[static_cast<size_t>(I.A)].ProfileCount;
      ++Pc;
      break;
    case Op::ProfileSrc:
      ++*Fn->SrcCounters[static_cast<size_t>(I.A)];
      ++Pc;
      break;
    }
  }
}

Value pgmp::runVmFunction(Context &Ctx, VmFunction *Fn, EnvObj *Captured,
                          Value *Args, size_t NumArgs) {
  // One branch per outermost entry picks the instantiation; guard
  // activation only changes at run boundaries, so the choice is stable
  // for the whole invocation (including nested non-tail calls, which
  // stay inside the chosen instantiation).
  if (Ctx.Guard.Active)
    return runVmLoop<true>(Ctx, Fn, Captured, Args, NumArgs);
  return runVmLoop<false>(Ctx, Fn, Captured, Args, NumArgs);
}

static Value vmApplyHook(Context &Ctx, Value Fn, Value *Args, size_t N) {
  VmClosure *C = asVmClosure(Fn);
  return runVmFunction(Ctx, const_cast<VmFunction *>(C->Fn), C->Captured,
                       Args, N);
}

/// Tier-up compilation: lower one hot lambda to bytecode and cache it on
/// the template. Each tiered lambda gets its own little module, parked on
/// the Context type-erased so interp/ stays vm-free; modules live as long
/// as the Context because closures keep running their code.
static const VmFunction *tierCompileHook(Context &Ctx, const LambdaExpr *L) {
  ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::TierCompile);
  auto Module = std::make_shared<VmModule>();
  VmCompileOptions Opts;
  // Source-counter bumps are gated per node on Expr::Counter, so this is
  // free for uninstrumented units and mandatory for instrumented ones —
  // profiles must not depend on the tier that executed the code.
  Opts.ProfileSources = true;
  try {
    if (faultinject::shouldFail(faultinject::Point::TierCompile))
      raiseError("injected fault at phase boundary: tier-compile");
    VmFunction *Fn = compileLambdaToVm(Ctx, L, *Module, Opts);
    Ctx.TierModules.push_back(std::move(Module));
    L->Tiered = Fn;
    Ctx.Stats.bump(Stat::TierUps);
    return Fn;
  } catch (const GuardTrip &) {
    // A resource trip (fuel/deadline) mid-tier-compile must abort the
    // run, not brand the lambda TierBlocked: it can tier fine next run.
    throw;
  } catch (const SchemeError &) {
    // Phase-1-only nodes (syntax-case, templates) in the body: this
    // lambda stays interpreted forever. An injected tier-compile fault
    // takes this path too — degrading to the interpreter IS the clean
    // recovery, and profiles stay identical by counter fidelity.
    L->TierBlocked = true;
    Ctx.Stats.bump(Stat::TierCompileFails);
    return nullptr;
  }
}

static Value tierRunHook(Context &Ctx, const VmFunction *Fn, EnvObj *Captured,
                         Value *Args, size_t NumArgs) {
  return runVmFunction(Ctx, const_cast<VmFunction *>(Fn), Captured, Args,
                       NumArgs);
}

void pgmp::installVm(Context &Ctx) {
  Ctx.VmApplyHook = vmApplyHook;
  Ctx.TierCompileHook = tierCompileHook;
  Ctx.TierRunHook = tierRunHook;
}

//===----------------------------------------------------------------------===//
// VmRunner
//===----------------------------------------------------------------------===//

VmRunner::VmRunner(Engine &E) : E(E) { installVm(E.context()); }

EvalResult VmRunner::evalString(const std::string &Source,
                                const std::string &Name,
                                const VmCompileOptions &Opts) {
  EvalResult R;
  Context &Ctx = E.context();
  Ctx.Guard.beginRun();
  try {
    auto Module = std::make_unique<VmModule>();
    Ctx.SrcMgr.addBuffer(Name, Source);
    Reader Rd(Ctx.TheHeap, Ctx.Symbols, Ctx.Sources, Source, Name);
    Value Last = Value::undefined();
    auto ReadOne = [&] {
      ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Read);
      return Rd.readOne();
    };
    while (auto Form = ReadOne()) {
      std::vector<Value> Cores;
      {
        ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Expand);
        Cores = E.expander().expandTopLevel(*Form);
      }
      for (Value Core : Cores) {
        std::unique_ptr<CodeUnit> Unit;
        {
          ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Compile);
          Unit = compileCore(Ctx, Core);
        }
        VmFunction *Top;
        {
          ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::VmCompile);
          Top = compileExprToVm(Ctx, Unit->Root, *Module, Opts);
        }
        Ctx.adoptCode(std::move(Unit));
        {
          ScopedPhase Timer(Ctx.Stats, &Ctx.Trace, Phase::Eval);
          Last = runVmFunction(Ctx, Top, nullptr, nullptr, 0);
        }
      }
    }
    Modules.push_back(std::move(Module));
    R.Ok = true;
    R.V = Last;
  } catch (const GuardTrip &T) {
    R.Ok = false;
    R.Error = T.render();
    R.Tripped = T.kind();
    Ctx.Stats.bump(Stat::GuardTrips);
  } catch (const SchemeError &Err) {
    R.Ok = false;
    R.Error = Err.render();
  }
  return R;
}
