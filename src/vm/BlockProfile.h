//===- vm/BlockProfile.h - Block-level profile persistence ----*- C++ -*-===//
///
/// \file
/// Serialization of block-level profiles (the low-level half of Section
/// 4.3). A stored profile records, per function (by module index), the
/// block count vector. Loading validates that the module's block
/// structure matches what was profiled — the exact property the paper's
/// three-pass protocol is designed to preserve: as long as meta-programs
/// keep optimizing against the *same source profile*, the generated
/// low-level code (and hence the block profile) remains valid.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_VM_BLOCKPROFILE_H
#define PGMP_VM_BLOCKPROFILE_H

#include "vm/Bytecode.h"

#include <string>

namespace pgmp {

/// Serializes every function's block counters.
std::string serializeBlockProfile(const VmModule &Module);

/// Applies a stored block profile onto \p Module. Fails (returns false,
/// setting \p ErrorOut) if the profile's shape does not match the
/// module's — i.e. the block-level profile has been invalidated by a
/// source-level change.
bool applyBlockProfile(const std::string &Text, VmModule &Module,
                       std::string &ErrorOut);

bool storeBlockProfileFile(const VmModule &Module, const std::string &Path);
bool loadBlockProfileFile(const std::string &Path, VmModule &Module,
                          std::string &ErrorOut);

} // namespace pgmp

#endif // PGMP_VM_BLOCKPROFILE_H
