//===- vm/BlockProfile.h - Block-level profile persistence ----*- C++ -*-===//
///
/// \file
/// Serialization of block-level profiles (the low-level half of Section
/// 4.3). A stored profile records, per function (by module index), the
/// block count vector. Loading validates that the module's block
/// structure matches what was profiled — the exact property the paper's
/// three-pass protocol is designed to preserve: as long as meta-programs
/// keep optimizing against the *same source profile*, the generated
/// low-level code (and hence the block profile) remains valid.
///
/// Format v2 makes that invariant checkable *explicitly*: the file embeds
/// a fingerprint of the source profile that drove pass 2, so pass 3 can
/// reject a block profile stored against a different source profile
/// before any structural comparison — plus a CRC32 footer so torn or
/// bit-flipped files are detected rather than ingested. v1 files (no
/// footer, no fingerprint) still load, with a warning. Applying is
/// all-or-nothing: a rejected profile leaves the module's counts alone.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_VM_BLOCKPROFILE_H
#define PGMP_VM_BLOCKPROFILE_H

#include "vm/Bytecode.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pgmp {

/// Structured findings from one block-profile load, for diagnostics and
/// `pgmpi profile-lint`.
struct BlockProfileLoadReport {
  int Version = 0;
  bool ChecksumChecked = false; ///< v2 footer present and verified
  /// Fingerprint of the source profile the block profile was stored
  /// against (0 = not recorded / v1).
  uint64_t SourceProfileFingerprint = 0;
  size_t NumFunctions = 0;
  std::vector<std::string> Warnings;
};

/// Serializes every function's block counters in format v2.
/// \p SourceProfileFp fingerprints the source profile in effect when the
/// counts were collected (0 = unknown; the Section 4.3 check is skipped).
std::string serializeBlockProfile(const VmModule &Module,
                                  uint64_t SourceProfileFp = 0);

/// Applies a stored block profile onto \p Module. Fails (returns false,
/// setting \p ErrorOut) if the profile is corrupt, malformed, or its
/// shape does not match the module's — i.e. the block-level profile has
/// been invalidated by a source-level change. When both the stored and
/// \p ExpectedSourceFp fingerprints are known and differ, the profile is
/// rejected as stored against a different source profile (the explicit
/// Section 4.3 validation). On failure the module's counts are untouched.
bool applyBlockProfile(const std::string &Text, VmModule &Module,
                       std::string &ErrorOut, uint64_t ExpectedSourceFp = 0,
                       BlockProfileLoadReport *Report = nullptr);

/// Atomically writes the block profile (temp file + fsync + rename).
bool storeBlockProfileFile(const VmModule &Module, const std::string &Path,
                           uint64_t SourceProfileFp = 0,
                           std::string *ErrorOut = nullptr);

bool loadBlockProfileFile(const std::string &Path, VmModule &Module,
                          std::string &ErrorOut,
                          uint64_t ExpectedSourceFp = 0,
                          BlockProfileLoadReport *Report = nullptr);

/// Structural lint of a serialized block profile without a module to
/// validate against: header/version, checksum footer, record syntax, and
/// value sanity. Returns true when clean; appends findings otherwise.
bool lintBlockProfileText(const std::string &Text,
                          std::vector<std::string> &Findings);

} // namespace pgmp

#endif // PGMP_VM_BLOCKPROFILE_H
