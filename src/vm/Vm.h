//===- vm/Vm.h - Bytecode execution ---------------------------*- C++ -*-===//
///
/// \file
/// The bytecode evaluator and a convenience runner that drives the whole
/// pipeline (read -> expand -> core IR -> bytecode -> run). VM closures
/// and interpreter closures interoperate freely: either side may call
/// the other.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_VM_VM_H
#define PGMP_VM_VM_H

#include "core/Engine.h"
#include "vm/Bytecode.h"
#include "vm/BytecodeCompiler.h"

#include <memory>

namespace pgmp {

/// Installs the VM apply hook into \p Ctx so interpreter code (and
/// primitives such as map) can call VM closures.
void installVm(Context &Ctx);

/// Calls a VM function directly.
Value runVmFunction(Context &Ctx, VmFunction *Fn, EnvObj *Captured,
                    Value *Args, size_t NumArgs);

/// Drives source text through expansion and the bytecode backend. Owns
/// the produced modules (closures stored in globals point into them, so
/// keep the runner alive as long as its definitions are used).
class VmRunner {
public:
  explicit VmRunner(Engine &E);

  /// Reads, expands, compiles to bytecode, and runs every form.
  EvalResult evalString(const std::string &Source, const std::string &Name,
                        const VmCompileOptions &Opts = {});

  /// All modules compiled so far (one per evalString call).
  std::vector<std::unique_ptr<VmModule>> &modules() { return Modules; }
  VmModule *lastModule() {
    return Modules.empty() ? nullptr : Modules.back().get();
  }

private:
  Engine &E;
  std::vector<std::unique_ptr<VmModule>> Modules;
};

} // namespace pgmp

#endif // PGMP_VM_VM_H
