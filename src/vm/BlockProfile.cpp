//===- vm/BlockProfile.cpp ------------------------------------------------===//

#include "vm/BlockProfile.h"

#include "support/AtomicFile.h"
#include "support/Checksum.h"
#include "support/Text.h"

#include <cstdio>

using namespace pgmp;

static const char *const MagicV1 = "pgmp-block-profile\t1";
static const char *const MagicV2 = "pgmp-block-profile\t2";

std::string pgmp::serializeBlockProfile(const VmModule &Module,
                                        uint64_t SourceProfileFp) {
  std::string Out;
  Out += MagicV2;
  Out += "\n";
  Out += "source-profile\t" + hex64(SourceProfileFp) + "\n";
  for (size_t FI = 0; FI < Module.Functions.size(); ++FI) {
    const VmFunction &Fn = *Module.Functions[FI];
    Out += "fn\t" + std::to_string(FI) + "\t" + Fn.Name + "\t" +
           std::to_string(Fn.Blocks.size()) + "\t" +
           std::to_string(Fn.structuralHash()) + "\n";
    for (size_t BI = 0; BI < Fn.Blocks.size(); ++BI)
      Out += "block\t" + std::to_string(FI) + "\t" + std::to_string(BI) +
             "\t" + std::to_string(Fn.Blocks[BI].ProfileCount) + "\n";
  }
  Out += "crc\t" + hex32(crc32(Out)) + "\n";
  return Out;
}

namespace {

/// Shared header/footer validation for apply and lint. Returns 0 on
/// failure (with ErrorOut set), else the version; v2 sets CrcLine to the
/// verified footer's line index.
int checkEnvelope(const std::string &Text,
                  const std::vector<std::string_view> &Lines,
                  size_t &CrcLine, std::string &ErrorOut) {
  if (Lines.empty() ||
      (Lines[0] != MagicV1 && Lines[0] != MagicV2)) {
    ErrorOut = !Lines.empty() && Lines[0].starts_with("pgmp-block-profile\t")
                   ? "unsupported block profile version '" +
                         std::string(Lines[0]) + "'"
                   : "bad block profile header";
    return 0;
  }
  int Version = Lines[0] == MagicV1 ? 1 : 2;
  CrcLine = 0;
  if (Version == 2) {
    bool HaveCrc = false;
    for (size_t I = Lines.size(); I-- > 1;) {
      if (Lines[I].empty())
        continue;
      auto Fields = splitChar(Lines[I], '\t');
      uint32_t Stored = 0;
      if (Fields[0] != "crc" || Fields.size() != 2 ||
          !parseHex32(Fields[1], Stored)) {
        ErrorOut = "block profile missing checksum footer (file truncated?)";
        return 0;
      }
      size_t Offset = static_cast<size_t>(Lines[I].data() - Text.data());
      if (crc32(std::string_view(Text).substr(0, Offset)) != Stored) {
        ErrorOut = "block profile checksum mismatch (file corrupt)";
        return 0;
      }
      CrcLine = I;
      HaveCrc = true;
      break;
    }
    if (!HaveCrc) {
      ErrorOut = "block profile missing checksum footer (file truncated?)";
      return 0;
    }
  }
  return Version;
}

} // namespace

bool pgmp::applyBlockProfile(const std::string &Text, VmModule &Module,
                             std::string &ErrorOut,
                             uint64_t ExpectedSourceFp,
                             BlockProfileLoadReport *Report) {
  BlockProfileLoadReport Local;
  if (!Report)
    Report = &Local;
  *Report = BlockProfileLoadReport{};

  auto Lines = splitChar(Text, '\n');
  size_t CrcLine = 0;
  int Version = checkEnvelope(Text, Lines, CrcLine, ErrorOut);
  if (!Version)
    return false;
  Report->Version = Version;
  Report->ChecksumChecked = Version >= 2;

  size_t FunctionsSeen = 0;
  bool SawSourceFp = false;
  // All-or-nothing: counts are staged here and committed only once the
  // whole file has validated.
  std::vector<std::pair<size_t, std::pair<size_t, uint64_t>>> Pending;

  for (size_t I = 1; I < Lines.size(); ++I) {
    std::string_view Line = Lines[I];
    if (Line.empty() || (Version >= 2 && I == CrcLine))
      continue;
    auto Fields = splitChar(Line, '\t');
    std::string LineNo = std::to_string(I + 1);

    if (Fields[0] == "source-profile" && Version >= 2) {
      uint64_t Fp;
      if (Fields.size() != 2 || !parseHex64(Fields[1], Fp)) {
        ErrorOut = "bad source-profile record on line " + LineNo;
        return false;
      }
      if (SawSourceFp) {
        ErrorOut = "duplicate source-profile record on line " + LineNo;
        return false;
      }
      SawSourceFp = true;
      Report->SourceProfileFingerprint = Fp;
      // The explicit Section 4.3 check: a block profile stored while a
      // different source profile drove expansion is invalid regardless
      // of whether the block structure happens to match.
      if (Fp && ExpectedSourceFp && Fp != ExpectedSourceFp) {
        ErrorOut = "block profile invalidated: stored against a different "
                   "source profile (Section 4.3 invariant)";
        return false;
      }
      continue;
    }

    if (Fields[0] == "fn") {
      int64_t Idx, NumBlocks;
      if (Fields.size() != 5 || !parseInt64(Fields[1], Idx) ||
          !parseInt64(Fields[3], NumBlocks) || Idx < 0 || NumBlocks < 0) {
        ErrorOut = "bad fn record on line " + LineNo;
        return false;
      }
      if (static_cast<size_t>(Idx) >= Module.Functions.size()) {
        ErrorOut = "block profile invalidated: function " +
                   std::to_string(Idx) + " does not exist";
        return false;
      }
      const VmFunction &Fn = *Module.Functions[static_cast<size_t>(Idx)];
      if (Fn.Blocks.size() != static_cast<size_t>(NumBlocks)) {
        ErrorOut = "block profile invalidated: function " +
                   std::to_string(Idx) + " has " +
                   std::to_string(Fn.Blocks.size()) + " blocks, profile has " +
                   std::to_string(NumBlocks);
        return false;
      }
      if (std::to_string(Fn.structuralHash()) != std::string(Fields[4])) {
        ErrorOut = "block profile invalidated: function " +
                   std::to_string(Idx) +
                   " was generated from different source-level decisions";
        return false;
      }
      ++FunctionsSeen;
      continue;
    }

    if (Fields[0] == "block") {
      int64_t FIdx, BIdx, Count;
      if (Fields.size() != 4 || !parseInt64(Fields[1], FIdx) ||
          !parseInt64(Fields[2], BIdx) || !parseInt64(Fields[3], Count) ||
          FIdx < 0 || BIdx < 0) {
        ErrorOut = "bad block record on line " + LineNo;
        return false;
      }
      if (Count < 0) {
        ErrorOut = "block record with negative count on line " + LineNo;
        return false;
      }
      if (static_cast<size_t>(FIdx) >= Module.Functions.size() ||
          static_cast<size_t>(BIdx) >=
              Module.Functions[static_cast<size_t>(FIdx)]->Blocks.size()) {
        ErrorOut = "block profile invalidated: block out of range";
        return false;
      }
      Pending.push_back({static_cast<size_t>(FIdx),
                         {static_cast<size_t>(BIdx),
                          static_cast<uint64_t>(Count)}});
      continue;
    }

    if (Fields[0] == "crc" && Version >= 2) {
      ErrorOut = "misplaced checksum footer on line " + LineNo;
      return false;
    }

    ErrorOut = "unknown record on line " + LineNo;
    return false;
  }

  if (FunctionsSeen != Module.Functions.size()) {
    ErrorOut = "block profile invalidated: function count mismatch";
    return false;
  }
  if (Version == 1)
    Report->Warnings.push_back(
        "legacy v1 block profile format: no checksum or source-profile "
        "fingerprint");

  for (const auto &[FIdx, Block] : Pending)
    Module.Functions[FIdx]->Blocks[Block.first].ProfileCount += Block.second;
  Report->NumFunctions = FunctionsSeen;
  return true;
}

bool pgmp::storeBlockProfileFile(const VmModule &Module,
                                 const std::string &Path,
                                 uint64_t SourceProfileFp,
                                 std::string *ErrorOut) {
  std::string Err;
  if (!writeFileAtomic(Path, serializeBlockProfile(Module, SourceProfileFp),
                       Err)) {
    if (ErrorOut)
      *ErrorOut = Err;
    return false;
  }
  return true;
}

bool pgmp::loadBlockProfileFile(const std::string &Path, VmModule &Module,
                                std::string &ErrorOut,
                                uint64_t ExpectedSourceFp,
                                BlockProfileLoadReport *Report) {
  std::string Text, Err;
  FileReadStatus Status = readFileAll(Path, Text, Err);
  if (Status != FileReadStatus::Ok) {
    ErrorOut = Status == FileReadStatus::CannotOpen
                   ? "cannot open block profile: " + Path
                   : "error reading block profile: " + Path;
    return false;
  }
  return applyBlockProfile(Text, Module, ErrorOut, ExpectedSourceFp, Report);
}

bool pgmp::lintBlockProfileText(const std::string &Text,
                                std::vector<std::string> &Findings) {
  auto Lines = splitChar(Text, '\n');
  size_t CrcLine = 0;
  std::string Err;
  int Version = checkEnvelope(Text, Lines, CrcLine, Err);
  if (!Version) {
    Findings.push_back(Err);
    return false;
  }
  size_t Before = Findings.size();
  if (Version == 1)
    Findings.push_back("legacy v1 block profile format: no checksum or "
                       "source-profile fingerprint");
  for (size_t I = 1; I < Lines.size(); ++I) {
    std::string_view Line = Lines[I];
    if (Line.empty() || (Version >= 2 && I == CrcLine))
      continue;
    auto Fields = splitChar(Line, '\t');
    std::string LineNo = std::to_string(I + 1);
    int64_t A, B, C;
    uint64_t Fp;
    if (Fields[0] == "source-profile" && Version >= 2) {
      if (Fields.size() != 2 || !parseHex64(Fields[1], Fp))
        Findings.push_back("bad source-profile record on line " + LineNo);
    } else if (Fields[0] == "fn") {
      // Fields[4] is the structural hash, compared textually on apply —
      // it may exceed int64 range, so only require it be present.
      if (Fields.size() != 5 || !parseInt64(Fields[1], A) ||
          !parseInt64(Fields[3], B) || Fields[4].empty() || A < 0 || B < 0)
        Findings.push_back("bad fn record on line " + LineNo);
    } else if (Fields[0] == "block") {
      if (Fields.size() != 4 || !parseInt64(Fields[1], A) ||
          !parseInt64(Fields[2], B) || !parseInt64(Fields[3], C) || A < 0 ||
          B < 0 || C < 0)
        Findings.push_back("bad block record on line " + LineNo);
    } else {
      Findings.push_back("unknown record on line " + LineNo);
    }
  }
  return Findings.size() == Before;
}
