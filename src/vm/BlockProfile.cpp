//===- vm/BlockProfile.cpp ------------------------------------------------===//

#include "vm/BlockProfile.h"

#include "support/Text.h"

#include <cstdio>

using namespace pgmp;

static const char *const Magic = "pgmp-block-profile\t1";

std::string pgmp::serializeBlockProfile(const VmModule &Module) {
  std::string Out;
  Out += Magic;
  Out += "\n";
  for (size_t FI = 0; FI < Module.Functions.size(); ++FI) {
    const VmFunction &Fn = *Module.Functions[FI];
    Out += "fn\t" + std::to_string(FI) + "\t" + Fn.Name + "\t" +
           std::to_string(Fn.Blocks.size()) + "\t" +
           std::to_string(Fn.structuralHash()) + "\n";
    for (size_t BI = 0; BI < Fn.Blocks.size(); ++BI)
      Out += "block\t" + std::to_string(FI) + "\t" + std::to_string(BI) +
             "\t" + std::to_string(Fn.Blocks[BI].ProfileCount) + "\n";
  }
  return Out;
}

bool pgmp::applyBlockProfile(const std::string &Text, VmModule &Module,
                             std::string &ErrorOut) {
  auto Lines = splitChar(Text, '\n');
  if (Lines.empty() || Lines[0] != Magic) {
    ErrorOut = "bad block profile header";
    return false;
  }
  size_t FunctionsSeen = 0;
  for (size_t I = 1; I < Lines.size(); ++I) {
    std::string_view Line = Lines[I];
    if (Line.empty())
      continue;
    auto Fields = splitChar(Line, '\t');
    if (Fields[0] == "fn") {
      int64_t Idx, NumBlocks;
      if (Fields.size() != 5 || !parseInt64(Fields[1], Idx) ||
          !parseInt64(Fields[3], NumBlocks)) {
        ErrorOut = "bad fn record on line " + std::to_string(I + 1);
        return false;
      }
      if (static_cast<size_t>(Idx) >= Module.Functions.size()) {
        ErrorOut = "block profile invalidated: function " +
                   std::to_string(Idx) + " does not exist";
        return false;
      }
      const VmFunction &Fn = *Module.Functions[static_cast<size_t>(Idx)];
      if (Fn.Blocks.size() != static_cast<size_t>(NumBlocks)) {
        ErrorOut = "block profile invalidated: function " +
                   std::to_string(Idx) + " has " +
                   std::to_string(Fn.Blocks.size()) + " blocks, profile has " +
                   std::to_string(NumBlocks);
        return false;
      }
      if (std::to_string(Fn.structuralHash()) != std::string(Fields[4])) {
        ErrorOut = "block profile invalidated: function " +
                   std::to_string(Idx) +
                   " was generated from different source-level decisions";
        return false;
      }
      ++FunctionsSeen;
      continue;
    }
    if (Fields[0] == "block") {
      int64_t FIdx, BIdx, Count;
      if (Fields.size() != 4 || !parseInt64(Fields[1], FIdx) ||
          !parseInt64(Fields[2], BIdx) || !parseInt64(Fields[3], Count)) {
        ErrorOut = "bad block record on line " + std::to_string(I + 1);
        return false;
      }
      if (static_cast<size_t>(FIdx) >= Module.Functions.size() ||
          static_cast<size_t>(BIdx) >=
              Module.Functions[static_cast<size_t>(FIdx)]->Blocks.size()) {
        ErrorOut = "block profile invalidated: block out of range";
        return false;
      }
      Module.Functions[static_cast<size_t>(FIdx)]
          ->Blocks[static_cast<size_t>(BIdx)]
          .ProfileCount += static_cast<uint64_t>(Count);
      continue;
    }
    ErrorOut = "unknown record on line " + std::to_string(I + 1);
    return false;
  }
  if (FunctionsSeen != Module.Functions.size()) {
    ErrorOut = "block profile invalidated: function count mismatch";
    return false;
  }
  return true;
}

bool pgmp::storeBlockProfileFile(const VmModule &Module,
                                 const std::string &Path) {
  std::string Text = serializeBlockProfile(Module);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}

bool pgmp::loadBlockProfileFile(const std::string &Path, VmModule &Module,
                                std::string &ErrorOut) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    ErrorOut = "cannot open block profile: " + Path;
    return false;
  }
  std::string Text;
  char Chunk[4096];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Text.append(Chunk, N);
  std::fclose(F);
  return applyBlockProfile(Text, Module, ErrorOut);
}
