//===- vm/BlockReorder.cpp ------------------------------------------------===//

#include "vm/BlockReorder.h"

#include <algorithm>
#include <numeric>

using namespace pgmp;

void pgmp::reorderBlocksByProfile(VmFunction &Fn) {
  std::vector<uint32_t> Order(Fn.Blocks.size());
  std::iota(Order.begin(), Order.end(), 0u);
  // Entry stays first; the rest sort hottest-first, ties by original
  // position for determinism.
  std::stable_sort(Order.begin() + 1, Order.end(),
                   [&Fn](uint32_t A, uint32_t B) {
                     return Fn.Blocks[A].ProfileCount >
                            Fn.Blocks[B].ProfileCount;
                   });
  Fn.Layout = std::move(Order);
  Fn.linearize();
}

void pgmp::applyProfileGuidedLayout(VmModule &Module) {
  for (auto &Fn : Module.Functions)
    reorderBlocksByProfile(*Fn);
}

void pgmp::restoreOriginalLayout(VmModule &Module) {
  for (auto &Fn : Module.Functions) {
    Fn->Layout.resize(Fn->Blocks.size());
    std::iota(Fn->Layout.begin(), Fn->Layout.end(), 0u);
    Fn->linearize();
  }
}
