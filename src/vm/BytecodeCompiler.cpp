//===- vm/BytecodeCompiler.cpp --------------------------------------------===//

#include "vm/BytecodeCompiler.h"

#include "support/Diagnostics.h"

using namespace pgmp;

namespace {

class FnBuilder {
public:
  FnBuilder(VmModule &Module, VmFunction *Fn, const VmCompileOptions &Opts)
      : Module(Module), Fn(Fn), Opts(Opts) {
    Current = newBlock();
    (void)this->Module;
  }

  uint32_t newBlock() {
    Fn->Blocks.push_back(Block());
    uint32_t Id = static_cast<uint32_t>(Fn->Blocks.size() - 1);
    if (Opts.ProfileBlocks)
      Fn->Blocks[Id].Code.push_back(
          Instr{Op::ProfileBlock, static_cast<int32_t>(Id), 0});
    return Id;
  }

  void emit(Instr I) { Fn->Blocks[Current].Code.push_back(I); }

  /// Ends the current block with \p Term; conditional terminators get
  /// \p FallThrough as their not-taken successor.
  void terminate(Instr Term, int32_t FallThrough = -1) {
    Fn->Blocks[Current].Code.push_back(Term);
    Fn->Blocks[Current].FallThrough = FallThrough;
  }

  void switchTo(uint32_t BlockId) { Current = BlockId; }

  int32_t poolConst(Value V) {
    Fn->Pool.push_back(V);
    return static_cast<int32_t>(Fn->Pool.size() - 1);
  }

  int32_t cell(Value *C, Symbol *Name) {
    for (size_t I = 0; I < Fn->Cells.size(); ++I)
      if (Fn->Cells[I] == C)
        return static_cast<int32_t>(I);
    Fn->Cells.push_back(C);
    Fn->CellNames.push_back(Name);
    return static_cast<int32_t>(Fn->Cells.size() - 1);
  }

  int32_t srcCounter(uint64_t *C) {
    for (size_t I = 0; I < Fn->SrcCounters.size(); ++I)
      if (Fn->SrcCounters[I] == C)
        return static_cast<int32_t>(I);
    Fn->SrcCounters.push_back(C);
    return static_cast<int32_t>(Fn->SrcCounters.size() - 1);
  }

  VmModule &Module;
  VmFunction *Fn;
  const VmCompileOptions &Opts;
  uint32_t Current = 0;
};

class VmCompiler {
public:
  VmCompiler(Context &Ctx, VmModule &Module, const VmCompileOptions &Opts)
      : Ctx(Ctx), Module(Module), Opts(Opts) {}

  VmFunction *compileFunction(const LambdaExpr *L, const std::string &Name,
                              const Expr *Body) {
    VmFunction *Fn = Module.newFunction();
    if (L) {
      Fn->Name = L->Name.empty() ? Name : L->Name;
      Fn->NumParams = static_cast<uint32_t>(L->Params.size());
      Fn->HasRest = L->HasRest;
      Fn->FrameSlots = static_cast<uint32_t>(L->numSlots());
      Fn->Src = L->Src;
    } else {
      Fn->Name = Name;
    }
    FnBuilder B(Module, Fn, Opts);
    compile(B, Body, /*Tail=*/true);
    B.terminate(Instr{Op::Return, 0, 0});
    Fn->linearize();
    return Fn;
  }

private:
  [[noreturn]] void unsupported(const char *What) {
    raiseError(std::string("vm: ") + What +
               " cannot appear in runtime code");
  }

  void compile(FnBuilder &B, const Expr *E, bool Tail) {
    // The interpreter bumps a node's counter on entry, before any child
    // evaluates; emitting the bump first reproduces that order exactly.
    if (Opts.ProfileSources && E->Counter)
      B.emit(Instr{Op::ProfileSrc, B.srcCounter(E->Counter), 0});
    switch (E->K) {
    case ExprKind::Const:
      B.emit(Instr{Op::Const,
                   B.poolConst(static_cast<const ConstExpr *>(E)->V), 0});
      return;
    case ExprKind::LocalRef: {
      const auto *R = static_cast<const LocalRefExpr *>(E);
      B.emit(Instr{Op::LocalRef, static_cast<int32_t>(R->Depth),
                   static_cast<int32_t>(R->Index)});
      return;
    }
    case ExprKind::GlobalRef: {
      const auto *R = static_cast<const GlobalRefExpr *>(E);
      B.emit(Instr{Op::GlobalRef, B.cell(R->Cell, R->Name), 0});
      return;
    }
    case ExprKind::If: {
      const auto *I = static_cast<const IfExpr *>(E);
      compile(B, I->Test, /*Tail=*/false);
      uint32_t ThenBlk = B.newBlock();
      uint32_t ElseBlk = B.newBlock();
      uint32_t JoinBlk = B.newBlock();
      B.terminate(Instr{Op::BranchFalse, static_cast<int32_t>(ElseBlk), 0},
                  static_cast<int32_t>(ThenBlk));
      B.switchTo(ThenBlk);
      compile(B, I->Then, Tail);
      B.terminate(Instr{Op::Jump, static_cast<int32_t>(JoinBlk), 0});
      B.switchTo(ElseBlk);
      compile(B, I->Else, Tail);
      B.terminate(Instr{Op::Jump, static_cast<int32_t>(JoinBlk), 0});
      B.switchTo(JoinBlk);
      return;
    }
    case ExprKind::Lambda: {
      const auto *L = static_cast<const LambdaExpr *>(E);
      VmFunction *Sub = compileFunction(L, "<lambda>", L->Body);
      B.Fn->SubFunctions.push_back(Sub);
      B.emit(Instr{Op::MakeClosure,
                   static_cast<int32_t>(B.Fn->SubFunctions.size() - 1), 0});
      return;
    }
    case ExprKind::Begin: {
      const auto *Bg = static_cast<const BeginExpr *>(E);
      for (size_t I = 0; I + 1 < Bg->Body.size(); ++I) {
        compile(B, Bg->Body[I], /*Tail=*/false);
        B.emit(Instr{Op::Pop, 0, 0});
      }
      compile(B, Bg->Body.back(), Tail);
      return;
    }
    case ExprKind::SetLocal: {
      const auto *S = static_cast<const SetLocalExpr *>(E);
      compile(B, S->Val, /*Tail=*/false);
      B.emit(Instr{Op::SetLocal, static_cast<int32_t>(S->Depth),
                   static_cast<int32_t>(S->Index)});
      return;
    }
    case ExprKind::SetGlobal: {
      const auto *S = static_cast<const SetGlobalExpr *>(E);
      compile(B, S->Val, /*Tail=*/false);
      B.emit(Instr{Op::SetGlobal, B.cell(S->Cell, S->Name), 0});
      return;
    }
    case ExprKind::DefineGlobal: {
      const auto *D = static_cast<const DefineGlobalExpr *>(E);
      compile(B, D->Val, /*Tail=*/false);
      B.emit(Instr{Op::DefineGlobal, B.cell(D->Cell, D->Name), 0});
      return;
    }
    case ExprKind::Call: {
      const auto *C = static_cast<const CallExpr *>(E);
      compile(B, C->Fn, /*Tail=*/false);
      for (const Expr *Arg : C->Args)
        compile(B, Arg, /*Tail=*/false);
      int32_t N = static_cast<int32_t>(C->Args.size());
      if (Tail && C->Tail) {
        B.terminate(Instr{Op::TailCall, N, 0});
        // Code may syntactically continue after a tail call (e.g. the
        // join block of an if); start a fresh block for it.
        uint32_t Cont = B.newBlock();
        B.switchTo(Cont);
      } else {
        B.emit(Instr{Op::Call, N, 0});
      }
      return;
    }
    case ExprKind::SyntaxCase:
      unsupported("syntax-case");
    case ExprKind::Template:
      unsupported("syntax templates");
    }
  }

  Context &Ctx;
  VmModule &Module;
  VmCompileOptions Opts;
};

} // namespace

VmFunction *pgmp::compileExprToVm(Context &Ctx, const Expr *Root,
                                  VmModule &Module,
                                  const VmCompileOptions &Opts) {
  VmCompiler C(Ctx, Module, Opts);
  VmFunction *Top = C.compileFunction(nullptr, "<top>", Root);
  if (!Module.Top)
    Module.Top = Top;
  return Top;
}

VmFunction *pgmp::compileLambdaToVm(Context &Ctx, const LambdaExpr *L,
                                    VmModule &Module,
                                    const VmCompileOptions &Opts) {
  VmCompiler C(Ctx, Module, Opts);
  return C.compileFunction(L, "<tiered>", L->Body);
}
