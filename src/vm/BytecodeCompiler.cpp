//===- vm/BytecodeCompiler.cpp --------------------------------------------===//

#include "vm/BytecodeCompiler.h"

#include "support/Diagnostics.h"

using namespace pgmp;

void CallSiteCensus::build(const std::vector<const LambdaExpr *> &Lambdas) {
  Sites.clear();
  NumLambdas = Lambdas.size();
  for (const LambdaExpr *L : Lambdas) {
    // Walk L's own body only — nested lambdas are separate census
    // entries, and the enclosing lambda of a call site is the innermost.
    std::vector<const Expr *> Work{L->Body};
    while (!Work.empty()) {
      const Expr *E = Work.back();
      Work.pop_back();
      if (!E || E->K == ExprKind::Lambda)
        continue;
      switch (E->K) {
      case ExprKind::If: {
        const auto *I = static_cast<const IfExpr *>(E);
        Work.insert(Work.end(), {I->Test, I->Then, I->Else});
        break;
      }
      case ExprKind::Begin:
        for (const Expr *S : static_cast<const BeginExpr *>(E)->Body)
          Work.push_back(S);
        break;
      case ExprKind::SetLocal:
        Work.push_back(static_cast<const SetLocalExpr *>(E)->Val);
        break;
      case ExprKind::SetGlobal:
        Work.push_back(static_cast<const SetGlobalExpr *>(E)->Val);
        break;
      case ExprKind::DefineGlobal:
        Work.push_back(static_cast<const DefineGlobalExpr *>(E)->Val);
        break;
      case ExprKind::Call: {
        const auto *C = static_cast<const CallExpr *>(E);
        if (C->Fn->K == ExprKind::GlobalRef) {
          const auto *G = static_cast<const GlobalRefExpr *>(C->Fn);
          auto &Callers = Sites[G->Cell];
          bool Seen = false;
          for (const LambdaExpr *Prev : Callers)
            Seen |= Prev == L;
          if (!Seen)
            Callers.push_back(L);
        } else {
          Work.push_back(C->Fn);
        }
        for (const Expr *A : C->Args)
          Work.push_back(A);
        break;
      }
      default:
        break;
      }
    }
  }
}

bool CallSiteCensus::monoCaller(const Value *Cell, const LambdaExpr *Caller,
                                const LambdaExpr *Callee) const {
  auto It = Sites.find(Cell);
  if (It == Sites.end())
    return false;
  for (const LambdaExpr *Site : It->second)
    if (Site != Caller && Site != Callee)
      return false;
  return true;
}

namespace {

/// Net operand-stack effect of one instruction (FnBuilder tracks the
/// running depth so the inliner can address stack-resident parameters).
int32_t stackEffect(const Instr &I) {
  switch (I.K) {
  case Op::Const:
  case Op::LocalRef:
  case Op::GlobalRef:
  case Op::MakeClosure:
  case Op::Peek:
  case Op::GlobalIs:
    return 1;
  case Op::SetLocal:
  case Op::SetGlobal:
  case Op::DefineGlobal:
  case Op::Jump:
  case Op::ProfileBlock:
  case Op::ProfileSrc:
  case Op::GuardEnter:
  case Op::GuardLeave:
    return 0;
  case Op::Call:
    return -I.A;
  case Op::TailCall:
    return -(I.A + 1);
  case Op::BranchFalse:
  case Op::BranchTrue:
  case Op::Return:
  case Op::Pop:
    return -1;
  case Op::Squash:
    return -I.A;
  case Op::LocalLocal:
  case Op::LocalConst:
  case Op::GlobalLocal:
  case Op::GlobalConst:
    return 2;
  case Op::LocalCall:
  case Op::ConstCall:
    return 1 - I.B;
  case Op::CallBranchFalse:
    return -(I.A + 1);
  }
  return 0;
}

class FnBuilder {
public:
  FnBuilder(VmModule &Module, VmFunction *Fn, const VmCompileOptions &Opts)
      : Module(Module), Fn(Fn), Opts(Opts) {
    Current = newBlock();
    (void)this->Module;
  }

  uint32_t newBlock() {
    Fn->Blocks.push_back(Block());
    uint32_t Id = static_cast<uint32_t>(Fn->Blocks.size() - 1);
    if (Opts.ProfileBlocks)
      Fn->Blocks[Id].Code.push_back(
          Instr{Op::ProfileBlock, static_cast<int32_t>(Id), 0});
    return Id;
  }

  void emit(Instr I) {
    Fn->Blocks[Current].Code.push_back(I);
    CurDepth += stackEffect(I);
  }

  /// Ends the current block with \p Term; conditional terminators get
  /// \p FallThrough as their not-taken successor.
  void terminate(Instr Term, int32_t FallThrough = -1) {
    Fn->Blocks[Current].Code.push_back(Term);
    Fn->Blocks[Current].FallThrough = FallThrough;
    CurDepth += stackEffect(Term);
  }

  void switchTo(uint32_t BlockId) { Current = BlockId; }

  /// Resets the depth tracker when switching to a block whose entry depth
  /// differs from the fall-off depth of the previously built one (join
  /// blocks, else branches).
  void setDepth(int32_t D) { CurDepth = D; }

  int32_t poolConst(Value V) {
    Fn->Pool.push_back(V);
    return static_cast<int32_t>(Fn->Pool.size() - 1);
  }

  int32_t cell(Value *C, Symbol *Name) {
    for (size_t I = 0; I < Fn->Cells.size(); ++I)
      if (Fn->Cells[I] == C)
        return static_cast<int32_t>(I);
    Fn->Cells.push_back(C);
    Fn->CellNames.push_back(Name);
    return static_cast<int32_t>(Fn->Cells.size() - 1);
  }

  int32_t srcCounter(uint64_t *C) {
    for (size_t I = 0; I < Fn->SrcCounters.size(); ++I)
      if (Fn->SrcCounters[I] == C)
        return static_cast<int32_t>(I);
    Fn->SrcCounters.push_back(C);
    return static_cast<int32_t>(Fn->SrcCounters.size() - 1);
  }

  VmModule &Module;
  VmFunction *Fn;
  const VmCompileOptions &Opts;
  uint32_t Current = 0;
  /// Operand-stack depth after the last instruction emitted into the
  /// current block, relative to function entry (0). Only consumed by the
  /// inliner's Peek addressing, but maintained unconditionally — it is
  /// two adds per emit.
  int32_t CurDepth = 0;
};

class VmCompiler {
public:
  VmCompiler(Context &Ctx, VmModule &Module, const VmCompileOptions &Opts)
      : Ctx(Ctx), Module(Module), Opts(Opts) {}

  VmFunction *compileFunction(const LambdaExpr *L, const std::string &Name,
                              const Expr *Body) {
    VmFunction *Fn = Module.newFunction();
    if (L) {
      Fn->Name = L->Name.empty() ? Name : L->Name;
      Fn->NumParams = static_cast<uint32_t>(L->Params.size());
      Fn->HasRest = L->HasRest;
      Fn->FrameSlots = static_cast<uint32_t>(L->numSlots());
      Fn->Src = L->Src;
    } else {
      Fn->Name = Name;
    }
    // Inline state is per function: a nested lambda compiles with a fresh
    // frame stack and is its own caller for the census.
    const LambdaExpr *SavedLambda = CurLambda;
    std::vector<InlineFrame> SavedFrames = std::move(InlineFrames);
    CurLambda = L;
    InlineFrames.clear();
    FnBuilder B(Module, Fn, Opts);
    compile(B, Body, /*Tail=*/true);
    B.terminate(Instr{Op::Return, 0, 0});
    CurLambda = SavedLambda;
    InlineFrames = std::move(SavedFrames);
    if (Opts.Fusion) {
      size_t N = fuseFunction(*Fn, *Opts.Fusion);
      if (N)
        Ctx.Stats.bump(Stat::SuperinstructionsFused, N);
    }
    Fn->linearize();
    return Fn;
  }

private:
  [[noreturn]] void unsupported(const char *What) {
    raiseError(std::string("vm: ") + What +
               " cannot appear in runtime code");
  }

  void compile(FnBuilder &B, const Expr *E, bool Tail) {
    // The interpreter bumps a node's counter on entry, before any child
    // evaluates; emitting the bump first reproduces that order exactly.
    if (Opts.ProfileSources && E->Counter)
      B.emit(Instr{Op::ProfileSrc, B.srcCounter(E->Counter), 0});
    switch (E->K) {
    case ExprKind::Const:
      B.emit(Instr{Op::Const,
                   B.poolConst(static_cast<const ConstExpr *>(E)->V), 0});
      return;
    case ExprKind::LocalRef: {
      const auto *R = static_cast<const LocalRefExpr *>(E);
      if (!InlineFrames.empty()) {
        // Inside an inlined body every local is a parameter of the
        // innermost inlined callee (the eligibility walk rejected
        // anything deeper), and those live on the operand stack at
        // ArgBase - NumParams + Index.
        assert(R->Depth == 0 && "deep local ref survived inline check");
        const InlineFrame &F = InlineFrames.back();
        int32_t Slot = F.ArgBase -
                       static_cast<int32_t>(F.Callee->Params.size()) +
                       static_cast<int32_t>(R->Index);
        assert(Slot >= 0 && Slot < B.CurDepth && "inline peek out of range");
        B.emit(Instr{Op::Peek, B.CurDepth - 1 - Slot, 0});
        return;
      }
      B.emit(Instr{Op::LocalRef, static_cast<int32_t>(R->Depth),
                   static_cast<int32_t>(R->Index)});
      return;
    }
    case ExprKind::GlobalRef: {
      const auto *R = static_cast<const GlobalRefExpr *>(E);
      B.emit(Instr{Op::GlobalRef, B.cell(R->Cell, R->Name), 0});
      return;
    }
    case ExprKind::If: {
      const auto *I = static_cast<const IfExpr *>(E);
      compile(B, I->Test, /*Tail=*/false);
      uint32_t ThenBlk = B.newBlock();
      uint32_t ElseBlk = B.newBlock();
      uint32_t JoinBlk = B.newBlock();
      B.terminate(Instr{Op::BranchFalse, static_cast<int32_t>(ElseBlk), 0},
                  static_cast<int32_t>(ThenBlk));
      int32_t D0 = B.CurDepth; // entry depth of both arms
      B.switchTo(ThenBlk);
      compile(B, I->Then, Tail);
      B.terminate(Instr{Op::Jump, static_cast<int32_t>(JoinBlk), 0});
      B.switchTo(ElseBlk);
      B.setDepth(D0);
      compile(B, I->Else, Tail);
      B.terminate(Instr{Op::Jump, static_cast<int32_t>(JoinBlk), 0});
      B.switchTo(JoinBlk);
      B.setDepth(D0 + 1);
      return;
    }
    case ExprKind::Lambda: {
      const auto *L = static_cast<const LambdaExpr *>(E);
      VmFunction *Sub = compileFunction(L, "<lambda>", L->Body);
      B.Fn->SubFunctions.push_back(Sub);
      B.emit(Instr{Op::MakeClosure,
                   static_cast<int32_t>(B.Fn->SubFunctions.size() - 1), 0});
      return;
    }
    case ExprKind::Begin: {
      const auto *Bg = static_cast<const BeginExpr *>(E);
      for (size_t I = 0; I + 1 < Bg->Body.size(); ++I) {
        compile(B, Bg->Body[I], /*Tail=*/false);
        B.emit(Instr{Op::Pop, 0, 0});
      }
      compile(B, Bg->Body.back(), Tail);
      return;
    }
    case ExprKind::SetLocal: {
      const auto *S = static_cast<const SetLocalExpr *>(E);
      compile(B, S->Val, /*Tail=*/false);
      B.emit(Instr{Op::SetLocal, static_cast<int32_t>(S->Depth),
                   static_cast<int32_t>(S->Index)});
      return;
    }
    case ExprKind::SetGlobal: {
      const auto *S = static_cast<const SetGlobalExpr *>(E);
      compile(B, S->Val, /*Tail=*/false);
      B.emit(Instr{Op::SetGlobal, B.cell(S->Cell, S->Name), 0});
      return;
    }
    case ExprKind::DefineGlobal: {
      const auto *D = static_cast<const DefineGlobalExpr *>(E);
      compile(B, D->Val, /*Tail=*/false);
      B.emit(Instr{Op::DefineGlobal, B.cell(D->Cell, D->Name), 0});
      return;
    }
    case ExprKind::Call: {
      const auto *C = static_cast<const CallExpr *>(E);
      bool IsTail = Tail && C->Tail && InlineFrames.empty();
      if (!IsTail && tryInlineCall(B, C))
        return;
      compile(B, C->Fn, /*Tail=*/false);
      for (const Expr *Arg : C->Args)
        compile(B, Arg, /*Tail=*/false);
      int32_t N = static_cast<int32_t>(C->Args.size());
      if (IsTail) {
        B.terminate(Instr{Op::TailCall, N, 0});
        // Code may syntactically continue after a tail call (e.g. the
        // join block of an if); start a fresh block for it. Treat its
        // depth as if a call result had been pushed so a join fed by
        // both a tail call and a plain arm stays consistent.
        uint32_t Cont = B.newBlock();
        B.switchTo(Cont);
        B.setDepth(B.CurDepth + 1);
      } else {
        B.emit(Instr{Op::Call, N, 0});
      }
      return;
    }
    case ExprKind::SyntaxCase:
      unsupported("syntax-case");
    case ExprKind::Template:
      unsupported("syntax templates");
    }
  }

  /// Shape walk for inline candidates: within \p Budget nodes, no frame
  /// escapes (Lambda needs MakeClosure's heap frame), no local mutation,
  /// no references outside the parameter frame, no phase-1 nodes.
  static bool inlinableBody(const Expr *E, uint32_t Budget, uint32_t &Nodes) {
    if (++Nodes > Budget)
      return false;
    switch (E->K) {
    case ExprKind::Const:
    case ExprKind::GlobalRef:
      return true;
    case ExprKind::LocalRef:
      return static_cast<const LocalRefExpr *>(E)->Depth == 0;
    case ExprKind::If: {
      const auto *I = static_cast<const IfExpr *>(E);
      return inlinableBody(I->Test, Budget, Nodes) &&
             inlinableBody(I->Then, Budget, Nodes) &&
             inlinableBody(I->Else, Budget, Nodes);
    }
    case ExprKind::Begin: {
      for (const Expr *S : static_cast<const BeginExpr *>(E)->Body)
        if (!inlinableBody(S, Budget, Nodes))
          return false;
      return true;
    }
    case ExprKind::SetGlobal:
      return inlinableBody(static_cast<const SetGlobalExpr *>(E)->Val, Budget,
                           Nodes);
    case ExprKind::Call: {
      const auto *C = static_cast<const CallExpr *>(E);
      if (!inlinableBody(C->Fn, Budget, Nodes))
        return false;
      for (const Expr *A : C->Args)
        if (!inlinableBody(A, Budget, Nodes))
          return false;
      return true;
    }
    default: // Lambda, SetLocal, DefineGlobal, SyntaxCase, Template
      return false;
    }
  }

  /// Profile-guided inlining of one non-tail call site. Emits nothing and
  /// returns false unless the callee is a hot mono-caller global closure
  /// within the policy caps; the emitted fast path re-checks the binding
  /// with a GlobalIs identity guard and the slow path is a plain call, so
  /// a rebound global (or a cap trip at compile time) degrades cleanly.
  bool tryInlineCall(FnBuilder &B, const CallExpr *C) {
    if (!Opts.Inlining || !Opts.Inlining->Inline || !Opts.Census)
      return false;
    if (C->Fn->K != ExprKind::GlobalRef)
      return false;
    const auto *G = static_cast<const GlobalRefExpr *>(C->Fn);
    Value Bound = *G->Cell;
    if (!Bound.isClosure())
      return false;
    Closure *Cl = Bound.asClosure();
    const LambdaExpr *Callee = Cl->Template;
    if (Callee->HasRest || Callee->Params.size() != C->Args.size() ||
        Callee->TierBlocked)
      return false;
    // Only bodies the tier policy already considers hot are worth the
    // code growth; everything colder stays a plain call.
    const TierPolicy &P = *Opts.Inlining;
    bool Hot = P.Mode == TierMode::Always || Callee->TierHot ||
               Callee->Tiered != nullptr || Callee->TierInvokes >= P.Threshold;
    if (!Hot)
      return false;
    if (!Opts.Census->monoCaller(G->Cell, CurLambda, Callee))
      return false;
    uint32_t Nodes = 0;
    if (InlineFrames.size() >= P.InlineMaxDepth ||
        !inlinableBody(Callee->Body, P.InlineMaxOps, Nodes)) {
      // Eligible but capped: record the fallback and emit a plain call.
      Ctx.Stats.bump(Stat::TierInlineFallbacks);
      return false;
    }

    // Counter fidelity: the call node's counter was already bumped by our
    // caller (compile() emits it before dispatching on kind); the
    // fn-position GlobalRef node bumps here, before the paths split, so
    // it counts exactly once no matter which path runs. Argument nodes
    // are compiled into BOTH paths but only one path executes.
    if (Opts.ProfileSources && G->Counter)
      B.emit(Instr{Op::ProfileSrc, B.srcCounter(G->Counter), 0});
    int32_t CellIdx = B.cell(G->Cell, G->Name);
    int32_t SnapIdx = B.poolConst(Bound);
    uint32_t FastBlk = B.newBlock();
    uint32_t SlowBlk = B.newBlock();
    uint32_t JoinBlk = B.newBlock();
    // The guard reads the cell before the arguments evaluate — the same
    // order the interpreter evaluates fn-then-args — so an argument that
    // rebinds the global still calls the old closure this time.
    B.emit(Instr{Op::GlobalIs, CellIdx, SnapIdx});
    B.terminate(Instr{Op::BranchFalse, static_cast<int32_t>(SlowBlk), 0},
                static_cast<int32_t>(FastBlk));
    int32_t D0 = B.CurDepth;

    B.switchTo(FastBlk);
    for (const Expr *Arg : C->Args)
      compile(B, Arg, /*Tail=*/false);
    // GuardEnter/GuardLeave mirror the interpreter's per-application
    // ExecGuard charges (fuel + depth), keeping guard budgets identical
    // across inlining — including the non-RAII unwind behavior on raise.
    B.emit(Instr{Op::GuardEnter, 0, 0});
    InlineFrames.push_back(InlineFrame{Callee, B.CurDepth});
    compile(B, Callee->Body, /*Tail=*/false);
    InlineFrames.pop_back();
    B.emit(Instr{Op::GuardLeave, 0, 0});
    B.emit(Instr{Op::Squash, static_cast<int32_t>(C->Args.size()), 0});
    B.terminate(Instr{Op::Jump, static_cast<int32_t>(JoinBlk), 0});

    B.switchTo(SlowBlk);
    B.setDepth(D0);
    // Raw GlobalRef: the fn node's counter already bumped above, and an
    // unbound cell raises here exactly as an un-inlined compile would.
    B.emit(Instr{Op::GlobalRef, CellIdx, 0});
    for (const Expr *Arg : C->Args)
      compile(B, Arg, /*Tail=*/false);
    B.emit(Instr{Op::Call, static_cast<int32_t>(C->Args.size()), 0});
    B.terminate(Instr{Op::Jump, static_cast<int32_t>(JoinBlk), 0});

    B.switchTo(JoinBlk);
    B.setDepth(D0 + 1);
    Ctx.Stats.bump(Stat::TierInlines);
    return true;
  }

  struct InlineFrame {
    const LambdaExpr *Callee;
    int32_t ArgBase; ///< operand-stack depth just after the arguments
  };

  Context &Ctx;
  VmModule &Module;
  VmCompileOptions Opts;
  const LambdaExpr *CurLambda = nullptr;   ///< lambda being compiled
  std::vector<InlineFrame> InlineFrames;   ///< active inline nesting
};

} // namespace

VmFunction *pgmp::compileExprToVm(Context &Ctx, const Expr *Root,
                                  VmModule &Module,
                                  const VmCompileOptions &Opts) {
  VmCompiler C(Ctx, Module, Opts);
  VmFunction *Top = C.compileFunction(nullptr, "<top>", Root);
  if (!Module.Top)
    Module.Top = Top;
  return Top;
}

VmFunction *pgmp::compileLambdaToVm(Context &Ctx, const LambdaExpr *L,
                                    VmModule &Module,
                                    const VmCompileOptions &Opts) {
  VmCompiler C(Ctx, Module, Opts);
  return C.compileFunction(L, "<tiered>", L->Body);
}
