//===- vm/Fusion.cpp ------------------------------------------------------===//

#include "vm/Fusion.h"

#include <cassert>

using namespace pgmp;

// The candidate order is load-bearing: it indexes FusionTable::Mask and
// the census weight arrays, and BENCH_PR8.json / the pgmpi report table
// name candidates by these labels. Entries past NumFusionCandidates are
// the wide round-2 pairs; their Dep fields name the base candidates
// whose mask bits gate them.
static const FusionCandidate Candidates[NumFusionOps] = {
    {Op::LocalRef, Op::LocalRef, Op::LocalLocal, "local+local"},
    {Op::LocalRef, Op::Const, Op::LocalConst, "local+const"},
    {Op::GlobalRef, Op::LocalRef, Op::GlobalLocal, "global+local"},
    {Op::GlobalRef, Op::Const, Op::GlobalConst, "global+const"},
    {Op::LocalRef, Op::Call, Op::LocalCall, "local+call"},
    {Op::Const, Op::Call, Op::ConstCall, "const+call"},
    {Op::Call, Op::BranchFalse, Op::CallBranchFalse, "call+brf"},
    // Wide pairs. GlobalLocal+ConstCall is a whole (op x const) call,
    // GlobalLocal+LocalCall a whole (op x y) call — the two shapes every
    // counted loop's step and accumulate expressions take. The Peek pairs
    // only occur in inlined bodies, where parameters live on the operand
    // stack; Peek itself is not a round-1 product, so those entries
    // depend only on the candidate that produced their fused half.
    {Op::GlobalLocal, Op::ConstCall, Op::GlobalLocalConstCall,
     "g.local+c.call", 2, 5},
    {Op::GlobalLocal, Op::LocalCall, Op::GlobalLocalLocalCall,
     "g.local+l.call", 2, 4},
    {Op::GlobalConst, Op::Peek, Op::GlobalConstPeek, "g.const+peek", 3, -1},
    {Op::Peek, Op::Call, Op::PeekCall, "peek+call", -1, -1},
    // Guard pairs: only the tier-up inliner emits guard ops, and it
    // always brackets an inlined body with GuardEnter-after-the-last-arg
    // and GuardLeave-then-Squash. The fused handlers still charge the
    // guard in the guarded instantiation, so fuel accounting is
    // unchanged; in the common unguarded build these erase two pure
    // dispatch overheads per inlined call.
    {Op::GuardEnter, Op::GlobalRef, Op::GuardEnterGlobal, "genter+global",
     -1, -1},
    {Op::GuardLeave, Op::Squash, Op::GuardLeaveSquash, "gleave+squash",
     -1, -1},
};

const FusionCandidate &pgmp::fusionCandidate(size_t I) {
  assert(I < NumFusionOps && "fusion candidate index out of range");
  return Candidates[I];
}

bool FusionTable::enabled(size_t Candidate) const {
  if (Candidate < NumFusionCandidates)
    return (Mask >> Candidate) & 1u;
  // A wide candidate rides on its bases: it can only be selected where
  // the profile already selected every base pair it composes.
  const FusionCandidate &Cand = Candidates[Candidate];
  if (!Mask)
    return false;
  if (Cand.Dep1 >= 0 && !((Mask >> Cand.Dep1) & 1u))
    return false;
  if (Cand.Dep2 >= 0 && !((Mask >> Cand.Dep2) & 1u))
    return false;
  return true;
}

/// Payloads must pack into 16 bits each for a wide fusion; real cell,
/// slot, pool, and arity indices are far below this in practice.
static bool packsWide(const Instr &I) {
  return I.A >= 0 && I.A <= 0xFFFF && I.B >= 0 && I.B <= 0xFFFF;
}

int pgmp::matchFusedPair(const Instr &I, const Instr &J) {
  for (size_t C = 0; C < NumFusionOps; ++C) {
    const FusionCandidate &Cand = Candidates[C];
    if (I.K != Cand.First || J.K != Cand.Second)
      continue;
    // Only depth-0 locals fuse: the fused operand encodes a Slots0 index
    // and nothing else, and depth-0 covers every hot loop we measured.
    if ((Cand.First == Op::LocalRef && I.A != 0) ||
        (Cand.Second == Op::LocalRef && J.A != 0))
      continue;
    if (C >= NumFusionCandidates && !(packsWide(I) && packsWide(J)))
      continue;
    return static_cast<int>(C);
  }
  return -1;
}

Instr pgmp::buildFusedInstr(size_t Candidate, const Instr &I, const Instr &J) {
  const FusionCandidate &Cand = Candidates[Candidate];
  if (Candidate >= NumFusionCandidates) {
    // Wide packing: both components keep their full (A, B) payloads,
    // 16 bits each — matchFusedPair rejected anything that wouldn't fit.
    assert(packsWide(I) && packsWide(J) && "wide fusion payload overflow");
    return Instr{Cand.Fused, (I.A << 16) | I.B, (J.A << 16) | J.B};
  }
  // The fused A operand is the first op's payload (its slot, cell, pool,
  // or arg-count index), B the second's. LocalRef's payload is its B
  // field (A is the depth, pinned to 0 by matchFusedPair).
  auto Payload = [](Op K, const Instr &In) {
    return K == Op::LocalRef ? In.B : In.A;
  };
  return Instr{Cand.Fused, Payload(Cand.First, I), Payload(Cand.Second, J)};
}

size_t pgmp::expandInstr(const Instr &I, Instr Out[2]) {
  for (size_t C = 0; C < NumFusionOps; ++C) {
    const FusionCandidate &Cand = Candidates[C];
    if (I.K != Cand.Fused)
      continue;
    if (C >= NumFusionCandidates) {
      Out[0] = Instr{Cand.First, I.A >> 16, I.A & 0xFFFF};
      Out[1] = Instr{Cand.Second, I.B >> 16, I.B & 0xFFFF};
      return 2;
    }
    auto Component = [](Op K, int32_t Payload) {
      return K == Op::LocalRef ? Instr{K, 0, Payload} : Instr{K, Payload, 0};
    };
    Out[0] = Component(Cand.First, I.A);
    Out[1] = Component(Cand.Second, I.B);
    return 2;
  }
  Out[0] = I;
  return 1;
}

void pgmp::flattenInstr(const Instr &I, std::vector<Instr> &Out) {
  Instr Exp[2];
  if (expandInstr(I, Exp) == 1) {
    Out.push_back(Exp[0]);
    return;
  }
  // Two levels at most: wide ops expand into round-1 products, which
  // expand into raw ops.
  flattenInstr(Exp[0], Out);
  flattenInstr(Exp[1], Out);
}

size_t pgmp::fuseFunction(VmFunction &Fn, const FusionTable &Table) {
  if (!Table.Mask)
    return 0;
  size_t Fused = 0;
  for (Block &B : Fn.Blocks) {
    // Greedy left-to-right, non-overlapping, to fixpoint: the first pass
    // fuses raw pairs, the second pairs round-1 products into wide ops.
    // Nothing composes a wide op further, so this converges in two
    // passes, but the loop is written as a fixpoint for robustness.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      std::vector<Instr> Out;
      Out.reserve(B.Code.size());
      size_t I = 0;
      while (I < B.Code.size()) {
        if (I + 1 < B.Code.size()) {
          int C = matchFusedPair(B.Code[I], B.Code[I + 1]);
          if (C >= 0 && Table.enabled(static_cast<size_t>(C))) {
            Out.push_back(buildFusedInstr(static_cast<size_t>(C), B.Code[I],
                                          B.Code[I + 1]));
            I += 2;
            ++Fused;
            Changed = true;
            continue;
          }
        }
        Out.push_back(B.Code[I]);
        ++I;
      }
      B.Code = std::move(Out);
    }
  }
  return Fused;
}

void pgmp::accumulatePairCensus(const VmFunction &Fn, bool UseBlockCounts,
                                double FlatWeight, double Weights[],
                                double &Total) {
  for (const Block &B : Fn.Blocks) {
    double W = UseBlockCounts ? static_cast<double>(B.ProfileCount)
                              : FlatWeight;
    if (W <= 0)
      continue;
    // Expand fused ops back to components so already-fused code keeps
    // voting for its pairs; ProfileSrc stays in the stream as a fusion
    // barrier (matching what fuseFunction can actually pair), only the
    // block-entry ProfileBlock is dropped.
    std::vector<Instr> Flat;
    Flat.reserve(B.Code.size() + 4);
    for (const Instr &I : B.Code) {
      if (I.K == Op::ProfileBlock)
        continue;
      flattenInstr(I, Flat);
    }
    for (size_t I = 0; I + 1 < Flat.size(); ++I) {
      int C = matchFusedPair(Flat[I], Flat[I + 1]);
      // Only base candidates carry census weight; a raw stream can never
      // match a wide pair anyway, but keep the bound explicit.
      if (C < 0 || C >= static_cast<int>(NumFusionCandidates))
        continue;
      Weights[static_cast<size_t>(C)] += W;
      Total += W;
    }
  }
}
