//===- vm/BytecodeCompiler.h - Expr IR -> bytecode ------------*- C++ -*-===//
///
/// \file
/// Compiles the interpreter's Expr IR (i.e. fully expanded core forms,
/// with meta-program optimizations already applied) down to basic-block
/// bytecode. This is the hand-off point of the paper's three-pass
/// protocol: source-level PGMP happens before this compiler runs, so the
/// block structure it produces is stable as long as the source profile is
/// held fixed.
///
/// Phase-1-only nodes (syntax-case, templates) are rejected: they never
/// occur in runtime code.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_VM_BYTECODECOMPILER_H
#define PGMP_VM_BYTECODECOMPILER_H

#include "interp/Context.h"
#include "interp/Expr.h"
#include "vm/Bytecode.h"

namespace pgmp {

struct VmCompileOptions {
  /// Insert a counter bump at every basic block entry.
  bool ProfileBlocks = false;
};

/// Compiles one top-level Expr into \p Module; returns the new top-level
/// thunk (0-argument function). Raises SchemeError on unsupported nodes.
VmFunction *compileExprToVm(Context &Ctx, const Expr *Root, VmModule &Module,
                            const VmCompileOptions &Opts);

} // namespace pgmp

#endif // PGMP_VM_BYTECODECOMPILER_H
