//===- vm/BytecodeCompiler.h - Expr IR -> bytecode ------------*- C++ -*-===//
///
/// \file
/// Compiles the interpreter's Expr IR (i.e. fully expanded core forms,
/// with meta-program optimizations already applied) down to basic-block
/// bytecode. This is the hand-off point of the paper's three-pass
/// protocol: source-level PGMP happens before this compiler runs, so the
/// block structure it produces is stable as long as the source profile is
/// held fixed.
///
/// Phase-1-only nodes (syntax-case, templates) are rejected: they never
/// occur in runtime code.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_VM_BYTECODECOMPILER_H
#define PGMP_VM_BYTECODECOMPILER_H

#include "interp/Context.h"
#include "interp/Expr.h"
#include "vm/Bytecode.h"
#include "vm/Fusion.h"

#include <unordered_map>

namespace pgmp {

/// Which lambdas call which global cells (a call site is a CallExpr with
/// a GlobalRef in operator position; the enclosing lambda is the
/// innermost one). The tier-up inliner consults it for the mono-caller
/// test. Heuristic only: the runtime GlobalIs guard keeps inlining
/// correct no matter how stale or incomplete the census is, so top-level
/// call sites are simply not recorded.
class CallSiteCensus {
public:
  /// Rebuilds from every adopted lambda (Context::TierLambdas).
  void build(const std::vector<const LambdaExpr *> &Lambdas);

  /// True when every recorded call site of \p Cell lives in \p Caller or
  /// in \p Callee itself — self-recursion does not break mono-caller.
  bool monoCaller(const Value *Cell, const LambdaExpr *Caller,
                  const LambdaExpr *Callee) const;

  /// How many lambdas the last build() saw (cheap staleness check).
  size_t lambdasSeen() const { return NumLambdas; }

private:
  std::unordered_map<const Value *, std::vector<const LambdaExpr *>> Sites;
  size_t NumLambdas = 0;
};

struct VmCompileOptions {
  /// Insert a counter bump at every basic block entry.
  bool ProfileBlocks = false;

  /// Emit a ProfileSrc bump of each instrumented node's source counter at
  /// the node's entry — the same `uint64_t *` the interpreter increments,
  /// in the same order, so tiered execution of instrumented code yields
  /// byte-identical profiles to interpreter-only runs.
  bool ProfileSources = false;

  /// When non-null, rewrite compiled blocks against this fusion table
  /// (profile-selected superinstructions; vm/Fusion.h). Counter streams
  /// are unchanged by construction.
  const FusionTable *Fusion = nullptr;

  /// When non-null (and ->Inline), inline hot mono-caller global closures
  /// at their non-tail call sites behind a GlobalIs identity guard,
  /// bounded by the policy's InlineMaxOps/InlineMaxDepth caps. Requires
  /// Census.
  const TierPolicy *Inlining = nullptr;
  const CallSiteCensus *Census = nullptr;
};

/// Compiles one top-level Expr into \p Module; returns the new top-level
/// thunk (0-argument function). Raises SchemeError on unsupported nodes.
VmFunction *compileExprToVm(Context &Ctx, const Expr *Root, VmModule &Module,
                            const VmCompileOptions &Opts);

/// Compiles one lambda's body into \p Module for tiered execution;
/// returns the function (arity taken from \p L). Raises SchemeError when
/// the body contains phase-1-only nodes, in which case nothing observable
/// happens to \p Module beyond dead functions.
VmFunction *compileLambdaToVm(Context &Ctx, const LambdaExpr *L,
                              VmModule &Module, const VmCompileOptions &Opts);

} // namespace pgmp

#endif // PGMP_VM_BYTECODECOMPILER_H
