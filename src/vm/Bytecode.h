//===- vm/Bytecode.h - Stack bytecode with basic blocks -------*- C++ -*-===//
///
/// \file
/// The block-level substrate of Section 4.3: expanded core forms compile
/// to a stack bytecode organized into basic blocks. Blocks carry
/// execution counters (block-level profiling), and a separate pass
/// reorders blocks and flips branch polarity from those counters — the
/// "traditional low-level PGO" that the paper's three-pass protocol keeps
/// consistent with source-level PGMP.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_VM_BYTECODE_H
#define PGMP_VM_BYTECODE_H

#include "syntax/Heap.h"
#include "syntax/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace pgmp {

struct SourceObject;

enum class Op : uint8_t {
  Const,        ///< push Pool[A]
  LocalRef,     ///< push frame chain depth A, slot B
  GlobalRef,    ///< push *Cells[A] (raises if unbound)
  SetLocal,     ///< pop into depth A, slot B; push void
  SetGlobal,    ///< pop into *Cells[A]; push void
  DefineGlobal, ///< pop into *Cells[A] (no bound check); push void
  MakeClosure,  ///< push closure over function A with current frame
  Call,         ///< call with A arguments (fn below args on stack)
  TailCall,     ///< like Call but reuses the current VM invocation
  Jump,         ///< to block A
  BranchFalse,  ///< pop; if false jump to block A, else fall through
  BranchTrue,   ///< pop; if true jump to block A, else fall through
  Return,       ///< pop return value
  Pop,          ///< drop top of stack
  ProfileBlock, ///< bump block counter A (present only when profiling)
  ProfileSrc,   ///< bump source counter SrcCounters[A] (tiered/instrumented
                ///< code only; mirrors the interpreter's per-node bump)
};

struct Instr {
  Op K;
  int32_t A = 0;
  int32_t B = 0;
};

/// One basic block: straight-line code ending in a terminator (Jump,
/// Return, or a conditional branch followed by fallthrough).
struct Block {
  std::vector<Instr> Code;
  /// Fallthrough successor (block id), or -1 when the block ends in an
  /// unconditional terminator.
  int32_t FallThrough = -1;
  /// Execution count from block-level profiling.
  uint64_t ProfileCount = 0;
};

/// One compiled procedure (or top-level thunk).
class VmFunction {
public:
  std::string Name;
  class VmModule *Owner = nullptr;
  uint32_t NumParams = 0;
  bool HasRest = false;
  uint32_t FrameSlots = 0;
  const SourceObject *Src = nullptr;

  std::vector<Block> Blocks; ///< block 0 is the entry
  std::vector<Value> Pool;
  std::vector<Value *> Cells;
  std::vector<Symbol *> CellNames;
  std::vector<VmFunction *> SubFunctions; ///< for MakeClosure

  /// Source-expression counters referenced by ProfileSrc instructions.
  /// These point into the engine's sharded counter store — the *same*
  /// counters the interpreter bumps — which is what keeps instrumented
  /// profiles byte-identical across tier modes.
  std::vector<uint64_t *> SrcCounters;

  /// Worst-case operand-stack depth of any path through the function
  /// (filled by linearize()); lets the VM run on a fixed-size buffer.
  uint32_t MaxStack = 0;

  /// True when invocations need no heap frame: no MakeClosure can capture
  /// it, no rest list is consed, and the few parameters fit the VM's
  /// inline local buffer. Locals then live on the C++ stack and calls
  /// allocate nothing (filled by linearize()).
  bool Frameless = false;

  /// Emission order of blocks; changed by the block-reordering PGO.
  std::vector<uint32_t> Layout;

  /// Linearized code (filled by linearize()).
  std::vector<Instr> Linear;
  std::vector<int32_t> BlockStart; ///< pc of each block id in Linear

  /// Rebuilds Linear/BlockStart from Blocks and Layout, inserting
  /// explicit jumps where the layout breaks a fallthrough. Also refreshes
  /// MaxStack.
  void linearize();

  /// Recomputes MaxStack from the block graph (called by linearize()).
  void computeMaxStack();

  /// Sum of all block counters (for tests).
  uint64_t totalBlockCount() const;

  /// Fingerprint of the block structure and code, ignoring ProfileBlock
  /// and ProfileSrc instructions so instrumented and final builds of the
  /// same source compare equal. Used to detect invalidated block
  /// profiles.
  uint64_t structuralHash() const;
};

/// A compilation unit: one function per lambda plus the top-level thunk.
class VmModule {
public:
  std::vector<std::unique_ptr<VmFunction>> Functions;
  VmFunction *Top = nullptr;

  VmFunction *newFunction() {
    Functions.push_back(std::make_unique<VmFunction>());
    Functions.back()->Owner = this;
    return Functions.back().get();
  }

  /// Dynamic execution statistics of the whole module's last runs.
  struct Stats {
    uint64_t InstructionsExecuted = 0;
    uint64_t JumpsTaken = 0; ///< non-fallthrough control transfers
  };
  Stats RunStats;

  void resetStats() { RunStats = Stats(); }
  void resetBlockCounts();
};

/// A closure over a VM function (mirrors interp Closure).
class VmClosure : public Obj {
public:
  VmClosure(const VmFunction *Fn, EnvObj *Captured)
      : Obj(ValueKind::VmClosure), Fn(Fn), Captured(Captured) {}
  const VmFunction *Fn;
  EnvObj *Captured;
};

/// Typed accessor for VmClosure values.
inline VmClosure *asVmClosure(const Value &V) {
  assert(V.isVmClosure() && "value kind mismatch in asVmClosure");
  return static_cast<VmClosure *>(V.obj());
}

/// Renders a function's blocks for debugging and golden tests.
std::string disassemble(const VmFunction &Fn);

} // namespace pgmp

#endif // PGMP_VM_BYTECODE_H
