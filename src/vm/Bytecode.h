//===- vm/Bytecode.h - Stack bytecode with basic blocks -------*- C++ -*-===//
///
/// \file
/// The block-level substrate of Section 4.3: expanded core forms compile
/// to a stack bytecode organized into basic blocks. Blocks carry
/// execution counters (block-level profiling), and a separate pass
/// reorders blocks and flips branch polarity from those counters — the
/// "traditional low-level PGO" that the paper's three-pass protocol keeps
/// consistent with source-level PGMP.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_VM_BYTECODE_H
#define PGMP_VM_BYTECODE_H

#include "syntax/Heap.h"
#include "syntax/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace pgmp {

struct SourceObject;

enum class Op : uint8_t {
  Const,        ///< push Pool[A]
  LocalRef,     ///< push frame chain depth A, slot B
  GlobalRef,    ///< push *Cells[A] (raises if unbound)
  SetLocal,     ///< pop into depth A, slot B; push void
  SetGlobal,    ///< pop into *Cells[A]; push void
  DefineGlobal, ///< pop into *Cells[A] (no bound check); push void
  MakeClosure,  ///< push closure over function A with current frame
  Call,         ///< call with A arguments (fn below args on stack)
  TailCall,     ///< like Call but reuses the current VM invocation
  Jump,         ///< to block A
  BranchFalse,  ///< pop; if false jump to block A, else fall through
  BranchTrue,   ///< pop; if true jump to block A, else fall through
  Return,       ///< pop return value
  Pop,          ///< drop top of stack
  ProfileBlock, ///< bump block counter A (present only when profiling)
  ProfileSrc,   ///< bump source counter SrcCounters[A] (tiered/instrumented
                ///< code only; mirrors the interpreter's per-node bump)

  // Superinstructions (vm/Fusion.h): each is exactly its two-op expansion
  // in one dispatch. Selected per epoch from block profiles and rewritten
  // in at tier-up. None of them absorbs a Profile* op — fusion only pairs
  // literally adjacent non-profile ops — so the counter stream of fused
  // code is identical to its unfused expansion by construction.
  LocalLocal,  ///< push Slots0[A]; push Slots0[B] (depth-0 refs only)
  LocalConst,  ///< push Slots0[A]; push Pool[B]
  GlobalLocal, ///< push *Cells[A] (unbound check); push Slots0[B]
  GlobalConst, ///< push *Cells[A] (unbound check); push Pool[B]
  LocalCall,   ///< push Slots0[A] as last argument; call with B arguments
  ConstCall,   ///< push Pool[A] as last argument; call with B arguments
  CallBranchFalse, ///< call with A arguments; pop result; if false jump to
                   ///< block B, else fall through (terminator)

  // Tier-up inlining support (BytecodeCompiler): an inlined callee's
  // parameters live on the operand stack, and the guard ops mirror the
  // interpreter's per-application ExecGuard charges exactly.
  Peek,       ///< push Stack[Sp-1-A] (inlined parameter access)
  Squash,     ///< pop result; drop A slots beneath; push result back
  GlobalIs,   ///< push #t iff *Cells[A] is eq? to Pool[B] (never raises)
  GuardEnter, ///< ExecGuard::enterCall() (guarded instantiation only)
  GuardLeave, ///< ExecGuard::leaveCall() (guarded instantiation only)

  // Wide superinstructions: a second fusion round pairs two ops at least
  // one of which is itself a round-1 product, collapsing whole
  // subexpressions like (+ i 1) into a single dispatch. Operands pack
  // both components' payloads, 16 bits each: A = (firstA << 16) | firstB,
  // B = (secondA << 16) | secondB; pairs with payloads past 16 bits
  // simply don't fuse. Enabled only when the profile selected every base
  // candidate the wide op is built from (FusionTable::enabled).
  GlobalLocalConstCall, ///< GlobalLocal then ConstCall in one dispatch
  GlobalLocalLocalCall, ///< GlobalLocal then LocalCall in one dispatch
  GlobalConstPeek,      ///< GlobalConst then Peek in one dispatch
  PeekCall,             ///< Peek then Call in one dispatch
  GuardEnterGlobal,     ///< GuardEnter then GlobalRef in one dispatch
  GuardLeaveSquash,     ///< GuardLeave then Squash in one dispatch
};

/// Number of opcodes; the VM's threaded-dispatch jump table is checked
/// against this so adding an Op without a handler fails at compile time.
constexpr size_t NumOps = static_cast<size_t>(Op::GuardLeaveSquash) + 1;

struct Instr {
  Op K;
  int32_t A = 0;
  int32_t B = 0;
};

/// One basic block: straight-line code ending in a terminator (Jump,
/// Return, or a conditional branch followed by fallthrough).
struct Block {
  std::vector<Instr> Code;
  /// Fallthrough successor (block id), or -1 when the block ends in an
  /// unconditional terminator.
  int32_t FallThrough = -1;
  /// Execution count from block-level profiling.
  uint64_t ProfileCount = 0;
};

/// One compiled procedure (or top-level thunk).
class VmFunction {
public:
  std::string Name;
  class VmModule *Owner = nullptr;
  uint32_t NumParams = 0;
  bool HasRest = false;
  uint32_t FrameSlots = 0;
  const SourceObject *Src = nullptr;

  std::vector<Block> Blocks; ///< block 0 is the entry
  std::vector<Value> Pool;
  std::vector<Value *> Cells;
  std::vector<Symbol *> CellNames;
  std::vector<VmFunction *> SubFunctions; ///< for MakeClosure

  /// Source-expression counters referenced by ProfileSrc instructions.
  /// These point into the engine's sharded counter store — the *same*
  /// counters the interpreter bumps — which is what keeps instrumented
  /// profiles byte-identical across tier modes.
  std::vector<uint64_t *> SrcCounters;

  /// Worst-case operand-stack depth of any path through the function
  /// (filled by linearize()); lets the VM run on a fixed-size buffer.
  uint32_t MaxStack = 0;

  /// True when invocations need no heap frame: no MakeClosure can capture
  /// it, no rest list is consed, and the few parameters fit the VM's
  /// inline local buffer. Locals then live on the C++ stack and calls
  /// allocate nothing (filled by linearize()).
  bool Frameless = false;

  /// Emission order of blocks; changed by the block-reordering PGO.
  std::vector<uint32_t> Layout;

  /// Linearized code (filled by linearize()).
  std::vector<Instr> Linear;
  std::vector<int32_t> BlockStart; ///< pc of each block id in Linear

  /// Rebuilds Linear/BlockStart from Blocks and Layout, inserting
  /// explicit jumps where the layout breaks a fallthrough. Also refreshes
  /// MaxStack.
  void linearize();

  /// Recomputes MaxStack from the block graph (called by linearize()).
  void computeMaxStack();

  /// Sum of all block counters (for tests).
  uint64_t totalBlockCount() const;

  /// Fingerprint of the block structure and code, ignoring ProfileBlock
  /// and ProfileSrc instructions so instrumented and final builds of the
  /// same source compare equal. Used to detect invalidated block
  /// profiles.
  uint64_t structuralHash() const;
};

/// A compilation unit: one function per lambda plus the top-level thunk.
class VmModule {
public:
  std::vector<std::unique_ptr<VmFunction>> Functions;
  VmFunction *Top = nullptr;

  VmFunction *newFunction() {
    Functions.push_back(std::make_unique<VmFunction>());
    Functions.back()->Owner = this;
    return Functions.back().get();
  }

  /// Dynamic execution statistics of the whole module's last runs.
  struct Stats {
    uint64_t InstructionsExecuted = 0;
    uint64_t JumpsTaken = 0; ///< non-fallthrough control transfers
  };
  Stats RunStats;

  void resetStats() { RunStats = Stats(); }
  void resetBlockCounts();
};

/// A closure over a VM function (mirrors interp Closure).
class VmClosure : public Obj {
public:
  VmClosure(const VmFunction *Fn, EnvObj *Captured)
      : Obj(ValueKind::VmClosure), Fn(Fn), Captured(Captured) {}
  const VmFunction *Fn;
  EnvObj *Captured;
};

/// Typed accessor for VmClosure values.
inline VmClosure *asVmClosure(const Value &V) {
  assert(V.isVmClosure() && "value kind mismatch in asVmClosure");
  return static_cast<VmClosure *>(V.obj());
}

/// Renders a function's blocks for debugging and golden tests.
std::string disassemble(const VmFunction &Fn);

} // namespace pgmp

#endif // PGMP_VM_BYTECODE_H
