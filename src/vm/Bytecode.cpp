//===- vm/Bytecode.cpp ----------------------------------------------------===//

#include "vm/Bytecode.h"

#include "profile/SourceObject.h"
#include "vm/Fusion.h"
#include "syntax/SymbolTable.h"
#include "syntax/Writer.h"

using namespace pgmp;

void VmFunction::linearize() {
  Linear.clear();
  BlockStart.assign(Blocks.size(), -1);
  if (Layout.empty()) {
    Layout.resize(Blocks.size());
    for (uint32_t I = 0; I < Blocks.size(); ++I)
      Layout[I] = I;
  }

  for (size_t L = 0; L < Layout.size(); ++L) {
    uint32_t Id = Layout[L];
    const Block &B = Blocks[Id];
    BlockStart[Id] = static_cast<int32_t>(Linear.size());
    int32_t Next =
        L + 1 < Layout.size() ? static_cast<int32_t>(Layout[L + 1]) : -1;

    assert(!B.Code.empty() && "empty basic block");
    // Emit all but the terminator verbatim.
    for (size_t I = 0; I + 1 < B.Code.size(); ++I)
      Linear.push_back(B.Code[I]);

    Instr Term = B.Code.back();
    switch (Term.K) {
    case Op::Jump:
      if (Term.A != Next)
        Linear.push_back(Term);
      break;
    case Op::Return:
    case Op::TailCall:
      Linear.push_back(Term);
      break;
    case Op::CallBranchFalse: {
      // Fused call+branch: the taken target lives in B and there is no
      // inverted form, so the fallthrough gets an explicit jump when the
      // layout moved it.
      int32_t FT = B.FallThrough;
      assert(FT >= 0 && "conditional terminator without fallthrough");
      Linear.push_back(Term);
      if (FT != Next)
        Linear.push_back(Instr{Op::Jump, FT, 0});
      break;
    }
    case Op::BranchFalse:
    case Op::BranchTrue: {
      int32_t FT = B.FallThrough;
      assert(FT >= 0 && "conditional terminator without fallthrough");
      if (FT == Next) {
        Linear.push_back(Term);
      } else if (Term.A == Next) {
        // Invert the branch so the hot path falls through.
        Instr Inverted = Term;
        Inverted.K =
            Term.K == Op::BranchFalse ? Op::BranchTrue : Op::BranchFalse;
        Inverted.A = FT;
        Linear.push_back(Inverted);
      } else {
        Linear.push_back(Term);
        Linear.push_back(Instr{Op::Jump, FT, 0});
      }
      break;
    }
    default:
      assert(false && "block does not end in a terminator");
    }
  }

  computeMaxStack();

  // A function is frameless when nothing can observe its frame object:
  // MakeClosure is the only instruction that captures the current frame,
  // and rest-argument functions need a real slot vector for the consed
  // list. The parameter bound matches the VM's inline local buffer.
  Frameless = !HasRest && NumParams <= 8 && FrameSlots == NumParams;
  for (const Block &B : Blocks)
    for (const Instr &I : B.Code)
      if (I.K == Op::MakeClosure)
        Frameless = false;
}

void VmFunction::computeMaxStack() {
  // The block graph is acyclic (loops are TailCall restarts of the whole
  // invocation), so a single forward worklist pass over entry depths
  // converges. Depths are tracked as int64 to keep the assertion below
  // meaningful if a compiler bug ever underflows.
  std::vector<int64_t> EntryDepth(Blocks.size(), -1);
  std::vector<uint32_t> Work;
  EntryDepth[0] = 0;
  Work.push_back(0);
  int64_t Max = 0;
  auto Propagate = [&](int32_t Succ, int64_t Depth) {
    if (Succ < 0)
      return;
    if (EntryDepth[Succ] < Depth) {
      EntryDepth[Succ] = Depth;
      Work.push_back(static_cast<uint32_t>(Succ));
    }
  };
  // Analyzing the raw expansion of every instruction (flattenInstr) keeps
  // this pass correct for all fused and wide ops without enumerating
  // their composite effects: each raw component updates the depth in
  // order, so transient peaks inside a fused dispatch are modeled
  // exactly, and a newly added superinstruction can never silently carry
  // a zero stack effect.
  std::vector<Instr> Flat;
  while (!Work.empty()) {
    uint32_t Id = Work.back();
    Work.pop_back();
    const Block &B = Blocks[Id];
    int64_t Cur = EntryDepth[Id];
    for (const Instr &Raw : B.Code) {
      Flat.clear();
      flattenInstr(Raw, Flat);
      for (const Instr &I : Flat) {
        switch (I.K) {
        case Op::Const:
        case Op::LocalRef:
        case Op::GlobalRef:
        case Op::MakeClosure:
        case Op::Peek:
        case Op::GlobalIs:
          ++Cur;
          break;
        case Op::SetLocal:
        case Op::SetGlobal:
        case Op::DefineGlobal:
          break; // pop one, push void: net zero, peak unchanged
        case Op::Call:
          Cur -= I.A; // pops fn + A args, pushes result
          break;
        case Op::TailCall:
          Cur -= I.A + 1; // consumes fn + args; invocation restarts
          break;
        case Op::Jump:
          Propagate(I.A, Cur);
          break;
        case Op::BranchFalse:
        case Op::BranchTrue:
          --Cur;
          Propagate(I.A, Cur);
          Propagate(B.FallThrough, Cur);
          break;
        case Op::Return:
        case Op::Pop:
          --Cur;
          break;
        case Op::Squash:
          Cur -= I.A;
          break;
        case Op::ProfileBlock:
        case Op::ProfileSrc:
        case Op::GuardEnter:
        case Op::GuardLeave:
          break;
        default:
          assert(false && "fused op survived flattenInstr");
          break;
        }
        assert(Cur >= 0 && "operand stack underflow in MaxStack analysis");
        if (Cur > Max)
          Max = Cur;
      }
    }
  }
  MaxStack = static_cast<uint32_t>(Max);
}

uint64_t VmFunction::totalBlockCount() const {
  uint64_t Sum = 0;
  for (const Block &B : Blocks)
    Sum += B.ProfileCount;
  return Sum;
}

uint64_t VmFunction::structuralHash() const {
  uint64_t H = 1469598103934665603ull; // FNV offset basis
  auto Mix = [&H](uint64_t X) {
    H ^= X;
    H *= 1099511628211ull;
  };
  auto MixString = [&Mix](const std::string &S) {
    for (char C : S)
      Mix(static_cast<uint8_t>(C));
  };
  Mix(NumParams);
  Mix(HasRest ? 1 : 2);
  Mix(Blocks.size());
  for (const Block &B : Blocks) {
    Mix(0xB10C);
    Mix(static_cast<uint64_t>(B.FallThrough) + 7);
    std::vector<Instr> Flat;
    for (const Instr &Raw : B.Code)
      // Hash fused superinstructions as their fully raw expansion so
      // fusion at any depth (round-1 pairs and wide round-2 ops alike) is
      // invisible to block-profile validation: the same source compiles
      // to the same hash whether the fusion table was applied or not.
      flattenInstr(Raw, Flat);
    {
      for (const Instr &I : Flat) {
        if (I.K == Op::ProfileBlock || I.K == Op::ProfileSrc)
          continue;
        Mix(static_cast<uint64_t>(I.K));
        // Operand indices are allocated in encounter order, so two
        // different compiles can produce identical index sequences; hash
        // what the operands denote instead where it matters.
        switch (I.K) {
        case Op::Const:
          MixString(writeToString(Pool[static_cast<size_t>(I.A)]));
          break;
        case Op::GlobalRef:
        case Op::SetGlobal:
        case Op::DefineGlobal:
          MixString(CellNames[static_cast<size_t>(I.A)]->Name);
          break;
        default:
          Mix(static_cast<uint64_t>(I.A) + 0x9e37);
          Mix(static_cast<uint64_t>(I.B) + 0x79b9);
        }
      }
    }
  }
  return H;
}

void VmModule::resetBlockCounts() {
  for (auto &Fn : Functions)
    for (Block &B : Fn->Blocks)
      B.ProfileCount = 0;
}

std::string pgmp::disassemble(const VmFunction &Fn) {
  std::string Out = "function " + (Fn.Name.empty() ? "<top>" : Fn.Name) +
                    " params=" + std::to_string(Fn.NumParams) +
                    (Fn.HasRest ? "+rest" : "") + "\n";
  auto OpName = [](Op K) -> const char * {
    switch (K) {
    case Op::Const:
      return "const";
    case Op::LocalRef:
      return "local";
    case Op::GlobalRef:
      return "global";
    case Op::SetLocal:
      return "set-local";
    case Op::SetGlobal:
      return "set-global";
    case Op::DefineGlobal:
      return "def-global";
    case Op::MakeClosure:
      return "closure";
    case Op::Call:
      return "call";
    case Op::TailCall:
      return "tailcall";
    case Op::Jump:
      return "jump";
    case Op::BranchFalse:
      return "brf";
    case Op::BranchTrue:
      return "brt";
    case Op::Return:
      return "return";
    case Op::Pop:
      return "pop";
    case Op::ProfileBlock:
      return "profile";
    case Op::ProfileSrc:
      return "profile-src";
    case Op::LocalLocal:
      return "local-local";
    case Op::LocalConst:
      return "local-const";
    case Op::GlobalLocal:
      return "global-local";
    case Op::GlobalConst:
      return "global-const";
    case Op::LocalCall:
      return "local-call";
    case Op::ConstCall:
      return "const-call";
    case Op::CallBranchFalse:
      return "call-brf";
    case Op::Peek:
      return "peek";
    case Op::Squash:
      return "squash";
    case Op::GlobalIs:
      return "global-is";
    case Op::GuardEnter:
      return "guard-enter";
    case Op::GuardLeave:
      return "guard-leave";
    }
    return "?";
  };
  for (size_t BI = 0; BI < Fn.Blocks.size(); ++BI) {
    const Block &B = Fn.Blocks[BI];
    Out += "  block " + std::to_string(BI) +
           " count=" + std::to_string(B.ProfileCount) + "\n";
    for (const Instr &I : B.Code)
      Out += std::string("    ") + OpName(I.K) + " " + std::to_string(I.A) +
             " " + std::to_string(I.B) + "\n";
  }
  return Out;
}
