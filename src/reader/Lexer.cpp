//===- reader/Lexer.cpp ---------------------------------------------------===//

#include "reader/Lexer.h"

#include "support/Diagnostics.h"
#include "support/Text.h"

#include <cassert>
#include <cctype>

using namespace pgmp;

bool pgmp::isSymbolChar(char C) {
  if (std::isalnum(static_cast<unsigned char>(C)))
    return true;
  switch (C) {
  case '!':
  case '$':
  case '%':
  case '&':
  case '*':
  case '/':
  case ':':
  case '<':
  case '=':
  case '>':
  case '?':
  case '^':
  case '_':
  case '~':
  case '+':
  case '-':
  case '.':
  case '@':
    return true;
  default:
    return false;
  }
}

Lexer::Lexer(std::string_view Text, std::string FileName)
    : Text(Text), FileName(std::move(FileName)) {}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Text.size() ? Text[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Text[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

SourcePos Lexer::here() const {
  return SourcePos{static_cast<uint32_t>(Pos), Line, Column};
}

void Lexer::fail(const std::string &Msg, const SourcePos &At) {
  raiseError(Msg, FileName + ":" + std::to_string(At.Line) + ":" +
                      std::to_string(At.Column));
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == ';') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '#' && peek(1) == '|') {
      SourcePos Start = here();
      advance();
      advance();
      unsigned Depth = 1;
      while (Depth > 0) {
        if (atEnd())
          fail("unterminated block comment", Start);
        if (peek() == '#' && peek(1) == '|') {
          advance();
          advance();
          ++Depth;
        } else if (peek() == '|' && peek(1) == '#') {
          advance();
          advance();
          --Depth;
        } else {
          advance();
        }
      }
      continue;
    }
    return;
  }
}

Token Lexer::lexString(SourcePos Start) {
  std::string Out;
  while (true) {
    if (atEnd())
      fail("unterminated string literal", Start);
    char C = advance();
    if (C == '"')
      break;
    if (C != '\\') {
      Out += C;
      continue;
    }
    if (atEnd())
      fail("unterminated string escape", Start);
    char E = advance();
    switch (E) {
    case 'n':
      Out += '\n';
      break;
    case 't':
      Out += '\t';
      break;
    case 'r':
      Out += '\r';
      break;
    case '\\':
      Out += '\\';
      break;
    case '"':
      Out += '"';
      break;
    default:
      fail(std::string("unknown string escape \\") + E, Start);
    }
  }
  Token T;
  T.Kind = TokenKind::String;
  T.Range = {Start, here()};
  T.Text = std::move(Out);
  return T;
}

Token Lexer::lexCharacter(SourcePos Start) {
  if (atEnd())
    fail("unterminated character literal", Start);
  // Read one char, then any following symbol chars for named characters.
  std::string Name;
  Name += advance();
  while (!atEnd() && Name.size() < 16 &&
         std::isalpha(static_cast<unsigned char>(peek())) &&
         std::isalpha(static_cast<unsigned char>(Name[0])))
    Name += advance();

  Token T;
  T.Kind = TokenKind::Character;
  T.Range = {Start, here()};
  if (Name.size() == 1) {
    T.CharValue = static_cast<unsigned char>(Name[0]);
    return T;
  }
  if (Name == "space")
    T.CharValue = ' ';
  else if (Name == "newline" || Name == "linefeed")
    T.CharValue = '\n';
  else if (Name == "tab")
    T.CharValue = '\t';
  else if (Name == "return")
    T.CharValue = '\r';
  else if (Name == "nul" || Name == "null")
    T.CharValue = 0;
  else
    fail("unknown character name #\\" + Name, Start);
  return T;
}

Token Lexer::lexAtom(SourcePos Start) {
  std::string Spelling;
  while (!atEnd() && isSymbolChar(peek()))
    Spelling += advance();
  assert(!Spelling.empty() && "lexAtom called on non-atom");

  Token T;
  T.Range = {Start, here()};

  if (Spelling == ".") {
    T.Kind = TokenKind::Dot;
    return T;
  }
  int64_t IV;
  if (parseInt64(Spelling, IV)) {
    T.Kind = TokenKind::Fixnum;
    T.IntValue = IV;
    return T;
  }
  double DV;
  // Only treat as a number when it starts like one: avoids classifying
  // symbols such as `1+` oddly while accepting 1.5, -2e3, .5.
  char C0 = Spelling[0];
  bool NumberLike = std::isdigit(static_cast<unsigned char>(C0)) ||
                    ((C0 == '+' || C0 == '-' || C0 == '.') &&
                     Spelling.size() > 1 &&
                     (std::isdigit(static_cast<unsigned char>(Spelling[1])) ||
                      Spelling[1] == '.'));
  if (NumberLike && parseDouble(Spelling, DV)) {
    T.Kind = TokenKind::Flonum;
    T.FloatValue = DV;
    return T;
  }
  T.Kind = TokenKind::Symbol;
  T.Text = std::move(Spelling);
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourcePos Start = here();
  Token T;
  T.Range = {Start, Start};
  if (atEnd())
    return T;

  char C = peek();
  switch (C) {
  case '(':
  case '[':
    advance();
    T.Kind = TokenKind::LParen;
    T.Range.End = here();
    return T;
  case ')':
  case ']':
    advance();
    T.Kind = TokenKind::RParen;
    T.Range.End = here();
    return T;
  case '\'':
    advance();
    T.Kind = TokenKind::Quote;
    T.Range.End = here();
    return T;
  case '`':
    advance();
    T.Kind = TokenKind::Quasiquote;
    T.Range.End = here();
    return T;
  case ',':
    advance();
    if (peek() == '@') {
      advance();
      T.Kind = TokenKind::UnquoteSplicing;
    } else {
      T.Kind = TokenKind::Unquote;
    }
    T.Range.End = here();
    return T;
  case '"':
    advance();
    return lexString(Start);
  case '#': {
    advance();
    char D = peek();
    switch (D) {
    case '(':
      advance();
      T.Kind = TokenKind::VecOpen;
      T.Range.End = here();
      return T;
    case '\'':
      advance();
      T.Kind = TokenKind::SyntaxQuote;
      T.Range.End = here();
      return T;
    case '`':
      advance();
      T.Kind = TokenKind::Quasisyntax;
      T.Range.End = here();
      return T;
    case ',':
      advance();
      if (peek() == '@') {
        advance();
        T.Kind = TokenKind::UnsyntaxSplicing;
      } else {
        T.Kind = TokenKind::Unsyntax;
      }
      T.Range.End = here();
      return T;
    case ';':
      advance();
      T.Kind = TokenKind::DatumComment;
      T.Range.End = here();
      return T;
    case 't':
    case 'f': {
      advance();
      // Reject #true-ish runs that are not just #t/#f followed by a
      // delimiter.
      if (!atEnd() && isSymbolChar(peek()))
        fail("bad boolean literal", Start);
      T.Kind = TokenKind::Boolean;
      T.BoolValue = D == 't';
      T.Range.End = here();
      return T;
    }
    case '\\':
      advance();
      return lexCharacter(Start);
    default:
      fail(std::string("unknown reader syntax #") + D, Start);
    }
  }
  default:
    if (isSymbolChar(C))
      return lexAtom(Start);
    fail(std::string("stray character '") + C + "'", Start);
  }
}
