//===- reader/Reader.cpp --------------------------------------------------===//

#include "reader/Reader.h"

#include "support/Diagnostics.h"
#include "support/ExecGuard.h"

using namespace pgmp;

Reader::Reader(Heap &H, SymbolTable &Symbols, SourceObjectTable &Sources,
               std::string_view Text, std::string FileName)
    : H(H), Symbols(Symbols), Sources(Sources), Lex(Text, FileName),
      FileName(std::move(FileName)) {}

void Reader::fail(const std::string &Msg, const SourcePos &At) {
  raiseError(Msg, FileName + ":" + std::to_string(At.Line) + ":" +
                      std::to_string(At.Column));
}

const SourceObject *Reader::sourceFor(const SourceRange &R) {
  return Sources.intern(FileName, R.Begin.Offset, R.End.Offset, R.Begin.Line,
                        R.Begin.Column);
}

Token Reader::nextMeaningful() {
  while (true) {
    Token T = Lex.next();
    if (T.Kind != TokenKind::DatumComment)
      return T;
    // #; — skip the next datum entirely.
    Token Skipped = Lex.next();
    if (Skipped.Kind == TokenKind::Eof)
      fail("end of input after #;", T.Range.Begin);
    readDatum(Skipped);
  }
}

std::optional<Value> Reader::readOne() {
  // Everything a datum read allocates (pairs, syntax wrappers, strings)
  // is attributed to the reader's allocation site.
  AllocSiteScope Site(H, AllocSite::ReaderDatum);
  Token T = nextMeaningful();
  if (T.Kind == TokenKind::Eof)
    return std::nullopt;
  return readDatum(T);
}

std::vector<Value> Reader::readAll() {
  std::vector<Value> Out;
  while (auto V = readOne())
    Out.push_back(*V);
  return Out;
}

Value Reader::wrapAtom(const Token &T, Value Datum) {
  return makeSyntax(H, Datum, ScopeSet(), sourceFor(T.Range));
}

Value Reader::readAbbreviation(const Token &T, const char *HeadName) {
  Token Next = nextMeaningful();
  if (Next.Kind == TokenKind::Eof)
    fail(std::string("end of input after ") + HeadName, T.Range.Begin);
  Value Inner = readDatum(Next);
  Value Head = makeSyntax(H, Symbols.internValue(HeadName), ScopeSet(),
                          sourceFor(T.Range));
  SourcePos EndPos = Next.Range.End;
  if (const SourceObject *S = syntaxSource(Inner))
    EndPos.Offset = S->EndOffset; // cover the whole abbreviated datum
  SourceRange Whole{T.Range.Begin, EndPos};
  Value List = H.cons(Head, H.cons(Inner, Value::nil()));
  return makeSyntax(H, List, ScopeSet(), sourceFor(Whole));
}

Value Reader::readListTail(const SourcePos &OpenPos) {
  std::vector<Value> Elems;
  Value Tail = Value::nil();
  SourcePos EndPos = OpenPos;
  while (true) {
    Token T = nextMeaningful();
    if (T.Kind == TokenKind::Eof)
      fail("unterminated list", OpenPos);
    if (T.Kind == TokenKind::RParen) {
      EndPos = T.Range.End;
      break;
    }
    if (T.Kind == TokenKind::Dot) {
      if (Elems.empty())
        fail("dot at start of list", T.Range.Begin);
      Token After = nextMeaningful();
      if (After.Kind == TokenKind::Eof || After.Kind == TokenKind::RParen)
        fail("expected datum after dot", T.Range.Begin);
      Tail = readDatum(After);
      Token Close = nextMeaningful();
      if (Close.Kind != TokenKind::RParen)
        fail("expected ) after dotted tail", Close.Range.Begin);
      EndPos = Close.Range.End;
      break;
    }
    Elems.push_back(readDatum(T));
  }
  Value Spine = Tail;
  for (size_t I = Elems.size(); I > 0; --I)
    Spine = H.cons(Elems[I - 1], Spine);
  return makeSyntax(H, Spine, ScopeSet(),
                    sourceFor(SourceRange{OpenPos, EndPos}));
}

Value Reader::readVector(const SourcePos &OpenPos) {
  std::vector<Value> Elems;
  while (true) {
    Token T = nextMeaningful();
    if (T.Kind == TokenKind::Eof)
      fail("unterminated vector", OpenPos);
    if (T.Kind == TokenKind::RParen) {
      return makeSyntax(H, H.vector(std::move(Elems)), ScopeSet(),
                        sourceFor(SourceRange{OpenPos, T.Range.End}));
    }
    if (T.Kind == TokenKind::Dot)
      fail("dot inside vector", T.Range.Begin);
    Elems.push_back(readDatum(T));
  }
}

Value Reader::tripNestingDepth(const Token &T) {
  --Depth;
  raiseGuardTrip(GuardKind::Depth,
                 "datum nesting exceeds reader limit of " +
                     std::to_string(MaxNestingDepth),
                 FileName + ":" + std::to_string(T.Range.Begin.Line) + ":" +
                     std::to_string(T.Range.Begin.Column));
}

Value Reader::readDatum(const Token &T) {
  // Recursion here tracks input nesting 1:1, so adversarial input like
  // 100k open parens would overflow the C++ stack long before finishing.
  // Trip a catchable depth guard instead (message-building outlined off
  // the hot wrapper); RAII keeps the counter correct across the error
  // unwinds of nested datums (#; skipping, dotted tails).
  if (++Depth > MaxNestingDepth)
    return tripNestingDepth(T);
  struct DepthGuard {
    uint32_t &D;
    ~DepthGuard() { --D; }
  } Guard{Depth};
  return readDatumInner(T);
}

Value Reader::readDatumInner(const Token &T) {
  switch (T.Kind) {
  case TokenKind::LParen:
    return readListTail(T.Range.Begin);
  case TokenKind::VecOpen:
    return readVector(T.Range.Begin);
  case TokenKind::RParen:
    fail("unexpected )", T.Range.Begin);
  case TokenKind::Dot:
    fail("unexpected .", T.Range.Begin);
  case TokenKind::Quote:
    return readAbbreviation(T, "quote");
  case TokenKind::Quasiquote:
    return readAbbreviation(T, "quasiquote");
  case TokenKind::Unquote:
    return readAbbreviation(T, "unquote");
  case TokenKind::UnquoteSplicing:
    return readAbbreviation(T, "unquote-splicing");
  case TokenKind::SyntaxQuote:
    return readAbbreviation(T, "syntax");
  case TokenKind::Quasisyntax:
    return readAbbreviation(T, "quasisyntax");
  case TokenKind::Unsyntax:
    return readAbbreviation(T, "unsyntax");
  case TokenKind::UnsyntaxSplicing:
    return readAbbreviation(T, "unsyntax-splicing");
  case TokenKind::Boolean:
    return wrapAtom(T, Value::boolean(T.BoolValue));
  case TokenKind::Fixnum:
    return wrapAtom(T, Value::fixnum(T.IntValue));
  case TokenKind::Flonum:
    return wrapAtom(T, Value::flonum(T.FloatValue));
  case TokenKind::Character:
    return wrapAtom(T, Value::charval(T.CharValue));
  case TokenKind::String:
    return wrapAtom(T, H.string(T.Text));
  case TokenKind::Symbol:
    return wrapAtom(T, Symbols.internValue(T.Text));
  case TokenKind::DatumComment:
  case TokenKind::Eof:
    break;
  }
  fail("unexpected end of input", T.Range.Begin);
}

std::vector<Value> pgmp::readString(Heap &H, SymbolTable &Symbols,
                                    SourceObjectTable &Sources,
                                    std::string_view Text,
                                    std::string FileName) {
  Reader R(H, Symbols, Sources, Text, std::move(FileName));
  return R.readAll();
}
