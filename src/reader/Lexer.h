//===- reader/Lexer.h - Scheme tokenizer ----------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for the Scheme reader. Tracks byte offsets and line/column so
/// every token — and hence every syntax object — carries the source range
/// that becomes its profile point.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_READER_LEXER_H
#define PGMP_READER_LEXER_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace pgmp {

enum class TokenKind : uint8_t {
  Eof,
  LParen,
  RParen,
  VecOpen,          ///< #(
  Quote,            ///< '
  Quasiquote,       ///< `
  Unquote,          ///< ,
  UnquoteSplicing,  ///< ,@
  SyntaxQuote,      ///< #'
  Quasisyntax,      ///< #`
  Unsyntax,         ///< #,
  UnsyntaxSplicing, ///< #,@
  Dot,              ///< . in dotted pairs
  DatumComment,     ///< #; — reader must skip the next datum
  Boolean,
  Fixnum,
  Flonum,
  Character,
  String,
  Symbol,
};

struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceRange Range;
  std::string Text;   ///< symbol spelling or decoded string contents
  int64_t IntValue = 0;
  double FloatValue = 0;
  bool BoolValue = false;
  uint32_t CharValue = 0;
};

/// Produces tokens from one buffer. Raises SchemeError on malformed input
/// (unterminated strings, bad characters, etc).
class Lexer {
public:
  Lexer(std::string_view Text, std::string FileName);

  Token next();

private:
  char peek(size_t Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Text.size(); }
  SourcePos here() const;
  void skipWhitespaceAndComments();
  Token lexString(SourcePos Start);
  Token lexCharacter(SourcePos Start);
  Token lexAtom(SourcePos Start);
  [[noreturn]] void fail(const std::string &Msg, const SourcePos &At);

  std::string_view Text;
  std::string FileName;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

/// True if \p C may appear in a symbol.
bool isSymbolChar(char C);

} // namespace pgmp

#endif // PGMP_READER_LEXER_H
