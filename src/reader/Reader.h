//===- reader/Reader.h - S-expression reader ------------------*- C++ -*-===//
///
/// \file
/// Reads text into syntax objects. Every syntax object carries the source
/// object covering its text, exactly like the Chez Scheme reader (paper,
/// Section 4.1) — this is what makes every source expression a potential
/// profile point.
///
/// Shape invariant: a compound syntax object's inner datum is a spine of
/// plain pairs whose elements are syntax objects; an improper tail is a
/// (non-pair) syntax object.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_READER_READER_H
#define PGMP_READER_READER_H

#include "profile/SourceObject.h"
#include "reader/Lexer.h"
#include "syntax/Syntax.h"

#include <optional>
#include <vector>

namespace pgmp {

/// Reads one buffer's worth of top-level datums.
class Reader {
public:
  Reader(Heap &H, SymbolTable &Symbols, SourceObjectTable &Sources,
         std::string_view Text, std::string FileName);

  /// Reads the next top-level datum, or nullopt at end of input. Raises
  /// SchemeError on malformed input.
  std::optional<Value> readOne();

  /// Reads all top-level datums.
  std::vector<Value> readAll();

  /// Maximum datum nesting the reader will recurse into before raising a
  /// GuardTrip(Depth). readDatum recursion tracks input nesting 1:1, so
  /// without this cap a few hundred KiB of "((((((..." overflows the C++
  /// stack before any Scheme-level limit can see it. 2000 is far beyond
  /// real code and comfortably inside sanitizer-inflated stack frames.
  static constexpr uint32_t MaxNestingDepth = 2000;

private:
  Value readDatum(const Token &T);
  Value readDatumInner(const Token &T);
  /// Cold outlined raise for the nesting cap (never returns).
  Value tripNestingDepth(const Token &T);
  Value readListTail(const SourcePos &OpenPos);
  Value readVector(const SourcePos &OpenPos);
  Value readAbbreviation(const Token &T, const char *HeadName);
  Value wrapAtom(const Token &T, Value Datum);
  const SourceObject *sourceFor(const SourceRange &R);
  Token nextMeaningful();
  [[noreturn]] void fail(const std::string &Msg, const SourcePos &At);

  Heap &H;
  SymbolTable &Symbols;
  SourceObjectTable &Sources;
  Lexer Lex;
  std::string FileName;
  uint32_t Depth = 0; ///< current readDatum recursion depth
};

/// Convenience: read every datum in \p Text as file \p FileName.
std::vector<Value> readString(Heap &H, SymbolTable &Symbols,
                              SourceObjectTable &Sources,
                              std::string_view Text, std::string FileName);

} // namespace pgmp

#endif // PGMP_READER_READER_H
