//===- syntax/SymbolTable.cpp ---------------------------------------------===//

#include "syntax/SymbolTable.h"

using namespace pgmp;

Symbol *SymbolTable::intern(std::string_view Name) {
  std::string Key(Name);
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second.get();
  auto Sym = std::make_unique<Symbol>(Key, NextId++, /*Interned=*/true);
  Symbol *Raw = Sym.get();
  Interned.emplace(std::move(Key), std::move(Sym));
  return Raw;
}

Symbol *SymbolTable::gensym(std::string_view Prefix) {
  std::string Name(Prefix);
  Name += "~g";
  Name += std::to_string(NextGensym++);
  auto Sym = std::make_unique<Symbol>(std::move(Name), NextId++,
                                      /*Interned=*/false);
  Symbol *Raw = Sym.get();
  Gensyms.push_back(std::move(Sym));
  return Raw;
}
