//===- syntax/Value.cpp ---------------------------------------------------===//

#include "syntax/Value.h"

#include "syntax/Heap.h"
#include "syntax/SymbolTable.h"
#include "syntax/Syntax.h"

using namespace pgmp;

#define PGMP_DEFINE_AS(NAME, TYPE, PRED)                                       \
  TYPE *Value::NAME() const {                                                  \
    assert(PRED() && "value kind mismatch in " #NAME);                         \
    return static_cast<TYPE *>(Payload.O);                                     \
  }

PGMP_DEFINE_AS(asSymbol, Symbol, isSymbol)
PGMP_DEFINE_AS(asPair, Pair, isPair)
PGMP_DEFINE_AS(asString, StringObj, isString)
PGMP_DEFINE_AS(asVector, VectorObj, isVector)
PGMP_DEFINE_AS(asHash, HashTable, isHash)
PGMP_DEFINE_AS(asClosure, Closure, isClosure)
PGMP_DEFINE_AS(asPrimitive, Primitive, isPrimitive)
PGMP_DEFINE_AS(asSyntax, Syntax, isSyntax)
PGMP_DEFINE_AS(asBox, Box, isBox)

EnvObj *Value::asEnv() const {
  assert(K == ValueKind::Env && "value kind mismatch in asEnv");
  return static_cast<EnvObj *>(Payload.O);
}

#undef PGMP_DEFINE_AS

const char *pgmp::valueKindName(ValueKind K) {
  switch (K) {
  case ValueKind::Nil:
    return "nil";
  case ValueKind::Bool:
    return "bool";
  case ValueKind::Fixnum:
    return "fixnum";
  case ValueKind::Flonum:
    return "flonum";
  case ValueKind::Char:
    return "char";
  case ValueKind::Eof:
    return "eof";
  case ValueKind::Void:
    return "void";
  case ValueKind::Unbound:
    return "unbound";
  case ValueKind::Symbol:
    return "symbol";
  case ValueKind::String:
    return "string";
  case ValueKind::Pair:
    return "pair";
  case ValueKind::Vector:
    return "vector";
  case ValueKind::Hash:
    return "hash";
  case ValueKind::Closure:
    return "closure";
  case ValueKind::VmClosure:
    return "vm-closure";
  case ValueKind::Primitive:
    return "primitive";
  case ValueKind::Syntax:
    return "syntax";
  case ValueKind::Box:
    return "box";
  case ValueKind::Env:
    return "env";
  }
  return "?";
}

bool pgmp::eqvValues(const Value &A, const Value &B) {
  // eq? already covers numbers and chars because they are immediates.
  return A == B;
}

bool pgmp::equalValues(const Value &A, const Value &B) {
  if (A == B)
    return true;
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case ValueKind::String:
    return A.asString()->Text == B.asString()->Text;
  case ValueKind::Pair:
    return equalValues(A.asPair()->Car, B.asPair()->Car) &&
           equalValues(A.asPair()->Cdr, B.asPair()->Cdr);
  case ValueKind::Vector: {
    const auto &EA = A.asVector()->Elems;
    const auto &EB = B.asVector()->Elems;
    if (EA.size() != EB.size())
      return false;
    for (size_t I = 0, E = EA.size(); I != E; ++I)
      if (!equalValues(EA[I], EB[I]))
        return false;
    return true;
  }
  default:
    return false;
  }
}

static uint64_t hashCombine(uint64_t A, uint64_t B) {
  return A ^ (B + 0x9e3779b97f4a7c15ull + (A << 6) + (A >> 2));
}

uint64_t pgmp::eqHash(const Value &V) {
  switch (V.kind()) {
  case ValueKind::Nil:
    return 0x11;
  case ValueKind::Eof:
    return 0x22;
  case ValueKind::Void:
    return 0x33;
  case ValueKind::Unbound:
    return 0x66;
  case ValueKind::Bool:
    return V.asBool() ? 0x44 : 0x55;
  case ValueKind::Fixnum:
    return hashCombine(1, static_cast<uint64_t>(V.asFixnum()));
  case ValueKind::Flonum: {
    double D = V.asFlonum();
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(D));
    __builtin_memcpy(&Bits, &D, sizeof(Bits));
    return hashCombine(2, Bits);
  }
  case ValueKind::Char:
    return hashCombine(3, V.asChar());
  default:
    return hashCombine(4, reinterpret_cast<uint64_t>(V.obj()));
  }
}

uint64_t pgmp::equalHash(const Value &V) {
  switch (V.kind()) {
  case ValueKind::String: {
    uint64_t H = 5;
    for (char C : V.asString()->Text)
      H = hashCombine(H, static_cast<uint8_t>(C));
    return H;
  }
  case ValueKind::Pair:
    return hashCombine(equalHash(V.asPair()->Car),
                       equalHash(V.asPair()->Cdr));
  case ValueKind::Vector: {
    uint64_t H = 7;
    for (const Value &E : V.asVector()->Elems)
      H = hashCombine(H, equalHash(E));
    return H;
  }
  case ValueKind::Symbol:
    // Symbols are interned; identity hash is stable and equal?-consistent.
    return hashCombine(6, V.asSymbol()->Id);
  default:
    return eqHash(V);
  }
}
