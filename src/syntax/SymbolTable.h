//===- syntax/SymbolTable.h - Interned symbols ----------------*- C++ -*-===//
///
/// \file
/// Interned Scheme symbols. Two symbols with the same spelling are the
/// same object, so eq? on symbols is pointer identity. gensym produces
/// uninterned symbols with unique spellings; the counter is per-table, so
/// a deterministic program produces a deterministic gensym sequence (this
/// matters for reproducible expansion, cf. make-profile-point).
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SYNTAX_SYMBOLTABLE_H
#define PGMP_SYNTAX_SYMBOLTABLE_H

#include "syntax/Heap.h"
#include "syntax/Value.h"

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pgmp {

/// An interned (or gensym'd) symbol.
class Symbol : public Obj {
public:
  Symbol(std::string Name, uint32_t Id, bool Interned)
      : Obj(ValueKind::Symbol), Name(std::move(Name)), Id(Id),
        Interned(Interned) {}
  std::string Name;
  uint32_t Id;
  bool Interned;
};

/// Owns all symbols of one engine.
class SymbolTable {
public:
  /// Returns the unique symbol spelled \p Name.
  Symbol *intern(std::string_view Name);

  /// Fresh uninterned symbol whose spelling starts with \p Prefix.
  Symbol *gensym(std::string_view Prefix);

  Value internValue(std::string_view Name) {
    return Value::object(ValueKind::Symbol, intern(Name));
  }

private:
  std::unordered_map<std::string, std::unique_ptr<Symbol>> Interned;
  std::vector<std::unique_ptr<Symbol>> Gensyms;
  uint32_t NextId = 0;
  uint32_t NextGensym = 0;
};

} // namespace pgmp

#endif // PGMP_SYNTAX_SYMBOLTABLE_H
