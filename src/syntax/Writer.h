//===- syntax/Writer.h - Printing Scheme values ---------------*- C++ -*-===//
///
/// \file
/// Renders values in `write` notation (strings quoted, chars as #\x) or
/// `display` notation (strings raw). Syntax objects print as their datum
/// prefixed with #<syntax ...> unless transparency is requested.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SYNTAX_WRITER_H
#define PGMP_SYNTAX_WRITER_H

#include "syntax/Value.h"

#include <string>

namespace pgmp {

struct WriteOptions {
  bool DisplayMode = false;    ///< display vs write notation
  bool SyntaxAsDatum = false;  ///< print syntax objects as bare datums
  unsigned MaxDepth = 512;     ///< recursion guard
};

/// Renders \p V to text.
std::string writeValue(const Value &V, const WriteOptions &Opts = {});

/// Shorthand for write notation.
inline std::string writeToString(const Value &V) { return writeValue(V); }

/// Shorthand for display notation.
inline std::string displayToString(const Value &V) {
  WriteOptions Opts;
  Opts.DisplayMode = true;
  return writeValue(V, Opts);
}

} // namespace pgmp

#endif // PGMP_SYNTAX_WRITER_H
