//===- syntax/Heap.h - Arena heap objects and allocation ------*- C++ -*-===//
///
/// \file
/// Heap object definitions (pairs, strings, vectors, hash tables,
/// closures, primitives, boxes, environment frames) and the Heap that owns
/// them. The heap is a block-based bump-pointer arena: `make<T>` bumps a
/// pointer inside a fixed-size chunk on the fast path and acquires a new
/// chunk on overflow, so a cons or a closure frame costs pointer
/// arithmetic, not a malloc.
///
/// The arena is generational (DESIGN.md Section 6). Ordinary allocation
/// lands in the *nursery*; at an explicit quiescent point — an Engine run
/// boundary, never inside evaluation — `collect()` evacuates everything
/// reachable from the roots into *tenured* chunks with pointer
/// forwarding, then frees the nursery chunks wholesale. An engine that
/// never calls collect() (the default ReclaimMode::Off) keeps the
/// original contract: addresses stable for the session, everything freed
/// at teardown. Under reclamation the stable-address contract is scoped:
/// pointers survive *within* a run, and across runs only through the
/// traced roots (globals, retained code, the tier cache), which the
/// collector rewrites.
///
/// Every allocation is attributed to an AllocSite (AllocSite.h) at the
/// cost of a couple of indexed adds; the resulting site profile —
/// objects, bytes, survival — drives the ReclaimPolicy: high-survival
/// sites allocate straight into tenured chunks (pre-tenuring), heavy
/// survivor sites co-locate into a shared "hot" tenured stream, and the
/// nursery chunk size tracks the observed per-region allocation volume.
///
/// Obj carries no vtable: the Kind byte is the only discriminator, and
/// teardown runs through a side list that records just the objects whose
/// type has a non-trivial destructor (strings, vectors, hash tables,
/// syntax, primitives). Bulk destruction is therefore O(destructible
/// objects), and trivially-destructible kinds — pairs, closures, boxes,
/// env frames — are reclaimed by freeing the chunks alone.
///
/// Environment frames store their slots inline after the EnvObj header
/// (single allocation per frame); create them with makeEnv/makeEnvFrom,
/// not make<EnvObj>. Symbols are interned separately (see SymbolTable.h)
/// and syntax objects are defined in Syntax.h; syntax is Heap-allocated,
/// symbols are owned by their table.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SYNTAX_HEAP_H
#define PGMP_SYNTAX_HEAP_H

#include "syntax/AllocSite.h"
#include "syntax/Value.h"

#include <array>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pgmp {

class Context;
class GcVisitor;
class LambdaExpr;

/// When the engine reclaims nursery memory. Off preserves the historical
/// contract (stable addresses, teardown-only freeing); Boundary runs a
/// region reclamation at every Engine run boundary (evalString /
/// callGlobal epilogue), which is what `pgmpi serve` uses to hold a
/// million-request replay in bounded memory.
enum class ReclaimMode : uint8_t { Off, Boundary };

/// Base of every heap-allocated Scheme object. Deliberately vtable-free:
/// the Kind tag discriminates, and the owning Heap destroys
/// non-trivially-destructible objects through a typed side list, so the
/// base needs no virtual destructor (and a Pair stays 40 bytes, not 56).
/// Site and GcStamp live in the padding the 8-byte member alignment of
/// every subclass forces anyway, so the header stays 8 bytes.
class Obj {
public:
  ValueKind Kind;
  /// AllocSite the object was allocated at (survival attribution).
  uint16_t Site = 0;
  /// Collector visit stamp: equals the heap's current collection epoch
  /// iff the object was already reached this cycle. 0 = never visited.
  uint32_t GcStamp = 0;

protected:
  explicit Obj(ValueKind K) : Kind(K) {}
  /// Evacuation move-constructs survivors into tenured chunks; the moved
  /// base keeps Kind/Site (GcStamp is restamped by the collector).
  Obj(Obj &&) = default;
  ~Obj() = default; ///< non-virtual; only the Heap destroys objects

private:
  Obj(const Obj &) = delete;
  Obj &operator=(const Obj &) = delete;
};

/// A cons cell.
class Pair : public Obj {
public:
  Pair(Value Car, Value Cdr) : Obj(ValueKind::Pair), Car(Car), Cdr(Cdr) {}
  Value Car;
  Value Cdr;
};

/// A mutable Scheme string.
class StringObj : public Obj {
public:
  explicit StringObj(std::string S)
      : Obj(ValueKind::String), Text(std::move(S)) {}
  std::string Text;
};

/// A Scheme vector.
class VectorObj : public Obj {
public:
  explicit VectorObj(std::vector<Value> Elems)
      : Obj(ValueKind::Vector), Elems(std::move(Elems)) {}
  std::vector<Value> Elems;
};

/// Equality discipline of a hash table.
enum class HashKind : uint8_t { Eq, Eqv, Equal };

/// A Scheme hashtable (make-eq-hashtable / make-equal-hashtable / ...).
class HashTable : public Obj {
public:
  explicit HashTable(HashKind HK);

  /// Returns the stored value or \p Default.
  Value get(const Value &Key, const Value &Default) const;
  bool contains(const Value &Key) const;
  void set(const Value &Key, const Value &Val);
  bool erase(const Value &Key);
  size_t size() const { return Table.size(); }

  /// Stable key order: insertion order (Scheme hashtable-keys users in the
  /// case studies rely on determinism for reproducible expansion). The
  /// list is cached under a structural version stamp — it is rebuilt only
  /// after an insertion or removal, so meta-programs that walk the keys
  /// inside expansion (the object-system case study does, per method
  /// table) pay the sort once per table shape, not per call. Value
  /// updates of existing keys do not invalidate the cache. The reference
  /// is valid until the next insertion or removal.
  const std::vector<Value> &keysInInsertionOrder() const;

  /// Collector support: forwards every key and value through \p V and
  /// re-inserts under the new identities. Eq/eqv tables hash by pointer,
  /// so moving a key changes its bucket — the table must be rebuilt, not
  /// patched. Insertion indices are preserved; the order cache (which
  /// holds stale Values) is dropped.
  void rehashForGc(GcVisitor &V);

  HashKind HK;

private:
  struct Hasher {
    HashKind HK;
    uint64_t operator()(const Value &V) const;
  };
  struct Eq {
    HashKind HK;
    bool operator()(const Value &A, const Value &B) const;
  };
  /// Maps key -> (value, insertion index).
  std::unordered_map<Value, std::pair<Value, uint64_t>, Hasher, Eq> Table;
  uint64_t NextInsertIndex = 0;
  /// Structural version: bumped on insert/erase, not on value update.
  uint64_t Version = 0;
  mutable uint64_t OrderCacheVersion = ~uint64_t(0);
  mutable std::vector<Value> OrderCache;
};

/// A user procedure: a compiled lambda template plus its captured frame.
class Closure : public Obj {
public:
  Closure(const LambdaExpr *Template, EnvObj *Captured)
      : Obj(ValueKind::Closure), Template(Template), Captured(Captured) {}
  const LambdaExpr *Template;
  EnvObj *Captured;
};

/// Signature of a built-in procedure.
using PrimFn = Value (*)(Context &, Value *Args, size_t NumArgs);

/// Fixnum-specializable primitives the VM call paths recognize. The fast
/// paths must be observationally identical to the registered handler on
/// fixnum inputs (same wrap-on-overflow int64 arithmetic, same
/// compare-as-double semantics), so they are a dispatch shortcut, never a
/// semantic change; anything non-fixnum falls through to the handler.
enum class PrimIntrinsic : uint8_t {
  None,
  Add,   ///< (+ a b)
  Sub,   ///< (- a b)
  Mul,   ///< (* a b)
  NumEq, ///< (= a b)
  Lt,    ///< (< a b)
  Gt,    ///< (> a b)
  Le,    ///< (<= a b)
  Ge,    ///< (>= a b)
  ZeroP  ///< (zero? a)
};

/// A built-in procedure with arity checking metadata.
class Primitive : public Obj {
public:
  Primitive(std::string Name, int MinArgs, int MaxArgs, PrimFn Fn)
      : Obj(ValueKind::Primitive), Name(std::move(Name)), MinArgs(MinArgs),
        MaxArgs(MaxArgs), Fn(Fn) {}
  std::string Name;
  int MinArgs;
  int MaxArgs; ///< -1 for variadic
  PrimFn Fn;
  PrimIntrinsic Intr = PrimIntrinsic::None;
};

/// A single-cell mutable box.
class Box : public Obj {
public:
  explicit Box(Value V) : Obj(ValueKind::Box), Boxed(V) {}
  Value Boxed;
};

/// A runtime environment frame: fixed slots stored inline directly after
/// this header (one arena allocation per frame), parent chain. Variable
/// references are compiled to (depth, index) pairs. Created through
/// Heap::makeEnv / Heap::makeEnvFrom, which size the allocation.
class EnvObj : public Obj {
public:
  EnvObj *Parent;
  uint32_t NumSlots;

  Value *slots() {
    return reinterpret_cast<Value *>(reinterpret_cast<char *>(this) +
                                     sizeof(EnvObj));
  }
  const Value *slots() const {
    return reinterpret_cast<const Value *>(
        reinterpret_cast<const char *>(this) + sizeof(EnvObj));
  }
  Value &slot(size_t I) {
    assert(I < NumSlots && "env slot index out of range");
    return slots()[I];
  }

private:
  friend class Heap;
  EnvObj(EnvObj *Parent, uint32_t NumSlots)
      : Obj(ValueKind::Env), Parent(Parent), NumSlots(NumSlots) {}
};

/// Arena-style owner of all heap objects of one engine: chunked
/// bump-pointer allocation, generational reclamation at explicit
/// quiescent points, bulk teardown. One Heap belongs to one Context and
/// is touched only by the thread evaluating on it (EnginePool workers
/// each own their Heap; nothing is shared).
class Heap {
public:
  /// Geometry of a normal chunk. Allocations larger than the active
  /// chunk size get a dedicated oversize chunk of exactly their size.
  static constexpr size_t ChunkBytes = 64 * 1024;

  /// Always-on allocation counters (a handful of adds per allocation;
  /// the observability layer reads them through StatsRegistry and the
  /// Chrome trace). Cumulative counters (BytesAllocated, ObjectsByKind,
  /// ChunksAcquired) only grow; BytesReserved is the *current* footprint
  /// — it shrinks when a collection frees nursery chunks — and
  /// PeakBytesReserved keeps the high-water mark the old reserved
  /// counter used to be.
  struct AllocStats {
    uint64_t BytesAllocated = 0;    ///< cumulative rounded object bytes
    uint64_t BytesReserved = 0;     ///< current sum of owned chunk sizes
    uint64_t PeakBytesReserved = 0; ///< high-water mark of BytesReserved
    uint64_t ChunksAcquired = 0;    ///< normal + oversize chunks, cumulative
    uint64_t OversizeChunks = 0;    ///< dedicated single-allocation chunks
    uint64_t ChunksFreed = 0;       ///< nursery chunks released by collect()
    uint64_t Collections = 0;       ///< region reclamations run
    uint64_t MajorCollections = 0;  ///< full (nursery + tenured) cycles
    uint64_t BytesReclaimed = 0;    ///< dead nursery bytes dropped, cumulative
    uint64_t ObjectsEvacuated = 0;  ///< survivors copied to tenured chunks
    uint64_t BytesEvacuated = 0;    ///< bytes of those survivors
    uint64_t PreTenuredObjects = 0; ///< allocations routed straight to tenured
    uint64_t ReclaimAborts = 0;     ///< cycles degraded by an evac alloc fail
    std::array<uint64_t, NumValueKinds> ObjectsByKind{};
  };

  /// Result of one collect() cycle.
  struct ReclaimResult {
    uint64_t BytesReclaimed = 0;
    uint64_t ObjectsEvacuated = 0;
    uint64_t BytesEvacuated = 0;
    bool Major = false;
    /// An allocation failure (injected fault) interrupted evacuation; the
    /// cycle degraded to promoting every nursery chunk wholesale — no
    /// memory reclaimed, but the heap is fully consistent.
    bool Aborted = false;
  };

  /// The profile-selected reclamation policy. Default-constructed policy
  /// is inert (no pre-tenuring, no co-location, stock nursery chunks), so
  /// an engine that never selects one behaves exactly like the
  /// pre-generational arena plus boundary reclamation.
  struct ReclaimPolicy {
    /// Chunk size for nursery chunks, sized from the observed per-region
    /// allocation volume (bounded to [ChunkBytes, 16 * ChunkBytes]).
    size_t NurseryChunkBytes = ChunkBytes;
    /// Sites whose effective survival rate is high enough that nursery
    /// round-trips are wasted work: allocate straight into tenured.
    std::array<bool, NumAllocSites> PreTenure{};
    /// Sites carrying a dominant share of survivor bytes: their tenured
    /// allocations co-locate in a dedicated "hot" chunk stream, separate
    /// from the cold evacuation stream.
    std::array<bool, NumAllocSites> HotSite{};
    /// Bumped every time a re-selection actually changes the policy.
    uint64_t Epoch = 0;
  };

  /// Hooks for heap kinds whose layout lives outside syntax/ (VmClosure:
  /// the VM registers these from installVm). Relocate placement-news a
  /// copy of \p O into \p Mem (Size bytes); Trace visits its children.
  struct ExternalKindOps {
    size_t Size = 0;
    Obj *(*Relocate)(void *Mem, Obj *O) = nullptr;
    void (*Trace)(Obj *O, GcVisitor &V) = nullptr;
  };

  Heap() = default;
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Allocates and constructs a \p T at allocation site \p S
  /// (AllocSite::Ambient = the site set by the innermost AllocSiteScope).
  /// Fast path: one pointer bump plus the site attribution adds. Types
  /// with a non-trivial destructor are additionally linked into the
  /// generation's destructible side list (one extra 16-byte header in the
  /// same bump allocation), so teardown visits only the objects that need
  /// it.
  template <typename T, typename... Args>
  T *makeAt(AllocSite S, Args &&...ArgList) {
    static_assert(std::is_base_of_v<Obj, T>, "Heap allocates Obj subclasses");
    static_assert(!std::is_same_v<T, EnvObj>,
                  "EnvObj stores slots inline; use makeEnv/makeEnvFrom");
    static_assert(alignof(T) <= Alignment,
                  "arena alignment is 8; over-aligned Obj subclass");
    if (S == AllocSite::Ambient)
      S = CurSite;
    const bool Tenure = Policy.PreTenure[static_cast<size_t>(S)];
    T *O;
    size_t Bytes;
    if constexpr (std::is_trivially_destructible_v<T>) {
      Bytes = roundUp(sizeof(T));
      void *P = Tenure ? allocateTenured(Bytes, S) : allocateRaw(Bytes);
      O = new (P) T(std::forward<Args>(ArgList)...);
    } else {
      Bytes = roundUp(sizeof(DtorNode) + sizeof(T));
      auto *N = static_cast<DtorNode *>(Tenure ? allocateTenured(Bytes, S)
                                               : allocateRaw(Bytes));
      O = new (N + 1) T(std::forward<Args>(ArgList)...);
      N->Destroy = [](void *P) { static_cast<T *>(P)->~T(); };
      DtorNode *&Head = Tenure ? TenuredDtorHead : NurseryDtorHead;
      N->Next = Head;
      Head = N;
    }
    O->Site = static_cast<uint16_t>(S);
    noteObject(O->Kind, Bytes, S, Tenure);
    return O;
  }

  /// makeAt under the ambient allocation site.
  template <typename T, typename... Args> T *make(Args &&...ArgList) {
    return makeAt<T>(AllocSite::Ambient, std::forward<Args>(ArgList)...);
  }

  /// A frame of \p NumSlots default-initialized (void) slots.
  EnvObj *makeEnv(EnvObj *Parent, size_t NumSlots,
                  AllocSite S = AllocSite::Ambient) {
    return makeEnvFrom(Parent, NumSlots, nullptr, 0, S);
  }

  /// The frame fast path shared by the interpreter's and the VM's call
  /// sequences: one allocation, the first \p NumArgs slots copied from
  /// \p Args, the rest default-initialized. \p NumArgs <= \p NumSlots.
  EnvObj *makeEnvFrom(EnvObj *Parent, size_t NumSlots, const Value *Args,
                      size_t NumArgs, AllocSite S = AllocSite::Ambient) {
    assert(NumArgs <= NumSlots && "more arguments than frame slots");
    if (S == AllocSite::Ambient)
      S = CurSite;
    const bool Tenure = Policy.PreTenure[static_cast<size_t>(S)];
    size_t Bytes = roundUp(sizeof(EnvObj) + NumSlots * sizeof(Value));
    void *P = Tenure ? allocateTenured(Bytes, S) : allocateRaw(Bytes);
    EnvObj *E = new (P) EnvObj(Parent, static_cast<uint32_t>(NumSlots));
    Value *Slots = E->slots();
    for (size_t I = 0; I < NumArgs; ++I)
      new (Slots + I) Value(Args[I]);
    for (size_t I = NumArgs; I < NumSlots; ++I)
      new (Slots + I) Value();
    E->Site = static_cast<uint16_t>(S);
    noteObject(ValueKind::Env, Bytes, S, Tenure);
    return E;
  }

  Value cons(Value Car, Value Cdr, AllocSite S = AllocSite::Ambient) {
    return Value::object(ValueKind::Pair, makeAt<Pair>(S, Car, Cdr));
  }
  Value string(std::string S, AllocSite Site = AllocSite::Ambient) {
    return Value::object(ValueKind::String,
                         makeAt<StringObj>(Site, std::move(S)));
  }
  Value vector(std::vector<Value> Elems, AllocSite S = AllocSite::Ambient) {
    return Value::object(ValueKind::Vector,
                         makeAt<VectorObj>(S, std::move(Elems)));
  }
  Value hashtable(HashKind HK, AllocSite S = AllocSite::Ambient) {
    return Value::object(ValueKind::Hash, makeAt<HashTable>(S, HK));
  }
  Value box(Value V, AllocSite S = AllocSite::Ambient) {
    return Value::object(ValueKind::Box, makeAt<Box>(S, V));
  }

  /// Builds a proper list from \p Elems.
  Value list(const std::vector<Value> &Elems,
             AllocSite S = AllocSite::Ambient);

  //===--------------------------------------------------------------------===//
  // Region reclamation (generational collection at quiescent points)
  //===--------------------------------------------------------------------===//

  /// Enumerates every root the caller retains across the collection; the
  /// collector rewrites each visited Value / pointer to the object's
  /// post-evacuation address.
  using RootEnumerator = std::function<void(GcVisitor &)>;

  /// Evacuates everything reachable from \p Roots out of the nursery into
  /// tenured chunks (pointer forwarding), then frees the nursery chunks.
  /// Must only run at a quiescent point: no Value or Obj* may live on the
  /// C++ stack except through \p Roots. Escalates to a *major* cycle —
  /// from-space widened to the tenured chunks too, so tenured garbage
  /// (dead pre-tenured objects, stale evacuees) is also dropped — when
  /// tenured bytes have doubled since the last major cycle, or when
  /// \p ForceMajor is set.
  ReclaimResult collect(const RootEnumerator &Roots, bool ForceMajor = false);

  /// Registers relocate/trace hooks for a kind defined outside syntax/
  /// (the VM's VmClosure). Must be registered before the first collect()
  /// that can encounter the kind.
  void registerExternalKind(ValueKind K, ExternalKindOps Ops) {
    ExternalKinds[static_cast<size_t>(K)] = Ops;
  }

  /// Re-derives the reclamation policy from the current site profiles.
  /// Deterministic in the profile; bumps Policy.Epoch (and returns true)
  /// only when the selection actually changed. Called per ProfileBus
  /// epoch by the continuous-profiling path, and self-scheduled every
  /// PolicySelectInterval collections otherwise.
  bool selectReclaimPolicy();

  const ReclaimPolicy &reclaimPolicy() const { return Policy; }
  void setReclaimPolicy(const ReclaimPolicy &P) { Policy = P; }

  /// Caps the arena's reserved bytes (0 = unlimited). Enforced on chunk
  /// acquisition — so the bump fast path never pays for it; a breach
  /// raises GuardTrip(GuardKind::Heap) before any state mutates, leaving
  /// the heap (and its owner Engine) fully usable. The granularity is
  /// therefore one chunk. Evacuation allocations during collect() are
  /// exempt: a collection cycle nets memory back, so failing it on the
  /// cap would be self-defeating.
  void setLimitBytes(uint64_t Bytes) { LimitBytes = Bytes; }
  uint64_t limitBytes() const { return LimitBytes; }

  const AllocStats &allocStats() const { return Stats; }
  uint64_t numObjects() const;
  uint64_t bytesAllocated() const { return Stats.BytesAllocated; }
  uint64_t bytesReserved() const { return Stats.BytesReserved; }
  /// Bytes occupied by objects that survived (or have not yet faced) a
  /// collection: live nursery bytes plus tenured bytes. This is the
  /// "live" figure AllocStats.BytesAllocated (cumulative) is not.
  uint64_t bytesLive() const { return NurseryBytes + TenuredBytes; }
  uint64_t nurseryBytes() const { return NurseryBytes; }
  uint64_t tenuredBytes() const { return TenuredBytes; }

  /// The always-on allocation-site profile (AllocSite.h). Indexed by
  /// AllocSite; merge across EnginePool workers is index-wise and
  /// therefore deterministic in worker order.
  const std::array<AllocSiteStats, NumAllocSites> &siteStats() const {
    return Sites;
  }

  /// Appends the allocation counters as deterministic (name, value) rows;
  /// the Context's StatsRegistry uses this as its extra-stats source so
  /// `pgmpi --stats` and (pgmp-stats) report the heap without the heap
  /// paying a stats-enabled branch per allocation.
  void appendStats(std::vector<std::pair<std::string, uint64_t>> &Out) const;

  /// Collections between self-scheduled policy re-selections (when no
  /// ProfileBus epoch is driving them).
  static constexpr uint64_t PolicySelectInterval = 64;

private:
  friend class AllocSiteScope;
  friend class GcVisitor;

  static constexpr size_t Alignment = 8;

  /// Side-list record preceding a non-trivially-destructible object in
  /// its allocation: [DtorNode][object bytes...].
  struct DtorNode {
    DtorNode *Next;
    void (*Destroy)(void *Object);
  };
  static_assert(sizeof(DtorNode) % Alignment == 0, "node keeps alignment");

  /// One owned chunk; Size is recorded so the collector can build the
  /// from-space address index and the stats can account frees.
  struct Chunk {
    std::unique_ptr<char[]> Mem;
    size_t Size;
  };

  static constexpr size_t roundUp(size_t N) {
    return (N + (Alignment - 1)) & ~(Alignment - 1);
  }

  /// \p Bytes must already be rounded to Alignment.
  void *allocateRaw(size_t Bytes) {
    char *P = Cur;
    if (Bytes > static_cast<size_t>(End - P))
      return allocateSlow(Bytes);
    Cur = P + Bytes;
    return P;
  }

  void *allocateSlow(size_t Bytes);

  /// Mutator-side tenured allocation (pre-tenured sites). Same guard
  /// semantics as allocateSlow on chunk acquisition.
  void *allocateTenured(size_t Bytes, AllocSite S);

  /// Collector-side tenured allocation: never raises — an injected fault
  /// returns null and the cycle degrades (see collect()).
  void *allocateForEvac(size_t Bytes, bool Hot);

  /// Grabs a fresh tenured chunk for the given stream (or a dedicated
  /// oversize chunk, returned directly) without guard checks.
  void *acquireTenuredChunk(size_t Bytes, bool Hot);

  void noteObject(ValueKind K, size_t Bytes, AllocSite S, bool Tenured) {
    Stats.BytesAllocated += Bytes;
    ++Stats.ObjectsByKind[static_cast<size_t>(K)];
    AllocSiteStats &SS = Sites[static_cast<size_t>(S)];
    ++SS.Objects;
    SS.Bytes += Bytes;
    SS.Kinds |= 1u << static_cast<size_t>(K);
    if (Tenured) {
      ++SS.TenuredAllocs;
      SS.TenuredAllocBytes += Bytes;
      ++Stats.PreTenuredObjects;
      TenuredBytes += Bytes;
    } else {
      NurseryBytes += Bytes;
    }
  }

  //===--------------------------------------------------------------------===//
  // Collector internals (Heap.cpp)
  //===--------------------------------------------------------------------===//

  /// Forwards \p O to its post-collection address, evacuating (and
  /// scheduling a scan) on first contact. Null-safe.
  Obj *forwardObj(Obj *O);
  /// Copies \p O into tenured space; null when evacuation is degraded.
  Obj *evacuate(Obj *O);
  template <typename T> Obj *relocateObj(T *Old, bool Hot, bool FirstPromo);
  /// Rewrites \p O's children through forwardObj.
  void scanObject(Obj *O, GcVisitor &V);
  /// True when \p P points into a from-space (nursery) chunk this cycle.
  bool inFromSpace(const void *P) const;
  /// True when \p P lies in a tenured chunk demoted into from-space by
  /// this major collection — its survival was counted at first promotion.
  bool inDemotedSpace(const void *P) const;

  char *Cur = nullptr; ///< bump pointer into the current nursery chunk
  char *End = nullptr; ///< end of the current nursery chunk
  std::vector<Chunk> Nursery;
  std::vector<Chunk> Tenured;
  /// Tenured bump streams: cold (evacuation default) and hot (co-located
  /// survivor sites per ReclaimPolicy::HotSite).
  char *TenCur = nullptr;
  char *TenEnd = nullptr;
  char *HotCur = nullptr;
  char *HotEnd = nullptr;
  DtorNode *NurseryDtorHead = nullptr;
  DtorNode *TenuredDtorHead = nullptr;

  AllocStats Stats;
  std::array<AllocSiteStats, NumAllocSites> Sites{};
  ReclaimPolicy Policy;
  uint64_t LimitBytes = 0; ///< reserved-bytes cap; 0 = unlimited

  /// Bytes bump-allocated into the nursery since the last collection /
  /// into tenured chunks and still considered live.
  uint64_t NurseryBytes = 0;
  uint64_t TenuredBytes = 0;
  uint64_t TenuredBytesAtLastMajor = 0;
  /// EWMA of per-region nursery allocation volume (nursery sizing input).
  uint64_t EwmaRegionBytes = 0;
  uint64_t CollectsSinceSelect = 0;

  /// Per-cycle state.
  uint32_t GcEpoch = 0; ///< current collection stamp (0 = none yet)
  bool InCollect = false;
  bool EvacFailed = false;
  uint64_t CycleEvacObjects = 0;
  uint64_t CycleEvacBytes = 0;
  std::unordered_map<Obj *, Obj *> Forwarded;
  std::vector<Obj *> Worklist;
  /// Sorted [begin, end) ranges of the from-space chunks this cycle.
  std::vector<std::pair<const char *, const char *>> FromRanges;
  /// Sorted ranges of the demoted tenured chunks within from-space during
  /// a major collection. Objects from these ranges already earned their
  /// Survived credit when first promoted; re-evacuating them must not
  /// count again or survival rates would inflate past 100% and drive
  /// spurious pre-tenuring.
  std::vector<std::pair<const char *, const char *>> DemotedRanges;

  std::array<ExternalKindOps, NumValueKinds> ExternalKinds{};

  /// Ambient allocation site (AllocSiteScope).
  AllocSite CurSite = AllocSite::Unknown;
};

/// RAII ambient allocation site: attributes every allocation in scope
/// that does not pass an explicit site. Two stores each way; fine for
/// phase-level granularity (reader, expander, template instantiation),
/// too coarse for per-object hot paths, which pass sites explicitly.
class AllocSiteScope {
public:
  AllocSiteScope(Heap &H, AllocSite S) : H(H), Saved(H.CurSite) {
    H.CurSite = S;
  }
  ~AllocSiteScope() { H.CurSite = Saved; }
  AllocSiteScope(const AllocSiteScope &) = delete;
  AllocSiteScope &operator=(const AllocSiteScope &) = delete;

private:
  Heap &H;
  AllocSite Saved;
};

/// The collector's hand into retained state: visited Values and typed
/// object pointers are rewritten to their post-evacuation addresses.
/// Passed to Heap::RootEnumerator callbacks and kind tracers; only
/// meaningful during a collect() cycle.
class GcVisitor {
public:
  explicit GcVisitor(Heap &H) : H(H) {}

  /// Forwards a heap Value in place; immediates pass through untouched.
  void value(Value &V) {
    if (static_cast<uint8_t>(V.kind()) <
        static_cast<uint8_t>(ValueKind::Symbol))
      return;
    V.setObjForGc(H.forwardObj(V.obj()));
  }

  /// Forwards a typed object pointer field in place (e.g. EnvObj *&).
  template <typename T> void ptr(T *&P) {
    P = static_cast<T *>(H.forwardObj(P));
  }

private:
  Heap &H;
};

static_assert(sizeof(EnvObj) % alignof(Value) == 0,
              "inline slots start aligned directly after the EnvObj header");
static_assert(std::is_trivially_destructible_v<Pair> &&
                  std::is_trivially_destructible_v<Closure> &&
                  std::is_trivially_destructible_v<Box> &&
                  std::is_trivially_destructible_v<EnvObj>,
              "hot-path kinds must stay off the destructible side list");

/// Walks a proper list into a vector; raises on improper lists.
std::vector<Value> listToVector(const Value &List);

/// Length of a proper list, or -1 if improper/cyclic-free check fails.
int64_t listLength(const Value &List);

} // namespace pgmp

#endif // PGMP_SYNTAX_HEAP_H
