//===- syntax/Heap.h - Arena heap objects and allocation ------*- C++ -*-===//
///
/// \file
/// Heap object definitions (pairs, strings, vectors, hash tables,
/// closures, primitives, boxes, environment frames) and the Heap that owns
/// them. The heap is a block-based bump-pointer arena: `make<T>` bumps a
/// pointer inside a fixed-size chunk on the fast path and acquires a new
/// chunk on overflow, so a cons or a closure frame costs pointer
/// arithmetic, not a malloc. Objects live until the owning engine is
/// destroyed (there is no mid-evaluation collector; see DESIGN.md
/// Section 6), and their addresses are stable for their whole lifetime.
///
/// Obj carries no vtable: the Kind byte is the only discriminator, and
/// teardown runs through a side list that records just the objects whose
/// type has a non-trivial destructor (strings, vectors, hash tables,
/// syntax, primitives). Bulk destruction is therefore O(destructible
/// objects), and trivially-destructible kinds — pairs, closures, boxes,
/// env frames — are reclaimed by freeing the chunks alone.
///
/// Environment frames store their slots inline after the EnvObj header
/// (single allocation per frame); create them with makeEnv/makeEnvFrom,
/// not make<EnvObj>. Symbols are interned separately (see SymbolTable.h)
/// and syntax objects are defined in Syntax.h; syntax is Heap-allocated,
/// symbols are owned by their table.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SYNTAX_HEAP_H
#define PGMP_SYNTAX_HEAP_H

#include "syntax/Value.h"

#include <array>
#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pgmp {

class Context;
class LambdaExpr;

/// Base of every heap-allocated Scheme object. Deliberately vtable-free:
/// the Kind tag discriminates, and the owning Heap destroys
/// non-trivially-destructible objects through a typed side list, so the
/// base needs no virtual destructor (and a Pair stays 40 bytes, not 56).
class Obj {
public:
  ValueKind Kind;

protected:
  explicit Obj(ValueKind K) : Kind(K) {}
  ~Obj() = default; ///< non-virtual; only the Heap destroys objects

private:
  Obj(const Obj &) = delete;
  Obj &operator=(const Obj &) = delete;
};

/// A cons cell.
class Pair : public Obj {
public:
  Pair(Value Car, Value Cdr) : Obj(ValueKind::Pair), Car(Car), Cdr(Cdr) {}
  Value Car;
  Value Cdr;
};

/// A mutable Scheme string.
class StringObj : public Obj {
public:
  explicit StringObj(std::string S)
      : Obj(ValueKind::String), Text(std::move(S)) {}
  std::string Text;
};

/// A Scheme vector.
class VectorObj : public Obj {
public:
  explicit VectorObj(std::vector<Value> Elems)
      : Obj(ValueKind::Vector), Elems(std::move(Elems)) {}
  std::vector<Value> Elems;
};

/// Equality discipline of a hash table.
enum class HashKind : uint8_t { Eq, Eqv, Equal };

/// A Scheme hashtable (make-eq-hashtable / make-equal-hashtable / ...).
class HashTable : public Obj {
public:
  explicit HashTable(HashKind HK);

  /// Returns the stored value or \p Default.
  Value get(const Value &Key, const Value &Default) const;
  bool contains(const Value &Key) const;
  void set(const Value &Key, const Value &Val);
  bool erase(const Value &Key);
  size_t size() const { return Table.size(); }

  /// Stable key order: insertion order (Scheme hashtable-keys users in the
  /// case studies rely on determinism for reproducible expansion). The
  /// list is cached under a structural version stamp — it is rebuilt only
  /// after an insertion or removal, so meta-programs that walk the keys
  /// inside expansion (the object-system case study does, per method
  /// table) pay the sort once per table shape, not per call. Value
  /// updates of existing keys do not invalidate the cache. The reference
  /// is valid until the next insertion or removal.
  const std::vector<Value> &keysInInsertionOrder() const;

  HashKind HK;

private:
  struct Hasher {
    HashKind HK;
    uint64_t operator()(const Value &V) const;
  };
  struct Eq {
    HashKind HK;
    bool operator()(const Value &A, const Value &B) const;
  };
  /// Maps key -> (value, insertion index).
  std::unordered_map<Value, std::pair<Value, uint64_t>, Hasher, Eq> Table;
  uint64_t NextInsertIndex = 0;
  /// Structural version: bumped on insert/erase, not on value update.
  uint64_t Version = 0;
  mutable uint64_t OrderCacheVersion = ~uint64_t(0);
  mutable std::vector<Value> OrderCache;
};

/// A user procedure: a compiled lambda template plus its captured frame.
class Closure : public Obj {
public:
  Closure(const LambdaExpr *Template, EnvObj *Captured)
      : Obj(ValueKind::Closure), Template(Template), Captured(Captured) {}
  const LambdaExpr *Template;
  EnvObj *Captured;
};

/// Signature of a built-in procedure.
using PrimFn = Value (*)(Context &, Value *Args, size_t NumArgs);

/// Fixnum-specializable primitives the VM call paths recognize. The fast
/// paths must be observationally identical to the registered handler on
/// fixnum inputs (same wrap-on-overflow int64 arithmetic, same
/// compare-as-double semantics), so they are a dispatch shortcut, never a
/// semantic change; anything non-fixnum falls through to the handler.
enum class PrimIntrinsic : uint8_t {
  None,
  Add,   ///< (+ a b)
  Sub,   ///< (- a b)
  Mul,   ///< (* a b)
  NumEq, ///< (= a b)
  Lt,    ///< (< a b)
  Gt,    ///< (> a b)
  Le,    ///< (<= a b)
  Ge,    ///< (>= a b)
  ZeroP  ///< (zero? a)
};

/// A built-in procedure with arity checking metadata.
class Primitive : public Obj {
public:
  Primitive(std::string Name, int MinArgs, int MaxArgs, PrimFn Fn)
      : Obj(ValueKind::Primitive), Name(std::move(Name)), MinArgs(MinArgs),
        MaxArgs(MaxArgs), Fn(Fn) {}
  std::string Name;
  int MinArgs;
  int MaxArgs; ///< -1 for variadic
  PrimFn Fn;
  PrimIntrinsic Intr = PrimIntrinsic::None;
};

/// A single-cell mutable box.
class Box : public Obj {
public:
  explicit Box(Value V) : Obj(ValueKind::Box), Boxed(V) {}
  Value Boxed;
};

/// A runtime environment frame: fixed slots stored inline directly after
/// this header (one arena allocation per frame), parent chain. Variable
/// references are compiled to (depth, index) pairs. Created through
/// Heap::makeEnv / Heap::makeEnvFrom, which size the allocation.
class EnvObj : public Obj {
public:
  EnvObj *Parent;
  uint32_t NumSlots;

  Value *slots() {
    return reinterpret_cast<Value *>(reinterpret_cast<char *>(this) +
                                     sizeof(EnvObj));
  }
  const Value *slots() const {
    return reinterpret_cast<const Value *>(
        reinterpret_cast<const char *>(this) + sizeof(EnvObj));
  }
  Value &slot(size_t I) {
    assert(I < NumSlots && "env slot index out of range");
    return slots()[I];
  }

private:
  friend class Heap;
  EnvObj(EnvObj *Parent, uint32_t NumSlots)
      : Obj(ValueKind::Env), Parent(Parent), NumSlots(NumSlots) {}
};

/// Arena-style owner of all heap objects of one engine: chunked
/// bump-pointer allocation, bulk teardown, stable addresses. One Heap
/// belongs to one Context and is touched only by the thread evaluating on
/// it (EnginePool workers each own their Heap; nothing is shared).
class Heap {
public:
  /// Geometry of a normal chunk. Allocations larger than this get a
  /// dedicated oversize chunk of exactly their size.
  static constexpr size_t ChunkBytes = 64 * 1024;

  /// Always-on allocation counters (a handful of adds per allocation;
  /// the observability layer reads them through StatsRegistry and the
  /// Chrome trace). The arena never frees before engine teardown, so
  /// BytesReserved is also the peak memory footprint.
  struct AllocStats {
    uint64_t BytesAllocated = 0; ///< rounded bytes handed to objects
    uint64_t BytesReserved = 0;  ///< sum of acquired chunk sizes
    uint64_t ChunksAcquired = 0; ///< normal + oversize chunks
    uint64_t OversizeChunks = 0; ///< dedicated single-allocation chunks
    std::array<uint64_t, NumValueKinds> ObjectsByKind{};
  };

  Heap() = default;
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Allocates and constructs a \p T. Fast path: one pointer bump.
  /// Types with a non-trivial destructor are additionally linked into the
  /// destructible side list (one extra 16-byte header in the same bump
  /// allocation), so teardown visits only the objects that need it.
  template <typename T, typename... Args> T *make(Args &&...ArgList) {
    static_assert(std::is_base_of_v<Obj, T>, "Heap allocates Obj subclasses");
    static_assert(!std::is_same_v<T, EnvObj>,
                  "EnvObj stores slots inline; use makeEnv/makeEnvFrom");
    static_assert(alignof(T) <= Alignment,
                  "arena alignment is 8; over-aligned Obj subclass");
    T *O;
    size_t Bytes;
    if constexpr (std::is_trivially_destructible_v<T>) {
      Bytes = roundUp(sizeof(T));
      O = new (allocateRaw(Bytes)) T(std::forward<Args>(ArgList)...);
    } else {
      Bytes = roundUp(sizeof(DtorNode) + sizeof(T));
      auto *N = static_cast<DtorNode *>(allocateRaw(Bytes));
      O = new (N + 1) T(std::forward<Args>(ArgList)...);
      N->Destroy = [](void *P) { static_cast<T *>(P)->~T(); };
      N->Next = DtorHead;
      DtorHead = N;
    }
    noteObject(O->Kind, Bytes);
    return O;
  }

  /// A frame of \p NumSlots default-initialized (void) slots.
  EnvObj *makeEnv(EnvObj *Parent, size_t NumSlots) {
    return makeEnvFrom(Parent, NumSlots, nullptr, 0);
  }

  /// The frame fast path shared by the interpreter's and the VM's call
  /// sequences: one allocation, the first \p NumArgs slots copied from
  /// \p Args, the rest default-initialized. \p NumArgs <= \p NumSlots.
  EnvObj *makeEnvFrom(EnvObj *Parent, size_t NumSlots, const Value *Args,
                      size_t NumArgs) {
    assert(NumArgs <= NumSlots && "more arguments than frame slots");
    size_t Bytes = roundUp(sizeof(EnvObj) + NumSlots * sizeof(Value));
    EnvObj *E = new (allocateRaw(Bytes))
        EnvObj(Parent, static_cast<uint32_t>(NumSlots));
    Value *S = E->slots();
    for (size_t I = 0; I < NumArgs; ++I)
      new (S + I) Value(Args[I]);
    for (size_t I = NumArgs; I < NumSlots; ++I)
      new (S + I) Value();
    noteObject(ValueKind::Env, Bytes);
    return E;
  }

  Value cons(Value Car, Value Cdr) {
    return Value::object(ValueKind::Pair, make<Pair>(Car, Cdr));
  }
  Value string(std::string S) {
    return Value::object(ValueKind::String, make<StringObj>(std::move(S)));
  }
  Value vector(std::vector<Value> Elems) {
    return Value::object(ValueKind::Vector, make<VectorObj>(std::move(Elems)));
  }
  Value hashtable(HashKind HK) {
    return Value::object(ValueKind::Hash, make<HashTable>(HK));
  }
  Value box(Value V) { return Value::object(ValueKind::Box, make<Box>(V)); }

  /// Builds a proper list from \p Elems.
  Value list(const std::vector<Value> &Elems);

  /// Caps the arena's reserved bytes (0 = unlimited). Enforced in
  /// allocateSlow — chunk acquisition — so the bump fast path never pays
  /// for it; a breach raises GuardTrip(GuardKind::Heap) before any state
  /// mutates, leaving the heap (and its owner Engine) fully usable. The
  /// granularity is therefore one chunk (64 KiB, or the oversize request).
  void setLimitBytes(uint64_t Bytes) { LimitBytes = Bytes; }
  uint64_t limitBytes() const { return LimitBytes; }

  const AllocStats &allocStats() const { return Stats; }
  uint64_t numObjects() const;
  uint64_t bytesAllocated() const { return Stats.BytesAllocated; }
  uint64_t bytesReserved() const { return Stats.BytesReserved; }

  /// Appends the allocation counters as deterministic (name, value) rows;
  /// the Context's StatsRegistry uses this as its extra-stats source so
  /// `pgmpi --stats` and (pgmp-stats) report the heap without the heap
  /// paying a stats-enabled branch per allocation.
  void appendStats(std::vector<std::pair<std::string, uint64_t>> &Out) const;

private:
  static constexpr size_t Alignment = 8;

  /// Side-list record preceding a non-trivially-destructible object in
  /// its allocation: [DtorNode][object bytes...].
  struct DtorNode {
    DtorNode *Next;
    void (*Destroy)(void *Object);
  };
  static_assert(sizeof(DtorNode) % Alignment == 0, "node keeps alignment");

  static constexpr size_t roundUp(size_t N) {
    return (N + (Alignment - 1)) & ~(Alignment - 1);
  }

  /// \p Bytes must already be rounded to Alignment.
  void *allocateRaw(size_t Bytes) {
    char *P = Cur;
    if (Bytes > static_cast<size_t>(End - P))
      return allocateSlow(Bytes);
    Cur = P + Bytes;
    return P;
  }

  void *allocateSlow(size_t Bytes);

  void noteObject(ValueKind K, size_t Bytes) {
    Stats.BytesAllocated += Bytes;
    ++Stats.ObjectsByKind[static_cast<size_t>(K)];
  }

  char *Cur = nullptr; ///< bump pointer into the current chunk
  char *End = nullptr; ///< end of the current chunk
  std::vector<std::unique_ptr<char[]>> Chunks;
  DtorNode *DtorHead = nullptr;
  AllocStats Stats;
  uint64_t LimitBytes = 0; ///< reserved-bytes cap; 0 = unlimited
};

static_assert(sizeof(EnvObj) % alignof(Value) == 0,
              "inline slots start aligned directly after the EnvObj header");
static_assert(std::is_trivially_destructible_v<Pair> &&
                  std::is_trivially_destructible_v<Closure> &&
                  std::is_trivially_destructible_v<Box> &&
                  std::is_trivially_destructible_v<EnvObj>,
              "hot-path kinds must stay off the destructible side list");

/// Walks a proper list into a vector; raises on improper lists.
std::vector<Value> listToVector(const Value &List);

/// Length of a proper list, or -1 if improper/cyclic-free check fails.
int64_t listLength(const Value &List);

} // namespace pgmp

#endif // PGMP_SYNTAX_HEAP_H
