//===- syntax/Heap.h - Heap objects and allocation ------------*- C++ -*-===//
///
/// \file
/// Heap object definitions (pairs, strings, vectors, hash tables,
/// closures, primitives, boxes, environment frames) and the Heap that owns
/// them. The heap is an arena: objects live until the owning engine is
/// destroyed. Symbols are interned separately (see SymbolTable.h) and
/// syntax objects are defined in Syntax.h; both are still Heap-allocated.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SYNTAX_HEAP_H
#define PGMP_SYNTAX_HEAP_H

#include "syntax/Value.h"

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace pgmp {

class Context;
class LambdaExpr;

/// Base of every heap-allocated Scheme object. Objects are linked into an
/// intrusive list owned by the Heap for bulk destruction.
class Obj {
public:
  virtual ~Obj() = default;

  ValueKind Kind;
  Obj *NextAllocated = nullptr;

protected:
  explicit Obj(ValueKind K) : Kind(K) {}
};

/// A cons cell.
class Pair : public Obj {
public:
  Pair(Value Car, Value Cdr) : Obj(ValueKind::Pair), Car(Car), Cdr(Cdr) {}
  Value Car;
  Value Cdr;
};

/// A mutable Scheme string.
class StringObj : public Obj {
public:
  explicit StringObj(std::string S)
      : Obj(ValueKind::String), Text(std::move(S)) {}
  std::string Text;
};

/// A Scheme vector.
class VectorObj : public Obj {
public:
  explicit VectorObj(std::vector<Value> Elems)
      : Obj(ValueKind::Vector), Elems(std::move(Elems)) {}
  std::vector<Value> Elems;
};

/// Equality discipline of a hash table.
enum class HashKind : uint8_t { Eq, Eqv, Equal };

/// A Scheme hashtable (make-eq-hashtable / make-equal-hashtable / ...).
class HashTable : public Obj {
public:
  explicit HashTable(HashKind HK);

  /// Returns the stored value or \p Default.
  Value get(const Value &Key, const Value &Default) const;
  bool contains(const Value &Key) const;
  void set(const Value &Key, const Value &Val);
  bool erase(const Value &Key);
  size_t size() const { return Table.size(); }

  /// Stable key order: insertion order (Scheme hashtable-keys users in the
  /// case studies rely on determinism for reproducible expansion).
  std::vector<Value> keysInInsertionOrder() const;

  HashKind HK;

private:
  struct Hasher {
    HashKind HK;
    uint64_t operator()(const Value &V) const;
  };
  struct Eq {
    HashKind HK;
    bool operator()(const Value &A, const Value &B) const;
  };
  /// Maps key -> (value, insertion index).
  std::unordered_map<Value, std::pair<Value, uint64_t>, Hasher, Eq> Table;
  uint64_t NextInsertIndex = 0;
};

/// A user procedure: a compiled lambda template plus its captured frame.
class Closure : public Obj {
public:
  Closure(const LambdaExpr *Template, EnvObj *Captured)
      : Obj(ValueKind::Closure), Template(Template), Captured(Captured) {}
  const LambdaExpr *Template;
  EnvObj *Captured;
};

/// Signature of a built-in procedure.
using PrimFn = Value (*)(Context &, Value *Args, size_t NumArgs);

/// A built-in procedure with arity checking metadata.
class Primitive : public Obj {
public:
  Primitive(std::string Name, int MinArgs, int MaxArgs, PrimFn Fn)
      : Obj(ValueKind::Primitive), Name(std::move(Name)), MinArgs(MinArgs),
        MaxArgs(MaxArgs), Fn(Fn) {}
  std::string Name;
  int MinArgs;
  int MaxArgs; ///< -1 for variadic
  PrimFn Fn;
};

/// A single-cell mutable box.
class Box : public Obj {
public:
  explicit Box(Value V) : Obj(ValueKind::Box), Boxed(V) {}
  Value Boxed;
};

/// A runtime environment frame: fixed slots, parent chain. Variable
/// references are compiled to (depth, index) pairs.
class EnvObj : public Obj {
public:
  EnvObj(EnvObj *Parent, size_t NumSlots)
      : Obj(ValueKind::Env), Parent(Parent), Slots(NumSlots) {}
  EnvObj *Parent;
  std::vector<Value> Slots;
};

/// Arena-style owner of all heap objects of one engine.
class Heap {
public:
  Heap() = default;
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  template <typename T, typename... Args> T *make(Args &&...ArgList) {
    T *O = new T(std::forward<Args>(ArgList)...);
    O->NextAllocated = Head;
    Head = O;
    ++NumObjects;
    return O;
  }

  Value cons(Value Car, Value Cdr) {
    return Value::object(ValueKind::Pair, make<Pair>(Car, Cdr));
  }
  Value string(std::string S) {
    return Value::object(ValueKind::String, make<StringObj>(std::move(S)));
  }
  Value vector(std::vector<Value> Elems) {
    return Value::object(ValueKind::Vector, make<VectorObj>(std::move(Elems)));
  }
  Value hashtable(HashKind HK) {
    return Value::object(ValueKind::Hash, make<HashTable>(HK));
  }
  Value box(Value V) { return Value::object(ValueKind::Box, make<Box>(V)); }

  /// Builds a proper list from \p Elems.
  Value list(const std::vector<Value> &Elems);

  uint64_t numObjects() const { return NumObjects; }

private:
  Obj *Head = nullptr;
  uint64_t NumObjects = 0;
};

/// Walks a proper list into a vector; raises on improper lists.
std::vector<Value> listToVector(const Value &List);

/// Length of a proper list, or -1 if improper/cyclic-free check fails.
int64_t listLength(const Value &List);

} // namespace pgmp

#endif // PGMP_SYNTAX_HEAP_H
