//===- syntax/AllocSite.h - Allocation-site profile identities -*- C++ -*-===//
///
/// \file
/// Allocation-site identities for the heap's always-on site profiles.
/// Every `Heap::make*` call is attributed to one site: the hot allocation
/// paths (interpreter frames, VM frames, closures) pass their site
/// explicitly, and whole pipeline phases (reader, expander, template
/// instantiation) set an ambient site with AllocSiteScope so everything
/// they allocate is attributed without threading a parameter through
/// every helper. The profile — objects, bytes, survivors per site — is
/// what the reclamation policy (Heap::selectReclaimPolicy) acts on:
/// pre-tenuring high-survival sites, co-locating heavy survivor sites
/// into shared tenured chunks, and sizing the nursery.
///
/// Sites are a closed enum, not interned strings: the per-allocation cost
/// must stay at a couple of indexed adds, and a closed set merges across
/// EnginePool workers deterministically by construction (index order).
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SYNTAX_ALLOCSITE_H
#define PGMP_SYNTAX_ALLOCSITE_H

#include <cstddef>
#include <cstdint>

namespace pgmp {

/// X-macro of every allocation site: identifier, stable report name.
#define PGMP_ALLOC_SITES(X)                                                    \
  X(Unknown, "unknown")                                                        \
  X(ReaderDatum, "reader-datum")                                               \
  X(InterpFrame, "interp-frame")                                               \
  X(InterpRestArgs, "interp-rest-args")                                        \
  X(InterpClosure, "interp-closure")                                           \
  X(SyntaxCaseFrame, "syntax-case-frame")                                      \
  X(VmFrame, "vm-frame")                                                       \
  X(VmRestArgs, "vm-rest-args")                                                \
  X(VmClosure, "vm-closure")                                                   \
  X(Expander, "expander")                                                      \
  X(TemplateInstantiate, "template-instantiate")                               \
  X(DatumConversion, "datum-conversion")                                       \
  X(CompilerConst, "compiler-const")                                           \
  X(PrimList, "prim-list")                                                     \
  X(PrimString, "prim-string")                                                 \
  X(PrimVector, "prim-vector")                                                 \
  X(PrimHash, "prim-hash")                                                     \
  X(PrimBox, "prim-box")                                                       \
  X(Primitive, "primitive")                                                    \
  X(EngineInternal, "engine-internal")

/// One identity per allocating construct. Ambient is a sentinel: "use the
/// heap's current ambient site" (set by AllocSiteScope), never stored on
/// an object or indexed into the profile arrays.
enum class AllocSite : uint16_t {
#define PGMP_ALLOC_SITE_ENUM(Id, Name) Id,
  PGMP_ALLOC_SITES(PGMP_ALLOC_SITE_ENUM)
#undef PGMP_ALLOC_SITE_ENUM
      Ambient = 0xFFFF
};

/// Number of real sites (excludes the Ambient sentinel).
inline constexpr size_t NumAllocSites = []() constexpr {
  size_t N = 0;
#define PGMP_ALLOC_SITE_COUNT(Id, Name) ++N;
  PGMP_ALLOC_SITES(PGMP_ALLOC_SITE_COUNT)
#undef PGMP_ALLOC_SITE_COUNT
  return N;
}();

/// Stable report name of a site ("interp-frame", ...).
const char *allocSiteName(AllocSite S);

/// Always-on per-site allocation profile. Survivors count objects that
/// outlived a region reclamation (evacuated to, or allocated directly
/// in, the tenured generation); the effective survival rate that drives
/// pre-tenuring is (Survived + TenuredAllocs) / Objects, so a site keeps
/// its "hot" standing once the policy routes it straight to tenured.
struct AllocSiteStats {
  uint64_t Objects = 0;       ///< allocations attributed to the site
  uint64_t Bytes = 0;         ///< rounded bytes of those allocations
  uint64_t Survived = 0;      ///< objects evacuated out of the nursery
  uint64_t SurvivedBytes = 0; ///< bytes of evacuated objects
  uint64_t TenuredAllocs = 0; ///< pre-tenured allocations (policy-routed)
  uint64_t TenuredAllocBytes = 0;
  uint32_t Kinds = 0; ///< bitmask of ValueKind values seen at the site

  void merge(const AllocSiteStats &O) {
    Objects += O.Objects;
    Bytes += O.Bytes;
    Survived += O.Survived;
    SurvivedBytes += O.SurvivedBytes;
    TenuredAllocs += O.TenuredAllocs;
    TenuredAllocBytes += O.TenuredAllocBytes;
    Kinds |= O.Kinds;
  }
};

} // namespace pgmp

#endif // PGMP_SYNTAX_ALLOCSITE_H
