//===- syntax/Writer.cpp --------------------------------------------------===//

#include "syntax/Writer.h"

#include "support/Text.h"
#include "syntax/Heap.h"
#include "syntax/SymbolTable.h"
#include "syntax/Syntax.h"

using namespace pgmp;

namespace {

class WriterImpl {
public:
  WriterImpl(const WriteOptions &Opts) : Opts(Opts) {}

  void emit(const Value &V, unsigned Depth) {
    if (Depth > Opts.MaxDepth) {
      Out += "...";
      return;
    }
    switch (V.kind()) {
    case ValueKind::Nil:
      Out += "()";
      return;
    case ValueKind::Bool:
      Out += V.asBool() ? "#t" : "#f";
      return;
    case ValueKind::Fixnum:
      Out += std::to_string(V.asFixnum());
      return;
    case ValueKind::Flonum:
      Out += formatFlonum(V.asFlonum());
      return;
    case ValueKind::Char:
      emitChar(V.asChar());
      return;
    case ValueKind::Eof:
      Out += "#<eof>";
      return;
    case ValueKind::Void:
      Out += "#<void>";
      return;
    case ValueKind::Unbound:
      Out += "#<unbound>";
      return;
    case ValueKind::Symbol:
      Out += V.asSymbol()->Name;
      return;
    case ValueKind::String:
      if (Opts.DisplayMode)
        Out += V.asString()->Text;
      else
        Out += escapeStringLiteral(V.asString()->Text);
      return;
    case ValueKind::Pair:
      emitList(V, Depth);
      return;
    case ValueKind::Vector:
      emitVector(V, Depth);
      return;
    case ValueKind::Hash:
      Out += "#<hashtable " + std::to_string(V.asHash()->size()) + ">";
      return;
    case ValueKind::Closure:
    case ValueKind::VmClosure:
      Out += "#<procedure>";
      return;
    case ValueKind::Primitive:
      Out += "#<procedure " + V.asPrimitive()->Name + ">";
      return;
    case ValueKind::Syntax:
      if (Opts.SyntaxAsDatum) {
        emit(V.asSyntax()->Inner, Depth + 1);
      } else {
        Out += "#<syntax ";
        emit(V.asSyntax()->Inner, Depth + 1);
        Out += ">";
      }
      return;
    case ValueKind::Box:
      Out += "#&";
      emit(V.asBox()->Boxed, Depth + 1);
      return;
    case ValueKind::Env:
      Out += "#<environment>";
      return;
    }
  }

  std::string take() { return std::move(Out); }

private:
  void emitChar(uint32_t C) {
    if (Opts.DisplayMode) {
      Out += static_cast<char>(C);
      return;
    }
    switch (C) {
    case ' ':
      Out += "#\\space";
      return;
    case '\n':
      Out += "#\\newline";
      return;
    case '\t':
      Out += "#\\tab";
      return;
    default:
      Out += "#\\";
      Out += static_cast<char>(C);
      return;
    }
  }

  void emitList(const Value &V, unsigned Depth) {
    // (quote x) prints as 'x for readability of expansion dumps. When
    // printing syntax as datums, look through the head's wrapper.
    const Pair *P = V.asPair();
    Value Head = P->Car;
    if (Opts.SyntaxAsDatum && Head.isSyntax())
      Head = Head.asSyntax()->Inner;
    if (Head.isSymbol() && P->Cdr.isPair() &&
        P->Cdr.asPair()->Cdr.isNil()) {
      const std::string &Name = Head.asSymbol()->Name;
      const char *Sigil = Name == "quote"            ? "'"
                          : Name == "quasiquote"     ? "`"
                          : Name == "unquote"        ? ","
                          : Name == "unquote-splicing" ? ",@"
                                                       : nullptr;
      if (Sigil) {
        Out += Sigil;
        emit(P->Cdr.asPair()->Car, Depth + 1);
        return;
      }
    }
    Out += "(";
    Value Cur = V;
    bool First = true;
    while (true) {
      // Syntax in the spine (an improper tail) is handled below.
      if (Cur.isPair()) {
        if (!First)
          Out += " ";
        First = false;
        emit(Cur.asPair()->Car, Depth + 1);
        Cur = Cur.asPair()->Cdr;
        continue;
      }
      if (Cur.isNil())
        break;
      Out += " . ";
      emit(Cur, Depth + 1);
      break;
    }
    Out += ")";
  }

  void emitVector(const Value &V, unsigned Depth) {
    Out += "#(";
    const auto &Elems = V.asVector()->Elems;
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I)
        Out += " ";
      emit(Elems[I], Depth + 1);
    }
    Out += ")";
  }

  const WriteOptions &Opts;
  std::string Out;
};

} // namespace

std::string pgmp::writeValue(const Value &V, const WriteOptions &Opts) {
  WriterImpl W(Opts);
  W.emit(V, 0);
  return W.take();
}
