//===- syntax/Value.h - Scheme value representation -----------*- C++ -*-===//
///
/// \file
/// The uniform value representation of the embedded Scheme system:
/// immediates (fixnum, flonum, char, bool, nil, eof, void) are stored
/// inline in a 16-byte Value; everything else is a heap Obj. Heap objects
/// live in a per-engine Heap and are freed when the engine dies (there is
/// no mid-evaluation collector; see DESIGN.md Section 6).
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SYNTAX_VALUE_H
#define PGMP_SYNTAX_VALUE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pgmp {

class Obj;
class Symbol;
class Pair;
class StringObj;
class VectorObj;
class HashTable;
class Closure;
class Primitive;
class Syntax;
class Box;
class EnvObj;

/// Discriminator for Value. Heap kinds mirror the Obj subclass so type
/// tests never need to chase the pointer.
enum class ValueKind : uint8_t {
  Nil,     ///< the empty list '()
  Bool,
  Fixnum,  ///< 64-bit signed integer
  Flonum,  ///< IEEE double
  Char,    ///< Unicode code point
  Eof,
  Void,    ///< unspecified value
  Unbound, ///< sentinel stored in not-yet-defined global cells
  Symbol,
  String,
  Pair,
  Vector,
  Hash,
  Closure,
  VmClosure, ///< closure over a vm/ bytecode function
  Primitive,
  Syntax,
  Box,
  Env,
};

/// Number of ValueKind discriminators (for kind-indexed tables such as
/// the heap's per-kind allocation counters).
inline constexpr size_t NumValueKinds = static_cast<size_t>(ValueKind::Env) + 1;

/// Stable lower-case name of a kind ("pair", "vm-closure", ...) for
/// diagnostics and observability rows.
const char *valueKindName(ValueKind K);

/// A Scheme value: tag plus immediate payload or heap pointer.
class Value {
public:
  Value() : K(ValueKind::Void) { Payload.O = nullptr; }

  static Value nil() { return Value(ValueKind::Nil); }
  static Value undefined() { return Value(ValueKind::Void); }
  static Value eof() { return Value(ValueKind::Eof); }
  static Value unbound() { return Value(ValueKind::Unbound); }
  static Value boolean(bool B) {
    Value V(ValueKind::Bool);
    V.Payload.B = B;
    return V;
  }
  static Value fixnum(int64_t I) {
    Value V(ValueKind::Fixnum);
    V.Payload.I = I;
    return V;
  }
  static Value flonum(double D) {
    Value V(ValueKind::Flonum);
    V.Payload.D = D;
    return V;
  }
  static Value charval(uint32_t C) {
    Value V(ValueKind::Char);
    V.Payload.C = C;
    return V;
  }
  static Value object(ValueKind K, Obj *O) {
    Value V(K);
    V.Payload.O = O;
    return V;
  }

  ValueKind kind() const { return K; }

  bool isNil() const { return K == ValueKind::Nil; }
  bool isBool() const { return K == ValueKind::Bool; }
  bool isFixnum() const { return K == ValueKind::Fixnum; }
  bool isFlonum() const { return K == ValueKind::Flonum; }
  bool isNumber() const { return isFixnum() || isFlonum(); }
  bool isChar() const { return K == ValueKind::Char; }
  bool isEof() const { return K == ValueKind::Eof; }
  bool isVoid() const { return K == ValueKind::Void; }
  bool isUnbound() const { return K == ValueKind::Unbound; }
  bool isSymbol() const { return K == ValueKind::Symbol; }
  bool isString() const { return K == ValueKind::String; }
  bool isPair() const { return K == ValueKind::Pair; }
  bool isVector() const { return K == ValueKind::Vector; }
  bool isHash() const { return K == ValueKind::Hash; }
  bool isClosure() const { return K == ValueKind::Closure; }
  bool isVmClosure() const { return K == ValueKind::VmClosure; }
  bool isPrimitive() const { return K == ValueKind::Primitive; }
  bool isProcedure() const {
    return isClosure() || isPrimitive() || isVmClosure();
  }
  bool isSyntax() const { return K == ValueKind::Syntax; }
  bool isBox() const { return K == ValueKind::Box; }

  /// Everything but #f is true in conditionals.
  bool isTruthy() const { return !(K == ValueKind::Bool && !Payload.B); }

  bool asBool() const {
    assert(isBool() && "not a boolean");
    return Payload.B;
  }
  int64_t asFixnum() const {
    assert(isFixnum() && "not a fixnum");
    return Payload.I;
  }
  double asFlonum() const {
    assert(isFlonum() && "not a flonum");
    return Payload.D;
  }
  /// Numeric value as double regardless of exactness.
  double numberAsDouble() const {
    assert(isNumber() && "not a number");
    return isFixnum() ? static_cast<double>(Payload.I) : Payload.D;
  }
  uint32_t asChar() const {
    assert(isChar() && "not a char");
    return Payload.C;
  }
  Obj *obj() const {
    assert(static_cast<uint8_t>(K) >= static_cast<uint8_t>(ValueKind::Symbol));
    return Payload.O;
  }

  Symbol *asSymbol() const;
  Pair *asPair() const;
  StringObj *asString() const;
  VectorObj *asVector() const;
  HashTable *asHash() const;
  Closure *asClosure() const;
  Primitive *asPrimitive() const;
  Syntax *asSyntax() const;
  Box *asBox() const;
  EnvObj *asEnv() const;

  /// Pointer/immediate identity (Scheme eq?).
  friend bool operator==(const Value &A, const Value &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case ValueKind::Nil:
    case ValueKind::Eof:
    case ValueKind::Void:
    case ValueKind::Unbound:
      return true;
    case ValueKind::Bool:
      return A.Payload.B == B.Payload.B;
    case ValueKind::Fixnum:
      return A.Payload.I == B.Payload.I;
    case ValueKind::Flonum:
      return A.Payload.D == B.Payload.D;
    case ValueKind::Char:
      return A.Payload.C == B.Payload.C;
    default:
      return A.Payload.O == B.Payload.O;
    }
  }

private:
  explicit Value(ValueKind K) : K(K) { Payload.O = nullptr; }

  /// Collector-only: rewrites the heap pointer of an already-heap-kinded
  /// value to its post-evacuation address (GcVisitor::value).
  friend class GcVisitor;
  void setObjForGc(Obj *O) {
    assert(static_cast<uint8_t>(K) >= static_cast<uint8_t>(ValueKind::Symbol));
    Payload.O = O;
  }

  ValueKind K;
  union {
    bool B;
    int64_t I;
    double D;
    uint32_t C;
    Obj *O;
  } Payload;
};

/// eq? — identity (what operator== implements).
inline bool eqValues(const Value &A, const Value &B) { return A == B; }

/// eqv? — eq? plus numeric/char equality within the same exactness.
bool eqvValues(const Value &A, const Value &B);

/// equal? — structural equality on pairs, vectors, and strings.
bool equalValues(const Value &A, const Value &B);

/// Hash consistent with equalValues (used by equal-hashtables).
uint64_t equalHash(const Value &V);

/// Hash consistent with eqValues.
uint64_t eqHash(const Value &V);

} // namespace pgmp

#endif // PGMP_SYNTAX_VALUE_H
