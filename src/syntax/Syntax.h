//===- syntax/Syntax.h - Syntax objects and hygiene -----------*- C++ -*-===//
///
/// \file
/// Syntax objects: a datum annotated with a source object (the profile
/// point) and a set of scopes for hygiene. Hygiene follows the
/// sets-of-scopes model: binding forms add a scope to binder and body;
/// macro invocation flips a fresh scope on input and output, so
/// macro-introduced identifiers differ from use-site identifiers by
/// exactly that scope. Binding resolution finds, among bindings of the
/// same symbol, the one whose scope set is the largest subset of the
/// reference's scope set.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SYNTAX_SYNTAX_H
#define PGMP_SYNTAX_SYNTAX_H

#include "syntax/Heap.h"
#include "syntax/SymbolTable.h"
#include "syntax/Value.h"

#include <unordered_map>
#include <vector>

namespace pgmp {

struct SourceObject;

using ScopeId = uint32_t;

/// An immutable sorted set of scope ids. Small (a handful of scopes per
/// identifier), so a sorted vector beats anything fancier.
class ScopeSet {
public:
  ScopeSet() = default;

  bool contains(ScopeId S) const;
  ScopeSet withScope(ScopeId S) const;
  ScopeSet flipped(ScopeId S) const;
  bool isSubsetOf(const ScopeSet &Other) const;
  size_t size() const { return Ids.size(); }

  friend bool operator==(const ScopeSet &A, const ScopeSet &B) {
    return A.Ids == B.Ids;
  }

  std::string describe() const;

private:
  std::vector<ScopeId> Ids;
};

/// A datum annotated with scopes and a source object. For compound data
/// the Inner holds a spine of plain pairs whose elements are Syntax
/// values (the reader guarantees this shape).
class Syntax : public Obj {
public:
  Syntax(Value Inner, ScopeSet Scopes, const SourceObject *Src)
      : Obj(ValueKind::Syntax), Inner(Inner), Scopes(std::move(Scopes)),
        Src(Src) {}

  Value Inner;
  ScopeSet Scopes;
  const SourceObject *Src; ///< profile point; null for synthetic syntax

  bool isIdentifier() const { return Inner.isSymbol(); }
  Symbol *identifierSymbol() const { return Inner.asSymbol(); }
};

/// Convenience: make a Syntax value.
Value makeSyntax(Heap &H, Value Inner, ScopeSet Scopes,
                 const SourceObject *Src);

/// If \p V is a syntax object returns its inner datum, else \p V itself.
/// One level only (elements of a compound stay wrapped).
Value syntaxE(const Value &V);

/// Recursively strips all syntax wrappers (syntax->datum).
Value syntaxToDatum(Heap &H, const Value &V);

/// Recursively wraps \p Datum using \p CtxId's scopes (datum->syntax).
/// Existing syntax inside \p Datum is left as-is.
Value datumToSyntax(Heap &H, const Syntax &CtxId, const Value &Datum);

/// Adds or flips a scope over an entire syntax tree (rebuilds the tree;
/// input is never mutated).
enum class ScopeOp { Add, Flip };
Value adjustScope(Heap &H, const Value &V, ScopeId S, ScopeOp Op);

/// Source object of \p V if it is syntax with one, else null.
const SourceObject *syntaxSource(const Value &V);

/// Returns \p V as Syntax* if it is an identifier (syntax whose inner is a
/// symbol), else null.
Syntax *asIdentifier(const Value &V);

//===----------------------------------------------------------------------===//
// Binding table
//===----------------------------------------------------------------------===//

/// Opaque compile-time binding identity; 0 is "unbound".
using BindingLabel = uint32_t;

/// Maps (symbol, scope set) to binding labels, per the sets-of-scopes
/// resolution rule.
class BindingTable {
public:
  /// Records that \p Sym with exactly \p Scopes is bound as \p Label.
  void add(Symbol *Sym, ScopeSet Scopes, BindingLabel Label);

  /// Resolution result.
  struct Resolution {
    BindingLabel Label = 0; ///< 0 if unbound
    bool Ambiguous = false;
  };

  /// Finds the binding of \p Sym whose scope set is the largest subset of
  /// \p RefScopes. Ambiguity (two maximal candidates, neither a superset)
  /// is reported rather than resolved arbitrarily.
  Resolution resolve(Symbol *Sym, const ScopeSet &RefScopes) const;

  BindingLabel freshLabel() { return NextLabel++; }

private:
  struct Entry {
    ScopeSet Scopes;
    BindingLabel Label;
  };
  std::unordered_map<Symbol *, std::vector<Entry>> Entries;
  BindingLabel NextLabel = 1;
};

/// free-identifier=?: do two identifiers refer to the same binding (or are
/// both unbound with the same name)?
bool freeIdentifierEqual(const BindingTable &BT, Syntax *A, Syntax *B);

/// bound-identifier=?: would one capture the other if it were a binder?
bool boundIdentifierEqual(Syntax *A, Syntax *B);

} // namespace pgmp

#endif // PGMP_SYNTAX_SYNTAX_H
