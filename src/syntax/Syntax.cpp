//===- syntax/Syntax.cpp --------------------------------------------------===//

#include "syntax/Syntax.h"

#include "support/Diagnostics.h"

#include <algorithm>

using namespace pgmp;

//===----------------------------------------------------------------------===//
// ScopeSet
//===----------------------------------------------------------------------===//

bool ScopeSet::contains(ScopeId S) const {
  return std::binary_search(Ids.begin(), Ids.end(), S);
}

ScopeSet ScopeSet::withScope(ScopeId S) const {
  if (contains(S))
    return *this;
  ScopeSet Out = *this;
  Out.Ids.insert(std::upper_bound(Out.Ids.begin(), Out.Ids.end(), S), S);
  return Out;
}

ScopeSet ScopeSet::flipped(ScopeId S) const {
  ScopeSet Out = *this;
  auto It = std::lower_bound(Out.Ids.begin(), Out.Ids.end(), S);
  if (It != Out.Ids.end() && *It == S)
    Out.Ids.erase(It);
  else
    Out.Ids.insert(It, S);
  return Out;
}

bool ScopeSet::isSubsetOf(const ScopeSet &Other) const {
  return std::includes(Other.Ids.begin(), Other.Ids.end(), Ids.begin(),
                       Ids.end());
}

std::string ScopeSet::describe() const {
  std::string Out = "{";
  for (size_t I = 0; I < Ids.size(); ++I) {
    if (I)
      Out += ",";
    Out += std::to_string(Ids[I]);
  }
  Out += "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Syntax helpers
//===----------------------------------------------------------------------===//

Value pgmp::makeSyntax(Heap &H, Value Inner, ScopeSet Scopes,
                       const SourceObject *Src) {
  return Value::object(ValueKind::Syntax,
                       H.make<Syntax>(Inner, std::move(Scopes), Src));
}

Value pgmp::syntaxE(const Value &V) {
  return V.isSyntax() ? V.asSyntax()->Inner : V;
}

Value pgmp::syntaxToDatum(Heap &H, const Value &V) {
  Value Inner = syntaxE(V);
  switch (Inner.kind()) {
  case ValueKind::Pair:
    return H.cons(syntaxToDatum(H, Inner.asPair()->Car),
                  syntaxToDatum(H, Inner.asPair()->Cdr),
                  AllocSite::DatumConversion);
  case ValueKind::Vector: {
    std::vector<Value> Elems;
    Elems.reserve(Inner.asVector()->Elems.size());
    for (const Value &E : Inner.asVector()->Elems)
      Elems.push_back(syntaxToDatum(H, E));
    return H.vector(std::move(Elems), AllocSite::DatumConversion);
  }
  default:
    return Inner;
  }
}

Value pgmp::datumToSyntax(Heap &H, const Syntax &CtxId, const Value &Datum) {
  if (Datum.isSyntax())
    return Datum;
  switch (Datum.kind()) {
  case ValueKind::Pair: {
    // Wrap elements; keep the list spine as plain pairs (the shape the
    // reader produces). An improper tail becomes a wrapped atom.
    Value Car = datumToSyntax(H, CtxId, Datum.asPair()->Car);
    Value CdrIn = Datum.asPair()->Cdr;
    Value Cdr;
    if (CdrIn.isPair())
      Cdr = syntaxE(datumToSyntax(H, CtxId, CdrIn));
    else if (CdrIn.isNil())
      Cdr = Value::nil();
    else
      Cdr = datumToSyntax(H, CtxId, CdrIn);
    return makeSyntax(H, H.cons(Car, Cdr), CtxId.Scopes, CtxId.Src);
  }
  case ValueKind::Vector: {
    std::vector<Value> Elems;
    Elems.reserve(Datum.asVector()->Elems.size());
    for (const Value &E : Datum.asVector()->Elems)
      Elems.push_back(datumToSyntax(H, CtxId, E));
    return makeSyntax(H, H.vector(std::move(Elems)), CtxId.Scopes, CtxId.Src);
  }
  default:
    return makeSyntax(H, Datum, CtxId.Scopes, CtxId.Src);
  }
}

Value pgmp::adjustScope(Heap &H, const Value &V, ScopeId S, ScopeOp Op) {
  switch (V.kind()) {
  case ValueKind::Syntax: {
    Syntax *Stx = V.asSyntax();
    ScopeSet NewScopes = Op == ScopeOp::Add ? Stx->Scopes.withScope(S)
                                            : Stx->Scopes.flipped(S);
    Value NewInner = adjustScope(H, Stx->Inner, S, Op);
    return makeSyntax(H, NewInner, std::move(NewScopes), Stx->Src);
  }
  case ValueKind::Pair:
    return H.cons(adjustScope(H, V.asPair()->Car, S, Op),
                  adjustScope(H, V.asPair()->Cdr, S, Op));
  case ValueKind::Vector: {
    std::vector<Value> Elems;
    Elems.reserve(V.asVector()->Elems.size());
    for (const Value &E : V.asVector()->Elems)
      Elems.push_back(adjustScope(H, E, S, Op));
    return H.vector(std::move(Elems));
  }
  default:
    return V;
  }
}

const SourceObject *pgmp::syntaxSource(const Value &V) {
  return V.isSyntax() ? V.asSyntax()->Src : nullptr;
}

Syntax *pgmp::asIdentifier(const Value &V) {
  if (!V.isSyntax())
    return nullptr;
  Syntax *Stx = V.asSyntax();
  return Stx->isIdentifier() ? Stx : nullptr;
}

//===----------------------------------------------------------------------===//
// BindingTable
//===----------------------------------------------------------------------===//

void BindingTable::add(Symbol *Sym, ScopeSet Scopes, BindingLabel Label) {
  Entries[Sym].push_back(Entry{std::move(Scopes), Label});
}

BindingTable::Resolution BindingTable::resolve(Symbol *Sym,
                                               const ScopeSet &RefScopes) const {
  Resolution R;
  auto It = Entries.find(Sym);
  if (It == Entries.end())
    return R;
  const Entry *Best = nullptr;
  for (const Entry &E : It->second) {
    if (!E.Scopes.isSubsetOf(RefScopes))
      continue;
    if (!Best || E.Scopes.size() > Best->Scopes.size()) {
      Best = &E;
      R.Ambiguous = false;
    } else if (E.Scopes.size() == Best->Scopes.size() &&
               !(E.Scopes == Best->Scopes)) {
      R.Ambiguous = true;
    }
  }
  if (Best)
    R.Label = Best->Label;
  return R;
}

bool pgmp::freeIdentifierEqual(const BindingTable &BT, Syntax *A, Syntax *B) {
  assert(A->isIdentifier() && B->isIdentifier() &&
         "free-identifier=? needs identifiers");
  auto RA = BT.resolve(A->identifierSymbol(), A->Scopes);
  auto RB = BT.resolve(B->identifierSymbol(), B->Scopes);
  if (RA.Label != 0 || RB.Label != 0)
    return RA.Label == RB.Label;
  // Both unbound: compare by name (they would denote the same global).
  return A->identifierSymbol() == B->identifierSymbol();
}

bool pgmp::boundIdentifierEqual(Syntax *A, Syntax *B) {
  assert(A->isIdentifier() && B->isIdentifier() &&
         "bound-identifier=? needs identifiers");
  return A->identifierSymbol() == B->identifierSymbol() &&
         A->Scopes == B->Scopes;
}
