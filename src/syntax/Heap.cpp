//===- syntax/Heap.cpp ----------------------------------------------------===//

#include "syntax/Heap.h"

#include "support/Diagnostics.h"
#include "syntax/SymbolTable.h"

#include <algorithm>

using namespace pgmp;

Heap::~Heap() {
  Obj *O = Head;
  while (O) {
    Obj *Next = O->NextAllocated;
    delete O;
    O = Next;
  }
}

Value Heap::list(const std::vector<Value> &Elems) {
  Value Out = Value::nil();
  for (size_t I = Elems.size(); I > 0; --I)
    Out = cons(Elems[I - 1], Out);
  return Out;
}

std::vector<Value> pgmp::listToVector(const Value &List) {
  std::vector<Value> Out;
  Value Cur = List;
  while (Cur.isPair()) {
    Out.push_back(Cur.asPair()->Car);
    Cur = Cur.asPair()->Cdr;
  }
  if (!Cur.isNil())
    raiseError("improper list where proper list expected");
  return Out;
}

int64_t pgmp::listLength(const Value &List) {
  int64_t N = 0;
  Value Cur = List;
  while (Cur.isPair()) {
    ++N;
    Cur = Cur.asPair()->Cdr;
  }
  return Cur.isNil() ? N : -1;
}

//===----------------------------------------------------------------------===//
// HashTable
//===----------------------------------------------------------------------===//

uint64_t HashTable::Hasher::operator()(const Value &V) const {
  switch (HK) {
  case HashKind::Eq:
  case HashKind::Eqv:
    return eqHash(V);
  case HashKind::Equal:
    return equalHash(V);
  }
  return 0;
}

bool HashTable::Eq::operator()(const Value &A, const Value &B) const {
  switch (HK) {
  case HashKind::Eq:
    return eqValues(A, B);
  case HashKind::Eqv:
    return eqvValues(A, B);
  case HashKind::Equal:
    return equalValues(A, B);
  }
  return false;
}

HashTable::HashTable(HashKind HK)
    : Obj(ValueKind::Hash), HK(HK),
      Table(8, Hasher{HK}, Eq{HK}) {}

Value HashTable::get(const Value &Key, const Value &Default) const {
  auto It = Table.find(Key);
  return It == Table.end() ? Default : It->second.first;
}

bool HashTable::contains(const Value &Key) const {
  return Table.find(Key) != Table.end();
}

void HashTable::set(const Value &Key, const Value &Val) {
  auto It = Table.find(Key);
  if (It != Table.end()) {
    It->second.first = Val;
    return;
  }
  Table.emplace(Key, std::make_pair(Val, NextInsertIndex++));
}

bool HashTable::erase(const Value &Key) { return Table.erase(Key) > 0; }

std::vector<Value> HashTable::keysInInsertionOrder() const {
  std::vector<std::pair<uint64_t, Value>> Ordered;
  Ordered.reserve(Table.size());
  for (const auto &[K, V] : Table)
    Ordered.push_back({V.second, K});
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  std::vector<Value> Keys;
  Keys.reserve(Ordered.size());
  for (auto &[Idx, K] : Ordered)
    Keys.push_back(K);
  return Keys;
}
