//===- syntax/Heap.cpp ----------------------------------------------------===//

#include "syntax/Heap.h"

#include "support/Diagnostics.h"
#include "support/ExecGuard.h"
#include "support/FaultInjector.h"
#include "syntax/SymbolTable.h"

#include <algorithm>

using namespace pgmp;

Heap::~Heap() {
  // Only the destructible side list is walked; trivially-destructible
  // objects (pairs, closures, boxes, env frames) are reclaimed with the
  // chunks. Newest-first order is fine: heap objects never own each
  // other, they only point, and nothing dereferences during teardown.
  for (DtorNode *N = DtorHead; N; N = N->Next)
    N->Destroy(N + 1);
}

void *Heap::allocateSlow(size_t Bytes) {
  // Resource governance rides the cold path only: both checks run before
  // any state mutates, so a trip leaves the heap fully consistent — the
  // current chunk's tail keeps serving small allocations afterward.
  size_t ChunkNeed = Bytes > ChunkBytes ? Bytes : ChunkBytes;
  if (faultinject::shouldFail(faultinject::Point::Alloc))
    raiseGuardTrip(GuardKind::Heap,
                   "injected allocation failure (chunk of " +
                       std::to_string(ChunkNeed) + " bytes)");
  if (LimitBytes && Stats.BytesReserved + ChunkNeed > LimitBytes)
    raiseGuardTrip(GuardKind::Heap,
                   "heap limit of " + std::to_string(LimitBytes) +
                       " bytes reached (" +
                       std::to_string(Stats.BytesReserved) +
                       " reserved, next chunk needs " +
                       std::to_string(ChunkNeed) + ")");
  ++Stats.ChunksAcquired;
  if (Bytes > ChunkBytes) {
    // Oversize (e.g. a frame with thousands of slots): dedicated chunk of
    // exactly the requested size; the current bump chunk keeps its tail.
    ++Stats.OversizeChunks;
    Stats.BytesReserved += Bytes;
    Chunks.push_back(std::make_unique<char[]>(Bytes));
    return Chunks.back().get();
  }
  Stats.BytesReserved += ChunkBytes;
  Chunks.push_back(std::make_unique<char[]>(ChunkBytes));
  char *Base = Chunks.back().get();
  Cur = Base + Bytes;
  End = Base + ChunkBytes;
  return Base;
}

uint64_t Heap::numObjects() const {
  uint64_t N = 0;
  for (uint64_t C : Stats.ObjectsByKind)
    N += C;
  return N;
}

void Heap::appendStats(
    std::vector<std::pair<std::string, uint64_t>> &Out) const {
  Out.emplace_back("heap-bytes-allocated", Stats.BytesAllocated);
  // The arena never frees before teardown, so reserved == peak footprint.
  Out.emplace_back("heap-bytes-reserved", Stats.BytesReserved);
  Out.emplace_back("heap-chunks", Stats.ChunksAcquired);
  Out.emplace_back("heap-oversize-chunks", Stats.OversizeChunks);
  Out.emplace_back("heap-objects", numObjects());
  for (size_t K = 0; K < NumValueKinds; ++K)
    if (Stats.ObjectsByKind[K])
      Out.emplace_back(std::string("heap-objects-") +
                           valueKindName(static_cast<ValueKind>(K)),
                       Stats.ObjectsByKind[K]);
}

Value Heap::list(const std::vector<Value> &Elems) {
  Value Out = Value::nil();
  for (size_t I = Elems.size(); I > 0; --I)
    Out = cons(Elems[I - 1], Out);
  return Out;
}

std::vector<Value> pgmp::listToVector(const Value &List) {
  std::vector<Value> Out;
  Value Cur = List;
  while (Cur.isPair()) {
    Out.push_back(Cur.asPair()->Car);
    Cur = Cur.asPair()->Cdr;
  }
  if (!Cur.isNil())
    raiseError("improper list where proper list expected");
  return Out;
}

int64_t pgmp::listLength(const Value &List) {
  int64_t N = 0;
  Value Cur = List;
  while (Cur.isPair()) {
    ++N;
    Cur = Cur.asPair()->Cdr;
  }
  return Cur.isNil() ? N : -1;
}

//===----------------------------------------------------------------------===//
// HashTable
//===----------------------------------------------------------------------===//

uint64_t HashTable::Hasher::operator()(const Value &V) const {
  switch (HK) {
  case HashKind::Eq:
  case HashKind::Eqv:
    return eqHash(V);
  case HashKind::Equal:
    return equalHash(V);
  }
  return 0;
}

bool HashTable::Eq::operator()(const Value &A, const Value &B) const {
  switch (HK) {
  case HashKind::Eq:
    return eqValues(A, B);
  case HashKind::Eqv:
    return eqvValues(A, B);
  case HashKind::Equal:
    return equalValues(A, B);
  }
  return false;
}

HashTable::HashTable(HashKind HK)
    : Obj(ValueKind::Hash), HK(HK),
      Table(8, Hasher{HK}, Eq{HK}) {}

Value HashTable::get(const Value &Key, const Value &Default) const {
  auto It = Table.find(Key);
  return It == Table.end() ? Default : It->second.first;
}

bool HashTable::contains(const Value &Key) const {
  return Table.find(Key) != Table.end();
}

void HashTable::set(const Value &Key, const Value &Val) {
  auto It = Table.find(Key);
  if (It != Table.end()) {
    // Value update: the key set (and so the cached order) is unchanged.
    It->second.first = Val;
    return;
  }
  Table.emplace(Key, std::make_pair(Val, NextInsertIndex++));
  ++Version;
}

bool HashTable::erase(const Value &Key) {
  if (Table.erase(Key) == 0)
    return false;
  ++Version;
  return true;
}

const std::vector<Value> &HashTable::keysInInsertionOrder() const {
  if (OrderCacheVersion == Version)
    return OrderCache;
  std::vector<std::pair<uint64_t, Value>> Ordered;
  Ordered.reserve(Table.size());
  for (const auto &[K, V] : Table)
    Ordered.push_back({V.second, K});
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  OrderCache.clear();
  OrderCache.reserve(Ordered.size());
  for (auto &[Idx, K] : Ordered)
    OrderCache.push_back(K);
  OrderCacheVersion = Version;
  return OrderCache;
}
