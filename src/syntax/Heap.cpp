//===- syntax/Heap.cpp ----------------------------------------------------===//

#include "syntax/Heap.h"

#include "support/Diagnostics.h"
#include "support/ExecGuard.h"
#include "support/FaultInjector.h"
#include "syntax/SymbolTable.h"
#include "syntax/Syntax.h"

#include <algorithm>

using namespace pgmp;

const char *pgmp::allocSiteName(AllocSite S) {
  switch (S) {
#define PGMP_ALLOC_SITE_NAME(Id, Name)                                         \
  case AllocSite::Id:                                                          \
    return Name;
    PGMP_ALLOC_SITES(PGMP_ALLOC_SITE_NAME)
#undef PGMP_ALLOC_SITE_NAME
  case AllocSite::Ambient:
    break;
  }
  return "ambient";
}

Heap::~Heap() {
  // Only the destructible side lists are walked; trivially-destructible
  // objects (pairs, closures, boxes, env frames) are reclaimed with the
  // chunks. Newest-first order is fine: heap objects never own each
  // other, they only point, and nothing dereferences during teardown.
  for (DtorNode *N = NurseryDtorHead; N; N = N->Next)
    N->Destroy(N + 1);
  for (DtorNode *N = TenuredDtorHead; N; N = N->Next)
    N->Destroy(N + 1);
}

void *Heap::allocateSlow(size_t Bytes) {
  // Resource governance rides the cold path only: both checks run before
  // any state mutates, so a trip leaves the heap fully consistent — the
  // current chunk's tail keeps serving small allocations afterward.
  const size_t CS = Policy.NurseryChunkBytes;
  size_t ChunkNeed = Bytes > CS ? Bytes : CS;
  if (faultinject::shouldFail(faultinject::Point::Alloc))
    raiseGuardTrip(GuardKind::Heap,
                   "injected allocation failure (chunk of " +
                       std::to_string(ChunkNeed) + " bytes)");
  if (LimitBytes && Stats.BytesReserved + ChunkNeed > LimitBytes)
    raiseGuardTrip(GuardKind::Heap,
                   "heap limit of " + std::to_string(LimitBytes) +
                       " bytes reached (" +
                       std::to_string(Stats.BytesReserved) +
                       " reserved, next chunk needs " +
                       std::to_string(ChunkNeed) + ")");
  ++Stats.ChunksAcquired;
  Stats.BytesReserved += ChunkNeed;
  Stats.PeakBytesReserved =
      std::max(Stats.PeakBytesReserved, Stats.BytesReserved);
  if (Bytes > CS) {
    // Oversize (e.g. a frame with thousands of slots): dedicated chunk of
    // exactly the requested size; the current bump chunk keeps its tail.
    ++Stats.OversizeChunks;
    Nursery.push_back({std::make_unique<char[]>(Bytes), Bytes});
    return Nursery.back().Mem.get();
  }
  Nursery.push_back({std::make_unique<char[]>(CS), CS});
  char *Base = Nursery.back().Mem.get();
  Cur = Base + Bytes;
  End = Base + CS;
  return Base;
}

void *Heap::acquireTenuredChunk(size_t Bytes, bool Hot) {
  ++Stats.ChunksAcquired;
  if (Bytes > ChunkBytes) {
    ++Stats.OversizeChunks;
    Stats.BytesReserved += Bytes;
    Stats.PeakBytesReserved =
        std::max(Stats.PeakBytesReserved, Stats.BytesReserved);
    Tenured.push_back({std::make_unique<char[]>(Bytes), Bytes});
    return Tenured.back().Mem.get();
  }
  Stats.BytesReserved += ChunkBytes;
  Stats.PeakBytesReserved =
      std::max(Stats.PeakBytesReserved, Stats.BytesReserved);
  Tenured.push_back({std::make_unique<char[]>(ChunkBytes), ChunkBytes});
  char *Base = Tenured.back().Mem.get();
  char *&C = Hot ? HotCur : TenCur;
  char *&E = Hot ? HotEnd : TenEnd;
  C = Base + Bytes;
  E = Base + ChunkBytes;
  return Base;
}

void *Heap::allocateTenured(size_t Bytes, AllocSite S) {
  // Mutator path for pre-tenured sites: same guard semantics as
  // allocateSlow (fault injection and the reserved-bytes cap fire before
  // any state mutates).
  const bool Hot = Policy.HotSite[static_cast<size_t>(S)];
  char *&C = Hot ? HotCur : TenCur;
  char *&E = Hot ? HotEnd : TenEnd;
  if (Bytes <= static_cast<size_t>(E - C)) {
    void *P = C;
    C += Bytes;
    return P;
  }
  size_t ChunkNeed = Bytes > ChunkBytes ? Bytes : ChunkBytes;
  if (faultinject::shouldFail(faultinject::Point::Alloc))
    raiseGuardTrip(GuardKind::Heap,
                   "injected allocation failure (tenured chunk of " +
                       std::to_string(ChunkNeed) + " bytes)");
  if (LimitBytes && Stats.BytesReserved + ChunkNeed > LimitBytes)
    raiseGuardTrip(GuardKind::Heap,
                   "heap limit of " + std::to_string(LimitBytes) +
                       " bytes reached (" +
                       std::to_string(Stats.BytesReserved) +
                       " reserved, next tenured chunk needs " +
                       std::to_string(ChunkNeed) + ")");
  return acquireTenuredChunk(Bytes, Hot);
}

void *Heap::allocateForEvac(size_t Bytes, bool Hot) {
  // Collector path: never raises. An injected fault degrades the cycle
  // (EvacFailed) instead of unwinding out of a half-forwarded graph; the
  // reserved-bytes cap is not enforced because the cycle as a whole
  // releases memory.
  if (EvacFailed)
    return nullptr;
  char *&C = Hot ? HotCur : TenCur;
  char *&E = Hot ? HotEnd : TenEnd;
  if (Bytes <= static_cast<size_t>(E - C)) {
    void *P = C;
    C += Bytes;
    return P;
  }
  if (faultinject::shouldFail(faultinject::Point::Alloc)) {
    EvacFailed = true;
    return nullptr;
  }
  return acquireTenuredChunk(Bytes, Hot);
}

//===----------------------------------------------------------------------===//
// Region reclamation
//===----------------------------------------------------------------------===//

bool Heap::inFromSpace(const void *P) const {
  auto It = std::upper_bound(
      FromRanges.begin(), FromRanges.end(), P,
      [](const void *Ptr, const std::pair<const char *, const char *> &R) {
        return Ptr < static_cast<const void *>(R.first);
      });
  if (It == FromRanges.begin())
    return false;
  --It;
  return P < static_cast<const void *>(It->second);
}

bool Heap::inDemotedSpace(const void *P) const {
  auto It = std::upper_bound(
      DemotedRanges.begin(), DemotedRanges.end(), P,
      [](const void *Ptr, const std::pair<const char *, const char *> &R) {
        return Ptr < static_cast<const void *>(R.first);
      });
  if (It == DemotedRanges.begin())
    return false;
  --It;
  return P < static_cast<const void *>(It->second);
}

template <typename T>
Obj *Heap::relocateObj(T *Old, bool Hot, bool FirstPromo) {
  size_t Bytes;
  T *Copy;
  if constexpr (std::is_trivially_destructible_v<T>) {
    Bytes = roundUp(sizeof(T));
    void *Mem = allocateForEvac(Bytes, Hot);
    if (!Mem)
      return nullptr;
    Copy = new (Mem) T(std::move(*Old));
  } else {
    Bytes = roundUp(sizeof(DtorNode) + sizeof(T));
    auto *N = static_cast<DtorNode *>(allocateForEvac(Bytes, Hot));
    if (!N)
      return nullptr;
    Copy = new (N + 1) T(std::move(*Old));
    N->Destroy = [](void *P) { static_cast<T *>(P)->~T(); };
    N->Next = TenuredDtorHead;
    TenuredDtorHead = N;
    // The moved-from shell stays on the nursery list and is destructed
    // (cheaply, it is empty) when the region is dropped — every
    // destructible object still runs its destructor exactly once.
  }
  ++CycleEvacObjects;
  CycleEvacBytes += Bytes;
  if (FirstPromo) {
    AllocSiteStats &SS = Sites[Copy->Site];
    ++SS.Survived;
    SS.SurvivedBytes += Bytes;
  }
  return Copy;
}

Obj *Heap::evacuate(Obj *O) {
  const bool Hot = Policy.HotSite[O->Site];
  // First promotion out of the nursery earns the site's Survived credit;
  // a re-evacuation during a major (the object came from a demoted
  // tenured chunk) already counted.
  const bool First = DemotedRanges.empty() || !inDemotedSpace(O);
  switch (O->Kind) {
  case ValueKind::Pair:
    return relocateObj(static_cast<Pair *>(O), Hot, First);
  case ValueKind::String:
    return relocateObj(static_cast<StringObj *>(O), Hot, First);
  case ValueKind::Vector:
    return relocateObj(static_cast<VectorObj *>(O), Hot, First);
  case ValueKind::Hash:
    return relocateObj(static_cast<HashTable *>(O), Hot, First);
  case ValueKind::Closure:
    return relocateObj(static_cast<Closure *>(O), Hot, First);
  case ValueKind::Primitive:
    return relocateObj(static_cast<Primitive *>(O), Hot, First);
  case ValueKind::Syntax:
    return relocateObj(static_cast<Syntax *>(O), Hot, First);
  case ValueKind::Box:
    return relocateObj(static_cast<Box *>(O), Hot, First);
  case ValueKind::Env: {
    // Variable-size: header plus inline slots in one copy.
    auto *E = static_cast<EnvObj *>(O);
    size_t Bytes = roundUp(sizeof(EnvObj) + E->NumSlots * sizeof(Value));
    void *Mem = allocateForEvac(Bytes, Hot);
    if (!Mem)
      return nullptr;
    EnvObj *Copy = new (Mem) EnvObj(E->Parent, E->NumSlots);
    Copy->Site = E->Site;
    const Value *Src = E->slots();
    Value *Dst = Copy->slots();
    for (uint32_t I = 0; I < E->NumSlots; ++I)
      new (Dst + I) Value(Src[I]);
    ++CycleEvacObjects;
    CycleEvacBytes += Bytes;
    if (First) {
      AllocSiteStats &SS = Sites[Copy->Site];
      ++SS.Survived;
      SS.SurvivedBytes += Bytes;
    }
    return Copy;
  }
  default: {
    // A kind whose layout lives outside syntax/ (VmClosure): relocate
    // through the hooks installVm registered.
    const ExternalKindOps &Ops = ExternalKinds[static_cast<size_t>(O->Kind)];
    assert(Ops.Relocate && "unregistered external heap kind in collect()");
    size_t Bytes = roundUp(Ops.Size);
    void *Mem = allocateForEvac(Bytes, Hot);
    if (!Mem)
      return nullptr;
    Obj *Copy = Ops.Relocate(Mem, O);
    ++CycleEvacObjects;
    CycleEvacBytes += Bytes;
    if (First) {
      AllocSiteStats &SS = Sites[Copy->Site];
      ++SS.Survived;
      SS.SurvivedBytes += Bytes;
    }
    return Copy;
  }
  }
}

Obj *Heap::forwardObj(Obj *O) {
  if (!O)
    return nullptr;
  if (!inFromSpace(O)) {
    // Tenured object (or a table-owned Symbol, which has no children):
    // not moving this cycle, but its fields may point into the nursery,
    // so it is scanned once per cycle via the stamp.
    if (O->GcStamp != GcEpoch) {
      O->GcStamp = GcEpoch;
      Worklist.push_back(O);
    }
    return O;
  }
  auto It = Forwarded.find(O);
  if (It != Forwarded.end())
    return It->second;
  Obj *Copy = evacuate(O);
  if (!Copy) {
    // Degraded cycle: the object is promoted in place — its chunk will be
    // adopted into the tenured generation wholesale — but its children
    // still need forwarding (earlier evacuees already moved).
    if (DemotedRanges.empty() || !inDemotedSpace(O))
      ++Sites[O->Site].Survived;
    Copy = O;
  }
  Copy->GcStamp = GcEpoch;
  Forwarded.emplace(O, Copy);
  Worklist.push_back(Copy);
  return Copy;
}

void Heap::scanObject(Obj *O, GcVisitor &V) {
  switch (O->Kind) {
  case ValueKind::Symbol:    // interned, no Value children
  case ValueKind::String:    // text only
  case ValueKind::Primitive: // name + function pointer only
    return;
  case ValueKind::Pair: {
    auto *P = static_cast<Pair *>(O);
    V.value(P->Car);
    V.value(P->Cdr);
    return;
  }
  case ValueKind::Vector: {
    for (Value &E : static_cast<VectorObj *>(O)->Elems)
      V.value(E);
    return;
  }
  case ValueKind::Hash:
    static_cast<HashTable *>(O)->rehashForGc(V);
    return;
  case ValueKind::Closure:
    V.ptr(static_cast<Closure *>(O)->Captured);
    return;
  case ValueKind::Syntax:
    V.value(static_cast<Syntax *>(O)->Inner);
    return;
  case ValueKind::Box:
    V.value(static_cast<Box *>(O)->Boxed);
    return;
  case ValueKind::Env: {
    auto *E = static_cast<EnvObj *>(O);
    V.ptr(E->Parent);
    Value *S = E->slots();
    for (uint32_t I = 0; I < E->NumSlots; ++I)
      V.value(S[I]);
    return;
  }
  default: {
    const ExternalKindOps &Ops = ExternalKinds[static_cast<size_t>(O->Kind)];
    assert(Ops.Trace && "unregistered external heap kind in collect()");
    Ops.Trace(O, V);
    return;
  }
  }
}

Heap::ReclaimResult Heap::collect(const RootEnumerator &Roots,
                                  bool ForceMajor) {
  assert(!InCollect && "collect() is not reentrant");
  ReclaimResult R;
  const bool Major =
      ForceMajor ||
      (TenuredBytes >= std::max<uint64_t>(4 * ChunkBytes,
                                          2 * TenuredBytesAtLastMajor));
  // Record this region's allocation volume before it is reset — the
  // nursery-sizing EWMA the policy reads.
  EwmaRegionBytes = EwmaRegionBytes
                        ? (3 * EwmaRegionBytes + NurseryBytes) / 4
                        : NurseryBytes;

  DemotedRanges.clear();
  if (Major) {
    // Widen from-space to the whole heap: every tenured chunk becomes
    // collectible, so dead pre-tenured objects and stale evacuees from
    // earlier cycles are dropped too. Live tenured objects re-evacuate
    // into fresh chunks exactly like nursery survivors — without
    // re-earning Survived credit (see inDemotedSpace).
    DemotedRanges.reserve(Tenured.size());
    for (const Chunk &C : Tenured)
      DemotedRanges.emplace_back(C.Mem.get(), C.Mem.get() + C.Size);
    std::sort(DemotedRanges.begin(), DemotedRanges.end());
    for (Chunk &C : Tenured)
      Nursery.push_back(std::move(C));
    Tenured.clear();
    if (TenuredDtorHead) {
      DtorNode *Tail = TenuredDtorHead;
      while (Tail->Next)
        Tail = Tail->Next;
      Tail->Next = NurseryDtorHead;
      NurseryDtorHead = TenuredDtorHead;
      TenuredDtorHead = nullptr;
    }
    TenCur = TenEnd = HotCur = HotEnd = nullptr;
    NurseryBytes += TenuredBytes;
    TenuredBytes = 0;
  }

  FromRanges.clear();
  FromRanges.reserve(Nursery.size());
  for (const Chunk &C : Nursery)
    FromRanges.emplace_back(C.Mem.get(), C.Mem.get() + C.Size);
  std::sort(FromRanges.begin(), FromRanges.end());

  InCollect = true;
  EvacFailed = false;
  CycleEvacObjects = 0;
  CycleEvacBytes = 0;
  ++GcEpoch;
  Forwarded.clear();
  Worklist.clear();

  GcVisitor V(*this);
  Roots(V);
  while (!Worklist.empty()) {
    Obj *O = Worklist.back();
    Worklist.pop_back();
    scanObject(O, V);
  }

  const uint64_t RegionBytes = NurseryBytes;
  if (!EvacFailed) {
    // Destruct the dead region (moved-from shells included — each
    // destructible object runs its destructor exactly once), then free
    // its chunks wholesale.
    for (DtorNode *N = NurseryDtorHead; N;) {
      DtorNode *Next = N->Next;
      N->Destroy(N + 1);
      N = Next;
    }
    NurseryDtorHead = nullptr;
    uint64_t Freed = 0;
    for (const Chunk &C : Nursery)
      Freed += C.Size;
    Stats.BytesReserved -= Freed;
    Stats.ChunksFreed += Nursery.size();
    Nursery.clear();
    Cur = End = nullptr;
    R.BytesReclaimed = RegionBytes - CycleEvacBytes;
    Stats.BytesReclaimed += R.BytesReclaimed;
    NurseryBytes = 0;
    TenuredBytes += CycleEvacBytes;
  } else {
    // Degraded cycle (injected evacuation failure): nothing is freed —
    // every nursery chunk is adopted into the tenured generation, its
    // destructible objects with it. References are already consistent:
    // the forwarding scan completed with in-place promotion.
    for (Chunk &C : Nursery)
      Tenured.push_back(std::move(C));
    Nursery.clear();
    if (NurseryDtorHead) {
      DtorNode *Tail = NurseryDtorHead;
      while (Tail->Next)
        Tail = Tail->Next;
      Tail->Next = TenuredDtorHead;
      TenuredDtorHead = NurseryDtorHead;
      NurseryDtorHead = nullptr;
    }
    Cur = End = nullptr;
    TenuredBytes += RegionBytes + CycleEvacBytes;
    NurseryBytes = 0;
    ++Stats.ReclaimAborts;
    R.Aborted = true;
  }

  ++Stats.Collections;
  if (Major) {
    ++Stats.MajorCollections;
    TenuredBytesAtLastMajor = TenuredBytes;
  }
  Stats.ObjectsEvacuated += CycleEvacObjects;
  Stats.BytesEvacuated += CycleEvacBytes;
  R.ObjectsEvacuated = CycleEvacObjects;
  R.BytesEvacuated = CycleEvacBytes;
  R.Major = Major;

  InCollect = false;
  Forwarded.clear();
  FromRanges.clear();

  // Self-scheduled policy refresh for engines without a ProfileBus epoch
  // driving re-selection.
  if (++CollectsSinceSelect >= PolicySelectInterval) {
    CollectsSinceSelect = 0;
    selectReclaimPolicy();
  }
  return R;
}

bool Heap::selectReclaimPolicy() {
  ReclaimPolicy P;
  P.Epoch = Policy.Epoch;
  // Nursery sizing: aim for roughly eight chunks per region at the
  // observed volume, power-of-two stepped, bounded to [1, 16] chunks.
  if (EwmaRegionBytes) {
    size_t Target = static_cast<size_t>(EwmaRegionBytes / 8);
    size_t Sz = ChunkBytes;
    while (Sz < Target && Sz < 16 * ChunkBytes)
      Sz *= 2;
    P.NurseryChunkBytes = Sz;
  }
  uint64_t TotalRetainedBytes = 0;
  for (const AllocSiteStats &SS : Sites)
    TotalRetainedBytes += SS.SurvivedBytes + SS.TenuredAllocBytes;
  for (size_t I = 0; I < NumAllocSites; ++I) {
    const AllocSiteStats &SS = Sites[I];
    if (SS.Objects < 512)
      continue; // too little signal to act on
    // Pre-tenure when at least half the site's objects outlive their
    // region: the nursery round-trip (copy + forwarding) is wasted work.
    // TenuredAllocs count as retained so the site keeps its standing
    // after the policy reroutes it (its objects stop being "survivors").
    const uint64_t Retained = SS.Survived + SS.TenuredAllocs;
    P.PreTenure[I] = Retained * 2 >= SS.Objects;
    // Co-locate sites carrying a dominant share (>= 1/8) of all retained
    // bytes into the dedicated hot tenured stream.
    const uint64_t SiteBytes = SS.SurvivedBytes + SS.TenuredAllocBytes;
    P.HotSite[I] = TotalRetainedBytes != 0 &&
                   SiteBytes * 8 >= TotalRetainedBytes && SiteBytes != 0;
  }
  const bool Changed = P.NurseryChunkBytes != Policy.NurseryChunkBytes ||
                       P.PreTenure != Policy.PreTenure ||
                       P.HotSite != Policy.HotSite;
  if (Changed)
    P.Epoch = Policy.Epoch + 1;
  Policy = P;
  return Changed;
}

uint64_t Heap::numObjects() const {
  uint64_t N = 0;
  for (uint64_t C : Stats.ObjectsByKind)
    N += C;
  return N;
}

void Heap::appendStats(
    std::vector<std::pair<std::string, uint64_t>> &Out) const {
  Out.emplace_back("heap-bytes-allocated", Stats.BytesAllocated);
  Out.emplace_back("heap-bytes-live", bytesLive());
  Out.emplace_back("heap-bytes-nursery", NurseryBytes);
  Out.emplace_back("heap-bytes-tenured", TenuredBytes);
  Out.emplace_back("heap-bytes-reserved", Stats.BytesReserved);
  Out.emplace_back("heap-bytes-reserved-peak", Stats.PeakBytesReserved);
  Out.emplace_back("heap-chunks", Stats.ChunksAcquired);
  Out.emplace_back("heap-chunks-freed", Stats.ChunksFreed);
  Out.emplace_back("heap-oversize-chunks", Stats.OversizeChunks);
  Out.emplace_back("heap-collections", Stats.Collections);
  Out.emplace_back("heap-collections-major", Stats.MajorCollections);
  Out.emplace_back("heap-bytes-reclaimed", Stats.BytesReclaimed);
  Out.emplace_back("heap-objects-evacuated", Stats.ObjectsEvacuated);
  Out.emplace_back("heap-bytes-evacuated", Stats.BytesEvacuated);
  Out.emplace_back("heap-objects-pre-tenured", Stats.PreTenuredObjects);
  Out.emplace_back("heap-reclaim-aborts", Stats.ReclaimAborts);
  Out.emplace_back("heap-reclaim-policy-epoch", Policy.Epoch);
  Out.emplace_back("heap-objects", numObjects());
  for (size_t K = 0; K < NumValueKinds; ++K)
    if (Stats.ObjectsByKind[K])
      Out.emplace_back(std::string("heap-objects-") +
                           valueKindName(static_cast<ValueKind>(K)),
                       Stats.ObjectsByKind[K]);
  for (size_t I = 0; I < NumAllocSites; ++I) {
    const AllocSiteStats &SS = Sites[I];
    if (!SS.Objects)
      continue;
    std::string Base =
        std::string("alloc-site-") + allocSiteName(static_cast<AllocSite>(I));
    Out.emplace_back(Base, SS.Objects);
    Out.emplace_back(Base + "-bytes", SS.Bytes);
    if (SS.Survived + SS.TenuredAllocs)
      Out.emplace_back(Base + "-retained", SS.Survived + SS.TenuredAllocs);
  }
}

Value Heap::list(const std::vector<Value> &Elems, AllocSite S) {
  Value Out = Value::nil();
  for (size_t I = Elems.size(); I > 0; --I)
    Out = cons(Elems[I - 1], Out, S);
  return Out;
}

std::vector<Value> pgmp::listToVector(const Value &List) {
  std::vector<Value> Out;
  Value Cur = List;
  while (Cur.isPair()) {
    Out.push_back(Cur.asPair()->Car);
    Cur = Cur.asPair()->Cdr;
  }
  if (!Cur.isNil())
    raiseError("improper list where proper list expected");
  return Out;
}

int64_t pgmp::listLength(const Value &List) {
  int64_t N = 0;
  Value Cur = List;
  while (Cur.isPair()) {
    ++N;
    Cur = Cur.asPair()->Cdr;
  }
  return Cur.isNil() ? N : -1;
}

//===----------------------------------------------------------------------===//
// HashTable
//===----------------------------------------------------------------------===//

uint64_t HashTable::Hasher::operator()(const Value &V) const {
  switch (HK) {
  case HashKind::Eq:
  case HashKind::Eqv:
    return eqHash(V);
  case HashKind::Equal:
    return equalHash(V);
  }
  return 0;
}

bool HashTable::Eq::operator()(const Value &A, const Value &B) const {
  switch (HK) {
  case HashKind::Eq:
    return eqValues(A, B);
  case HashKind::Eqv:
    return eqvValues(A, B);
  case HashKind::Equal:
    return equalValues(A, B);
  }
  return false;
}

HashTable::HashTable(HashKind HK)
    : Obj(ValueKind::Hash), HK(HK),
      Table(8, Hasher{HK}, Eq{HK}) {}

Value HashTable::get(const Value &Key, const Value &Default) const {
  auto It = Table.find(Key);
  return It == Table.end() ? Default : It->second.first;
}

bool HashTable::contains(const Value &Key) const {
  return Table.find(Key) != Table.end();
}

void HashTable::set(const Value &Key, const Value &Val) {
  auto It = Table.find(Key);
  if (It != Table.end()) {
    // Value update: the key set (and so the cached order) is unchanged.
    It->second.first = Val;
    return;
  }
  Table.emplace(Key, std::make_pair(Val, NextInsertIndex++));
  ++Version;
}

bool HashTable::erase(const Value &Key) {
  if (Table.erase(Key) == 0)
    return false;
  ++Version;
  return true;
}

void HashTable::rehashForGc(GcVisitor &V) {
  // Eq/eqv discipline hashes by object identity, so a moved key lands in
  // a different bucket: extract, forward, and re-insert everything.
  // Insertion indices are preserved (key order survives collection); the
  // cached order list holds stale Values and is dropped.
  OrderCache.clear();
  OrderCacheVersion = ~uint64_t(0);
  if (Table.empty())
    return;
  std::vector<std::pair<Value, std::pair<Value, uint64_t>>> Entries(
      Table.begin(), Table.end());
  Table.clear();
  for (auto &E : Entries) {
    V.value(E.first);
    V.value(E.second.first);
  }
  for (auto &E : Entries)
    Table.emplace(E.first, E.second);
}

const std::vector<Value> &HashTable::keysInInsertionOrder() const {
  if (OrderCacheVersion == Version)
    return OrderCache;
  std::vector<std::pair<uint64_t, Value>> Ordered;
  Ordered.reserve(Table.size());
  for (const auto &[K, V] : Table)
    Ordered.push_back({V.second, K});
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  OrderCache.clear();
  OrderCache.reserve(Ordered.size());
  for (auto &[Idx, K] : Ordered)
    OrderCache.push_back(K);
  OrderCacheVersion = Version;
  return OrderCache;
}
