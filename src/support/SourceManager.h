//===- support/SourceManager.h - Owns source buffers ----------*- C++ -*-===//
///
/// \file
/// Registry of source buffers (files and in-memory strings). Buffers are
/// identified by a small integer FileId; buffer names are the file-name
/// component of profile points, so they must be stable across runs.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SUPPORT_SOURCEMANAGER_H
#define PGMP_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pgmp {

using FileId = uint32_t;

/// Owns the text of every source buffer seen by a session.
///
/// Re-registering the same name returns the same FileId with refreshed
/// contents; profile points refer to names, not ids, so ids need not be
/// stable across sessions.
class SourceManager {
public:
  /// Registers (or refreshes) a buffer under \p Name and returns its id.
  FileId addBuffer(std::string Name, std::string Contents);

  /// Reads \p Path from disk and registers it. Returns false on I/O error.
  bool addFile(const std::string &Path, FileId &IdOut);

  std::string_view bufferText(FileId Id) const;
  const std::string &bufferName(FileId Id) const;

  /// Contents of the buffer registered under \p Name, or nullptr when no
  /// such buffer exists. Used by profile integrity checks to fingerprint
  /// source files at store time and re-check them at load time.
  const std::string *contentsByName(const std::string &Name) const;
  uint32_t numBuffers() const { return static_cast<uint32_t>(Buffers.size()); }

  /// Renders "name:line:col" for diagnostics.
  std::string describe(FileId Id, const SourcePos &Pos) const;

private:
  struct Buffer {
    std::string Name;
    std::string Contents;
  };
  std::vector<Buffer> Buffers;
  std::unordered_map<std::string, FileId> IdsByName;
};

} // namespace pgmp

#endif // PGMP_SUPPORT_SOURCEMANAGER_H
