//===- support/FaultInjector.h - General fault-injection harness -*- C++ -*-===//
///
/// \file
/// Named fault points at the pipeline's phase boundaries, generalizing
/// the one-shot byte-level iofault hooks of support/AtomicFile.h one
/// layer up: where iofault breaks a single writeFileAtomic call mid-write,
/// a faultinject Point makes a whole phase (read, expand, compile,
/// tier-compile, profile store/load) or an arena chunk acquisition fail
/// cleanly, so tests — and `pgmpi --inject-fault` — can prove that every
/// stage of the system recovers instead of crashing or corrupting state.
///
/// Arming is one-shot with an optional skip count: `arm(P, N)` makes the
/// (N+1)-th hit of point P fire, then the injector disarms itself, so a
/// leaked arm can never poison later operations. The state is a pair of
/// atomics — pool worker threads may hit points concurrently and exactly
/// one of them consumes the fault.
///
/// What firing means is decided at the call site: phase points raise a
/// SchemeError ("injected fault at <point>"), the Alloc point raises a
/// GuardTrip with GuardKind::Heap (an out-of-memory dress rehearsal), and
/// the profile points surface as failed ProfileOpResults with counters
/// preserved — each point exercises the recovery path its phase really
/// has.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SUPPORT_FAULTINJECTOR_H
#define PGMP_SUPPORT_FAULTINJECTOR_H

#include <cstdint>
#include <string_view>

namespace pgmp {
namespace faultinject {

/// The named fault points. Phase points fire at the start of their phase
/// for one top-level form; Alloc fires in Heap::allocateSlow (chunk
/// acquisition, i.e. a simulated malloc failure); the profile points fire
/// before any state is mutated.
enum class Point : uint8_t {
  None,
  Read,         ///< reader: next top-level form
  Expand,       ///< hygienic expansion of one form
  Compile,      ///< core syntax -> Expr IR
  TierCompile,  ///< hot-lambda tier-up (recovers by staying interpreted)
  ProfileStore, ///< storeProfile, before serialization
  ProfileLoad,  ///< loadProfile, before reading
  Alloc,        ///< arena chunk acquisition
};
inline constexpr size_t NumPoints = 8;

/// Arms point \p P: its (Skip+1)-th hit fires, then the injector
/// disarms. Re-arming overwrites any pending fault.
void arm(Point P, uint64_t Skip = 0);

/// Clears any armed fault.
void disarm();

/// True while a fault is armed (not yet consumed).
bool armed();

/// Called by instrumented call sites: returns true exactly once, on the
/// armed point's firing hit (consuming the fault). Thread-safe; at most
/// one caller observes true per arm().
bool shouldFail(Point P);

/// Stable lower-case name ("read", "expand", ..., "alloc").
const char *pointName(Point P);

/// Parses a point name as printed by pointName; Point::None on no match.
Point parsePoint(std::string_view Name);

} // namespace faultinject
} // namespace pgmp

#endif // PGMP_SUPPORT_FAULTINJECTOR_H
