//===- support/Trace.cpp --------------------------------------------------===//

#include "support/Trace.h"

#include "support/AtomicFile.h"
#include "support/Stats.h"

#include <cstdio>

using namespace pgmp;

void TraceSink::enable(bool On) {
  if (On && !Enabled && EpochNs == 0)
    EpochNs = statsNowNanos();
  Enabled = On;
}

void TraceSink::record(const char *Name, const char *Category,
                       uint64_t StartNs, uint64_t EndNs) {
  if (!Enabled)
    return;
  Events.push_back({Name, Category, StartNs,
                    EndNs > StartNs ? EndNs - StartNs : 0,
                    EventKind::Complete});
}

void TraceSink::instant(const std::string &Name, const char *Category,
                        uint64_t AtNs) {
  if (!Enabled)
    return;
  Events.push_back({Name, Category, AtNs, 0, EventKind::Instant});
}

void TraceSink::counter(const std::string &Name, const char *Category,
                        uint64_t AtNs, uint64_t Value) {
  if (!Enabled)
    return;
  Events.push_back({Name, Category, AtNs, Value, EventKind::Counter});
}

/// Escapes a string for a JSON string literal (quotes, backslashes, and
/// control characters).
static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Renders microseconds with fixed millisecond-grade precision.
static std::string jsonMicros(uint64_t Nanos) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.3f", static_cast<double>(Nanos) / 1e3);
  return Buf;
}

std::string TraceSink::renderJson() const {
  std::string Out = "{\"traceEvents\":[";
  // Metadata record naming the process, as the trace viewers expect.
  Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
         "\"args\":{\"name\":\"pgmp\"}}";
  for (const Event &E : Events) {
    uint64_t Rel = E.StartNs >= EpochNs ? E.StartNs - EpochNs : 0;
    const char *Ph = E.Kind == EventKind::Instant
                         ? "i"
                         : (E.Kind == EventKind::Counter ? "C" : "X");
    Out += ",{\"name\":\"" + jsonEscape(E.Name) + "\",\"cat\":\"" +
           E.Category + "\",\"ph\":\"" + Ph + "\",\"ts\":" + jsonMicros(Rel);
    switch (E.Kind) {
    case EventKind::Instant:
      Out += ",\"s\":\"p\"";
      break;
    case EventKind::Counter:
      Out += ",\"args\":{\"value\":" + std::to_string(E.DurNs) + "}";
      break;
    case EventKind::Complete:
      Out += ",\"dur\":" + jsonMicros(E.DurNs);
      break;
    }
    Out += ",\"pid\":1,\"tid\":1}";
  }
  Out += "],\"displayTimeUnit\":\"ms\"}";
  return Out;
}

bool TraceSink::write(const std::string &Path, std::string &ErrorOut) const {
  return writeFileAtomic(Path, renderJson(), ErrorOut);
}
