//===- support/Text.cpp ---------------------------------------------------===//

#include "support/Text.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace pgmp;

std::string pgmp::formatFlonum(double X) {
  char Buf[64];
  // %.17g always round-trips; try shorter forms first for readability.
  for (int Prec = 1; Prec <= 17; ++Prec) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Prec, X);
    if (std::strtod(Buf, nullptr) == X)
      break;
  }
  std::string S(Buf);
  if (S.find_first_of(".eEni") == std::string::npos)
    S += ".0";
  return S;
}

std::string pgmp::escapeStringLiteral(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      Out += C;
    }
  }
  Out += '"';
  return Out;
}

std::vector<std::string_view> pgmp::splitChar(std::string_view S, char Sep) {
  std::vector<std::string_view> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.push_back(S.substr(Start));
      return Parts;
    }
    Parts.push_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

bool pgmp::parseInt64(std::string_view S, int64_t &Out) {
  if (S.empty())
    return false;
  std::string Buf(S);
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Buf.c_str(), &End, 10);
  if (errno != 0 || End != Buf.c_str() + Buf.size())
    return false;
  Out = static_cast<int64_t>(V);
  return true;
}

bool pgmp::parseDouble(std::string_view S, double &Out) {
  if (S.empty())
    return false;
  std::string Buf(S);
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Buf.c_str(), &End);
  if (errno != 0 || End != Buf.c_str() + Buf.size())
    return false;
  Out = V;
  return true;
}
