//===- support/SourceLoc.h - Source positions -----------------*- C++ -*-===//
//
// Part of the pgmp project, a reproduction of "Profile-Guided
// Meta-Programming" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-offset source positions and half-open source ranges. A SourceRange
/// plus a file identity is the "source object" of Chez Scheme (Section 4.1
/// of the paper), which this reproduction uses as the profile-point
/// identity.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SUPPORT_SOURCELOC_H
#define PGMP_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace pgmp {

/// A position within one source buffer, as a byte offset plus 1-based
/// line/column derived from the buffer text.
struct SourcePos {
  uint32_t Offset = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;

  friend bool operator==(const SourcePos &A, const SourcePos &B) {
    return A.Offset == B.Offset;
  }
};

/// A half-open [Begin, End) range within one source buffer.
struct SourceRange {
  SourcePos Begin;
  SourcePos End;

  friend bool operator==(const SourceRange &A, const SourceRange &B) {
    return A.Begin == B.Begin && A.End == B.End;
  }
};

} // namespace pgmp

#endif // PGMP_SUPPORT_SOURCELOC_H
