//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

#include <cstdio>

using namespace pgmp;

std::string Diagnostic::render() const {
  const char *Tag = Kind == DiagKind::Error     ? "error"
                    : Kind == DiagKind::Warning ? "warning"
                                                : "note";
  std::string Out;
  if (!Where.empty()) {
    Out += Where;
    Out += ": ";
  }
  Out += Tag;
  Out += ": ";
  Out += Message;
  return Out;
}

void DiagnosticSink::report(DiagKind Kind, std::string Where,
                            std::string Message) {
  Diags.push_back(Diagnostic{Kind, std::move(Where), std::move(Message)});
  if (Kind == DiagKind::Error)
    ++NumErrors;
  else if (Kind == DiagKind::Warning)
    ++NumWarnings;
  if (EchoToStderr)
    std::fprintf(stderr, "%s\n", Diags.back().render().c_str());
}

void DiagnosticSink::reportAll(DiagKind Kind, const std::string &Where,
                               const std::vector<std::string> &Messages) {
  for (const std::string &M : Messages)
    report(Kind, Where, M);
}

void DiagnosticSink::clear() {
  Diags.clear();
  NumErrors = 0;
  NumWarnings = 0;
}

std::string SchemeError::render() const {
  if (Where.empty())
    return "error: " + Message;
  return Where + ": error: " + Message;
}

void pgmp::raiseError(std::string Message, std::string Where) {
  throw SchemeError(std::move(Message), std::move(Where));
}
