//===- support/AtomicFile.cpp ---------------------------------------------===//

#include "support/AtomicFile.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

using namespace pgmp;

namespace {

struct FaultState {
  iofault::Kind K = iofault::Kind::None;
  size_t BitOffset = 0;
};

FaultState ArmedFault;

} // namespace

void pgmp::iofault::arm(Kind K, size_t BitOffset) {
  ArmedFault.K = K;
  ArmedFault.BitOffset = BitOffset;
}

void pgmp::iofault::disarm() { ArmedFault = FaultState{}; }

bool pgmp::iofault::armed() { return ArmedFault.K != Kind::None; }

FileReadStatus pgmp::readFileAll(const std::string &Path, std::string &Out,
                                 std::string &ErrorOut) {
  Out.clear();
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    ErrorOut = "cannot open " + Path + ": " + std::strerror(errno);
    return FileReadStatus::CannotOpen;
  }
  char Chunk[16384];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Out.append(Chunk, N);
  if (std::ferror(F)) {
    std::fclose(F);
    Out.clear();
    ErrorOut = "error reading " + Path;
    return FileReadStatus::ReadError;
  }
  std::fclose(F);
  return FileReadStatus::Ok;
}

bool pgmp::writeFileAtomic(const std::string &Path, std::string_view Data,
                           std::string &ErrorOut) {
  // Consume the armed fault up front so one arm() affects exactly one
  // store attempt, even if the faulted stage is never reached.
  iofault::Kind Fault = ArmedFault.K;
  size_t BitOffset = ArmedFault.BitOffset;
  ArmedFault = FaultState{};

  std::string Tmp =
      Path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    ErrorOut = "cannot create temporary file " + Tmp + ": " +
               std::strerror(errno);
    return false;
  }

  std::string Flipped;
  std::string_view Payload = Data;
  if (Fault == iofault::Kind::BitFlip && !Data.empty()) {
    Flipped.assign(Data);
    Flipped[BitOffset % Flipped.size()] ^= 0x01;
    Payload = Flipped;
  }

  size_t ToWrite = Payload.size();
  if (Fault == iofault::Kind::ShortWrite)
    ToWrite /= 2;
  size_t Written =
      ToWrite ? std::fwrite(Payload.data(), 1, ToWrite, F) : 0;
  if (Fault == iofault::Kind::WriteError || Written != Payload.size()) {
    std::fclose(F);
    std::remove(Tmp.c_str());
    ErrorOut = Fault == iofault::Kind::WriteError
                   ? "write failed (no space?) on " + Tmp
                   : "short write to " + Tmp;
    return false;
  }

  if (std::fflush(F) != 0 || Fault == iofault::Kind::FsyncError ||
      ::fsync(::fileno(F)) != 0) {
    std::fclose(F);
    std::remove(Tmp.c_str());
    ErrorOut = "cannot flush " + Tmp + " to disk";
    return false;
  }
  if (std::fclose(F) != 0) {
    std::remove(Tmp.c_str());
    ErrorOut = "cannot close " + Tmp + ": " + std::strerror(errno);
    return false;
  }
  if (Fault == iofault::Kind::RenameError ||
      std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    ErrorOut = "cannot rename " + Tmp + " to " + Path;
    return false;
  }
  return true;
}
