//===- support/Trace.h - Chrome trace_event export ------------*- C++ -*-===//
///
/// \file
/// A structured trace-event sink: pipeline phases (and any other
/// instrumented scopes) are recorded as complete events and exported as
/// Chrome trace_event JSON — loadable in chrome://tracing, Perfetto, or
/// speedscope. Disabled by default; when disabled, recording is one
/// branch and the pipeline never reads the clock on its behalf.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SUPPORT_TRACE_H
#define PGMP_SUPPORT_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace pgmp {

/// Collects trace events; export with renderJson()/write().
class TraceSink {
public:
  void enable(bool On);
  bool enabled() const { return Enabled; }

  /// Records one complete ("ph":"X") event. Timestamps are nanoseconds
  /// from statsNowNanos(); rendering rebases them to the first enable()
  /// call and converts to microseconds, as the format expects.
  void record(const char *Name, const char *Category, uint64_t StartNs,
              uint64_t EndNs);

  /// Records an instant ("ph":"i") marker event at \p AtNs.
  void instant(const std::string &Name, const char *Category, uint64_t AtNs);

  /// Records a counter ("ph":"C") sample at \p AtNs; viewers draw these
  /// as a stacked area track. Used for heap allocation gauges.
  void counter(const std::string &Name, const char *Category, uint64_t AtNs,
               uint64_t Value);

  size_t numEvents() const { return Events.size(); }
  void clear() { Events.clear(); }

  /// The full trace as a Chrome trace_event JSON object:
  ///   {"traceEvents":[...],"displayTimeUnit":"ms"}
  std::string renderJson() const;

  /// Atomically writes renderJson() to \p Path. False on I/O failure,
  /// with \p ErrorOut describing it.
  bool write(const std::string &Path, std::string &ErrorOut) const;

private:
  enum class EventKind : uint8_t { Complete, Instant, Counter };
  struct Event {
    std::string Name;
    const char *Category;
    uint64_t StartNs;
    uint64_t DurNs; ///< duration (Complete) or sampled value (Counter)
    EventKind Kind;
  };
  std::vector<Event> Events;
  bool Enabled = false;
  uint64_t EpochNs = 0;
};

} // namespace pgmp

#endif // PGMP_SUPPORT_TRACE_H
