//===- support/FaultInjector.cpp ------------------------------------------===//

#include "support/FaultInjector.h"

#include <atomic>

using namespace pgmp;
using faultinject::Point;

namespace {

/// Process-global armed state. Two atomics instead of one struct under a
/// mutex: shouldFail sits on pipeline paths that pool workers run
/// concurrently, and the disarmed fast path must stay a single relaxed
/// load.
std::atomic<uint8_t> ArmedPoint{static_cast<uint8_t>(Point::None)};
std::atomic<int64_t> HitsUntilFire{0};

} // namespace

void pgmp::faultinject::arm(Point P, uint64_t Skip) {
  // Order matters for concurrent shouldFail callers: publish the
  // countdown before the point so no thread can fire on a stale count.
  HitsUntilFire.store(static_cast<int64_t>(Skip) + 1,
                      std::memory_order_relaxed);
  ArmedPoint.store(static_cast<uint8_t>(P), std::memory_order_release);
}

void pgmp::faultinject::disarm() {
  ArmedPoint.store(static_cast<uint8_t>(Point::None),
                   std::memory_order_release);
}

bool pgmp::faultinject::armed() {
  return ArmedPoint.load(std::memory_order_acquire) !=
         static_cast<uint8_t>(Point::None);
}

bool pgmp::faultinject::shouldFail(Point P) {
  if (ArmedPoint.load(std::memory_order_acquire) != static_cast<uint8_t>(P))
    return false;
  // Exactly one hitter reaches zero; it disarms the point and fires.
  if (HitsUntilFire.fetch_sub(1, std::memory_order_acq_rel) != 1)
    return false;
  disarm();
  return true;
}

const char *pgmp::faultinject::pointName(Point P) {
  switch (P) {
  case Point::None:
    return "none";
  case Point::Read:
    return "read";
  case Point::Expand:
    return "expand";
  case Point::Compile:
    return "compile";
  case Point::TierCompile:
    return "tier-compile";
  case Point::ProfileStore:
    return "profile-store";
  case Point::ProfileLoad:
    return "profile-load";
  case Point::Alloc:
    return "alloc";
  }
  return "?";
}

Point pgmp::faultinject::parsePoint(std::string_view Name) {
  for (size_t I = 1; I < NumPoints; ++I) {
    Point P = static_cast<Point>(I);
    if (Name == pointName(P))
      return P;
  }
  return Point::None;
}
