//===- support/Text.h - Small string utilities ----------------*- C++ -*-===//
///
/// \file
/// String helpers shared by the reader, the printer, and profile I/O.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SUPPORT_TEXT_H
#define PGMP_SUPPORT_TEXT_H

#include <string>
#include <string_view>
#include <vector>

namespace pgmp {

/// Renders a double the way Scheme writes flonums: shortest round-trip
/// representation, always containing a '.' or exponent.
std::string formatFlonum(double X);

/// Escapes a string for Scheme `write` notation (quotes and backslashes).
std::string escapeStringLiteral(std::string_view S);

/// Splits on a single character; keeps empty fields.
std::vector<std::string_view> splitChar(std::string_view S, char Sep);

/// True if \p S parses completely as a signed integer; writes to \p Out.
bool parseInt64(std::string_view S, int64_t &Out);

/// True if \p S parses completely as a double; writes to \p Out.
bool parseDouble(std::string_view S, double &Out);

} // namespace pgmp

#endif // PGMP_SUPPORT_TEXT_H
