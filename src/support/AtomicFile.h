//===- support/AtomicFile.h - Crash-safe file persistence -----*- C++ -*-===//
///
/// \file
/// Whole-file read/write helpers shared by the profile persistence paths
/// (ProfileIO and BlockProfile). Writes are atomic: the data goes to a
/// temporary file in the target's directory, is flushed and fsynced,
/// then renamed over the target — a crash or I/O error mid-store never
/// leaves a torn profile visible at the target path.
///
/// The iofault namespace exposes injectable failure points (short write,
/// ENOSPC-style write error, fsync failure, rename failure, bit flip)
/// so robustness tests can prove the crash-safety and corruption-
/// detection claims instead of asserting them.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SUPPORT_ATOMICFILE_H
#define PGMP_SUPPORT_ATOMICFILE_H

#include <string>
#include <string_view>

namespace pgmp {

/// Outcome of readFileAll; "cannot open" and "read error" are distinct
/// failures because their degradation policies differ (a missing file is
/// a caller mistake; a failing read is an environment problem).
enum class FileReadStatus { Ok, CannotOpen, ReadError };

/// Reads all of \p Path into \p Out, checking ferror after every read.
/// On failure \p Out is cleared and \p ErrorOut describes the problem.
FileReadStatus readFileAll(const std::string &Path, std::string &Out,
                           std::string &ErrorOut);

/// Atomically replaces \p Path with \p Data (temp file + fsync + rename).
/// On any failure the previous contents of \p Path are untouched, the
/// temporary file is removed, and \p ErrorOut is set.
bool writeFileAtomic(const std::string &Path, std::string_view Data,
                     std::string &ErrorOut);

namespace iofault {

/// Failure points inside writeFileAtomic. Arming is one-shot: the next
/// writeFileAtomic call consumes the armed fault (whether or not the
/// fault's stage is reached), so tests cannot leak faults into later
/// stores. BitFlip corrupts one byte of the payload but lets the write
/// succeed — the corruption must then be caught by checksums at load.
enum class Kind : uint8_t {
  None,
  ShortWrite,  ///< write stops halfway and reports failure
  WriteError,  ///< write fails outright (ENOSPC-style)
  FsyncError,  ///< data written but fsync fails
  RenameError, ///< temp file complete but rename fails
  BitFlip,     ///< payload byte at BitOffset is XORed; write "succeeds"
};

/// Arms \p K for the next writeFileAtomic call. \p BitOffset selects the
/// corrupted byte for BitFlip (taken modulo the payload size).
void arm(Kind K, size_t BitOffset = 0);

/// Clears any armed fault.
void disarm();

/// True while a fault is armed (i.e. not yet consumed).
bool armed();

} // namespace iofault

} // namespace pgmp

#endif // PGMP_SUPPORT_ATOMICFILE_H
