//===- support/Stats.cpp --------------------------------------------------===//

#include "support/Stats.h"

#include "support/Trace.h"

#include <chrono>
#include <cstdio>

using namespace pgmp;

uint64_t pgmp::statsNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char *StatsRegistry::phaseName(Phase P) {
  switch (P) {
  case Phase::Read:
    return "read";
  case Phase::Expand:
    return "expand";
  case Phase::Compile:
    return "compile";
  case Phase::VmCompile:
    return "vm-compile";
  case Phase::Eval:
    return "eval";
  case Phase::CounterFold:
    return "counter-fold";
  case Phase::ProfileStore:
    return "profile-store";
  case Phase::ProfileLoad:
    return "profile-load";
  case Phase::TierCompile:
    return "tier-compile";
  case Phase::Reclaim:
    return "reclaim";
  }
  return "?";
}

const char *StatsRegistry::statName(Stat S) {
  switch (S) {
  case Stat::CompiledUnits:
    return "compiled-units";
  case Stat::CompiledNodes:
    return "compiled-nodes";
  case Stat::InstrumentedNodes:
    return "instrumented-nodes";
  case Stat::MacroExpansions:
    return "macro-expansions";
  case Stat::AnnotateExprCalls:
    return "annotate-expr-calls";
  case Stat::PointsCreated:
    return "profile-points-created";
  case Stat::ProfileQueries:
    return "profile-queries";
  case Stat::DatasetMerges:
    return "dataset-merges";
  case Stat::CounterIncrements:
    return "counter-increments";
  case Stat::ProfileStores:
    return "profile-stores";
  case Stat::ProfileLoads:
    return "profile-loads";
  case Stat::ProfilePointsLoaded:
    return "profile-points-loaded";
  case Stat::CounterShards:
    return "counter-shards";
  case Stat::ShardMerges:
    return "shard-merges";
  case Stat::TierUps:
    return "tier-ups";
  case Stat::TierCompileFails:
    return "tier-compile-fails";
  case Stat::TierPremarkedHot:
    return "tier-premarked-hot";
  case Stat::GuardTrips:
    return "guard-trips";
  case Stat::TaskRetries:
    return "task-retries";
  case Stat::BusPublishes:
    return "bus-publishes";
  case Stat::BusEpochs:
    return "bus-epochs";
  case Stat::RetierPromotions:
    return "retier-promotions";
  case Stat::RetierDemotions:
    return "retier-demotions";
  case Stat::SuperinstructionsFused:
    return "superinstructions-fused";
  case Stat::TierInlines:
    return "tier-inlines";
  case Stat::TierInlineFallbacks:
    return "tier-inline-fallbacks";
  case Stat::FusionEpochs:
    return "fusion-epochs";
  case Stat::TierInvalidations:
    return "tier-invalidations";
  case Stat::Reclaims:
    return "reclaims";
  case Stat::ReclaimAborts:
    return "reclaim-aborts";
  case Stat::ReclaimPolicyEpochs:
    return "reclaim-policy-epochs";
  }
  return "?";
}

void StatsRegistry::reset() {
  Counts.fill(0);
  Phases.fill(PhaseAccum{});
}

std::vector<std::pair<std::string, uint64_t>> StatsRegistry::snapshot() const {
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(NumStats + 2 * NumPhases);
  for (size_t I = 0; I < NumStats; ++I)
    Out.emplace_back(statName(static_cast<Stat>(I)), Counts[I]);
  for (size_t I = 0; I < NumPhases; ++I) {
    std::string Name = phaseName(static_cast<Phase>(I));
    Out.emplace_back(Name + "-entries", Phases[I].Entries);
    Out.emplace_back(Name + "-ns", Phases[I].Nanos);
  }
  if (ExtraFn)
    ExtraFn(ExtraSource, Out);
  return Out;
}

std::string StatsRegistry::render() const {
  std::string Out = "pipeline stats:\n";
  char Buf[128];
  for (size_t I = 0; I < NumPhases; ++I) {
    if (!Phases[I].Entries)
      continue;
    std::snprintf(Buf, sizeof(Buf), "  phase %-14s %8llu entries %12.3f ms\n",
                  phaseName(static_cast<Phase>(I)),
                  static_cast<unsigned long long>(Phases[I].Entries),
                  static_cast<double>(Phases[I].Nanos) / 1e6);
    Out += Buf;
  }
  for (size_t I = 0; I < NumStats; ++I) {
    if (!Counts[I])
      continue;
    std::snprintf(Buf, sizeof(Buf), "  %-22s %12llu\n",
                  statName(static_cast<Stat>(I)),
                  static_cast<unsigned long long>(Counts[I]));
    Out += Buf;
  }
  if (ExtraFn) {
    std::vector<std::pair<std::string, uint64_t>> Extra;
    ExtraFn(ExtraSource, Extra);
    for (const auto &[Name, N] : Extra) {
      if (!N)
        continue;
      std::snprintf(Buf, sizeof(Buf), "  %-22s %12llu\n", Name.c_str(),
                    static_cast<unsigned long long>(N));
      Out += Buf;
    }
  }
  return Out;
}

ScopedPhase::ScopedPhase(StatsRegistry &Stats, TraceSink *Trace, Phase P)
    : Stats(Stats), Trace(Trace && Trace->enabled() ? Trace : nullptr), P(P),
      Active(Stats.enabled() || this->Trace) {
  if (Active)
    StartNs = statsNowNanos();
}

ScopedPhase::~ScopedPhase() {
  if (!Active)
    return;
  uint64_t EndNs = statsNowNanos();
  Stats.addPhaseTime(P, EndNs - StartNs);
  if (Trace)
    Trace->record(StatsRegistry::phaseName(P), "pipeline", StartNs, EndNs);
}
