//===- support/Diagnostics.h - Error reporting ----------------*- C++ -*-===//
///
/// \file
/// Diagnostics for the reader/expander/interpreter, and the single
/// exception type used to unwind out of Scheme-level errors.
///
/// Deviation from the LLVM rule against exceptions: a tree-walking
/// interpreter needs non-local exits for runtime errors raised deep inside
/// user code. We confine ourselves to one exception type, thrown only by
/// this module and caught at the Engine API boundary, where it is
/// converted into a result value.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SUPPORT_DIAGNOSTICS_H
#define PGMP_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace pgmp {

/// Severity of a collected diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One rendered diagnostic; Where is "file:line:col" or empty.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  std::string Where;
  std::string Message;

  std::string render() const;
};

/// Accumulates diagnostics; compile-time warnings from meta-programs (e.g.
/// the Perflint-style data-structure recommendations of Section 6.3 of the
/// paper) land here so tests can observe them.
class DiagnosticSink {
public:
  void report(DiagKind Kind, std::string Where, std::string Message);

  /// Reports every message in \p Messages at \p Kind with the same
  /// \p Where. The single funnel for the profile subsystem's warning
  /// channels (ProfileLoadReport, BlockProfileLoadReport): call sites
  /// attach the source path once instead of hand-rolling copy loops.
  void reportAll(DiagKind Kind, const std::string &Where,
                 const std::vector<std::string> &Messages);

  const std::vector<Diagnostic> &all() const { return Diags; }
  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }
  void clear();

  /// When set, diagnostics are echoed to stderr as they arrive.
  bool EchoToStderr = false;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

/// The single exception used for Scheme-level error propagation.
class SchemeError {
public:
  explicit SchemeError(std::string Message, std::string Where = "")
      : Message(std::move(Message)), Where(std::move(Where)) {}

  const std::string &message() const { return Message; }
  const std::string &where() const { return Where; }
  std::string render() const;

private:
  std::string Message;
  std::string Where;
};

/// Raises a SchemeError; marked [[noreturn]] so callers need no dead code.
[[noreturn]] void raiseError(std::string Message, std::string Where = "");

} // namespace pgmp

#endif // PGMP_SUPPORT_DIAGNOSTICS_H
