//===- support/Stats.h - Pipeline self-metrics ----------------*- C++ -*-===//
///
/// \file
/// Observability for the pipeline itself: per-phase wall-clock timers
/// (read / expand / compile / eval / counter-fold / profile I/O) and
/// profiler self-metric counters (instrumented-vs-total compiles,
/// annotate-expr calls, dataset merges, counter increments, ...). The
/// paper argues profile data must be a first-class, inspectable input to
/// compilation; the same standard applied to our own pipeline means the
/// cost of profiling — Section 4's instrumentation overhead — is a
/// measured number, not folklore.
///
/// Everything is near-zero cost when disabled: counters are a single
/// predictable branch, and ScopedPhase reads the clock only when stats or
/// tracing is actually on. Nothing here is threaded through the per-node
/// evaluator hot loop — phases wrap top-level pipeline stages only.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SUPPORT_STATS_H
#define PGMP_SUPPORT_STATS_H

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pgmp {

class TraceSink;

/// Pipeline stages with an accumulated wall-clock timer.
enum class Phase : uint8_t {
  Read,         ///< reader: text -> syntax
  Expand,       ///< hygienic expansion (includes transformer runs)
  Compile,      ///< core syntax -> Expr IR
  VmCompile,    ///< Expr IR -> bytecode
  Eval,         ///< interpreter / VM execution of top-level forms
  CounterFold,  ///< folding live counters into the profile database
  ProfileStore, ///< serializing + atomically writing a profile
  ProfileLoad,  ///< reading + parsing + merging a profile
  TierCompile,  ///< lowering hot lambdas to bytecode (tier-up)
  Reclaim,      ///< region reclamation at run boundaries (Heap::collect)
};
inline constexpr size_t NumPhases = 10;

/// Profiler self-metric counters.
enum class Stat : uint8_t {
  CompiledUnits,      ///< top-level forms compiled to Expr IR
  CompiledNodes,      ///< Expr nodes built
  InstrumentedNodes,  ///< Expr nodes that received a live counter
  MacroExpansions,    ///< transformer invocations during expansion
  AnnotateExprCalls,  ///< annotate-expr (C++ or Scheme level)
  PointsCreated,      ///< make-profile-point calls
  ProfileQueries,     ///< profile-query / profile-query* calls
  DatasetMerges,      ///< data sets folded or loaded into the database
  CounterIncrements,  ///< total counter bumps, accumulated at fold time
  ProfileStores,      ///< store-profile operations attempted
  ProfileLoads,       ///< load-profile operations attempted
  ProfilePointsLoaded, ///< point records merged by load-profile
  CounterShards,      ///< per-thread counter shards created
  ShardMerges,        ///< shard pages aggregated by counter snapshots
  TierUps,            ///< lambdas promoted to a bytecode body
  TierCompileFails,   ///< tier-up compiles rejected (phase-1-only bodies)
  TierPremarkedHot,   ///< lambdas pre-marked hot from a loaded profile
  GuardTrips,         ///< runs aborted by an ExecGuard resource limit
  TaskRetries,        ///< EnginePool tasks re-run on a fresh worker
  BusPublishes,       ///< counter snapshots published to a ProfileBus
  BusEpochs,          ///< bus epochs observed and applied by this engine
  RetierPromotions,   ///< lambdas marked hot by an epoch (re-tiering)
  RetierDemotions,    ///< stale-hot lambdas demoted to interpretation
  SuperinstructionsFused, ///< opcode pairs fused at tier-up
  TierInlines,        ///< calls inlined into a tiered body
  TierInlineFallbacks, ///< eligible inlines abandoned by a size/depth cap
  FusionEpochs,       ///< fusion-table re-selections that changed the set
  TierInvalidations,  ///< tiered bodies dropped by a fusion-table epoch
  Reclaims,           ///< boundary region reclamations run (Heap::collect)
  ReclaimAborts,      ///< reclamations degraded by an evac alloc failure
  ReclaimPolicyEpochs ///< reclaim-policy re-selections that changed it
};
inline constexpr size_t NumStats = 31;

/// Monotonic clock in nanoseconds (steady_clock).
uint64_t statsNowNanos();

/// Accumulates phase timings and self-metric counters for one Context.
/// Disabled by default; when disabled, bump() and addPhaseTime() are
/// no-ops behind one branch and nothing reads the clock.
class StatsRegistry {
public:
  void enable(bool On) { Enabled = On; }
  bool enabled() const { return Enabled; }

  void bump(Stat S, uint64_t N = 1) {
    if (Enabled)
      Counts[static_cast<size_t>(S)] += N;
  }
  uint64_t count(Stat S) const { return Counts[static_cast<size_t>(S)]; }

  void addPhaseTime(Phase P, uint64_t Nanos) {
    if (!Enabled)
      return;
    PhaseAccum &A = Phases[static_cast<size_t>(P)];
    A.Nanos += Nanos;
    ++A.Entries;
  }
  uint64_t phaseNanos(Phase P) const {
    return Phases[static_cast<size_t>(P)].Nanos;
  }
  uint64_t phaseEntries(Phase P) const {
    return Phases[static_cast<size_t>(P)].Entries;
  }

  /// Zeroes all counters and timers; keeps the enabled flag.
  void reset();

  /// Callback appending externally owned (name, value) rows — used by the
  /// Context to expose the heap's always-on allocation counters through
  /// the same snapshot/render surface without the allocator paying a
  /// stats-enabled branch. \p Source is the opaque provider pointer.
  using ExtraStatsFn = void (*)(const void *Source,
                                std::vector<std::pair<std::string, uint64_t>> &);

  /// Registers (or clears, with nullptr) the extra-stats provider. The
  /// provider must outlive the registry's snapshot()/render() calls.
  void setExtraSource(ExtraStatsFn Fn, const void *Source) {
    ExtraFn = Fn;
    ExtraSource = Source;
  }

  /// Deterministically ordered (name, value) pairs: every counter, then
  /// per-phase entry counts and nanoseconds, then any extra-source rows.
  /// Feeds (pgmp-stats) and the --stats report.
  std::vector<std::pair<std::string, uint64_t>> snapshot() const;

  /// Human-readable multi-line summary (counters + phase timings + any
  /// non-zero extra-source rows).
  std::string render() const;

  static const char *phaseName(Phase P);
  static const char *statName(Stat S);

private:
  struct PhaseAccum {
    uint64_t Nanos = 0;
    uint64_t Entries = 0;
  };
  bool Enabled = false;
  std::array<uint64_t, NumStats> Counts{};
  std::array<PhaseAccum, NumPhases> Phases{};
  ExtraStatsFn ExtraFn = nullptr;
  const void *ExtraSource = nullptr;
};

/// RAII phase timer: accumulates into a StatsRegistry and (optionally)
/// emits one Chrome trace_event per scope. Reads the clock only when
/// stats or tracing is enabled, so a disabled pipeline pays one branch
/// per phase boundary, not per expression.
class ScopedPhase {
public:
  ScopedPhase(StatsRegistry &Stats, TraceSink *Trace, Phase P);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;

private:
  StatsRegistry &Stats;
  TraceSink *Trace;
  Phase P;
  uint64_t StartNs = 0;
  bool Active;
};

} // namespace pgmp

#endif // PGMP_SUPPORT_STATS_H
