//===- support/ExecGuard.h - Resource-governed execution ------*- C++ -*-===//
///
/// \file
/// Per-run execution guards: a fuel (step) budget, a recursion-depth
/// limit, and a wall-clock deadline, plus the GuardTrip error that every
/// resource limit in the system (including the Heap's byte cap) raises
/// when it is exceeded. The ROADMAP's long-lived serving process cannot
/// afford a misbehaving request — runaway recursion, an infinite loop,
/// unbounded allocation — taking the whole Engine down; guards convert
/// those into structured, catchable errors that leave the Engine fully
/// reusable.
///
/// ## Semantics
///
/// - **Fuel**: one unit per procedure application and per VM back edge
///   (taken jump/branch). Both tiers charge at the same program events —
///   a loop iteration costs one unit whether it runs interpreted (a tail
///   application) or tiered (a taken branch) — so a budget that lets a
///   workload finish in one tier lets it finish in the other.
/// - **Depth**: non-tail application nesting (interpreter evalExpr
///   recursion and VM runVmFunction recursion grow the C++ stack
///   together; tail calls are iterative in both tiers and are not
///   counted). The reader and expander enforce their own fixed nesting
///   caps with the same GuardTrip error (see Reader.h / Expander.cpp).
/// - **Deadline**: absolute wall-clock budget per run, polled every 1024
///   fuel charges so the hot path never reads the clock per event.
/// - **Heap**: enforced by Heap::allocateSlow against the arena's
///   reserved bytes — the bump fast path is untouched (see Heap.h).
///
/// A "run" is one Engine entry point (evalString / evalFile / callGlobal
/// / expandToString): live state resets at entry, so a trip never poisons
/// the next request. Guard *checks* never touch profile counters, so
/// instrumented profiles of completing workloads stay byte-identical with
/// guards on or off, across tiers, and under EnginePool.
///
/// Every check hides behind one `Active` flag read: with no limits
/// configured (the default) the interpreter and VM pay one predictable
/// branch per application, which is the ≤2% disabled-overhead contract.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SUPPORT_EXECGUARD_H
#define PGMP_SUPPORT_EXECGUARD_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>

namespace pgmp {

/// Which resource limit a GuardTrip reports.
enum class GuardKind : uint8_t {
  None,     ///< no trip (EvalResult default)
  Fuel,     ///< step budget exhausted
  Depth,    ///< recursion/nesting limit exceeded
  Heap,     ///< arena byte cap reached (or injected allocation failure)
  Deadline, ///< wall-clock budget exceeded
};

/// Stable lower-case name ("fuel", "depth", "heap", "deadline", "none").
const char *guardKindName(GuardKind K);

/// The structured error a tripped guard raises. Derives from SchemeError
/// so every existing Engine-boundary catch converts it into a failed
/// EvalResult instead of crashing; boundaries that want the which-limit
/// diagnostics catch GuardTrip first (EvalResult::Tripped carries it).
class GuardTrip : public SchemeError {
public:
  GuardTrip(GuardKind K, std::string Message, std::string Where = "")
      : SchemeError(std::move(Message), std::move(Where)), K(K) {}

  GuardKind kind() const { return K; }

private:
  GuardKind K;
};

/// Raises a GuardTrip; the message is prefixed "guard trip [kind]: ..."
/// so rendered errors identify which limit fired.
[[noreturn]] void raiseGuardTrip(GuardKind K, std::string Message,
                                 std::string Where = "");

/// Per-Context guard state. Limits are configured once (EngineOptions at
/// Engine construction); live usage resets at every run boundary via
/// beginRun(). Hot paths call the charge/enter helpers only when Active.
class ExecGuard {
public:
  //===--------------------------------------------------------------------===//
  // Configured limits (0 = unlimited)
  //===--------------------------------------------------------------------===//

  uint64_t FuelLimit = 0;     ///< applications + VM back edges per run
  uint32_t DepthLimit = 0;    ///< non-tail application nesting
  uint64_t DeadlineNanos = 0; ///< wall-clock budget per run

  /// True when any of the limits above is configured; the single flag the
  /// interpreter and VM branch on. (The heap byte cap lives on the Heap
  /// and does not set this — its check rides the allocateSlow cold path.)
  bool Active = false;

  //===--------------------------------------------------------------------===//
  // Live per-run state
  //===--------------------------------------------------------------------===//

  uint64_t FuelUsed = 0;
  uint32_t Depth = 0;
  uint64_t DeadlineAt = 0; ///< absolute steady-clock ns; 0 = unarmed

  //===--------------------------------------------------------------------===//
  // Periodic poll hook (continuous profiling)
  //===--------------------------------------------------------------------===//

  /// Callback invoked from chargeFuel every PollEvery charges — the
  /// "ExecGuard poll point" the continuous profiling service rides: it
  /// publishes counter totals to the ProfileBus and applies any new epoch.
  /// Must not allocate on the Scheme heap or re-enter evaluation.
  using PollFn = void (*)(void *);

  uint64_t PollEvery = 0; ///< fuel charges between polls; 0 = no hook
  PollFn Poll = nullptr;
  void *PollArg = nullptr;

  /// Sets the limits and recomputes Active. Called at Engine construction
  /// (after the prelude loads, so the prelude itself is never governed).
  void configure(uint64_t Fuel, uint32_t MaxDepth, uint64_t DeadlineMs);

  /// Installs (or clears, Every == 0) the periodic poll hook and
  /// recomputes Active — a poll hook alone is enough to arm the guarded
  /// instantiations, which is how continuous profiling works without any
  /// resource limit configured.
  void configurePoll(uint64_t Every, PollFn Fn, void *Arg);

  /// Resets live usage and arms the deadline. Called at every Engine run
  /// boundary — which is also what makes an Engine reusable after a trip:
  /// the unwound run's spent fuel and depth never leak into the next one.
  void beginRun();

  /// Charges one fuel unit; trips on exhaustion. Polls the deadline every
  /// 1024 charges and the poll hook every PollEvery charges. Call only
  /// when Active.
  void chargeFuel() {
    if (FuelLimit && ++FuelUsed > FuelLimit)
      tripFuel();
    if (DeadlineAt && (++DeadlineTick & 1023u) == 0)
      pollDeadline();
    if (PollEvery && ++PollTick >= PollEvery) {
      PollTick = 0;
      Poll(PollArg);
    }
  }

  /// Non-tail application entry: one fuel unit plus one depth level.
  void enterCall() {
    chargeFuel();
    if (++Depth > DepthLimit && DepthLimit)
      tripDepth();
  }

  /// Non-tail application exit (not run on unwind: a trip aborts the whole
  /// run and beginRun() re-zeroes the counter).
  void leaveCall() { --Depth; }

private:
  [[noreturn]] void tripFuel();
  [[noreturn]] void tripDepth();
  void pollDeadline(); ///< trips (noreturn) only when the deadline passed

  uint32_t DeadlineTick = 0;
  uint64_t PollTick = 0;

  void recomputeActive();
};

} // namespace pgmp

#endif // PGMP_SUPPORT_EXECGUARD_H
