//===- support/SourceManager.cpp ------------------------------------------===//

#include "support/SourceManager.h"

#include <cassert>
#include <cstdio>

using namespace pgmp;

FileId SourceManager::addBuffer(std::string Name, std::string Contents) {
  auto It = IdsByName.find(Name);
  if (It != IdsByName.end()) {
    Buffers[It->second].Contents = std::move(Contents);
    return It->second;
  }
  FileId Id = static_cast<FileId>(Buffers.size());
  IdsByName.emplace(Name, Id);
  Buffers.push_back(Buffer{std::move(Name), std::move(Contents)});
  return Id;
}

bool SourceManager::addFile(const std::string &Path, FileId &IdOut) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::string Text;
  char Chunk[4096];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Text.append(Chunk, N);
  std::fclose(F);
  IdOut = addBuffer(Path, std::move(Text));
  return true;
}

std::string_view SourceManager::bufferText(FileId Id) const {
  assert(Id < Buffers.size() && "bad FileId");
  return Buffers[Id].Contents;
}

const std::string *SourceManager::contentsByName(const std::string &Name) const {
  auto It = IdsByName.find(Name);
  if (It == IdsByName.end())
    return nullptr;
  return &Buffers[It->second].Contents;
}

const std::string &SourceManager::bufferName(FileId Id) const {
  assert(Id < Buffers.size() && "bad FileId");
  return Buffers[Id].Name;
}

std::string SourceManager::describe(FileId Id, const SourcePos &Pos) const {
  return bufferName(Id) + ":" + std::to_string(Pos.Line) + ":" +
         std::to_string(Pos.Column);
}
