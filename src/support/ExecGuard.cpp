//===- support/ExecGuard.cpp ----------------------------------------------===//

#include "support/ExecGuard.h"

#include "support/Stats.h"

using namespace pgmp;

const char *pgmp::guardKindName(GuardKind K) {
  switch (K) {
  case GuardKind::None:
    return "none";
  case GuardKind::Fuel:
    return "fuel";
  case GuardKind::Depth:
    return "depth";
  case GuardKind::Heap:
    return "heap";
  case GuardKind::Deadline:
    return "deadline";
  }
  return "?";
}

void pgmp::raiseGuardTrip(GuardKind K, std::string Message,
                          std::string Where) {
  throw GuardTrip(K,
                  "guard trip [" + std::string(guardKindName(K)) +
                      "]: " + std::move(Message),
                  std::move(Where));
}

void ExecGuard::configure(uint64_t Fuel, uint32_t MaxDepth,
                          uint64_t DeadlineMs) {
  FuelLimit = Fuel;
  DepthLimit = MaxDepth;
  DeadlineNanos = DeadlineMs * 1000000ull;
  recomputeActive();
  beginRun();
}

void ExecGuard::configurePoll(uint64_t Every, PollFn Fn, void *Arg) {
  PollEvery = Every;
  Poll = Every ? Fn : nullptr;
  PollArg = Every ? Arg : nullptr;
  PollTick = 0;
  recomputeActive();
}

void ExecGuard::recomputeActive() {
  Active = FuelLimit != 0 || DepthLimit != 0 || DeadlineNanos != 0 ||
           PollEvery != 0;
}

void ExecGuard::beginRun() {
  FuelUsed = 0;
  Depth = 0;
  DeadlineTick = 0;
  DeadlineAt = DeadlineNanos ? statsNowNanos() + DeadlineNanos : 0;
}

void ExecGuard::tripFuel() {
  raiseGuardTrip(GuardKind::Fuel,
                 "fuel budget of " + std::to_string(FuelLimit) +
                     " steps exhausted (runaway loop or recursion?)");
}

void ExecGuard::tripDepth() {
  raiseGuardTrip(GuardKind::Depth,
                 "recursion depth limit of " + std::to_string(DepthLimit) +
                     " non-tail applications exceeded");
}

void ExecGuard::pollDeadline() {
  if (statsNowNanos() <= DeadlineAt)
    return;
  raiseGuardTrip(GuardKind::Deadline,
                 "wall-clock deadline of " +
                     std::to_string(DeadlineNanos / 1000000ull) +
                     " ms exceeded");
}
