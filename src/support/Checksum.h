//===- support/Checksum.h - CRC32 and content fingerprints ----*- C++ -*-===//
///
/// \file
/// Integrity primitives for the profile persistence layer: a CRC-32 used
/// as a whole-file checksum footer (detects torn or bit-flipped profile
/// files) and a 64-bit FNV-1a content fingerprint used to tie a stored
/// profile to the exact source text it was collected against (detects
/// stale profiles, the Section 4.3 invalidation hazard).
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SUPPORT_CHECKSUM_H
#define PGMP_SUPPORT_CHECKSUM_H

#include <cstdint>
#include <string>
#include <string_view>

namespace pgmp {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of \p Data.
uint32_t crc32(std::string_view Data);

/// 64-bit FNV-1a hash of \p Data; the source-content fingerprint.
uint64_t fnv1a64(std::string_view Data);

/// Fixed-width lower-case hex rendering.
std::string hex32(uint32_t V);
std::string hex64(uint64_t V);

/// Parses hex (either case, 1..8 / 1..16 digits). False on empty input,
/// stray characters, or overflow.
bool parseHex32(std::string_view S, uint32_t &Out);
bool parseHex64(std::string_view S, uint64_t &Out);

} // namespace pgmp

#endif // PGMP_SUPPORT_CHECKSUM_H
