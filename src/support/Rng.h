//===- support/Rng.h - Deterministic PRNG ---------------------*- C++ -*-===//
///
/// \file
/// A small xorshift128+ PRNG used by workload generators and property
/// tests. Deterministic given a seed, so every benchmark and test is
/// reproducible bit-for-bit across runs.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_SUPPORT_RNG_H
#define PGMP_SUPPORT_RNG_H

#include <cstdint>

namespace pgmp {

/// xorshift128+; not cryptographic, but fast and deterministic.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding avoids low-entropy states.
    auto Mix = [&Seed]() {
      Seed += 0x9e3779b97f4a7c15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      return Z ^ (Z >> 31);
    };
    S0 = Mix();
    S1 = Mix();
  }

  uint64_t next() {
    uint64_t X = S0;
    const uint64_t Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Uniform in [0, Bound); Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability \p P of true.
  bool chance(double P) { return unit() < P; }

private:
  uint64_t S0, S1;
};

} // namespace pgmp

#endif // PGMP_SUPPORT_RNG_H
