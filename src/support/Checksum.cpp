//===- support/Checksum.cpp -----------------------------------------------===//

#include "support/Checksum.h"

#include <array>
#include <cstdio>

using namespace pgmp;

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Table[I] = C;
  }
  return Table;
}

int hexDigit(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

} // namespace

uint32_t pgmp::crc32(std::string_view Data) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  uint32_t C = 0xFFFFFFFFu;
  for (unsigned char Byte : Data)
    C = Table[(C ^ Byte) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

uint64_t pgmp::fnv1a64(std::string_view Data) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char Byte : Data) {
    H ^= Byte;
    H *= 1099511628211ull;
  }
  return H;
}

std::string pgmp::hex32(uint32_t V) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%08x", V);
  return Buf;
}

std::string pgmp::hex64(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

bool pgmp::parseHex32(std::string_view S, uint32_t &Out) {
  if (S.empty() || S.size() > 8)
    return false;
  uint32_t V = 0;
  for (char C : S) {
    int D = hexDigit(C);
    if (D < 0)
      return false;
    V = (V << 4) | static_cast<uint32_t>(D);
  }
  Out = V;
  return true;
}

bool pgmp::parseHex64(std::string_view S, uint64_t &Out) {
  if (S.empty() || S.size() > 16)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    int D = hexDigit(C);
    if (D < 0)
      return false;
    V = (V << 4) | static_cast<uint64_t>(D);
  }
  Out = V;
  return true;
}
