//===- profile/ProfileReport.cpp ------------------------------------------===//

#include "profile/ProfileReport.h"

#include "support/AtomicFile.h"
#include "support/SourceManager.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

using namespace pgmp;

namespace {

/// Looks up profiled source text: SourceManager buffers first, then (when
/// allowed) the file on disk, cached per file so a report over one big
/// buffer reads it once.
class ExcerptSource {
public:
  ExcerptSource(const SourceManager *SM, bool ReadDisk)
      : SM(SM), ReadDisk(ReadDisk) {}

  /// Text of \p File, or nullptr when unavailable.
  const std::string *textOf(const std::string &File) {
    if (SM)
      if (const std::string *Contents = SM->contentsByName(File))
        return Contents;
    if (!ReadDisk || File.empty() || File.front() == '<')
      return nullptr;
    auto It = DiskCache.find(File);
    if (It == DiskCache.end()) {
      std::string Contents, Err;
      if (readFileAll(File, Contents, Err) != FileReadStatus::Ok)
        Contents.clear(); // cache the miss as empty
      It = DiskCache.emplace(File, std::move(Contents)).first;
    }
    return It->second.empty() ? nullptr : &It->second;
  }

private:
  const SourceManager *SM;
  bool ReadDisk;
  std::unordered_map<std::string, std::string> DiskCache;
};

/// Collapses whitespace runs to single spaces and truncates to \p Width.
std::string flattenExcerpt(std::string_view Text, size_t Width) {
  std::string Out;
  bool PendingSpace = false;
  for (char C : Text) {
    if (C == ' ' || C == '\t' || C == '\n' || C == '\r') {
      PendingSpace = !Out.empty();
      continue;
    }
    if (PendingSpace) {
      Out += ' ';
      PendingSpace = false;
    }
    Out += C;
    if (Out.size() > Width)
      break;
  }
  if (Out.size() > Width) {
    Out.resize(Width > 3 ? Width - 3 : 0);
    Out += "...";
  }
  return Out;
}

} // namespace

std::vector<ProfileHotRow> pgmp::profileHotRows(const ProfileSnapshot &S) {
  std::vector<ProfileHotRow> Rows;
  Rows.reserve(S.points());
  for (const auto &[Src, E] : S.entries())
    Rows.push_back({Src, S.weight(Src), E.TotalCount});
  std::sort(Rows.begin(), Rows.end(),
            [](const ProfileHotRow &A, const ProfileHotRow &B) {
              if (A.Weight != B.Weight)
                return A.Weight > B.Weight;
              if (A.Count != B.Count)
                return A.Count > B.Count;
              return A.Src->key() < B.Src->key(); // deterministic ties
            });
  return Rows;
}

std::string pgmp::renderProfileReport(const ProfileDatabase &Db,
                                      const ProfileLoadReport &Meta,
                                      const std::string &Name,
                                      const ProfileReportOptions &Opts,
                                      const SourceManager *SM) {
  // Sorted once here; every consumer of the table shares this ordering.
  std::vector<ProfileHotRow> Rows = profileHotRows(Db.snapshot());
  size_t Shown = std::min(Opts.TopN, Rows.size());

  char Buf[64];
  std::string Out = Name + ": v" + std::to_string(Meta.Version) + ", " +
                    std::to_string(Db.numDatasets()) + " dataset(s), " +
                    std::to_string(Db.numPoints()) + " point(s)\n";

  // An empty or all-zero profile is a well-formed report input, not an
  // error: say so plainly instead of rendering a zero-row table (or a
  // table of all-0.0000 rows) that reads like a formatting bug.
  bool HasSamples = false;
  for (const ProfileHotRow &R : Rows)
    if (R.Count > 0 || R.Weight > 0) {
      HasSamples = true;
      break;
    }
  if (!HasSamples) {
    Out += "no samples recorded; nothing to report\n";
    return Out;
  }

  Out += "hot spots (top " + std::to_string(Shown) + " of " +
         std::to_string(Rows.size()) + "):\n";
  if (!Shown)
    return Out;

  // Size the location column to its widest entry so the table stays
  // aligned without a fixed (and eventually wrong) width.
  ExcerptSource Excerpts(SM, Opts.ReadSourcesFromDisk);
  size_t LocWidth = 8; // "location"
  std::vector<std::string> Locs(Shown);
  for (size_t I = 0; I < Shown; ++I) {
    Locs[I] = Rows[I].Src->describe();
    LocWidth = std::max(LocWidth, Locs[I].size());
  }

  std::snprintf(Buf, sizeof(Buf), "%5s  %-7s %12s  ", "rank", "weight",
                "count");
  Out += Buf;
  Out += "location";
  Out += std::string(LocWidth - 8, ' ');
  if (Opts.WithExcerpts)
    Out += "  source";
  Out += "\n";

  for (size_t I = 0; I < Shown; ++I) {
    const ProfileHotRow &R = Rows[I];
    std::snprintf(Buf, sizeof(Buf), "%5zu  %.4f  %12llu  ", I + 1, R.Weight,
                  static_cast<unsigned long long>(R.Count));
    Out += Buf;
    Out += Locs[I];
    Out += std::string(LocWidth - Locs[I].size(), ' ');
    if (Opts.WithExcerpts) {
      Out += "  ";
      if (R.Src->Generated) {
        Out += "<generated>";
      } else if (const std::string *Text = Excerpts.textOf(R.Src->File)) {
        uint32_t Begin = std::min<uint32_t>(R.Src->BeginOffset,
                                            static_cast<uint32_t>(Text->size()));
        uint32_t End = std::min<uint32_t>(R.Src->EndOffset,
                                          static_cast<uint32_t>(Text->size()));
        Out += flattenExcerpt(
            std::string_view(*Text).substr(Begin, End - Begin),
            Opts.ExcerptWidth);
      } else {
        Out += "<source unavailable>";
      }
    }
    // The table is whitespace-padded; keep lines trim-right clean.
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += "\n";
  }

  if (Opts.TierHotWeight > 0) {
    // Rows are weight-sorted, so the candidates are a prefix.
    size_t NumHot = 0;
    while (NumHot < Rows.size() && Rows[NumHot].Weight >= Opts.TierHotWeight)
      ++NumHot;
    std::snprintf(Buf, sizeof(Buf), "tier candidates (weight >= %.4f): ",
                  Opts.TierHotWeight);
    Out += Buf;
    Out += std::to_string(NumHot) + " of " + std::to_string(Rows.size()) +
           " point(s)\n";
    for (size_t I = 0; I < NumHot && I < Opts.TopN; ++I) {
      std::snprintf(Buf, sizeof(Buf), "  %.4f  ", Rows[I].Weight);
      Out += Buf;
      Out += Rows[I].Src->describe();
      Out += "\n";
    }
  }
  return Out;
}

bool pgmp::renderProfileReportFile(const std::string &Path, std::string &Out,
                                   std::string &ErrorOut,
                                   const ProfileReportOptions &Opts) {
  std::string Text, Err;
  if (readFileAll(Path, Text, Err) != FileReadStatus::Ok) {
    ErrorOut = "cannot read profile file: " + Path + " (" + Err + ")";
    return false;
  }
  SourceObjectTable Sources;
  ProfileDatabase Db;
  ProfileLoadReport Report;
  // No SourceManager: the report renders whatever the file says, leaving
  // staleness analysis to `pgmpi profile-lint`.
  if (!parseProfile(Text, Sources, Db, ErrorOut, nullptr, &Report))
    return false;
  Out = renderProfileReport(Db, Report, Path, Opts, nullptr);
  return true;
}
