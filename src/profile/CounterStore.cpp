//===- profile/CounterStore.cpp -------------------------------------------===//

#include "profile/CounterStore.h"

#include <algorithm>

using namespace pgmp;

uint64_t *CounterStore::counterFor(const SourceObject *Src) {
  auto It = Index.find(Src);
  if (It != Index.end())
    return &Slots[It->second];
  size_t Slot = Slots.size();
  Slots.push_back(0);
  Order.push_back(Src);
  Index.emplace(Src, Slot);
  return &Slots[Slot];
}

uint64_t CounterStore::count(const SourceObject *Src) const {
  auto It = Index.find(Src);
  return It == Index.end() ? 0 : Slots[It->second];
}

uint64_t CounterStore::maxCount() const {
  uint64_t Max = 0;
  for (uint64_t C : Slots)
    Max = std::max(Max, C);
  return Max;
}

uint64_t CounterStore::totalIncrements() const {
  uint64_t Sum = 0;
  for (uint64_t C : Slots)
    Sum += C;
  return Sum;
}

std::vector<std::pair<const SourceObject *, uint64_t>>
CounterStore::snapshot() const {
  std::vector<std::pair<const SourceObject *, uint64_t>> Out;
  Out.reserve(Order.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Out.push_back({Order[I], Slots[I]});
  return Out;
}

void CounterStore::reset() {
  std::fill(Slots.begin(), Slots.end(), 0);
}

void CounterStore::clear() {
  Slots.clear();
  Order.clear();
  Index.clear();
}
