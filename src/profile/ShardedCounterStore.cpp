//===- profile/ShardedCounterStore.cpp ------------------------------------===//

#include "profile/ShardedCounterStore.h"

#include "support/Stats.h"

#include <algorithm>
#include <atomic>

using namespace pgmp;

namespace {

/// Process-unique store ids. Monotonic and never reused, so thread-local
/// registry entries for destroyed stores can never alias a new store.
uint64_t nextStoreId() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

/// The calling thread's shard pointers, keyed by (store id), tagged with
/// the store generation that created them. Entries for dead stores or
/// stale generations are ignored (and eventually overwritten); they are
/// never dereferenced.
struct TlsShardRef {
  uint64_t Generation = 0;
  void *Shard = nullptr;
};

thread_local std::unordered_map<uint64_t, TlsShardRef> TlsShards;

} // namespace

ShardedCounterStore::ShardedCounterStore() : StoreId(nextStoreId()) {}

ShardedCounterStore::~ShardedCounterStore() = default;

ShardedCounterStore::Shard &ShardedCounterStore::localShardLocked() {
  TlsShardRef &Ref = TlsShards[StoreId];
  if (!Ref.Shard || Ref.Generation != Generation) {
    Shards.push_back(std::make_unique<Shard>());
    Ref.Shard = Shards.back().get();
    Ref.Generation = Generation;
    if (Stats)
      Stats->bump(Stat::CounterShards);
  }
  return *static_cast<Shard *>(Ref.Shard);
}

uint64_t *ShardedCounterStore::counterFor(const SourceObject *Src) {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t Slot;
  auto It = Index.find(Src);
  if (It != Index.end()) {
    Slot = It->second;
  } else {
    Slot = Order.size();
    Order.push_back(Src);
    Index.emplace(Src, Slot);
  }
  Shard &S = localShardLocked();
  if (S.Slots.size() <= Slot)
    S.Slots.resize(Slot + 1, 0);
  return &S.Slots[Slot];
}

uint64_t ShardedCounterStore::sumSlotLocked(size_t Slot) const {
  uint64_t Sum = 0;
  for (const auto &S : Shards)
    if (Slot < S->Slots.size())
      Sum += S->Slots[Slot];
  return Sum;
}

uint64_t ShardedCounterStore::count(const SourceObject *Src) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Src);
  return It == Index.end() ? 0 : sumSlotLocked(It->second);
}

uint64_t ShardedCounterStore::maxCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Max = 0;
  for (size_t Slot = 0; Slot < Order.size(); ++Slot)
    Max = std::max(Max, sumSlotLocked(Slot));
  return Max;
}

uint64_t ShardedCounterStore::totalIncrements() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Sum = 0;
  for (const auto &S : Shards)
    for (uint64_t C : S->Slots)
      Sum += C;
  return Sum;
}

std::vector<std::pair<const SourceObject *, uint64_t>>
ShardedCounterStore::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<const SourceObject *, uint64_t>> Out;
  Out.reserve(Order.size());
  for (size_t Slot = 0; Slot < Order.size(); ++Slot)
    Out.push_back({Order[Slot], sumSlotLocked(Slot)});
  if (Stats)
    Stats->bump(Stat::ShardMerges, Shards.size());
  return Out;
}

void ShardedCounterStore::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &S : Shards)
    std::fill(S->Slots.begin(), S->Slots.end(), 0);
  ++Epoch;
}

void ShardedCounterStore::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Shards.clear();
  Order.clear();
  Index.clear();
  ++Generation; // orphan every thread's cached shard pointer
  ++Epoch;
}

size_t ShardedCounterStore::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Order.size();
}

size_t ShardedCounterStore::numShards() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Shards.size();
}

uint64_t ShardedCounterStore::epoch() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Epoch;
}
