//===- profile/ProfileBus.cpp ---------------------------------------------===//

#include "profile/ProfileBus.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pgmp;

std::string BusPointKey::describe() const {
  return File + ":" + std::to_string(Begin) + "-" + std::to_string(End);
}

ProfileBus::ProfileBus(const ProfileBusOptions &O)
    : Opts(O),
      Alpha(O.DecayHalfLife > 0 ? std::exp2(-1.0 / O.DecayHalfLife) : 0.0) {}

uint64_t ProfileBus::addPublisher() {
  std::lock_guard<std::mutex> Lock(Mu);
  LastTotals.emplace_back();
  return LastTotals.size() - 1;
}

uint64_t ProfileBus::publish(uint64_t Publisher, const TotalsRows &Totals) {
  std::lock_guard<std::mutex> Lock(Mu);
  assert(Publisher < LastTotals.size() && "publish from unregistered engine");
  std::vector<uint64_t> &Last = LastTotals[Publisher];

  // Decay first: the whole accumulator ages by one publish, then this
  // publish's deltas land at full strength. Points absent from Totals
  // (registered by other engines) decay toward zero and eventually fall
  // out of the hot set — that is the "stale hot mark" path.
  for (PointState &P : Points)
    P.Decayed *= Alpha;

  for (const auto &[Key, Total] : Totals) {
    auto [It, Inserted] = Index.try_emplace(Key, Points.size());
    if (Inserted)
      Points.push_back(PointState{Key, 0.0, 0});
    size_t Slot = It->second;
    if (Slot >= Last.size())
      Last.resize(Points.size(), 0);
    // Counters only grow between publishes; a lower total means the
    // engine folded (reset) its counters, so the whole total is new.
    uint64_t Delta = Total >= Last[Slot] ? Total - Last[Slot] : Total;
    Last[Slot] = Total;
    Points[Slot].Decayed += static_cast<double>(Delta);
    Points[Slot].Total += Delta;
  }

  ++NumPublishes;
  maybePublishEpochLocked();
  return Ver.load(std::memory_order_relaxed);
}

void ProfileBus::maybePublishEpochLocked() {
  // Current hot set: top-K slots by decayed estimate (desc), point key
  // (asc) as the deterministic tiebreak. Slots that decayed to ~nothing
  // never qualify, so an idle point cannot linger in the hot set.
  std::vector<size_t> Hot;
  Hot.reserve(Points.size());
  for (size_t I = 0; I < Points.size(); ++I)
    if (Points[I].Decayed > 1e-9)
      Hot.push_back(I);
  std::sort(Hot.begin(), Hot.end(), [&](size_t A, size_t B) {
    if (Points[A].Decayed != Points[B].Decayed)
      return Points[A].Decayed > Points[B].Decayed;
    return Points[A].Key.describe() < Points[B].Key.describe();
  });
  if (Hot.size() > Opts.HotSetK)
    Hot.resize(Opts.HotSetK);

  if (Hot.empty())
    return;

  // Churn = |symmetric difference| / max(|old|, |new|). First nonempty
  // hot set always publishes (PublishedHotSet empty → churn 1).
  std::vector<size_t> OldSorted = PublishedHotSet;
  std::vector<size_t> NewSorted = Hot;
  std::sort(OldSorted.begin(), OldSorted.end());
  std::sort(NewSorted.begin(), NewSorted.end());
  std::vector<size_t> Common;
  std::set_intersection(OldSorted.begin(), OldSorted.end(), NewSorted.begin(),
                        NewSorted.end(), std::back_inserter(Common));
  size_t Larger = std::max(OldSorted.size(), NewSorted.size());
  size_t SymDiff = OldSorted.size() + NewSorted.size() - 2 * Common.size();
  double Churn = Larger ? static_cast<double>(SymDiff) / Larger : 0.0;
  if (!PublishedHotSet.empty() && Churn < Opts.RetierThreshold)
    return;

  // Build the epoch: every live point, weight normalized by the hottest.
  double MaxDecayed = 0;
  for (const PointState &P : Points)
    MaxDecayed = std::max(MaxDecayed, P.Decayed);
  auto Epoch = std::make_shared<ProfileEpoch>();
  Epoch->Rows.reserve(Points.size());
  for (const PointState &P : Points) {
    if (P.Decayed <= 1e-9)
      continue;
    Epoch->Rows.push_back(
        ProfileEpochRow{P.Key, P.Decayed / MaxDecayed, P.Total});
  }
  std::sort(Epoch->Rows.begin(), Epoch->Rows.end(),
            [](const ProfileEpochRow &A, const ProfileEpochRow &B) {
              return A.Key.describe() < B.Key.describe();
            });

  PublishedHotSet = std::move(Hot);
  Epoch->Version = Ver.load(std::memory_order_relaxed) + 1;
  Current = std::move(Epoch);
  // Release pairs with the acquire in version(): a subscriber that sees
  // the new version will also see the epoch pointer via the mutex in
  // epoch().
  Ver.store(Current->Version, std::memory_order_release);
}

std::shared_ptr<const ProfileEpoch> ProfileBus::epoch() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Current;
}

uint64_t ProfileBus::publishes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return NumPublishes;
}

uint64_t ProfileBus::epochsPublished() const {
  return Ver.load(std::memory_order_acquire);
}

size_t ProfileBus::numPoints() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Points.size();
}
