//===- profile/ProfileIO.h - store-profile / load-profile -----*- C++ -*-===//
///
/// \file
/// Text serialization of profile databases (the files written by
/// store-profile and read by load-profile, paper Figure 4). The format is
/// a line-oriented TSV with a version header; loading *merges* into the
/// target database so several stored data sets combine by weighted
/// average, as in Figure 3.
///
/// Format v2 adds an integrity layer:
///   - `source <file> <fnv1a64>` records fingerprint the content of each
///     profiled source buffer at store time; at load time they are checked
///     against the SourceManager so a profile collected on older code is
///     detected as *stale* rather than silently consumed (the Section 4.3
///     invalidation hazard, surfaced explicitly).
///   - a `crc <crc32>` footer over everything above it detects torn and
///     bit-flipped files.
/// v1 files (no footer, no fingerprints) still load, with a warning.
///
/// Parsing is all-or-nothing: a malformed, corrupt, or stale file merges
/// nothing into the target database.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_PROFILE_PROFILEIO_H
#define PGMP_PROFILE_PROFILEIO_H

#include "profile/ProfileDatabase.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pgmp {

class SourceManager;

/// Why a profile failed to load (or Ok). Corrupt means the checksum layer
/// fired (torn/bit-flipped file); Malformed means the record layer fired
/// (bad syntax or invalid values); Stale means a source fingerprint no
/// longer matches the code the engine is compiling.
enum class ProfileLoadStatus : uint8_t {
  Ok,
  CannotOpen,
  ReadError,
  Malformed,
  Corrupt,
  Stale,
};

/// Structured findings from one parse/load, for diagnostics and
/// `pgmpi profile-lint`.
struct ProfileLoadReport {
  ProfileLoadStatus Status = ProfileLoadStatus::Ok;
  int Version = 0;
  bool ChecksumChecked = false; ///< v2 footer present and verified
  size_t NumPoints = 0;
  uint64_t NumDatasets = 0;
  /// `source` fingerprint records, as stored (file, fnv1a64).
  std::vector<std::pair<std::string, uint64_t>> Fingerprints;
  /// Files whose fingerprint mismatched the SourceManager's contents.
  std::vector<std::string> StaleFiles;
  /// Non-fatal findings (e.g. legacy v1 format).
  std::vector<std::string> Warnings;
};

/// Serializes \p Db in format v2; returns the file text. When \p SM is
/// given, content fingerprints are recorded for every profiled file with
/// a registered buffer (ephemeral `<...>` buffers are skipped).
std::string serializeProfile(const ProfileDatabase &Db,
                             const SourceManager *SM = nullptr);

/// Atomically writes \p Db to \p Path (temp file + fsync + rename); a
/// failure never leaves a torn profile at \p Path. Returns false on I/O
/// failure, with \p ErrorOut (when given) describing it.
bool storeProfileFile(const ProfileDatabase &Db, const std::string &Path,
                      const SourceManager *SM = nullptr,
                      std::string *ErrorOut = nullptr);

/// Parses \p Text and merges into \p Db, interning points in \p Sources.
/// Returns false (with \p ErrorOut set) on malformed/corrupt/stale input,
/// in which case \p Db is untouched. When \p SM is given, v2 source
/// fingerprints are checked against its buffers (staleness detection).
/// \p Report (optional) receives structured findings either way.
bool parseProfile(const std::string &Text, SourceObjectTable &Sources,
                  ProfileDatabase &Db, std::string &ErrorOut,
                  const SourceManager *SM = nullptr,
                  ProfileLoadReport *Report = nullptr);

/// Reads \p Path and merges into \p Db. Returns false on failure; see
/// parseProfile for the integrity semantics.
bool loadProfileFile(const std::string &Path, SourceObjectTable &Sources,
                     ProfileDatabase &Db, std::string &ErrorOut,
                     const SourceManager *SM = nullptr,
                     ProfileLoadReport *Report = nullptr);

} // namespace pgmp

#endif // PGMP_PROFILE_PROFILEIO_H
