//===- profile/ProfileIO.h - store-profile / load-profile -----*- C++ -*-===//
///
/// \file
/// Text serialization of profile databases (the files written by
/// store-profile and read by load-profile, paper Figure 4). The format is
/// a line-oriented TSV with a version header; loading *merges* into the
/// target database so several stored data sets combine by weighted
/// average, as in Figure 3.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_PROFILE_PROFILEIO_H
#define PGMP_PROFILE_PROFILEIO_H

#include "profile/ProfileDatabase.h"

#include <string>

namespace pgmp {

/// Serializes \p Db; returns the file text.
std::string serializeProfile(const ProfileDatabase &Db);

/// Writes \p Db to \p Path. Returns false on I/O failure.
bool storeProfileFile(const ProfileDatabase &Db, const std::string &Path);

/// Parses \p Text and merges into \p Db, interning points in \p Sources.
/// Returns false (with \p ErrorOut set) on malformed input.
bool parseProfile(const std::string &Text, SourceObjectTable &Sources,
                  ProfileDatabase &Db, std::string &ErrorOut);

/// Reads \p Path and merges into \p Db. Returns false on failure.
bool loadProfileFile(const std::string &Path, SourceObjectTable &Sources,
                     ProfileDatabase &Db, std::string &ErrorOut);

} // namespace pgmp

#endif // PGMP_PROFILE_PROFILEIO_H
