//===- profile/ProfileSnapshot.h - Unified profile queries ----*- C++ -*-===//
///
/// \file
/// The one profile read path. Historically profile data was queried three
/// ways (a collapsing query, an optional-returning query, and an
/// offset-based weight lookup) with subtly different semantics; those
/// shims are gone. A ProfileSnapshot is the one immutable view:
///
///   ProfileSnapshot S = E.snapshot();          // or Ctx.ProfileDb.snapshot()
///   S.weight(pt);     // [0,1]; 0.0 when unknown or no data (profile-query)
///   S.weightOpt(pt);  // nullopt when no data / unknown point (profile-query*)
///   S.count(pt);      // raw total hit count; 0 when unknown
///
/// A snapshot is a point-in-time copy: queries against it are stable even
/// while the underlying database keeps merging data sets, and — because
/// the backing data is immutable and shared — snapshots are cheap to
/// copy, safe to hand to other threads, and O(1) to take when the
/// database has not changed since the last one (the database caches the
/// backing data per version).
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_PROFILE_PROFILESNAPSHOT_H
#define PGMP_PROFILE_PROFILESNAPSHOT_H

#include "profile/SourceObject.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

namespace pgmp {

/// Per-point persisted profile state: the running sum of per-dataset
/// weights (Figure 3's merge state) plus the raw hit total.
struct ProfileEntry {
  double WeightSum = 0; ///< sum of per-dataset weights
  uint64_t TotalCount = 0;
};

/// The immutable backing data of one snapshot.
struct ProfileSnapshotData {
  std::unordered_map<const SourceObject *, ProfileEntry> Entries;
  uint64_t NumDatasets = 0;
};

/// An immutable, shareable view of profile data at one point in time.
/// Default-constructed snapshots behave like an empty database.
class ProfileSnapshot {
public:
  ProfileSnapshot() = default;
  explicit ProfileSnapshot(std::shared_ptr<const ProfileSnapshotData> Data)
      : Data(std::move(Data)) {}

  /// Weight of \p Pt averaged over all data sets, collapsing "no profile
  /// data" and "point never seen" to 0.0 — the profile-query semantics,
  /// where meta-programs treat unknown as cold.
  double weight(const SourceObject *Pt) const {
    return weightOpt(Pt).value_or(0.0);
  }

  /// Weight of \p Pt, or nullopt when no profile data is loaded or \p Pt
  /// is null — the profile-query* semantics. A present 0.0 means "data is
  /// loaded and this point was never hit".
  std::optional<double> weightOpt(const SourceObject *Pt) const {
    if (!Data || Data->NumDatasets == 0 || !Pt)
      return std::nullopt;
    auto It = Data->Entries.find(Pt);
    if (It == Data->Entries.end())
      return 0.0;
    return It->second.WeightSum / static_cast<double>(Data->NumDatasets);
  }

  /// Raw total hit count of \p Pt across all data sets; 0 when unknown.
  uint64_t count(const SourceObject *Pt) const {
    if (!Data || !Pt)
      return 0;
    auto It = Data->Entries.find(Pt);
    return It == Data->Entries.end() ? 0 : It->second.TotalCount;
  }

  /// True once at least one data set is present.
  bool hasData() const { return Data && Data->NumDatasets > 0; }

  uint64_t datasets() const { return Data ? Data->NumDatasets : 0; }
  size_t points() const { return Data ? Data->Entries.size() : 0; }

  /// Raw per-point state, for reports and serialization-adjacent code.
  /// Empty map when the snapshot has no data.
  const std::unordered_map<const SourceObject *, ProfileEntry> &
  entries() const {
    static const std::unordered_map<const SourceObject *, ProfileEntry> Empty;
    return Data ? Data->Entries : Empty;
  }

private:
  std::shared_ptr<const ProfileSnapshotData> Data;
};

} // namespace pgmp

#endif // PGMP_PROFILE_PROFILESNAPSHOT_H
