//===- profile/SourceObject.h - Profile points ----------------*- C++ -*-===//
///
/// \file
/// Source objects are the *profile points* of the paper (Section 3.1):
/// each uniquely identifies one profile counter. Following the Chez Scheme
/// implementation (Section 4.1), a source object is a file name plus
/// starting and ending character positions; the reader attaches one to
/// every syntax object it reads, and meta-programs can manufacture fresh
/// ones deterministically (make-profile-point) by suffixing the file name
/// of a base source object.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_PROFILE_SOURCEOBJECT_H
#define PGMP_PROFILE_SOURCEOBJECT_H

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

namespace pgmp {

/// One profile point. Identity is (File, BeginOffset, EndOffset); the
/// table below interns them so pointer equality is identity.
struct SourceObject {
  std::string File;
  uint32_t BeginOffset = 0;
  uint32_t EndOffset = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  /// True for points manufactured by make-profile-point.
  bool Generated = false;

  /// Renders "file:line:col" (diagnostics) .
  std::string describe() const;
  /// Stable identity string used as the profile-file key.
  std::string key() const;
};

/// Interns source objects so each (file, begin, end) triple has exactly
/// one address for the lifetime of the engine.
class SourceObjectTable {
public:
  const SourceObject *intern(const std::string &File, uint32_t Begin,
                             uint32_t End, uint32_t Line, uint32_t Column,
                             bool Generated = false);

  /// make-profile-point: a fresh point derived from \p BaseFile. The
  /// sequence number is per base file and increments deterministically, so
  /// a deterministic expansion produces the same points across the
  /// profiled run and the optimizing run (paper, Figure 4).
  const SourceObject *makeGeneratedPoint(const std::string &BaseFile);

  uint64_t numPoints() const { return All.size(); }

private:
  std::deque<SourceObject> All;
  std::unordered_map<std::string, const SourceObject *> ByKey;
  std::unordered_map<std::string, uint32_t> NextGeneratedSeq;
};

} // namespace pgmp

#endif // PGMP_PROFILE_SOURCEOBJECT_H
