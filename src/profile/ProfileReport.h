//===- profile/ProfileReport.h - Hot-spot reports -------------*- C++ -*-===//
///
/// \file
/// Renders a stored source profile as a human-readable hot-spot report:
/// the top-N profile points by weight, with counts, locations, and a
/// source excerpt when the profiled text is available (from a
/// SourceManager or from the file on disk). Backs `pgmpi report` and is a
/// library entry point so embedders and tests can render the same table
/// deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_PROFILE_PROFILEREPORT_H
#define PGMP_PROFILE_PROFILEREPORT_H

#include "profile/ProfileIO.h"
#include "profile/ProfileSnapshot.h"

#include <string>
#include <vector>

namespace pgmp {

class SourceManager;

/// One report row: a profile point with its averaged weight and raw
/// count.
struct ProfileHotRow {
  const SourceObject *Src = nullptr;
  double Weight = 0;
  uint64_t Count = 0;
};

/// The canonical hot-spot ordering, computed once per report: rows sorted
/// by weight, then count, then point key (fully deterministic, so two
/// interleavings of the same workload render identical tables). Shared by
/// `pgmpi report` and the Scheme-level (profile-dump).
std::vector<ProfileHotRow> profileHotRows(const ProfileSnapshot &S);

struct ProfileReportOptions {
  /// Number of points to list, weightiest first.
  size_t TopN = 20;
  /// Attach a source excerpt per point when the text can be found.
  bool WithExcerpts = true;
  /// Allow reading profiled files from disk for excerpts (golden tests
  /// turn this off and supply a SourceManager instead).
  bool ReadSourcesFromDisk = true;
  /// Maximum excerpt width before truncation with "...".
  size_t ExcerptWidth = 40;
  /// When positive, append a tier-candidate section: the points whose
  /// weight reaches this threshold — i.e. the closures an engine running
  /// with TierMode::Auto and the same TierHotWeight would pre-tier.
  double TierHotWeight = 0;
};

/// Renders the report for an already-parsed database. \p Meta carries the
/// version/dataset metadata from the parse; \p Name labels the profile in
/// the header. Excerpts come from \p SM first, then (when allowed) disk.
std::string renderProfileReport(const ProfileDatabase &Db,
                                const ProfileLoadReport &Meta,
                                const std::string &Name,
                                const ProfileReportOptions &Opts = {},
                                const SourceManager *SM = nullptr);

/// Reads and parses the profile at \p Path, then renders its report into
/// \p Out. Returns false with \p ErrorOut set when the file is missing,
/// corrupt, or malformed (integrity failures are lint's job to explain in
/// detail; the report only needs a loadable profile).
bool renderProfileReportFile(const std::string &Path, std::string &Out,
                             std::string &ErrorOut,
                             const ProfileReportOptions &Opts = {});

} // namespace pgmp

#endif // PGMP_PROFILE_PROFILEREPORT_H
