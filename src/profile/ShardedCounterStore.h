//===- profile/ShardedCounterStore.h - Parallel counters ------*- C++ -*-===//
///
/// \file
/// The multi-threaded sibling of CounterStore: one counter *page* (shard)
/// per incrementing thread, so the per-hit cost stays a single memory
/// increment on thread-private memory — no atomics, no false sharing, no
/// lock on the hot path. The paper's profiling model (one counter bump
/// per hit, Section 4.1) survives parallel workloads unchanged.
///
/// ## Contract
///
/// - `counterFor(Src)` keeps the CounterStore contract: it returns a
///   pointer that stays valid until clear(), and instrumented code bumps
///   it with a plain `++*p`. The pointer refers to the *calling thread's*
///   shard slot for `Src`; each thread that compiles instrumented code
///   gets its own page. Registration (the cold path, compile time only)
///   takes a mutex; increments (the hot path) are lock-free.
///
/// - Aggregation (`count`, `maxCount`, `totalIncrements`, `snapshot`)
///   sums the slot across all shards. It is *epoch-based*: aggregate only
///   at a quiescent point, i.e. after every incrementing thread has been
///   joined with (or otherwise synchronized against) the aggregating
///   thread. EnginePool joins its workers before merging, which is what
///   makes the whole scheme ThreadSanitizer-clean without per-increment
///   atomics. `reset()` ends the current epoch: counters drop to zero,
///   registrations and previously returned pointers stay valid.
///
/// - `snapshot()` returns (point, summed count) pairs in registration
///   order, exactly like CounterStore, so ProfileDatabase::addDataset
///   produces bit-identical weights whether the counts were collected on
///   one thread or sixteen.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_PROFILE_SHARDEDCOUNTERSTORE_H
#define PGMP_PROFILE_SHARDEDCOUNTERSTORE_H

#include "profile/SourceObject.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace pgmp {

class StatsRegistry;

/// Per-thread sharded counters for one profiled (possibly parallel)
/// execution. See the file comment for the threading contract.
class ShardedCounterStore {
public:
  ShardedCounterStore();
  ~ShardedCounterStore();
  ShardedCounterStore(const ShardedCounterStore &) = delete;
  ShardedCounterStore &operator=(const ShardedCounterStore &) = delete;

  /// Returns a stable pointer to the *calling thread's* counter slot for
  /// \p Src, creating the registration and/or this thread's shard on
  /// first use. Safe to call from any thread.
  uint64_t *counterFor(const SourceObject *Src);

  /// Count for \p Src summed over all shards, or 0 if never instrumented.
  /// Requires quiescence (see file comment).
  uint64_t count(const SourceObject *Src) const;

  /// Largest aggregated counter value (0 when empty) — the weight
  /// denominator. Requires quiescence.
  uint64_t maxCount() const;

  /// Sum of all counter values across all shards — the total number of
  /// instrumented-code counter bumps this epoch. Requires quiescence.
  uint64_t totalIncrements() const;

  /// All (point, summed count) pairs, in registration order. Requires
  /// quiescence.
  std::vector<std::pair<const SourceObject *, uint64_t>> snapshot() const;

  /// Ends the current epoch: zeroes every slot in every shard. Keeps
  /// registrations, shards, and previously returned pointers valid.
  void reset();

  /// Drops all registrations and shards. Invalidates every pointer
  /// counterFor ever returned; only safe when no instrumented code that
  /// holds them can run again.
  void clear();

  size_t size() const;      ///< number of registered profile points
  size_t numShards() const; ///< shards (incrementing threads) this epoch
  uint64_t epoch() const;   ///< epochs ended so far (reset() count)

  /// Optional self-metrics sink: shard creations and shard-merge
  /// operations are bumped on \p S (Stat::CounterShards / ShardMerges).
  void setStats(StatsRegistry *S) { Stats = S; }

private:
  /// One thread's counter page. A deque grows without moving existing
  /// slots, which is what keeps counterFor's pointers stable.
  struct Shard {
    std::deque<uint64_t> Slots;
  };

  /// Returns the calling thread's shard, creating and registering it on
  /// first use. Caller holds Mu.
  Shard &localShardLocked();

  /// Aggregated value of slot \p Slot across all shards. Caller holds Mu.
  uint64_t sumSlotLocked(size_t Slot) const;

  mutable std::mutex Mu;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::vector<const SourceObject *> Order;
  std::unordered_map<const SourceObject *, size_t> Index;
  uint64_t Epoch = 0;
  /// Distinguishes this store (and its lifetime generation) in the
  /// per-thread shard registry; never reused, so a dead store's stale
  /// thread-local entries can never resolve to a live store's shards.
  const uint64_t StoreId;
  uint64_t Generation = 0; ///< bumped by clear() to orphan old shards
  StatsRegistry *Stats = nullptr;
};

} // namespace pgmp

#endif // PGMP_PROFILE_SHARDEDCOUNTERSTORE_H
