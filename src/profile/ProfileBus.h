//===- profile/ProfileBus.h - Continuous profile aggregation --*- C++ -*-===//
///
/// \file
/// The hub of the continuous profiling service: running engines
/// periodically *publish* their sharded-counter totals to a ProfileBus,
/// which maintains a windowed, exponentially-decaying view of where the
/// hits are landing *right now* and republishes it as a monotonically
/// versioned **epoch** whenever the hot set shifts enough to matter.
/// Subscribing engines poll the (atomic) version at their ExecGuard poll
/// point and re-evaluate tier decisions mid-run — the ROADMAP's
/// "continuous profiling service with online re-tiering".
///
/// ## Model
///
/// - A *publisher* is one engine (one counter store). Publishes carry
///   cumulative totals in counter-registration order; the bus differences
///   consecutive publishes internally, so publishing never perturbs the
///   live counters and the end-of-run fold stays byte-identical to a run
///   with the bus off.
/// - The decayed estimate of point p after a publish is
///       decayed[p] = decayed[p] * alpha + delta[p],
///   with alpha = 2^(-1 / DecayHalfLife): a point's contribution halves
///   after DecayHalfLife further publishes reach the bus. The window is
///   therefore measured in *publishes*, which keeps the math independent
///   of wall clock and deterministic under test.
/// - The *hot set* is the top-K points by decayed estimate (K =
///   HotSetK, ties broken by point key). When the symmetric difference
///   between the current hot set and the one last published, divided by
///   the larger of the two sizes, reaches RetierThreshold, the bus builds
///   a new ProfileEpoch — every point with a live decayed estimate, with
///   weight = decayed / max-decayed — and bumps the version.
///
/// ## Threading
///
/// publish() and epoch() take one internal mutex; version() is a relaxed
/// atomic read so the subscriber fast path ("anything new?") costs one
/// load. Epochs are immutable shared_ptr payloads: a subscriber can hold
/// one while the bus publishes the next — publish-during-query never
/// tears. The happens-before edge for the epoch contents is the mutex in
/// epoch(); the version counter is published with release/acquire so a
/// reader that observes version N and then calls epoch() sees rows at
/// least as new as N.
///
/// Points cross the bus by *value* (BusPointKey mirrors SourceObject
/// identity) because each engine interns its own SourceObjects;
/// subscribers re-intern into their own tables, exactly like the
/// EnginePool merge.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_PROFILE_PROFILEBUS_H
#define PGMP_PROFILE_PROFILEBUS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pgmp {

/// Engine-independent identity of one profile point (the fields of a
/// SourceObject, by value). Hashable so the bus can intern slots.
struct BusPointKey {
  std::string File;
  uint32_t Begin = 0;
  uint32_t End = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  bool Generated = false;

  bool operator==(const BusPointKey &O) const {
    return Begin == O.Begin && End == O.End && File == O.File;
  }
  /// "file:begin-end", the same shape as SourceObject::key().
  std::string describe() const;
};

struct BusPointKeyHash {
  size_t operator()(const BusPointKey &K) const {
    size_t H = std::hash<std::string>()(K.File);
    H ^= (static_cast<size_t>(K.Begin) * 0x9E3779B97F4A7C15ull) ^
         (static_cast<size_t>(K.End) << 17);
    return H;
  }
};

/// One row of a published epoch: a point, its decayed weight in [0,1]
/// (normalized by the epoch's hottest point), and its raw cumulative
/// count across all publishers.
struct ProfileEpochRow {
  BusPointKey Key;
  double Weight = 0;
  uint64_t Count = 0;
};

/// An immutable published profile epoch. Rows are sorted by point key so
/// two identical aggregation states render identical epochs.
struct ProfileEpoch {
  uint64_t Version = 0;
  std::vector<ProfileEpochRow> Rows;
};

struct ProfileBusOptions {
  /// Publishes after which a point's decayed contribution halves.
  double DecayHalfLife = 8.0;
  /// Hot-set churn fraction (symmetric difference / larger set) at or
  /// above which a new epoch is published.
  double RetierThreshold = 0.25;
  /// Size of the tracked hot set.
  size_t HotSetK = 16;
};

/// In-process aggregator for continuous profiling. See file comment.
class ProfileBus {
public:
  /// Cumulative (point, total) rows, as produced by translating a
  /// ShardedCounterStore snapshot.
  using TotalsRows = std::vector<std::pair<BusPointKey, uint64_t>>;

  explicit ProfileBus(const ProfileBusOptions &Opts = {});

  /// Registers one publishing engine; returns its publisher id.
  uint64_t addPublisher();

  /// Publishes \p Totals (cumulative counts) for \p Publisher. Totals
  /// lower than the previous publish are treated as a counter reset (the
  /// engine folded its counters) and re-based. Returns the bus version
  /// after aggregation — possibly freshly bumped.
  uint64_t publish(uint64_t Publisher, const TotalsRows &Totals);

  /// Current epoch version; 0 until the first epoch is published.
  /// Subscribers poll this (one atomic load) before fetching the epoch.
  uint64_t version() const { return Ver.load(std::memory_order_acquire); }

  /// The current epoch, or nullptr before the first publication. The
  /// returned payload is immutable and safe to hold across publishes.
  std::shared_ptr<const ProfileEpoch> epoch() const;

  //===--------------------------------------------------------------------===//
  // Observability
  //===--------------------------------------------------------------------===//

  uint64_t publishes() const;       ///< publish() calls aggregated
  uint64_t epochsPublished() const; ///< versions ever bumped (== version())
  size_t numPoints() const;         ///< distinct points ever seen

private:
  /// Aggregation state of one point.
  struct PointState {
    BusPointKey Key;
    double Decayed = 0;
    uint64_t Total = 0;
  };

  /// Recomputes the hot set and publishes a new epoch when it churned
  /// past the threshold. Caller holds Mu.
  void maybePublishEpochLocked();

  const ProfileBusOptions Opts;
  const double Alpha; ///< per-publish decay factor 2^(-1/DecayHalfLife)

  mutable std::mutex Mu;
  std::vector<PointState> Points;
  std::unordered_map<BusPointKey, size_t, BusPointKeyHash> Index;
  /// Per publisher: last seen cumulative total per point slot.
  std::vector<std::vector<uint64_t>> LastTotals;
  /// Point slots of the hot set in the last published epoch.
  std::vector<size_t> PublishedHotSet;
  std::shared_ptr<const ProfileEpoch> Current;
  uint64_t NumPublishes = 0;

  std::atomic<uint64_t> Ver{0};
};

} // namespace pgmp

#endif // PGMP_PROFILE_PROFILEBUS_H
