//===- profile/CounterStore.h - Execution counters ------------*- C++ -*-===//
///
/// \file
/// One 64-bit counter per profile point for the current instrumented run.
/// Instrumented code increments through a stable pointer, so the per-hit
/// cost is a single memory increment (the precise counter-based profiling
/// model of Chez Scheme, paper Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_PROFILE_COUNTERSTORE_H
#define PGMP_PROFILE_COUNTERSTORE_H

#include "profile/SourceObject.h"

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace pgmp {

/// Holds the live counters of one profiled execution.
class CounterStore {
public:
  /// Returns a stable pointer to the counter for \p Src, creating it at
  /// zero on first use.
  uint64_t *counterFor(const SourceObject *Src);

  /// Count for \p Src, or 0 if never instrumented.
  uint64_t count(const SourceObject *Src) const;

  /// Largest counter value (0 when empty) — the weight denominator.
  uint64_t maxCount() const;

  /// Sum of all counter values — the total number of instrumented-code
  /// counter bumps since the last reset (a profiler self-metric).
  uint64_t totalIncrements() const;

  /// All (point, count) pairs, in creation order.
  std::vector<std::pair<const SourceObject *, uint64_t>> snapshot() const;

  void reset();      ///< zero every counter, keep registrations
  void clear();      ///< drop all registrations
  size_t size() const { return Slots.size(); }

private:
  std::deque<uint64_t> Slots;
  std::vector<const SourceObject *> Order;
  std::unordered_map<const SourceObject *, size_t> Index;
};

} // namespace pgmp

#endif // PGMP_PROFILE_COUNTERSTORE_H
