//===- profile/ProfileDatabase.h - Profile weights ------------*- C++ -*-===//
///
/// \file
/// The paper's (current-profile-information): a map from profile points
/// to *profile weights* (Section 3.2). A weight is count / max-count
/// within one data set, in [0,1]; multiple data sets merge by averaging
/// the weights (Figure 3). The database therefore stores, per point, the
/// running weight sum plus the number of data sets merged so far.
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_PROFILE_PROFILEDATABASE_H
#define PGMP_PROFILE_PROFILEDATABASE_H

#include "profile/CounterStore.h"
#include "profile/SourceObject.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace pgmp {

/// Accumulated profile information across one or more data sets.
class ProfileDatabase {
public:
  /// Folds one instrumented run into the database as a new data set.
  /// Weights are counts normalized by the run's hottest point; a data set
  /// whose counters are all zero is ignored.
  void addDataset(const CounterStore &Counters);

  /// Weight of \p Src averaged over all data sets. Points never seen get
  /// weight 0 when any data is loaded; nullopt when the database is empty.
  std::optional<double> weight(const SourceObject *Src) const;

  /// True once at least one data set is present.
  bool hasData() const { return NumDatasets > 0; }

  uint64_t numDatasets() const { return NumDatasets; }
  size_t numPoints() const { return Entries.size(); }
  void clear();

  /// Per-point persisted state.
  struct Entry {
    double WeightSum = 0; ///< sum of per-dataset weights
    uint64_t TotalCount = 0;
  };

  /// Direct merge used by load-profile: folds previously stored state in,
  /// preserving associativity of merges.
  void mergeEntry(const SourceObject *Src, const Entry &E);
  void mergeDatasetCount(uint64_t N) { NumDatasets += N; }

  const std::unordered_map<const SourceObject *, Entry> &entries() const {
    return Entries;
  }

private:
  std::unordered_map<const SourceObject *, Entry> Entries;
  uint64_t NumDatasets = 0;
};

} // namespace pgmp

#endif // PGMP_PROFILE_PROFILEDATABASE_H
