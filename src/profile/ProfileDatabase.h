//===- profile/ProfileDatabase.h - Profile weights ------------*- C++ -*-===//
///
/// \file
/// The paper's (current-profile-information): a map from profile points
/// to *profile weights* (Section 3.2). A weight is count / max-count
/// within one data set, in [0,1]; multiple data sets merge by averaging
/// the weights (Figure 3). The database therefore stores, per point, the
/// running weight sum plus the number of data sets merged so far.
///
/// Reads go through ProfileSnapshot (snapshot()), an immutable shareable
/// view that is safe to query from any thread; snapshots are cached per
/// database version, so taking one is O(1) until the next mutation.
/// Mutations (addDataset / mergeEntry / clear) are synchronized against
/// snapshot() but not against each other — one writer at a time, which is
/// how the engine uses it (EnginePool merges worker data sets from the
/// coordinating thread, in worker order, so the Figure-3 weighted-average
/// merge stays bit-identical to a sequential run).
///
//===----------------------------------------------------------------------===//

#ifndef PGMP_PROFILE_PROFILEDATABASE_H
#define PGMP_PROFILE_PROFILEDATABASE_H

#include "profile/CounterStore.h"
#include "profile/ProfileSnapshot.h"
#include "profile/SourceObject.h"

#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace pgmp {

class ShardedCounterStore;

/// Accumulated profile information across one or more data sets.
class ProfileDatabase {
public:
  /// One run's counters, already aggregated: (point, count) rows. The
  /// common currency between CounterStore, ShardedCounterStore, and the
  /// EnginePool merge (which re-interns rows into the target engine's
  /// point table before folding).
  using CounterRows = std::vector<std::pair<const SourceObject *, uint64_t>>;

  ProfileDatabase() = default;
  ProfileDatabase(const ProfileDatabase &Other);
  ProfileDatabase &operator=(const ProfileDatabase &Other);

  /// Folds one run's (point, count) rows into the database as a new data
  /// set. Weights are counts normalized by the run's hottest point; a
  /// data set whose counters are all zero is ignored.
  void addDataset(const CounterRows &Rows);

  /// Convenience overloads folding a live counter store's snapshot.
  void addDataset(const CounterStore &Counters);
  void addDataset(const ShardedCounterStore &Counters);

  /// An immutable view of the current state; see ProfileSnapshot. Cached:
  /// repeated calls between mutations share one backing copy.
  ProfileSnapshot snapshot() const;

  /// Weight of \p Src averaged over all data sets. Points never seen get
  /// weight 0 when any data is loaded; nullopt when the database is empty.
  /// (Equivalent to snapshot().weightOpt(Src) without the copy.)
  std::optional<double> weight(const SourceObject *Src) const;

  /// True once at least one data set is present.
  bool hasData() const { return NumDatasets > 0; }

  uint64_t numDatasets() const { return NumDatasets; }
  size_t numPoints() const { return Entries.size(); }
  void clear();

  /// Per-point persisted state (see ProfileSnapshot.h; the alias keeps
  /// the long-standing ProfileDatabase::Entry spelling working).
  using Entry = ProfileEntry;

  /// Direct merge used by load-profile: folds previously stored state in,
  /// preserving associativity of merges.
  void mergeEntry(const SourceObject *Src, const Entry &E);
  void mergeDatasetCount(uint64_t N) {
    NumDatasets += N;
    ++Version;
  }

  const std::unordered_map<const SourceObject *, Entry> &entries() const {
    return Entries;
  }

private:
  std::unordered_map<const SourceObject *, Entry> Entries;
  uint64_t NumDatasets = 0;

  /// Snapshot cache: rebuilt lazily when Version has moved past
  /// CacheVersion. Guarded by SnapMu so concurrent readers can take
  /// snapshots while agreeing on one shared backing copy.
  uint64_t Version = 1;
  mutable std::mutex SnapMu;
  mutable std::shared_ptr<const ProfileSnapshotData> Cache;
  mutable uint64_t CacheVersion = 0;
};

} // namespace pgmp

#endif // PGMP_PROFILE_PROFILEDATABASE_H
