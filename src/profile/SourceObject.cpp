//===- profile/SourceObject.cpp -------------------------------------------===//

#include "profile/SourceObject.h"

using namespace pgmp;

std::string SourceObject::describe() const {
  return File + ":" + std::to_string(Line) + ":" + std::to_string(Column);
}

std::string SourceObject::key() const {
  return File + "\x01" + std::to_string(BeginOffset) + "\x01" +
         std::to_string(EndOffset);
}

const SourceObject *SourceObjectTable::intern(const std::string &File,
                                              uint32_t Begin, uint32_t End,
                                              uint32_t Line, uint32_t Column,
                                              bool Generated) {
  SourceObject Probe{File, Begin, End, Line, Column, Generated};
  std::string Key = Probe.key();
  auto It = ByKey.find(Key);
  if (It != ByKey.end())
    return It->second;
  All.push_back(std::move(Probe));
  const SourceObject *Interned = &All.back();
  ByKey.emplace(std::move(Key), Interned);
  return Interned;
}

const SourceObject *
SourceObjectTable::makeGeneratedPoint(const std::string &BaseFile) {
  uint32_t Seq = NextGeneratedSeq[BaseFile]++;
  // Chez-style: suffix the base file name; offsets make the key unique and
  // deterministic, and they keep distinct points distinct even if a caller
  // reuses the same suffixed name.
  std::string File = BaseFile + "%pgmp" + std::to_string(Seq);
  return intern(File, Seq, Seq + 1, /*Line=*/1, /*Column=*/1,
                /*Generated=*/true);
}
