//===- profile/ProfileIO.cpp ----------------------------------------------===//

#include "profile/ProfileIO.h"

#include "support/Text.h"

#include <algorithm>
#include <cstdio>

using namespace pgmp;

static const char *const Magic = "pgmp-profile\t1";

std::string pgmp::serializeProfile(const ProfileDatabase &Db) {
  std::string Out;
  Out += Magic;
  Out += "\n";
  Out += "datasets\t" + std::to_string(Db.numDatasets()) + "\n";

  // Sort for deterministic output (unordered_map iteration order is not).
  std::vector<std::pair<const SourceObject *, ProfileDatabase::Entry>> Rows(
      Db.entries().begin(), Db.entries().end());
  std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    if (A.first->File != B.first->File)
      return A.first->File < B.first->File;
    if (A.first->BeginOffset != B.first->BeginOffset)
      return A.first->BeginOffset < B.first->BeginOffset;
    return A.first->EndOffset < B.first->EndOffset;
  });

  char Buf[64];
  for (const auto &[Src, E] : Rows) {
    Out += "point\t";
    Out += Src->File;
    Out += "\t" + std::to_string(Src->BeginOffset);
    Out += "\t" + std::to_string(Src->EndOffset);
    Out += "\t" + std::to_string(Src->Line);
    Out += "\t" + std::to_string(Src->Column);
    Out += Src->Generated ? "\tg" : "\t-";
    std::snprintf(Buf, sizeof(Buf), "%.17g", E.WeightSum);
    Out += "\t";
    Out += Buf;
    Out += "\t" + std::to_string(E.TotalCount);
    Out += "\n";
  }
  return Out;
}

bool pgmp::storeProfileFile(const ProfileDatabase &Db,
                            const std::string &Path) {
  std::string Text = serializeProfile(Db);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}

bool pgmp::parseProfile(const std::string &Text, SourceObjectTable &Sources,
                        ProfileDatabase &Db, std::string &ErrorOut) {
  auto Lines = splitChar(Text, '\n');
  if (Lines.empty() || Lines[0] != Magic) {
    ErrorOut = "bad profile file header";
    return false;
  }
  bool SawDatasets = false;
  for (size_t I = 1; I < Lines.size(); ++I) {
    std::string_view Line = Lines[I];
    if (Line.empty())
      continue;
    auto Fields = splitChar(Line, '\t');
    if (Fields[0] == "datasets") {
      int64_t N;
      if (Fields.size() != 2 || !parseInt64(Fields[1], N) || N < 0) {
        ErrorOut = "bad datasets line " + std::to_string(I + 1);
        return false;
      }
      Db.mergeDatasetCount(static_cast<uint64_t>(N));
      SawDatasets = true;
      continue;
    }
    if (Fields[0] == "point") {
      int64_t Begin, End, Line2, Col, Count;
      double WeightSum;
      if (Fields.size() != 9 || !parseInt64(Fields[2], Begin) ||
          !parseInt64(Fields[3], End) || !parseInt64(Fields[4], Line2) ||
          !parseInt64(Fields[5], Col) || !parseDouble(Fields[7], WeightSum) ||
          !parseInt64(Fields[8], Count)) {
        ErrorOut = "bad point line " + std::to_string(I + 1);
        return false;
      }
      const SourceObject *Src = Sources.intern(
          std::string(Fields[1]), static_cast<uint32_t>(Begin),
          static_cast<uint32_t>(End), static_cast<uint32_t>(Line2),
          static_cast<uint32_t>(Col), Fields[6] == "g");
      Db.mergeEntry(Src, ProfileDatabase::Entry{
                             WeightSum, static_cast<uint64_t>(Count)});
      continue;
    }
    ErrorOut = "unknown record '" + std::string(Fields[0]) + "' on line " +
               std::to_string(I + 1);
    return false;
  }
  if (!SawDatasets) {
    ErrorOut = "profile file missing datasets record";
    return false;
  }
  return true;
}

bool pgmp::loadProfileFile(const std::string &Path, SourceObjectTable &Sources,
                           ProfileDatabase &Db, std::string &ErrorOut) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    ErrorOut = "cannot open profile file: " + Path;
    return false;
  }
  std::string Text;
  char Chunk[4096];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Text.append(Chunk, N);
  std::fclose(F);
  return parseProfile(Text, Sources, Db, ErrorOut);
}
