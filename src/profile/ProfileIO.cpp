//===- profile/ProfileIO.cpp ----------------------------------------------===//

#include "profile/ProfileIO.h"

#include "support/AtomicFile.h"
#include "support/Checksum.h"
#include "support/SourceManager.h"
#include "support/Text.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <unordered_set>

using namespace pgmp;

static const char *const MagicV1 = "pgmp-profile\t1";
static const char *const MagicV2 = "pgmp-profile\t2";

std::string pgmp::serializeProfile(const ProfileDatabase &Db,
                                   const SourceManager *SM) {
  std::string Out;
  Out += MagicV2;
  Out += "\n";
  Out += "datasets\t" + std::to_string(Db.numDatasets()) + "\n";

  // Content fingerprints of every profiled file whose text is known, so
  // loading against changed sources is detected as stale. Ephemeral
  // buffers (`<eval>`, `<repl>`, ...) are transient by construction and
  // carry no meaningful identity across sessions, so they are skipped.
  if (SM) {
    std::set<std::string> Files;
    for (const auto &[Src, E] : Db.entries()) {
      (void)E;
      Files.insert(Src->File);
    }
    for (const std::string &File : Files) {
      if (!File.empty() && File.front() == '<')
        continue;
      if (const std::string *Contents = SM->contentsByName(File))
        Out += "source\t" + File + "\t" + hex64(fnv1a64(*Contents)) + "\n";
    }
  }

  // Sort for deterministic output (unordered_map iteration order is not).
  std::vector<std::pair<const SourceObject *, ProfileDatabase::Entry>> Rows(
      Db.entries().begin(), Db.entries().end());
  std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    if (A.first->File != B.first->File)
      return A.first->File < B.first->File;
    if (A.first->BeginOffset != B.first->BeginOffset)
      return A.first->BeginOffset < B.first->BeginOffset;
    return A.first->EndOffset < B.first->EndOffset;
  });

  char Buf[64];
  for (const auto &[Src, E] : Rows) {
    Out += "point\t";
    Out += Src->File;
    Out += "\t" + std::to_string(Src->BeginOffset);
    Out += "\t" + std::to_string(Src->EndOffset);
    Out += "\t" + std::to_string(Src->Line);
    Out += "\t" + std::to_string(Src->Column);
    Out += Src->Generated ? "\tg" : "\t-";
    std::snprintf(Buf, sizeof(Buf), "%.17g", E.WeightSum);
    Out += "\t";
    Out += Buf;
    Out += "\t" + std::to_string(E.TotalCount);
    Out += "\n";
  }

  // Checksum footer over every byte above it; must stay the last record.
  Out += "crc\t" + hex32(crc32(Out)) + "\n";
  return Out;
}

bool pgmp::storeProfileFile(const ProfileDatabase &Db, const std::string &Path,
                            const SourceManager *SM, std::string *ErrorOut) {
  std::string Err;
  if (!writeFileAtomic(Path, serializeProfile(Db, SM), Err)) {
    if (ErrorOut)
      *ErrorOut = Err;
    return false;
  }
  return true;
}

bool pgmp::parseProfile(const std::string &Text, SourceObjectTable &Sources,
                        ProfileDatabase &Db, std::string &ErrorOut,
                        const SourceManager *SM, ProfileLoadReport *Report) {
  ProfileLoadReport Local;
  if (!Report)
    Report = &Local;
  *Report = ProfileLoadReport{};

  auto Fail = [&](ProfileLoadStatus Status, std::string Msg) {
    Report->Status = Status;
    ErrorOut = std::move(Msg);
    return false;
  };

  auto Lines = splitChar(Text, '\n');
  int Version = 0;
  if (!Lines.empty()) {
    if (Lines[0] == MagicV1)
      Version = 1;
    else if (Lines[0] == MagicV2)
      Version = 2;
    else if (Lines[0].starts_with("pgmp-profile\t"))
      return Fail(ProfileLoadStatus::Malformed,
                  "unsupported profile version '" + std::string(Lines[0]) +
                      "'");
  }
  if (Version == 0)
    return Fail(ProfileLoadStatus::Malformed, "bad profile file header");
  Report->Version = Version;

  // Validate the v2 checksum footer before looking at any record, so a
  // bit flip anywhere in the body reports as corruption, not as whatever
  // record-level syntax error it happens to produce.
  size_t CrcLine = 0;
  if (Version == 2) {
    bool HaveCrc = false;
    for (size_t I = Lines.size(); I-- > 1;) {
      if (Lines[I].empty())
        continue;
      auto Fields = splitChar(Lines[I], '\t');
      uint32_t Stored = 0;
      if (Fields[0] != "crc" || Fields.size() != 2 ||
          !parseHex32(Fields[1], Stored))
        return Fail(ProfileLoadStatus::Corrupt,
                    "profile missing checksum footer (file truncated?)");
      size_t Offset = static_cast<size_t>(Lines[I].data() - Text.data());
      if (crc32(std::string_view(Text).substr(0, Offset)) != Stored)
        return Fail(ProfileLoadStatus::Corrupt,
                    "profile checksum mismatch (file corrupt)");
      CrcLine = I;
      HaveCrc = true;
      break;
    }
    if (!HaveCrc)
      return Fail(ProfileLoadStatus::Corrupt,
                  "profile missing checksum footer (file truncated?)");
    Report->ChecksumChecked = true;
  }

  // All-or-nothing: parse into a scratch database, merge only on success.
  ProfileDatabase Parsed;
  bool SawDatasets = false;
  std::unordered_set<const SourceObject *> SeenPoints;
  std::unordered_set<std::string> SeenSourceFiles;

  for (size_t I = 1; I < Lines.size(); ++I) {
    std::string_view Line = Lines[I];
    if (Line.empty() || (Version == 2 && I == CrcLine))
      continue;
    auto Fields = splitChar(Line, '\t');
    std::string LineNo = std::to_string(I + 1);

    if (Fields[0] == "datasets") {
      int64_t N;
      if (Fields.size() != 2 || !parseInt64(Fields[1], N) || N < 0)
        return Fail(ProfileLoadStatus::Malformed,
                    "bad datasets line " + LineNo);
      if (SawDatasets)
        return Fail(ProfileLoadStatus::Malformed,
                    "duplicate datasets record on line " + LineNo);
      Parsed.mergeDatasetCount(static_cast<uint64_t>(N));
      SawDatasets = true;
      continue;
    }

    if (Fields[0] == "point") {
      int64_t Begin, End, PtLine, Col, Count;
      double WeightSum;
      if (Fields.size() != 9 || !parseInt64(Fields[2], Begin) ||
          !parseInt64(Fields[3], End) || !parseInt64(Fields[4], PtLine) ||
          !parseInt64(Fields[5], Col) || !parseDouble(Fields[7], WeightSum) ||
          !parseInt64(Fields[8], Count))
        return Fail(ProfileLoadStatus::Malformed, "bad point line " + LineNo);
      if (Begin < 0 || End < 0 || PtLine < 0 || Col < 0 ||
          Begin > UINT32_MAX || End > UINT32_MAX || PtLine > UINT32_MAX ||
          Col > UINT32_MAX)
        return Fail(ProfileLoadStatus::Malformed,
                    "point with out-of-range source location on line " +
                        LineNo);
      if (Begin > End)
        return Fail(ProfileLoadStatus::Malformed,
                    "point with begin > end source range on line " + LineNo);
      if (!(WeightSum >= 0) || std::isinf(WeightSum))
        return Fail(ProfileLoadStatus::Malformed,
                    "point with invalid weight '" + std::string(Fields[7]) +
                        "' on line " + LineNo);
      if (Count < 0)
        return Fail(ProfileLoadStatus::Malformed,
                    "point with negative count on line " + LineNo);
      const SourceObject *Src = Sources.intern(
          std::string(Fields[1]), static_cast<uint32_t>(Begin),
          static_cast<uint32_t>(End), static_cast<uint32_t>(PtLine),
          static_cast<uint32_t>(Col), Fields[6] == "g");
      if (Version >= 2 && !SeenPoints.insert(Src).second)
        return Fail(ProfileLoadStatus::Malformed,
                    "duplicate point record on line " + LineNo);
      Parsed.mergeEntry(Src, ProfileDatabase::Entry{
                                 WeightSum, static_cast<uint64_t>(Count)});
      continue;
    }

    if (Fields[0] == "source" && Version >= 2) {
      uint64_t Fp;
      if (Fields.size() != 3 || Fields[1].empty() ||
          !parseHex64(Fields[2], Fp))
        return Fail(ProfileLoadStatus::Malformed,
                    "bad source record on line " + LineNo);
      std::string File(Fields[1]);
      if (!SeenSourceFiles.insert(File).second)
        return Fail(ProfileLoadStatus::Malformed,
                    "duplicate source record on line " + LineNo);
      Report->Fingerprints.emplace_back(File, Fp);
      if (SM) {
        if (const std::string *Contents = SM->contentsByName(File))
          if (fnv1a64(*Contents) != Fp)
            Report->StaleFiles.push_back(File);
      }
      continue;
    }

    if (Fields[0] == "crc" && Version >= 2)
      return Fail(ProfileLoadStatus::Malformed,
                  "misplaced checksum footer on line " + LineNo);

    return Fail(ProfileLoadStatus::Malformed,
                "unknown record '" + std::string(Fields[0]) + "' on line " +
                    LineNo);
  }

  if (!SawDatasets)
    return Fail(ProfileLoadStatus::Malformed,
                "profile file missing datasets record");

  if (!Report->StaleFiles.empty()) {
    std::string Msg = "stale profile: source changed since it was stored:";
    for (const std::string &File : Report->StaleFiles)
      Msg += " " + File;
    return Fail(ProfileLoadStatus::Stale, Msg);
  }

  if (Version == 1)
    Report->Warnings.push_back(
        "legacy v1 profile format: no checksum or source fingerprints");

  Report->NumPoints = Parsed.numPoints();
  Report->NumDatasets = Parsed.numDatasets();
  Db.mergeDatasetCount(Parsed.numDatasets());
  for (const auto &[Src, E] : Parsed.entries())
    Db.mergeEntry(Src, E);
  return true;
}

bool pgmp::loadProfileFile(const std::string &Path, SourceObjectTable &Sources,
                           ProfileDatabase &Db, std::string &ErrorOut,
                           const SourceManager *SM,
                           ProfileLoadReport *Report) {
  std::string Text, Err;
  FileReadStatus Status = readFileAll(Path, Text, Err);
  if (Status != FileReadStatus::Ok) {
    if (Report)
      Report->Status = Status == FileReadStatus::CannotOpen
                           ? ProfileLoadStatus::CannotOpen
                           : ProfileLoadStatus::ReadError;
    ErrorOut = Status == FileReadStatus::CannotOpen
                   ? "cannot open profile file: " + Path
                   : "error reading profile file: " + Path;
    return false;
  }
  return parseProfile(Text, Sources, Db, ErrorOut, SM, Report);
}
