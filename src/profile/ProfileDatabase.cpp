//===- profile/ProfileDatabase.cpp ----------------------------------------===//

#include "profile/ProfileDatabase.h"

using namespace pgmp;

void ProfileDatabase::addDataset(const CounterStore &Counters) {
  uint64_t Max = Counters.maxCount();
  if (Max == 0)
    return;
  for (const auto &[Src, Count] : Counters.snapshot()) {
    Entry &E = Entries[Src];
    E.WeightSum += static_cast<double>(Count) / static_cast<double>(Max);
    E.TotalCount += Count;
  }
  ++NumDatasets;
}

std::optional<double> ProfileDatabase::weight(const SourceObject *Src) const {
  if (NumDatasets == 0)
    return std::nullopt;
  auto It = Entries.find(Src);
  if (It == Entries.end())
    return 0.0;
  return It->second.WeightSum / static_cast<double>(NumDatasets);
}

void ProfileDatabase::clear() {
  Entries.clear();
  NumDatasets = 0;
}

void ProfileDatabase::mergeEntry(const SourceObject *Src, const Entry &E) {
  Entry &Mine = Entries[Src];
  Mine.WeightSum += E.WeightSum;
  Mine.TotalCount += E.TotalCount;
}
