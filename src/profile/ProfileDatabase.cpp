//===- profile/ProfileDatabase.cpp ----------------------------------------===//

#include "profile/ProfileDatabase.h"

#include "profile/ShardedCounterStore.h"

using namespace pgmp;

ProfileDatabase::ProfileDatabase(const ProfileDatabase &Other)
    : Entries(Other.Entries), NumDatasets(Other.NumDatasets) {}

ProfileDatabase &ProfileDatabase::operator=(const ProfileDatabase &Other) {
  if (this == &Other)
    return *this;
  Entries = Other.Entries;
  NumDatasets = Other.NumDatasets;
  ++Version; // the old snapshot cache no longer reflects this state
  return *this;
}

void ProfileDatabase::addDataset(const CounterRows &Rows) {
  uint64_t Max = 0;
  for (const auto &[Src, Count] : Rows)
    Max = std::max(Max, Count);
  if (Max == 0)
    return;
  for (const auto &[Src, Count] : Rows) {
    Entry &E = Entries[Src];
    E.WeightSum += static_cast<double>(Count) / static_cast<double>(Max);
    E.TotalCount += Count;
  }
  ++NumDatasets;
  ++Version;
}

void ProfileDatabase::addDataset(const CounterStore &Counters) {
  addDataset(Counters.snapshot());
}

void ProfileDatabase::addDataset(const ShardedCounterStore &Counters) {
  addDataset(Counters.snapshot());
}

ProfileSnapshot ProfileDatabase::snapshot() const {
  std::lock_guard<std::mutex> Lock(SnapMu);
  if (!Cache || CacheVersion != Version) {
    auto Data = std::make_shared<ProfileSnapshotData>();
    Data->Entries = Entries;
    Data->NumDatasets = NumDatasets;
    Cache = std::move(Data);
    CacheVersion = Version;
  }
  return ProfileSnapshot(Cache);
}

std::optional<double> ProfileDatabase::weight(const SourceObject *Src) const {
  if (NumDatasets == 0)
    return std::nullopt;
  auto It = Entries.find(Src);
  if (It == Entries.end())
    return 0.0;
  return It->second.WeightSum / static_cast<double>(NumDatasets);
}

void ProfileDatabase::clear() {
  Entries.clear();
  NumDatasets = 0;
  ++Version;
}

void ProfileDatabase::mergeEntry(const SourceObject *Src, const Entry &E) {
  Entry &Mine = Entries[Src];
  Mine.WeightSum += E.WeightSum;
  Mine.TotalCount += E.TotalCount;
  ++Version;
}
