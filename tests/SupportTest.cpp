//===- tests/SupportTest.cpp - support/ unit tests ------------------------===//

#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/SourceManager.h"
#include "support/Text.h"

#include <gtest/gtest.h>

using namespace pgmp;

namespace {

TEST(Text, FormatFlonumRoundTrips) {
  for (double D : {0.0, 1.0, 0.5, -2.25, 3.141592653589793, 1e100, 1e-7,
                   123456789.123456789}) {
    std::string S = formatFlonum(D);
    EXPECT_EQ(std::stod(S), D) << S;
  }
}

TEST(Text, FormatFlonumAlwaysLooksFloaty) {
  EXPECT_EQ(formatFlonum(1.0), "1.0");
  EXPECT_EQ(formatFlonum(-3.0), "-3.0");
  EXPECT_NE(formatFlonum(1e30).find_first_of(".e"), std::string::npos);
}

TEST(Text, EscapeStringLiteral) {
  EXPECT_EQ(escapeStringLiteral("ab"), "\"ab\"");
  EXPECT_EQ(escapeStringLiteral("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(escapeStringLiteral("a\nb\\"), "\"a\\nb\\\\\"");
}

TEST(Text, SplitChar) {
  auto P = splitChar("a\tb\t\tc", '\t');
  ASSERT_EQ(P.size(), 4u);
  EXPECT_EQ(P[0], "a");
  EXPECT_EQ(P[1], "b");
  EXPECT_EQ(P[2], "");
  EXPECT_EQ(P[3], "c");
  EXPECT_EQ(splitChar("", ',').size(), 1u);
}

TEST(Text, ParseInt64) {
  int64_t V;
  EXPECT_TRUE(parseInt64("42", V));
  EXPECT_EQ(V, 42);
  EXPECT_TRUE(parseInt64("-7", V));
  EXPECT_EQ(V, -7);
  EXPECT_FALSE(parseInt64("", V));
  EXPECT_FALSE(parseInt64("4x", V));
  EXPECT_FALSE(parseInt64("1.5", V));
}

TEST(Text, ParseDouble) {
  double V;
  EXPECT_TRUE(parseDouble("2.5", V));
  EXPECT_EQ(V, 2.5);
  EXPECT_TRUE(parseDouble("-1e3", V));
  EXPECT_EQ(V, -1000.0);
  EXPECT_FALSE(parseDouble("abc", V));
  EXPECT_FALSE(parseDouble("1.5x", V));
}

TEST(SourceManager, RegisterAndDescribe) {
  SourceManager SM;
  FileId Id = SM.addBuffer("a.scm", "(+ 1 2)");
  EXPECT_EQ(SM.bufferName(Id), "a.scm");
  EXPECT_EQ(SM.bufferText(Id), "(+ 1 2)");
  EXPECT_EQ(SM.describe(Id, SourcePos{0, 3, 7}), "a.scm:3:7");
}

TEST(SourceManager, ReRegisterRefreshesContents) {
  SourceManager SM;
  FileId A = SM.addBuffer("x", "one");
  FileId B = SM.addBuffer("x", "two");
  EXPECT_EQ(A, B);
  EXPECT_EQ(SM.bufferText(A), "two");
  EXPECT_EQ(SM.numBuffers(), 1u);
}

TEST(Diagnostics, CountsAndRender) {
  DiagnosticSink Sink;
  Sink.report(DiagKind::Warning, "f:1:2", "watch out");
  Sink.report(DiagKind::Error, "", "boom");
  EXPECT_EQ(Sink.warningCount(), 1u);
  EXPECT_EQ(Sink.errorCount(), 1u);
  EXPECT_EQ(Sink.all()[0].render(), "f:1:2: warning: watch out");
  EXPECT_EQ(Sink.all()[1].render(), "error: boom");
  Sink.clear();
  EXPECT_EQ(Sink.all().size(), 0u);
  EXPECT_EQ(Sink.errorCount(), 0u);
}

TEST(Diagnostics, SchemeErrorRender) {
  SchemeError E("bad thing", "f:3:4");
  EXPECT_EQ(E.render(), "f:3:4: error: bad thing");
  SchemeError E2("bad thing");
  EXPECT_EQ(E2.render(), "error: bad thing");
}

TEST(Rng, DeterministicForSeed) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Differs = false;
  Rng A2(42);
  for (int I = 0; I < 100; ++I)
    Differs |= A2.next() != C.next();
  EXPECT_TRUE(Differs);
}

TEST(Rng, UnitInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  Rng R(11);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    if (R.chance(0.3))
      ++Hits;
  EXPECT_NEAR(Hits / 10000.0, 0.3, 0.03);
}

} // namespace
