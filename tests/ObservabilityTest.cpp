//===- tests/ObservabilityTest.cpp - Pipeline observability ---------------===//
//
// The observability layer's contract, proven rather than assumed:
//   - StatsRegistry and TraceSink are no-ops (not just cheap) when
//     disabled, and the default-off engine records nothing;
//   - enabled engines attribute wall-clock time and self-metrics to the
//     right pipeline phases, including the profile I/O phases;
//   - --trace output is well-formed Chrome trace_event JSON (validated by
//     an actual parser, not substring checks);
//   - ProfileOpResult carries the structured outcome of store/load, and
//     degraded loads warn through the one diagnostic funnel;
//   - `pgmpi report`'s renderer produces a byte-stable table (golden);
//   - the three-pass protocol reports per-stage stats.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/ThreePass.h"
#include "profile/ProfileIO.h"
#include "profile/ProfileReport.h"
#include "support/AtomicFile.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <cstdio>
#include <set>

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

std::string slurp(const std::string &Path) {
  std::string Out, Err;
  EXPECT_EQ(readFileAll(Path, Out, Err), FileReadStatus::Ok) << Err;
  return Out;
}

void spit(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << "cannot write " << Path;
  ASSERT_EQ(std::fwrite(Text.data(), 1, Text.size(), F), Text.size());
  std::fclose(F);
}

//===----------------------------------------------------------------------===//
// Minimal JSON reader
//===----------------------------------------------------------------------===//
//
// Just enough JSON to hold trace output to the "Chrome can load this"
// standard: objects, arrays, strings with escapes, and numbers. Any
// syntax error fails the parse, which is the point — a substring check
// would accept truncated output.

struct JsonValue {
  enum Kind { Object, Array, String, Number, Bool, Null } K = Null;
  std::vector<std::pair<std::string, JsonValue>> Fields; // Object
  std::vector<JsonValue> Items;                          // Array
  std::string Str;                                       // String
  double Num = 0;                                        // Number
  bool B = false;                                        // Bool

  const JsonValue *field(const std::string &Name) const {
    for (const auto &[FName, V] : Fields)
      if (FName == Name)
        return &V;
    return nullptr;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  bool parse(JsonValue &Out) {
    if (!value(Out))
      return false;
    skipWs();
    return Pos == Text.size(); // no trailing garbage
  }

private:
  const std::string &Text;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }
  bool eat(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }
  bool lit(const char *S, JsonValue &Out, JsonValue::Kind K, bool B) {
    size_t N = strlen(S);
    if (Text.compare(Pos, N, S) != 0)
      return false;
    Pos += N;
    Out.K = K;
    Out.B = B;
    return true;
  }
  bool string(std::string &Out) {
    if (!eat('"'))
      return false;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos >= Text.size())
          return false;
        char E = Text[Pos++];
        switch (E) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case '/': Out += '/'; break;
        case 'b': Out += '\b'; break;
        case 'f': Out += '\f'; break;
        case 'n': Out += '\n'; break;
        case 'r': Out += '\r'; break;
        case 't': Out += '\t'; break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return false;
          for (int I = 0; I < 4; ++I)
            if (!isxdigit(static_cast<unsigned char>(Text[Pos + I])))
              return false;
          Pos += 4;
          Out += '?'; // decoded value irrelevant for these tests
          break;
        }
        default:
          return false;
        }
        continue;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // control chars must be escaped
      Out += C;
    }
    return false; // unterminated
  }
  bool value(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = JsonValue::Object;
      skipWs();
      if (eat('}'))
        return true;
      do {
        std::string Key;
        JsonValue V;
        skipWs();
        if (!string(Key) || !eat(':') || !value(V))
          return false;
        Out.Fields.emplace_back(std::move(Key), std::move(V));
      } while (eat(','));
      return eat('}');
    }
    if (C == '[') {
      ++Pos;
      Out.K = JsonValue::Array;
      skipWs();
      if (eat(']'))
        return true;
      do {
        JsonValue V;
        if (!value(V))
          return false;
        Out.Items.push_back(std::move(V));
      } while (eat(','));
      return eat(']');
    }
    if (C == '"') {
      Out.K = JsonValue::String;
      return string(Out.Str);
    }
    if (C == 't')
      return lit("true", Out, JsonValue::Bool, true);
    if (C == 'f')
      return lit("false", Out, JsonValue::Bool, false);
    if (C == 'n')
      return lit("null", Out, JsonValue::Null, false);
    // number
    size_t Start = Pos;
    if (C == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return false;
    try {
      Out.Num = std::stod(Text.substr(Start, Pos - Start));
    } catch (...) {
      return false;
    }
    Out.K = JsonValue::Number;
    return true;
  }
};

//===----------------------------------------------------------------------===//
// StatsRegistry / ScopedPhase units
//===----------------------------------------------------------------------===//

TEST(Stats, DisabledRegistryIsANoOp) {
  StatsRegistry S;
  EXPECT_FALSE(S.enabled());
  S.bump(Stat::CompiledUnits);
  S.bump(Stat::CounterIncrements, 1000);
  S.addPhaseTime(Phase::Eval, 12345);
  EXPECT_EQ(S.count(Stat::CompiledUnits), 0u);
  EXPECT_EQ(S.count(Stat::CounterIncrements), 0u);
  EXPECT_EQ(S.phaseNanos(Phase::Eval), 0u);
  EXPECT_EQ(S.phaseEntries(Phase::Eval), 0u);
}

TEST(Stats, EnabledRegistryAccumulatesAndResets) {
  StatsRegistry S;
  S.enable(true);
  S.bump(Stat::MacroExpansions);
  S.bump(Stat::MacroExpansions, 4);
  S.addPhaseTime(Phase::Expand, 100);
  S.addPhaseTime(Phase::Expand, 50);
  EXPECT_EQ(S.count(Stat::MacroExpansions), 5u);
  EXPECT_EQ(S.phaseNanos(Phase::Expand), 150u);
  EXPECT_EQ(S.phaseEntries(Phase::Expand), 2u);

  S.reset();
  EXPECT_TRUE(S.enabled()) << "reset clears data, not the enable flag";
  EXPECT_EQ(S.count(Stat::MacroExpansions), 0u);
  EXPECT_EQ(S.phaseEntries(Phase::Expand), 0u);
}

TEST(Stats, SnapshotIsCompleteAndUniquelyNamed) {
  StatsRegistry S;
  S.enable(true);
  auto Snap = S.snapshot();
  // Every counter, then entries + nanos per phase.
  EXPECT_EQ(Snap.size(), NumStats + 2 * NumPhases);
  std::set<std::string> Names;
  for (const auto &[Name, Value] : Snap)
    Names.insert(Name);
  EXPECT_EQ(Names.size(), Snap.size()) << "snapshot names must be unique";
}

TEST(Stats, ScopedPhaseRecordsOnlyWhenSomethingIsEnabled) {
  StatsRegistry S;
  TraceSink T;
  { ScopedPhase P(S, &T, Phase::Read); }
  EXPECT_EQ(S.phaseEntries(Phase::Read), 0u);
  EXPECT_EQ(T.numEvents(), 0u);

  S.enable(true);
  { ScopedPhase P(S, &T, Phase::Read); }
  EXPECT_EQ(S.phaseEntries(Phase::Read), 1u);
  EXPECT_EQ(T.numEvents(), 0u) << "trace stays off independently";

  T.enable(true);
  { ScopedPhase P(S, &T, Phase::Read); }
  EXPECT_EQ(S.phaseEntries(Phase::Read), 2u);
  EXPECT_EQ(T.numEvents(), 1u);
}

//===----------------------------------------------------------------------===//
// Engine integration
//===----------------------------------------------------------------------===//

TEST(Observability, EngineStatsOffByDefault) {
  Engine E;
  EXPECT_FALSE(E.statsEnabled());
  evalOk(E, "(define (f x) (* x x)) (f 12)");
  for (size_t I = 0; I < NumStats; ++I)
    EXPECT_EQ(E.stats().count(static_cast<Stat>(I)), 0u);
  for (size_t I = 0; I < NumPhases; ++I)
    EXPECT_EQ(E.stats().phaseEntries(static_cast<Phase>(I)), 0u);
}

TEST(Observability, EngineStatsCoverPipelinePhases) {
  Engine E(withStats());
  evalOk(E, "(define-syntax (twice stx)"
            "  (syntax-case stx () [(_ e) #'(begin e e)]))"
            "(define (f x) (* x x))"
            "(twice (f 3))");
  const StatsRegistry &S = E.stats();
  EXPECT_GT(S.count(Stat::CompiledUnits), 0u);
  EXPECT_GT(S.count(Stat::CompiledNodes), 0u);
  EXPECT_GT(S.count(Stat::MacroExpansions), 0u);
  EXPECT_GT(S.phaseEntries(Phase::Read), 0u);
  EXPECT_GT(S.phaseEntries(Phase::Expand), 0u);
  EXPECT_GT(S.phaseEntries(Phase::Compile), 0u);
  EXPECT_GT(S.phaseEntries(Phase::Eval), 0u);
  EXPECT_EQ(S.count(Stat::InstrumentedNodes), 0u)
      << "no instrumentation requested";

  E.resetStats();
  EXPECT_EQ(E.stats().count(Stat::CompiledUnits), 0u);
}

TEST(Observability, ProfileWorkflowSelfMetrics) {
  std::string Path = tempPath("metrics.profile");
  EngineOptions Opts = withStats();
  Opts.Instrument = true;
  Engine E(Opts);
  evalOk(E, "(define (f x) (* x x)) (f 1) (f 2) (f 3)");
  EXPECT_GT(E.stats().count(Stat::InstrumentedNodes), 0u);
  EXPECT_LE(E.stats().count(Stat::InstrumentedNodes),
            E.stats().count(Stat::CompiledNodes));

  ProfileOpResult Store = E.storeProfile(Path);
  ASSERT_TRUE(Store) << Store.Error;
  const StatsRegistry &S = E.stats();
  EXPECT_EQ(S.count(Stat::ProfileStores), 1u);
  EXPECT_EQ(S.count(Stat::DatasetMerges), 1u);
  EXPECT_GT(S.count(Stat::CounterIncrements), 0u);
  EXPECT_GT(S.phaseEntries(Phase::CounterFold), 0u);
  EXPECT_GT(S.phaseEntries(Phase::ProfileStore), 0u);

  Engine E2(withStats());
  ProfileOpResult Load = E2.loadProfile(Path);
  ASSERT_TRUE(Load) << Load.Error;
  EXPECT_EQ(E2.stats().count(Stat::ProfileLoads), 1u);
  EXPECT_EQ(E2.stats().count(Stat::DatasetMerges), 1u);
  EXPECT_GT(E2.stats().count(Stat::ProfilePointsLoaded), 0u);
  EXPECT_GT(E2.stats().phaseEntries(Phase::ProfileLoad), 0u);
}

TEST(Observability, RenderMentionsNonZeroCountersOnly) {
  Engine E(withStats());
  evalOk(E, "(+ 1 2)");
  std::string R = E.stats().render();
  EXPECT_NE(R.find("compiled-units"), std::string::npos);
  EXPECT_EQ(R.find("annotate-expr-calls"), std::string::npos)
      << "zero counters stay out of the report:\n" << R;
}

//===----------------------------------------------------------------------===//
// Trace export
//===----------------------------------------------------------------------===//

TEST(Trace, DisabledSinkRecordsNothing) {
  TraceSink T;
  T.record("read", "pipeline", 0, 100);
  T.instant("marker", "pipeline", 50);
  EXPECT_EQ(T.numEvents(), 0u);
}

TEST(Trace, EmittedJsonParsesAndDescribesPhases) {
  std::string Path = tempPath("trace.json");
  {
    EngineOptions Opts;
    Opts.TracePath = Path;
    Engine E(Opts);
    evalOk(E, "(define (f x) (* x x)) (f 4)");
    ProfileOpResult W = E.writeTrace();
    ASSERT_TRUE(W) << W.Error;
    // The path is flushed: a second explicit write has no target.
    EXPECT_FALSE(E.writeTrace());
  }

  JsonValue Root;
  ASSERT_TRUE(JsonParser(slurp(Path)).parse(Root)) << "invalid trace JSON";
  ASSERT_EQ(Root.K, JsonValue::Object);
  const JsonValue *Events = Root.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->K, JsonValue::Array);
  ASSERT_FALSE(Events->Items.empty());

  std::set<std::string> Names;
  for (const JsonValue &Ev : Events->Items) {
    ASSERT_EQ(Ev.K, JsonValue::Object);
    const JsonValue *Name = Ev.field("name");
    const JsonValue *Ph = Ev.field("ph");
    ASSERT_NE(Name, nullptr);
    ASSERT_NE(Ph, nullptr);
    Names.insert(Name->Str);
    if (Ph->Str == "X") {
      const JsonValue *Ts = Ev.field("ts");
      const JsonValue *Dur = Ev.field("dur");
      ASSERT_NE(Ts, nullptr);
      ASSERT_NE(Dur, nullptr);
      EXPECT_GE(Ts->Num, 0.0);
      EXPECT_GE(Dur->Num, 0.0);
    }
  }
  EXPECT_TRUE(Names.count("read"));
  EXPECT_TRUE(Names.count("expand"));
  EXPECT_TRUE(Names.count("compile"));
  EXPECT_TRUE(Names.count("eval"));
}

TEST(Trace, EscapesHostileEventNames) {
  TraceSink T;
  T.enable(true);
  T.instant("quote\" backslash\\ newline\n", "pipeline", 10);
  JsonValue Root;
  std::string Json = T.renderJson();
  ASSERT_TRUE(JsonParser(Json).parse(Root)) << Json;
  const JsonValue *Events = Root.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  // Metadata event first, then ours with the name intact after unescaping.
  ASSERT_EQ(Events->Items.size(), 2u);
  EXPECT_EQ(Events->Items[1].field("name")->Str,
            "quote\" backslash\\ newline\n");
}

//===----------------------------------------------------------------------===//
// ProfileOpResult API
//===----------------------------------------------------------------------===//

TEST(ProfileOpResultApi, StoreAndLoadReportStructuredOutcome) {
  std::string Path = tempPath("roundtrip.profile");
  Engine E;
  E.setInstrumentation(true);
  evalOk(E, "(define (f x) x) (f 1) (f 2)");
  ProfileOpResult Store = E.storeProfile(Path);
  ASSERT_TRUE(Store) << Store.Error;
  EXPECT_EQ(Store.Status, ProfileOpStatus::Ok);
  EXPECT_FALSE(Store.degraded());
  EXPECT_EQ(Store.DatasetsMerged, 1u);
  EXPECT_GT(Store.PointsLoaded, 0u);
  EXPECT_TRUE(Store.Error.empty());

  Engine E2;
  ProfileOpResult Load = E2.loadProfile(Path);
  ASSERT_TRUE(Load) << Load.Error;
  EXPECT_EQ(Load.Status, ProfileOpStatus::Ok);
  EXPECT_EQ(Load.DatasetsMerged, 1u);
  EXPECT_EQ(Load.PointsLoaded, Store.PointsLoaded);
}

TEST(ProfileOpResultApi, DegradedLoadWarnsThroughDiagnostics) {
  std::string Path = tempPath("corrupt.profile");
  spit(Path, "pgmp-profile\t2\ndatasets\t1\ncrc\t00000000\n");

  Engine E;
  ProfileOpResult R = E.loadProfile(Path);
  EXPECT_TRUE(R) << "non-strict corrupt load degrades, not fails";
  EXPECT_EQ(R.Status, ProfileOpStatus::Degraded);
  EXPECT_TRUE(R.degraded());
  ASSERT_FALSE(R.Warnings.empty());
  EXPECT_NE(R.Error.find("checksum"), std::string::npos) << R.Error;

  // The same warning reached the diagnostic sink, tagged with the path —
  // the single funnel shared by every profile warning channel.
  const std::vector<Diagnostic> &Diags = E.context().Diags.all();
  ASSERT_FALSE(Diags.empty());
  bool Found = false;
  for (const Diagnostic &D : Diags)
    if (D.Kind == DiagKind::Warning && D.Where == Path &&
        D.Message.find("ignoring profile") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
  EXPECT_EQ(evalOk(E, "(profile-data-available?)"), "#f");
}

TEST(ProfileOpResultApi, LegacyV1WarningsFlowThroughDiagnostics) {
  // A v1 profile loads with a "legacy format" style warning; it must
  // surface both in the result and in the sink.
  std::string Path = tempPath("v1.profile");
  spit(Path, "pgmp-profile\t1\ndatasets\t1\n"
             "point\tapp.scm\t0\t10\t1\t1\t-\t0.5\t20\n");
  Engine E;
  ProfileOpResult R = E.loadProfile(Path);
  ASSERT_TRUE(R) << R.Error;
  ASSERT_FALSE(R.Warnings.empty());
  EXPECT_EQ(E.context().Diags.warningCount(), R.Warnings.size());
  EXPECT_EQ(E.context().Diags.all()[0].Where, Path);
}

TEST(ProfileOpResultApi, FailureFactoryAndBoolSemantics) {
  ProfileOpResult F = ProfileOpResult::failure("boom");
  EXPECT_FALSE(F);
  EXPECT_FALSE(F.ok());
  EXPECT_EQ(F.Status, ProfileOpStatus::Failed);
  EXPECT_EQ(F.Error, "boom");

  ProfileOpResult D;
  D.Status = ProfileOpStatus::Degraded;
  EXPECT_TRUE(D) << "degraded counts as ok for control flow";
  EXPECT_TRUE(D.degraded());
}

//===----------------------------------------------------------------------===//
// Scheme-level: profile-query*, pgmp-stats
//===----------------------------------------------------------------------===//

TEST(Observability, ProfileQueryStarDistinguishesNoDataFromZero) {
  std::string Path = tempPath("query.profile");
  {
    Engine Trainer;
    Trainer.setInstrumentation(true);
    evalOk(Trainer, "(define (f x) x) (f 1)");
    ProfileOpResult R = Trainer.storeProfile(Path);
    ASSERT_TRUE(R) << R.Error;
  }

  Engine E;
  // Nothing loaded: profile-query collapses to 0, the * variant says #f.
  evalOk(E, "(define p (make-profile-point \"k\"))");
  EXPECT_EQ(evalOk(E, "(profile-query p)"), "0.0");
  EXPECT_EQ(evalOk(E, "(profile-query* p)"), "#f");

  ASSERT_TRUE(E.loadProfile(Path));
  // Loaded, but this generated point has no data: still a real number
  // now, because "no data for this point" is 0, not "no data at all".
  EXPECT_EQ(evalOk(E, "(profile-query* p)"), "0.0");
}

TEST(Observability, PgmpStatsPrimitiveExposesCounters) {
  Engine E;
  evalOk(E, "(set-pgmp-stats! #t)");
  evalOk(E, "(define (f x) (* x x)) (f 5)");
  EXPECT_EQ(evalOk(E, "(number? (cdr (assq 'compiled-units (pgmp-stats))))"),
            "#t");
  EXPECT_EQ(evalOk(E, "(> (cdr (assq 'compiled-units (pgmp-stats))) 0)"),
            "#t");
  evalOk(E, "(set-pgmp-stats! #f)");
  evalOk(E, "(define snap (cdr (assq 'compiled-units (pgmp-stats))))");
  evalOk(E, "(+ 1 2)");
  EXPECT_EQ(evalOk(E, "(= snap (cdr (assq 'compiled-units (pgmp-stats))))"),
            "#t")
      << "disabled stats stop counting";
}

//===----------------------------------------------------------------------===//
// Hot-spot report (golden)
//===----------------------------------------------------------------------===//

TEST(Report, GoldenTableFromInMemorySources) {
  SourceManager SM;
  SM.addBuffer("app.scm", "(define (hot x)\n  (* x x))\n(hot 3)\n");

  SourceObjectTable Sources;
  ProfileDatabase Db;
  const SourceObject *A = Sources.intern("app.scm", 18, 25, 2, 3);
  const SourceObject *B = Sources.intern("app.scm", 27, 34, 3, 1);
  Db.mergeEntry(A, ProfileDatabase::Entry{1.0, 40});
  Db.mergeEntry(B, ProfileDatabase::Entry{0.5, 20});
  Db.mergeDatasetCount(1);

  ProfileLoadReport Meta;
  Meta.Version = 2;
  ProfileReportOptions Opts;
  Opts.ReadSourcesFromDisk = false; // deterministic: SM only
  std::string Report = renderProfileReport(Db, Meta, "app.profile", Opts, &SM);
  EXPECT_EQ(Report,
            "app.profile: v2, 1 dataset(s), 2 point(s)\n"
            "hot spots (top 2 of 2):\n"
            " rank  weight         count  location     source\n"
            "    1  1.0000            40  app.scm:2:3  (* x x)\n"
            "    2  0.5000            20  app.scm:3:1  (hot 3)\n");
}

TEST(Report, TruncatesExcerptsAndRespectsTopN) {
  SourceManager SM;
  std::string Long = "(begin " + std::string(100, 'x') + ")";
  SM.addBuffer("long.scm", Long);
  SourceObjectTable Sources;
  ProfileDatabase Db;
  const SourceObject *A =
      Sources.intern("long.scm", 0, static_cast<uint32_t>(Long.size()), 1, 1);
  const SourceObject *B = Sources.intern("long.scm", 0, 6, 1, 1);
  Db.mergeEntry(A, ProfileDatabase::Entry{1.0, 9});
  Db.mergeEntry(B, ProfileDatabase::Entry{0.9, 5});
  Db.mergeDatasetCount(1);

  ProfileLoadReport Meta;
  Meta.Version = 2;
  ProfileReportOptions Opts;
  Opts.ReadSourcesFromDisk = false;
  Opts.TopN = 1;
  Opts.ExcerptWidth = 16;
  std::string Report = renderProfileReport(Db, Meta, "p", Opts, &SM);
  EXPECT_NE(Report.find("top 1 of 2"), std::string::npos) << Report;
  EXPECT_NE(Report.find("..."), std::string::npos) << Report;
  EXPECT_EQ(Report.find(std::string(20, 'x')), std::string::npos)
      << "excerpt must be truncated:\n" << Report;
}

TEST(Report, FileEntryPointRoundTripsARealProfile) {
  std::string Src = tempPath("app.scm");
  spit(Src, "(define (f x) (* x x))\n(f 2) (f 3) (f 4)\n");
  std::string Path = tempPath("report.profile");
  {
    Engine E;
    E.setInstrumentation(true);
    EvalResult R = E.evalFile(Src);
    ASSERT_TRUE(R.Ok) << R.Error;
    ProfileOpResult Store = E.storeProfile(Path);
    ASSERT_TRUE(Store) << Store.Error;
  }
  std::string Out, Err;
  ASSERT_TRUE(renderProfileReportFile(Path, Out, Err)) << Err;
  EXPECT_NE(Out.find("hot spots"), std::string::npos);
  EXPECT_NE(Out.find("v2, 1 dataset(s)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("(* x x)"), std::string::npos)
      << "excerpt should be read from the on-disk source:\n" << Out;
}

TEST(Report, MissingProfileFails) {
  std::string Out, Err;
  EXPECT_FALSE(renderProfileReportFile("/nonexistent/p.profile", Out, Err));
  EXPECT_NE(Err.find("cannot read"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Three-pass stage stats
//===----------------------------------------------------------------------===//

TEST(Observability, ThreePassReportsPerStageStats) {
  ThreePassConfig C;
  C.Libraries = {"exclusive-cond", "pgmp-case"};
  C.ProgramSource =
      "(define hits 0)\n"
      "(define (dispatch c)\n"
      "  (case c [(#\\a) (set! hits (+ hits 1))] [else 'other]))\n";
  C.ProgramName = "dispatch.scm";
  C.WorkloadSource = "(for-each (lambda (i) (dispatch #\\a)) (iota 20))";
  std::string Base = tempPath("tps");
  C.SourceProfilePath = Base + "_src.prof";
  C.BlockProfilePath = Base + "_blk.prof";
  std::vector<ThreePassStageStats> Stages;
  C.StageStatsOut = &Stages;

  OptimizedProgram Out;
  std::string Err;
  ASSERT_TRUE(runThreePasses(C, Out, Err)) << Err;
  ASSERT_EQ(Stages.size(), 3u);
  EXPECT_EQ(Stages[0].Pass, "pass1");
  EXPECT_EQ(Stages[1].Pass, "pass2");
  EXPECT_EQ(Stages[2].Pass, "pass3");

  // Pass 1 pays source-expression counters; pass 3 runs uninstrumented.
  EXPECT_GT(Stages[0].InstrumentedNodes, 0u);
  EXPECT_GT(Stages[0].CounterIncrements, 0u);
  EXPECT_EQ(Stages[2].InstrumentedNodes, 0u);
  for (const ThreePassStageStats &St : Stages) {
    EXPECT_GT(St.CompiledNodes, 0u) << St.Pass;
    EXPECT_FALSE(St.Rendered.empty()) << St.Pass;
  }
}

} // namespace
