//===- tests/VmCodegenTest.cpp - Superinstruction fusion + inlining -------===//
//
// The VM codegen contract (superinstruction fusion and tier-up inlining
// behind the TierBackend API):
//   - results are identical with the codegen features on or off, and the
//     structural hash of every tiered body is too — fusion at any depth
//     (round-1 pairs and wide round-2 ops) must be invisible to
//     block-profile validation;
//   - *counter fidelity*: instrumented runs store byte-identical profiles
//     with fusion+inlining on or off, sequentially and across an
//     8-worker EnginePool merge — fused dispatches bump the exact same
//     sharded-store counters as their unfused expansion;
//   - inlining respects its size cap: an over-cap callee falls back to a
//     guarded call (TierInlineFallbacks) and still computes the same
//     value;
//   - a fusion-table epoch change invalidates bodies compiled against the
//     stale table (TierInvalidations); they re-tier lazily and keep
//     computing the same values.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/EnginePool.h"
#include "interp/Expr.h"
#include "interp/TierBackend.h"
#include "support/AtomicFile.h"
#include "vm/Bytecode.h"
#include "vm/Fusion.h"

#include <vector>

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

std::string slurp(const std::string &Path) {
  std::string Out, Err;
  EXPECT_EQ(readFileAll(Path, Out, Err), FileReadStatus::Ok) << Err;
  return Out;
}

EngineOptions withCodegen(bool On, bool Instrument = false,
                          bool Stats = false) {
  EngineOptions Opts;
  Opts.Tier.Mode = TierMode::Always;
  Opts.Tier.Fusion = On;
  Opts.Tier.Inline = On;
  Opts.Instrument = Instrument;
  Opts.StatsEnabled = Stats;
  return Opts;
}

// A mono-caller helper (inline candidate), counted loops whose step and
// accumulate expressions fuse into wide superinstructions, and a
// non-tail cross-closure call (triangle from sum-upto).
const char *Program =
    "(define (poly x) (+ (* 3 x x) (* -2 x) 7))\n"
    "(define (work n)\n"
    "  (let loop ([i 0] [acc 0])\n"
    "    (if (= i n) acc (loop (+ i 1) (+ acc (poly i))))))\n"
    "(define (triangle k)\n"
    "  (let loop ([i 0] [acc 0])\n"
    "    (if (= i k) acc (loop (+ i 1) (+ acc i)))))\n"
    "(define (sum-upto n)\n"
    "  (let loop ([i 0] [acc 0])\n"
    "    (if (= i n) acc (loop (+ i 1) (+ acc (triangle 10))))))\n";
const char *ProgramName = "codegen.scm";
const char *Workload = "(list (work 100) (sum-upto 50) (poly 9))";

//===----------------------------------------------------------------------===//
// Results and codegen activity
//===----------------------------------------------------------------------===//

TEST(VmCodegen, ResultsIdenticalAndCodegenFires) {
  Engine Off(withCodegen(false));
  ASSERT_TRUE(Off.evalString(Program, ProgramName).Ok);
  std::string Expected = evalOk(Off, Workload);

  Engine On(withCodegen(true, /*Instrument=*/false, /*Stats=*/true));
  ASSERT_TRUE(On.evalString(Program, ProgramName).Ok);
  EXPECT_EQ(evalOk(On, Workload), Expected);
  EXPECT_GE(On.stats().count(Stat::SuperinstructionsFused), 1u)
      << "the counted loops must fuse at least one pair";
  EXPECT_GE(On.stats().count(Stat::TierInlines), 1u)
      << "poly is a mono-caller and must inline into work's loop";
}

TEST(VmCodegen, StructuralHashIdenticalFusionOnOff) {
  // The same source tiers to the same structural hash whether the fusion
  // table was applied or not: fused ops hash as their raw expansion.
  auto HashesOf = [](bool On) {
    Engine E(withCodegen(On));
    EXPECT_TRUE(E.evalString(Program, ProgramName).Ok);
    EXPECT_TRUE(E.evalString(Workload, "workload.scm").Ok);
    std::vector<uint64_t> Hashes;
    for (const LambdaExpr *L : E.context().TierLambdas)
      if (L->Tiered)
        Hashes.push_back(L->Tiered->structuralHash());
    return Hashes;
  };
  std::vector<uint64_t> On = HashesOf(true), Off = HashesOf(false);
  ASSERT_FALSE(On.empty());
  EXPECT_EQ(On, Off);
}

TEST(VmCodegen, WideFusionRoundtripsToRawStream) {
  // fuseFunction to fixpoint, then flattening every instruction, must
  // reproduce the original raw stream exactly — the core of both the
  // hash and the counter-fidelity invariants. The stream below is the
  // shape of a counted loop's step expression: (op x const) and
  // (op x y) calls land as wide ops.
  VmFunction Fn;
  Fn.Blocks.emplace_back();
  std::vector<Instr> Raw = {
      {Op::GlobalRef, 0, 0}, {Op::LocalRef, 0, 0}, {Op::Const, 1, 0},
      {Op::Call, 2, 0},      {Op::GlobalRef, 0, 0}, {Op::LocalRef, 0, 1},
      {Op::LocalRef, 0, 0},  {Op::Call, 2, 0},      {Op::TailCall, 2, 0},
  };
  Fn.Blocks[0].Code = Raw;
  FusionTable Table;
  EXPECT_GE(fuseFunction(Fn, Table), 4u);
  // The two whole subexpressions collapse into one dispatch each.
  ASSERT_EQ(Fn.Blocks[0].Code.size(), 3u);
  EXPECT_EQ(Fn.Blocks[0].Code[0].K, Op::GlobalLocalConstCall);
  EXPECT_EQ(Fn.Blocks[0].Code[1].K, Op::GlobalLocalLocalCall);
  std::vector<Instr> Flat;
  for (const Instr &I : Fn.Blocks[0].Code)
    flattenInstr(I, Flat);
  ASSERT_EQ(Flat.size(), Raw.size());
  for (size_t I = 0; I < Raw.size(); ++I) {
    EXPECT_EQ(Flat[I].K, Raw[I].K) << "at " << I;
    EXPECT_EQ(Flat[I].A, Raw[I].A) << "at " << I;
    EXPECT_EQ(Flat[I].B, Raw[I].B) << "at " << I;
  }
}

//===----------------------------------------------------------------------===//
// Counter fidelity
//===----------------------------------------------------------------------===//

std::string storeCodegenProfile(bool On, TierMode Mode,
                                const std::string &Path) {
  EngineOptions Opts = withCodegen(On, /*Instrument=*/true);
  Opts.Tier.Mode = Mode;
  Engine E(Opts);
  EXPECT_TRUE(E.evalString(Program, ProgramName).Ok);
  EXPECT_TRUE(E.evalString(Workload, "workload.scm").Ok);
  ProfileOpResult St = E.storeProfile(Path);
  EXPECT_TRUE(St) << St.Error;
  return slurp(Path);
}

TEST(VmCodegen, ProfilesByteIdenticalFusionOnOff) {
  std::string On = storeCodegenProfile(true, TierMode::Always,
                                       tempPath("on.profile"));
  ASSERT_FALSE(On.empty());
  EXPECT_EQ(On, storeCodegenProfile(false, TierMode::Always,
                                    tempPath("off.profile")))
      << "fused dispatches must bump the same counters as their expansion";
  EXPECT_EQ(On, storeCodegenProfile(false, TierMode::Off,
                                    tempPath("interp.profile")))
      << "and the same counters as the tree-walking interpreter";
}

TEST(VmCodegen, ProfilesByteIdenticalFusionOnOffJobs8) {
  // The same invariant across an 8-worker pool merge, the shape
  // `pgmpi run --jobs 8` produces: fused and unfused pools must store
  // byte-identical merged profiles.
  constexpr size_t Jobs = 8;
  auto RunPool = [](bool On, const std::string &Path) {
    EnginePool Pool(Jobs, withCodegen(On, /*Instrument=*/true));
    EnginePool::PoolResult R = Pool.run([](Engine &E, size_t) {
      EvalResult Load = E.evalString(Program, ProgramName);
      if (!Load)
        return Load;
      return E.evalString(Workload, "workload.scm");
    });
    ASSERT_TRUE(R.Ok) << R.Error;
    ProfileOpResult St = Pool.storeMergedProfile(Path);
    ASSERT_TRUE(St) << St.Error;
  };
  std::string OnPath = tempPath("on8.profile");
  std::string OffPath = tempPath("off8.profile");
  RunPool(true, OnPath);
  RunPool(false, OffPath);
  std::string A = slurp(OnPath), B = slurp(OffPath);
  ASSERT_FALSE(A.empty());
  EXPECT_EQ(A, B) << "merged profiles must not depend on VM codegen";
}

//===----------------------------------------------------------------------===//
// Inline caps
//===----------------------------------------------------------------------===//

TEST(VmCodegen, InlineCapFallsBackToGuardedCall) {
  EngineOptions Opts = withCodegen(true, /*Instrument=*/false,
                                   /*Stats=*/true);
  // A cap this small rejects even poly's body; the call site must fall
  // back to an ordinary call and still compute the same value.
  Opts.Tier.InlineMaxOps = 1;
  Engine E(Opts);
  ASSERT_TRUE(E.evalString(Program, ProgramName).Ok);
  std::string Capped = evalOk(E, Workload);
  EXPECT_GE(E.stats().count(Stat::TierInlineFallbacks), 1u)
      << "poly's body exceeds the one-op cap";
  EXPECT_EQ(E.stats().count(Stat::TierInlines), 0u);

  Engine Off(withCodegen(false));
  ASSERT_TRUE(Off.evalString(Program, ProgramName).Ok);
  EXPECT_EQ(Capped, evalOk(Off, Workload));
}

//===----------------------------------------------------------------------===//
// Epoch invalidation
//===----------------------------------------------------------------------===//

TEST(VmCodegen, FusionEpochChangeInvalidatesAndRetiers) {
  Engine E(withCodegen(true, /*Instrument=*/false, /*Stats=*/true));
  ASSERT_TRUE(E.evalString(Program, ProgramName).Ok);
  std::string Expected = evalOk(E, Workload);
  uint64_t TierUpsBefore = E.stats().count(Stat::TierUps);
  ASSERT_GE(TierUpsBefore, 1u);

  // Flip the policy so the backend's next re-selection lands on a
  // different mask (empty, here): the epoch bumps and every body
  // compiled against the old table is dropped.
  Context &Ctx = E.context();
  Ctx.Tier.Fusion = false;
  uint64_t Epoch = Ctx.Backend->fuse(Ctx);
  size_t Dropped = Ctx.Backend->invalidateEpoch(Ctx, Epoch);
  EXPECT_GE(Dropped, 1u);
  EXPECT_GE(E.stats().count(Stat::FusionEpochs), 1u);
  EXPECT_GE(E.stats().count(Stat::TierInvalidations), Dropped);

  // Invalidated lambdas re-tier lazily against the new (empty) table and
  // keep computing the same values.
  EXPECT_EQ(evalOk(E, Workload), Expected);
  EXPECT_GT(E.stats().count(Stat::TierUps), TierUpsBefore)
      << "dropped bodies must re-tier on their next invocation";

  // A second re-selection with unchanged policy is a quiet epoch: the
  // mask is already empty, so nothing is invalidated.
  uint64_t Epoch2 = Ctx.Backend->fuse(Ctx);
  EXPECT_EQ(Epoch2, Epoch);
  EXPECT_EQ(Ctx.Backend->invalidateEpoch(Ctx, Epoch2), 0u);
}

} // namespace
