//===- tests/CliTest.cpp - pgmpi end-to-end exit-code contract ------------===//
//
// Drives the built pgmpi binary (PGMPI_BIN, wired by tests/CMakeLists.txt)
// and pins the documented exit-code contract:
//   0  success
//   1  failure (evaluation error, guard trip, all parallel tasks failed)
//   2  degraded (corrupt profile ignored; or some — not all — parallel
//      tasks failed and the merged profile covers the survivors)
//   64 usage errors (sysexits EX_USAGE, distinguishable from "degraded")
// plus the resource-guard flags and the hidden --inject-fault harness.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <cstdlib>
#include <fstream>
#include <sys/wait.h>

using namespace pgmp::testutil;

namespace {

/// Runs `pgmpi <Args>` with output discarded; returns the exit code, or
/// -1 if the process did not exit normally (signal, spawn failure).
int pgmpi(const std::string &Args) {
  std::string Cmd = std::string(PGMPI_BIN) + " " + Args + " >/dev/null 2>&1";
  int Status = std::system(Cmd.c_str());
  if (Status == -1 || !WIFEXITED(Status))
    return -1;
  return WEXITSTATUS(Status);
}

/// Writes \p Text to a test-unique file and returns its path.
std::string writeScript(const std::string &Suffix, const std::string &Text) {
  std::string Path = tempPath(Suffix);
  std::ofstream Out(Path, std::ios::trunc);
  Out << Text;
  EXPECT_TRUE(Out.good()) << Path;
  return Path;
}

const char *Workload = "(define (hot n) (if (zero? n) 'done (hot (- n 1))))\n"
                       "(hot 50)\n";

TEST(Cli, SuccessExitsZero) {
  EXPECT_EQ(pgmpi("-e '(+ 1 2)'"), 0);
  std::string Script = writeScript("ok.scm", Workload);
  EXPECT_EQ(pgmpi(Script), 0);
}

TEST(Cli, EvaluationErrorExitsOne) {
  EXPECT_EQ(pgmpi("-e '(this-is-unbound)'"), 1);
}

TEST(Cli, UsageErrorsExitSixtyFour) {
  EXPECT_EQ(pgmpi(""), 64) << "no input at all";
  EXPECT_EQ(pgmpi("--no-such-flag -e '(+ 1 2)'"), 64);
  EXPECT_EQ(pgmpi("--fuel 0 -e '(+ 1 2)'"), 64) << "guards need positive N";
  EXPECT_EQ(pgmpi("--fuel banana -e '(+ 1 2)'"), 64);
  EXPECT_EQ(pgmpi("--inject-fault no-such-point -e '(+ 1 2)'"), 64);
  EXPECT_EQ(pgmpi("--tier sideways -e '(+ 1 2)'"), 64);
  std::string Script = writeScript("usage.scm", Workload);
  EXPECT_EQ(pgmpi("run --jobs 2 " + Script), 64) << "run needs --profile-out";
  EXPECT_EQ(pgmpi("run --jobs 0 --profile-out /tmp/x.profile " + Script), 64);
}

TEST(Cli, GuardTripExitsOne) {
  EXPECT_EQ(pgmpi("--fuel 100 -e '(define (sp n) (sp (+ n 1))) (sp 0)'"), 1);
  EXPECT_EQ(pgmpi("--deadline-ms 20 -e '(define (sp n) (sp (+ n 1))) (sp 0)'"),
            1);
  EXPECT_EQ(pgmpi("--max-depth 10 -e "
                  "'(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1))))) "
                  "(sum 1000)'"),
            1);
  // Generous budgets stay out of the way.
  EXPECT_EQ(pgmpi("--fuel 1000000 --max-depth 10000 --deadline-ms 60000 "
                  "-e '(+ 1 2)'"),
            0);
}

TEST(Cli, InjectedFaultExitsOne) {
  EXPECT_EQ(pgmpi("--inject-fault compile -e '(+ 1 2)'"), 1);
  EXPECT_EQ(pgmpi("--inject-fault read -e '(+ 1 2)'"), 1);
  // A skip count beyond every hit means the fault never fires.
  EXPECT_EQ(pgmpi("--inject-fault compile:100 -e '(+ 1 2)'"), 0);
}

TEST(Cli, CorruptProfileInputDegradesToExitTwo) {
  std::string Script = writeScript("work.scm", Workload);
  std::string Garbage = writeScript("bad.profile", "not a profile at all\n");
  // Non-strict: the corrupt profile is ignored with a warning and the run
  // proceeds unoptimized — exit 2 so build scripts can notice.
  EXPECT_EQ(pgmpi("--profile-in " + Garbage + " " + Script), 2);
  // Strict mode promotes the same input to a hard failure.
  EXPECT_EQ(pgmpi("--strict-profile --profile-in " + Garbage + " " + Script),
            1);
}

TEST(Cli, RunJobsStoresMergedProfileAndExitsZero) {
  std::string Script = writeScript("par.scm", Workload);
  std::string Profile = tempPath("merged.profile");
  EXPECT_EQ(pgmpi("run --jobs 2 --profile-out " + Profile + " " + Script), 0);
  EXPECT_EQ(pgmpi("report " + Profile), 0);
  EXPECT_EQ(pgmpi("profile-lint " + Profile), 0);
}

TEST(Cli, RunAllTasksFailedExitsOne) {
  std::string Script = writeScript("bad.scm", "(this-is-unbound)\n");
  std::string Profile = tempPath("none.profile");
  EXPECT_EQ(pgmpi("run --jobs 2 --retries 0 --profile-out " + Profile + " " +
                  Script),
            1);
}

TEST(Cli, RunPartialFailureExitsTwoAndRetrySavesIt) {
  // The injector is one-shot process-wide, so under --jobs 2 exactly one
  // worker consumes the fault. With retries disabled that task is
  // abandoned: the merged profile covers the survivor — exit 2. With the
  // default retry policy the task re-runs on a fresh worker (the fault is
  // spent) and the run is whole — exit 0.
  std::string Script = writeScript("par.scm", Workload);
  std::string Profile = tempPath("partial.profile");
  EXPECT_EQ(pgmpi("run --jobs 2 --retries 0 --inject-fault compile "
                  "--profile-out " +
                  Profile + " " + Script),
            2);
  EXPECT_EQ(pgmpi("report " + Profile), 0) << "survivor profile is usable";
  EXPECT_EQ(pgmpi("run --jobs 2 --inject-fault compile --profile-out " +
                  Profile + " " + Script),
            0);
}

TEST(Cli, RunGuardFlagsGovernWorkers) {
  std::string Script = writeScript("spin.scm",
                                   "(define (sp n) (sp (+ n 1)))\n(sp 0)\n");
  std::string Profile = tempPath("guard.profile");
  // Every worker trips the fuel guard -> all tasks failed -> exit 1.
  EXPECT_EQ(pgmpi("run --jobs 2 --retries 0 --fuel 1000 --profile-out " +
                  Profile + " " + Script),
            1);
}

} // namespace
