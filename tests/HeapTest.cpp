//===- tests/HeapTest.cpp - Arena heap unit tests -------------------------===//
//
// The bump-pointer arena's contracts: every object 8-byte aligned even
// across chunk boundaries, destructors of non-trivially-destructible
// objects run exactly once at teardown, EnvObj inline slots behave like
// the slot vector they replaced (deep chains, oversize frames), and
// per-engine heaps stay independent under concurrent EnginePool workers.
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "core/EnginePool.h"
#include "syntax/Heap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace pgmp;

namespace {

bool isAligned(const void *P) {
  return reinterpret_cast<uintptr_t>(P) % 8 == 0;
}

TEST(Heap, AllKindsStayAlignedAcrossChunkBoundaries) {
  Heap H;
  // Mixed sizes force many chunk crossings: well past 64 KiB of pairs
  // (40 B each), strings (dtor header + std::string), vectors, frames.
  std::vector<const void *> Ptrs;
  for (int I = 0; I < 4000; ++I) {
    Ptrs.push_back(H.cons(Value::fixnum(I), Value::nil()).obj());
    if (I % 3 == 0)
      Ptrs.push_back(H.string(std::string(I % 17, 'x')).obj());
    if (I % 5 == 0)
      Ptrs.push_back(
          H.vector(std::vector<Value>(I % 7, Value::fixnum(I))).obj());
    if (I % 7 == 0)
      Ptrs.push_back(H.hashtable(HashKind::Equal).obj());
    if (I % 11 == 0)
      Ptrs.push_back(H.box(Value::fixnum(I)).obj());
    if (I % 13 == 0) {
      EnvObj *E = H.makeEnv(nullptr, I % 9);
      Ptrs.push_back(E);
      EXPECT_TRUE(isAligned(E->slots()));
    }
  }
  for (const void *P : Ptrs)
    EXPECT_TRUE(isAligned(P));
  EXPECT_GT(H.allocStats().ChunksAcquired, 3u) << "test must cross chunks";
}

/// An Obj subclass with an observable destructor, for exactly-once
/// teardown accounting. The kind tag is arbitrary (never read back).
class DtorProbe : public Obj {
public:
  explicit DtorProbe(int *Count) : Obj(ValueKind::Box), Count(Count) {}
  ~DtorProbe() { ++*Count; }
  int *Count;
};
static_assert(!std::is_trivially_destructible_v<DtorProbe>,
              "probe must travel the destructible side list");

TEST(Heap, BulkDestructionRunsDestructorsExactlyOnce) {
  int Destroyed = 0;
  constexpr int N = 5000; // enough to span several chunks
  {
    Heap H;
    for (int I = 0; I < N; ++I) {
      H.make<DtorProbe>(&Destroyed);
      // Interleave trivially-destructible objects: they must NOT appear
      // on the side list or perturb its walk.
      H.cons(Value::fixnum(I), Value::nil());
    }
    EXPECT_EQ(Destroyed, 0) << "nothing destroyed before heap teardown";
  }
  EXPECT_EQ(Destroyed, N);
}

TEST(Heap, EnvSlotsSurviveDeepChains) {
  Heap H;
  // A deep parent chain with every slot distinct; verify from the leaf
  // that no frame's slots were clobbered by later allocations.
  constexpr int Depth = 2000;
  EnvObj *Frame = nullptr;
  for (int D = 0; D < Depth; ++D) {
    Value Args[3] = {Value::fixnum(D), Value::fixnum(D * 2),
                     Value::fixnum(D * 3)};
    Frame = H.makeEnvFrom(Frame, 3, Args, 3);
    // Unrelated churn between frames, as evaluation produces.
    H.cons(Value::fixnum(D), Value::nil());
  }
  int D = Depth - 1;
  for (EnvObj *F = Frame; F; F = F->Parent, --D) {
    ASSERT_EQ(F->NumSlots, 3u);
    EXPECT_EQ(F->slots()[0].asFixnum(), D);
    EXPECT_EQ(F->slots()[1].asFixnum(), D * 2);
    EXPECT_EQ(F->slots()[2].asFixnum(), D * 3);
  }
  EXPECT_EQ(D, -1);
}

TEST(Heap, MakeEnvFromCopiesPrefixAndVoidsRest) {
  Heap H;
  Value Args[2] = {Value::fixnum(10), Value::fixnum(20)};
  EnvObj *E = H.makeEnvFrom(nullptr, 5, Args, 2);
  EXPECT_EQ(E->slots()[0].asFixnum(), 10);
  EXPECT_EQ(E->slots()[1].asFixnum(), 20);
  for (size_t I = 2; I < 5; ++I)
    EXPECT_TRUE(E->slots()[I].isVoid());
}

TEST(Heap, OversizeEnvGetsDedicatedChunk) {
  Heap H;
  // 64 Ki slots * 16 B ≫ the 64 KiB chunk: must take the oversize path.
  constexpr size_t Slots = 64 * 1024;
  uint64_t ChunksBefore = H.allocStats().ChunksAcquired;
  EnvObj *E = H.makeEnv(nullptr, Slots);
  ASSERT_EQ(E->NumSlots, Slots);
  EXPECT_TRUE(isAligned(E->slots()));
  EXPECT_EQ(H.allocStats().OversizeChunks, 1u);
  EXPECT_EQ(H.allocStats().ChunksAcquired, ChunksBefore + 1);
  E->slots()[0] = Value::fixnum(1);
  E->slots()[Slots - 1] = Value::fixnum(2);
  EXPECT_EQ(E->slots()[0].asFixnum(), 1);
  EXPECT_EQ(E->slots()[Slots - 1].asFixnum(), 2);
  // An oversize allocation must not hijack the bump chunk: small
  // allocations keep succeeding and stay aligned.
  Value V = H.cons(Value::fixnum(3), Value::nil());
  EXPECT_TRUE(isAligned(V.obj()));
}

TEST(Heap, AllocStatsCountObjectsAndBytes) {
  Heap H;
  uint64_t Before = H.numObjects();
  H.cons(Value::fixnum(1), Value::nil());
  H.cons(Value::fixnum(2), Value::nil());
  H.string("s");
  EXPECT_EQ(H.numObjects(), Before + 3);
  const Heap::AllocStats &A = H.allocStats();
  EXPECT_EQ(A.ObjectsByKind[static_cast<size_t>(ValueKind::Pair)], 2u);
  EXPECT_EQ(A.ObjectsByKind[static_cast<size_t>(ValueKind::String)], 1u);
  EXPECT_GE(A.BytesAllocated, 2 * sizeof(Pair) + sizeof(StringObj));
  EXPECT_GE(A.BytesReserved, A.BytesAllocated);
  std::vector<std::pair<std::string, uint64_t>> Rows;
  H.appendStats(Rows);
  ASSERT_GE(Rows.size(), 5u);
  EXPECT_EQ(Rows[0].first, "heap-bytes-allocated");
  EXPECT_EQ(Rows[0].second, A.BytesAllocated);
}

TEST(Heap, KeysInInsertionOrderCached) {
  Heap H;
  HashTable *T = H.hashtable(HashKind::Equal).asHash();
  T->set(Value::fixnum(3), Value::fixnum(30));
  T->set(Value::fixnum(1), Value::fixnum(10));
  T->set(Value::fixnum(2), Value::fixnum(20));
  const std::vector<Value> &K1 = T->keysInInsertionOrder();
  ASSERT_EQ(K1.size(), 3u);
  EXPECT_EQ(K1[0].asFixnum(), 3);
  EXPECT_EQ(K1[1].asFixnum(), 1);
  EXPECT_EQ(K1[2].asFixnum(), 2);
  // Same table shape: the cached list is reused (same storage).
  const std::vector<Value> *P1 = &T->keysInInsertionOrder();
  EXPECT_EQ(P1, &K1);
  // Value update of an existing key is not a structural change.
  T->set(Value::fixnum(1), Value::fixnum(11));
  EXPECT_EQ(&T->keysInInsertionOrder(), P1);
  EXPECT_EQ(T->get(Value::fixnum(1), Value::nil()).asFixnum(), 11);
  // Erase invalidates; order of survivors is preserved.
  ASSERT_TRUE(T->erase(Value::fixnum(1)));
  const std::vector<Value> &K2 = T->keysInInsertionOrder();
  ASSERT_EQ(K2.size(), 2u);
  EXPECT_EQ(K2[0].asFixnum(), 3);
  EXPECT_EQ(K2[1].asFixnum(), 2);
  // Insertion invalidates; the new key appends.
  T->set(Value::fixnum(9), Value::fixnum(90));
  const std::vector<Value> &K3 = T->keysInInsertionOrder();
  ASSERT_EQ(K3.size(), 3u);
  EXPECT_EQ(K3[2].asFixnum(), 9);
}

TEST(Heap, EngineDeepRecursionUsesInlineFrames) {
  Engine E;
  // 40k frames, three live locals each, through the interpreter path —
  // the inline-slot layout must behave exactly like the old vector.
  EvalResult R = E.evalString("(define (sum n acc)\n"
                              "  (if (= n 0) acc (sum (- n 1) (+ acc n))))\n"
                              "(sum 40000 0)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.V.asFixnum(), 40000LL * 40001 / 2);
}

TEST(HeapPool, EightWorkerAllocationInterleavingIsIndependent) {
  // Eight engines allocate concurrently, each on its own heap; the
  // per-engine ownership contract means no sharing, no races (asan/tsan
  // presets run this test), and per-heap stats that add up per worker.
  EnginePool Pool(8);
  ASSERT_EQ(Pool.size(), 8u);
  const char *Prog = "(define (build n acc)\n"
                     "  (if (= n 0) acc (build (- n 1) (cons n acc))))\n"
                     "(length (build 2000 '()))";
  EnginePool::PoolResult R =
      Pool.run([&](Engine &E, size_t) { return E.evalString(Prog); });
  ASSERT_TRUE(R.Ok) << R.Error;
  for (size_t I = 0; I < Pool.size(); ++I) {
    ASSERT_TRUE(R.PerWorker[I].Ok) << R.PerWorker[I].Error;
    EXPECT_EQ(R.PerWorker[I].V.asFixnum(), 2000);
  }
}

} // namespace
