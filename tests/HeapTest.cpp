//===- tests/HeapTest.cpp - Arena heap unit tests -------------------------===//
//
// The bump-pointer arena's contracts: every object 8-byte aligned even
// across chunk boundaries, destructors of non-trivially-destructible
// objects run exactly once at teardown, EnvObj inline slots behave like
// the slot vector they replaced (deep chains, oversize frames), and
// per-engine heaps stay independent under concurrent EnginePool workers.
// The HeapReclaim suite covers generational region reclamation directly:
// evacuation forwarding for every kind across chunk boundaries, shared
// structure and cycles, inline Env slots, exactly-once destruction,
// eq/eqv hash rebuilds, pre-tenuring, and major-cycle accounting.
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "core/EnginePool.h"
#include "syntax/Heap.h"
#include "syntax/SymbolTable.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace pgmp;

namespace {

bool isAligned(const void *P) {
  return reinterpret_cast<uintptr_t>(P) % 8 == 0;
}

TEST(Heap, AllKindsStayAlignedAcrossChunkBoundaries) {
  Heap H;
  // Mixed sizes force many chunk crossings: well past 64 KiB of pairs
  // (40 B each), strings (dtor header + std::string), vectors, frames.
  std::vector<const void *> Ptrs;
  for (int I = 0; I < 4000; ++I) {
    Ptrs.push_back(H.cons(Value::fixnum(I), Value::nil()).obj());
    if (I % 3 == 0)
      Ptrs.push_back(H.string(std::string(I % 17, 'x')).obj());
    if (I % 5 == 0)
      Ptrs.push_back(
          H.vector(std::vector<Value>(I % 7, Value::fixnum(I))).obj());
    if (I % 7 == 0)
      Ptrs.push_back(H.hashtable(HashKind::Equal).obj());
    if (I % 11 == 0)
      Ptrs.push_back(H.box(Value::fixnum(I)).obj());
    if (I % 13 == 0) {
      EnvObj *E = H.makeEnv(nullptr, I % 9);
      Ptrs.push_back(E);
      EXPECT_TRUE(isAligned(E->slots()));
    }
  }
  for (const void *P : Ptrs)
    EXPECT_TRUE(isAligned(P));
  EXPECT_GT(H.allocStats().ChunksAcquired, 3u) << "test must cross chunks";
}

/// An Obj subclass with an observable destructor, for exactly-once
/// teardown accounting. The kind tag is arbitrary (never read back).
class DtorProbe : public Obj {
public:
  explicit DtorProbe(int *Count) : Obj(ValueKind::Box), Count(Count) {}
  ~DtorProbe() { ++*Count; }
  int *Count;
};
static_assert(!std::is_trivially_destructible_v<DtorProbe>,
              "probe must travel the destructible side list");

TEST(Heap, BulkDestructionRunsDestructorsExactlyOnce) {
  int Destroyed = 0;
  constexpr int N = 5000; // enough to span several chunks
  {
    Heap H;
    for (int I = 0; I < N; ++I) {
      H.make<DtorProbe>(&Destroyed);
      // Interleave trivially-destructible objects: they must NOT appear
      // on the side list or perturb its walk.
      H.cons(Value::fixnum(I), Value::nil());
    }
    EXPECT_EQ(Destroyed, 0) << "nothing destroyed before heap teardown";
  }
  EXPECT_EQ(Destroyed, N);
}

TEST(Heap, EnvSlotsSurviveDeepChains) {
  Heap H;
  // A deep parent chain with every slot distinct; verify from the leaf
  // that no frame's slots were clobbered by later allocations.
  constexpr int Depth = 2000;
  EnvObj *Frame = nullptr;
  for (int D = 0; D < Depth; ++D) {
    Value Args[3] = {Value::fixnum(D), Value::fixnum(D * 2),
                     Value::fixnum(D * 3)};
    Frame = H.makeEnvFrom(Frame, 3, Args, 3);
    // Unrelated churn between frames, as evaluation produces.
    H.cons(Value::fixnum(D), Value::nil());
  }
  int D = Depth - 1;
  for (EnvObj *F = Frame; F; F = F->Parent, --D) {
    ASSERT_EQ(F->NumSlots, 3u);
    EXPECT_EQ(F->slots()[0].asFixnum(), D);
    EXPECT_EQ(F->slots()[1].asFixnum(), D * 2);
    EXPECT_EQ(F->slots()[2].asFixnum(), D * 3);
  }
  EXPECT_EQ(D, -1);
}

TEST(Heap, MakeEnvFromCopiesPrefixAndVoidsRest) {
  Heap H;
  Value Args[2] = {Value::fixnum(10), Value::fixnum(20)};
  EnvObj *E = H.makeEnvFrom(nullptr, 5, Args, 2);
  EXPECT_EQ(E->slots()[0].asFixnum(), 10);
  EXPECT_EQ(E->slots()[1].asFixnum(), 20);
  for (size_t I = 2; I < 5; ++I)
    EXPECT_TRUE(E->slots()[I].isVoid());
}

TEST(Heap, OversizeEnvGetsDedicatedChunk) {
  Heap H;
  // 64 Ki slots * 16 B ≫ the 64 KiB chunk: must take the oversize path.
  constexpr size_t Slots = 64 * 1024;
  uint64_t ChunksBefore = H.allocStats().ChunksAcquired;
  EnvObj *E = H.makeEnv(nullptr, Slots);
  ASSERT_EQ(E->NumSlots, Slots);
  EXPECT_TRUE(isAligned(E->slots()));
  EXPECT_EQ(H.allocStats().OversizeChunks, 1u);
  EXPECT_EQ(H.allocStats().ChunksAcquired, ChunksBefore + 1);
  E->slots()[0] = Value::fixnum(1);
  E->slots()[Slots - 1] = Value::fixnum(2);
  EXPECT_EQ(E->slots()[0].asFixnum(), 1);
  EXPECT_EQ(E->slots()[Slots - 1].asFixnum(), 2);
  // An oversize allocation must not hijack the bump chunk: small
  // allocations keep succeeding and stay aligned.
  Value V = H.cons(Value::fixnum(3), Value::nil());
  EXPECT_TRUE(isAligned(V.obj()));
}

TEST(Heap, AllocStatsCountObjectsAndBytes) {
  Heap H;
  uint64_t Before = H.numObjects();
  H.cons(Value::fixnum(1), Value::nil());
  H.cons(Value::fixnum(2), Value::nil());
  H.string("s");
  EXPECT_EQ(H.numObjects(), Before + 3);
  const Heap::AllocStats &A = H.allocStats();
  EXPECT_EQ(A.ObjectsByKind[static_cast<size_t>(ValueKind::Pair)], 2u);
  EXPECT_EQ(A.ObjectsByKind[static_cast<size_t>(ValueKind::String)], 1u);
  EXPECT_GE(A.BytesAllocated, 2 * sizeof(Pair) + sizeof(StringObj));
  EXPECT_GE(A.BytesReserved, A.BytesAllocated);
  std::vector<std::pair<std::string, uint64_t>> Rows;
  H.appendStats(Rows);
  ASSERT_GE(Rows.size(), 5u);
  EXPECT_EQ(Rows[0].first, "heap-bytes-allocated");
  EXPECT_EQ(Rows[0].second, A.BytesAllocated);
}

TEST(Heap, KeysInInsertionOrderCached) {
  Heap H;
  HashTable *T = H.hashtable(HashKind::Equal).asHash();
  T->set(Value::fixnum(3), Value::fixnum(30));
  T->set(Value::fixnum(1), Value::fixnum(10));
  T->set(Value::fixnum(2), Value::fixnum(20));
  const std::vector<Value> &K1 = T->keysInInsertionOrder();
  ASSERT_EQ(K1.size(), 3u);
  EXPECT_EQ(K1[0].asFixnum(), 3);
  EXPECT_EQ(K1[1].asFixnum(), 1);
  EXPECT_EQ(K1[2].asFixnum(), 2);
  // Same table shape: the cached list is reused (same storage).
  const std::vector<Value> *P1 = &T->keysInInsertionOrder();
  EXPECT_EQ(P1, &K1);
  // Value update of an existing key is not a structural change.
  T->set(Value::fixnum(1), Value::fixnum(11));
  EXPECT_EQ(&T->keysInInsertionOrder(), P1);
  EXPECT_EQ(T->get(Value::fixnum(1), Value::nil()).asFixnum(), 11);
  // Erase invalidates; order of survivors is preserved.
  ASSERT_TRUE(T->erase(Value::fixnum(1)));
  const std::vector<Value> &K2 = T->keysInInsertionOrder();
  ASSERT_EQ(K2.size(), 2u);
  EXPECT_EQ(K2[0].asFixnum(), 3);
  EXPECT_EQ(K2[1].asFixnum(), 2);
  // Insertion invalidates; the new key appends.
  T->set(Value::fixnum(9), Value::fixnum(90));
  const std::vector<Value> &K3 = T->keysInInsertionOrder();
  ASSERT_EQ(K3.size(), 3u);
  EXPECT_EQ(K3[2].asFixnum(), 9);
}

TEST(Heap, EngineDeepRecursionUsesInlineFrames) {
  Engine E;
  // 40k frames, three live locals each, through the interpreter path —
  // the inline-slot layout must behave exactly like the old vector.
  EvalResult R = E.evalString("(define (sum n acc)\n"
                              "  (if (= n 0) acc (sum (- n 1) (+ acc n))))\n"
                              "(sum 40000 0)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.V.asFixnum(), 40000LL * 40001 / 2);
}

//===----------------------------------------------------------------------===//
// Region reclamation: evacuation, forwarding, destructor discipline
//===----------------------------------------------------------------------===//

TEST(HeapReclaim, EvacuationForwardsAllKindsAcrossChunkBoundaries) {
  Heap H;
  // Live data of every syntax/-owned kind, interleaved with enough
  // garbage that the live set spans several chunks and every evacuation
  // crosses chunk boundaries.
  std::vector<Value> Roots;
  for (int I = 0; I < 3000; ++I) {
    Roots.push_back(
        H.cons(Value::fixnum(I), H.string("s" + std::to_string(I))));
    if (I % 5 == 0)
      Roots.push_back(H.vector({Value::fixnum(I), Value::fixnum(I + 1)}));
    if (I % 7 == 0)
      Roots.push_back(H.box(Value::fixnum(-I)));
    for (int G = 0; G < 8; ++G)
      H.cons(Value::fixnum(G), Value::nil()); // garbage
  }
  uint64_t LiveBefore = H.bytesLive();
  const void *OldFirst = Roots[0].obj();
  Heap::ReclaimResult R = H.collect([&](GcVisitor &V) {
    for (Value &Root : Roots)
      V.value(Root);
  });
  EXPECT_FALSE(R.Aborted);
  EXPECT_GT(R.BytesReclaimed, 0u);
  EXPECT_GT(R.ObjectsEvacuated, 3000u);
  EXPECT_EQ(H.nurseryBytes(), 0u) << "nursery fully reclaimed";
  EXPECT_LT(H.bytesLive(), LiveBefore);
  EXPECT_NE(Roots[0].obj(), OldFirst) << "live objects must have moved";
  size_t Idx = 0;
  for (int I = 0; I < 3000; ++I) {
    Value P = Roots[Idx++];
    ASSERT_TRUE(P.isPair());
    EXPECT_EQ(P.asPair()->Car.asFixnum(), I);
    EXPECT_EQ(P.asPair()->Cdr.asString()->Text, "s" + std::to_string(I));
    if (I % 5 == 0) {
      VectorObj *V = Roots[Idx++].asVector();
      ASSERT_EQ(V->Elems.size(), 2u);
      EXPECT_EQ(V->Elems[0].asFixnum(), I);
      EXPECT_EQ(V->Elems[1].asFixnum(), I + 1);
    }
    if (I % 7 == 0)
      EXPECT_EQ(Roots[Idx++].asBox()->Boxed.asFixnum(), -I);
  }
}

TEST(HeapReclaim, SharedStructureAndIdentitySurviveEvacuation) {
  Heap H;
  // Two roots into the same pair, plus a cycle: forwarding must preserve
  // object identity (eq?-ness) and terminate on cyclic reachability.
  Value Shared = H.cons(Value::fixnum(1), Value::nil());
  Value A = H.cons(Shared, Shared);
  Value Cycle = H.cons(Value::fixnum(2), Value::nil());
  Cycle.asPair()->Cdr = Cycle; // self-cycle
  std::vector<Value> Roots{Shared, A, Cycle};
  Heap::ReclaimResult R =
      H.collect([&](GcVisitor &V) {
        for (Value &Root : Roots)
          V.value(Root);
      });
  EXPECT_FALSE(R.Aborted);
  EXPECT_EQ(Roots[1].asPair()->Car.obj(), Roots[0].obj())
      << "shared structure must stay shared";
  EXPECT_EQ(Roots[1].asPair()->Cdr.obj(), Roots[0].obj());
  EXPECT_EQ(Roots[2].asPair()->Cdr.obj(), Roots[2].obj())
      << "cycles must forward to themselves";
  EXPECT_EQ(Roots[2].asPair()->Car.asFixnum(), 2);
}

TEST(HeapReclaim, EnvInlineSlotsEvacuateWithTheFrame) {
  Heap H;
  // A deep frame chain: EnvObj's inline variable-size slot layout must be
  // copied slot-for-slot, parent links rewritten across chunk crossings.
  constexpr int Depth = 1500;
  EnvObj *Frame = nullptr;
  for (int D = 0; D < Depth; ++D) {
    Value Args[3] = {Value::fixnum(D), Value::fixnum(D * 2),
                     H.string(std::to_string(D))};
    Frame = H.makeEnvFrom(Frame, 3, Args, 3);
    for (int G = 0; G < 4; ++G)
      H.cons(Value::fixnum(G), Value::nil()); // garbage between frames
  }
  Heap::ReclaimResult R =
      H.collect([&](GcVisitor &V) { V.ptr(Frame); });
  EXPECT_FALSE(R.Aborted);
  EXPECT_EQ(H.nurseryBytes(), 0u);
  int D = Depth - 1;
  for (EnvObj *F = Frame; F; F = F->Parent, --D) {
    ASSERT_EQ(F->NumSlots, 3u);
    EXPECT_EQ(F->slots()[0].asFixnum(), D);
    EXPECT_EQ(F->slots()[1].asFixnum(), D * 2);
    EXPECT_EQ(F->slots()[2].asString()->Text, std::to_string(D));
  }
  EXPECT_EQ(D, -1);
}

TEST(HeapReclaim, DestructiblesRunExactlyOnceAcrossEvacuation) {
  // Strings are the destructible kind allocated in bulk: evacuation
  // move-constructs the copy onto the tenured destructor list and leaves
  // the moved-from shell on the nursery list, so every object is
  // destructed exactly once — shells when the region drops, survivors at
  // teardown (ASan runs this test via tier1.sh and would catch a double
  // destruction or a leak).
  Heap H;
  std::vector<Value> Keep;
  for (int I = 0; I < 2000; ++I) {
    Value S = H.string(std::string(64, static_cast<char>('a' + I % 26)));
    if (I % 10 == 0)
      Keep.push_back(S); // the rest is garbage
  }
  Heap::ReclaimResult R = H.collect([&](GcVisitor &V) {
    for (Value &Root : Keep)
      V.value(Root);
  });
  EXPECT_FALSE(R.Aborted);
  for (size_t I = 0; I < Keep.size(); ++I)
    EXPECT_EQ(Keep[I].asString()->Text,
              std::string(64, static_cast<char>('a' + (10 * I) % 26)));
  // Survivors survive a second, major cycle too — and are destructed at
  // heap teardown, not before.
  Heap::ReclaimResult R2 = H.collect(
      [&](GcVisitor &V) {
        for (Value &Root : Keep)
          V.value(Root);
      },
      /*ForceMajor=*/true);
  EXPECT_TRUE(R2.Major);
  EXPECT_EQ(Keep.front().asString()->Text, std::string(64, 'a'));
}

TEST(HeapReclaim, HashTablesRehashToForwardedKeys) {
  Heap H;
  // Heap-object keys hash by pointer under eq/eqv; evacuation moves them,
  // so the collection must rebuild the table around the new addresses
  // and preserve insertion order.
  Value T = H.hashtable(HashKind::Eqv);
  std::vector<Value> Keys;
  for (int I = 0; I < 100; ++I) {
    Value K = H.cons(Value::fixnum(I), Value::nil());
    Keys.push_back(K);
    T.asHash()->set(K, Value::fixnum(I * 10));
  }
  for (int I = 0; I < 5000; ++I)
    H.cons(Value::fixnum(I), Value::nil()); // garbage
  Heap::ReclaimResult R = H.collect([&](GcVisitor &V) {
    V.value(T);
    for (Value &K : Keys)
      V.value(K);
  });
  EXPECT_FALSE(R.Aborted);
  for (int I = 0; I < 100; ++I) {
    EXPECT_TRUE(T.asHash()->contains(Keys[I]))
        << "key " << I << " must be findable at its forwarded address";
    EXPECT_EQ(T.asHash()->get(Keys[I], Value::nil()).asFixnum(), I * 10);
  }
  const std::vector<Value> &Order = T.asHash()->keysInInsertionOrder();
  ASSERT_EQ(Order.size(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Order[I].obj(), Keys[I].obj()) << "insertion order preserved";
}

TEST(HeapReclaim, PreTenuredSitesAllocateStraightToTenured) {
  Heap H;
  Heap::ReclaimPolicy P;
  P.PreTenure[static_cast<size_t>(AllocSite::PrimList)] = true;
  H.setReclaimPolicy(P);
  uint64_t TenuredBefore = H.tenuredBytes();
  Value V = H.cons(Value::fixnum(1), Value::nil(), AllocSite::PrimList);
  EXPECT_GT(H.tenuredBytes(), TenuredBefore);
  const AllocSiteStats &SS =
      H.siteStats()[static_cast<size_t>(AllocSite::PrimList)];
  EXPECT_EQ(SS.TenuredAllocs, 1u);
  // Nursery-routed sites are unaffected.
  H.cons(Value::fixnum(2), Value::nil(), AllocSite::PrimVector);
  EXPECT_GT(H.nurseryBytes(), 0u);
  // The pre-tenured object is not in from-space: a collection with it as
  // the only root must not move it.
  const void *Before = V.obj();
  H.collect([&](GcVisitor &Vis) { Vis.value(V); });
  EXPECT_EQ(V.obj(), Before);
}

TEST(HeapReclaim, MajorCycleDropsTenuredGarbageAndCountsSurvivalOnce) {
  Heap H;
  // Round 1: some data survives a minor cycle into tenured space.
  std::vector<Value> Keep;
  for (int I = 0; I < 500; ++I) {
    Value V = H.cons(Value::fixnum(I), Value::nil());
    if (I % 2 == 0)
      Keep.push_back(V);
  }
  H.collect([&](GcVisitor &V) {
    for (Value &Root : Keep)
      V.value(Root);
  });
  uint64_t TenuredAfterMinor = H.tenuredBytes();
  ASSERT_GT(TenuredAfterMinor, 0u);
  const AllocSiteStats &SS =
      H.siteStats()[static_cast<size_t>(AllocSite::Unknown)];
  uint64_t SurvivedAfterMinor = SS.Survived;
  EXPECT_EQ(SurvivedAfterMinor, 250u);
  // Round 2: drop half the survivors and force a major cycle. Tenured
  // garbage is reclaimed, and re-evacuating the still-live half must NOT
  // re-earn Survived credit (rates would inflate past 100%).
  Keep.resize(125);
  Heap::ReclaimResult R = H.collect(
      [&](GcVisitor &V) {
        for (Value &Root : Keep)
          V.value(Root);
      },
      /*ForceMajor=*/true);
  EXPECT_TRUE(R.Major);
  EXPECT_LT(H.tenuredBytes(), TenuredAfterMinor)
      << "dead tenured objects must be dropped by a major cycle";
  EXPECT_EQ(SS.Survived, SurvivedAfterMinor)
      << "re-evacuation during a major cycle is not a new survival";
  for (int I = 0; I < 125; ++I)
    EXPECT_EQ(Keep[I].asPair()->Car.asFixnum(), I * 2);
}

TEST(HeapReclaim, SymbolsAreStableAcrossCollection) {
  Heap H;
  SymbolTable Syms;
  Symbol *S = Syms.intern("stable");
  Value Holder = H.cons(Value::object(ValueKind::Symbol, S), Value::nil());
  H.collect([&](GcVisitor &V) { V.value(Holder); });
  EXPECT_EQ(Holder.asPair()->Car.asSymbol(), S)
      << "table-owned symbols never move";
}

TEST(HeapPool, EightWorkerAllocationInterleavingIsIndependent) {
  // Eight engines allocate concurrently, each on its own heap; the
  // per-engine ownership contract means no sharing, no races (asan/tsan
  // presets run this test), and per-heap stats that add up per worker.
  EnginePool Pool(8);
  ASSERT_EQ(Pool.size(), 8u);
  const char *Prog = "(define (build n acc)\n"
                     "  (if (= n 0) acc (build (- n 1) (cons n acc))))\n"
                     "(length (build 2000 '()))";
  EnginePool::PoolResult R =
      Pool.run([&](Engine &E, size_t) { return E.evalString(Prog); });
  ASSERT_TRUE(R.Ok) << R.Error;
  for (size_t I = 0; I < Pool.size(); ++I) {
    ASSERT_TRUE(R.PerWorker[I].Ok) << R.PerWorker[I].Error;
    EXPECT_EQ(R.PerWorker[I].V.asFixnum(), 2000);
  }
}

} // namespace
