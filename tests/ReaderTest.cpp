//===- tests/ReaderTest.cpp - Reader/lexer unit & property tests ----------===//

#include "profile/SourceObject.h"
#include "reader/Reader.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "syntax/Writer.h"

#include <gtest/gtest.h>

using namespace pgmp;

namespace {

struct ReaderFixture : ::testing::Test {
  Heap H;
  SymbolTable ST;
  SourceObjectTable SOT;

  Value readOne(const std::string &Text) {
    Reader R(H, ST, SOT, Text, "test.scm");
    auto V = R.readOne();
    EXPECT_TRUE(V.has_value()) << "no datum in: " << Text;
    return *V;
  }

  std::string readAsDatum(const std::string &Text) {
    WriteOptions Opts;
    Opts.SyntaxAsDatum = true;
    return writeValue(readOne(Text), Opts);
  }

  std::string readError(const std::string &Text) {
    try {
      Reader R(H, ST, SOT, Text, "test.scm");
      R.readAll();
    } catch (const SchemeError &E) {
      return E.render();
    }
    ADD_FAILURE() << "expected a reader error for: " << Text;
    return "";
  }
};

TEST_F(ReaderFixture, Atoms) {
  EXPECT_EQ(readAsDatum("42"), "42");
  EXPECT_EQ(readAsDatum("-17"), "-17");
  EXPECT_EQ(readAsDatum("2.5"), "2.5");
  EXPECT_EQ(readAsDatum("-1e3"), "-1e+03"); // shortest round-trip form
  EXPECT_EQ(readAsDatum(".5"), "0.5");
  EXPECT_EQ(readAsDatum("#t"), "#t");
  EXPECT_EQ(readAsDatum("#f"), "#f");
  EXPECT_EQ(readAsDatum("hello"), "hello");
  EXPECT_EQ(readAsDatum("set!"), "set!");
  EXPECT_EQ(readAsDatum("..."), "...");
  EXPECT_EQ(readAsDatum("\"hi\\n\""), "\"hi\\n\"");
  EXPECT_EQ(readAsDatum("#\\a"), "#\\a");
  EXPECT_EQ(readAsDatum("#\\space"), "#\\space");
  EXPECT_EQ(readAsDatum("#\\newline"), "#\\newline");
  EXPECT_EQ(readAsDatum("#\\("), "#\\(");
}

TEST_F(ReaderFixture, SymbolsVsNumbers) {
  EXPECT_EQ(readAsDatum("+"), "+");
  EXPECT_EQ(readAsDatum("-"), "-");
  EXPECT_EQ(readAsDatum("1+"), "1+");
  EXPECT_EQ(readAsDatum("a.b"), "a.b");
}

TEST_F(ReaderFixture, ListsAndNesting) {
  EXPECT_EQ(readAsDatum("(1 2 3)"), "(1 2 3)");
  EXPECT_EQ(readAsDatum("()"), "()");
  EXPECT_EQ(readAsDatum("(a (b (c)) d)"), "(a (b (c)) d)");
  EXPECT_EQ(readAsDatum("[a b]"), "(a b)");
  EXPECT_EQ(readAsDatum("(1 . 2)"), "(1 . 2)");
  EXPECT_EQ(readAsDatum("(1 2 . 3)"), "(1 2 . 3)");
  EXPECT_EQ(readAsDatum("#(1 2 3)"), "#(1 2 3)");
}

TEST_F(ReaderFixture, Abbreviations) {
  EXPECT_EQ(readAsDatum("'x"), "'x");
  EXPECT_EQ(readAsDatum("`x"), "`x");
  EXPECT_EQ(readAsDatum(",x"), ",x");
  EXPECT_EQ(readAsDatum(",@x"), ",@x");
  EXPECT_EQ(readAsDatum("#'x"), "(syntax x)");
  EXPECT_EQ(readAsDatum("#`x"), "(quasisyntax x)");
  EXPECT_EQ(readAsDatum("#,x"), "(unsyntax x)");
  EXPECT_EQ(readAsDatum("#,@x"), "(unsyntax-splicing x)");
}

TEST_F(ReaderFixture, Comments) {
  EXPECT_EQ(readAsDatum("; hi\n42"), "42");
  EXPECT_EQ(readAsDatum("#| block #| nested |# |# 7"), "7");
  EXPECT_EQ(readAsDatum("#;(skipped datum) 9"), "9");
  EXPECT_EQ(readAsDatum("(1 #;2 3)"), "(1 3)");
}

TEST_F(ReaderFixture, SourceObjectsAttached) {
  Value V = readOne("  (foo bar)");
  ASSERT_TRUE(V.isSyntax());
  const SourceObject *Src = V.asSyntax()->Src;
  ASSERT_NE(Src, nullptr);
  EXPECT_EQ(Src->File, "test.scm");
  EXPECT_EQ(Src->BeginOffset, 2u);
  EXPECT_EQ(Src->EndOffset, 11u);
  EXPECT_EQ(Src->Line, 1u);
  EXPECT_EQ(Src->Column, 3u);

  // Elements carry their own, narrower source objects.
  Value Inner = syntaxE(V);
  ASSERT_TRUE(Inner.isPair());
  const SourceObject *FooSrc = Inner.asPair()->Car.asSyntax()->Src;
  EXPECT_EQ(FooSrc->BeginOffset, 3u);
  EXPECT_EQ(FooSrc->EndOffset, 6u);
}

TEST_F(ReaderFixture, DistinctOccurrencesDistinctPoints) {
  // Two occurrences of the same symbol get different profile points
  // (Section 3.1: "flag and email appear multiple times, but each
  // occurrence is associated with a different profile point").
  Value V = readOne("(f x x)");
  auto Elems = listToVector(syntaxE(V));
  ASSERT_EQ(Elems.size(), 3u);
  EXPECT_NE(Elems[1].asSyntax()->Src, Elems[2].asSyntax()->Src);
}

TEST_F(ReaderFixture, LineColumnTracking) {
  Reader R(H, ST, SOT, "a\n  b", "test.scm");
  auto A = R.readOne();
  auto B = R.readOne();
  ASSERT_TRUE(A && B);
  EXPECT_EQ((*A).asSyntax()->Src->Line, 1u);
  EXPECT_EQ((*B).asSyntax()->Src->Line, 2u);
  EXPECT_EQ((*B).asSyntax()->Src->Column, 3u);
}

TEST_F(ReaderFixture, Errors) {
  EXPECT_NE(readError("(1 2"), "");
  EXPECT_NE(readError(")"), "");
  EXPECT_NE(readError("(1 . )"), "");
  EXPECT_NE(readError("(. 2)"), "");
  EXPECT_NE(readError("(1 . 2 3)"), "");
  EXPECT_NE(readError("\"unterminated"), "");
  EXPECT_NE(readError("#\\nosuchchar"), "");
  EXPECT_NE(readError("#q"), "");
  EXPECT_NE(readError("#(1 . 2)"), "");
  EXPECT_NE(readError("#|"), "");
  EXPECT_NE(readError("'"), "");
  EXPECT_NE(readError("#true"), "");
}

TEST_F(ReaderFixture, ErrorsCarryLocation) {
  std::string E = readError("(a\n  b\n  \"oops");
  EXPECT_NE(E.find("test.scm:3"), std::string::npos) << E;
}

//===----------------------------------------------------------------------===//
// Property test: write(read(write(datum))) is stable for random datums.
//===----------------------------------------------------------------------===//

class RoundTrip : public ReaderFixture,
                  public ::testing::WithParamInterface<int> {};

std::string randomDatumText(Rng &R, int Depth) {
  switch (Depth <= 0 ? R.below(5) : R.below(7)) {
  case 0:
    return std::to_string(static_cast<int64_t>(R.below(2000)) - 1000);
  case 1:
    return R.chance(0.5) ? "#t" : "#f";
  case 2: {
    const char *Syms[] = {"foo", "bar-baz", "set!", "x", "list->vector",
                          "+", "a1"};
    return Syms[R.below(7)];
  }
  case 3:
    return "\"s" + std::to_string(R.below(100)) + "\"";
  case 4: {
    const char *Chars[] = {"#\\a", "#\\space", "#\\0", "#\\newline"};
    return Chars[R.below(4)];
  }
  case 5: {
    size_t N = R.below(4);
    std::string Out = "(";
    for (size_t I = 0; I < N; ++I) {
      if (I)
        Out += " ";
      Out += randomDatumText(R, Depth - 1);
    }
    Out += ")";
    return Out;
  }
  default: {
    size_t N = R.below(3);
    std::string Out = "#(";
    for (size_t I = 0; I < N; ++I) {
      if (I)
        Out += " ";
      Out += randomDatumText(R, Depth - 1);
    }
    Out += ")";
    return Out;
  }
  }
}

TEST_P(RoundTrip, WriteReadWriteIsStable) {
  Rng R(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  for (int I = 0; I < 40; ++I) {
    std::string Text = randomDatumText(R, 4);
    std::string Once = readAsDatum(Text);
    std::string Twice = readAsDatum(Once);
    EXPECT_EQ(Once, Twice) << "original: " << Text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip, ::testing::Range(0, 8));

} // namespace
