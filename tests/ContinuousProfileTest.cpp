//===- tests/ContinuousProfileTest.cpp - ProfileBus & re-tiering ---------===//
///
/// The continuous profiling service: epoch versioning, decay, concurrent
/// publish/query safety (TSan), merge fidelity across epoch boundaries,
/// online re-tiering under a skew flip, and the unified ProfileSession
/// lifecycle.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/EnginePool.h"
#include "core/ProfileSession.h"
#include "profile/ProfileBus.h"
#include "support/AtomicFile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

BusPointKey key(const char *File, uint32_t Begin = 0, uint32_t End = 1) {
  BusPointKey K;
  K.File = File;
  K.Begin = Begin;
  K.End = End;
  return K;
}

std::string slurp(const std::string &Path) {
  std::string Bytes, Err;
  EXPECT_EQ(readFileAll(Path, Bytes, Err), FileReadStatus::Ok) << Err;
  return Bytes;
}

/// Two recursive workers whose relative hotness the tests flip.
constexpr const char *WorkDefs =
    "(define (work-a n) (if (= n 0) 0 (+ 1 (work-a (- n 1)))))\n"
    "(define (work-b n) (if (= n 0) 0 (+ 2 (work-b (- n 1)))))\n";

} // namespace

//===----------------------------------------------------------------------===//
// Bus-level behavior
//===----------------------------------------------------------------------===//

TEST(ContinuousProfile, BusVersionsStrictlyMonotonic) {
  ProfileBusOptions BO;
  BO.DecayHalfLife = 1.0; // fast decay: the skew flip must churn the hot set
  BO.RetierThreshold = 0.25;
  BO.HotSetK = 4;
  ProfileBus Bus(BO);
  uint64_t Pub = Bus.addPublisher();

  uint64_t Last = 0, A = 0, B = 0;
  for (int Round = 0; Round < 40; ++Round) {
    (Round < 20 ? A : B) += 1000; // hotness flips at round 20
    uint64_t V =
        Bus.publish(Pub, {{key("a.scm"), A}, {key("b.scm"), B}});
    // Versions never move backwards, and the version a publish returns is
    // exactly what a subscriber polls.
    EXPECT_GE(V, Last);
    EXPECT_EQ(V, Bus.version());
    if (std::shared_ptr<const ProfileEpoch> E = Bus.epoch())
      EXPECT_EQ(E->Version, V);
    Last = V;
  }
  // At least the initial epoch and the flip epoch, and every version bump
  // corresponds to exactly one published epoch.
  EXPECT_GE(Bus.version(), 2u);
  EXPECT_EQ(Bus.epochsPublished(), Bus.version());
  EXPECT_EQ(Bus.publishes(), 40u);
}

TEST(ContinuousProfile, DecayedWeightNeverResurrectsStaleHot) {
  ProfileBusOptions BO;
  BO.DecayHalfLife = 2.0;
  BO.RetierThreshold = 0.1;
  BO.HotSetK = 4;
  ProfileBus Bus(BO);
  uint64_t Pub = Bus.addPublisher();

  // Phase 1: only A is hit.
  uint64_t A = 0;
  for (int Round = 0; Round < 10; ++Round) {
    A += 1000;
    Bus.publish(Pub, {{key("a.scm"), A}});
  }
  auto WeightOfA = [&]() -> double {
    std::shared_ptr<const ProfileEpoch> E = Bus.epoch();
    EXPECT_TRUE(E);
    for (const ProfileEpochRow &R : E->Rows)
      if (R.Key == key("a.scm"))
        return R.Weight;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(WeightOfA(), 1.0); // A is the hottest point

  // Phase 2: A goes silent. A fresh dominant point each round keeps the
  // hot set churning, so every round publishes an epoch through which A's
  // decay is observable. A's weight must fall monotonically — a stale hot
  // mark can never be resurrected by decay alone, only by fresh hits.
  double Prev = 1.0;
  for (int Round = 0; Round < 30; ++Round) {
    std::string Fresh = "hot" + std::to_string(Round) + ".scm";
    Bus.publish(Pub,
                {{key("a.scm"), A}, {key(Fresh.c_str()), 10000}});
    double W = WeightOfA();
    EXPECT_LE(W, Prev) << "stale point gained weight at round " << Round;
    Prev = W;
  }
  EXPECT_LT(Prev, 0.05); // well below the default TierHotWeight
}

TEST(ContinuousProfile, CounterResetRebasesInsteadOfUnderflowing) {
  ProfileBus Bus;
  uint64_t Pub = Bus.addPublisher();
  Bus.publish(Pub, {{key("a.scm"), 1000}});
  // The engine folded its counters: cumulative totals restart from a
  // lower value. The bus must treat the whole new total as the delta, not
  // compute a wrapped-around difference. (Point b enters hot, churning
  // the hot set so a fresh epoch carries the re-based count.)
  Bus.publish(Pub, {{key("a.scm"), 40}, {key("b.scm"), 5000}});
  std::shared_ptr<const ProfileEpoch> E = Bus.epoch();
  ASSERT_TRUE(E);
  ASSERT_EQ(E->Rows.size(), 2u);
  uint64_t CountA = 0;
  for (const ProfileEpochRow &R : E->Rows)
    if (R.Key == key("a.scm"))
      CountA = R.Count;
  EXPECT_EQ(CountA, 1040u);
}

TEST(ContinuousProfile, PublishDuringQueryNeverTears) {
  ProfileBusOptions BO;
  BO.DecayHalfLife = 1.0;
  BO.RetierThreshold = 0.1; // churn often: many epochs under the reader
  BO.HotSetK = 2;
  ProfileBus Bus(BO);
  uint64_t Pub = Bus.addPublisher();

  std::atomic<bool> Stop{false};
  std::thread Reader([&Bus, &Stop] {
    uint64_t Seen = 0;
    while (!Stop.load(std::memory_order_acquire)) {
      uint64_t V = Bus.version();
      EXPECT_GE(V, Seen); // monotonic from the subscriber's seat
      Seen = V;
      if (std::shared_ptr<const ProfileEpoch> E = Bus.epoch()) {
        // An epoch is immutable and internally consistent no matter when
        // it is fetched: normalized weights, hottest row exactly 1.0.
        EXPECT_GE(E->Version, 1u);
        double Max = 0;
        for (const ProfileEpochRow &R : E->Rows) {
          EXPECT_GE(R.Weight, 0.0);
          EXPECT_LE(R.Weight, 1.0);
          Max = std::max(Max, R.Weight);
        }
        if (!E->Rows.empty())
          EXPECT_DOUBLE_EQ(Max, 1.0);
      }
    }
  });

  // Rotate hotness across four points so the hot set keeps churning.
  uint64_t Totals[4] = {0, 0, 0, 0};
  const char *Files[4] = {"p0.scm", "p1.scm", "p2.scm", "p3.scm"};
  for (int Round = 0; Round < 2000; ++Round) {
    Totals[Round / 100 % 4] += 500;
    ProfileBus::TotalsRows T;
    for (int I = 0; I < 4; ++I)
      T.emplace_back(key(Files[I]), Totals[I]);
    Bus.publish(Pub, T);
  }
  Stop.store(true, std::memory_order_release);
  Reader.join();
  EXPECT_GE(Bus.epochsPublished(), 2u);
}

//===----------------------------------------------------------------------===//
// Merge fidelity
//===----------------------------------------------------------------------===//

TEST(ContinuousProfile, EpochBoundaryMergeByteIdentical) {
  // The same instrumented workload, once with the bus off and once with
  // continuous profiling publishing (and re-tiering) throughout. The
  // stored profiles must be byte-identical: publishing reads cumulative
  // totals and never perturbs the live counters.
  auto RunAndStore = [](bool Continuous, const std::string &Path) {
    EngineOptions O;
    O.Instrument = true;
    O.Tier.Mode = TierMode::Auto;
    if (Continuous) {
      O.ContinuousProfile.IntervalCharges = 64;
      O.ContinuousProfile.DecayHalfLife = 2.0;
      O.ContinuousProfile.RetierThreshold = 0.1;
    }
    Engine E(O);
    EvalResult R = E.evalString(WorkDefs, "work.scm");
    ASSERT_TRUE(R.Ok) << R.Error;
    for (int I = 0; I < 30; ++I)
      evalOk(E, "(work-a 100)");
    for (int I = 0; I < 30; ++I)
      evalOk(E, "(work-b 100)");
    if (Continuous) {
      ASSERT_NE(E.bus(), nullptr);
      EXPECT_GE(E.bus()->publishes(), 1u) << "poll hook never fired";
    }
    ProfileOpResult S = E.storeProfile(Path);
    ASSERT_TRUE(S) << S.Error;
  };
  std::string POff = tempPath("off.profile"), POn = tempPath("on.profile");
  RunAndStore(false, POff);
  RunAndStore(true, POn);
  EXPECT_EQ(slurp(POff), slurp(POn));
  std::remove(POff.c_str());
  std::remove(POn.c_str());
}

//===----------------------------------------------------------------------===//
// Online re-tiering
//===----------------------------------------------------------------------===//

TEST(ContinuousProfile, SkewFlipRetiersWithoutRestart) {
  EngineOptions O;
  O.Instrument = true;
  O.StatsEnabled = true;
  O.Tier.Mode = TierMode::Auto;
  O.Tier.Threshold = 1u << 30; // the invocation path never promotes:
                              // any tier change is the bus's doing
  O.ContinuousProfile.IntervalCharges = 256;
  O.ContinuousProfile.DecayHalfLife = 2.0;
  O.ContinuousProfile.RetierThreshold = 0.25;
  Engine E(O);
  EvalResult R = E.evalString(WorkDefs, "work.scm");
  ASSERT_TRUE(R.Ok) << R.Error;

  // Phase 1: work-a is hot. The poll hook publishes as fuel burns; force
  // one final observation so the assertion is deterministic.
  for (int I = 0; I < 50; ++I)
    evalOk(E, "(work-a 200)");
  E.observeProfileEpoch();
  uint64_t Promotions1 = E.stats().count(Stat::RetierPromotions);
  EXPECT_GE(Promotions1, 1u) << "hot closure was not premarked by an epoch";
  EXPECT_EQ(E.stats().count(Stat::RetierDemotions), 0u);

  // Phase 2: hotness flips to work-b mid-session — same engine, no
  // restart. The decayed profile must demote the stale-hot work-a and
  // promote work-b.
  for (int I = 0; I < 200; ++I)
    evalOk(E, "(work-b 200)");
  E.observeProfileEpoch();
  EXPECT_GT(E.stats().count(Stat::RetierPromotions), Promotions1)
      << "newly hot closure was not promoted after the flip";
  EXPECT_GE(E.stats().count(Stat::RetierDemotions), 1u)
      << "stale hot closure was not demoted after the flip";
  EXPECT_GE(E.stats().count(Stat::BusEpochs), 2u);

  // The flip is invisible to merge fidelity: the full session still folds
  // into one coherent data set.
  std::string P = tempPath("profile");
  ProfileOpResult S = E.storeProfile(P);
  ASSERT_TRUE(S) << S.Error;
  std::remove(P.c_str());
}

//===----------------------------------------------------------------------===//
// ProfileSession lifecycle
//===----------------------------------------------------------------------===//

TEST(ContinuousProfile, SessionCommitMatchesStoreProfile) {
  auto Run = [](Engine &E) {
    EvalResult R = E.evalString(WorkDefs, "work.scm");
    ASSERT_TRUE(R.Ok) << R.Error;
    for (int I = 0; I < 10; ++I)
      evalOk(E, "(work-a 50)");
  };
  std::string PSession = tempPath("session.profile");
  std::string PClassic = tempPath("classic.profile");
  {
    Engine E(withInstrumentation());
    Run(E);
    ProfileSession S(E.context(),
                     std::make_unique<FileProfileTransport>(PSession));
    ProfileOpResult C = S.commit();
    ASSERT_TRUE(C) << C.Error;
    EXPECT_EQ(C.DatasetsMerged, 1u);
    // Commit folded the counters: a session snapshot now carries the data.
    EXPECT_TRUE(S.current().hasData());
    EXPECT_EQ(E.context().Counters.totalIncrements(), 0u);
  }
  {
    Engine E(withInstrumentation());
    Run(E);
    ProfileOpResult S = E.storeProfile(PClassic);
    ASSERT_TRUE(S) << S.Error;
  }
  // The classic entry point is a thin wrapper over a file-transport
  // session; both spellings must produce the same bytes.
  EXPECT_EQ(slurp(PSession), slurp(PClassic));

  // And restore() round-trips what commit() wrote.
  Engine E2;
  ProfileSession S2(E2.context(),
                    std::make_unique<FileProfileTransport>(PSession));
  ProfileOpResult L = S2.restore();
  ASSERT_TRUE(L) << L.Error;
  EXPECT_EQ(L.DatasetsMerged, 1u);
  EXPECT_TRUE(S2.current().hasData());
  std::remove(PSession.c_str());
  std::remove(PClassic.c_str());
}

TEST(ContinuousProfile, TransportlessSessionObservesEpochs) {
  EngineOptions O;
  O.Instrument = true;
  O.Tier.Mode = TierMode::Auto;
  O.ContinuousProfile.IntervalCharges = 128;
  Engine E(O);
  EvalResult R = E.evalString(WorkDefs, "work.scm");
  ASSERT_TRUE(R.Ok) << R.Error;
  ProfileSession S(E.context()); // no transport: in-memory lifecycle
  EXPECT_TRUE(S.restore());      // vacuously ok
  for (int I = 0; I < 40; ++I)
    evalOk(E, "(work-a 100)");
  S.observe();
  ASSERT_TRUE(S.epoch());
  EXPECT_GE(S.epoch()->Version, 1u);
  ProfileOpResult C = S.commit(); // folds counters, no I/O
  ASSERT_TRUE(C) << C.Error;
  EXPECT_TRUE(S.current().hasData());
}

//===----------------------------------------------------------------------===//
// Pool integration
//===----------------------------------------------------------------------===//

TEST(ContinuousProfile, PoolHostsOneSharedBus) {
  EngineOptions O;
  O.Instrument = true;
  O.StatsEnabled = true;
  O.Tier.Mode = TierMode::Auto;
  O.ContinuousProfile.IntervalCharges = 256;
  EnginePool Pool(2, O);
  ASSERT_NE(Pool.bus(), nullptr);
  // Every worker publishes to the pool-owned aggregator, not a private
  // bus each.
  for (size_t I = 0; I < Pool.size(); ++I)
    EXPECT_EQ(Pool.engine(I).bus(), Pool.bus());

  EnginePool::PoolResult R = Pool.run([](Engine &E, size_t) {
    EvalResult Last = E.evalString(WorkDefs, "work.scm");
    if (!Last)
      return Last;
    for (int I = 0; I < 40 && Last; ++I)
      Last = E.evalString("(work-a 200)", "<request>");
    return Last;
  });
  ASSERT_TRUE(R) << R.Error;
  EXPECT_GE(Pool.bus()->publishes(), 2u) << "workers did not publish";

  // The merged store still works with the bus attached, and the epoch
  // boundary does not disturb it.
  std::string P = tempPath("pool.profile");
  ProfileOpResult S = Pool.storeMergedProfile(P);
  ASSERT_TRUE(S) << S.Error;
  EXPECT_EQ(S.DatasetsMerged, 2u);
  std::remove(P.c_str());
}
