//===- tests/LetSyntaxTest.cpp - Local macro bindings ---------------------===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

struct LetSyntaxFixture : ::testing::Test {
  Engine E;
  std::string run(const std::string &Src) { return evalOk(E, Src); }
};

TEST_F(LetSyntaxFixture, BasicLocalMacro) {
  EXPECT_EQ(run("(let-syntax ([double (syntax-rules ()"
                "               [(_ e) (* 2 e)])])"
                "  (double 21))"),
            "42");
}

TEST_F(LetSyntaxFixture, LocalMacroNotVisibleOutside) {
  run("(let-syntax ([only-here (syntax-rules () [(_) 'inside])])"
      "  (only-here))");
  EvalResult R = E.evalString("(only-here)");
  EXPECT_FALSE(R.Ok);
}

TEST_F(LetSyntaxFixture, ShadowsGlobalMacro) {
  EXPECT_EQ(run("(define-syntax tag (syntax-rules () [(_) 'global]))"
                "(list (tag)"
                "      (let-syntax ([tag (syntax-rules () [(_) 'local])])"
                "        (tag))"
                "      (tag))"),
            "(global local global)");
}

TEST_F(LetSyntaxFixture, LetrecSyntaxSelfRecursion) {
  EXPECT_EQ(run("(letrec-syntax ([my-and2 (syntax-rules ()"
                "                  [(_) #t]"
                "                  [(_ e rest ...) (if e (my-and2 rest ...)"
                "                                        #f)])])"
                "  (list (my-and2) (my-and2 1 2) (my-and2 1 #f 2)))"),
            "(#t #t #f)");
}

TEST_F(LetSyntaxFixture, ProceduralLocalTransformer) {
  EXPECT_EQ(run("(let-syntax ([rev (lambda (stx)"
                "                    (syntax-case stx ()"
                "                      [(_ a b c) #'(list c b a)]))])"
                "  (rev 1 2 3))"),
            "(3 2 1)");
}

TEST_F(LetSyntaxFixture, LocalMacroSeesPgmpApi) {
  // Local meta-programs get the same profile API as global ones.
  EXPECT_EQ(run("(let-syntax ([w (lambda (stx)"
                "                  (syntax-case stx ()"
                "                    [(_ e) #`(quote #,(profile-query #'e))]))])"
                "  (w (+ 1 2)))"),
            "0.0");
}

TEST_F(LetSyntaxFixture, BodyWithInternalDefines) {
  EXPECT_EQ(run("(let-syntax ([inc (syntax-rules () [(_ e) (+ e 1)])])"
                "  (define base 10)"
                "  (inc base))"),
            "11");
}

TEST_F(LetSyntaxFixture, HygieneAcrossLocalMacro) {
  EXPECT_EQ(run("(define t 'outer)"
                "(let-syntax ([grab (syntax-rules () [(_) t])])"
                "  (let ([t 'inner])"
                "    (grab)))"),
            "outer");
}

TEST_F(LetSyntaxFixture, Errors) {
  EXPECT_NE(evalErr(E, "(let-syntax)"), "");
  EXPECT_NE(evalErr(E, "(let-syntax ([x]) 1)"), "");
  EXPECT_NE(evalErr(E, "(let-syntax ([5 (syntax-rules ())]) 1)"), "");
  EXPECT_NE(evalErr(E, "(let-syntax ([m 42]) (m))"), "");
}

} // namespace
