//===- tests/LocParityTest.cpp - Section 6 implementation-size claims -----===//
//
// The paper argues these PGOs are *small* user-level meta-programs and
// reports line counts: case 81 (Chez) / 50 (Racket), exclusive-cond 31,
// receiver class prediction 44 within a 129-line object system, list 80,
// vector 88, sequence 111. Our ports must stay in the same size class —
// an implementation 10x larger would undermine the usability claim.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

/// Counts non-blank, non-comment lines of a scheme/ library.
int codeLines(const std::string &Name) {
  std::string Path = std::string(PGMP_SCHEME_DIR) + "/" + Name + ".scm";
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    ADD_FAILURE() << "cannot open " << Path;
    return -1;
  }
  int Count = 0;
  char Line[1024];
  while (std::fgets(Line, sizeof(Line), F)) {
    std::string S(Line);
    size_t First = S.find_first_not_of(" \t\r\n");
    if (First == std::string::npos)
      continue;
    if (S[First] == ';')
      continue;
    ++Count;
  }
  std::fclose(F);
  return Count;
}

struct Expectation {
  const char *Library;
  int PaperLines;
};

class LocParity : public ::testing::TestWithParam<Expectation> {};

TEST_P(LocParity, SameSizeClassAsPaper) {
  const Expectation &E = GetParam();
  int Ours = codeLines(E.Library);
  ASSERT_GT(Ours, 0);
  // Same order of magnitude: between a fifth and three times the paper's
  // count. (Exact parity is not meaningful across languages; our ports
  // lean compact because helpers live in the prelude.)
  EXPECT_GE(Ours * 5, E.PaperLines)
      << E.Library << " is suspiciously small vs the paper";
  EXPECT_LE(Ours, E.PaperLines * 3)
      << E.Library << " lost the smallness claim (" << Ours << " lines vs "
      << E.PaperLines << " in the paper)";
}

INSTANTIATE_TEST_SUITE_P(
    CaseStudies, LocParity,
    ::testing::Values(Expectation{"pgmp-case", 50},
                      Expectation{"exclusive-cond", 31},
                      Expectation{"object-system", 129},
                      Expectation{"profiled-list", 80},
                      Expectation{"profiled-vector", 88},
                      Expectation{"profiled-seq", 111},
                      Expectation{"if-r", 15}));

} // namespace
