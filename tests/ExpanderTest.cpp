//===- tests/ExpanderTest.cpp - Expander and hygiene tests ----------------===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

struct ExpanderFixture : ::testing::Test {
  Engine E;
  std::string run(const std::string &Src) { return evalOk(E, Src); }
  std::string err(const std::string &Src) { return evalErr(E, Src); }
};

TEST_F(ExpanderFixture, ShadowingCoreFormsLocally) {
  // A local binding named `if` shadows the core form.
  EXPECT_EQ(run("(let ([if (lambda (a b c) 'shadowed)]) (if 1 2 3))"),
            "shadowed");
  // Core `if` still works elsewhere.
  EXPECT_EQ(run("(if #t 'yes 'no)"), "yes");
}

TEST_F(ExpanderFixture, LetScoping) {
  EXPECT_EQ(run("(define x 'global)"
                "(let ([x 'outer]) (let ([x 'inner]) x))"),
            "inner");
  EXPECT_EQ(run("(let ([x 1]) (let ([y x]) (list x y)))"), "(1 1)");
  // let inits are evaluated in the outer scope.
  EXPECT_EQ(run("(let ([x 'a]) (let ([x 'b] [y x]) (list x y)))"), "(b a)");
}

TEST_F(ExpanderFixture, NamedLetAndDo) {
  EXPECT_EQ(run("(let fact ([n 5]) (if (zero? n) 1 (* n (fact (- n 1)))))"),
            "120");
}

TEST_F(ExpanderFixture, CondVariants) {
  EXPECT_EQ(run("(cond [#f 1])"), "#<void>");
  EXPECT_EQ(run("(cond [5])"), "5");
  EXPECT_EQ(run("(cond [#f 1] [(memq 'b '(a b c)) => car] [else 'no])"),
            "b");
  EXPECT_EQ(run("(cond [else 'fallback])"), "fallback");
  EXPECT_EQ(run("(cond [#t 1 2 3])"), "3");
}

TEST_F(ExpanderFixture, QuasiquoteData) {
  EXPECT_EQ(run("`(1 2 3)"), "(1 2 3)");
  EXPECT_EQ(run("(let ([x 5]) `(a ,x b))"), "(a 5 b)");
  EXPECT_EQ(run("(let ([xs '(1 2)]) `(a ,@xs b))"), "(a 1 2 b)");
  EXPECT_EQ(run("`(1 ,(+ 1 1) ,@(list 3 4) . 5)"), "(1 2 3 4 . 5)");
  EXPECT_EQ(run("`()"), "()");
}

TEST_F(ExpanderFixture, InternalDefines) {
  EXPECT_EQ(run("(define (f x)"
                "  (define y (* x 2))"
                "  (define (g z) (+ z y))"
                "  (g 1))"
                "(f 10)"),
            "21");
  // Mutually recursive internal defines (letrec* semantics).
  EXPECT_EQ(run("(define (f n)"
                "  (define (even2? k) (if (zero? k) #t (odd2? (- k 1))))"
                "  (define (odd2? k) (if (zero? k) #f (even2? (- k 1))))"
                "  (even2? n))"
                "(f 8)"),
            "#t");
}

TEST_F(ExpanderFixture, MacroDefiningMacroHelpers) {
  // Transformers may have internal helper definitions (as in Figure 6).
  EXPECT_EQ(run("(define-syntax (twice stx)"
                "  (define (dup x) (list x x))"
                "  (syntax-case stx ()"
                "    [(_ e) #`(list #,@(dup #'e))]))"
                "(define n 0)"
                "(twice (begin (set! n (+ n 1)) n))"),
            "(1 2)");
}

TEST_F(ExpanderFixture, HygieneIntroducedBindingsDoNotCapture) {
  EXPECT_EQ(run("(define-syntax (swap! stx)"
                "  (syntax-case stx ()"
                "    [(_ a b) #'(let ([tmp a]) (set! a b) (set! b tmp))]))"
                "(define tmp 1)"
                "(define other 2)"
                "(swap! tmp other)"
                "(list tmp other)"),
            "(2 1)");
}

TEST_F(ExpanderFixture, HygieneUseSiteBindingWins) {
  EXPECT_EQ(run("(define-syntax (m stx)"
                "  (syntax-case stx ()"
                "    [(_ e) #'(let ([x 'macro]) e)]))"
                "(let ([x 'user]) (m x))"),
            "user");
}

TEST_F(ExpanderFixture, MacroReferencesGlobalHelpers) {
  // Identifiers introduced by the macro refer to globals visible at the
  // macro definition, even if the use site is elsewhere.
  EXPECT_EQ(run("(define (helper x) (* x 10))"
                "(define-syntax (call-helper stx)"
                "  (syntax-case stx ()"
                "    [(_ e) #'(helper e)]))"
                "(call-helper 4)"),
            "40");
}

TEST_F(ExpanderFixture, RecursiveMacro) {
  EXPECT_EQ(run("(define-syntax (my-and stx)"
                "  (syntax-case stx ()"
                "    [(_) #'#t]"
                "    [(_ e) #'e]"
                "    [(_ e rest ...) #'(if e (my-and rest ...) #f)]))"
                "(list (my-and) (my-and 1) (my-and 1 2 3) (my-and 1 #f 3))"),
            "(#t 1 3 #f)");
}

TEST_F(ExpanderFixture, ConsecutiveEllipsesRejected) {
  // (a ... ...) flattening is documented as unsupported; it must be a
  // clean compile-time error, not silent misexpansion.
  EXPECT_NE(err("(define-syntax (flatten2 stx)"
                "  (syntax-case stx ()"
                "    [(_ (a ...) ...) #'(list a ... ...)]))"
                "(flatten2 (1 2) (3) ())"),
            "");
}

TEST_F(ExpanderFixture, NestedEllipsisTemplates) {
  EXPECT_EQ(run("(define-syntax (pairs stx)"
                "  (syntax-case stx ()"
                "    [(_ (a b ...) ...) #'(list (list a (list b ...)) ...)]))"
                "(pairs (1 2 3) (4) (5 6))"),
            "((1 (2 3)) (4 ()) (5 (6)))");
}

TEST_F(ExpanderFixture, EllipsisWithFixedTail) {
  EXPECT_EQ(run("(define-syntax (but-last stx)"
                "  (syntax-case stx ()"
                "    [(_ e ... last) #'(list e ...)]))"
                "(but-last 1 2 3 4)"),
            "(1 2 3)");
  EXPECT_EQ(run("(define-syntax (get-last stx)"
                "  (syntax-case stx ()"
                "    [(_ e ... last) #'last]))"
                "(get-last 1 2 3)"),
            "3");
}

TEST_F(ExpanderFixture, DottedPatterns) {
  EXPECT_EQ(run("(define-syntax (rest-of stx)"
                "  (syntax-case stx ()"
                "    [(_ a . r) #''r]))"
                "(rest-of 1 2 3)"),
            "(2 3)");
}

TEST_F(ExpanderFixture, Literals) {
  EXPECT_EQ(run("(define-syntax (arrowish stx)"
                "  (syntax-case stx (=>)"
                "    [(_ a => b) #'(list 'arrow a b)]"
                "    [(_ a b) #'(list 'plain a b)]))"
                "(list (arrowish 1 => 2) (arrowish 1 2))"),
            "((arrow 1 2) (plain 1 2))");
}

TEST_F(ExpanderFixture, Fenders) {
  EXPECT_EQ(run("(define-syntax (num-or-other stx)"
                "  (syntax-case stx ()"
                "    [(_ e) (number? (syntax->datum #'e)) #''number]"
                "    [(_ e) #''other]))"
                "(list (num-or-other 5) (num-or-other x))"),
            "(number other)");
}

TEST_F(ExpanderFixture, ConstantPatterns) {
  EXPECT_EQ(run("(define-syntax (is-one stx)"
                "  (syntax-case stx ()"
                "    [(_ 1) #''yes]"
                "    [(_ _) #''no]))"
                "(list (is-one 1) (is-one 2))"),
            "(yes no)");
}

TEST_F(ExpanderFixture, WithSyntax) {
  EXPECT_EQ(run("(define-syntax (ws stx)"
                "  (syntax-case stx ()"
                "    [(_ a)"
                "     (with-syntax ([b #'(+ a 1)] [(c ...) #'(a a)])"
                "       #'(list b c ...))]))"
                "(ws 3)"),
            "(4 3 3)");
}

TEST_F(ExpanderFixture, DatumToSyntaxBreaksHygieneDeliberately) {
  // Classic anaphoric macro: binds `it` visible at the use site.
  EXPECT_EQ(run("(define-syntax (aif stx)"
                "  (syntax-case stx ()"
                "    [(k test then else)"
                "     (with-syntax ([it (datum->syntax #'k 'it)])"
                "       #'(let ([it test]) (if it then else)))]))"
                "(aif (memq 'b '(a b)) (car it) 'none)"),
            "b");
}

TEST_F(ExpanderFixture, GeneratedIdentifiersViaStringToSymbol) {
  EXPECT_EQ(run("(define-syntax (def-getter stx)"
                "  (syntax-case stx ()"
                "    [(k name)"
                "     (with-syntax ([getter (datum->syntax #'k"
                "        (string->symbol (string-append \"get-\""
                "          (symbol->string (syntax->datum #'name)))))])"
                "       #'(define (getter) 'name))]))"
                "(def-getter foo)"
                "(get-foo)"),
            "foo");
}

TEST_F(ExpanderFixture, TopLevelBeginSplices) {
  EXPECT_EQ(run("(begin (define a 1) (define b 2)) (+ a b)"), "3");
}

TEST_F(ExpanderFixture, MacroExpandingToDefine) {
  EXPECT_EQ(run("(define-syntax (def-two stx)"
                "  (syntax-case stx ()"
                "    [(_ n1 n2) #'(begin (define n1 1) (define n2 2))]))"
                "(def-two p q)"
                "(+ p q)"),
            "3");
}

TEST_F(ExpanderFixture, ExpansionErrors) {
  EXPECT_NE(err("(lambda)"), "");
  EXPECT_NE(err("(if)"), "");
  EXPECT_NE(err("(set! 5 1)"), "");
  EXPECT_NE(err("(let ([x]) x)"), "");
  EXPECT_NE(err("(define-syntax (bad stx) (syntax-case stx () [(_ a a) #'a]))"
                "(bad 1 2)"),
            ""); // duplicate pattern variable
  EXPECT_NE(err("(define-syntax (bad2 stx) 42) (bad2)"), "");
  EXPECT_NE(err("(cond [else 1] [#t 2])"), "");
}

TEST_F(ExpanderFixture, MacroUsingQuasisyntaxUnsyntax) {
  EXPECT_EQ(run("(define-syntax (add-const stx)"
                "  (syntax-case stx ()"
                "    [(_ e) #`(+ e #,(* 6 7))]))"
                "(add-const 8)"),
            "50");
}

TEST_F(ExpanderFixture, ExpandToStringShowsCoreForms) {
  EvalResult R = E.expandToString("(let ([x 1]) x)");
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Out = R.V.asString()->Text;
  EXPECT_NE(Out.find("lambda"), std::string::npos) << Out;
}

} // namespace
