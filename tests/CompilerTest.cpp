//===- tests/CompilerTest.cpp - Core-form IR structure --------------------===//

#include "TestUtil.h"

#include "interp/Compiler.h"
#include "interp/Eval.h"
#include "reader/Reader.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

struct CompilerFixture : ::testing::Test {
  Engine E;

  /// Expands and compiles one form, returning the unit.
  std::unique_ptr<CodeUnit> compile(const std::string &Src) {
    Context &Ctx = E.context();
    Reader Rd(Ctx.TheHeap, Ctx.Symbols, Ctx.Sources, Src, "c.scm");
    auto Form = Rd.readOne();
    EXPECT_TRUE(Form.has_value());
    auto Cores = E.expander().expandTopLevel(*Form);
    EXPECT_EQ(Cores.size(), 1u);
    return compileCore(Ctx, Cores[0]);
  }

  const LambdaExpr *lambdaOf(const CodeUnit &Unit) {
    EXPECT_EQ(Unit.Root->K, ExprKind::DefineGlobal);
    const Expr *Val = static_cast<const DefineGlobalExpr *>(Unit.Root)->Val;
    EXPECT_EQ(Val->K, ExprKind::Lambda);
    return static_cast<const LambdaExpr *>(Val);
  }
};

TEST_F(CompilerFixture, ConstantsFold) {
  auto Unit = compile("42");
  ASSERT_EQ(Unit->Root->K, ExprKind::Const);
  EXPECT_EQ(static_cast<const ConstExpr *>(Unit->Root)->V.asFixnum(), 42);
}

TEST_F(CompilerFixture, QuoteStripsSyntax) {
  auto Unit = compile("'(a (b 1))");
  ASSERT_EQ(Unit->Root->K, ExprKind::Const);
  Value V = static_cast<const ConstExpr *>(Unit->Root)->V;
  EXPECT_EQ(writeToString(V), "(a (b 1))");
  // No syntax wrappers anywhere inside.
  EXPECT_FALSE(V.asPair()->Car.isSyntax());
}

TEST_F(CompilerFixture, DefineNamesLambda) {
  auto Unit = compile("(define (my-fn x) x)");
  EXPECT_EQ(lambdaOf(*Unit)->Name, "my-fn");
}

TEST_F(CompilerFixture, TailPositionsMarked) {
  auto Unit = compile("(define (f x) (g (h x)))");
  const LambdaExpr *L = lambdaOf(*Unit);
  ASSERT_EQ(L->Body->K, ExprKind::Call);
  const auto *Outer = static_cast<const CallExpr *>(L->Body);
  EXPECT_TRUE(Outer->Tail);
  ASSERT_EQ(Outer->Args[0]->K, ExprKind::Call);
  EXPECT_FALSE(static_cast<const CallExpr *>(Outer->Args[0])->Tail);
}

TEST_F(CompilerFixture, IfBranchesInheritTail) {
  auto Unit = compile("(define (f x) (if x (g) (h)))");
  const LambdaExpr *L = lambdaOf(*Unit);
  ASSERT_EQ(L->Body->K, ExprKind::If);
  const auto *I = static_cast<const IfExpr *>(L->Body);
  EXPECT_TRUE(static_cast<const CallExpr *>(I->Then)->Tail);
  EXPECT_TRUE(static_cast<const CallExpr *>(I->Else)->Tail);
  EXPECT_EQ(I->Test->K, ExprKind::LocalRef);
}

TEST_F(CompilerFixture, LocalCoordinatesAcrossFrames) {
  // y lives one frame out from the inner lambda.
  auto Unit = compile("(define (f y) (lambda (x) y))");
  const LambdaExpr *Outer = lambdaOf(*Unit);
  ASSERT_EQ(Outer->Body->K, ExprKind::Lambda);
  const auto *Inner = static_cast<const LambdaExpr *>(Outer->Body);
  ASSERT_EQ(Inner->Body->K, ExprKind::LocalRef);
  const auto *Ref = static_cast<const LocalRefExpr *>(Inner->Body);
  EXPECT_EQ(Ref->Depth, 1u);
  EXPECT_EQ(Ref->Index, 0u);
}

TEST_F(CompilerFixture, GlobalRefsShareCells) {
  auto Unit = compile("(define (f) (cons global-a global-a))");
  const LambdaExpr *L = lambdaOf(*Unit);
  const auto *Call = static_cast<const CallExpr *>(L->Body);
  ASSERT_EQ(Call->Args.size(), 2u);
  const auto *A = static_cast<const GlobalRefExpr *>(Call->Args[0]);
  const auto *B = static_cast<const GlobalRefExpr *>(Call->Args[1]);
  EXPECT_EQ(A->Cell, B->Cell);
}

TEST_F(CompilerFixture, SourceObjectsAttachedToNodes) {
  auto Unit = compile("(define (f x) (+ x 1))");
  const LambdaExpr *L = lambdaOf(*Unit);
  ASSERT_NE(L->Body->Src, nullptr);
  EXPECT_EQ(L->Body->Src->File, "c.scm");
  // Not instrumented: no counters allocated.
  EXPECT_EQ(L->Body->Counter, nullptr);
}

TEST_F(CompilerFixture, InstrumentationAttachesCounters) {
  E.setInstrumentation(true);
  auto Unit = compile("(define (f x) (+ x 1))");
  const LambdaExpr *L = lambdaOf(*Unit);
  ASSERT_NE(L->Body->Counter, nullptr);
  // Same source location maps to the same counter slot.
  auto Unit2 = compile("(define (f x) (+ x 1))");
  EXPECT_EQ(lambdaOf(*Unit2)->Body->Counter, L->Body->Counter);
}

TEST_F(CompilerFixture, RestParamsCountedInSlots) {
  auto Unit = compile("(define (f a b . rest) rest)");
  const LambdaExpr *L = lambdaOf(*Unit);
  EXPECT_EQ(L->Params.size(), 2u);
  EXPECT_TRUE(L->HasRest);
  EXPECT_EQ(L->numSlots(), 3u);
  ASSERT_EQ(L->Body->K, ExprKind::LocalRef);
  EXPECT_EQ(static_cast<const LocalRefExpr *>(L->Body)->Index, 2u);
}

TEST_F(CompilerFixture, BeginFlattensSingleForm) {
  auto Unit = compile("(begin 5)");
  EXPECT_EQ(Unit->Root->K, ExprKind::Const);
}

TEST_F(CompilerFixture, EvaluatedUnitsProduceValues) {
  auto Unit = compile("((lambda (x y) (* x y)) 6 7)");
  Value V = evalExpr(E.context(), Unit->Root, nullptr);
  EXPECT_EQ(V.asFixnum(), 42);
}

} // namespace
