//===- tests/InstrumentationTest.cpp - Source-expression counters ---------===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

TEST(Instrumentation, CountersMatchExecutionCounts) {
  Engine E;
  E.setInstrumentation(true);
  // Source:   0123456789...
  std::string Src = "(define (f n) (if (even? n) (+ n 1) (- n 1)))";
  ASSERT_TRUE(E.evalString(Src, "count.scm").Ok);
  for (int I = 0; I < 10; ++I)
    ASSERT_TRUE(E.callGlobal("f", {Value::fixnum(I)}).Ok);

  auto CountAt = [&](const std::string &Fragment) {
    size_t Begin = Src.find(Fragment);
    EXPECT_NE(Begin, std::string::npos);
    const SourceObject *P = E.context().Sources.intern(
        "count.scm", static_cast<uint32_t>(Begin),
        static_cast<uint32_t>(Begin + Fragment.size()), 1, 1);
    return E.context().Counters.count(P);
  };

  // 10 calls: the test runs 10 times, each branch 5 times.
  EXPECT_EQ(CountAt("(if (even? n) (+ n 1) (- n 1))"), 10u);
  EXPECT_EQ(CountAt("(even? n)"), 10u);
  EXPECT_EQ(CountAt("(+ n 1)"), 5u);
  EXPECT_EQ(CountAt("(- n 1)"), 5u);
}

TEST(Instrumentation, DistinctOccurrencesCountSeparately) {
  // Section 3.1: two occurrences of the same expression text get
  // different profile points.
  Engine E;
  E.setInstrumentation(true);
  std::string Src = "(define (g b) (if b (f 1) (f 1)))"
                    "(define (f x) x)"
                    "(g #t) (g #t) (g #f)";
  ASSERT_TRUE(E.evalString(Src, "occ.scm").Ok);

  size_t First = Src.find("(f 1)");
  size_t Second = Src.find("(f 1)", First + 1);
  auto CountAt = [&](size_t Begin) {
    const SourceObject *P = E.context().Sources.intern(
        "occ.scm", static_cast<uint32_t>(Begin),
        static_cast<uint32_t>(Begin + 5), 1, 1);
    return E.context().Counters.count(P);
  };
  EXPECT_EQ(CountAt(First), 2u);
  EXPECT_EQ(CountAt(Second), 1u);
}

TEST(Instrumentation, NoCountersWhenDisabled) {
  Engine E;
  E.setInstrumentation(false);
  size_t Before = E.context().Counters.size();
  ASSERT_TRUE(E.evalString("(define (f) (+ 1 2)) (f) (f)").Ok);
  // No counter slots were even allocated: uninstrumented code carries no
  // instrumentation at all (paper Section 3.1).
  EXPECT_EQ(E.context().Counters.size(), Before);
}

TEST(Instrumentation, RecompileTogglesInstrumentation) {
  Engine E;
  E.setInstrumentation(true);
  ASSERT_TRUE(E.evalString("(define (f) 'x)", "toggle.scm").Ok);
  ASSERT_TRUE(E.callGlobal("f", {}).Ok);
  size_t WithCounters = E.context().Counters.size();
  EXPECT_GT(WithCounters, 0u);

  // Redefine without instrumentation; new code adds no counters.
  E.setInstrumentation(false);
  ASSERT_TRUE(E.evalString("(define (g) 'y)", "toggle2.scm").Ok);
  ASSERT_TRUE(E.callGlobal("g", {}).Ok);
  EXPECT_EQ(E.context().Counters.size(), WithCounters);
}

TEST(Instrumentation, LoopCountsScaleWithIterations) {
  Engine E;
  E.setInstrumentation(true);
  std::string Src = "(define (spin n acc)"
                    "  (if (zero? n) acc (spin (- n 1) (+ acc 7))))"
                    "(spin 1000 0)";
  ASSERT_TRUE(E.evalString(Src, "loop.scm").Ok);
  size_t Begin = Src.find("(+ acc 7)");
  const SourceObject *P = E.context().Sources.intern(
      "loop.scm", static_cast<uint32_t>(Begin),
      static_cast<uint32_t>(Begin + 9), 1, 1);
  EXPECT_EQ(E.context().Counters.count(P), 1000u);
}

} // namespace
