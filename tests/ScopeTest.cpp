//===- tests/ScopeTest.cpp - Scope sets and binding resolution ------------===//

#include "syntax/Heap.h"
#include "syntax/SymbolTable.h"
#include "syntax/Syntax.h"

#include <gtest/gtest.h>

using namespace pgmp;

namespace {

TEST(ScopeSet, AddFlipContains) {
  ScopeSet S;
  EXPECT_EQ(S.size(), 0u);
  ScopeSet S1 = S.withScope(5);
  EXPECT_TRUE(S1.contains(5));
  EXPECT_FALSE(S.contains(5)) << "withScope must not mutate";
  ScopeSet S2 = S1.withScope(5);
  EXPECT_EQ(S2.size(), 1u);
  ScopeSet S3 = S1.flipped(5);
  EXPECT_FALSE(S3.contains(5));
  ScopeSet S4 = S3.flipped(5);
  EXPECT_TRUE(S4.contains(5));
}

TEST(ScopeSet, SubsetRules) {
  ScopeSet Empty;
  ScopeSet A = Empty.withScope(1).withScope(3);
  ScopeSet B = A.withScope(7);
  EXPECT_TRUE(Empty.isSubsetOf(A));
  EXPECT_TRUE(A.isSubsetOf(B));
  EXPECT_FALSE(B.isSubsetOf(A));
  EXPECT_TRUE(A.isSubsetOf(A));
  ScopeSet C = Empty.withScope(2);
  EXPECT_FALSE(C.isSubsetOf(A));
}

TEST(ScopeSet, OrderInsensitiveEquality) {
  ScopeSet A = ScopeSet().withScope(9).withScope(2).withScope(5);
  ScopeSet B = ScopeSet().withScope(2).withScope(5).withScope(9);
  EXPECT_TRUE(A == B);
}

struct BindingFixture : ::testing::Test {
  Heap H;
  SymbolTable ST;
  BindingTable BT;

  Syntax *makeId(const char *Name, ScopeSet Scopes) {
    return makeSyntax(H, ST.internValue(Name), std::move(Scopes), nullptr)
        .asSyntax();
  }
};

TEST_F(BindingFixture, ResolveFindsLargestSubset) {
  Symbol *X = ST.intern("x");
  ScopeSet Outer = ScopeSet().withScope(1);
  ScopeSet Inner = Outer.withScope(2);
  BT.add(X, Outer, 100);
  BT.add(X, Inner, 200);

  // A reference with both scopes sees the inner binding.
  auto R = BT.resolve(X, Inner.withScope(3));
  EXPECT_EQ(R.Label, 200u);
  EXPECT_FALSE(R.Ambiguous);

  // A reference with only the outer scope sees the outer binding.
  R = BT.resolve(X, Outer);
  EXPECT_EQ(R.Label, 100u);

  // A reference with no scopes sees nothing.
  R = BT.resolve(X, ScopeSet());
  EXPECT_EQ(R.Label, 0u);
}

TEST_F(BindingFixture, AmbiguityDetected) {
  Symbol *X = ST.intern("x");
  BT.add(X, ScopeSet().withScope(1), 100);
  BT.add(X, ScopeSet().withScope(2), 200);
  auto R = BT.resolve(X, ScopeSet().withScope(1).withScope(2));
  EXPECT_TRUE(R.Ambiguous);
}

TEST_F(BindingFixture, DifferentSymbolsDoNotCollide) {
  BT.add(ST.intern("x"), ScopeSet(), 1);
  auto R = BT.resolve(ST.intern("y"), ScopeSet().withScope(1));
  EXPECT_EQ(R.Label, 0u);
}

TEST_F(BindingFixture, FreeIdentifierEqual) {
  Symbol *X = ST.intern("x");
  ScopeSet S1 = ScopeSet().withScope(1);
  BT.add(X, S1, 42);
  Syntax *A = makeId("x", S1);
  Syntax *B = makeId("x", S1.withScope(9));
  Syntax *C = makeId("x", ScopeSet());
  // A and B resolve to the same binding.
  EXPECT_TRUE(freeIdentifierEqual(BT, A, B));
  // C is unbound; A is bound: not equal.
  EXPECT_FALSE(freeIdentifierEqual(BT, A, C));
  // Two unbound identifiers of the same name are free-identifier=?.
  Syntax *D = makeId("zz", ScopeSet());
  Syntax *E = makeId("zz", ScopeSet().withScope(3));
  EXPECT_TRUE(freeIdentifierEqual(BT, D, E));
}

TEST_F(BindingFixture, BoundIdentifierEqual) {
  ScopeSet S1 = ScopeSet().withScope(1);
  Syntax *A = makeId("x", S1);
  Syntax *B = makeId("x", S1);
  Syntax *C = makeId("x", S1.withScope(2));
  Syntax *D = makeId("y", S1);
  EXPECT_TRUE(boundIdentifierEqual(A, B));
  EXPECT_FALSE(boundIdentifierEqual(A, C));
  EXPECT_FALSE(boundIdentifierEqual(A, D));
}

TEST_F(BindingFixture, AdjustScopeRebuildsTree) {
  Value List =
      H.list({makeSyntax(H, ST.internValue("a"), ScopeSet(), nullptr),
              makeSyntax(H, ST.internValue("b"), ScopeSet(), nullptr)});
  Value Wrapped = makeSyntax(H, List, ScopeSet(), nullptr);
  Value Adjusted = adjustScope(H, Wrapped, 7, ScopeOp::Add);

  // Original untouched.
  EXPECT_FALSE(Wrapped.asSyntax()->Scopes.contains(7));
  EXPECT_TRUE(Adjusted.asSyntax()->Scopes.contains(7));
  Value Inner = syntaxE(Adjusted);
  EXPECT_TRUE(Inner.asPair()->Car.asSyntax()->Scopes.contains(7));

  // Flip removes it again everywhere.
  Value Back = adjustScope(H, Adjusted, 7, ScopeOp::Flip);
  EXPECT_FALSE(Back.asSyntax()->Scopes.contains(7));
  EXPECT_FALSE(syntaxE(Back).asPair()->Car.asSyntax()->Scopes.contains(7));
}

TEST_F(BindingFixture, SyntaxToDatumStripsAll) {
  Value Id = makeSyntax(H, ST.internValue("a"), ScopeSet().withScope(1),
                        nullptr);
  Value List = makeSyntax(H, H.cons(Id, Value::nil()), ScopeSet(), nullptr);
  Value D = syntaxToDatum(H, List);
  EXPECT_TRUE(D.isPair());
  EXPECT_TRUE(D.asPair()->Car.isSymbol());
}

TEST_F(BindingFixture, DatumToSyntaxCopiesContextScopes) {
  ScopeSet Ctx = ScopeSet().withScope(4);
  Syntax *CtxId = makeId("ctx", Ctx);
  Value D = H.list({ST.internValue("p"), Value::fixnum(1)});
  Value S = datumToSyntax(H, *CtxId, D);
  ASSERT_TRUE(S.isSyntax());
  EXPECT_TRUE(S.asSyntax()->Scopes.contains(4));
  Value Head = syntaxE(S).asPair()->Car;
  ASSERT_TRUE(Head.isSyntax());
  EXPECT_TRUE(Head.asSyntax()->Scopes.contains(4));
  // Already-syntax parts are left alone.
  Value Mixed = H.cons(S, Value::nil());
  Value S2 = datumToSyntax(H, *CtxId, Mixed);
  EXPECT_EQ(syntaxE(S2).asPair()->Car.asSyntax(), S.asSyntax());
}

} // namespace
