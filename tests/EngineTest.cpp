//===- tests/EngineTest.cpp - Public embedding API ------------------------===//

#include "TestUtil.h"

#include <cstdio>

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

TEST(Engine, EvalFileRoundTrip) {
  std::string Path = tempPath("prog.scm");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  const char *Src = "(define (f x) (* x 3)) (f 14)";
  std::fwrite(Src, 1, strlen(Src), F);
  std::fclose(F);

  Engine E;
  EvalResult R = E.evalFile(Path);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(writeToString(R.V), "42");
}

TEST(Engine, EvalFileMissing) {
  Engine E;
  EvalResult R = E.evalFile("/nonexistent/file.scm");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("cannot open"), std::string::npos);
}

TEST(Engine, CallGlobal) {
  Engine E;
  ASSERT_TRUE(E.evalString("(define (add a b) (+ a b))").Ok);
  EvalResult R = E.callGlobal("add", {Value::fixnum(2), Value::fixnum(3)});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.V.asFixnum(), 5);

  R = E.callGlobal("no-such-function", {});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unbound"), std::string::npos);

  // Errors inside the call surface as results, not exceptions.
  R = E.callGlobal("add", {Value::fixnum(1)});
  EXPECT_FALSE(R.Ok);
}

TEST(Engine, TakeOutputClears) {
  Engine E;
  evalOk(E, "(display \"one\")");
  EXPECT_EQ(E.takeOutput(), "one");
  EXPECT_EQ(E.takeOutput(), "");
  evalOk(E, "(display \"two\")");
  EXPECT_EQ(E.takeOutput(), "two");
}

TEST(Engine, MultipleFormsEvaluateInOrder) {
  Engine E;
  EXPECT_EQ(evalOk(E, "(define a 1) (define b (+ a 1)) (define c (* b 2)) c"),
            "4");
}

TEST(Engine, StateSharedAcrossEvalStrings) {
  Engine E;
  evalOk(E, "(define counter 0)");
  evalOk(E, "(set! counter (+ counter 1))");
  evalOk(E, "(set! counter (+ counter 1))");
  EXPECT_EQ(evalOk(E, "counter"), "2");
}

TEST(Engine, MacrosPersistAcrossEvalStrings) {
  Engine E;
  evalOk(E, "(define-syntax (double stx)"
            "  (syntax-case stx () [(_ e) #'(* 2 e)]))");
  EXPECT_EQ(evalOk(E, "(double 21)"), "42");
}

TEST(Engine, ErrorRecoveryLeavesEngineUsable) {
  Engine E;
  evalErr(E, "(car 'nope)");
  EXPECT_EQ(evalOk(E, "(+ 1 1)"), "2");
  evalErr(E, "(define-syntax (bad stx) (car 5)) (bad)");
  EXPECT_EQ(evalOk(E, "(+ 2 2)"), "4");
}

TEST(Engine, SeparateEnginesAreIsolated) {
  Engine A, B;
  evalOk(A, "(define shared 'a)");
  EXPECT_NE(B.evalString("shared").Ok, true);
}

TEST(Engine, LoadLibraryMissing) {
  Engine E;
  EvalResult R = E.loadLibrary("definitely-not-a-library");
  EXPECT_FALSE(R.Ok);
}

TEST(Engine, InstrumentationAccessors) {
  Engine E;
  EXPECT_FALSE(E.instrumentation());
  E.setInstrumentation(true);
  EXPECT_TRUE(E.instrumentation());
}

TEST(Engine, StoreProfileFailsOnBadPath) {
  Engine E;
  E.setInstrumentation(true);
  evalOk(E, "(define (f) 1) (f)");
  ProfileOpResult R = E.storeProfile("/nonexistent-dir/x.profile");
  EXPECT_FALSE(R);
  EXPECT_EQ(R.Status, ProfileOpStatus::Failed);
  EXPECT_FALSE(R.Error.empty());
}

} // namespace
