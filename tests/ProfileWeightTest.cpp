//===- tests/ProfileWeightTest.cpp - Weights, merging, serialization ------===//
//
// Reproduces Figure 3 of the paper exactly: weights are counts divided by
// the hottest point of the same data set, and data sets merge by
// averaging weights.
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileDatabase.h"
#include "profile/ProfileIO.h"

#include <gtest/gtest.h>

using namespace pgmp;

namespace {

struct WeightFixture : ::testing::Test {
  SourceObjectTable SOT;
  ProfileDatabase Db;
  CounterStore Counters;

  const SourceObject *point(const char *File, uint32_t Begin) {
    return SOT.intern(File, Begin, Begin + 1, 1, 1);
  }

  void recordRun(std::vector<std::pair<const SourceObject *, uint64_t>> Run) {
    Counters.clear();
    for (auto &[Src, N] : Run)
      *Counters.counterFor(Src) = N;
    Db.addDataset(Counters);
  }
};

TEST_F(WeightFixture, EmptyDatabaseHasNoData) {
  EXPECT_FALSE(Db.hasData());
  EXPECT_FALSE(Db.weight(point("f", 0)).has_value());
}

TEST_F(WeightFixture, Figure3FirstDataset) {
  // (flag email 'important) runs 5 times; (flag email 'spam) 10 times.
  const SourceObject *Important = point("classify.scm", 10);
  const SourceObject *Spam = point("classify.scm", 20);
  recordRun({{Important, 5}, {Spam, 10}});

  EXPECT_TRUE(Db.hasData());
  EXPECT_DOUBLE_EQ(*Db.weight(Important), 5.0 / 10.0);
  EXPECT_DOUBLE_EQ(*Db.weight(Spam), 10.0 / 10.0);
}

TEST_F(WeightFixture, Figure3MergedDatasets) {
  // First data set: important 5, spam 10. Second: important 100, spam 10.
  const SourceObject *Important = point("classify.scm", 10);
  const SourceObject *Spam = point("classify.scm", 20);
  recordRun({{Important, 5}, {Spam, 10}});
  recordRun({{Important, 100}, {Spam, 10}});

  EXPECT_EQ(Db.numDatasets(), 2u);
  // (0.5 + 100/100) / 2  and  (1 + 10/100) / 2  — exactly Figure 3.
  EXPECT_DOUBLE_EQ(*Db.weight(Important), (0.5 + 1.0) / 2.0);
  EXPECT_DOUBLE_EQ(*Db.weight(Spam), (1.0 + 0.1) / 2.0);
}

TEST_F(WeightFixture, PointMissingFromOneDatasetCountsAsZero) {
  const SourceObject *A = point("f", 0);
  const SourceObject *B = point("f", 5);
  recordRun({{A, 10}});
  recordRun({{A, 10}, {B, 10}});
  EXPECT_DOUBLE_EQ(*Db.weight(A), 1.0);
  EXPECT_DOUBLE_EQ(*Db.weight(B), 0.5);
  // Unknown points have weight 0 once any data exists.
  EXPECT_DOUBLE_EQ(*Db.weight(point("f", 99)), 0.0);
}

TEST_F(WeightFixture, AllZeroDatasetIgnored) {
  const SourceObject *A = point("f", 0);
  recordRun({{A, 0}});
  EXPECT_FALSE(Db.hasData());
  EXPECT_EQ(Db.numDatasets(), 0u);
}

TEST_F(WeightFixture, WeightsAlwaysInUnitInterval) {
  const SourceObject *A = point("f", 0);
  const SourceObject *B = point("f", 5);
  const SourceObject *C = point("f", 9);
  recordRun({{A, 7}, {B, 3}, {C, 1}});
  recordRun({{A, 1}, {B, 1000}});
  for (const SourceObject *P : {A, B, C}) {
    double W = *Db.weight(P);
    EXPECT_GE(W, 0.0);
    EXPECT_LE(W, 1.0);
  }
}

TEST_F(WeightFixture, SerializationRoundTrip) {
  const SourceObject *A = point("lib.scm", 3);
  const SourceObject *B = point("lib.scm", 14);
  recordRun({{A, 5}, {B, 10}});
  recordRun({{A, 100}, {B, 10}});

  std::string Text = serializeProfile(Db);
  ProfileDatabase Db2;
  SourceObjectTable SOT2;
  std::string Err;
  ASSERT_TRUE(parseProfile(Text, SOT2, Db2, Err)) << Err;

  EXPECT_EQ(Db2.numDatasets(), 2u);
  const SourceObject *A2 = SOT2.intern("lib.scm", 3, 4, 1, 1);
  const SourceObject *B2 = SOT2.intern("lib.scm", 14, 15, 1, 1);
  EXPECT_DOUBLE_EQ(*Db2.weight(A2), *Db.weight(A));
  EXPECT_DOUBLE_EQ(*Db2.weight(B2), *Db.weight(B));
}

TEST_F(WeightFixture, SerializationIsDeterministic) {
  const SourceObject *A = point("z.scm", 1);
  const SourceObject *B = point("a.scm", 2);
  recordRun({{A, 1}, {B, 2}});
  EXPECT_EQ(serializeProfile(Db), serializeProfile(Db));
  // Sorted by file then offsets.
  std::string Text = serializeProfile(Db);
  EXPECT_LT(Text.find("a.scm"), Text.find("z.scm"));
}

TEST_F(WeightFixture, LoadMergesAssociatively) {
  // store(d1) then load+merge d2 == both datasets recorded directly.
  const SourceObject *A = point("f", 0);
  const SourceObject *B = point("f", 5);

  ProfileDatabase D1;
  CounterStore C1;
  *C1.counterFor(A) = 5;
  *C1.counterFor(B) = 10;
  D1.addDataset(C1);
  std::string T1 = serializeProfile(D1);

  ProfileDatabase D2;
  CounterStore C2;
  *C2.counterFor(A) = 100;
  *C2.counterFor(B) = 10;
  D2.addDataset(C2);
  std::string T2 = serializeProfile(D2);

  ProfileDatabase Merged;
  std::string Err;
  ASSERT_TRUE(parseProfile(T1, SOT, Merged, Err)) << Err;
  ASSERT_TRUE(parseProfile(T2, SOT, Merged, Err)) << Err;

  recordRun({{A, 5}, {B, 10}});
  recordRun({{A, 100}, {B, 10}});
  EXPECT_DOUBLE_EQ(*Merged.weight(A), *Db.weight(A));
  EXPECT_DOUBLE_EQ(*Merged.weight(B), *Db.weight(B));
}

TEST_F(WeightFixture, ParseRejectsGarbage) {
  ProfileDatabase D;
  std::string Err;
  EXPECT_FALSE(parseProfile("not a profile", SOT, D, Err));
  EXPECT_FALSE(parseProfile("pgmp-profile\t1\npoint\tonly\tthree", SOT, D,
                            Err));
  EXPECT_FALSE(parseProfile("pgmp-profile\t1\nmystery\trecord\n", SOT, D,
                            Err));
  // Missing datasets record.
  EXPECT_FALSE(parseProfile("pgmp-profile\t1\n", SOT, D, Err));
}

TEST_F(WeightFixture, CounterStoreBasics) {
  CounterStore CS;
  const SourceObject *A = point("f", 0);
  uint64_t *Slot = CS.counterFor(A);
  EXPECT_EQ(CS.counterFor(A), Slot) << "stable pointer per point";
  *Slot = 41;
  ++*Slot;
  EXPECT_EQ(CS.count(A), 42u);
  EXPECT_EQ(CS.maxCount(), 42u);
  CS.reset();
  EXPECT_EQ(CS.count(A), 0u);
  EXPECT_EQ(CS.size(), 1u);
  CS.clear();
  EXPECT_EQ(CS.size(), 0u);
}

TEST_F(WeightFixture, GeneratedPointsDeterministic) {
  SourceObjectTable T1, T2;
  const SourceObject *A1 = T1.makeGeneratedPoint("base.scm");
  const SourceObject *B1 = T1.makeGeneratedPoint("base.scm");
  const SourceObject *A2 = T2.makeGeneratedPoint("base.scm");
  const SourceObject *B2 = T2.makeGeneratedPoint("base.scm");
  EXPECT_EQ(A1->key(), A2->key());
  EXPECT_EQ(B1->key(), B2->key());
  EXPECT_NE(A1->key(), B1->key());
  EXPECT_TRUE(A1->Generated);
  // Per-base sequences are independent.
  const SourceObject *C1 = T1.makeGeneratedPoint("other.scm");
  EXPECT_EQ(C1->File, "other.scm%pgmp0");
}

} // namespace
