//===- tests/TemplateTest.cpp - Syntax template instantiation edges -------===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

struct TemplateFixture : ::testing::Test {
  Engine E;
  std::string run(const std::string &Src) { return evalOk(E, Src); }
};

TEST_F(TemplateFixture, StaticTemplateIsConstant) {
  // A template with no pattern vars returns the same structure each time.
  run("(define-syntax (k stx)"
      "  (syntax-case stx () [(_) #''(a b (c 1))]))");
  EXPECT_EQ(run("(k)"), "(a b (c 1))");
  EXPECT_EQ(run("(k)"), "(a b (c 1))");
}

TEST_F(TemplateFixture, MixedStaticAndDynamicParts) {
  run("(define-syntax (wrap stx)"
      "  (syntax-case stx () [(_ e) #''(before (e inside) after)]))");
  EXPECT_EQ(run("(wrap 42)"), "(before (42 inside) after)");
}

TEST_F(TemplateFixture, DottedTemplates) {
  run("(define-syntax (dot stx)"
      "  (syntax-case stx () [(_ a b) #''(a . b)]))");
  EXPECT_EQ(run("(dot 1 2)"), "(1 . 2)");
}

TEST_F(TemplateFixture, VectorTemplates) {
  run("(define-syntax (vec stx)"
      "  (syntax-case stx () [(_ a b ...) #''#(a (b ...))]))");
  EXPECT_EQ(run("(vec 1 2 3)"), "#(1 (2 3))");
}

TEST_F(TemplateFixture, EllipsisOverStaticSubparts) {
  run("(define-syntax (tag stx)"
      "  (syntax-case stx () [(_ e ...) #''((item e) ...)]))");
  EXPECT_EQ(run("(tag 1 2)"), "((item 1) (item 2))");
  EXPECT_EQ(run("(tag)"), "()");
}

TEST_F(TemplateFixture, TwoVarsLockstep) {
  run("(define-syntax (pairup stx)"
      "  (syntax-case stx () [(_ (a b) ...) #''((a . b) ...)]))");
  EXPECT_EQ(run("(pairup (1 2) (3 4))"), "((1 . 2) (3 . 4))");
}

TEST_F(TemplateFixture, VarUsedTwiceInTemplate) {
  run("(define-syntax (dup stx)"
      "  (syntax-case stx () [(_ e) #''(e e)]))");
  EXPECT_EQ(run("(dup 9)"), "(9 9)");
}

TEST_F(TemplateFixture, Depth0VarInsideEllipsisIsConstant) {
  run("(define-syntax (spread stx)"
      "  (syntax-case stx () [(_ c e ...) #''((c e) ...)]))");
  EXPECT_EQ(run("(spread x 1 2 3)"), "((x 1) (x 2) (x 3))");
}

TEST_F(TemplateFixture, NestedEllipsisRebuilds) {
  run("(define-syntax (grid stx)"
      "  (syntax-case stx ()"
      "    [(_ (row ...) ...) #''(((cell row) ...) ...)]))");
  EXPECT_EQ(run("(grid (1 2) () (3))"),
            "(((cell 1) (cell 2)) () ((cell 3)))");
}

TEST_F(TemplateFixture, UnsyntaxComputesAtExpansion) {
  run("(define-syntax (sum-lits stx)"
      "  (syntax-case stx ()"
      "    [(_ a b) #`(quote #,(+ (syntax->datum #'a)"
      "                           (syntax->datum #'b)))]))");
  EXPECT_EQ(run("(sum-lits 20 22)"), "42");
}

TEST_F(TemplateFixture, UnsyntaxSplicingInMiddle) {
  run("(define-syntax (sandwich stx)"
      "  (syntax-case stx ()"
      "    [(_ e ...)"
      "     #`(quote (top #,@(reverse (syntax->list #'(e ...))) bottom))]))");
  EXPECT_EQ(run("(sandwich 1 2 3)"), "(top 3 2 1 bottom)");
}

TEST_F(TemplateFixture, UnsyntaxSplicingEmptyList) {
  run("(define-syntax (maybe stx)"
      "  (syntax-case stx ()"
      "    [(_) #`(quote (a #,@'() b))]))");
  EXPECT_EQ(run("(maybe)"), "(a b)");
}

TEST_F(TemplateFixture, UnsyntaxNextToEllipsis) {
  run("(define-syntax (both stx)"
      "  (syntax-case stx ()"
      "    [(_ e ...)"
      "     #`(quote ((e ...) #,(length (syntax->list #'(e ...)))))]))");
  EXPECT_EQ(run("(both a b c)"), "((a b c) 3)");
}

TEST_F(TemplateFixture, QuasisyntaxPreservesPatternVars) {
  run("(define-syntax (q stx)"
      "  (syntax-case stx ()"
      "    [(_ a) #`(quote (a #,(* 2 3)))]))");
  EXPECT_EQ(run("(q hello)"), "(hello 6)");
}

TEST_F(TemplateFixture, TemplatesInsideHelperLambdas) {
  // Pattern variables are reachable from templates nested under lambdas
  // inside the clause body (the Figure 6 pattern).
  run("(define-syntax (each stx)"
      "  (syntax-case stx ()"
      "    [(_ e ...)"
      "     #`(quote #,(map (lambda (x) (list (syntax->datum x)"
      "                                       (syntax->datum #'(e ...))))"
      "                     (syntax->list #'(e ...))))]))");
  EXPECT_EQ(run("(each 1 2)"), "((1 (1 2)) (2 (1 2)))");
}

TEST_F(TemplateFixture, SourceObjectsSurviveSubstitution) {
  // profile-query on a pattern variable sees the *user's* source
  // location — the property Figure 7's clause-weight depends on.
  E.setInstrumentation(true);
  run("(define-syntax (src-of stx)"
      "  (syntax-case stx ()"
      "    [(_ e) #`(quote #,(syntax-source-file #'e))]))");
  EXPECT_EQ(run("(src-of (+ 1 2))"), "\"<eval>\"");
}

TEST_F(TemplateFixture, EllipsisOverDepthZeroVarRejectedAtDefinition) {
  // A depth-0 pattern variable cannot drive an ellipsis; the template
  // compiler rejects the transformer when it is defined, before any use.
  std::string Err = evalErr(E, "(define-syntax (bad stx)"
                               "  (syntax-case stx ()"
                               "    [(_ e) #''((e ...) ...)]))");
  EXPECT_NE(Err.find("ellipsis"), std::string::npos) << Err;
}

} // namespace
