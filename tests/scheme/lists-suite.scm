;; lists-suite.scm -- list and vector behavior, exercised as user code.

(check-equal (append '(1 2) '(3) '() '(4)) '(1 2 3 4) "append")
(check-equal (append) '() "append no args")
(check-equal (append '(1) 2) '(1 . 2) "append improper tail")
(check-equal (reverse '()) '() "reverse empty")
(check-equal (map + '(1 2 3) '(10 20 30)) '(11 22 33) "map binary")
(check-equal (filter odd? (iota 10)) '(1 3 5 7 9) "filter")
(check-equal (fold-left - 0 '(1 2 3)) -6 "fold-left")
(check-equal (fold-right - 0 '(1 2 3)) 2 "fold-right")
(check-equal (assq 'c '((a . 1) (b . 2) (c . 3))) '(c . 3) "assq")
(check-false (assq 'z '((a . 1))) "assq miss")
(check-equal (list-tail '(1 2 3 4) 2) '(3 4) "list-tail")
(check-equal (take (iota 10) 3) '(0 1 2) "take")
(check-equal (drop (iota 5) 3) '(3 4) "drop")
(check-equal (last '(1 2 3)) 3 "last")
(check-equal (count even? (iota 10)) 5 "count")
(check-equal (remove even? (iota 6)) '(1 3 5) "remove")
(check-equal (list-set '(a b c) 2 'z) '(a b z) "list-set")

;; Sorting is stable and total.
(check-equal (sort '(5 3 9 1) <) '(1 3 5 9) "sort ascending")
(check-equal (list-sort > '(5 3 9 1)) '(9 5 3 1) "list-sort descending")
(check-equal (map cdr (sort '((1 . a) (0 . b) (1 . c))
                            (lambda (x y) (< (car x) (car y)))))
             '(b a c) "sort stability")

;; Vectors.
(check-equal (vector->list (vector-map add1 #(1 2 3))) '(2 3 4)
             "vector-map")
(check-equal (vector-length (make-vector 7 'x)) 7 "make-vector length")
(check-equal (vector-ref (list->vector '(a b c)) 1) 'b "list->vector ref")
(let ([v (vector 1 2 3)])
  (vector-fill! v 0)
  (check-equal (vector->list v) '(0 0 0) "vector-fill!"))

;; Deep structural equality.
(check-true (equal? '(1 (2 #(3 "x"))) '(1 (2 #(3 "x")))) "equal? deep")
(check-false (equal? '(1 (2 3)) '(1 (2 4))) "equal? mismatch")

;; Hashtables as association stores.
(let ([h (make-equal-hashtable)])
  (for-each (lambda (k) (hashtable-set! h (list k) (* k k))) (iota 20))
  (check-equal (hashtable-size h) 20 "ht size")
  (check-equal (hashtable-ref h '(7) #f) 49 "ht structural key")
  (hashtable-delete! h '(7))
  (check-false (hashtable-contains? h '(7)) "ht delete"))
