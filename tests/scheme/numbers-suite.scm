;; numbers-suite.scm -- numeric tower behavior as user code.

(check-equal (+ 1 2 3 4) 10 "variadic +")
(check-equal (* 2 3 4) 24 "variadic *")
(check-equal (- 10 1 2 3) 4 "variadic -")
(check-equal (- 5) -5 "unary minus")
(check-equal (/ 8 2 2) 2 "exact chained division")
(check-equal (/ 1 8) 0.125 "inexact division")
(check-equal (+ 1 0.5) 1.5 "contagion to flonum")
(check-true (= 2 2.0) "numeric equality across exactness")
(check-false (eqv? 2 2.0) "eqv? distinguishes exactness")

(check-equal (quotient 17 5) 3 "quotient")
(check-equal (remainder 17 5) 2 "remainder")
(check-equal (remainder -17 5) -2 "remainder sign follows dividend")
(check-equal (modulo -17 5) 3 "modulo sign follows divisor")

(check-equal (expt 2 16) 65536 "integer expt")
(check-equal (expt 2.0 0.5) (sqrt 2.0) "flonum expt")
(check-equal (sqrt 144) 12 "exact sqrt of square")
(check-equal (abs -7.5) 7.5 "flonum abs")
(check-equal (min 3 1.5 2) 1.5 "min across kinds")
(check-equal (max 3 1.5 2) 3 "max keeps exactness")

(check-equal (floor 2.9) 2.0 "floor")
(check-equal (ceiling -2.1) -2.0 "ceiling")
(check-equal (truncate -2.9) -2.0 "truncate")
(check-equal (floor 5) 5 "floor of fixnum is identity")

(check-true (even? 0) "zero even")
(check-true (odd? -3) "negative odd")
(check-true (integer? 4.0) "integral flonum")
(check-false (integer? 4.5) "fractional flonum")
(check-true (fixnum? 3) "fixnum?")
(check-true (flonum? 3.0) "flonum?")

(check-equal (number->string 255) "255" "number->string")
(check-equal (string->number "3.5") 3.5 "string->number flonum")
(check-false (string->number "12abc") "string->number garbage")

;; Big loop arithmetic stays exact.
(check-equal (let loop ([i 0] [acc 0])
               (if (= i 100000) acc (loop (+ i 1) (+ acc i))))
             4999950000 "large exact sum")

;; Chained comparisons.
(check-true (< 1 2 3 4) "ascending chain")
(check-false (<= 1 2 2 1) "non-monotonic chain")
(check-true (>= 5 5 4) ">= chain")
