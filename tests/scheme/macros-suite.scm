;; macros-suite.scm -- user-level macro programming patterns.

;; A while loop built from syntax-case.
(define-syntax (while stx)
  (syntax-case stx ()
    [(_ test body ...)
     #'(let loop ()
         (when test
           body ...
           (loop)))]))

(define i 0)
(define sum 0)
(while (< i 10)
  (set! sum (+ sum i))
  (set! i (+ i 1)))
(check-equal sum 45 "while loop")

;; swap! via hygienic temporary.
(define-syntax (swap! stx)
  (syntax-case stx ()
    [(_ a b) #'(let ([tmp a]) (set! a b) (set! b tmp))]))
(define x 1)
(define tmp 2) ;; deliberately named like the macro's temporary
(swap! x tmp)
(check-equal (list x tmp) '(2 1) "hygienic swap!")

;; Recursive macro: unrolled repetition.
(define-syntax (repeat stx)
  (syntax-case stx ()
    [(_ 0 e) #'(void)]
    [(_ n e) (number? (syntax->datum #'n))
     #`(begin e (repeat #,(- (syntax->datum #'n) 1) e))]))
(define hits 0)
(repeat 5 (set! hits (+ hits 1)))
(check-equal hits 5 "repeat unrolls")

;; let-alias: macro-generated binding forms compose with user code.
(define-syntax (with-doubled stx)
  (syntax-case stx ()
    [(_ (name init) body ...)
     #'(let ([name (* 2 init)]) body ...)]))
(check-equal (with-doubled (k 21) k) 42 "macro binder")

;; Macros that expand to definitions at top level.
(define-syntax (defconst stx)
  (syntax-case stx ()
    [(_ name val) #'(define name val)]))
(defconst answer 42)
(check-equal answer 42 "macro-generated define")

;; with-syntax + datum->syntax for computed identifiers.
(define-syntax (define-flag stx)
  (syntax-case stx ()
    [(k name)
     (with-syntax ([pred (datum->syntax #'k
                           (string->symbol
                            (string-append
                             (symbol->string (syntax->datum #'name))
                             "?")))])
       #'(begin
           (define state #f)
           (define (pred) state)
           (define (name v) (set! state v))))]))
(define-flag ready)
(ready #t)
(check-true (ready?) "computed identifier")

;; quasiquote data templates.
(define n 3)
(check-equal `(a ,n ,@(iota n) z) '(a 3 0 1 2 z) "quasiquote")
(check-equal `(1 . ,n) '(1 . 3) "quasiquote dotted")
