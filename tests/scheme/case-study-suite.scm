;; case-study-suite.scm -- the Section 6 meta-programs used as ordinary
;; libraries, without profile data (profile-guided behavior is covered by
;; the C++ integration tests; this suite pins the plain semantics).
;; The harness preloads: exclusive-cond, pgmp-case, object-system,
;; profiled-list, profiled-seq.

;; exclusive-cond behaves like cond when clauses are exclusive.
(define (sign x)
  (exclusive-cond
    [(positive? x) 'pos]
    [(negative? x) 'neg]
    [else 'zero]))
(check-equal (map sign '(3 -4 0)) '(pos neg zero) "exclusive-cond")

;; case: membership, else, char and symbol keys, key evaluated once.
(define key-evals 0)
(define (token-kind t)
  (set! key-evals (+ key-evals 1))
  t)
(define (kind t)
  (case (token-kind t)
    [(plus minus) 'additive]
    [(star slash) 'multiplicative]
    [(#\a #\b) 'letter]
    [else 'other]))
(check-equal (kind 'plus) 'additive "case symbols")
(check-equal (kind 'slash) 'multiplicative "case second clause")
(check-equal (kind #\b) 'letter "case chars")
(check-equal (kind 42) 'other "case else")
(check-equal key-evals 4 "key evaluated once per call")

;; case with duplicate-free numeric keys.
(define (small n)
  (case n [(0 1 2) 'low] [(3 4 5) 'mid] [else 'high]))
(check-equal (map small '(0 4 9)) '(low mid high) "case numbers")

;; Object system: definition, fields, dispatch, instance predicates.
(class Point ((x 0) (y 0))
  (define-method (norm2 this)
    (+ (sqr (field this x)) (sqr (field this y))))
  (define-method (shift this dx)
    (set-field! this x (+ (field this x) dx))))
(class Tagged ((tag 'none))
  (define-method (norm2 this) 0))

(define p (new-instance 'Point (cons 'x 3) (cons 'y 4)))
(check-equal (method p norm2) 25 "method call")
(method p shift 10)
(check-equal (field p x) 13 "mutating method")
(check-true (instance-of? p 'Point) "instance-of?")
(check-false (instance-of? p 'Tagged) "instance-of? other class")
(check-equal (method (new-instance 'Tagged) norm2) 0
             "second class dispatch")

;; Profiled list behaves like a list.
(define pl (profiled-list 5 6 7))
(check-equal (p-car pl) 5 "p-car")
(check-equal (p-length pl) 3 "p-length")
(check-equal (p-list->list (p-cons 4 pl)) '(4 5 6 7) "p-cons")
(check-true (p-null? (p-cdr (p-cdr (p-cdr pl)))) "p-null?")

;; Profiled sequence defaults to a list and supports the generic ops.
(define s (profiled-seq 'a 'b 'c))
(check-equal (seq-kind s) 'list "seq defaults to list")
(check-equal (seq-first s) 'a "seq-first")
(check-equal (seq->list (seq-rest s)) '(b c) "seq-rest")
(check-equal (seq-ref s 2) 'c "seq-ref")
(check-equal (seq-length s) 3 "seq-length")
(check-equal (seq-first (seq-push s 'z)) 'z "seq-push")
(check-equal (seq-ref (seq-set s 1 'B) 1) 'B "seq-set")
(check-false (seq-empty? s) "seq-empty? false")
(check-true (seq-empty? (seq-rest (seq-rest (seq-rest s))))
            "seq-empty? true")
