;; pgmp-suite.scm -- the PGMP API driven entirely from Scheme, including
;; an in-process profile/optimize cycle using set-instrumentation!.

;; Weights without data.
(check-false (profile-data-available?) "no data at start")
(check-equal (profile-query (make-profile-point)) 0.0 "query without data")

;; Deterministic generated points.
(check-equal (syntax-source-file (make-profile-point "base.scm"))
             "base.scm%pgmp0" "first generated point")
(check-equal (syntax-source-file (make-profile-point "base.scm"))
             "base.scm%pgmp1" "second generated point")

;; An in-language profile cycle: instrument, run, fold, query.
(define pp-hot (make-profile-point "suite"))
(define pp-cold (make-profile-point "suite"))

(define-syntax (mark-hot stx)
  (syntax-case stx ()
    [(_ e) (annotate-expr #'e pp-hot)]))
(define-syntax (mark-cold stx)
  (syntax-case stx ()
    [(_ e) (annotate-expr #'e pp-cold)]))

(set-instrumentation! #t)
(check-true (instrumentation?) "instrumentation on")
(define (hot-path x) (mark-hot (* x 2)))
(define (cold-path x) (mark-cold (* x 3)))
(set-instrumentation! #f)

(define (run-workload n)
  (let loop ([i 0] [acc 0])
    (if (= i n)
        acc
        (loop (+ i 1)
              (+ acc (hot-path i) (if (zero? (modulo i 10))
                                      (cold-path i)
                                      0))))))
(check-equal (run-workload 10) 90 "workload result sane")

;; Fold counters into weights via store-profile, then inspect.
(store-profile "/tmp/pgmp_scheme_suite.profile")
(check-true (profile-data-available?) "data available after store")
(check-equal (current-profile-datasets) 1 "one data set")
(check-equal (profile-query-count pp-hot) 10 "hot raw count")
(check-equal (profile-query-count pp-cold) 1 "cold raw count")
(check-true (> (profile-query pp-hot) (profile-query pp-cold))
            "hot outweighs cold")
(check-true (<= (profile-query pp-hot) 1.0) "weights bounded")

;; Reload merges as a second data set (Figure 3 averaging).
(load-profile "/tmp/pgmp_scheme_suite.profile")
(check-equal (current-profile-datasets) 2 "merged data sets")
(check-equal (profile-query-count pp-hot) 20 "counts accumulate")

;; clear-profile! resets everything.
(clear-profile!)
(check-false (profile-data-available?) "cleared")

;; A meta-program can use weights to choose code at expansion time.
(load-profile "/tmp/pgmp_scheme_suite.profile")
(define-syntax (pick-hotter stx)
  (syntax-case stx ()
    [(_ a b)
     (if (>= (profile-query #'a) (profile-query #'b)) #'a #'b)]))
;; Neither literal has recorded weight; ties keep the first.
(check-equal (pick-hotter 'left 'right) 'left "tie keeps first")
