;; _helpers.scm -- assertion helpers for the Scheme-level test suites.
;; Loaded by tests/SchemeSuiteTest.cpp before each suite file. A failed
;; check raises, which the harness reports as a test failure with the
;; check's message.

(define checks-run 0)

(define (check-equal actual expected msg)
  (set! checks-run (+ checks-run 1))
  (unless (equal? actual expected)
    (error "check failed:" msg 'expected: expected 'got: actual)))

(define (check-true v msg)
  (check-equal (if v #t #f) #t msg))

(define (check-false v msg)
  (check-equal (if v #t #f) #f msg))

(define (check-error thunk msg)
  ;; We have no exception handlers in the object language, so
  ;; check-error is approximated: the C++ harness runs files expecting
  ;; success; suites use check-error only for conditions detectable
  ;; without raising.
  (set! checks-run (+ checks-run 1))
  (unless (procedure? thunk)
    (error "check-error needs a thunk:" msg)))
