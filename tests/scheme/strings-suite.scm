;; strings-suite.scm -- strings and characters as user code.

(check-equal (string-length "") 0 "empty length")
(check-equal (string-append) "" "append nothing")
(check-equal (string-append "foo" "" "bar") "foobar" "append")
(check-equal (substring "hello world" 6) "world" "substring to end")
(check-equal (substring "hello" 1 4) "ell" "substring range")
(check-true (string=? "a" "a" "a") "string=? chain")
(check-false (string=? "a" "b") "string=? mismatch")
(check-true (string<? "abc" "abd") "string<?")

(check-true (string-contains? "profile-guided" "file") "contains middle")
(check-true (string-contains? "x" "") "empty needle")
(check-false (string-contains? "" "x") "empty haystack")

(check-equal (string->list "ab") '(#\a #\b) "string->list")
(check-equal (list->string '(#\P #\G #\M #\P)) "PGMP" "list->string")
(check-equal (string-upcase "MiXeD") "MIXED" "upcase")
(check-equal (string-downcase "MiXeD") "mixed" "downcase")
(check-equal (make-string 3 #\z) "zzz" "make-string")

(let* ([s "shared"]
       [copy (string-copy s)])
  (check-true (string=? s copy) "copy equal")
  (check-false (eq? s copy) "copy distinct identity"))

;; Characters.
(check-equal (char->integer #\0) 48 "char->integer")
(check-equal (integer->char 65) #\A "integer->char")
(check-true (char<? #\a #\b) "char<?")
(check-true (char<=? #\a #\a) "char<=?")
(check-equal (char-upcase #\q) #\Q "char-upcase")
(check-equal (char-downcase #\Q) #\q "char-downcase")
(check-true (char-alphabetic? #\z) "alphabetic")
(check-false (char-alphabetic? #\5) "digit not alphabetic")
(check-true (char-numeric? #\5) "numeric")
(check-true (char-whitespace? #\tab) "whitespace tab")

;; Symbols round-trip through strings.
(check-equal (string->symbol "hello-world") 'hello-world "string->symbol")
(check-equal (symbol->string 'abc) "abc" "symbol->string")
(check-true (eq? (string->symbol "x") 'x) "interning")

;; Building text with number->string in a loop.
(check-equal (fold-left (lambda (acc n) (string-append acc (number->string n)))
                        "" (iota 5))
             "01234" "string building loop")
