//===- tests/MatcherTest.cpp - Pattern matching via syntax-case -----------===//
//
// Exercises the matcher through the public macro surface with a
// parameterized sweep of (pattern, input, expected) triples, plus
// direct edge cases.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

struct MatchCase {
  const char *Pattern;  ///< syntax-case pattern (without the macro head)
  const char *Input;    ///< arguments at the use site
  const char *Expected; ///< written result of the template, or "!" = no match
  const char *Template; ///< template evaluated on match
};

class MatcherSweep : public ::testing::TestWithParam<MatchCase> {};

TEST_P(MatcherSweep, MatchesAsSpecified) {
  const MatchCase &C = GetParam();
  Engine E;
  // The macro's template is wrapped in (quote ...) so its expansion is
  // data, not code to re-expand.
  std::string Def = std::string("(define-syntax (m stx)") +
                    "  (syntax-case stx ()" + "    [(_ " + C.Pattern +
                    ") #'(quote " + C.Template + ")]" +
                    "    [_ #''no-match]))";
  ASSERT_TRUE(E.evalString(Def).Ok) << Def;
  EvalResult R = E.evalString(std::string("(m ") + C.Input + ")");
  if (std::string(C.Expected) == "!") {
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(writeToString(R.V), "no-match");
    return;
  }
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(writeToString(R.V), C.Expected)
      << "pattern " << C.Pattern << " input " << C.Input;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatcherSweep,
    ::testing::Values(
        // Plain variables and atoms.
        MatchCase{"a", "5", "5", "a"},
        MatchCase{"a b", "1 2", "(2 1)", "(b a)"},
        MatchCase{"a b", "1", "!", "a"},
        MatchCase{"1 a", "1 x", "x", "a"},
        MatchCase{"1 a", "2 x", "!", "a"},
        MatchCase{"#t a", "#t ok", "ok", "a"},
        MatchCase{"\"lit\" a", "\"lit\" ok", "ok", "a"},
        MatchCase{"\"lit\" a", "\"other\" ok", "!", "a"},
        MatchCase{"#\\q a", "#\\q ok", "ok", "a"},
        // Wildcards.
        MatchCase{"_ a", "ignored 7", "7", "a"},
        // Nested structure.
        MatchCase{"(a b) c", "(1 2) 3", "(1 2 3)", "(a b c)"},
        MatchCase{"(a (b c))", "(1 (2 3))", "(3 2 1)", "(c b a)"},
        MatchCase{"(a b)", "(1 2 3)", "!", "a"},
        MatchCase{"()", "()", "empty", "empty"},
        // Dotted patterns.
        MatchCase{"(a . r)", "(1 2 3)", "(1 (2 3))", "(a r)"},
        MatchCase{"(a . r)", "(1 . 2)", "(1 2)", "(a r)"},
        // Ellipsis basics.
        MatchCase{"(e ...)", "(1 2 3)", "(1 2 3)", "(e ...)"},
        MatchCase{"(e ...)", "()", "()", "(e ...)"},
        MatchCase{"(e ...) last", "(1 2) 9", "((1 2) 9)",
                  "((e ...) last)"},
        // Ellipsis with fixed tail inside the same list.
        MatchCase{"(e ... z)", "(1 2 3)", "((1 2) 3)", "((e ...) z)"},
        MatchCase{"(e ... z)", "(3)", "(() 3)", "((e ...) z)"},
        MatchCase{"(e ... z)", "()", "!", "z"},
        // Structured repetition.
        MatchCase{"((k v) ...)", "((a 1) (b 2))", "((a b) (1 2))",
                  "((k ...) (v ...))"},
        MatchCase{"((k v) ...)", "((a 1) (b))", "!", "k"},
        // Nested ellipsis.
        MatchCase{"((e ...) ...)", "((1 2) () (3))", "((1 2) () (3))",
                  "((e ...) ...)"},
        // Vector patterns.
        MatchCase{"#(a b)", "#(1 2)", "(1 2)", "(a b)"},
        MatchCase{"#(a b)", "#(1 2 3)", "!", "a"},
        MatchCase{"#(a b)", "(1 2)", "!", "a"}));

struct MatcherEdge : ::testing::Test {
  Engine E;
};

TEST_F(MatcherEdge, LiteralMatchingUsesFreeIdentifierEquality) {
  // A literal matches even when the use site writes it with different
  // (but unbound-equivalent) scopes; it does not match a use-site
  // identifier that is locally bound.
  ASSERT_TRUE(E.evalString("(define-syntax (has-else stx)"
                           "  (syntax-case stx (else)"
                           "    [(_ else) #''yes]"
                           "    [(_ x) #''no]))")
                  .Ok);
  EXPECT_EQ(evalOk(E, "(has-else else)"), "yes");
  EXPECT_EQ(evalOk(E, "(has-else other)"), "no");
  // `else` bound as a variable at the use site no longer matches the
  // unbound literal.
  EXPECT_EQ(evalOk(E, "(let ([else 1]) (has-else else))"), "no");
}

TEST_F(MatcherEdge, FenderRejectionFallsThrough) {
  ASSERT_TRUE(E.evalString(
                   "(define-syntax (small stx)"
                   "  (syntax-case stx ()"
                   "    [(_ n) (and (number? (syntax->datum #'n))"
                   "                (< (syntax->datum #'n) 10)) #''small]"
                   "    [(_ n) #''big]))")
                  .Ok);
  EXPECT_EQ(evalOk(E, "(small 5)"), "small");
  EXPECT_EQ(evalOk(E, "(small 50)"), "big");
}

TEST_F(MatcherEdge, NoClauseMatchesRaises) {
  ASSERT_TRUE(E.evalString("(define-syntax (pairs-only stx)"
                           "  (syntax-case stx ()"
                           "    [(_ (a b)) #'(cons a b)]))")
                  .Ok);
  EvalResult R = E.evalString("(pairs-only 5)");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("no matching syntax-case clause"),
            std::string::npos);
}

TEST_F(MatcherEdge, RaggedEllipsisLengthsRaise) {
  ASSERT_TRUE(E.evalString("(define-syntax (zip stx)"
                           "  (syntax-case stx ()"
                           "    [(_ (a ...) (b ...)) #'(quote ((a b) ...))]))")
                  .Ok);
  EvalResult R = E.evalString("(zip (1 2 3) (4 5))");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("ragged"), std::string::npos) << R.Error;
  // Equal lengths are fine.
  EXPECT_EQ(evalOk(E, "(zip (1 2) (3 4))"), "((1 3) (2 4))");
}

} // namespace
