//===- tests/ProfileRobustnessTest.cpp - profile integrity layer ----------===//
//
// The tentpole claims of the integrity layer, proven rather than assumed:
//   - no corrupt, truncated, stale, or torn profile input crashes the
//     engine or merges garbage into a ProfileDatabase;
//   - atomic stores never leave a partially written profile visible at
//     the target path, even under injected I/O faults;
//   - corrupt/stale inputs degrade to warning + clean-profile fallback by
//     default, and to structured errors in strict mode;
//   - the three-pass protocol validates the Section 4.3 invariant
//     explicitly through the embedded source-profile fingerprint.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/ThreePass.h"
#include "profile/ProfileIO.h"
#include "support/AtomicFile.h"
#include "support/Checksum.h"
#include "vm/BlockProfile.h"
#include "vm/Vm.h"

#include <cstdio>
#include <unistd.h>

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

std::string slurp(const std::string &Path) {
  std::string Out, Err;
  EXPECT_EQ(readFileAll(Path, Out, Err), FileReadStatus::Ok) << Err;
  return Out;
}

void spit(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << "cannot write " << Path;
  ASSERT_EQ(std::fwrite(Text.data(), 1, Text.size(), F), Text.size());
  std::fclose(F);
}

bool fileExists(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (F)
    std::fclose(F);
  return F != nullptr;
}

/// A populated database with deterministic contents.
void populate(SourceObjectTable &Sources, ProfileDatabase &Db) {
  const SourceObject *A = Sources.intern("app.scm", 0, 10, 1, 1);
  const SourceObject *B = Sources.intern("app.scm", 12, 20, 2, 1);
  Db.mergeEntry(A, ProfileDatabase::Entry{0.75, 30});
  Db.mergeEntry(B, ProfileDatabase::Entry{0.25, 10});
  Db.mergeDatasetCount(1);
}

//===----------------------------------------------------------------------===//
// Malformed-input matrix (satellite: table-driven robustness test)
//===----------------------------------------------------------------------===//

/// Rebuilds a valid v2 profile body with the given point/extra lines and
/// a correct checksum footer, so cases can corrupt exactly one aspect.
std::string v2Profile(const std::string &Records) {
  std::string Out = "pgmp-profile\t2\ndatasets\t1\n" + Records;
  Out += "crc\t" + hex32(crc32(Out)) + "\n";
  return Out;
}

const char *const GoodPoint = "point\tapp.scm\t0\t10\t1\t1\t-\t0.5\t20\n";

TEST(ProfileRobustness, MalformedInputsRejectedWithoutCrash) {
  struct Case {
    const char *Name;
    std::string Text;
    const char *ErrNeedle; ///< must appear in the error message
  };
  const Case Cases[] = {
      {"empty file", "", "bad profile file header"},
      {"wrong magic", "not a profile\nstuff\n", "bad profile file header"},
      {"future version", "pgmp-profile\t99\ndatasets\t1\n",
       "unsupported profile version"},
      {"missing footer", "pgmp-profile\t2\ndatasets\t1\n",
       "missing checksum footer"},
      {"truncated mid-file",
       v2Profile(GoodPoint).substr(0, v2Profile(GoodPoint).size() / 2),
       "checksum"},
      {"bad footer hex", "pgmp-profile\t2\ndatasets\t1\ncrc\tzzzz\n",
       "missing checksum footer"},
      {"wrong checksum",
       "pgmp-profile\t2\ndatasets\t1\ncrc\t00000000\n", "checksum mismatch"},
      {"duplicate datasets",
       v2Profile("datasets\t1\n"), "duplicate datasets record"},
      {"unknown record", v2Profile("mystery\trecord\n"), "unknown record"},
      {"short point", v2Profile("point\tapp.scm\t0\t10\n"), "bad point line"},
      {"NaN weight", v2Profile("point\tapp.scm\t0\t10\t1\t1\t-\tnan\t20\n"),
       "invalid weight"},
      {"Inf weight", v2Profile("point\tapp.scm\t0\t10\t1\t1\t-\tinf\t20\n"),
       "invalid weight"},
      {"negative weight",
       v2Profile("point\tapp.scm\t0\t10\t1\t1\t-\t-0.5\t20\n"),
       "invalid weight"},
      {"negative count",
       v2Profile("point\tapp.scm\t0\t10\t1\t1\t-\t0.5\t-3\n"),
       "negative count"},
      {"begin > end", v2Profile("point\tapp.scm\t10\t4\t1\t1\t-\t0.5\t20\n"),
       "begin > end"},
      {"offset overflow",
       v2Profile("point\tapp.scm\t0\t99999999999\t1\t1\t-\t0.5\t20\n"),
       "out-of-range"},
      {"duplicate point", v2Profile(std::string(GoodPoint) + GoodPoint),
       "duplicate point record"},
      {"bad source record", v2Profile("source\tapp.scm\n"),
       "bad source record"},
      {"duplicate source record",
       v2Profile("source\tapp.scm\t00ff\nsource\tapp.scm\t00ff\n"),
       "duplicate source record"},
      {"misplaced footer",
       v2Profile("crc\t00000000\n" + std::string(GoodPoint)),
       "misplaced checksum footer"},
      {"missing datasets",
       []() {
         std::string T = std::string("pgmp-profile\t2\n") + GoodPoint;
         return T + "crc\t" + hex32(crc32(T)) + "\n";
       }(),
       "missing datasets"},
  };

  for (const Case &C : Cases) {
    SourceObjectTable Sources;
    ProfileDatabase Db;
    ProfileLoadReport Report;
    std::string Err;
    EXPECT_FALSE(parseProfile(C.Text, Sources, Db, Err, nullptr, &Report))
        << C.Name;
    EXPECT_NE(Err.find(C.ErrNeedle), std::string::npos)
        << C.Name << ": got error '" << Err << "'";
    // All-or-nothing: nothing merged from a rejected file.
    EXPECT_FALSE(Db.hasData()) << C.Name;
    EXPECT_EQ(Db.numPoints(), 0u) << C.Name;
  }
}

TEST(ProfileRobustness, BitFlipAnywhereIsDetected) {
  SourceObjectTable Sources;
  ProfileDatabase Db;
  populate(Sources, Db);
  std::string Text = serializeProfile(Db);
  // Flip one bit of every byte in turn; no variant may load or crash.
  for (size_t I = 0; I < Text.size(); ++I) {
    std::string Broken = Text;
    Broken[I] ^= 0x04;
    SourceObjectTable S2;
    ProfileDatabase D2;
    std::string Err;
    EXPECT_FALSE(parseProfile(Broken, S2, D2, Err)) << "flip at byte " << I;
    EXPECT_FALSE(D2.hasData()) << "flip at byte " << I;
  }
}

//===----------------------------------------------------------------------===//
// v2 round trip, v1 compatibility
//===----------------------------------------------------------------------===//

TEST(ProfileRobustness, V2RoundTripVerifiesChecksum) {
  SourceObjectTable Sources;
  ProfileDatabase Db;
  populate(Sources, Db);
  std::string Text = serializeProfile(Db);
  EXPECT_EQ(Text.rfind("pgmp-profile\t2", 0), 0u);
  EXPECT_NE(Text.find("\ncrc\t"), std::string::npos);

  SourceObjectTable S2;
  ProfileDatabase D2;
  ProfileLoadReport Report;
  std::string Err;
  ASSERT_TRUE(parseProfile(Text, S2, D2, Err, nullptr, &Report)) << Err;
  EXPECT_EQ(Report.Version, 2);
  EXPECT_TRUE(Report.ChecksumChecked);
  EXPECT_EQ(Report.NumPoints, 2u);
  EXPECT_EQ(Report.NumDatasets, 1u);
  EXPECT_EQ(D2.numPoints(), 2u);
}

TEST(ProfileRobustness, V1ProfileStillLoadsWithWarning) {
  const std::string V1 = "pgmp-profile\t1\n"
                         "datasets\t1\n"
                         "point\tapp.scm\t0\t10\t1\t1\t-\t0.5\t20\n";
  SourceObjectTable Sources;
  ProfileDatabase Db;
  ProfileLoadReport Report;
  std::string Err;
  ASSERT_TRUE(parseProfile(V1, Sources, Db, Err, nullptr, &Report)) << Err;
  EXPECT_EQ(Report.Version, 1);
  EXPECT_FALSE(Report.ChecksumChecked);
  ASSERT_FALSE(Report.Warnings.empty());
  EXPECT_NE(Report.Warnings[0].find("v1"), std::string::npos);
  EXPECT_TRUE(Db.hasData());

  // Engine level: the legacy warning reaches the diagnostic sink.
  std::string Path = tempPath("v1.prof");
  spit(Path, V1);
  Engine E;
  ASSERT_TRUE(E.loadProfile(Path));
  EXPECT_GE(E.context().Diags.warningCount(), 1u);
  EXPECT_EQ(evalOk(E, "(profile-data-available?)"), "#t");
}

TEST(ProfileRobustness, SourceFingerprintsRecordedAtStoreTime) {
  std::string Path = tempPath("fp.prof");
  Engine E;
  E.setInstrumentation(true);
  ASSERT_TRUE(E.evalString("(define (f) 1) (f) (f)", "app.scm").Ok);
  ASSERT_TRUE(E.storeProfile(Path));
  std::string Text = slurp(Path);
  EXPECT_NE(Text.find("source\tapp.scm\t"), std::string::npos) << Text;
  // Ephemeral buffers are never fingerprinted.
  EXPECT_EQ(Text.find("source\t<"), std::string::npos) << Text;
}

//===----------------------------------------------------------------------===//
// Degradation policy: warn + clean fallback by default, error in strict
//===----------------------------------------------------------------------===//

TEST(ProfileRobustness, CorruptProfileDegradesGracefullyByDefault) {
  std::string Path = tempPath("corrupt.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    ASSERT_TRUE(E.evalString("(define (f) 1) (f) (f)", "app.scm").Ok);
    ASSERT_TRUE(E.storeProfile(Path));
  }
  std::string Text = slurp(Path);
  Text[Text.size() / 2] ^= 0x10;
  spit(Path, Text);

  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path)) << "default mode must degrade, not fail";
  EXPECT_GE(E2.context().Diags.warningCount(), 1u);
  EXPECT_EQ(evalOk(E2, "(profile-data-available?)"), "#f");

  // Scheme level: load-profile returns normally, state stays clean.
  Engine E3;
  EXPECT_EQ(evalOk(E3, "(load-profile \"" + Path + "\")"
                       "(profile-data-available?)"),
            "#f");
}

TEST(ProfileRobustness, CorruptProfileIsAnErrorInStrictMode) {
  std::string Path = tempPath("corrupt.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    ASSERT_TRUE(E.evalString("(define (f) 1) (f)", "app.scm").Ok);
    ASSERT_TRUE(E.storeProfile(Path));
  }
  std::string Text = slurp(Path);
  Text[Text.size() / 2] ^= 0x10;
  spit(Path, Text);

  Engine E2(withStrictProfile());
  ProfileOpResult R = E2.loadProfile(Path);
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("checksum"), std::string::npos) << R.Error;

  // Scheme level: strict mode raises through load-profile.
  Engine E3(withStrictProfile());
  std::string SchemeErr = evalErr(E3, "(load-profile \"" + Path + "\")");
  EXPECT_NE(SchemeErr.find("load-profile"), std::string::npos) << SchemeErr;
}

TEST(ProfileRobustness, MissingProfileIsStillAHardError) {
  Engine E;
  ProfileOpResult R = E.loadProfile("/nonexistent/profile.dat");
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("cannot open"), std::string::npos) << R.Error;
}

TEST(ProfileRobustness, StaleProfileDetectedAgainstChangedSource) {
  std::string Path = tempPath("stale.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    ASSERT_TRUE(E.evalString("(define (f) 1) (f) (f)", "app.scm").Ok);
    ASSERT_TRUE(E.storeProfile(Path));
  }

  // Same buffer name, different code: the profile is stale.
  Engine E2;
  ASSERT_TRUE(E2.evalString("(define (g) 2) (g)", "app.scm").Ok);
  ASSERT_TRUE(E2.loadProfile(Path)) << "default mode must degrade";
  EXPECT_GE(E2.context().Diags.warningCount(), 1u);
  EXPECT_EQ(evalOk(E2, "(profile-data-available?)"), "#f");

  Engine E3(withStrictProfile());
  ASSERT_TRUE(E3.evalString("(define (g) 2) (g)", "app.scm").Ok);
  ProfileOpResult R = E3.loadProfile(Path);
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("stale"), std::string::npos) << R.Error;

  // Matching code: loads fine.
  Engine E4(withStrictProfile());
  ASSERT_TRUE(E4.evalString("(define (f) 1) (f) (f)", "app.scm").Ok);
  ASSERT_TRUE(E4.loadProfile(Path));
  EXPECT_EQ(evalOk(E4, "(profile-data-available?)"), "#t");
}

//===----------------------------------------------------------------------===//
// Atomic stores under injected I/O faults
//===----------------------------------------------------------------------===//

struct FaultGuard {
  ~FaultGuard() { iofault::disarm(); }
};

TEST(ProfileRobustness, TornStoreNeverReplacesPreviousProfile) {
  FaultGuard Guard;
  SourceObjectTable Sources;
  ProfileDatabase Db;
  populate(Sources, Db);

  const iofault::Kind Faults[] = {
      iofault::Kind::ShortWrite, iofault::Kind::WriteError,
      iofault::Kind::FsyncError, iofault::Kind::RenameError};

  for (iofault::Kind K : Faults) {
    std::string Path =
        tempPath("torn_" + std::to_string(static_cast<int>(K)));
    std::string TmpPath =
        Path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    std::string Err;

    // Fault on first-ever store: target must not appear at all.
    std::remove(Path.c_str());
    iofault::arm(K);
    EXPECT_FALSE(storeProfileFile(Db, Path, nullptr, &Err))
        << "fault " << static_cast<int>(K);
    EXPECT_FALSE(Err.empty());
    EXPECT_FALSE(fileExists(Path)) << "fault " << static_cast<int>(K);
    EXPECT_FALSE(fileExists(TmpPath)) << "temp litter left behind";

    // Healthy store, then fault: previous bytes must survive untouched.
    ASSERT_TRUE(storeProfileFile(Db, Path, nullptr, &Err)) << Err;
    std::string Before = slurp(Path);
    ProfileDatabase Db2;
    populate(Sources, Db2);
    Db2.mergeEntry(Sources.intern("app.scm", 30, 40, 3, 1),
                   ProfileDatabase::Entry{0.5, 99});
    iofault::arm(K);
    EXPECT_FALSE(storeProfileFile(Db2, Path, nullptr, &Err));
    EXPECT_EQ(slurp(Path), Before) << "fault " << static_cast<int>(K);
    EXPECT_FALSE(fileExists(TmpPath)) << "temp litter left behind";

    // And the fault is one-shot: the retry succeeds and loads cleanly.
    ASSERT_TRUE(storeProfileFile(Db2, Path, nullptr, &Err)) << Err;
    SourceObjectTable S3;
    ProfileDatabase D3;
    ASSERT_TRUE(loadProfileFile(Path, S3, D3, Err)) << Err;
    EXPECT_EQ(D3.numPoints(), 3u);
  }
}

TEST(ProfileRobustness, InjectedBitFlipIsCaughtAtLoad) {
  FaultGuard Guard;
  SourceObjectTable Sources;
  ProfileDatabase Db;
  populate(Sources, Db);
  std::string Path = tempPath("flip.prof");
  std::string Err;

  iofault::arm(iofault::Kind::BitFlip,
               serializeProfile(Db).size() / 2);
  ASSERT_TRUE(storeProfileFile(Db, Path, nullptr, &Err))
      << "bit flips corrupt silently; the write itself succeeds";

  SourceObjectTable S2;
  ProfileDatabase D2;
  ProfileLoadReport Report;
  EXPECT_FALSE(loadProfileFile(Path, S2, D2, Err, nullptr, &Report));
  EXPECT_EQ(Report.Status, ProfileLoadStatus::Corrupt) << Err;
  EXPECT_FALSE(D2.hasData());
}

TEST(ProfileRobustness, FailedStoreKeepsLiveCounters) {
  FaultGuard Guard;
  std::string Path = tempPath("keep.prof");
  std::remove(Path.c_str()); // may survive from a previous run
  Engine E;
  E.setInstrumentation(true);
  ASSERT_TRUE(E.evalString("(define (f) 1) (f) (f) (f)", "app.scm").Ok);

  iofault::arm(iofault::Kind::WriteError);
  EXPECT_FALSE(E.storeProfile(Path));
  EXPECT_FALSE(fileExists(Path));
  // The failed store must not have folded-and-reset the counters: the
  // retry still has data to persist.
  ProfileOpResult Retry = E.storeProfile(Path);
  ASSERT_TRUE(Retry) << Retry.Error;

  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  EXPECT_EQ(evalOk(E2, "(profile-data-available?)"), "#t");
  EXPECT_EQ(evalOk(E2, "(current-profile-datasets)"), "1");
}

//===----------------------------------------------------------------------===//
// Block profiles: checksum, fingerprint, all-or-nothing apply
//===----------------------------------------------------------------------===//

struct BlockFixture : ::testing::Test {
  Engine E;
  VmRunner Runner{E};

  VmModule *compile(const std::string &Src) {
    VmCompileOptions Opts;
    Opts.ProfileBlocks = true;
    EvalResult R = Runner.evalString(Src, "blk.scm", Opts);
    EXPECT_TRUE(R.Ok) << R.Error;
    return Runner.lastModule();
  }
};

TEST_F(BlockFixture, V2RoundTripWithMatchingFingerprint) {
  VmModule *M = compile("(define (pick x) (if x 'a 'b)) (pick #t) (pick #f)");
  std::string Text = serializeBlockProfile(*M, 0x1234);
  EXPECT_EQ(Text.rfind("pgmp-block-profile\t2", 0), 0u);
  BlockProfileLoadReport Report;
  std::string Err;
  ASSERT_TRUE(applyBlockProfile(Text, *M, Err, 0x1234, &Report)) << Err;
  EXPECT_EQ(Report.Version, 2);
  EXPECT_TRUE(Report.ChecksumChecked);
  EXPECT_EQ(Report.SourceProfileFingerprint, 0x1234u);
}

TEST_F(BlockFixture, MismatchedSourceProfileFingerprintRejected) {
  VmModule *M = compile("(define (pick x) (if x 'a 'b)) (pick #t)");
  std::string Text = serializeBlockProfile(*M, 0x1234);
  std::string Err;
  EXPECT_FALSE(applyBlockProfile(Text, *M, Err, 0x9999));
  EXPECT_NE(Err.find("different source profile"), std::string::npos) << Err;
  // Unknown on either side skips the check (v1 compatibility).
  EXPECT_TRUE(applyBlockProfile(Text, *M, Err, 0)) << Err;
}

TEST_F(BlockFixture, CorruptBlockProfileRejectedWithoutMutation) {
  VmModule *M = compile("(define (pick x) (if x 'a 'b)) (pick #t)");
  std::string Text = serializeBlockProfile(*M);

  uint64_t CountsBefore = 0;
  for (const auto &Fn : M->Functions)
    for (const auto &B : Fn->Blocks)
      CountsBefore += B.ProfileCount;

  for (size_t I = 0; I < Text.size(); I += 7) {
    std::string Broken = Text;
    Broken[I] ^= 0x02;
    std::string Err;
    EXPECT_FALSE(applyBlockProfile(Broken, *M, Err)) << "flip at " << I;
  }
  uint64_t CountsAfter = 0;
  for (const auto &Fn : M->Functions)
    for (const auto &B : Fn->Blocks)
      CountsAfter += B.ProfileCount;
  EXPECT_EQ(CountsBefore, CountsAfter)
      << "rejected profiles must not touch the module";
}

TEST_F(BlockFixture, V1BlockProfileStillLoads) {
  VmModule *M = compile("(define (pick x) (if x 'a 'b)) (pick #t)");
  // Hand-build the legacy format from the module's own structure.
  std::string V1 = "pgmp-block-profile\t1\n";
  for (size_t FI = 0; FI < M->Functions.size(); ++FI) {
    const VmFunction &Fn = *M->Functions[FI];
    V1 += "fn\t" + std::to_string(FI) + "\t" + Fn.Name + "\t" +
          std::to_string(Fn.Blocks.size()) + "\t" +
          std::to_string(Fn.structuralHash()) + "\n";
    for (size_t BI = 0; BI < Fn.Blocks.size(); ++BI)
      V1 += "block\t" + std::to_string(FI) + "\t" + std::to_string(BI) +
            "\t1\n";
  }
  BlockProfileLoadReport Report;
  std::string Err;
  ASSERT_TRUE(applyBlockProfile(V1, *M, Err, 0, &Report)) << Err;
  EXPECT_EQ(Report.Version, 1);
  ASSERT_FALSE(Report.Warnings.empty());
  EXPECT_NE(Report.Warnings[0].find("v1"), std::string::npos);
}

TEST_F(BlockFixture, LintFlagsCorruptionAndPassesCleanFiles) {
  VmModule *M = compile("(define (pick x) (if x 'a 'b)) (pick #t)");
  std::string Text = serializeBlockProfile(*M, 0xfeed);
  std::vector<std::string> Findings;
  EXPECT_TRUE(lintBlockProfileText(Text, Findings)) << Findings.size();
  EXPECT_TRUE(Findings.empty());

  std::string Broken = Text;
  Broken[Broken.size() / 3] ^= 0x08;
  EXPECT_FALSE(lintBlockProfileText(Broken, Findings));
  EXPECT_FALSE(Findings.empty());
}

//===----------------------------------------------------------------------===//
// Three-pass protocol: the Section 4.3 invariant, now explicit
//===----------------------------------------------------------------------===//

const char *ProgramSrc =
    "(define hits-a 0) (define hits-b 0) (define hits-c 0)\n"
    "(define (dispatch c)\n"
    "  (case c\n"
    "    [(#\\a) (set! hits-a (+ hits-a 1))]\n"
    "    [(#\\b) (set! hits-b (+ hits-b 1))]\n"
    "    [else (set! hits-c (+ hits-c 1))]))\n";

ThreePassConfig makeConfig(const std::string &Dir) {
  ThreePassConfig C;
  C.Libraries = {"exclusive-cond", "pgmp-case"};
  C.ProgramSource = ProgramSrc;
  C.ProgramName = "dispatch.scm";
  C.WorkloadSource =
      "(for-each (lambda (i) (dispatch #\\b)) (iota 50))"
      "(for-each (lambda (i) (dispatch #\\a)) (iota 5))";
  C.SourceProfilePath = Dir + "_src.prof";
  C.BlockProfilePath = Dir + "_blk.prof";
  return C;
}

TEST(ProfileRobustness, ThreePassRejectsSwappedSourceProfileExplicitly) {
  ThreePassConfig C = makeConfig(tempPath("tp"));
  std::string Err;
  ASSERT_TRUE(runPassOne(C, Err)) << Err;
  ASSERT_TRUE(runPassTwo(C, Err)) << Err;

  // A different workload skew re-stores a different source profile; the
  // block profile's embedded fingerprint now fails *before* any
  // structural comparison — the Section 4.3 hazard caught by name.
  ThreePassConfig C2 = C;
  C2.WorkloadSource =
      "(for-each (lambda (i) (dispatch #\\a)) (iota 60))"
      "(for-each (lambda (i) (dispatch #\\b)) (iota 3))";
  ASSERT_TRUE(runPassOne(C2, Err)) << Err;

  OptimizedProgram Out;
  ASSERT_TRUE(runPassThree(C2, Out, Err));
  EXPECT_FALSE(Out.BlockProfileValid);
  EXPECT_NE(Err.find("different source profile"), std::string::npos) << Err;
}

TEST(ProfileRobustness, ThreePassStrictModeFailsOnInvalidBlockProfile) {
  ThreePassConfig C = makeConfig(tempPath("tp"));
  std::string Err;
  ASSERT_TRUE(runPassOne(C, Err)) << Err;
  ASSERT_TRUE(runPassTwo(C, Err)) << Err;

  ThreePassConfig C2 = C;
  C2.WorkloadSource = "(for-each (lambda (i) (dispatch #\\a)) (iota 60))";
  ASSERT_TRUE(runPassOne(C2, Err)) << Err;

  C2.StrictProfile = true;
  OptimizedProgram Out;
  EXPECT_FALSE(runPassThree(C2, Out, Err));
}

TEST(ProfileRobustness, ThreePassDetectsStaleProgramSource) {
  ThreePassConfig C = makeConfig(tempPath("tp"));
  std::string Err;
  ASSERT_TRUE(runPassOne(C, Err)) << Err;

  // The program changes between pass 1 and pass 2 — the profile's
  // fingerprint of dispatch.scm no longer matches.
  ThreePassConfig C2 = C;
  C2.ProgramSource = std::string(ProgramSrc) + "(define extra 1)\n";
  C2.StrictProfile = true;
  EXPECT_FALSE(runPassTwo(C2, Err));
  EXPECT_NE(Err.find("stale"), std::string::npos) << Err;

  // Default mode degrades: pass 2 still produces a (unoptimized) build.
  C2.StrictProfile = false;
  EXPECT_TRUE(runPassTwo(C2, Err)) << Err;

  // Unchanged program: strict mode is satisfied.
  C.StrictProfile = true;
  EXPECT_TRUE(runPassTwo(C, Err)) << Err;
}

TEST(ProfileRobustness, ThreePassCorruptSourceProfileDegrades) {
  ThreePassConfig C = makeConfig(tempPath("tp"));
  std::string Err;
  ASSERT_TRUE(runPassOne(C, Err)) << Err;
  std::string Text = slurp(C.SourceProfilePath);
  Text[Text.size() / 2] ^= 0x20;
  spit(C.SourceProfilePath, Text);

  // Default: the whole pipeline still yields a working (if unoptimized)
  // program; strict: pass 2 refuses.
  std::string Blocks;
  EXPECT_TRUE(runPassTwo(C, Err, &Blocks)) << Err;
  C.StrictProfile = true;
  EXPECT_FALSE(runPassTwo(C, Err));
  EXPECT_NE(Err.find("checksum"), std::string::npos) << Err;
}

} // namespace
