//===- tests/DerivedFormsTest.cpp - syntax-rules, do, profile-dump --------===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

struct DerivedFixture : ::testing::Test {
  Engine E;
  std::string run(const std::string &Src) { return evalOk(E, Src); }
};

TEST_F(DerivedFixture, SyntaxRulesBasic) {
  EXPECT_EQ(run("(define-syntax my-if2"
                "  (syntax-rules ()"
                "    [(_ c t e) (cond [c t] [else e])]))"
                "(list (my-if2 #t 1 2) (my-if2 #f 1 2))"),
            "(1 2)");
}

TEST_F(DerivedFixture, SyntaxRulesEllipsis) {
  EXPECT_EQ(run("(define-syntax my-begin"
                "  (syntax-rules ()"
                "    [(_ e) e]"
                "    [(_ e rest ...) ((lambda (x) (my-begin rest ...)) e)]))"
                "(define n 0)"
                "(my-begin (set! n 1) (set! n (+ n 10)) n)"),
            "11");
}

TEST_F(DerivedFixture, SyntaxRulesLiterals) {
  EXPECT_EQ(run("(define-syntax for"
                "  (syntax-rules (in)"
                "    [(_ x in lst body) (map (lambda (x) body) lst)]))"
                "(for x in '(1 2 3) (* x x))"),
            "(1 4 9)");
}

TEST_F(DerivedFixture, SyntaxRulesHygiene) {
  EXPECT_EQ(run("(define-syntax or2"
                "  (syntax-rules ()"
                "    [(_ a b) (let ([t a]) (if t t b))]))"
                "(let ([t 7]) (or2 #f t))"),
            "7");
}

TEST_F(DerivedFixture, SyntaxRulesRecursiveCounts) {
  EXPECT_EQ(run("(define-syntax count-args"
                "  (syntax-rules ()"
                "    [(_) 0]"
                "    [(_ a rest ...) (+ 1 (count-args rest ...))]))"
                "(count-args x y z w)"),
            "4");
}

TEST_F(DerivedFixture, DoLoopBasic) {
  EXPECT_EQ(run("(do ([i 0 (+ i 1)] [acc 0 (+ acc i)])"
                "    ((= i 5) acc))"),
            "10");
}

TEST_F(DerivedFixture, DoLoopWithBody) {
  EXPECT_EQ(run("(define log '())"
                "(do ([i 0 (+ i 1)])"
                "    ((= i 3) (reverse log))"
                "  (set! log (cons i log)))"),
            "(0 1 2)");
}

TEST_F(DerivedFixture, DoLoopNoStep) {
  // A binding without a step keeps its value.
  EXPECT_EQ(run("(do ([limit 4] [i 0 (+ i 1)] [acc 1 (* acc 2)])"
                "    ((= i limit) acc))"),
            "16");
}

TEST_F(DerivedFixture, DoLoopEmptyResult) {
  EXPECT_EQ(run("(do ([i 0 (+ i 1)]) ((= i 2)))"), "#<void>");
}

TEST_F(DerivedFixture, ProfileDumpListsHotSpots) {
  E.setInstrumentation(true);
  run("(define (f n) (if (zero? n) 'done (f (- n 1)))) (f 50)");
  E.foldCountersIntoProfile();
  // The hottest row has weight 1.0 and a positive count.
  EXPECT_EQ(run("(let ([top (car (profile-dump 3))])"
                "  (list (cadr top) (> (caddr top) 0)))"),
            "(1.0 #t)");
  // The limit argument is respected.
  EXPECT_EQ(run("(length (profile-dump 3))"), "3");
  // Rows are sorted by weight, descending.
  EXPECT_EQ(run("(let ([d (profile-dump 5)])"
                "  (andmap (lambda (a b) (>= (cadr a) (cadr b)))"
                "          (take d 4) (cdr d)))"),
            "#t");
}

TEST_F(DerivedFixture, ProfileDumpEmptyWithoutData) {
  EXPECT_EQ(run("(profile-dump)"), "()");
}

} // namespace
