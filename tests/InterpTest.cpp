//===- tests/InterpTest.cpp - Primitive and evaluator tests ---------------===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

struct InterpFixture : ::testing::Test {
  Engine E;
  std::string run(const std::string &Src) { return evalOk(E, Src); }
  std::string err(const std::string &Src) { return evalErr(E, Src); }
};

TEST_F(InterpFixture, NumericTower) {
  EXPECT_EQ(run("(+ 1 2)"), "3");
  EXPECT_EQ(run("(+)"), "0");
  EXPECT_EQ(run("(*)"), "1");
  EXPECT_EQ(run("(- 5)"), "-5");
  EXPECT_EQ(run("(+ 1 2.5)"), "3.5");
  EXPECT_EQ(run("(- 10 1 2)"), "7");
  EXPECT_EQ(run("(/ 1 4)"), "0.25");
  EXPECT_EQ(run("(quotient 7 2)"), "3");
  EXPECT_EQ(run("(remainder 7 2)"), "1");
  EXPECT_EQ(run("(remainder -7 2)"), "-1");
  EXPECT_EQ(run("(modulo -7 2)"), "1");
  EXPECT_EQ(run("(abs -3)"), "3");
  EXPECT_EQ(run("(min 3 1 2)"), "1");
  EXPECT_EQ(run("(max 3 1 2)"), "3");
  EXPECT_EQ(run("(expt 2 10)"), "1024");
  EXPECT_EQ(run("(sqrt 16)"), "4");
  EXPECT_EQ(run("(sqrt 2.25)"), "1.5");
  EXPECT_EQ(run("(floor 2.7)"), "2.0");
  EXPECT_EQ(run("(ceiling 2.2)"), "3.0");
  EXPECT_EQ(run("(round 2.5)"), "2.0");
  EXPECT_EQ(run("(truncate -2.7)"), "-2.0");
  EXPECT_EQ(run("(even? 4)"), "#t");
  EXPECT_EQ(run("(odd? 4)"), "#f");
  EXPECT_EQ(run("(exact->inexact 3)"), "3.0");
  EXPECT_EQ(run("(number->string 42)"), "\"42\"");
  EXPECT_EQ(run("(string->number \"2.5\")"), "2.5");
  EXPECT_EQ(run("(string->number \"nope\")"), "#f");
  EXPECT_EQ(run("(sqr 9)"), "81");
}

TEST_F(InterpFixture, ComparisonChains) {
  EXPECT_EQ(run("(< 1 2 3)"), "#t");
  EXPECT_EQ(run("(< 1 3 2)"), "#f");
  EXPECT_EQ(run("(<= 1 1 2)"), "#t");
  EXPECT_EQ(run("(= 2 2 2)"), "#t");
  EXPECT_EQ(run("(> 3 2 1)"), "#t");
  EXPECT_EQ(run("(>= 3 3 1)"), "#t");
  EXPECT_EQ(run("(= 2 2.0)"), "#t");
}

TEST_F(InterpFixture, ListOps) {
  EXPECT_EQ(run("(length '(1 2 3))"), "3");
  EXPECT_EQ(run("(append '(1) '(2 3) '())"), "(1 2 3)");
  EXPECT_EQ(run("(reverse '(1 2 3))"), "(3 2 1)");
  EXPECT_EQ(run("(list-ref '(a b c) 1)"), "b");
  EXPECT_EQ(run("(list-tail '(a b c) 1)"), "(b c)");
  EXPECT_EQ(run("(memq 'b '(a b c))"), "(b c)");
  EXPECT_EQ(run("(member \"b\" '(\"a\" \"b\"))"), "(\"b\")");
  EXPECT_EQ(run("(memq 'z '(a b))"), "#f");
  EXPECT_EQ(run("(assq 'b '((a 1) (b 2)))"), "(b 2)");
  EXPECT_EQ(run("(assoc \"b\" '((\"a\" 1) (\"b\" 2)))"), "(\"b\" 2)");
  EXPECT_EQ(run("(map + '(1 2) '(10 20))"), "(11 22)");
  EXPECT_EQ(run("(filter even? '(1 2 3 4))"), "(2 4)");
  EXPECT_EQ(run("(fold-left + 0 '(1 2 3))"), "6");
  EXPECT_EQ(run("(fold-left cons '() '(1 2))"), "((() . 1) . 2)");
  EXPECT_EQ(run("(fold-right cons '() '(1 2))"), "(1 2)");
  EXPECT_EQ(run("(iota 4)"), "(0 1 2 3)");
  EXPECT_EQ(run("(iota 3 5 2)"), "(5 7 9)");
  EXPECT_EQ(run("(andmap even? '(2 4))"), "#t");
  EXPECT_EQ(run("(ormap even? '(1 3))"), "#f");
  EXPECT_EQ(run("(list? '(1 2))"), "#t");
  EXPECT_EQ(run("(list? '(1 . 2))"), "#f");
}

TEST_F(InterpFixture, SortIsStableAndOrdered) {
  EXPECT_EQ(run("(sort '(3 1 2) <)"), "(1 2 3)");
  EXPECT_EQ(run("(list-sort > '(3 1 2))"), "(3 2 1)");
  // Stability: pairs with equal keys keep their original order.
  EXPECT_EQ(run("(map cdr (sort '((1 . a) (0 . b) (1 . c) (0 . d))"
                "  (lambda (x y) (< (car x) (car y)))))"),
            "(b d a c)");
}

TEST_F(InterpFixture, VectorOps) {
  EXPECT_EQ(run("(vector-length (make-vector 3))"), "3");
  EXPECT_EQ(run("(vector-ref (vector 'a 'b) 1)"), "b");
  EXPECT_EQ(run("(let ([v (make-vector 2 0)]) (vector-set! v 0 9) v)"),
            "#(9 0)");
  EXPECT_EQ(run("(vector->list #(1 2))"), "(1 2)");
  EXPECT_EQ(run("(list->vector '(1 2))"), "#(1 2)");
  EXPECT_EQ(run("(vector-map add1 #(1 2))"), "#(2 3)");
  EXPECT_EQ(run("(let* ([v #(1 2)] [w (vector-copy v)])"
                "  (vector-set! w 0 9) (list v w))"),
            "(#(1 2) #(9 2))");
}

TEST_F(InterpFixture, StringAndCharOps) {
  EXPECT_EQ(run("(string-length \"abc\")"), "3");
  EXPECT_EQ(run("(substring \"hello\" 1 3)"), "\"el\"");
  EXPECT_EQ(run("(string-append \"a\" \"b\" \"c\")"), "\"abc\"");
  EXPECT_EQ(run("(string=? \"x\" \"x\")"), "#t");
  EXPECT_EQ(run("(string<? \"a\" \"b\")"), "#t");
  EXPECT_EQ(run("(string-contains? \"subject: PLDI\" \"PLDI\")"), "#t");
  EXPECT_EQ(run("(string-contains? \"spam\" \"PLDI\")"), "#f");
  EXPECT_EQ(run("(string->list \"ab\")"), "(#\\a #\\b)");
  EXPECT_EQ(run("(list->string '(#\\h #\\i))"), "\"hi\"");
  EXPECT_EQ(run("(string-upcase \"aBc\")"), "\"ABC\"");
  EXPECT_EQ(run("(char->integer #\\A)"), "65");
  EXPECT_EQ(run("(integer->char 97)"), "#\\a");
  EXPECT_EQ(run("(char-alphabetic? #\\a)"), "#t");
  EXPECT_EQ(run("(char-numeric? #\\7)"), "#t");
  EXPECT_EQ(run("(char-whitespace? #\\space)"), "#t");
  EXPECT_EQ(run("(char=? #\\a #\\a)"), "#t");
  EXPECT_EQ(run("(char<? #\\a #\\b)"), "#t");
}

TEST_F(InterpFixture, HashtableOps) {
  EXPECT_EQ(run("(let ([h (make-eq-hashtable)])"
                "  (hashtable-set! h 'a 1)"
                "  (hashtable-set! h 'b 2)"
                "  (hashtable-set! h 'a 10)"
                "  (list (hashtable-ref h 'a #f)"
                "        (hashtable-ref h 'z 'missing)"
                "        (hashtable-size h)"
                "        (hashtable-contains? h 'b)))"),
            "(10 missing 2 #t)");
  EXPECT_EQ(run("(let ([h (make-equal-hashtable)])"
                "  (hashtable-set! h (list 1 2) 'x)"
                "  (hashtable-ref h (list 1 2) #f))"),
            "x");
  EXPECT_EQ(run("(let ([h (make-eq-hashtable)])"
                "  (hashtable-set! h 'c 1) (hashtable-set! h 'a 2)"
                "  (hashtable-keys h))"),
            "(c a)");
  EXPECT_EQ(run("(let ([h (make-eq-hashtable)])"
                "  (hashtable-update! h 'n add1 0)"
                "  (hashtable-update! h 'n add1 0)"
                "  (hashtable-ref h 'n #f))"),
            "2");
}

TEST_F(InterpFixture, ApplyAndHigherOrder) {
  EXPECT_EQ(run("(apply + '(1 2 3))"), "6");
  EXPECT_EQ(run("(apply + 1 2 '(3 4))"), "10");
  EXPECT_EQ(run("((curry + 1 2) 3)"), "6");
  EXPECT_EQ(run("((compose add1 *) 3 4)"), "13");
}

TEST_F(InterpFixture, PreludeHelpers) {
  EXPECT_EQ(run("(take '(1 2 3 4) 2)"), "(1 2)");
  EXPECT_EQ(run("(take '(1) 5)"), "(1)");
  EXPECT_EQ(run("(drop '(1 2 3) 1)"), "(2 3)");
  EXPECT_EQ(run("(find even? '(1 3 4 5))"), "4");
  EXPECT_EQ(run("(find even? '(1 3))"), "#f");
  EXPECT_EQ(run("(remove even? '(1 2 3 4))"), "(1 3)");
  EXPECT_EQ(run("(last '(1 2 3))"), "3");
  EXPECT_EQ(run("(list-index even? '(1 3 4))"), "2");
  EXPECT_EQ(run("(count even? '(1 2 3 4))"), "2");
  EXPECT_EQ(run("(list-set '(1 2 3) 1 'x)"), "(1 x 3)");
}

TEST_F(InterpFixture, BoxesAndMutation) {
  EXPECT_EQ(run("(let ([b (box 1)]) (set-box! b 2) (unbox b))"), "2");
  EXPECT_EQ(run("(define counter 0)"
                "(define (bump!) (set! counter (+ counter 1)) counter)"
                "(bump!) (bump!) (bump!)"),
            "3");
  EXPECT_EQ(run("(let ([p (cons 1 2)]) (set-car! p 9) p)"), "(9 . 2)");
}

TEST_F(InterpFixture, RestArguments) {
  EXPECT_EQ(run("((lambda args args) 1 2 3)"), "(1 2 3)");
  EXPECT_EQ(run("((lambda (a . rest) (list a rest)) 1 2 3)"), "(1 (2 3))");
  EXPECT_EQ(run("((lambda (a . rest) (list a rest)) 1)"), "(1 ())");
}

TEST_F(InterpFixture, DeepMutualRecursionViaTailCalls) {
  EXPECT_EQ(run("(define (ping n) (if (zero? n) 'done (pong (- n 1))))"
                "(define (pong n) (if (zero? n) 'done (ping (- n 1))))"
                "(ping 200000)"),
            "done");
}

TEST_F(InterpFixture, RngPrimsDeterministic) {
  std::string A = run("(begin (rng-seed! 42)"
                      "  (list (rng-next 100) (rng-next 100) (rng-next 100)))");
  std::string B = run("(begin (rng-seed! 42)"
                      "  (list (rng-next 100) (rng-next 100) (rng-next 100)))");
  EXPECT_EQ(A, B);
}

TEST_F(InterpFixture, ErrorsHaveUsefulMessages) {
  EXPECT_NE(err("(vector-ref (vector 1) 5)").find("out of range"),
            std::string::npos);
  EXPECT_NE(err("(+ 'a 1)").find("number"), std::string::npos);
  EXPECT_NE(err("(error \"custom\" 'x 42)").find("custom x 42"),
            std::string::npos);
  EXPECT_NE(err("((lambda (x) x))").find("argument"), std::string::npos);
  EXPECT_NE(err("(1 2)").find("non-procedure"), std::string::npos);
  EXPECT_NE(err("(quotient 1 0)").find("division by zero"),
            std::string::npos);
}

TEST_F(InterpFixture, GensymPrim) {
  EXPECT_EQ(run("(eq? (gensym) (gensym))"), "#f");
  EXPECT_EQ(run("(symbol? (gensym 'pre))"), "#t");
}

} // namespace
