//===- tests/ReclaimTest.cpp - Boundary reclamation, engine level ---------===//
//
// The generational reclamation contract seen from the Engine API:
// run-boundary collection keeps long sessions in bounded memory; globals,
// macros (retained syntax and transformers), tier state, and the returned
// result all survive forwarding; source-counter profiles are byte-
// identical with reclamation on and off, sequentially and across an
// 8-worker pool; and the profile-selected policy re-derivation is
// deterministic.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/EnginePool.h"
#include "support/AtomicFile.h"

#include <gtest/gtest.h>

#include <string>

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

EngineOptions withReclaim(EngineOptions Opts = {}) {
  Opts.Reclaim = ReclaimMode::Boundary;
  return Opts;
}

// A request-shaped churn unit: allocates a few thousand pairs, keeps none.
const char *ChurnDef =
    "(define (build n acc) (if (= n 0) acc (build (- n 1) (cons n acc))))"
    "(define (churn) (length (build 2000 '())))";

TEST(Reclaim, LongSessionRunsInBoundedMemory) {
  Engine E(withReclaim());
  evalOk(E, ChurnDef);
  // Warm up a few boundaries, then record the plateau: hundreds more
  // run-boundary reclamations must not grow the live set or the reserved
  // footprint — the bounded-memory contract a serve loop relies on.
  for (int I = 0; I < 10; ++I)
    evalOk(E, "(churn)");
  uint64_t LivePlateau = E.context().TheHeap.bytesLive();
  uint64_t ReservedPlateau = E.context().TheHeap.bytesReserved();
  for (int I = 0; I < 300; ++I)
    EXPECT_EQ(evalOk(E, "(churn)"), "2000");
  EXPECT_LE(E.context().TheHeap.bytesLive(), LivePlateau + 64 * 1024)
      << "live bytes must plateau, not creep";
  EXPECT_LE(E.context().TheHeap.bytesReserved(), 2 * ReservedPlateau)
      << "reserved chunks must be recycled, not accumulated";
  EXPECT_GE(E.context().TheHeap.allocStats().Collections, 300u);
}

TEST(Reclaim, RequestUnitsAreTransientAndTheCodeTableStaysBounded) {
  Engine E(withReclaim());
  evalOk(E, ChurnDef);
  // Request-shaped units (no lambdas, no syntax-rules) must be dropped at
  // the run boundary: a serve loop compiles one per request, and adopting
  // them for the session would grow host memory linearly in the request
  // count even though the arena itself plateaus.
  size_t Baseline = E.context().numCodeUnits();
  for (int I = 0; I < 200; ++I)
    EXPECT_EQ(evalOk(E, "(churn)"), "2000");
  EXPECT_EQ(E.context().numCodeUnits(), Baseline)
      << "self-contained request units must not accumulate";
  // A request that defines a lambda is retained — the published closure
  // must keep working across later boundaries.
  evalOk(E, "(define (bump x) (+ x 1))");
  EXPECT_GT(E.context().numCodeUnits(), Baseline);
  for (int I = 0; I < 5; ++I)
    evalOk(E, "(churn)");
  EXPECT_EQ(evalOk(E, "(bump 41)"), "42");
}

TEST(Reclaim, ConstantsEscapingATransientUnitSurviveItsRelease) {
  Engine E(withReclaim());
  evalOk(E, "(define keep '())");
  // The quoted list is a constant owned by a self-contained unit that the
  // engine drops at the boundary; the value escaped into a global, so the
  // root walk (not the unit's constant pool) must keep it alive and
  // forward it through later evacuations.
  evalOk(E, "(set! keep '(10 20 30))");
  evalOk(E, ChurnDef);
  for (int I = 0; I < 20; ++I)
    evalOk(E, "(churn)");
  EXPECT_EQ(evalOk(E, "keep"), "(10 20 30)");
  EXPECT_EQ(evalOk(E, "(car keep)"), "10");
}

TEST(Reclaim, GlobalsAndResultsSurviveForwarding) {
  Engine E(withReclaim());
  evalOk(E, ChurnDef);
  evalOk(E, "(define keep (build 100 '()))");
  // Many boundaries (each one a collection) between the write and the
  // reads: the global's whole list is forwarded every time.
  for (int I = 0; I < 20; ++I)
    evalOk(E, "(churn)");
  EXPECT_EQ(evalOk(E, "(length keep)"), "100");
  EXPECT_EQ(evalOk(E, "(car keep)"), "1");
  EXPECT_EQ(evalOk(E, "(list-tail keep 99)"), "(100)");
  // The value returned across the boundary is itself forwarded: the
  // EvalResult holds a live list, not a dangling nursery pointer.
  EXPECT_EQ(evalOk(E, "(build 3 '())"), "(1 2 3)");
}

TEST(Reclaim, MacrosAndTransformersSurviveCollection) {
  Engine E(withReclaim());
  evalOk(E, ChurnDef);
  // The transformer closure and its retained syntax objects live in the
  // Meanings table — roots across every boundary.
  evalOk(E, "(define-syntax swap!"
            "  (syntax-rules ()"
            "    ((_ a b) (let ((tmp a)) (set! a b) (set! b tmp)))))");
  for (int I = 0; I < 20; ++I)
    evalOk(E, "(churn)");
  evalOk(E, "(define x 1) (define y 2) (swap! x y)");
  EXPECT_EQ(evalOk(E, "(list x y)"), "(2 1)");
  // A macro defined *and used* with collections in between still expands
  // hygienically (its scope sets were forwarded intact).
  evalOk(E, "(define-syntax my-or"
            "  (syntax-rules ()"
            "    ((_) #f)"
            "    ((_ e) e)"
            "    ((_ e r ...) (let ((t e)) (if t t (my-or r ...))))))");
  for (int I = 0; I < 10; ++I)
    evalOk(E, "(churn)");
  EXPECT_EQ(evalOk(E, "(let ((t 'outer)) (my-or #f t))"), "outer");
}

TEST(Reclaim, CallGlobalForwardsArgumentsAndResult) {
  Engine E(withReclaim());
  evalOk(E, ChurnDef);
  evalOk(E, "(define (twice x) (cons x x))");
  EvalResult R = E.callGlobal("twice", {Value::fixnum(7)});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.V.asPair()->Car.asFixnum(), 7);
  EXPECT_EQ(R.V.asPair()->Cdr.asFixnum(), 7);
}

TEST(Reclaim, VmClosuresRelocateUnderTierAlways) {
  // Tier-always routes every call through the VM: frames, rest-args, and
  // VmClosure captures all take the VM allocation sites, and VmClosure —
  // the one external kind — relocates through the registered hooks.
  EngineOptions Opts = withReclaim();
  Opts.Tier.Mode = TierMode::Always;
  Engine E(Opts);
  evalOk(E, ChurnDef);
  evalOk(E, "(define (adder n) (lambda (x) (+ x n)))");
  evalOk(E, "(define add5 (adder 5))");
  for (int I = 0; I < 20; ++I)
    evalOk(E, "(churn)");
  EXPECT_EQ(evalOk(E, "(add5 37)"), "42");
  EXPECT_EQ(evalOk(E, "((adder 1) 2)"), "3");
  // Site attribution reached the VM paths.
  const auto &Sites = E.context().TheHeap.siteStats();
  EXPECT_GT(Sites[static_cast<size_t>(AllocSite::VmFrame)].Objects, 0u);
  EXPECT_GT(Sites[static_cast<size_t>(AllocSite::VmClosure)].Objects, 0u);
}

TEST(Reclaim, ReclaimStatsAreRecorded) {
  Engine E(withReclaim(withStats()));
  evalOk(E, ChurnDef);
  for (int I = 0; I < 5; ++I)
    evalOk(E, "(churn)");
  EXPECT_GE(E.stats().count(Stat::Reclaims), 5u);
  const Heap::AllocStats &A = E.context().TheHeap.allocStats();
  EXPECT_GE(A.Collections, 5u);
  EXPECT_GT(A.BytesReclaimed, 0u);
  EXPECT_EQ(A.ReclaimAborts, 0u);
  // The live/cumulative split: cumulative only grows; live stays small.
  EXPECT_GT(A.BytesAllocated, E.context().TheHeap.bytesLive());
  std::vector<std::pair<std::string, uint64_t>> Rows;
  E.context().TheHeap.appendStats(Rows);
  bool SawLive = false, SawNursery = false, SawTenured = false,
       SawEvac = false;
  for (const auto &[Name, V] : Rows) {
    SawLive |= Name == "heap-bytes-live";
    SawNursery |= Name == "heap-bytes-nursery";
    SawTenured |= Name == "heap-bytes-tenured";
    SawEvac |= Name == "heap-bytes-evacuated";
  }
  EXPECT_TRUE(SawLive && SawNursery && SawTenured && SawEvac);
}

//===----------------------------------------------------------------------===//
// Profile fidelity: reclamation must be invisible to stored profiles
//===----------------------------------------------------------------------===//

// An instrumented workload with distinct hot and cold paths.
const char *ProfiledWorkload =
    "(define (build n acc) (if (= n 0) acc (build (- n 1) (cons n acc))))"
    "(define (hot n) (if (zero? n) 'done (hot (- n 1))))"
    "(define (cold) (length (build 50 '())))"
    "(hot 500)"
    "(cold)"
    "(hot 300)";

std::string runAndStore(ReclaimMode Mode, const std::string &Path) {
  EngineOptions Opts = withInstrumentation();
  Opts.Reclaim = Mode;
  Engine E(Opts);
  // Several boundaries so reclamation actually runs between increments.
  evalOk(E, ProfiledWorkload);
  evalOk(E, "(hot 100)");
  evalOk(E, "(cold)");
  ProfileOpResult S = E.storeProfile(Path);
  EXPECT_TRUE(S) << S.Error;
  std::string Bytes, Err;
  EXPECT_EQ(readFileAll(Path, Bytes, Err), FileReadStatus::Ok) << Err;
  return Bytes;
}

TEST(Reclaim, StoredProfilesAreByteIdenticalWithReclamationOnAndOff) {
  std::string Off = runAndStore(ReclaimMode::Off, tempPath("off.profile"));
  std::string On = runAndStore(ReclaimMode::Boundary, tempPath("on.profile"));
  ASSERT_FALSE(Off.empty());
  EXPECT_EQ(Off, On)
      << "reclamation must be invisible to the stored source profile";
}

std::string runPoolAndStore(ReclaimMode Mode, const std::string &Path) {
  EngineOptions Opts = withInstrumentation();
  Opts.Reclaim = Mode;
  EnginePool Pool(8, Opts);
  EnginePool::PoolResult R = Pool.run([](Engine &E, size_t) {
    EvalResult Last = E.evalString(ProfiledWorkload);
    if (!Last.Ok)
      return Last;
    Last = E.evalString("(hot 100)");
    if (!Last.Ok)
      return Last;
    return E.evalString("(cold)");
  });
  EXPECT_TRUE(R.Ok) << R.Error;
  ProfileOpResult S = Pool.storeMergedProfile(Path);
  EXPECT_TRUE(S) << S.Error;
  std::string Bytes, Err;
  EXPECT_EQ(readFileAll(Path, Bytes, Err), FileReadStatus::Ok) << Err;
  return Bytes;
}

TEST(ReclaimPool, MergedProfilesAreByteIdenticalWithReclamationOnAndOff) {
  std::string Off =
      runPoolAndStore(ReclaimMode::Off, tempPath("pool_off.profile"));
  std::string On =
      runPoolAndStore(ReclaimMode::Boundary, tempPath("pool_on.profile"));
  ASSERT_FALSE(Off.empty());
  EXPECT_EQ(Off, On) << "8-worker merge must be byte-identical too";
}

TEST(ReclaimPool, MergedSiteStatsFoldWorkersIndexWise) {
  EngineOptions Opts = withReclaim();
  EnginePool Pool(4, Opts);
  EnginePool::PoolResult R = Pool.run([](Engine &E, size_t) {
    EvalResult Last = E.evalString(ChurnDef);
    if (!Last.Ok)
      return Last;
    return E.evalString("(churn)");
  });
  ASSERT_TRUE(R.Ok) << R.Error;
  std::array<AllocSiteStats, NumAllocSites> Merged = Pool.mergedSiteStats();
  // The merge is an index-wise sum of the workers' profiles.
  for (size_t I = 0; I < NumAllocSites; ++I) {
    uint64_t Objects = 0, Bytes = 0;
    for (size_t W = 0; W < Pool.size(); ++W) {
      const auto &S = Pool.engine(W).context().TheHeap.siteStats()[I];
      Objects += S.Objects;
      Bytes += S.Bytes;
    }
    EXPECT_EQ(Merged[I].Objects, Objects) << allocSiteName(static_cast<AllocSite>(I));
    EXPECT_EQ(Merged[I].Bytes, Bytes);
  }
  EXPECT_GT(Merged[static_cast<size_t>(AllocSite::InterpFrame)].Objects, 0u);
}

//===----------------------------------------------------------------------===//
// Policy selection
//===----------------------------------------------------------------------===//

TEST(Reclaim, PolicySelectionIsDeterministicInTheProfile) {
  // Two engines running the identical workload derive identical policies.
  auto RunOne = [](Heap::ReclaimPolicy &Out) {
    Engine E(withReclaim());
    evalOk(E, ChurnDef);
    evalOk(E, "(define keep (build 3000 '()))");
    for (int I = 0; I < 10; ++I)
      evalOk(E, "(churn)");
    E.context().TheHeap.selectReclaimPolicy();
    Out = E.context().TheHeap.reclaimPolicy();
  };
  Heap::ReclaimPolicy A, B;
  RunOne(A);
  RunOne(B);
  EXPECT_EQ(A.NurseryChunkBytes, B.NurseryChunkBytes);
  for (size_t I = 0; I < NumAllocSites; ++I) {
    EXPECT_EQ(A.PreTenure[I], B.PreTenure[I])
        << allocSiteName(static_cast<AllocSite>(I));
    EXPECT_EQ(A.HotSite[I], B.HotSite[I])
        << allocSiteName(static_cast<AllocSite>(I));
  }
}

TEST(Reclaim, PreTenuredAllocationsKeepTheWorkloadCorrect) {
  // Force the interpreter's frame site pre-tenured: frames then allocate
  // straight into tenured chunks, and the workload must be none the
  // wiser. (This is the policy's worst case: a pre-tenured site that is
  // actually short-lived just costs major-cycle cleanup, never
  // correctness.)
  Engine E(withReclaim());
  Heap::ReclaimPolicy P = E.context().TheHeap.reclaimPolicy();
  P.PreTenure[static_cast<size_t>(AllocSite::InterpFrame)] = true;
  E.context().TheHeap.setReclaimPolicy(P);
  evalOk(E, ChurnDef);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(evalOk(E, "(churn)"), "2000");
  const auto &SS =
      E.context().TheHeap.siteStats()[static_cast<size_t>(
          AllocSite::InterpFrame)];
  EXPECT_GT(SS.TenuredAllocs, 0u);
  // A forced major cycle reclaims the dead pre-tenured frames.
  E.context().LastResult = Value::undefined();
  uint64_t TenuredBefore = E.context().TheHeap.tenuredBytes();
  ASSERT_TRUE(E.context().reclaimAtBoundary(/*ForceMajor=*/true));
  EXPECT_LT(E.context().TheHeap.tenuredBytes(), TenuredBefore);
  EXPECT_EQ(evalOk(E, "(churn)"), "2000");
}

} // namespace
