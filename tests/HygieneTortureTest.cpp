//===- tests/HygieneTortureTest.cpp - Adversarial hygiene cases -----------===//
//
// The case studies lean on hygiene in specific ways (the `t` binder in
// pgmp-case, the `x` binder in the object system's method sites). These
// tests push the same machinery much harder.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

struct HygieneFixture : ::testing::Test {
  Engine E;
  std::string run(const std::string &Src) { return evalOk(E, Src); }
};

TEST_F(HygieneFixture, MacroGeneratingMacro) {
  EXPECT_EQ(run("(define-syntax (def-const-macro stx)"
                "  (syntax-case stx ()"
                "    [(_ name val)"
                "     #'(define-syntax (name s2)"
                "         (syntax-case s2 ()"
                "           [(_) #'val]))]))"
                "(def-const-macro six 6)"
                "(def-const-macro seven 7)"
                "(* (six) (seven))"),
            "42");
}

TEST_F(HygieneFixture, TwoExpansionsDistinctTemporaries) {
  // Each invocation's introduced binding is distinct: nesting the same
  // macro must not cross-capture.
  EXPECT_EQ(run("(define-syntax (with-one stx)"
                "  (syntax-case stx ()"
                "    [(_ e) #'(let ([v 1]) e)]))"
                "(with-one (with-one (+ 1 1)))"),
            "2");
  EXPECT_EQ(run("(define-syntax (plus-v stx)"
                "  (syntax-case stx ()"
                "    [(_ e) #'(let ([v 10]) (+ v e))]))"
                "(let ([v 5]) (plus-v v))"),
            "15");
}

TEST_F(HygieneFixture, UserBindingShadowsMacroHelperLocally) {
  // A macro-introduced reference to a global helper still works when the
  // use site shadows that name.
  EXPECT_EQ(run("(define (scale x) (* 100 x))"
                "(define-syntax (pct stx)"
                "  (syntax-case stx () [(_ e) #'(scale e)]))"
                "(let ([scale 999]) (pct 2))"),
            "200");
}

TEST_F(HygieneFixture, MacroArgumentEvaluatedInUseSiteScope) {
  EXPECT_EQ(run("(define k 'global)"
                "(define-syntax (capture stx)"
                "  (syntax-case stx () [(_ e) #'(let ([k 'macro]) e)]))"
                "(let ([k 'user]) (capture k))"),
            "user");
}

TEST_F(HygieneFixture, BindersPassedThroughMacros) {
  // The macro receives a binder name from the user and uses it: binding
  // must connect to use-site references.
  EXPECT_EQ(run("(define-syntax (bind-it stx)"
                "  (syntax-case stx ()"
                "    [(_ name val body) #'(let ([name val]) body)]))"
                "(bind-it q 17 (+ q q))"),
            "34");
}

TEST_F(HygieneFixture, RecursiveExpansionDepth) {
  // 60 levels of recursive macro expansion stay well-formed.
  EXPECT_EQ(run("(define-syntax (nest stx)"
                "  (syntax-case stx ()"
                "    [(_ 0 e) #'e]"
                "    [(_ n e) (number? (syntax->datum #'n))"
                "     #`(nest #,(- (syntax->datum #'n) 1) (+ 1 e))]))"
                "(nest 60 0)"),
            "60");
}

TEST_F(HygieneFixture, LetOverMacroOverLet) {
  EXPECT_EQ(run("(define-syntax (add-xy stx)"
                "  (syntax-case stx ()"
                "    [(_ e) #'(let ([x 100]) (+ x e))]))"
                "(let ([x 1]) (add-xy (let ([x 10]) (+ x x))))"),
            "120");
}

TEST_F(HygieneFixture, SyntaxCaseInsideGeneratedCode) {
  // A macro whose output defines another procedural macro using
  // syntax-case — phase boundaries compose.
  EXPECT_EQ(run("(define-syntax (make-swapper stx)"
                "  (syntax-case stx ()"
                "    [(_ name)"
                "     #'(define-syntax (name s)"
                "         (syntax-case s ()"
                "           [(_ a b) #'(list b a)]))]))"
                "(make-swapper flip)"
                "(flip 1 2)"),
            "(2 1)");
}

TEST_F(HygieneFixture, PatternVarNamedLikeCoreForm) {
  // Pattern variables may shadow core form names inside the clause.
  EXPECT_EQ(run("(define-syntax (weird stx)"
                "  (syntax-case stx ()"
                "    [(_ if) #''(saw if)]))"
                "(weird 99)"),
            "(saw 99)");
}

TEST_F(HygieneFixture, UnhygienicBinderCapturesUseSiteReference) {
  // Two binders spelled the same: one carries use-site scopes
  // (datum->syntax — the anaphoric-macro escape hatch), one carries
  // macro scopes. The use-site binder deliberately *captures* the user's
  // reference passed in as `e` (that is what datum->syntax is for),
  // while the macro-scoped binder stays invisible to it.
  EXPECT_EQ(run("(define-syntax (amb stx)"
                "  (syntax-case stx ()"
                "    [(k e)"
                "     (with-syntax ([u (datum->syntax #'k 'uvar)])"
                "       #'(let ([u 1]) (let ([uvar 2]) (list u uvar e))))]))"
                "(let ([uvar 9]) (amb uvar))"),
            "(1 2 1)");
}

} // namespace
