//===- tests/VmTest.cpp - Bytecode compiler/VM tests ----------------------===//

#include "TestUtil.h"

#include "support/Rng.h"
#include "vm/BlockProfile.h"
#include "vm/BlockReorder.h"
#include "vm/Vm.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

struct VmFixture : ::testing::Test {
  Engine E;
  VmRunner Runner{E};

  std::string runVm(const std::string &Src,
                    const VmCompileOptions &Opts = {}) {
    EvalResult R = Runner.evalString(Src, "vmtest.scm", Opts);
    EXPECT_TRUE(R.Ok) << R.Error << "\n  while running: " << Src;
    return R.Ok ? writeToString(R.V) : "<error>";
  }
};

TEST_F(VmFixture, BasicsMatchInterpreter) {
  EXPECT_EQ(runVm("(+ 1 2 3)"), "6");
  EXPECT_EQ(runVm("(if (< 1 2) 'yes 'no)"), "yes");
  EXPECT_EQ(runVm("(let ([x 2] [y 3]) (* x y))"), "6");
  EXPECT_EQ(runVm("(define (sq x) (* x x)) (sq 9)"), "81");
  EXPECT_EQ(runVm("((lambda (a . r) (cons a r)) 1 2 3)"), "(1 2 3)");
  EXPECT_EQ(runVm("(begin 1 2 3)"), "3");
  EXPECT_EQ(runVm("(define v 1) (set! v 42) v"), "42");
}

TEST_F(VmFixture, ClosuresCaptureEnvironments) {
  EXPECT_EQ(runVm("(define (adder n) (lambda (x) (+ x n)))"
                  "(define add5 (adder 5))"
                  "(add5 10)"),
            "15");
  EXPECT_EQ(runVm("(define (counter)"
                  "  (let ([n 0]) (lambda () (set! n (+ n 1)) n)))"
                  "(define c (counter))"
                  "(c) (c) (c)"),
            "3");
}

TEST_F(VmFixture, TailCallsRunInConstantStack) {
  EXPECT_EQ(runVm("(define (loop i acc)"
                  "  (if (= i 500000) acc (loop (+ i 1) (+ acc 2))))"
                  "(loop 0 0)"),
            "1000000");
}

TEST_F(VmFixture, MutualTailRecursion) {
  EXPECT_EQ(runVm("(define (even2? n) (if (zero? n) #t (odd2? (- n 1))))"
                  "(define (odd2? n) (if (zero? n) #f (even2? (- n 1))))"
                  "(even2? 100001)"),
            "#f");
}

TEST_F(VmFixture, VmClosuresCallableFromInterpreterPrims) {
  // map (a C++ primitive) applies a VM closure via the hook.
  EXPECT_EQ(runVm("(map (lambda (x) (* x x)) '(1 2 3))"), "(1 4 9)");
  EXPECT_EQ(runVm("(sort '(3 1 2) (lambda (a b) (< a b)))"), "(1 2 3)");
}

TEST_F(VmFixture, InterpCodeCallsVmCode) {
  ASSERT_EQ(runVm("(define (vm-side x) (* x 7))"), "#<void>");
  // Evaluate through the interpreter; it must call the VM closure.
  EXPECT_EQ(evalOk(E, "(vm-side 6)"), "42");
}

TEST_F(VmFixture, VmCodeCallsInterpCode) {
  ASSERT_TRUE(E.evalString("(define (interp-side x) (+ x 1))").Ok);
  EXPECT_EQ(runVm("(interp-side 41)"), "42");
}

TEST_F(VmFixture, MacrosWorkThroughVmPipeline) {
  loadLib(E, "exclusive-cond");
  loadLib(E, "pgmp-case");
  EXPECT_EQ(runVm("(define (cls c)"
                  "  (case c [(#\\a) 'a] [(#\\b) 'b] [else 'other]))"
                  "(list (cls #\\a) (cls #\\b) (cls #\\z))"),
            "(a b other)");
}

TEST_F(VmFixture, BlockProfilingCountsBlocks) {
  VmCompileOptions Opts;
  Opts.ProfileBlocks = true;
  runVm("(define (f n) (if (even? n) 'e 'o))"
        "(define (go i) (if (zero? i) 'done (begin (f i) (go (- i 1)))))"
        "(go 10)",
        Opts);
  VmModule *M = Runner.lastModule();
  ASSERT_NE(M, nullptr);
  uint64_t Total = 0;
  for (auto &Fn : M->Functions)
    Total += Fn->totalBlockCount();
  EXPECT_GT(Total, 20u);

  // The branch blocks of f each ran 5 times.
  const VmFunction *F = nullptr;
  for (auto &Fn : M->Functions)
    if (Fn->Name == "f")
      F = Fn.get();
  ASSERT_NE(F, nullptr);
  std::vector<uint64_t> Counts;
  for (const Block &B : F->Blocks)
    Counts.push_back(B.ProfileCount);
  EXPECT_EQ(std::count(Counts.begin(), Counts.end(), 5u), 2)
      << disassemble(*F);
}

TEST_F(VmFixture, NoProfileOpsWithoutFlag) {
  runVm("(define (g x) x) (g 1)");
  VmModule *M = Runner.lastModule();
  for (auto &Fn : M->Functions)
    for (const Block &B : Fn->Blocks)
      for (const Instr &I : B.Code)
        EXPECT_NE(I.K, Op::ProfileBlock);
}

TEST_F(VmFixture, BlockProfileRoundTrip) {
  VmCompileOptions Opts;
  Opts.ProfileBlocks = true;
  runVm("(define (h n) (if (even? n) 1 2)) (h 2) (h 2) (h 3)", Opts);
  VmModule *M = Runner.lastModule();
  std::string Text = serializeBlockProfile(*M);

  // Reset and re-apply.
  std::vector<uint64_t> Before;
  for (auto &Fn : M->Functions)
    for (Block &B : Fn->Blocks)
      Before.push_back(B.ProfileCount);
  M->resetBlockCounts();
  std::string Err;
  ASSERT_TRUE(applyBlockProfile(Text, *M, Err)) << Err;
  size_t I = 0;
  for (auto &Fn : M->Functions)
    for (Block &B : Fn->Blocks)
      EXPECT_EQ(B.ProfileCount, Before[I++]);
}

TEST_F(VmFixture, BlockProfileRejectsMismatchedStructure) {
  VmCompileOptions Opts;
  Opts.ProfileBlocks = true;
  runVm("(define (p n) (if n 1 2)) (p #t)", Opts);
  std::string Text = serializeBlockProfile(*Runner.lastModule());

  // A structurally different module must reject the profile.
  Engine E2;
  VmRunner R2(E2);
  ASSERT_TRUE(R2.evalString("(define (p n) (if n (if n 1 2) 3)) (p #t)",
                            "vmtest.scm", Opts)
                  .Ok);
  std::string Err;
  EXPECT_FALSE(applyBlockProfile(Text, *R2.lastModule(), Err));
  EXPECT_NE(Err.find("invalidated"), std::string::npos) << Err;
}

TEST_F(VmFixture, ReorderingPreservesSemanticsAndCutsJumps) {
  // A loop whose condition almost always takes the "else" side: with the
  // default layout the hot path jumps; after reordering it falls through.
  const char *Prog =
      "(define (work n acc)"
      "  (if (= n 0)"
      "      acc"                                   // cold exit
      "      (work (- n 1) (+ acc (if (even? n) 1 2)))))";
  VmCompileOptions Opts;
  Opts.ProfileBlocks = true;
  // Profile run.
  Engine EP;
  VmRunner RP(EP);
  ASSERT_TRUE(RP.evalString(Prog, "work.scm", Opts).Ok);
  ASSERT_TRUE(EP.evalString("(work 1000 0)").Ok);
  VmModule *M = RP.lastModule();

  // Baseline dynamic jump count with original layout (fresh run).
  M->resetStats();
  ASSERT_TRUE(EP.evalString("(work 1000 0)").Ok);
  uint64_t JumpsBefore = M->RunStats.JumpsTaken;
  EvalResult Base = EP.evalString("(work 37 0)");
  ASSERT_TRUE(Base.Ok);

  // Reorder by profile and re-run.
  applyProfileGuidedLayout(*M);
  M->resetStats();
  ASSERT_TRUE(EP.evalString("(work 1000 0)").Ok);
  uint64_t JumpsAfter = M->RunStats.JumpsTaken;
  EvalResult Opt = EP.evalString("(work 37 0)");
  ASSERT_TRUE(Opt.Ok);

  EXPECT_EQ(writeToString(Base.V), writeToString(Opt.V));
  EXPECT_LT(JumpsAfter, JumpsBefore)
      << "profile-guided layout should reduce taken jumps";
}

TEST_F(VmFixture, RestoreOriginalLayoutIsIdentity) {
  const char *Prog = "(define (f n) (if (even? n) 'e 'o)) (f 4)";
  runVm(Prog);
  VmModule *M = Runner.lastModule();
  std::vector<Instr> Before = M->Functions[0]->Linear;
  applyProfileGuidedLayout(*M);
  restoreOriginalLayout(*M);
  const std::vector<Instr> &After = M->Functions[0]->Linear;
  ASSERT_EQ(Before.size(), After.size());
  for (size_t I = 0; I < Before.size(); ++I) {
    EXPECT_EQ(Before[I].K, After[I].K);
    EXPECT_EQ(Before[I].A, After[I].A);
  }
}

//===----------------------------------------------------------------------===//
// Property: VM and interpreter agree on randomly generated programs.
//===----------------------------------------------------------------------===//

class VmEquivalence : public ::testing::TestWithParam<int> {};

std::string randomExpr(Rng &R, int Depth) {
  if (Depth <= 0)
    return std::to_string(static_cast<int64_t>(R.below(20)) - 10);
  switch (R.below(7)) {
  case 0:
    return "(+ " + randomExpr(R, Depth - 1) + " " + randomExpr(R, Depth - 1) +
           ")";
  case 1:
    return "(* " + randomExpr(R, Depth - 1) + " " + randomExpr(R, Depth - 1) +
           ")";
  case 2:
    return "(if (< " + randomExpr(R, Depth - 1) + " " +
           randomExpr(R, Depth - 1) + ") " + randomExpr(R, Depth - 1) + " " +
           randomExpr(R, Depth - 1) + ")";
  case 3:
    return "(let ([a " + randomExpr(R, Depth - 1) + "] [b " +
           randomExpr(R, Depth - 1) + "]) (- a b))";
  case 4:
    return "((lambda (x) (+ x " + randomExpr(R, Depth - 1) + ")) " +
           randomExpr(R, Depth - 1) + ")";
  case 5:
    return "(begin " + randomExpr(R, Depth - 1) + " " +
           randomExpr(R, Depth - 1) + ")";
  default:
    return "(max " + randomExpr(R, Depth - 1) + " " +
           randomExpr(R, Depth - 1) + ")";
  }
}

TEST_P(VmEquivalence, AgreesWithInterpreter) {
  Rng R(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  for (int I = 0; I < 25; ++I) {
    std::string Src = randomExpr(R, 4);
    Engine EI;
    EvalResult RI = EI.evalString(Src);
    ASSERT_TRUE(RI.Ok) << RI.Error << " src: " << Src;

    Engine EV;
    VmRunner RV(EV);
    EvalResult RVm = RV.evalString(Src, "rand.scm");
    ASSERT_TRUE(RVm.Ok) << RVm.Error << " src: " << Src;

    EXPECT_EQ(writeToString(RI.V), writeToString(RVm.V)) << "src: " << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmEquivalence, ::testing::Range(0, 8));

} // namespace
