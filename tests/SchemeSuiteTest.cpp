//===- tests/SchemeSuiteTest.cpp - Scheme-level test suites ---------------===//
//
// Runs the .scm suites under tests/scheme/ through a fresh Engine each.
// A suite signals failure by raising (the check-* helpers in
// _helpers.scm do so with a descriptive message).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

#ifndef PGMP_SCHEME_DIR
#error "PGMP_SCHEME_DIR must be defined"
#endif

namespace {

/// tests/scheme lives next to scheme/ in the source tree.
std::string suiteDir() {
  std::string Root = PGMP_SCHEME_DIR; // <repo>/scheme
  return Root.substr(0, Root.rfind('/')) + "/tests/scheme";
}

struct Suite {
  const char *File;
  /// Case-study libraries to preload (empty-terminated).
  const char *Libs[8];
};

class SchemeSuite : public ::testing::TestWithParam<Suite> {};

TEST_P(SchemeSuite, Passes) {
  const Suite &S = GetParam();
  Engine E;
  for (const char *const *L = S.Libs; *L; ++L)
    loadLib(E, *L);
  EvalResult Helpers = E.evalFile(suiteDir() + "/_helpers.scm");
  ASSERT_TRUE(Helpers.Ok) << Helpers.Error;
  EvalResult R = E.evalFile(suiteDir() + "/" + S.File);
  EXPECT_TRUE(R.Ok) << R.Error;
  // Sanity: the suite actually ran its checks.
  EvalResult N = E.evalString("checks-run");
  ASSERT_TRUE(N.Ok);
  EXPECT_GT(N.V.asFixnum(), 5) << "suite " << S.File << " ran few checks";
}

INSTANTIATE_TEST_SUITE_P(
    Files, SchemeSuite,
    ::testing::Values(
        Suite{"lists-suite.scm", {nullptr}},
        Suite{"numbers-suite.scm", {nullptr}},
        Suite{"strings-suite.scm", {nullptr}},
        Suite{"macros-suite.scm", {nullptr}},
        Suite{"pgmp-suite.scm", {nullptr}},
        Suite{"case-study-suite.scm",
              {"exclusive-cond", "pgmp-case", "object-system",
               "profiled-list", "profiled-seq", nullptr}}),
    [](const ::testing::TestParamInfo<Suite> &Info) {
      std::string Name = Info.param.File;
      Name = Name.substr(0, Name.find('.'));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
