//===- tests/DeterminismTest.cpp - Cross-engine reproducibility -----------===//
//
// The whole PGMP workflow rests on determinism: the profiled build and
// the optimizing build must expand identically (same gensym sequence,
// same generated profile points, same clause visits), or stored profiles
// would attach to the wrong points. These tests pin that property.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

std::string expandIn(Engine &E, const std::string &Src,
                     const std::string &Name) {
  EvalResult R = E.expandToString(Src, Name);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.Ok ? R.V.asString()->Text : "";
}

TEST(Determinism, SameProgramSameExpansionAcrossEngines) {
  const char *Src = "(define (f x)"
                    "  (let loop ([i x] [acc '()])"
                    "    (cond [(zero? i) acc]"
                    "          [else (loop (- i 1) (cons i acc))])))";
  Engine A, B;
  EXPECT_EQ(expandIn(A, Src, "p.scm"), expandIn(B, Src, "p.scm"));
}

TEST(Determinism, MacrosExpandIdenticallyAcrossEngines) {
  const char *Src = "(define-syntax (m stx)"
                    "  (syntax-case stx ()"
                    "    [(_ a b ...) #'(list a (list b ...) a)]))"
                    "(define out (m 1 2 3))";
  Engine A, B;
  EXPECT_EQ(expandIn(A, Src, "p.scm"), expandIn(B, Src, "p.scm"));
}

TEST(Determinism, CaseStudyLibrariesExpandIdentically) {
  const char *Src =
      "(define (dispatch c) (case c [(a) 1] [(b) 2] [else 3]))";
  Engine A, B;
  loadLib(A, "exclusive-cond");
  loadLib(A, "pgmp-case");
  loadLib(B, "exclusive-cond");
  loadLib(B, "pgmp-case");
  EXPECT_EQ(expandIn(A, Src, "p.scm"), expandIn(B, Src, "p.scm"));
}

TEST(Determinism, GeneratedProfilePointsAlignAcrossBuilds) {
  // The object system generates three points per call site via
  // make-profile-point. Storing from engine A and loading into engine B
  // must make B's regenerated points find A's counts.
  const char *Shapes =
      "(class P ((v 1)) (define-method (get this) (field this v)))"
      "(class Q ((v 2)) (define-method (get this) (field this v)))";
  const char *Site = "(define (probe o) (method o get))";
  std::string Path = tempPath("prof");
  {
    Engine A;
    A.setInstrumentation(true);
    loadLib(A, "object-system");
    ASSERT_TRUE(A.evalString(Shapes, "s.scm").Ok);
    ASSERT_TRUE(A.evalString(Site, "site.scm").Ok);
    ASSERT_TRUE(A.evalString("(define p (new-instance 'P))"
                             "(probe p) (probe p) (probe p)")
                    .Ok);
    ASSERT_TRUE(A.storeProfile(Path));
  }
  Engine B;
  ASSERT_TRUE(B.loadProfile(Path));
  loadLib(B, "object-system");
  ASSERT_TRUE(B.evalString(Shapes, "s.scm").Ok);
  std::string Out = expandIn(B, Site, "site.scm");
  // P (hit 3 times) is inlined; Q (never) is not.
  EXPECT_NE(Out.find("'P"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("'Q"), std::string::npos) << Out;
}

TEST(Determinism, ProfileFilesAreByteIdentical) {
  auto Produce = [](const std::string &Path) {
    Engine E;
    E.setInstrumentation(true);
    ASSERT_TRUE(E.evalString("(define (f n)"
                             "  (if (zero? n) 'done (f (- n 1))))"
                             "(f 100)",
                             "d.scm")
                    .Ok);
    ASSERT_TRUE(E.storeProfile(Path));
  };
  std::string P1 = tempPath("p1"), P2 = tempPath("p2");
  Produce(P1);
  Produce(P2);

  auto Slurp = [](const std::string &Path) {
    std::FILE *F = std::fopen(Path.c_str(), "rb");
    EXPECT_NE(F, nullptr);
    std::string Out;
    char Buf[4096];
    size_t N;
    while (F && (N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Out.append(Buf, N);
    if (F)
      std::fclose(F);
    return Out;
  };
  std::string A = Slurp(P1), B = Slurp(P2);
  EXPECT_FALSE(A.empty());
  EXPECT_EQ(A, B);
}

TEST(Determinism, SchemeRngReproducible) {
  auto Run = [] {
    Engine E;
    return evalOk(E, "(rng-seed! 99)"
                     "(map (lambda (i) (rng-next 1000)) (iota 20))");
  };
  EXPECT_EQ(Run(), Run());
}

} // namespace
