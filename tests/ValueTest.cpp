//===- tests/ValueTest.cpp - Value representation unit tests --------------===//

#include "syntax/Heap.h"
#include "syntax/SymbolTable.h"
#include "syntax/Writer.h"

#include <gtest/gtest.h>

using namespace pgmp;

namespace {

TEST(Value, ImmediateKindsAndAccessors) {
  EXPECT_TRUE(Value::nil().isNil());
  EXPECT_TRUE(Value::boolean(true).asBool());
  EXPECT_FALSE(Value::boolean(false).asBool());
  EXPECT_EQ(Value::fixnum(-5).asFixnum(), -5);
  EXPECT_EQ(Value::flonum(2.5).asFlonum(), 2.5);
  EXPECT_EQ(Value::charval('x').asChar(), uint32_t('x'));
  EXPECT_TRUE(Value::eof().isEof());
  EXPECT_TRUE(Value::undefined().isVoid());
  EXPECT_TRUE(Value::unbound().isUnbound());
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(Value::boolean(false).isTruthy());
  EXPECT_TRUE(Value::boolean(true).isTruthy());
  EXPECT_TRUE(Value::fixnum(0).isTruthy());
  EXPECT_TRUE(Value::nil().isTruthy());
  EXPECT_TRUE(Value::undefined().isTruthy());
}

TEST(Value, NumberAsDouble) {
  EXPECT_EQ(Value::fixnum(3).numberAsDouble(), 3.0);
  EXPECT_EQ(Value::flonum(0.5).numberAsDouble(), 0.5);
}

TEST(Value, EqOnImmediates) {
  EXPECT_TRUE(eqValues(Value::fixnum(7), Value::fixnum(7)));
  EXPECT_FALSE(eqValues(Value::fixnum(7), Value::fixnum(8)));
  EXPECT_FALSE(eqValues(Value::fixnum(7), Value::flonum(7.0)));
  EXPECT_TRUE(eqValues(Value::charval('a'), Value::charval('a')));
  EXPECT_TRUE(eqValues(Value::nil(), Value::nil()));
}

TEST(Value, EqOnHeapIsIdentity) {
  Heap H;
  Value A = H.string("x");
  Value B = H.string("x");
  EXPECT_FALSE(eqValues(A, B));
  EXPECT_TRUE(eqValues(A, A));
  EXPECT_TRUE(equalValues(A, B));
}

TEST(Value, EqualStructural) {
  Heap H;
  Value L1 = H.cons(Value::fixnum(1), H.cons(Value::fixnum(2), Value::nil()));
  Value L2 = H.cons(Value::fixnum(1), H.cons(Value::fixnum(2), Value::nil()));
  Value L3 = H.cons(Value::fixnum(1), H.cons(Value::fixnum(3), Value::nil()));
  EXPECT_TRUE(equalValues(L1, L2));
  EXPECT_FALSE(equalValues(L1, L3));

  Value V1 = H.vector({Value::fixnum(1), H.string("a")});
  Value V2 = H.vector({Value::fixnum(1), H.string("a")});
  Value V3 = H.vector({Value::fixnum(1)});
  EXPECT_TRUE(equalValues(V1, V2));
  EXPECT_FALSE(equalValues(V1, V3));
}

TEST(Value, EqualHashConsistentWithEqual) {
  Heap H;
  Value L1 = H.cons(H.string("k"), H.vector({Value::fixnum(1)}));
  Value L2 = H.cons(H.string("k"), H.vector({Value::fixnum(1)}));
  EXPECT_TRUE(equalValues(L1, L2));
  EXPECT_EQ(equalHash(L1), equalHash(L2));
}

TEST(Value, SymbolsInterned) {
  SymbolTable ST;
  Symbol *A = ST.intern("foo");
  Symbol *B = ST.intern("foo");
  Symbol *C = ST.intern("bar");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_TRUE(A->Interned);
}

TEST(Value, GensymsAreFreshAndUninterned) {
  SymbolTable ST;
  Symbol *A = ST.gensym("x");
  Symbol *B = ST.gensym("x");
  EXPECT_NE(A, B);
  EXPECT_NE(A->Name, B->Name);
  EXPECT_FALSE(A->Interned);
  // The gensym's spelling differs from any interned 'x'.
  EXPECT_NE(A, ST.intern("x"));
}

TEST(Heap, ListBuildAndWalk) {
  Heap H;
  Value L = H.list({Value::fixnum(1), Value::fixnum(2), Value::fixnum(3)});
  EXPECT_EQ(listLength(L), 3);
  auto V = listToVector(L);
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[1].asFixnum(), 2);
  EXPECT_EQ(listLength(H.cons(Value::fixnum(1), Value::fixnum(2))), -1);
}

TEST(Heap, TracksAllocationCount) {
  Heap H;
  uint64_t Before = H.numObjects();
  H.cons(Value::nil(), Value::nil());
  H.string("s");
  EXPECT_EQ(H.numObjects(), Before + 2);
}

TEST(HashTable, EqTableBasics) {
  Heap H;
  SymbolTable ST;
  HashTable *T = H.hashtable(HashKind::Eq).asHash();
  Value K1 = Value::object(ValueKind::Symbol, ST.intern("a"));
  Value K2 = Value::object(ValueKind::Symbol, ST.intern("b"));
  T->set(K1, Value::fixnum(1));
  T->set(K2, Value::fixnum(2));
  T->set(K1, Value::fixnum(10));
  EXPECT_EQ(T->size(), 2u);
  EXPECT_EQ(T->get(K1, Value::nil()).asFixnum(), 10);
  EXPECT_TRUE(T->contains(K2));
  EXPECT_TRUE(T->erase(K2));
  EXPECT_FALSE(T->contains(K2));
  EXPECT_FALSE(T->erase(K2));
}

TEST(HashTable, EqualTableKeysByStructure) {
  Heap H;
  HashTable *T = H.hashtable(HashKind::Equal).asHash();
  Value K1 = H.string("key");
  Value K2 = H.string("key");
  T->set(K1, Value::fixnum(1));
  EXPECT_EQ(T->get(K2, Value::nil()).asFixnum(), 1);
  EXPECT_EQ(T->size(), 1u);
}

TEST(HashTable, InsertionOrderKeys) {
  Heap H;
  HashTable *T = H.hashtable(HashKind::Equal).asHash();
  for (int I = 0; I < 20; ++I)
    T->set(Value::fixnum(19 - I), Value::fixnum(I));
  auto Keys = T->keysInInsertionOrder();
  ASSERT_EQ(Keys.size(), 20u);
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(Keys[static_cast<size_t>(I)].asFixnum(), 19 - I);
}

TEST(Writer, Atoms) {
  Heap H;
  EXPECT_EQ(writeToString(Value::fixnum(42)), "42");
  EXPECT_EQ(writeToString(Value::flonum(2.5)), "2.5");
  EXPECT_EQ(writeToString(Value::boolean(true)), "#t");
  EXPECT_EQ(writeToString(Value::charval(' ')), "#\\space");
  EXPECT_EQ(writeToString(Value::charval('\n')), "#\\newline");
  EXPECT_EQ(writeToString(Value::charval('z')), "#\\z");
  EXPECT_EQ(writeToString(H.string("a\"b")), "\"a\\\"b\"");
  EXPECT_EQ(displayToString(H.string("a\"b")), "a\"b");
  EXPECT_EQ(writeToString(Value::nil()), "()");
}

TEST(Writer, ListsAndDotted) {
  Heap H;
  SymbolTable ST;
  Value L = H.list({ST.internValue("a"), ST.internValue("b")});
  EXPECT_EQ(writeToString(L), "(a b)");
  Value D = H.cons(Value::fixnum(1), Value::fixnum(2));
  EXPECT_EQ(writeToString(D), "(1 . 2)");
}

TEST(Writer, QuoteSugar) {
  Heap H;
  SymbolTable ST;
  Value Q = H.list({ST.internValue("quote"), ST.internValue("x")});
  EXPECT_EQ(writeToString(Q), "'x");
}

TEST(Writer, Vectors) {
  Heap H;
  Value V = H.vector({Value::fixnum(1), Value::fixnum(2)});
  EXPECT_EQ(writeToString(V), "#(1 2)");
}

} // namespace
