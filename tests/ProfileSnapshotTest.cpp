//===- tests/ProfileSnapshotTest.cpp - The unified read path --------------===//
//
// ProfileSnapshot is the one profile read surface (replacing the three
// historical paths: profileQuery, profileQueryOpt, Engine::weightOf) and
// EngineOptions the one configuration surface (replacing the Engine::set*
// pile). These tests pin their semantics:
//   - weight() collapses no-data and never-hit to 0.0 (profile-query);
//   - weightOpt() distinguishes them (profile-query*);
//   - snapshots are immutable point-in-time views, shared O(1) between
//     database mutations;
//   - EngineOptions reproduce the old construct-then-set behavior
//     exactly, including the never-instrumented prelude.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <optional>

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

//===----------------------------------------------------------------------===//
// ProfileSnapshot semantics
//===----------------------------------------------------------------------===//

TEST(ProfileSnapshot, EmptyDatabaseHasNoData) {
  Engine E;
  ProfileSnapshot S = E.snapshot();
  EXPECT_FALSE(S.hasData());
  EXPECT_EQ(S.datasets(), 0u);
  EXPECT_EQ(S.points(), 0u);
  const SourceObject *P = E.profilePoint("x.scm", 0, 3);
  EXPECT_EQ(S.weight(P), 0.0) << "no data collapses to cold";
  EXPECT_FALSE(S.weightOpt(P).has_value()) << "no data is distinguishable";
  EXPECT_EQ(S.count(P), 0u);
  EXPECT_FALSE(S.weightOpt(nullptr).has_value());
  EXPECT_EQ(S.weight(nullptr), 0.0);
}

TEST(ProfileSnapshot, ColdPointDistinguishedFromNoData) {
  Engine E(withInstrumentation());
  evalOk(E, "(define (f) 1) (f)");
  E.foldCountersIntoProfile();
  ProfileSnapshot S = E.snapshot();
  EXPECT_TRUE(S.hasData());
  EXPECT_EQ(S.datasets(), 1u);
  const SourceObject *Cold = E.profilePoint("never-ran.scm", 0, 3);
  std::optional<double> W = S.weightOpt(Cold);
  ASSERT_TRUE(W.has_value()) << "data is loaded: cold is 0.0, not nullopt";
  EXPECT_EQ(*W, 0.0);
  EXPECT_EQ(S.weight(Cold), 0.0);
  EXPECT_EQ(S.count(Cold), 0u);
}

TEST(ProfileSnapshot, WeightsAndCountsOfHotPoints) {
  Engine E(withInstrumentation());
  //         0123456789012345678
  evalOk(E, "(define (f) (+ 1 2)) (f) (f) (f)");
  E.foldCountersIntoProfile();
  ProfileSnapshot S = E.snapshot();
  const SourceObject *Body = E.profilePoint("<eval>", 12, 19);
  EXPECT_GT(S.weight(Body), 0.0);
  EXPECT_LE(S.weight(Body), 1.0);
  EXPECT_EQ(S.count(Body), 3u) << "(f) ran three times";
}

TEST(ProfileSnapshot, IsAnImmutablePointInTimeView) {
  Engine E(withInstrumentation());
  evalOk(E, "(define (f) 1) (f)");
  E.foldCountersIntoProfile();
  ProfileSnapshot Before = E.snapshot();
  uint64_t Datasets = Before.datasets();
  size_t Points = Before.points();
  ASSERT_GT(Points, 0u);

  E.clearProfile();
  EXPECT_FALSE(E.snapshot().hasData()) << "the database moved on";
  EXPECT_EQ(Before.datasets(), Datasets) << "the old view did not";
  EXPECT_EQ(Before.points(), Points);
}

TEST(ProfileSnapshot, BackingDataSharedBetweenMutations) {
  Engine E(withInstrumentation());
  evalOk(E, "(define (f) 1) (f)");
  E.foldCountersIntoProfile();
  ProfileSnapshot A = E.snapshot();
  ProfileSnapshot B = E.snapshot();
  EXPECT_EQ(&A.entries(), &B.entries())
      << "snapshots between mutations share one backing copy";
  evalOk(E, "(f)");
  E.foldCountersIntoProfile();
  ProfileSnapshot C = E.snapshot();
  EXPECT_NE(&A.entries(), &C.entries()) << "a mutation rebuilds the cache";
}

TEST(ProfileSnapshot, SchemeQueriesAgreeWithSnapshot) {
  // The Scheme primitives read through the same snapshot surface; the
  // three query forms must stay mutually consistent.
  Engine E(withInstrumentation());
  evalOk(E, "(define pp (make-profile-point \"q.scm\"))"
            "(define-syntax (probe stx)"
            "  (syntax-case stx ()"
            "    [(_ e) (annotate-expr #'e pp)]))"
            "(define (f x) (probe (* x 2)))"
            "(f 1) (f 2)");
  E.foldCountersIntoProfile();
  EXPECT_EQ(evalOk(E, "(profile-query-count pp)"), "2");
  EXPECT_EQ(evalOk(E, "(= (profile-query pp) (profile-query* pp))"), "#t");
}

//===----------------------------------------------------------------------===//
// EngineOptions
//===----------------------------------------------------------------------===//

TEST(EngineOptions, DefaultsReproducePlainEngine) {
  Engine A;
  Engine B{EngineOptions{}};
  EXPECT_EQ(A.instrumentation(), B.instrumentation());
  EXPECT_EQ(A.strictProfile(), B.strictProfile());
  EXPECT_EQ(A.statsEnabled(), B.statsEnabled());
  EXPECT_EQ(evalOk(A, "(+ 1 2)"), evalOk(B, "(+ 1 2)"));
}

TEST(EngineOptions, PreludeIsNeverInstrumented) {
  Engine E(withInstrumentation());
  EXPECT_TRUE(E.instrumentation());
  EXPECT_EQ(E.context().Counters.size(), 0u)
      << "options apply after the prelude: no prelude counters";
  evalOk(E, "(+ 1 2)");
  EXPECT_GT(E.context().Counters.size(), 0u) << "user code is instrumented";
}

TEST(EngineOptions, OptionsMatchTheOldSetterProtocol) {
  EngineOptions Opts;
  Opts.StrictProfile = true;
  Opts.StatsEnabled = true;
  Engine E(Opts);
  EXPECT_TRUE(E.strictProfile());
  EXPECT_TRUE(E.statsEnabled());
  EXPECT_FALSE(E.instrumentation());
}

} // namespace
