//===- tests/TieredExecTest.cpp - Profile-guided tiered execution ---------===//
//
// The tiered-execution contract:
//   - results are identical across TierMode Off/Auto/Always, including
//     closures calling each other across the tier boundary in tail and
//     non-tail positions;
//   - *counter fidelity*: an instrumented run produces byte-identical
//     stored profiles whatever tier executed the code — tiered bytecode
//     bumps the exact same source counters in the same order as the
//     tree-walking interpreter;
//   - phase-1 (macro transformer) code never tiers, and runtime closures
//     whose bodies contain phase-1-only nodes (syntax-case) fall back to
//     the interpreter permanently instead of erroring;
//   - Auto mode respects the invocation threshold, and a loaded profile
//     pre-marks hot closures so they tier on first invocation.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "profile/ShardedCounterStore.h"
#include "support/AtomicFile.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

std::string slurp(const std::string &Path) {
  std::string Out, Err;
  EXPECT_EQ(readFileAll(Path, Out, Err), FileReadStatus::Ok) << Err;
  return Out;
}

EngineOptions withTier(TierMode Mode, uint32_t Threshold = 64,
                       bool Instrument = false, bool Stats = false) {
  EngineOptions Opts;
  Opts.Tier.Mode = Mode;
  Opts.Tier.Threshold = Threshold;
  Opts.Instrument = Instrument;
  Opts.StatsEnabled = Stats;
  return Opts;
}

// Closures that call each other across the tier boundary: `hot` crosses
// any threshold and tiers; `rare` is called once and (in Auto) stays
// interpreted; calls occur in tail position (loop), non-tail position
// (poly, rare), and through a higher-order apply (map from the prelude).
const char *InteropProgram =
    "(define (poly x) (+ (* 3 x x) (* -2 x) 7))\n"
    "(define (hot n)\n"
    "  (let loop ([i 0] [acc 0])\n"
    "    (if (= i n) acc (loop (+ i 1) (+ acc (poly i))))))\n"
    "(define (rare f n) (+ 1 (f n)))\n"
    "(define (weird n) (if (> n 100) (hot n) (rare hot n)))\n";
const char *InteropName = "interop.scm";
const char *InteropWorkload =
    "(list (hot 200) (weird 50) (weird 150) (map poly '(1 2 3)))";

std::string runTiered(TierMode Mode, uint32_t Threshold = 64) {
  Engine E(withTier(Mode, Threshold));
  EXPECT_TRUE(E.evalString(InteropProgram, InteropName).Ok);
  return evalOk(E, InteropWorkload);
}

TEST(TieredExec, ResultsIdenticalAcrossTierModes) {
  std::string Off = runTiered(TierMode::Off);
  EXPECT_EQ(Off, runTiered(TierMode::Always));
  EXPECT_EQ(Off, runTiered(TierMode::Auto));
  // A threshold of 1 tiers everything on its second call; mid-loop
  // tier-up must not disturb in-flight iterations.
  EXPECT_EQ(Off, runTiered(TierMode::Auto, 1));
}

TEST(TieredExec, AutoTiersAfterThresholdOnly) {
  Engine E(withTier(TierMode::Auto, /*Threshold=*/5, /*Instrument=*/false,
                    /*Stats=*/true));
  ASSERT_TRUE(E.evalString("(define (f x) (* x x))", "f.scm").Ok);
  for (int I = 0; I < 4; ++I)
    evalOk(E, "(f 3)");
  EXPECT_EQ(E.stats().count(Stat::TierUps), 0u)
      << "4 calls must stay under a threshold of 5";
  evalOk(E, "(f 3)");
  EXPECT_EQ(E.stats().count(Stat::TierUps), 1u)
      << "the 5th call crosses the threshold";
  EXPECT_EQ(evalOk(E, "(f 7)"), "49") << "tiered body must agree";
  EXPECT_EQ(E.stats().count(Stat::TierUps), 1u) << "compiled exactly once";
}

TEST(TieredExec, AlwaysTiersOnFirstCall) {
  Engine E(withTier(TierMode::Always, 64, false, /*Stats=*/true));
  ASSERT_TRUE(E.evalString("(define (g x) (+ x 1))", "g.scm").Ok);
  EXPECT_EQ(evalOk(E, "(g 41)"), "42");
  EXPECT_GE(E.stats().count(Stat::TierUps), 1u);
}

TEST(TieredExec, SelfTailRecursionStaysFlat) {
  // A deep tiered tail loop must run in constant C++ stack: the VM
  // rebinds the invocation in place even when the callee enters as an
  // interpreter closure that tiers mid-loop.
  Engine E(withTier(TierMode::Auto, 8));
  ASSERT_TRUE(
      E.evalString("(define (count n) (if (zero? n) 'done (count (- n 1))))",
                   "count.scm")
          .Ok);
  EXPECT_EQ(evalOk(E, "(count 2000000)"), "done");
}

TEST(TieredExec, SyntaxCaseBodiesFallBackToInterpreter) {
  // syntax-case in a runtime closure cannot compile to bytecode; the
  // closure must keep running interpreted (TierBlocked), not error.
  Engine E(withTier(TierMode::Always, 64, false, /*Stats=*/true));
  ASSERT_TRUE(E.evalString("(define (probe stx)\n"
                           "  (syntax-case stx () [(a b) #'b]))",
                           "probe.scm")
                  .Ok);
  EXPECT_EQ(evalOk(E, "(syntax->datum (probe #'(1 2)))"), "2");
  EXPECT_EQ(evalOk(E, "(syntax->datum (probe #'(3 4)))"), "4");
  EXPECT_GE(E.stats().count(Stat::TierCompileFails), 1u);
  EXPECT_EQ(E.stats().count(Stat::TierUps), 0u);
}

TEST(TieredExec, MacroTransformersNeverTier) {
  // Phase-1 code: the transformer (and helpers it calls) runs under the
  // PhaseOneDepth guard, so even TierMode::Always leaves it interpreted.
  Engine E(withTier(TierMode::Always, 64, false, /*Stats=*/true));
  ASSERT_TRUE(E.evalString("(define (twice-helper e) (list '+ e e))\n"
                           "(define-syntax (twice stx)\n"
                           "  (syntax-case stx ()\n"
                           "    [(_ e) (datum->syntax stx\n"
                           "             (twice-helper (syntax->datum #'e)))"
                           "]))",
                           "twice.scm")
                  .Ok);
  uint64_t Before = E.stats().count(Stat::TierUps);
  EXPECT_EQ(evalOk(E, "(twice 21)"), "42");
  EXPECT_EQ(evalOk(E, "(twice 5)"), "10");
  EXPECT_EQ(E.stats().count(Stat::TierUps), Before)
      << "transformer bodies and their helpers must stay interpreted";
}

//===----------------------------------------------------------------------===//
// Counter fidelity
//===----------------------------------------------------------------------===//

std::string storeTieredProfile(TierMode Mode, const std::string &Path,
                               uint32_t Threshold = 64) {
  Engine E(withTier(Mode, Threshold, /*Instrument=*/true));
  EXPECT_TRUE(E.evalString(InteropProgram, InteropName).Ok);
  EXPECT_TRUE(E.evalString(InteropWorkload, "workload.scm").Ok);
  ProfileOpResult St = E.storeProfile(Path);
  EXPECT_TRUE(St) << St.Error;
  return slurp(Path);
}

TEST(TieredExec, InstrumentedProfilesByteIdenticalAcrossTierModes) {
  std::string Off =
      storeTieredProfile(TierMode::Off, tempPath("off.profile"));
  ASSERT_FALSE(Off.empty());
  EXPECT_EQ(Off,
            storeTieredProfile(TierMode::Always, tempPath("always.profile")))
      << "tiered bytecode must bump the same counters as the interpreter";
  EXPECT_EQ(Off, storeTieredProfile(TierMode::Auto, tempPath("auto.profile")));
  // Threshold 1 exercises the worst case: almost everything runs tiered,
  // but the tier-up happens mid-workload (after warm interpreted calls).
  EXPECT_EQ(Off, storeTieredProfile(TierMode::Auto,
                                    tempPath("auto1.profile"), 1));
}

//===----------------------------------------------------------------------===//
// Profile-guided pre-tiering
//===----------------------------------------------------------------------===//

TEST(TieredExec, LoadedProfilePremarksHotClosures) {
  std::string Path = tempPath("hot.profile");
  {
    Engine E(withInstrumentation());
    ASSERT_TRUE(E.evalString(InteropProgram, InteropName).Ok);
    ASSERT_TRUE(E.evalString(InteropWorkload, "workload.scm").Ok);
    ProfileOpResult St = E.storeProfile(Path);
    ASSERT_TRUE(St) << St.Error;
  }
  EngineOptions Opts = withTier(TierMode::Auto, /*Threshold=*/1000000,
                                /*Instrument=*/false, /*Stats=*/true);
  Engine E(Opts);
  ProfileOpResult Ld = E.loadProfile(Path);
  ASSERT_TRUE(Ld) << Ld.Error;
  ASSERT_TRUE(E.evalString(InteropProgram, InteropName).Ok);
  EXPECT_GE(E.stats().count(Stat::TierPremarkedHot), 1u)
      << "the hot loop body should cross the default weight threshold";
  // The threshold is unreachable, so any tier-up proves pre-marking.
  ASSERT_TRUE(E.evalString(InteropWorkload, "workload.scm").Ok);
  EXPECT_GE(E.stats().count(Stat::TierUps), 1u)
      << "pre-marked closures tier on first invocation";
}

TEST(TieredExec, TierCompileTimeIsMeasured) {
  Engine E(withTier(TierMode::Always, 64, false, /*Stats=*/true));
  ASSERT_TRUE(E.evalString("(define (h x) (- x 1))", "h.scm").Ok);
  evalOk(E, "(h 1)");
  EXPECT_GE(E.stats().phaseEntries(Phase::TierCompile), 1u);
}

} // namespace
