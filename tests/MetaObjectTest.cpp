//===- tests/MetaObjectTest.cpp - Figures 9-12: receiver class prediction -===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

// Figure 10's shapes.
const char *ShapesSrc =
    "(class Square ((length 0))\n"
    "  (define-method (area this) (sqr (field this length))))\n"
    "(class Circle ((radius 0))\n"
    "  (define-method (area this) (* 3.0 (sqr (field this radius)))))\n"
    "(class Triangle ((base 0) (height 0))\n"
    "  (define-method (area this)\n"
    "    (* (/ 1 2) (* (field this base) (field this height)))))\n";

const char *WorkSrc =
    "(define (total shapes)\n"
    "  (let loop ([ss shapes] [acc 0])\n"
    "    (if (null? ss)\n"
    "        acc\n"
    "        (loop (cdr ss) (+ acc (method (car ss) area))))))\n";

struct ObjectFixture : ::testing::Test {
  void loadAll(Engine &E, const std::string &Tag) {
    loadLib(E, "object-system");
    ASSERT_TRUE(E.evalString(ShapesSrc, "shapes-" + Tag + ".scm").Ok);
    ASSERT_TRUE(E.evalString(WorkSrc, "work-" + Tag + ".scm").Ok);
  }

  // Builds a shape list with the given receiver mix and totals it.
  std::string runMix(Engine &E, int Circles, int Squares, int Triangles) {
    std::string Build =
        "(define shapes (append"
        "  (map (lambda (i) (new-instance 'Circle (cons 'radius 2))) (iota " +
        std::to_string(Circles) +
        "))"
        "  (map (lambda (i) (new-instance 'Square (cons 'length 3))) (iota " +
        std::to_string(Squares) +
        "))"
        "  (map (lambda (i) (new-instance 'Triangle (cons 'base 4)"
        " (cons 'height 5))) (iota " +
        std::to_string(Triangles) + "))))";
    EXPECT_TRUE(E.evalString(Build).Ok);
    return evalOk(E, "(total shapes)");
  }
};

TEST_F(ObjectFixture, BasicsDynamicDispatch) {
  Engine E;
  loadLib(E, "object-system");
  ASSERT_TRUE(E.evalString(ShapesSrc, "shapes.scm").Ok);
  EXPECT_EQ(evalOk(E, "(define s (new-instance 'Square (cons 'length 4)))"
                      "(dynamic-dispatch s 'area)"),
            "16");
  EXPECT_EQ(evalOk(E, "(field s length)"), "4");
  EXPECT_EQ(evalOk(E, "(set-field! s length 5) (field s length)"), "5");
  EXPECT_EQ(evalOk(E, "(instance-of? s 'Square)"), "#t");
  EXPECT_EQ(evalOk(E, "(instance-of? s 'Circle)"), "#f");
  EXPECT_EQ(evalOk(E, "(instance-of? 42 'Square)"), "#f");
}

TEST_F(ObjectFixture, InstrumentedExpansionCoversAllClasses) {
  // Figure 11, top half: without profile data every class gets a branch
  // through instrumented-dispatch, plus the dynamic-dispatch fallback.
  Engine E;
  loadLib(E, "object-system");
  ASSERT_TRUE(E.evalString(ShapesSrc, "shapes.scm").Ok);
  EvalResult R = E.expandToString(WorkSrc, "work.scm");
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Out = R.V.asString()->Text;
  EXPECT_NE(Out.find("instrumented-dispatch"), std::string::npos) << Out;
  EXPECT_NE(Out.find("Square"), std::string::npos);
  EXPECT_NE(Out.find("Circle"), std::string::npos);
  EXPECT_NE(Out.find("Triangle"), std::string::npos);
  EXPECT_NE(Out.find("dynamic-dispatch"), std::string::npos);
  // No inlined method bodies yet.
  EXPECT_EQ(Out.find("field-ref"), std::string::npos) << Out;
}

TEST_F(ObjectFixture, OptimizedExpansionInlinesHotClasses) {
  // Figure 11, bottom half / Figure 12: with profile data, the top
  // classes' method bodies are inlined and sorted by frequency, cold
  // classes fall back to dynamic dispatch.
  std::string Path = tempPath("rcp.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    loadAll(E, "p");
    runMix(E, 3, 1, 0); // Circle 3x, Square 1x, Triangle never
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  loadLib(E2, "object-system");
  ASSERT_TRUE(E2.evalString(ShapesSrc, "shapes-p.scm").Ok);
  EvalResult R = E2.expandToString(WorkSrc, "work-p.scm");
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Out = R.V.asString()->Text;

  // Inlined bodies are visible as direct field-ref lambdas.
  EXPECT_NE(Out.find("field-ref"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("instrumented-dispatch"), std::string::npos) << Out;
  // Circle (3 hits) is tested before Square (1 hit); Triangle dropped.
  size_t CirclePos = Out.find("Circle");
  size_t SquarePos = Out.find("Square");
  EXPECT_LT(CirclePos, SquarePos) << Out;
  EXPECT_EQ(Out.find("Triangle"), std::string::npos) << Out;
  // Fallback kept.
  EXPECT_NE(Out.find("dynamic-dispatch"), std::string::npos) << Out;
}

TEST_F(ObjectFixture, InlineLimitRespected) {
  std::string Path = tempPath("rcp.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    loadAll(E, "p");
    runMix(E, 5, 3, 2); // all three classes used
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  loadLib(E2, "object-system");
  ASSERT_TRUE(E2.evalString(ShapesSrc, "shapes-p.scm").Ok);
  // inline-limit defaults to 2: only Circle and Square inline.
  EvalResult R = E2.expandToString(WorkSrc, "work-p.scm");
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Out = R.V.asString()->Text;
  EXPECT_NE(Out.find("Circle"), std::string::npos);
  EXPECT_NE(Out.find("Square"), std::string::npos);
  EXPECT_EQ(Out.find("Triangle"), std::string::npos) << Out;

  // Raising inline-limit inlines all three.
  Engine E3;
  ASSERT_TRUE(E3.loadProfile(Path));
  loadLib(E3, "object-system");
  ASSERT_TRUE(E3.evalString("(set! inline-limit 3)").Ok);
  ASSERT_TRUE(E3.evalString(ShapesSrc, "shapes-p.scm").Ok);
  R = E3.expandToString(WorkSrc, "work-p.scm");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_NE(R.V.asString()->Text.find("Triangle"), std::string::npos);
}

TEST_F(ObjectFixture, SortToggleReproducesFigure11Vs12) {
  // rcp-sort-classes #f keeps registry order even when profile says
  // otherwise (Figure 11); #t sorts most-frequent-first (Figure 12).
  std::string Path = tempPath("rcp.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    loadAll(E, "p");
    runMix(E, 3, 1, 0);
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  loadLib(E2, "object-system");
  ASSERT_TRUE(E2.evalString("(set! rcp-sort-classes #f)").Ok);
  ASSERT_TRUE(E2.evalString(ShapesSrc, "shapes-p.scm").Ok);
  EvalResult R = E2.expandToString(WorkSrc, "work-p.scm");
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Out = R.V.asString()->Text;
  // Registry order: Square before Circle (Figure 11).
  EXPECT_LT(Out.find("Square"), Out.find("Circle")) << Out;
}

TEST_F(ObjectFixture, OptimizedSemanticsMatchBaseline) {
  std::string Path = tempPath("rcp.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    loadAll(E, "p");
    runMix(E, 4, 2, 1);
    ASSERT_TRUE(E.storeProfile(Path));
  }
  // Baseline result (no profile).
  Engine Base;
  loadAll(Base, "x");
  std::string Expected = runMix(Base, 2, 3, 4);

  // Optimized build, same workload: must match although Triangle is not
  // inlined and goes through the dynamic-dispatch fallback.
  Engine Opt;
  ASSERT_TRUE(Opt.loadProfile(Path));
  loadAll(Opt, "x");
  EXPECT_EQ(runMix(Opt, 2, 3, 4), Expected);
}

TEST_F(ObjectFixture, PerCallSiteProfiling) {
  // Two method call sites get independent profile points: a site that
  // only ever sees Squares inlines Square even if another site is
  // Circle-heavy (the "each occurrence is profiled separately" property
  // from Figure 10/11).
  const char *TwoSites =
      "(define (area-of-circle c) (method c area))\n"
      "(define (area-of-square s) (method s area))\n";
  std::string Path = tempPath("rcp.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    loadLib(E, "object-system");
    ASSERT_TRUE(E.evalString(ShapesSrc, "shapes-p.scm").Ok);
    ASSERT_TRUE(E.evalString(TwoSites, "twosites.scm").Ok);
    ASSERT_TRUE(E.evalString(
        "(define c (new-instance 'Circle (cons 'radius 1)))"
        "(define s (new-instance 'Square (cons 'length 1)))"
        "(for-each (lambda (i) (area-of-circle c)) (iota 10))"
        "(for-each (lambda (i) (area-of-square s)) (iota 10))").Ok);
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  loadLib(E2, "object-system");
  ASSERT_TRUE(E2.evalString(ShapesSrc, "shapes-p.scm").Ok);
  EvalResult R = E2.expandToString(TwoSites, "twosites.scm");
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Out = R.V.asString()->Text;
  // First site (circle-heavy) mentions Circle but not Square; the second
  // site, vice versa. Split the dump at the second define.
  size_t Split = Out.find("area-of-square");
  ASSERT_NE(Split, std::string::npos);
  std::string Site1 = Out.substr(0, Split);
  std::string Site2 = Out.substr(Split);
  EXPECT_NE(Site1.find("Circle"), std::string::npos) << Site1;
  EXPECT_EQ(Site1.find("Square"), std::string::npos) << Site1;
  EXPECT_NE(Site2.find("Square"), std::string::npos) << Site2;
  EXPECT_EQ(Site2.find("Circle"), std::string::npos) << Site2;
}

} // namespace
