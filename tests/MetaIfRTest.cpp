//===- tests/MetaIfRTest.cpp - Figures 1-2: the if-r running example ------===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

const char *ClassifySrc =
    "(define important 0)\n"
    "(define spam 0)\n"
    "(define (flag kind) (if (eq? kind 'important)\n"
    "                        (set! important (+ important 1))\n"
    "                        (set! spam (+ spam 1))))\n"
    "(define (classify email)\n"
    "  (if-r (subject-contains email \"PLDI\")\n"
    "        (flag 'important)\n"
    "        (flag 'spam)))\n";

struct IfRFixture : ::testing::Test {
  void run(Engine &E, const std::string &Name, int NumImportant,
           int NumSpam) {
    loadLib(E, "if-r");
    ASSERT_TRUE(E.evalString(ClassifySrc, Name).Ok);
    for (int I = 0; I < NumImportant; ++I)
      ASSERT_TRUE(E.callGlobal(
          "classify", {E.context().TheHeap.string("about PLDI stuff")}).Ok);
    for (int I = 0; I < NumSpam; ++I)
      ASSERT_TRUE(E.callGlobal(
          "classify", {E.context().TheHeap.string("cheap watches")}).Ok);
  }

  std::string expansionOf(Engine &E) {
    loadLib(E, "if-r");
    EvalResult R = E.expandToString(ClassifySrc, "classify.scm");
    EXPECT_TRUE(R.Ok) << R.Error;
    return R.Ok ? R.V.asString()->Text : "";
  }
};

TEST_F(IfRFixture, WithoutProfileKeepsOriginalOrder) {
  Engine E;
  std::string Out = expansionOf(E);
  // Original branch order: important branch first, test not negated.
  size_t NotPos = Out.find("(not ");
  EXPECT_EQ(NotPos, std::string::npos) << Out;
  EXPECT_LT(Out.find("important"), Out.find("spam")) << Out;
}

TEST_F(IfRFixture, SpamHeavyProfileSwapsBranches) {
  // Figure 2: spam runs 10 times, important 5 times -> swap.
  std::string Path = tempPath("ifr.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    run(E, "classify.scm", 5, 10);
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  std::string Out = expansionOf(E2);
  // The generated if negates the test and puts the spam branch first.
  EXPECT_NE(Out.find("(not "), std::string::npos) << Out;
  size_t IfRPos = Out.find("(not ");
  EXPECT_LT(Out.find("spam", IfRPos), Out.find("important", IfRPos)) << Out;
}

TEST_F(IfRFixture, ImportantHeavyProfileKeepsOrder) {
  std::string Path = tempPath("ifr.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    run(E, "classify.scm", 10, 2);
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  std::string Out = expansionOf(E2);
  EXPECT_EQ(Out.find("(not "), std::string::npos) << Out;
}

TEST_F(IfRFixture, OptimizedCodeBehavesIdentically) {
  // Semantics must be preserved whichever way the branches land.
  std::string Path = tempPath("ifr.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    run(E, "classify.scm", 3, 20);
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  run(E2, "classify.scm", 7, 4);
  EvalResult R = E2.evalString("(list important spam)");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(writeToString(R.V), "(7 4)");
}

TEST_F(IfRFixture, MergedDatasetsDecideTogether) {
  // Two stored data sets with opposite skews; merged weights decide.
  std::string P1 = tempPath("d1.prof");
  std::string P2 = tempPath("d2.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    run(E, "classify.scm", 5, 10); // slight spam lean
    ASSERT_TRUE(E.storeProfile(P1));
  }
  {
    Engine E;
    E.setInstrumentation(true);
    run(E, "classify.scm", 100, 10); // heavy important lean
    ASSERT_TRUE(E.storeProfile(P2));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(P1));
  ASSERT_TRUE(E2.loadProfile(P2));
  // Figure 3 weights: important (0.5+1)/2 = 0.75, spam (1+0.1)/2 = 0.55.
  // important >= spam -> keep original order.
  std::string Out = expansionOf(E2);
  EXPECT_EQ(Out.find("(not "), std::string::npos) << Out;
}

} // namespace
