//===- tests/MetaCaseTest.cpp - Figures 5-8: case / exclusive-cond --------===//

#include "TestUtil.h"

#include "support/Rng.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

// Figure 5's parser over a character workload, with counting actions so
// behavior is observable.
const char *ParserSrc =
    "(define ws 0) (define dg 0) (define sp 0) (define ep 0) (define ot 0)\n"
    "(define (parse c)\n"
    "  (case c\n"
    "    [(#\\space #\\tab) (set! ws (+ ws 1))]\n"
    "    [(#\\0 #\\1 #\\2 #\\3 #\\4 #\\5 #\\6 #\\7 #\\8 #\\9)"
    " (set! dg (+ dg 1))]\n"
    "    [(#\\() (set! sp (+ sp 1))]\n"
    "    [(#\\)) (set! ep (+ ep 1))]\n"
    "    [else (set! ot (+ ot 1))]))\n";

struct CaseFixture : ::testing::Test {
  void load(Engine &E) {
    loadLib(E, "exclusive-cond");
    loadLib(E, "pgmp-case");
  }

  void feed(Engine &E, int Ws, int Dg, int Sp, int Ep, int Ot) {
    auto Run = [&](const char *Ch, int N) {
      std::string Src = "(for-each (lambda (i) (parse " + std::string(Ch) +
                        ")) (iota " + std::to_string(N) + "))";
      ASSERT_TRUE(E.evalString(Src).Ok);
    };
    Run("#\\space", Ws);
    Run("#\\7", Dg);
    Run("#\\(", Sp);
    Run("#\\)", Ep);
    Run("#\\x", Ot);
  }
};

TEST_F(CaseFixture, BehavesLikeStandardCaseWithoutProfile) {
  Engine E;
  load(E);
  ASSERT_TRUE(E.evalString(ParserSrc, "parser.scm").Ok);
  feed(E, 1, 2, 3, 4, 5);
  EXPECT_EQ(evalOk(E, "(list ws dg sp ep ot)"), "(1 2 3 4 5)");
}

TEST_F(CaseFixture, ExpansionShapeWithoutProfileKeepsSourceOrder) {
  Engine E;
  load(E);
  EvalResult R = E.expandToString(ParserSrc, "parser.scm");
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Out = R.V.asString()->Text;
  // Clause tests become explicit key-in? membership tests (Figure 8).
  EXPECT_NE(Out.find("key-in?"), std::string::npos) << Out;
  // Source order preserved: ws before dg before sp before ep.
  size_t W = Out.find("ws (");
  size_t D = Out.find("dg (");
  size_t S = Out.find("sp (");
  size_t P = Out.find("ep (");
  EXPECT_LT(W, D);
  EXPECT_LT(D, S);
  EXPECT_LT(S, P);
}

TEST_F(CaseFixture, Figure8ReorderingUnderPaperWorkload) {
  // The paper's counts: whitespace 55, open 23, close 23, digits 10.
  std::string Path = tempPath("case.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    load(E);
    ASSERT_TRUE(E.evalString(ParserSrc, "parser.scm").Ok);
    feed(E, 55, 10, 23, 23, 0);
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  load(E2);
  EvalResult R = E2.expandToString(ParserSrc, "parser.scm");
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Out = R.V.asString()->Text;
  // Expected order: ws (55) first, then sp/ep (23 each, stable order),
  // then dg (10), with the else action (ot) last.
  size_t W = Out.find("ws (");
  size_t S = Out.find("sp (");
  size_t P = Out.find("ep (");
  size_t D = Out.find("dg (");
  size_t O = Out.find("ot (");
  ASSERT_NE(W, std::string::npos);
  EXPECT_LT(W, S) << Out;
  EXPECT_LT(S, P) << Out;
  EXPECT_LT(P, D) << Out;
  EXPECT_LT(D, O) << Out;
}

TEST_F(CaseFixture, ElseStaysLastEvenWhenHot) {
  // The else clause is never reordered, even if it is the hottest.
  std::string Path = tempPath("case.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    load(E);
    ASSERT_TRUE(E.evalString(ParserSrc, "parser.scm").Ok);
    feed(E, 1, 1, 1, 1, 100);
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  load(E2);
  EvalResult R = E2.expandToString(ParserSrc, "parser.scm");
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Out = R.V.asString()->Text;
  size_t O = Out.find("ot (");
  for (const char *Tag : {"ws (", "dg (", "sp (", "ep ("})
    EXPECT_LT(Out.find(Tag), O) << Out;
}

TEST_F(CaseFixture, KeyExpressionEvaluatedOnce) {
  Engine E;
  load(E);
  EXPECT_EQ(evalOk(E, "(define evals 0)"
                      "(define (key) (set! evals (+ evals 1)) 3)"
                      "(case (key) [(1) 'a] [(2) 'b] [(3) 'c] [else 'z])"),
            "c");
  EXPECT_EQ(evalOk(E, "evals"), "1");
}

TEST_F(CaseFixture, ExclusiveCondDirectUse) {
  Engine E;
  loadLib(E, "exclusive-cond");
  EXPECT_EQ(evalOk(E, "(define (f x)"
                      "  (exclusive-cond"
                      "    [(= x 1) 'one]"
                      "    [(= x 2) 'two]"
                      "    [else 'many]))"
                      "(list (f 1) (f 2) (f 9))"),
            "(one two many)");
}

//===----------------------------------------------------------------------===//
// Property: for random workloads, the profile-guided parser is always
// observationally equivalent to the unoptimized one.
//===----------------------------------------------------------------------===//

class CaseEquivalence : public CaseFixture,
                        public ::testing::WithParamInterface<int> {};

TEST_P(CaseEquivalence, OptimizedMatchesBaseline) {
  Rng R(static_cast<uint64_t>(GetParam()) * 1337 + 11);
  int Counts[5];
  for (int &C : Counts)
    C = static_cast<int>(R.below(40));

  std::string Path = tempPath("prof");
  {
    Engine E;
    E.setInstrumentation(true);
    load(E);
    ASSERT_TRUE(E.evalString(ParserSrc, "parser.scm").Ok);
    feed(E, Counts[0], Counts[1], Counts[2], Counts[3], Counts[4]);
    ASSERT_TRUE(E.storeProfile(Path));
  }

  // Fresh evaluation workload, applied to baseline and optimized builds.
  int Fresh[5];
  for (int &C : Fresh)
    C = static_cast<int>(R.below(25));

  auto Observe = [&](Engine &E) {
    ASSERT_TRUE(E.evalString(ParserSrc, "parser.scm").Ok);
    feed(E, Fresh[0], Fresh[1], Fresh[2], Fresh[3], Fresh[4]);
  };

  Engine Base;
  load(Base);
  Observe(Base);
  std::string Expected = evalOk(Base, "(list ws dg sp ep ot)");

  Engine Opt;
  ASSERT_TRUE(Opt.loadProfile(Path));
  load(Opt);
  Observe(Opt);
  EXPECT_EQ(evalOk(Opt, "(list ws dg sp ep ot)"), Expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CaseEquivalence, ::testing::Range(0, 10));

} // namespace
