//===- tests/MetaDatastructTest.cpp - Figures 13-14: data structures ------===//

#include "TestUtil.h"

using namespace pgmp;
using namespace pgmp::testutil;

namespace {

struct DatastructFixture : ::testing::Test {
  static unsigned warningsMatching(Engine &E, const std::string &Needle) {
    unsigned N = 0;
    for (const auto &D : E.context().Diags.all())
      if (D.Kind == DiagKind::Warning &&
          D.Message.find(Needle) != std::string::npos)
        ++N;
    return N;
  }
};

//===----------------------------------------------------------------------===//
// profiled-list (Figure 13)
//===----------------------------------------------------------------------===//

const char *ListUserSrc =
    "(define pl (profiled-list 1 2 3 4))\n"
    "(define (sum-ref n)\n"
    "  (let loop ([i 0] [acc 0])\n"
    "    (if (= i n) acc (loop (+ i 1) (+ acc (p-list-ref pl (modulo i 4)))))))\n"
    "(define (sum-walk n)\n"
    "  (let loop ([i 0] [acc 0])\n"
    "    (if (= i n)\n"
    "        acc\n"
    "        (loop (+ i 1)\n"
    "              (let walk ([l pl] [a acc])\n"
    "                (if (p-null? l) a (walk (p-cdr l) (+ a (p-car l)))))))))\n";

TEST_F(DatastructFixture, ProfiledListBehavesLikeList) {
  Engine E;
  loadLib(E, "profiled-list");
  EXPECT_EQ(evalOk(E, "(define pl (profiled-list 10 20 30))"
                      "(list (p-car pl) (p-car (p-cdr pl))"
                      "      (p-length pl) (p-list-ref pl 2)"
                      "      (p-null? pl)"
                      "      (p-car (p-cons 5 pl))"
                      "      (p-list->list pl))"),
            "(10 20 3 30 #f 5 (10 20 30))");
}

TEST_F(DatastructFixture, NoWarningWithoutProfileData) {
  Engine E;
  loadLib(E, "profiled-list");
  evalOk(E, "(profiled-list 1 2)");
  EXPECT_EQ(warningsMatching(E, "reimplement this list"), 0u);
}

TEST_F(DatastructFixture, VectorHeavyUsageWarnsAtCompileTime) {
  std::string Path = tempPath("pl.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    loadLib(E, "profiled-list");
    ASSERT_TRUE(E.evalString(ListUserSrc, "listuser.scm").Ok);
    evalOk(E, "(sum-ref 200)"); // random access dominates
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  loadLib(E2, "profiled-list");
  ASSERT_TRUE(E2.evalString(ListUserSrc, "listuser.scm").Ok);
  EXPECT_EQ(warningsMatching(E2, "reimplement this list as a vector"), 1u);
}

TEST_F(DatastructFixture, ListHeavyUsageDoesNotWarn) {
  std::string Path = tempPath("pl.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    loadLib(E, "profiled-list");
    ASSERT_TRUE(E.evalString(ListUserSrc, "listuser.scm").Ok);
    evalOk(E, "(sum-walk 100)"); // sequential walking dominates
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  loadLib(E2, "profiled-list");
  ASSERT_TRUE(E2.evalString(ListUserSrc, "listuser.scm").Ok);
  EXPECT_EQ(warningsMatching(E2, "reimplement this list"), 0u);
}

//===----------------------------------------------------------------------===//
// profiled-vector
//===----------------------------------------------------------------------===//

const char *VectorUserSrc =
    "(define pv (profiled-vector 1 2 3 4))\n"
    "(define (push-lots n)\n"
    "  (let loop ([i 0] [v pv])\n"
    "    (if (= i n) (pv-first v) (loop (+ i 1) (pv-push-front v i)))))\n"
    "(define (ref-lots n)\n"
    "  (let loop ([i 0] [acc 0])\n"
    "    (if (= i n) acc (loop (+ i 1) (+ acc (pv-ref pv (modulo i 4)))))))\n";

TEST_F(DatastructFixture, ProfiledVectorBehavesLikeVector) {
  Engine E;
  loadLib(E, "profiled-vector");
  EXPECT_EQ(evalOk(E, "(define pv (profiled-vector 5 6 7))"
                      "(pv-set! pv 1 60)"
                      "(list (pv-ref pv 0) (pv-ref pv 1) (pv-length pv)"
                      "      (pv-first (pv-push-front pv 99)))"),
            "(5 60 3 99)");
}

TEST_F(DatastructFixture, FrontPushHeavyVectorWarns) {
  std::string Path = tempPath("pv.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    loadLib(E, "profiled-vector");
    ASSERT_TRUE(E.evalString(VectorUserSrc, "vecuser.scm").Ok);
    evalOk(E, "(push-lots 100)");
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  loadLib(E2, "profiled-vector");
  ASSERT_TRUE(E2.evalString(VectorUserSrc, "vecuser.scm").Ok);
  EXPECT_EQ(warningsMatching(E2, "reimplement this vector as a list"), 1u);
}

TEST_F(DatastructFixture, RefHeavyVectorDoesNotWarn) {
  std::string Path = tempPath("pv.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    loadLib(E, "profiled-vector");
    ASSERT_TRUE(E.evalString(VectorUserSrc, "vecuser.scm").Ok);
    evalOk(E, "(ref-lots 100)");
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  loadLib(E2, "profiled-vector");
  ASSERT_TRUE(E2.evalString(VectorUserSrc, "vecuser.scm").Ok);
  EXPECT_EQ(warningsMatching(E2, "reimplement this vector"), 0u);
}

//===----------------------------------------------------------------------===//
// profiled-seq (Figure 14): automatic specialization
//===----------------------------------------------------------------------===//

const char *SeqUserSrc =
    "(define s (profiled-seq 1 2 3 4 5 6 7 8))\n"
    "(define (ref-work n)\n"
    "  (let loop ([i 0] [acc 0])\n"
    "    (if (= i n) acc (loop (+ i 1) (+ acc (seq-ref s (modulo i 8)))))))\n"
    "(define (walk-work n)\n"
    "  (let loop ([i 0] [acc 0])\n"
    "    (if (= i n)\n"
    "        acc\n"
    "        (loop (+ i 1)\n"
    "              (let walk ([t s] [a acc])\n"
    "                (if (seq-empty? t) a"
    "                    (walk (seq-rest t) (+ a (seq-first t)))))))))\n";

TEST_F(DatastructFixture, SeqDefaultsToList) {
  Engine E;
  loadLib(E, "profiled-seq");
  ASSERT_TRUE(E.evalString(SeqUserSrc, "sequser.scm").Ok);
  EXPECT_EQ(evalOk(E, "(seq-kind s)"), "list");
}

TEST_F(DatastructFixture, SeqGenericOpsWork) {
  Engine E;
  loadLib(E, "profiled-seq");
  EXPECT_EQ(evalOk(E, "(define s (profiled-seq 1 2 3))"
                      "(list (seq-first s) (seq-ref s 2) (seq-length s)"
                      "      (seq-first (seq-push s 0))"
                      "      (seq-ref (seq-set s 1 20) 1)"
                      "      (seq->list (seq-rest s))"
                      "      (seq-empty? (seq-rest (seq-rest (seq-rest s)))))"),
            "(1 3 3 0 20 (2 3) #t)");
}

TEST_F(DatastructFixture, RandomAccessProfileSpecializesToVector) {
  std::string Path = tempPath("seq.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    loadLib(E, "profiled-seq");
    ASSERT_TRUE(E.evalString(SeqUserSrc, "sequser.scm").Ok);
    evalOk(E, "(ref-work 200)");
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  loadLib(E2, "profiled-seq");
  ASSERT_TRUE(E2.evalString(SeqUserSrc, "sequser.scm").Ok);
  EXPECT_EQ(evalOk(E2, "(seq-kind s)"), "vector");
  // And the behavior is identical after specialization.
  EXPECT_EQ(evalOk(E2, "(ref-work 16)"), "72");
  EXPECT_EQ(evalOk(E2, "(walk-work 2)"), "72");
}

TEST_F(DatastructFixture, SequentialProfileKeepsList) {
  std::string Path = tempPath("seq.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    loadLib(E, "profiled-seq");
    ASSERT_TRUE(E.evalString(SeqUserSrc, "sequser.scm").Ok);
    evalOk(E, "(walk-work 50)");
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  loadLib(E2, "profiled-seq");
  ASSERT_TRUE(E2.evalString(SeqUserSrc, "sequser.scm").Ok);
  EXPECT_EQ(evalOk(E2, "(seq-kind s)"), "list");
}

TEST_F(DatastructFixture, EachInstanceSpecializesIndependently) {
  // Two sequences with opposite usage patterns: one flips to a vector,
  // the other stays a list — per-instance profile points at work.
  const char *TwoSeqs =
      "(define sa (profiled-seq 1 2 3 4))\n"
      "(define sb (profiled-seq 5 6 7 8))\n"
      "(define (work n)\n"
      "  (let loop ([i 0] [acc 0])\n"
      "    (if (= i n)\n"
      "        acc\n"
      "        (loop (+ i 1)\n"
      "              (+ acc (seq-ref sa (modulo i 4))"
      "                     (seq-first sb))))))\n";
  std::string Path = tempPath("two.prof");
  {
    Engine E;
    E.setInstrumentation(true);
    loadLib(E, "profiled-seq");
    ASSERT_TRUE(E.evalString(TwoSeqs, "twoseqs.scm").Ok);
    evalOk(E, "(work 100)");
    ASSERT_TRUE(E.storeProfile(Path));
  }
  Engine E2;
  ASSERT_TRUE(E2.loadProfile(Path));
  loadLib(E2, "profiled-seq");
  ASSERT_TRUE(E2.evalString(TwoSeqs, "twoseqs.scm").Ok);
  EXPECT_EQ(evalOk(E2, "(list (seq-kind sa) (seq-kind sb))"),
            "(vector list)");
}

} // namespace
